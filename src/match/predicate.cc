#include "match/predicate.h"

#include <cstring>

#include "util/strings.h"

namespace grepair {

bool CompareValues(const Vocabulary& vocab, SymbolId lhs, CmpOp op,
                   SymbolId rhs) {
  // Fast path for (in)equality of interned symbols.
  if (op == CmpOp::kEq && lhs == rhs) return true;
  if (op == CmpOp::kNe && lhs == rhs) return false;

  const std::string& ls = vocab.ValueName(lhs);
  const std::string& rs = vocab.ValueName(rhs);
  double ln, rn;
  int cmp;
  if (ParseDouble(ls, &ln) && ParseDouble(rs, &rn)) {
    cmp = (ln < rn) ? -1 : (ln > rn ? 1 : 0);
  } else {
    int c = std::strcmp(ls.c_str(), rs.c_str());
    cmp = (c < 0) ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
    case CmpOp::kAbsent:
    case CmpOp::kPresent:
      return false;  // unary ops are resolved in EvalPredicate, not here
  }
  return false;
}

namespace {

// Resolves an operand to a value id; returns false while unresolvable
// because the var is unbound. `*absent` is set when the var is bound but the
// attribute is missing.
bool ResolveOperand(const GraphView& g, const AttrOperand& o,
                    const std::vector<NodeId>& binding,
                    const std::vector<EdgeId>* edges, SymbolId* out,
                    bool* absent) {
  *absent = false;
  if (o.var == kNoVar) {
    *out = o.constant;
    return true;
  }
  SymbolId v;
  if (o.is_edge) {
    if (edges == nullptr || o.var >= edges->size() ||
        (*edges)[o.var] == kInvalidEdge)
      return false;
    v = g.EdgeAttr((*edges)[o.var], o.attr);
  } else {
    NodeId n = binding[o.var];
    if (n == kInvalidNode) return false;
    v = g.NodeAttr(n, o.attr);
  }
  if (v == 0) {
    *absent = true;
    *out = 0;
    return true;
  }
  *out = v;
  return true;
}

}  // namespace

bool PredicateUsesEdges(const AttrPredicate& p) {
  return (p.lhs.var != kNoVar && p.lhs.is_edge) ||
         (p.rhs.var != kNoVar && p.rhs.is_edge);
}

PredVerdict EvalPredicate(const GraphView& g, const AttrPredicate& p,
                          const std::vector<NodeId>& binding,
                          const std::vector<EdgeId>* edges) {
  SymbolId lv, rv;
  bool labs, rabs;
  if (p.op == CmpOp::kAbsent || p.op == CmpOp::kPresent) {
    if (!ResolveOperand(g, p.lhs, binding, edges, &lv, &labs))
      return PredVerdict::kUnknown;
    bool present = !labs && lv != 0;
    bool want_present = (p.op == CmpOp::kPresent);
    return present == want_present ? PredVerdict::kTrue : PredVerdict::kFalse;
  }
  if (!ResolveOperand(g, p.lhs, binding, edges, &lv, &labs))
    return PredVerdict::kUnknown;
  if (!ResolveOperand(g, p.rhs, binding, edges, &rv, &rabs))
    return PredVerdict::kUnknown;
  if (labs || rabs) {
    // Absent attributes never satisfy equality/order predicates; inequality
    // holds when exactly one side is absent.
    if (p.op == CmpOp::kNe)
      return (labs != rabs) ? PredVerdict::kTrue : PredVerdict::kFalse;
    return PredVerdict::kFalse;
  }
  return CompareValues(*g.vocab(), lv, p.op, rv) ? PredVerdict::kTrue
                                                 : PredVerdict::kFalse;
}

bool EvalNac(const GraphView& g, const Nac& nac,
             const std::vector<NodeId>& binding) {
  switch (nac.kind) {
    case NacKind::kNoEdge: {
      NodeId s = binding[nac.src_var], d = binding[nac.dst_var];
      return !g.HasEdge(s, d, nac.label);
    }
    case NacKind::kNoOutEdge: {
      NodeId s = binding[nac.src_var];
      for (EdgeId e : g.OutEdges(s))
        if (nac.label == 0 || g.EdgeLabel(e) == nac.label) return false;
      return true;
    }
    case NacKind::kNoInEdge: {
      NodeId d = binding[nac.dst_var];
      for (EdgeId e : g.InEdges(d))
        if (nac.label == 0 || g.EdgeLabel(e) == nac.label) return false;
      return true;
    }
    case NacKind::kNoIncident: {
      NodeId s = binding[nac.src_var];
      return g.Degree(s) == 0;
    }
  }
  return true;
}

}  // namespace grepair
