// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding WAL
// record frames and checkpoint files (src/storage/). Software table-driven
// implementation — the WAL's frame sizes are small and the serve commit
// path is dominated by detection, so a hardware SSE4.2 path would buy
// nothing measurable here.
#ifndef GREPAIR_UTIL_CRC32C_H_
#define GREPAIR_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace grepair {

/// CRC32C of `data[0, n)`. Matches the RFC 3720 reference ("123456789"
/// hashes to 0xE3069283).
uint32_t Crc32c(const void* data, size_t n);

/// Extends a running CRC32C with more bytes: Crc32cExtend(Crc32c(a), b)
/// == Crc32c(a concat b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Masked CRC in the RocksDB/LevelDB style: storing the raw CRC of data
/// that itself embeds CRCs invites accidental fixed points, so stored
/// checksums are rotated and offset. Verify with Crc32cUnmask.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace grepair

#endif  // GREPAIR_UTIL_CRC32C_H_
