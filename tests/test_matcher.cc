// Matcher unit tests: labels, injectivity, edge binding, anchors, NACs,
// predicates, limits, Verify.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "match/matcher.h"

namespace grepair {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    a_ = vocab_->Label("A");
    b_ = vocab_->Label("B");
    e_ = vocab_->Label("e");
    f_ = vocab_->Label("f");
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId a_, b_, e_, f_;
};

TEST_F(MatcherTest, SingleNodeByLabel) {
  g_.AddNode(a_);
  g_.AddNode(a_);
  g_.AddNode(b_);
  Pattern p;
  p.AddNode(a_);
  Matcher m(g_, p);
  EXPECT_EQ(m.Count(), 2u);
  Pattern any;
  any.AddNode(0);  // wildcard
  EXPECT_EQ(Matcher(g_, any).Count(), 3u);
}

TEST_F(MatcherTest, EdgePatternRespectsDirectionAndLabel) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  Pattern p;
  VarId px = p.AddNode(a_), py = p.AddNode(b_);
  p.AddEdge(px, py, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 1u);

  Pattern wrong_dir;
  VarId qx = wrong_dir.AddNode(a_), qy = wrong_dir.AddNode(b_);
  wrong_dir.AddEdge(qy, qx, e_);
  EXPECT_EQ(Matcher(g_, wrong_dir).Count(), 0u);

  Pattern wrong_label;
  VarId rx = wrong_label.AddNode(a_), ry = wrong_label.AddNode(b_);
  wrong_label.AddEdge(rx, ry, f_);
  EXPECT_EQ(Matcher(g_, wrong_label).Count(), 0u);
}

TEST_F(MatcherTest, InjectiveOnNodes) {
  NodeId x = g_.AddNode(a_);
  g_.AddEdge(x, x, e_);  // self loop
  Pattern p;             // two DISTINCT a-nodes connected by e
  VarId px = p.AddNode(a_), py = p.AddNode(a_);
  p.AddEdge(px, py, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);

  Pattern loop;  // explicit self-loop pattern
  VarId lx = loop.AddNode(a_);
  loop.AddEdge(lx, lx, e_);
  EXPECT_EQ(Matcher(g_, loop).Count(), 1u);
}

TEST_F(MatcherTest, TwoOrderingsOfSymmetricPattern) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(a_);
  g_.AddEdge(x, y, e_);
  g_.AddEdge(y, x, e_);
  Pattern p;  // (u)-[e]->(v), (v)-[e]->(u)
  VarId u = p.AddNode(a_), v = p.AddNode(a_);
  p.AddEdge(u, v, e_);
  p.AddEdge(v, u, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 2u);  // (x,y) and (y,x)
}

TEST_F(MatcherTest, ParallelEdgesEnumerateEdgeBindings) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  EdgeId e1 = g_.AddEdge(x, y, e_).value();
  EdgeId e2 = g_.AddEdge(x, y, e_).value();
  Pattern p;
  VarId px = p.AddNode(a_), py = p.AddNode(b_);
  p.AddEdge(px, py, e_);
  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 2u);
  std::vector<EdgeId> bound = {matches[0].edges[0], matches[1].edges[0]};
  std::sort(bound.begin(), bound.end());
  EXPECT_EQ(bound, (std::vector<EdgeId>{e1, e2}));
}

TEST_F(MatcherTest, EdgeInjectivity) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  Pattern p;  // two pattern edges over the same endpoints
  VarId px = p.AddNode(a_), py = p.AddNode(b_);
  p.AddEdge(px, py, e_);
  p.AddEdge(px, py, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);  // one concrete edge can't serve both
  g_.AddEdge(x, y, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 2u);  // 2 permutations of the 2 edges
}

TEST_F(MatcherTest, DisconnectedPatternViaAttrJoin) {
  SymbolId name = vocab_->Attr("name");
  NodeId x = g_.AddNode(a_), y = g_.AddNode(a_), z = g_.AddNode(a_);
  g_.SetNodeAttr(x, name, vocab_->Value("n1"));
  g_.SetNodeAttr(y, name, vocab_->Value("n1"));
  g_.SetNodeAttr(z, name, vocab_->Value("n2"));
  Pattern p;
  VarId px = p.AddNode(a_), py = p.AddNode(a_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::VarAttr(px, name);
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::VarAttr(py, name);
  p.AddPredicate(pred);
  EXPECT_EQ(Matcher(g_, p).Count(), 2u);  // (x,y) and (y,x)
}

TEST_F(MatcherTest, NacSuppressesMatches) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  NodeId x2 = g_.AddNode(a_), y2 = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  g_.AddEdge(y, x, f_);  // x has a back edge
  g_.AddEdge(x2, y2, e_);
  Pattern p;  // (u:A)-[e]->(v:B) with no (v)-[f]->(u)
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = v;
  nac.dst_var = u;
  nac.label = f_;
  p.AddNac(nac);
  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].nodes[0], x2);
}

TEST_F(MatcherTest, NodeAnchorRestrictsSearch) {
  NodeId x1 = g_.AddNode(a_), y1 = g_.AddNode(b_);
  NodeId x2 = g_.AddNode(a_), y2 = g_.AddNode(b_);
  g_.AddEdge(x1, y1, e_);
  g_.AddEdge(x2, y2, e_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  MatchOptions opts;
  opts.node_anchors.push_back({u, x2});
  auto matches = Matcher(g_, p).CollectWith(opts);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].nodes[u], x2);
  EXPECT_EQ(matches[0].nodes[v], y2);
}

TEST_F(MatcherTest, NodeAnchorLabelMismatchYieldsNothing) {
  NodeId x = g_.AddNode(a_);
  g_.AddNode(b_);
  Pattern p;
  VarId u = p.AddNode(b_);
  MatchOptions opts;
  opts.node_anchors.push_back({u, x});  // x has label A, var wants B
  EXPECT_TRUE(Matcher(g_, p).CollectWith(opts).empty());
}

TEST_F(MatcherTest, EdgeAnchorBindsEndpoints) {
  NodeId x1 = g_.AddNode(a_), y1 = g_.AddNode(b_);
  NodeId x2 = g_.AddNode(a_), y2 = g_.AddNode(b_);
  g_.AddEdge(x1, y1, e_);
  EdgeId target = g_.AddEdge(x2, y2, e_).value();
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  MatchOptions opts;
  opts.edge_anchors.push_back({0, target});
  auto matches = Matcher(g_, p).CollectWith(opts);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].edges[0], target);
  EXPECT_EQ(matches[0].nodes[u], x2);
}

TEST_F(MatcherTest, MaxMatchesLimit) {
  for (int i = 0; i < 10; ++i) g_.AddNode(a_);
  Pattern p;
  p.AddNode(a_);
  MatchOptions opts;
  opts.max_matches = 4;
  EXPECT_EQ(Matcher(g_, p).CollectWith(opts).size(), 4u);
}

TEST_F(MatcherTest, CallbackCanStopEarly) {
  for (int i = 0; i < 10; ++i) g_.AddNode(a_);
  Pattern p;
  p.AddNode(a_);
  size_t seen = 0;
  Matcher(g_, p).FindAll({}, [&](const Match&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST_F(MatcherTest, ExistsShortCircuits) {
  for (int i = 0; i < 100; ++i) g_.AddNode(a_);
  Pattern p;
  p.AddNode(a_);
  EXPECT_TRUE(Matcher(g_, p).Exists());
  Pattern q;
  q.AddNode(b_);
  EXPECT_FALSE(Matcher(g_, q).Exists());
}

TEST_F(MatcherTest, VerifyDetectsStaleMatches) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(Matcher(g_, p).Verify(matches[0]));
  g_.RemoveEdge(matches[0].edges[0]);
  EXPECT_FALSE(Matcher(g_, p).Verify(matches[0]));
}

TEST_F(MatcherTest, VerifyChecksNacs) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = v;
  nac.dst_var = u;
  nac.label = f_;
  p.AddNac(nac);
  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  g_.AddEdge(y, x, f_);  // NAC now violated
  EXPECT_FALSE(Matcher(g_, p).Verify(matches[0]));
}

TEST_F(MatcherTest, TriangleInLargerGraph) {
  // Build a 3-cycle plus noise; the triangle pattern finds 3 rotations.
  NodeId n0 = g_.AddNode(a_), n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  g_.AddEdge(n0, n1, e_);
  g_.AddEdge(n1, n2, e_);
  g_.AddEdge(n2, n0, e_);
  for (int i = 0; i < 20; ++i) {
    NodeId m1 = g_.AddNode(a_), m2 = g_.AddNode(a_);
    g_.AddEdge(m1, m2, e_);
  }
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(a_), w = p.AddNode(a_);
  p.AddEdge(u, v, e_);
  p.AddEdge(v, w, e_);
  p.AddEdge(w, u, e_);
  EXPECT_EQ(Matcher(g_, p).Count(), 3u);
}

TEST_F(MatcherTest, AblationFlagsPreserveCorrectness) {
  // Triangle + attr-join workload; all four flag combinations must agree.
  SymbolId name = vocab_->Attr("name");
  NodeId n0 = g_.AddNode(a_), n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  g_.AddEdge(n0, n1, e_);
  g_.AddEdge(n1, n2, e_);
  g_.AddEdge(n2, n0, e_);
  g_.SetNodeAttr(n0, name, vocab_->Value("k"));
  g_.SetNodeAttr(n2, name, vocab_->Value("k"));
  for (int i = 0; i < 10; ++i) g_.AddNode(a_);

  Pattern p;  // (u)-[e]->(v), plus w with w.name = u.name
  VarId u = p.AddNode(a_), v = p.AddNode(a_), w = p.AddNode(a_);
  p.AddEdge(u, v, e_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::VarAttr(u, name);
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::VarAttr(w, name);
  p.AddPredicate(pred);

  size_t expect = Matcher(g_, p).Count();
  EXPECT_GT(expect, 0u);
  for (bool adj : {true, false}) {
    for (bool join : {true, false}) {
      MatchOptions opts;
      opts.use_adjacency_pivot = adj;
      opts.use_attr_join = join;
      size_t n = 0;
      Matcher(g_, p).FindAll(opts, [&](const Match&) {
        ++n;
        return true;
      });
      EXPECT_EQ(n, expect) << "adj=" << adj << " join=" << join;
    }
  }
}

TEST_F(MatcherTest, AblationFlagsCostMoreExpansions) {
  // Without the adjacency pivot, the matcher scans label candidates and
  // must do strictly more work on a hub-shaped graph.
  NodeId hub = g_.AddNode(a_);
  for (int i = 0; i < 60; ++i) {
    NodeId s = g_.AddNode(b_);
    g_.AddEdge(hub, s, e_);
  }
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);

  MatchOptions fast, slow;
  slow.use_adjacency_pivot = false;
  size_t n_fast = 0, n_slow = 0;
  MatchStats st_fast = Matcher(g_, p).FindAll(fast, [&](const Match&) {
    ++n_fast;
    return true;
  });
  MatchStats st_slow = Matcher(g_, p).FindAll(slow, [&](const Match&) {
    ++n_slow;
    return true;
  });
  EXPECT_EQ(n_fast, n_slow);
  EXPECT_EQ(n_fast, 60u);
  EXPECT_LE(st_fast.expansions, st_slow.expansions);
}

TEST_F(MatcherTest, ExpansionBudgetReportsExhaustion) {
  for (int i = 0; i < 30; ++i) g_.AddNode(a_);
  Pattern p;  // 3 unconstrained wildcard vars: 30*29*28 bindings
  p.AddNode(0);
  p.AddNode(0);
  p.AddNode(0);
  MatchOptions opts;
  opts.max_expansions = 100;
  MatchStats st = Matcher(g_, p).FindAll(opts, [](const Match&) {
    return true;
  });
  EXPECT_TRUE(st.exhausted);
}

}  // namespace
}  // namespace grepair
