// Round-trip and error-path tests for the text graph format.
#include <gtest/gtest.h>

#include <cstdio>

#include "graph/graph_io.h"

namespace grepair {
namespace {

TEST(GraphIoTest, RoundTripPreservesContent) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person");
  SymbolId knows = vocab->Label("knows");
  SymbolId name = vocab->Attr("name");
  NodeId a = g.AddNode(person);
  NodeId b = g.AddNode(person);
  g.SetNodeAttr(a, name, vocab->Value("alice"));
  EdgeId e = g.AddEdge(a, b, knows).value();
  g.SetEdgeAttr(e, vocab->Attr("conf"), vocab->Value("90"));

  std::string text = SerializeGraph(g);
  auto parsed = ParseGraph(text, vocab);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().ContentEquals(g));
}

TEST(GraphIoTest, RoundTripAfterDeletionsCompacts) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId l = vocab->Label("N");
  NodeId a = g.AddNode(l);
  NodeId b = g.AddNode(l);
  NodeId c = g.AddNode(l);
  g.AddEdge(a, c, vocab->Label("e"));
  g.RemoveNode(b);

  auto parsed = ParseGraph(SerializeGraph(g), vocab);
  ASSERT_TRUE(parsed.ok());
  // Ids compact on reload, so compare structure not ids.
  EXPECT_EQ(parsed.value().NumNodes(), 2u);
  EXPECT_EQ(parsed.value().NumEdges(), 1u);
}

TEST(GraphIoTest, ParseSkipsCommentsAndBlank) {
  auto vocab = MakeVocabulary();
  std::string text = "# hello\n\nN\t0\tPerson\n";
  auto parsed = ParseGraph(text, vocab);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumNodes(), 1u);
}

TEST(GraphIoTest, ParseRejectsUnknownRecord) {
  auto vocab = MakeVocabulary();
  auto parsed = ParseGraph("X\t1\t2\n", vocab);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(GraphIoTest, ParseRejectsDanglingEdge) {
  auto vocab = MakeVocabulary();
  auto parsed = ParseGraph("N\t0\tA\nE\t0\t0\t9\te\n", vocab);
  EXPECT_FALSE(parsed.ok());
}

TEST(GraphIoTest, ParseRejectsDuplicateNodeId) {
  auto vocab = MakeVocabulary();
  auto parsed = ParseGraph("N\t0\tA\nN\t0\tB\n", vocab);
  EXPECT_FALSE(parsed.ok());
}

TEST(GraphIoTest, ParseRejectsBadAttrSyntax) {
  auto vocab = MakeVocabulary();
  auto parsed = ParseGraph("N\t0\tA\tname\n", vocab);
  EXPECT_FALSE(parsed.ok());
}

TEST(GraphIoTest, SaveLoadFile) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  NodeId a = g.AddNode(vocab->Label("A"));
  NodeId b = g.AddNode(vocab->Label("B"));
  g.AddEdge(a, b, vocab->Label("e"));

  std::string path = ::testing::TempDir() + "/grepair_io_test.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path, vocab);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().ContentEquals(g));
  std::remove(path.c_str());
}

TEST(GraphIoTest, DotExportContainsElements) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  NodeId a = g.AddNode(vocab->Label("Person"));
  NodeId b = g.AddNode(vocab->Label("City"));
  g.SetNodeAttr(a, vocab->Attr("name"), vocab->Value("alice"));
  g.AddEdge(a, b, vocab->Label("born_in"));
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0:Person"), std::string::npos);
  EXPECT_NE(dot.find("alice"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [label=\"born_in\"]"), std::string::npos);
}

TEST(GraphIoTest, LoadMissingFileFails) {
  auto vocab = MakeVocabulary();
  auto loaded = LoadGraph("/nonexistent/nope.graph", vocab);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace grepair
