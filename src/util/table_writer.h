// Console table / CSV emission for the benchmark harnesses. Benchmarks print
// paper-style rows with this, so every bench binary's output is uniform.
#ifndef GREPAIR_UTIL_TABLE_WRITER_H_
#define GREPAIR_UTIL_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace grepair {

/// Collects rows and renders them as an aligned ASCII table and/or CSV.
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Appends one row; the cell count must equal the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  /// Renders the aligned ASCII table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our cells).
  std::string ToCsv() const;

  /// Prints the ASCII table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_TABLE_WRITER_H_
