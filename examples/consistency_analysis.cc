// Rule-set consistency analysis: before trusting a rule set in production,
// run the static checker (sufficient conditions) and the Monte-Carlo
// simulator (witness search). This example vets the shipped KG rules and
// shows both adversarial sets being rejected — one for a creation cycle,
// one for an add/delete contradiction.
//
//   $ ./build/examples/consistency_analysis
#include <cstdio>

#include "consistency/checker.h"
#include "consistency/simulator.h"
#include "grr/standard_rules.h"

using namespace grepair;

namespace {

void Analyze(const char* name, Result<RuleSet> (*maker)(VocabularyPtr)) {
  auto vocab = MakeVocabulary();
  auto rules = maker(vocab);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s: parse error %s\n", name,
                 rules.status().ToString().c_str());
    return;
  }
  std::printf("=== %s (%zu rules) ===\n", name, rules.value().size());

  ConsistencyReport rep = CheckConsistency(rules.value(), *vocab);
  std::printf("static analysis (%0.2f ms): %s\n", rep.analysis_ms,
              rep.statically_consistent ? "CONSISTENT" : "REJECTED");
  std::printf("  trigger edges: %zu, contradictions: %zu\n",
              rep.num_trigger_edges, rep.num_contradictions);
  for (const std::string& issue : rep.issues)
    std::printf("  issue: %s\n", issue.c_str());

  SimOptions sopt;
  sopt.trials = 10;
  SimulationReport sim = SimulateRuleSet(rules.value(), vocab, sopt);
  std::printf("simulation (%zu trials, %.1f ms): %zu non-terminating, "
              "%zu divergent\n",
              sim.trials, sim.elapsed_ms, sim.nonterminating, sim.divergent);
  if (sim.witness_found)
    std::printf("  witness: %s\n", sim.witness.c_str());
  std::puts("");
}

}  // namespace

int main() {
  Analyze("kg rules", KgRules);
  Analyze("social rules", SocialRules);
  Analyze("citation rules", CitationRules);
  Analyze("adversarial: creation cycle", AdversarialCyclicRules);
  Analyze("adversarial: contradiction", ContradictoryRules);

  std::puts("Takeaway: run both analyses before deploying a rule set; the");
  std::puts("static check is conservative (sufficient, not necessary) and");
  std::puts("the simulator provides concrete counterexamples when it fails.");
  return 0;
}
