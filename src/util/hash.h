// Hash utilities: combination and 64-bit mixing for graph fingerprints.
#ifndef GREPAIR_UTIL_HASH_H_
#define GREPAIR_UTIL_HASH_H_

#include <cstdint>
#include <utility>

namespace grepair {

/// Strong 64-bit mix (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combine (boost-style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

/// Hash for pairs of integers (used as map keys for edge endpoints).
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(p.first) << 32) | p.second));
  }
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_HASH_H_
