// The grepair command-line tool, as a testable library function.
//
//   grepair gen <kg|social|citation> --out g.tsv [--scale N] [--rate R]
//           [--seed S] [--rules-out r.grr]
//   grepair stats  <graph.tsv>
//   grepair check  <rules.grr>
//   grepair detect <graph.tsv> <rules.grr>
//   grepair repair <graph.tsv> <rules.grr> [--strategy greedy|naive|batch|
//           exact] [--out repaired.tsv]
//   grepair mine   <graph.tsv> [--min-support X]
//   grepair serve  <graph.tsv> <rules.grr> [--threads N]
//
// `serve` starts the streaming repair service (src/serve/) and drives it
// with a line-oriented edit protocol (see DESIGN.md "Serving model"): edit
// commands mutate the owned graph, `commit` runs batched parallel
// delta-detection plus cascade repair, `stats` reports service counters.
#ifndef GREPAIR_CLI_CLI_H_
#define GREPAIR_CLI_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace grepair {

/// Runs one CLI invocation; `args` excludes the program name. Output goes
/// to `out` (stdout text). Returns the process exit code (0 = success,
/// 1 = command failed, 2 = usage error — including unknown flags).
///
/// `serve_in` is the stream the `serve` command reads protocol lines from
/// (nullptr = std::cin). `serve_live` additionally receives each protocol
/// response as it is produced, flushed per line, so a real session is
/// interactive; responses are always accumulated into `out` as well, which
/// is what tests assert against.
int RunCli(const std::vector<std::string>& args, std::string* out,
           std::istream* serve_in = nullptr,
           std::ostream* serve_live = nullptr);

}  // namespace grepair

#endif  // GREPAIR_CLI_CLI_H_
