// The shipped GRR libraries for the three example domains, plus adversarial
// rule sets used by the consistency-analysis experiments. All of these are
// written in the DSL and parsed at construction, so the parser sits on the
// production path.
#ifndef GREPAIR_GRR_STANDARD_RULES_H_
#define GREPAIR_GRR_STANDARD_RULES_H_

#include "grr/rule.h"
#include "util/status.h"

namespace grepair {

/// Knowledge-graph rules (10): symmetric relations, capital functionality,
/// type conflicts, attribute flags, duplicates, junk nodes. Mirrors the
/// errors InjectKgErrors produces.
Result<RuleSet> KgRules(VocabularyPtr vocab);

/// Social-network rules (4).
Result<RuleSet> SocialRules(VocabularyPtr vocab);

/// Citation-network rules (4).
Result<RuleSet> CitationRules(VocabularyPtr vocab);

/// A rule set whose ADD rules form a creation cycle A->B->C->A: repairing
/// never terminates. The consistency checker must reject it.
Result<RuleSet> AdversarialCyclicRules(VocabularyPtr vocab);

/// A pair of rules where one inserts exactly what the other deletes: the
/// repaired graph oscillates. The consistency checker must reject it.
Result<RuleSet> ContradictoryRules(VocabularyPtr vocab);

/// The DSL sources (exposed for documentation, examples and parser tests).
extern const char kKgRulesDsl[];
extern const char kSocialRulesDsl[];
extern const char kCitationRulesDsl[];
extern const char kAdversarialCyclicDsl[];
extern const char kContradictoryDsl[];

}  // namespace grepair

#endif  // GREPAIR_GRR_STANDARD_RULES_H_
