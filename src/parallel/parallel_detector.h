// Parallel violation detection: fans the per-rule full-graph matching of
// DetectAll across a ThreadPool, with bit-identical output to the
// sequential path regardless of thread count.
//
// Two levels of fan-out:
//   (a) rule-level — each rule's full-graph match is an independent task;
//   (b) shard-level — a rule whose seed-candidate set is large is split
//       into per-seed anchored searches. Over an UNSHARDED view the split
//       is contiguous ranges of Matcher::SeedCandidates(); over a sharded
//       store (GraphView::NumStorageShards() > 1, e.g. ShardedSnapshot)
//       the split is STORAGE-ALIGNED: one task per storage shard holding
//       exactly the seeds that shard owns, so a task's reads stay within
//       one shard's columns.
//
// Determinism: the sequential matcher explores seeds in ascending-id order
// and each seed's subtree deterministically. Block shards concatenate in
// (rule id, shard index) order; storage-aligned shards record per-seed
// match counts and are interleaved back into global ascending-seed order.
// Both reproduce the exact sequential emission stream for any shard x
// thread combination. Workers only read the graph; emission happens on the
// calling thread after all tasks complete.
//
// Concurrency contract (DESIGN.md "Threading model"): the graph, rule set
// and vocabulary must not be mutated while Detect runs. Matching never
// interns symbols (see Vocabulary::LookupOnly), so const access is safe.
#ifndef GREPAIR_PARALLEL_PARALLEL_DETECTOR_H_
#define GREPAIR_PARALLEL_PARALLEL_DETECTOR_H_

#include <functional>

#include "graph/graph_view.h"
#include "grr/rule.h"
#include "match/matcher.h"
#include "parallel/thread_pool.h"

namespace grepair {

struct ParallelDetectOptions {
  /// Shard a rule only when it has at least this many seed candidates;
  /// below it the per-seed anchor overhead outweighs the parallelism.
  size_t shard_min_seeds = 256;
  /// Upper bound on shards per rule (0 = 2x pool thread count, which keeps
  /// all workers busy when one rule dominates without over-fragmenting).
  size_t max_shards_per_rule = 0;
  /// Expansion budget at which a sharded rule falls back to a sequential
  /// re-run so its truncation point matches the single-budget sequential
  /// search (0 = the MatchOptions default). Tests lower it to exercise the
  /// fallback.
  size_t sequential_budget = 0;
};

/// Stateless fan-out wrapper over one pool. Cheap to construct.
class ParallelDetector {
 public:
  /// Called once per match, in the sequential DetectAll order
  /// (rule id ascending, matches in enumeration order within a rule).
  using Emit = std::function<void(RuleId, const Match&)>;

  explicit ParallelDetector(ThreadPool* pool,
                            ParallelDetectOptions options = {});

  /// Enumerates every match of every rule in `g`. Equivalent to
  ///   for r: Matcher(g, rules[r].pattern()).FindAll(default, emit)
  /// but parallel. Early termination is not supported: emit's return value
  /// is void and the expansion budget is per-task, so `stats.expansions`
  /// can differ from the sequential count — matches never do, even when a
  /// rule hits the expansion budget: a sharded rule whose total expansions
  /// reach the sequential budget is re-run sequentially so its truncation
  /// point matches the single-budget search exactly.
  ///
  /// `plans`, when non-null, is an array of rules.size() pointers to
  /// compiled MatchPlans (entries may be null), index-aligned with the rule
  /// set and compiled against `g`'s label cardinalities; every task of rule
  /// r (and its sequential rerun) then matches through plans[r]. Streams
  /// are bit-identical with or without plans.
  MatchStats Detect(const GraphView& g, const RuleSet& rules, const Emit& emit,
                    const MatchPlan* const* plans = nullptr) const;

 private:
  ThreadPool* pool_;
  ParallelDetectOptions options_;
};

}  // namespace grepair

#endif  // GREPAIR_PARALLEL_PARALLEL_DETECTOR_H_
