// Incremental match maintenance: after the repair engine applies an edit,
// only the neighborhood the edit touched can host NEW matches (violations).
// DeltaMatcher re-searches anchored at the touched elements instead of
// re-running global detection — the core efficiency technique of the
// "efficient repairing methods" half of the paper.
//
// Soundness argument (tested property): a match that exists after a delta
// but not before must use an added element, a relabeled/re-attributed
// element, or have had a NAC blocked by a removed element. Every such match
// therefore contains (a) a touched element among its images, or (b) for the
// NAC case, is discoverable by re-searching around the removed element's
// endpoints. Over-reporting (finding pre-existing matches again) is
// harmless: the violation store deduplicates.
#ifndef GREPAIR_MATCH_INCREMENTAL_H_
#define GREPAIR_MATCH_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "graph/edit_log.h"
#include "graph/graph_view.h"
#include "match/matcher.h"

namespace grepair {

/// Footprint hash used to deduplicate delta-found matches (a match reachable
/// through two anchors must be reported once). Shared by FindDelta and the
/// sharded merge in parallel::ParallelDeltaDetector so both paths keep the
/// exact same survivor set.
uint64_t DeltaMatchHash(const Match& m);

/// Incremental (delta-anchored) pattern search over one graph. An optional
/// compiled MatchPlan (plan.h) for the same pattern accelerates the anchored
/// searches; streams stay bit-identical to the plan-less matcher.
class DeltaMatcher {
 public:
  DeltaMatcher(const GraphView& graph, const Pattern& pattern,
               const MatchPlan* plan = nullptr);

  /// The anchors a delta induces — exposed for tests, diagnostics and
  /// callers that search several rules over one delta. Anchor extraction
  /// reads only the graph and the delta, never the pattern, so one
  /// computation serves every rule of a rule set.
  struct Anchors {
    std::vector<NodeId> nodes;  ///< touched, alive nodes
    std::vector<EdgeId> edges;  ///< added/relabeled, alive edges
  };
  Anchors ComputeAnchors(const std::vector<EditEntry>& delta) const;

  /// Enumerates every match that can be NEW after applying `delta`
  /// (journal entries). May also report surviving old matches; never misses
  /// a new one. Matches are deduplicated within one call.
  MatchStats FindDelta(const std::vector<EditEntry>& delta,
                       const MatchCallback& cb) const;

  /// Same search from precomputed anchors (they must describe the current
  /// graph state).
  MatchStats FindDelta(const Anchors& anchors, const MatchCallback& cb) const;

  /// Raw anchored enumeration through a slice of anchors, WITHOUT the
  /// cross-anchor dedup — the sharding primitive of the parallel delta
  /// path. FindDelta(delta, cb) is exactly: MatchEdgeAnchors over all
  /// anchor edges, then MatchNodeAnchors over all anchor nodes, filtered
  /// through a DeltaMatchHash dedup set. Each anchored search carries its
  /// own expansion budget, so any partition of the anchor lists into
  /// contiguous slices replays the identical searches (tested in
  /// tests/test_incremental.cc).
  MatchStats MatchEdgeAnchors(const std::vector<EdgeId>& anchor_edges,
                              const MatchCallback& cb) const;
  MatchStats MatchNodeAnchors(const std::vector<NodeId>& anchor_nodes,
                              const MatchCallback& cb) const;

 private:
  const GraphView& g_;
  const Pattern& p_;
  const MatchPlan* plan_;
};

}  // namespace grepair

#endif  // GREPAIR_MATCH_INCREMENTAL_H_
