// Text DSL for graph-repairing rules.
//
//   # every country has exactly one capital; prefer dropping the
//   # low-confidence claim
//   RULE one_capital_per_country CLASS conflict
//   MATCH (x:City)-[e1:capital_of]->(y:Country),
//         (z:City)-[e2:capital_of]->(y)
//   ACTION DEL_EDGE e2
//
//   RULE spouse_symmetric CLASS incomplete
//   MATCH (x:Person)-[spouse]->(y:Person)
//   WHERE NOT EDGE (y)-[spouse]->(x)
//   ACTION ADD_EDGE (y)-[spouse]->(x)
//
//   RULE dup_person CLASS redundant
//   MATCH (x:Person), (y:Person)
//   WHERE x.name = y.name AND x.birth_year = y.birth_year
//   ACTION MERGE (x, y)
//
// See README.md for the full grammar.
#ifndef GREPAIR_GRR_RULE_PARSER_H_
#define GREPAIR_GRR_RULE_PARSER_H_

#include <string>

#include "grr/rule.h"
#include "util/status.h"

namespace grepair {

/// Parses a whole rule file (any number of RULE blocks) into a RuleSet,
/// interning labels/attributes/values into `vocab`. Every parsed rule is
/// validated (see rule_validator.h) before being admitted.
Result<RuleSet> ParseRules(const std::string& text, VocabularyPtr vocab);

/// Parses exactly one rule.
Result<Rule> ParseRule(const std::string& text, VocabularyPtr vocab);

}  // namespace grepair

#endif  // GREPAIR_GRR_RULE_PARSER_H_
