// The paper's three semantic classes of graph errors. Shared by the rule
// model (every GRR is tagged with the class it repairs) and the error
// injectors (every injected error is tagged with the class it introduces).
#ifndef GREPAIR_GRAPH_ERROR_CLASS_H_
#define GREPAIR_GRAPH_ERROR_CLASS_H_

#include <cstdint>
#include <string_view>

namespace grepair {

/// Incomplete information (something required is missing), conflicting
/// information (co-existing facts contradict), redundant information (one
/// real-world entity/fact represented more than once).
enum class ErrorClass : uint8_t { kIncomplete, kConflict, kRedundant };

std::string_view ErrorClassName(ErrorClass c);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_ERROR_CLASS_H_
