#include "graph/edit_log.h"

#include <cassert>

#include "util/strings.h"

namespace grepair {

double CostModel::EntryCost(const EditEntry& e) const {
  switch (e.kind) {
    case EditKind::kAddNode: return node_insert;
    case EditKind::kRemoveNode: return node_delete;
    case EditKind::kAddEdge: return edge_insert;
    case EditKind::kRemoveEdge: return edge_delete;
    case EditKind::kSetNodeLabel: return relabel;
    case EditKind::kSetEdgeLabel: return relabel;
    case EditKind::kSetNodeAttr: return attr_update;
    case EditKind::kSetEdgeAttr: return attr_update;
  }
  return 0.0;
}

double JournalCost(const std::vector<EditEntry>& log, size_t from, size_t to,
                   const CostModel& model) {
  assert(from <= to && to <= log.size());
  double total = 0.0;
  for (size_t i = from; i < to; ++i) total += model.EntryCost(log[i]);
  return total;
}

EditEntry InverseEntry(const EditEntry& e) {
  EditEntry inv = e;
  switch (e.kind) {
    case EditKind::kAddNode:
      // Undo AddNode happens only after every later mutation of the node
      // was already undone, so its attributes are empty again.
      inv.kind = EditKind::kRemoveNode;
      inv.attr_snapshot.clear();
      break;
    case EditKind::kRemoveNode:
      inv.kind = EditKind::kAddNode;  // revive, attrs from the snapshot
      break;
    case EditKind::kAddEdge:
      inv.kind = EditKind::kRemoveEdge;
      inv.attr_snapshot.clear();
      break;
    case EditKind::kRemoveEdge:
      inv.kind = EditKind::kAddEdge;  // revive at the adjacency tail
      break;
    case EditKind::kSetNodeLabel:
    case EditKind::kSetEdgeLabel:
    case EditKind::kSetNodeAttr:
    case EditKind::kSetEdgeAttr:
      inv.old_sym = e.new_sym;
      inv.new_sym = e.old_sym;
      break;
  }
  return inv;
}

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (data.size() - *pos < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data()) + *pos;
  *v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
       static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
  *pos += 4;
  return true;
}

}  // namespace

void EncodeEditEntry(const EditEntry& e, std::string* out) {
  out->push_back(static_cast<char>(e.kind));
  PutU32(e.node, out);
  PutU32(e.edge, out);
  PutU32(e.src, out);
  PutU32(e.dst, out);
  PutU32(e.label, out);
  PutU32(e.attr, out);
  PutU32(e.old_sym, out);
  PutU32(e.new_sym, out);
  PutU32(static_cast<uint32_t>(e.attr_snapshot.size()), out);
  for (const auto& [a, v] : e.attr_snapshot) {
    PutU32(a, out);
    PutU32(v, out);
  }
}

bool DecodeEditEntry(std::string_view data, size_t* pos, EditEntry* out) {
  if (*pos >= data.size()) return false;
  uint8_t kind = static_cast<uint8_t>(data[*pos]);
  if (kind > static_cast<uint8_t>(EditKind::kSetEdgeAttr)) return false;
  out->kind = static_cast<EditKind>(kind);
  ++*pos;
  uint32_t count = 0;
  if (!GetU32(data, pos, &out->node) || !GetU32(data, pos, &out->edge) ||
      !GetU32(data, pos, &out->src) || !GetU32(data, pos, &out->dst) ||
      !GetU32(data, pos, &out->label) || !GetU32(data, pos, &out->attr) ||
      !GetU32(data, pos, &out->old_sym) || !GetU32(data, pos, &out->new_sym) ||
      !GetU32(data, pos, &count))
    return false;
  // Bound the count by the bytes actually present before reserving: a
  // corrupt frame must not become a multi-gigabyte allocation.
  if (count > (data.size() - *pos) / 8) return false;
  out->attr_snapshot.clear();
  out->attr_snapshot.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t a = 0, v = 0;
    if (!GetU32(data, pos, &a) || !GetU32(data, pos, &v)) return false;
    out->attr_snapshot.emplace_back(a, v);
  }
  return true;
}

std::string EditEntryToString(const EditEntry& e) {
  switch (e.kind) {
    case EditKind::kAddNode:
      return StrFormat("AddNode(n%u,l%u)", e.node, e.label);
    case EditKind::kRemoveNode:
      return StrFormat("RemoveNode(n%u,l%u)", e.node, e.label);
    case EditKind::kAddEdge:
      return StrFormat("AddEdge(e%u: n%u-[l%u]->n%u)", e.edge, e.src, e.label,
                       e.dst);
    case EditKind::kRemoveEdge:
      return StrFormat("RemoveEdge(e%u: n%u-[l%u]->n%u)", e.edge, e.src,
                       e.label, e.dst);
    case EditKind::kSetNodeLabel:
      return StrFormat("SetNodeLabel(n%u,l%u->l%u)", e.node, e.old_sym,
                       e.new_sym);
    case EditKind::kSetEdgeLabel:
      return StrFormat("SetEdgeLabel(e%u,l%u->l%u)", e.edge, e.old_sym,
                       e.new_sym);
    case EditKind::kSetNodeAttr:
      return StrFormat("SetNodeAttr(n%u,a%u:v%u->v%u)", e.node, e.attr,
                       e.old_sym, e.new_sym);
    case EditKind::kSetEdgeAttr:
      return StrFormat("SetEdgeAttr(e%u,a%u:v%u->v%u)", e.edge, e.attr,
                       e.old_sym, e.new_sym);
  }
  return "?";
}

}  // namespace grepair
