// RepairOptions knob tests: budgets, custom cost models, confidence toggle,
// oscillation detection across strategies, exact-search budgets.
#include <gtest/gtest.h>

#include "grr/rule_parser.h"
#include "repair/engine.h"

namespace grepair {
namespace {

constexpr char kSymRule[] = R"(
  RULE sym CLASS incomplete
  MATCH (x:P)-[knows]->(y:P)
  WHERE NOT EDGE (y)-[knows]->(x)
  ACTION ADD_EDGE (y)-[knows]->(x)
)";

class EngineOptionsTest : public ::testing::Test {
 protected:
  EngineOptionsTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    p_ = vocab_->Label("P");
    knows_ = vocab_->Label("knows");
  }

  RuleSet Rules(const std::string& dsl) {
    auto r = ParseRules(dsl, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : RuleSet{};
  }

  // Chain of n one-directional knows edges: n violations.
  void BuildChain(size_t n) {
    std::vector<NodeId> nodes;
    for (size_t i = 0; i <= n; ++i) nodes.push_back(g_.AddNode(p_));
    for (size_t i = 0; i < n; ++i) g_.AddEdge(nodes[i], nodes[i + 1], knows_);
    g_.ResetJournal();
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId p_, knows_;
};

TEST_F(EngineOptionsTest, MaxFixesExactBoundaryIsNotExhausted) {
  BuildChain(5);
  RepairOptions opt;
  opt.max_fixes = 5;  // exactly enough
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.value().budget_exhausted);
  EXPECT_EQ(res.value().remaining_violations, 0u);
}

TEST_F(EngineOptionsTest, MaxFixesOneShortIsExhausted) {
  BuildChain(5);
  RepairOptions opt;
  opt.max_fixes = 4;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().budget_exhausted);
  EXPECT_EQ(res.value().remaining_violations, 1u);
  EXPECT_EQ(res.value().applied.size(), 4u);
}

TEST_F(EngineOptionsTest, NaiveMaxRoundsCaps) {
  BuildChain(6);
  RepairOptions opt;
  opt.strategy = RepairStrategy::kNaive;
  opt.max_rounds = 1;  // symmetric adds all land in round one, so this
                       // suffices here — but flags exhausted if capped
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
}

TEST_F(EngineOptionsTest, CustomCostModelScalesReportedCost) {
  BuildChain(3);
  RepairOptions opt;
  opt.cost_model.edge_insert = 5.0;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res.value().repair_cost, 15.0);  // 3 adds x 5.0
}

TEST_F(EngineOptionsTest, EmptyConfidenceAttrDisablesWeighting) {
  // Two-capital conflict with conf attributes, but weighting disabled: the
  // greedy engine no longer has a reason to prefer either deletion; it
  // must still terminate cleanly.
  RuleSet rules = Rules(R"(
    RULE one_cap CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    ACTION DEL_EDGE e2
  )");
  SymbolId city = vocab_->Label("City"), country = vocab_->Label("Country");
  SymbolId cap = vocab_->Label("capital_of");
  SymbolId conf = vocab_->Attr("conf");
  NodeId c1 = g_.AddNode(city), c2 = g_.AddNode(city);
  NodeId y = g_.AddNode(country);
  EdgeId e1 = g_.AddEdge(c1, y, cap).value();
  EdgeId e2 = g_.AddEdge(c2, y, cap).value();
  g_.SetEdgeAttr(e1, conf, vocab_->Value("90"));
  g_.SetEdgeAttr(e2, conf, vocab_->Value("30"));
  g_.ResetJournal();

  RepairOptions opt;
  opt.confidence_attr.clear();
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, rules);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
  EXPECT_EQ(res.value().applied.size(), 1u);
  // Exactly one of the two edges survives.
  EXPECT_NE(g_.EdgeAlive(e1), g_.EdgeAlive(e2));
}

TEST_F(EngineOptionsTest, OscillationDetectionWorksForBatchToo) {
  RuleSet rules = Rules(R"(
    RULE add_back CLASS incomplete
    MATCH (x:P)-[follows]->(y:P)
    WHERE NOT EDGE (y)-[follows]->(x)
    ACTION ADD_EDGE (y)-[follows]->(x)

    RULE no_mutual CLASS conflict
    MATCH (x:P)-[e1:follows]->(y:P), (y)-[e2:follows]->(x)
    ACTION DEL_EDGE e2
  )");
  NodeId a = g_.AddNode(p_), b = g_.AddNode(p_);
  g_.AddEdge(a, b, vocab_->Label("follows"));
  g_.ResetJournal();

  RepairOptions opt;
  opt.strategy = RepairStrategy::kBatch;
  opt.detect_oscillation = true;
  opt.max_fixes = 500;
  opt.max_rounds = 500;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, rules);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().oscillation_detected ||
              res.value().budget_exhausted);
}

TEST_F(EngineOptionsTest, ExactTinyBudgetFallsBackGracefully) {
  BuildChain(4);
  uint64_t fp = g_.Fingerprint();
  RepairOptions opt;
  opt.strategy = RepairStrategy::kExact;
  opt.exact_max_expansions = 1;  // cannot even finish one probe
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().budget_exhausted);
  // No full repair found: the graph must be left untouched.
  EXPECT_EQ(g_.Fingerprint(), fp);
  EXPECT_GT(res.value().remaining_violations, 0u);
}

TEST_F(EngineOptionsTest, ExactDepthLimitRespected) {
  BuildChain(6);  // needs 6 fixes
  RepairOptions opt;
  opt.strategy = RepairStrategy::kExact;
  opt.exact_max_depth = 3;  // cannot reach a fixpoint
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.value().remaining_violations, 0u);
}

TEST_F(EngineOptionsTest, DetectMsIsTracked) {
  BuildChain(10);
  RepairEngine engine;
  auto res = engine.Run(&g_, Rules(kSymRule));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.value().total_ms, 0.0);
  EXPECT_GE(res.value().detect_ms, 0.0);
  EXPECT_LE(res.value().detect_ms, res.value().total_ms + 0.5);
  EXPECT_GT(res.value().matcher_expansions, 0u);
}

}  // namespace
}  // namespace grepair
