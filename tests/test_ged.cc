// Exact GED tests: hand-computed distances, metric-style properties on
// random small graphs, lower-bound admissibility, and the journal-cost
// relationship (invariant 6 of DESIGN.md).
#include <gtest/gtest.h>

#include "ged/ged.h"
#include "util/rng.h"

namespace grepair {
namespace {

class GedTest : public ::testing::Test {
 protected:
  GedTest() : vocab_(MakeVocabulary()) {
    a_ = vocab_->Label("A");
    b_ = vocab_->Label("B");
    e_ = vocab_->Label("e");
    f_ = vocab_->Label("f");
  }

  double Ged(const Graph& g1, const Graph& g2) {
    GedOptions opt;
    GedResult r = ExactGed(g1, g2, opt);
    EXPECT_TRUE(r.optimal);
    return r.distance;
  }

  VocabularyPtr vocab_;
  SymbolId a_, b_, e_, f_;
};

TEST_F(GedTest, IdenticalGraphsZero) {
  Graph g(vocab_);
  NodeId x = g.AddNode(a_), y = g.AddNode(b_);
  g.AddEdge(x, y, e_);
  EXPECT_DOUBLE_EQ(Ged(g, g), 0.0);
}

TEST_F(GedTest, EmptyVsGraphCountsInsertions) {
  Graph empty(vocab_);
  Graph g(vocab_);
  NodeId x = g.AddNode(a_), y = g.AddNode(b_);
  g.AddEdge(x, y, e_);
  EXPECT_DOUBLE_EQ(Ged(empty, g), 3.0);  // 2 nodes + 1 edge
  EXPECT_DOUBLE_EQ(Ged(g, empty), 3.0);
}

TEST_F(GedTest, SingleEdgeDeletion) {
  Graph g1(vocab_);
  NodeId x = g1.AddNode(a_), y = g1.AddNode(a_);
  g1.AddEdge(x, y, e_);
  Graph g2 = g1.Clone();
  g2.RemoveEdge(0);
  EXPECT_DOUBLE_EQ(Ged(g1, g2), 1.0);
}

TEST_F(GedTest, RelabelCheaperThanDeleteInsert) {
  Graph g1(vocab_);
  NodeId x1 = g1.AddNode(a_), y1 = g1.AddNode(a_);
  g1.AddEdge(x1, y1, e_);
  Graph g2(vocab_);
  NodeId x2 = g2.AddNode(a_), y2 = g2.AddNode(a_);
  g2.AddEdge(x2, y2, f_);  // same structure, different edge label
  EXPECT_DOUBLE_EQ(Ged(g1, g2), 1.0);  // one relabel
}

TEST_F(GedTest, NodeRelabelPlusAttr) {
  Graph g1(vocab_);
  NodeId x = g1.AddNode(a_);
  g1.SetNodeAttr(x, vocab_->Attr("k"), vocab_->Value("1"));
  Graph g2(vocab_);
  NodeId y = g2.AddNode(b_);
  g2.SetNodeAttr(y, vocab_->Attr("k"), vocab_->Value("2"));
  EXPECT_DOUBLE_EQ(Ged(g1, g2), 2.0);  // label + attr value
}

TEST_F(GedTest, SelfLoopHandled) {
  Graph g1(vocab_);
  NodeId x = g1.AddNode(a_);
  g1.AddEdge(x, x, e_);
  Graph g2(vocab_);
  g2.AddNode(a_);
  EXPECT_DOUBLE_EQ(Ged(g1, g2), 1.0);
}

TEST_F(GedTest, SymmetricOnRandomPairs) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    auto make = [&](uint64_t seed) {
      Rng r(seed);
      Graph g(vocab_);
      std::vector<NodeId> nodes;
      size_t n = 2 + r.NextBounded(3);
      for (size_t i = 0; i < n; ++i)
        nodes.push_back(g.AddNode(r.NextBernoulli(0.5) ? a_ : b_));
      size_t m = r.NextBounded(2 * n);
      for (size_t i = 0; i < m; ++i)
        g.AddEdge(nodes[r.PickIndex(nodes)], nodes[r.PickIndex(nodes)],
                  r.NextBernoulli(0.5) ? e_ : f_);
      return g;
    };
    Graph g1 = make(rng.Next());
    Graph g2 = make(rng.Next());
    double d12 = Ged(g1, g2);
    double d21 = Ged(g2, g1);
    EXPECT_NEAR(d12, d21, 1e-9) << "trial " << trial;
  }
}

TEST_F(GedTest, LowerBoundIsAdmissible) {
  Rng rng(17);
  CostModel costs;
  for (int trial = 0; trial < 10; ++trial) {
    auto make = [&](uint64_t seed) {
      Rng r(seed);
      Graph g(vocab_);
      std::vector<NodeId> nodes;
      size_t n = 2 + r.NextBounded(3);
      for (size_t i = 0; i < n; ++i)
        nodes.push_back(g.AddNode(r.NextBernoulli(0.5) ? a_ : b_));
      for (size_t i = 0; i < n; ++i)
        g.AddEdge(nodes[r.PickIndex(nodes)], nodes[r.PickIndex(nodes)], e_);
      return g;
    };
    Graph g1 = make(rng.Next());
    Graph g2 = make(rng.Next());
    EXPECT_LE(GedLowerBound(g1, g2, costs), Ged(g1, g2) + 1e-9);
  }
}

TEST_F(GedTest, TriangleInequalitySpotChecks) {
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    auto make = [&](uint64_t seed) {
      Rng r(seed);
      Graph g(vocab_);
      std::vector<NodeId> nodes;
      size_t n = 2 + r.NextBounded(2);
      for (size_t i = 0; i < n; ++i)
        nodes.push_back(g.AddNode(r.NextBernoulli(0.5) ? a_ : b_));
      size_t m = r.NextBounded(n);
      for (size_t i = 0; i < m; ++i)
        g.AddEdge(nodes[r.PickIndex(nodes)], nodes[r.PickIndex(nodes)], e_);
      return g;
    };
    Graph g1 = make(rng.Next());
    Graph g2 = make(rng.Next());
    Graph g3 = make(rng.Next());
    EXPECT_LE(Ged(g1, g3), Ged(g1, g2) + Ged(g2, g3) + 1e-9);
  }
}

TEST_F(GedTest, JournalCostUpperBoundsGed) {
  // Apply a random edit script; the journal cost is one valid edit path,
  // so the optimal GED can never exceed it.
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g(vocab_);
    std::vector<NodeId> nodes;
    for (int i = 0; i < 4; ++i)
      nodes.push_back(g.AddNode(rng.NextBernoulli(0.5) ? a_ : b_));
    for (int i = 0; i < 4; ++i)
      g.AddEdge(nodes[rng.PickIndex(nodes)], nodes[rng.PickIndex(nodes)], e_);
    Graph before = g.Clone();
    size_t mark = g.JournalSize();

    for (int k = 0; k < 3; ++k) {
      switch (rng.NextBounded(4)) {
        case 0:
          g.AddEdge(nodes[rng.PickIndex(nodes)], nodes[rng.PickIndex(nodes)],
                    f_);
          break;
        case 1: {
          auto edges = g.Edges();
          if (!edges.empty()) g.RemoveEdge(edges[rng.PickIndex(edges)]);
          break;
        }
        case 2: {
          NodeId n = nodes[rng.PickIndex(nodes)];
          if (g.NodeAlive(n))
            g.SetNodeLabel(n, g.NodeLabel(n) == a_ ? b_ : a_);
          break;
        }
        default:
          g.AddNode(a_);
          break;
      }
    }
    CostModel costs;
    double journal_cost = g.CostSince(mark, costs);
    GedOptions opt;
    GedResult r = ExactGed(before, g, opt);
    ASSERT_TRUE(r.optimal);
    EXPECT_LE(r.distance, journal_cost + 1e-9) << "trial " << trial;
  }
}

TEST_F(GedTest, BudgetExhaustionReportsNonOptimal) {
  Graph g1(vocab_), g2(vocab_);
  for (int i = 0; i < 9; ++i) {
    g1.AddNode(a_);
    g2.AddNode(b_);
  }
  GedOptions opt;
  opt.max_expansions = 10;
  GedResult r = ExactGed(g1, g2, opt);
  EXPECT_FALSE(r.optimal);
  EXPECT_GT(r.distance, 0.0);
}

}  // namespace
}  // namespace grepair
