#include "util/crc32c.h"

#include <array>

namespace grepair {
namespace {

// Reflected CRC32C table for the Castagnoli polynomial (reversed form
// 0x82F63B78), generated once at first use.
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  return kTable;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

uint32_t Crc32cMask(uint32_t crc) {
  // Rotate right by 15 bits and add a constant (the LevelDB masking).
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace grepair
