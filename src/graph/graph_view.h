// The read seam between graph storage and everything that matches over it.
// GraphView is the abstract read-only interface all detection/matching/
// mining/baseline layers code against; the journaled mutable Graph is one
// implementation (the sole writer), the immutable read-optimized
// GraphSnapshot (snapshot.h) is another. Keeping readers on this seam is
// what lets a detection pass run over a CSR-packed snapshot while the write
// path keeps its journal — and what future sharded/multi-backend stores
// plug into.
#ifndef GREPAIR_GRAPH_GRAPH_VIEW_H_
#define GREPAIR_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/edit_log.h"
#include "graph/vocabulary.h"

namespace grepair {

class GraphSnapshot;

/// THE storage partition function of the read seam: node `n` of a view
/// with `num_shards` storage shards lives in shard `n % num_shards`, and an
/// edge lives in its src's shard. Shared by ShardedSnapshot and the
/// detection fan-out so data placement and work placement cannot drift
/// apart. Dense ids make the modulo an even hash partition.
inline size_t StorageShardOfNode(NodeId n, size_t num_shards) {
  return num_shards <= 1 ? 0 : n % num_shards;
}

/// Sorted small-vector attribute map (symbol -> symbol). Value id 0 means
/// "absent"; setting an attribute to 0 erases it.
class AttrMap {
 public:
  /// Returns the value id, or 0 when absent.
  SymbolId Get(SymbolId attr) const;
  /// Sets (value != 0) or erases (value == 0); returns the previous value.
  /// Erasing the last entry releases the map's capacity (tombstoned
  /// elements keep their AttrMap alive indefinitely, so an emptied map must
  /// not pin its old allocation).
  SymbolId Set(SymbolId attr, SymbolId value);
  /// Pre-sizes for `n` entries (used when bulk-building attribute columns).
  void Reserve(size_t n) { entries_.reserve(n); }
  /// All present (attr, value) pairs, sorted by attr id.
  const std::vector<std::pair<SymbolId, SymbolId>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }
  bool operator==(const AttrMap& other) const = default;

 private:
  std::vector<std::pair<SymbolId, SymbolId>> entries_;
};

/// Immutable view of one edge.
struct EdgeView {
  EdgeId id;
  NodeId src;
  NodeId dst;
  SymbolId label;
};

/// Non-owning contiguous range of element ids (NodeId and EdgeId share one
/// underlying type). What adjacency lists and index partitions hand out:
/// cheap to copy, range-for friendly.
struct IdSpan {
  const uint32_t* ptr = nullptr;
  size_t len = 0;

  const uint32_t* begin() const { return ptr; }
  const uint32_t* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  uint32_t operator[](size_t i) const { return ptr[i]; }
};

/// Abstract read-only graph interface. Semantics (shared by every
/// implementation, asserted by tests/test_snapshot.cc):
///  - ids are stable names; dead (tombstoned) elements keep their label,
///    attributes and endpoints addressable;
///  - OutEdges/InEdges enumerate alive incident edges in the store's
///    insertion order — implementations must preserve that order exactly,
///    because match enumeration order (and thus every downstream repair
///    decision) depends on it;
///  - label/attr candidate lookups may come back in any order unless the
///    implementation says otherwise via the Collect* return value.
class GraphView {
 public:
  virtual ~GraphView() = default;

  virtual const VocabularyPtr& vocab() const = 0;

  // --- Element liveness and counts -------------------------------------
  virtual bool NodeAlive(NodeId n) const = 0;
  virtual bool EdgeAlive(EdgeId e) const = 0;
  virtual size_t NumNodes() const = 0;
  virtual size_t NumEdges() const = 0;
  /// Id-space upper bounds (alive or dead ids are all < these).
  virtual size_t NodeIdBound() const = 0;
  virtual size_t EdgeIdBound() const = 0;

  // --- Labels and attributes -------------------------------------------
  virtual SymbolId NodeLabel(NodeId n) const = 0;
  virtual SymbolId EdgeLabel(EdgeId e) const = 0;
  virtual EdgeView Edge(EdgeId e) const = 0;
  virtual SymbolId NodeAttr(NodeId n, SymbolId attr) const = 0;
  virtual SymbolId EdgeAttr(EdgeId e, SymbolId attr) const = 0;
  virtual const AttrMap& NodeAttrs(NodeId n) const = 0;
  virtual const AttrMap& EdgeAttrs(EdgeId e) const = 0;

  // --- Adjacency --------------------------------------------------------
  /// Alive incident edge ids of an alive node, in insertion order.
  virtual IdSpan OutEdges(NodeId n) const = 0;
  virtual IdSpan InEdges(NodeId n) const = 0;
  size_t OutDegree(NodeId n) const { return OutEdges(n).size(); }
  size_t InDegree(NodeId n) const { return InEdges(n).size(); }
  size_t Degree(NodeId n) const { return OutDegree(n) + InDegree(n); }

  /// First alive edge src-[label]->dst in adjacency-scan order, or
  /// kInvalidEdge. label==0 matches any label.
  virtual EdgeId FindEdge(NodeId src, NodeId dst, SymbolId label) const = 0;
  /// Existence-only variant; implementations may answer faster than
  /// FindEdge (GraphSnapshot binary-searches its sorted edge index).
  virtual bool HasEdge(NodeId src, NodeId dst, SymbolId label) const {
    return FindEdge(src, dst, label) != kInvalidEdge;
  }

  // --- Whole-graph and index enumeration --------------------------------
  /// All alive node / edge ids (ascending).
  virtual std::vector<NodeId> Nodes() const = 0;
  virtual std::vector<EdgeId> Edges() const = 0;

  /// Fills *out (replacing its contents) with alive nodes carrying `label`
  /// (label==0 -> all alive nodes). Returns true when *out is already in
  /// ascending id order — callers needing sorted candidates skip their own
  /// sort, which is how the snapshot's label-partitioned index makes
  /// seeding a contiguous-range copy instead of a hash-set scan + sort.
  virtual bool CollectNodesWithLabel(SymbolId label,
                                     std::vector<NodeId>* out) const = 0;
  /// Same contract for alive nodes whose attribute `attr` equals `value`
  /// (value != 0).
  virtual bool CollectNodesWithAttr(SymbolId attr, SymbolId value,
                                    std::vector<NodeId>* out) const = 0;
  virtual size_t CountNodesWithLabel(SymbolId label) const = 0;
  virtual size_t CountEdgesWithLabel(SymbolId label) const = 0;

  /// Non-null when this view IS an immutable GraphSnapshot, so read paths
  /// that snapshot their input can skip re-snapshotting one.
  virtual const GraphSnapshot* AsSnapshot() const { return nullptr; }

  /// True for any immutable read-optimized snapshot implementation —
  /// monolithic GraphSnapshot or sharded ShardedSnapshot — i.e. a view a
  /// parallel pass may read directly without building its own snapshot
  /// (SnapshotForPass gates on this).
  virtual bool IsSnapshotView() const { return AsSnapshot() != nullptr; }

  /// Storage shards backing this view (1 = unsharded). When > 1, the view
  /// hash-partitions its columns by StorageShardOfNode (edges follow their
  /// src) and the parallel detectors align their fan-out units with that
  /// partition so one task's reads stay within one shard's columns.
  virtual size_t NumStorageShards() const { return 1; }
};

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GRAPH_VIEW_H_
