// T2 — Repair quality: precision / recall / F1 (plus remaining violations
// and repair cost) for every method on every dataset at 5% error rate.
// Expected shape: greedy/batch dominate; naive loses precision on conflicts
// (no confidence semantics); cfd only covers the relational subset;
// detect_only is the floor with recall 0.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

void RunDataset(TableWriter* t, const DatasetBundle& bundle) {
  for (const std::string& method : StandardMethods()) {
    MethodOutcome out = MustRun(bundle, method);
    t->AddRow({bundle.name, method,
               TableWriter::Num(out.quality.precision, 3),
               TableWriter::Num(out.quality.recall, 3),
               TableWriter::Num(out.quality.f1, 3),
               TableWriter::Int(int64_t(out.repair.remaining_violations)),
               TableWriter::Num(out.repair.repair_cost, 1),
               TableWriter::Num(out.repair.total_ms, 1)});
  }
}

}  // namespace

int main() {
  InjectOptions iopt;
  iopt.rate = 0.05;

  TableWriter t("T2: repair quality per method x dataset (5% errors)",
                {"dataset", "method", "precision", "recall", "F1",
                 "remaining", "cost", "time_ms"});

  KgOptions kg;
  kg.num_persons = 3000;
  kg.num_cities = 300;
  kg.num_countries = 30;
  kg.num_orgs = 200;
  RunDataset(&t, MustKgBundle(kg, iopt));

  SocialOptions social;
  social.num_persons = 5000;
  RunDataset(&t, MustSocialBundle(social, iopt));

  CitationOptions cite;
  cite.num_papers = 3000;
  cite.num_authors = 1000;
  RunDataset(&t, MustCitationBundle(cite, iopt));

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
