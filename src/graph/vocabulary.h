// Shared symbol space for graphs and rules. A Graph and the RuleSet applied
// to it must use the same Vocabulary so label/attribute ids agree.
#ifndef GREPAIR_GRAPH_VOCABULARY_H_
#define GREPAIR_GRAPH_VOCABULARY_H_

#include <memory>
#include <string_view>

#include "util/dictionary.h"

namespace grepair {

/// Three interned namespaces: element labels (node types and edge relation
/// names share one space), attribute names, and attribute values. All values
/// are symbolic strings — numeric comparisons are done on the string form by
/// the predicate evaluator where a rule requests it.
class Vocabulary {
 public:
  /// Interns an element label (e.g. "Person", "knows").
  SymbolId Label(std::string_view s) { return labels_.Intern(s); }
  /// Interns an attribute name (e.g. "name", "conf").
  SymbolId Attr(std::string_view s) { return attrs_.Intern(s); }
  /// Interns an attribute value (e.g. "Alice", "1970").
  SymbolId Value(std::string_view s) { return values_.Intern(s); }

  const std::string& LabelName(SymbolId id) const { return labels_.Name(id); }
  const std::string& AttrName(SymbolId id) const { return attrs_.Name(id); }
  const std::string& ValueName(SymbolId id) const { return values_.Name(id); }

  bool LookupLabel(std::string_view s, SymbolId* id) const {
    return labels_.Lookup(s, id);
  }

  size_t NumLabels() const { return labels_.size(); }
  size_t NumAttrs() const { return attrs_.size(); }
  size_t NumValues() const { return values_.size(); }

 private:
  Dictionary labels_;
  Dictionary attrs_;
  Dictionary values_;
};

using VocabularyPtr = std::shared_ptr<Vocabulary>;

/// Creates a fresh shared vocabulary.
inline VocabularyPtr MakeVocabulary() { return std::make_shared<Vocabulary>(); }

}  // namespace grepair

#endif  // GREPAIR_GRAPH_VOCABULARY_H_
