// Batched parallel delta-detection: fans the per-rule DeltaMatcher search of
// an edit batch across a ThreadPool, with bit-identical output to the
// sequential per-rule FindDelta loop regardless of thread count.
//
// Fan-out unit is (rule × anchor-shard): the anchor lists a delta induces
// (DeltaMatcher::ComputeAnchors — pattern-independent, so computed once per
// batch) are split into slices, and each (rule, edge-slice) /
// (rule, node-slice) pair is an independent task running the raw anchored
// searches of DeltaMatcher::MatchEdgeAnchors / MatchNodeAnchors. Over an
// unsharded view the slices are contiguous blocks; over a sharded store
// (GraphView::NumStorageShards() > 1, e.g. ShardedSnapshot) slicing is
// STORAGE-ALIGNED — one slice per storage shard holding exactly the
// anchors that shard owns (an edge anchor belongs to its src's shard), so
// a task's anchored reads stay within one shard's columns.
//
// Determinism: the sequential FindDelta visits anchor edges in ascending-id
// order, then anchor nodes, each anchored search with its OWN expansion
// budget, deduplicating by match footprint as it goes. Workers collect raw
// (pre-dedup) matches; the calling thread merges task outputs back into
// that exact visit order — block slices by concatenation, storage-aligned
// slices by a per-anchor-count interleave — and applies the same per-rule
// footprint dedup, so the surviving emission stream — and every stat —
// equals the sequential run for any shard x thread combination.
//
// Concurrency contract (DESIGN.md "Threading model"): the graph, rule set
// and vocabulary must not be mutated while Detect runs.
#ifndef GREPAIR_PARALLEL_DELTA_DETECTOR_H_
#define GREPAIR_PARALLEL_DELTA_DETECTOR_H_

#include <functional>

#include "graph/edit_log.h"
#include "graph/graph_view.h"
#include "grr/rule.h"
#include "match/incremental.h"
#include "parallel/thread_pool.h"

namespace grepair {

struct ParallelDeltaOptions {
  /// Fan out only when the delta induces at least this many anchors
  /// (nodes + edges); below it the pool round-trip outweighs the work and
  /// the sequential per-rule loop runs on the calling thread instead.
  size_t shard_min_anchors = 16;
  /// Upper bound on anchor slices per (rule, anchor kind); 0 = 2x pool
  /// thread count, which keeps all workers busy when one rule dominates
  /// without over-fragmenting tiny batches.
  size_t max_shards_per_rule = 0;
};

/// Stateless fan-out wrapper over one pool. Cheap to construct.
class ParallelDeltaDetector {
 public:
  /// Called once per surviving match, in the sequential order: rule id
  /// ascending, and within a rule the FindDelta enumeration order.
  using Emit = std::function<void(RuleId, const Match&)>;

  explicit ParallelDeltaDetector(ThreadPool* pool,
                                 ParallelDeltaOptions options = {});

  /// Enumerates, for every rule, every match FindDelta(delta) would report.
  /// Equivalent to
  ///   for r: DeltaMatcher(g, rules[r].pattern()).FindDelta(delta, emit)
  /// but parallel, including identical expansion counts (each anchored
  /// search carries its own budget in both paths). Early termination is not
  /// supported: emit returns void.
  ///
  /// `plans`, when non-null, is an array of rules.size() compiled-plan
  /// pointers (entries may be null), index-aligned with the rule set and
  /// compiled against `g`'s label cardinalities; every task of rule r (and
  /// the sequential small-delta path) then matches through plans[r].
  /// Streams are bit-identical with or without plans.
  MatchStats Detect(const GraphView& g, const RuleSet& rules,
                    const std::vector<EditEntry>& delta, const Emit& emit,
                    const MatchPlan* const* plans = nullptr) const;

  /// Same fan-out from precomputed anchors, for callers (the serving layer)
  /// that already extracted them for stats.
  MatchStats Detect(const GraphView& g, const RuleSet& rules,
                    const DeltaMatcher::Anchors& anchors, const Emit& emit,
                    const MatchPlan* const* plans = nullptr) const;

  /// True when a delta with `num_anchors` anchors would fan out over the
  /// pool (rather than run the sequential loop on the calling thread).
  /// Exposed so callers deciding whether to build a read snapshot for the
  /// pass use the exact gate Detect applies.
  bool WouldFanOut(size_t num_anchors) const {
    return pool_ != nullptr && pool_->NumThreads() > 1 &&
           num_anchors >= options_.shard_min_anchors;
  }

 private:
  ThreadPool* pool_;
  ParallelDeltaOptions options_;
};

}  // namespace grepair

#endif  // GREPAIR_PARALLEL_DELTA_DETECTOR_H_
