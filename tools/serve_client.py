#!/usr/bin/env python3
"""Minimal line-protocol client for `grepair serve --listen`.

Reads protocol lines from stdin (or --cmd arguments), sends them to the
server, and prints every response line the server returns. Lines starting
with `!sleep <seconds>` are client-side directives (used by CI to let the
admission token bucket refill between bursts) and are not sent.

Usage:
  grepair serve g.tsv r.grr --listen 7471 &
  printf 'add_node Org\ncommit\nquit\n' | tools/serve_client.py --port 7471

With --readers N the client additionally opens N concurrent connections
that each loop `detect` / `violations` (the lock-free published-read verbs)
for --read-seconds while the main connection runs the scripted lines — a
mixed read/write load generator for the epoch-publication path. Each reader
prints a summary line `reader <i> reads=<n> errors=<m>` on exit; reads that
answer `err` (e.g. `busy` from --max-read-threads shedding) count as
errors, not crashes.

The main connection sends everything as fast as the socket accepts it, then
closes the write side and drains responses to EOF — so over-rate bursts
genuinely race the server's token bucket, which is exactly what the
admission tests want. Responses may include multi-line payloads
(`metrics`); they are printed verbatim.
"""

import argparse
import socket
import sys
import threading
import time


def read_loop(host: str, port: int, timeout: float, seconds: float,
              index: int, results: list) -> None:
    """One reader connection: alternate detect / violations until the
    deadline, counting completed reads and protocol errors."""
    reads = 0
    errors = 0
    try:
        with socket.create_connection((host, port), timeout) as s:
            s.settimeout(timeout)
            f = s.makefile("rb")
            f.readline()  # build-info greeting
            f.readline()  # serving banner
            deadline = time.monotonic() + seconds
            verbs = [b"detect\n", b"violations 0 5\n"]
            while time.monotonic() < deadline:
                s.sendall(verbs[reads % 2])
                resp = f.readline()
                if not resp:
                    break
                if resp.startswith(b"err"):
                    errors += 1
                else:
                    reads += 1
            s.sendall(b"quit\n")
    except OSError:
        pass
    results[index] = (reads, errors)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument(
        "--cmd",
        action="append",
        default=[],
        help="protocol line to send (repeatable; stdin is read when absent)",
    )
    ap.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds",
    )
    ap.add_argument(
        "--readers",
        type=int,
        default=0,
        help="concurrent connections looping detect/violations while the "
        "scripted lines run",
    )
    ap.add_argument(
        "--read-seconds",
        type=float,
        default=2.0,
        help="how long each --readers connection keeps reading",
    )
    args = ap.parse_args()

    lines = args.cmd if args.cmd else [l.rstrip("\n") for l in sys.stdin]

    results = [(0, 0)] * args.readers
    threads = [
        threading.Thread(
            target=read_loop,
            args=(args.host, args.port, args.timeout, args.read_seconds, i,
                  results),
        )
        for i in range(args.readers)
    ]
    for t in threads:
        t.start()

    with socket.create_connection((args.host, args.port), args.timeout) as s:
        s.settimeout(args.timeout)
        for line in lines:
            if line.startswith("!sleep "):
                time.sleep(float(line.split(None, 1)[1]))
                continue
            s.sendall(line.encode() + b"\n")
        s.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            try:
                chunk = s.recv(65536)
            except (socket.timeout, ConnectionResetError):
                break
            if not chunk:
                break
            buf += chunk
        sys.stdout.write(buf.decode(errors="replace"))

    for t in threads:
        t.join()
    for i, (reads, errors) in enumerate(results):
        sys.stdout.write(f"reader {i} reads={reads} errors={errors}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
