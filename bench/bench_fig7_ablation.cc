// F7 — Ablation of the efficiency techniques on a fixed KG workload:
//  (a) incremental (delta-anchored) re-detection vs full re-detection after
//      every fix, same greedy policy — the headline optimization;
//  (b) batching independent fixes vs one-at-a-time vs naive rounds.
// Expected shape: incremental wins by an order of magnitude at this scale
// (and the gap grows with |G|); batching cuts rounds by >10x vs fixes.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  KgOptions gopt;
  gopt.num_persons = 3000;
  gopt.num_cities = 300;
  gopt.num_countries = 30;
  gopt.num_orgs = 200;
  InjectOptions iopt;
  iopt.rate = 0.05;
  DatasetBundle bundle = MustKgBundle(gopt, iopt);

  TableWriter t("F7: ablation of efficiency techniques (KG, 5% errors)",
                {"configuration", "fixes", "rounds", "expansions",
                 "detect_ms", "total_ms"});

  auto add = [&](const std::string& name, const MethodOutcome& out) {
    t.AddRow({name, TableWriter::Int(int64_t(out.repair.applied.size())),
              TableWriter::Int(int64_t(out.repair.rounds)),
              TableWriter::Int(int64_t(out.repair.matcher_expansions)),
              TableWriter::Num(out.repair.detect_ms, 1),
              TableWriter::Num(out.repair.total_ms, 1)});
  };

  {
    RepairOptions opt;
    opt.incremental = true;
    add("greedy + incremental (full system)", MustRun(bundle, "greedy", opt));
  }
  {
    RepairOptions opt;
    opt.incremental = false;
    add("greedy + full re-detection", MustRun(bundle, "greedy", opt));
  }
  {
    RepairOptions opt;
    opt.incremental = true;
    add("batch + incremental", MustRun(bundle, "batch", opt));
  }
  {
    RepairOptions opt;
    opt.incremental = false;
    add("batch + full re-detection", MustRun(bundle, "batch", opt));
  }
  add("naive rounds (baseline)", MustRun(bundle, "naive"));

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
