#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace grepair {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Formats a double the way Prometheus clients expect: integral values
// without a fractional tail, everything else with enough digits to round
// trip.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// Escapes a label value per the exposition format: backslash, double
// quote and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// {name="value",...} with an optional extra label appended (histogram le).
std::string LabelBlock(const Labels& labels, const std::string& extra_name,
                       const std::string& extra_value) {
  if (labels.empty() && extra_name.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += MetricsRegistry::SanitizeName(k) + "=\"" + EscapeLabelValue(v) +
           "\"";
  }
  if (!extra_name.empty()) {
    if (!first) out += ",";
    out += extra_name + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t ThreadCellSlot() {
  // Dense sequential slots wrap around kCells; two threads share a cell
  // only past kCells live threads, which only costs contention, never
  // correctness.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return slot;
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  cells_ = std::make_unique<internal::Cell[]>((bounds_.size() + 1) *
                                              internal::kCells);
}

void Histogram::Observe(double v) {
  // First bucket with v <= bound; +Inf (index bounds_.size()) otherwise.
  const size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  const size_t slot = internal::ThreadCellSlot();
  cells_[b * internal::kCells + slot].v.fetch_add(1,
                                                  std::memory_order_relaxed);
  // Portable atomic double add (fetch_add on atomic<double> is C++20 but
  // spotty under sanitizers): a relaxed CAS loop on an uncontended padded
  // cell converges in one iteration in practice.
  std::atomic<double>& sum = sum_cells_[slot].v;
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  const size_t n = (bounds_.size() + 1) * internal::kCells;
  for (size_t i = 0; i < n; ++i)
    total += cells_[i].v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& c : sum_cells_)
    total += c.v.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::BucketCount(size_t i) const {
  uint64_t total = 0;
  for (size_t s = 0; s < internal::kCells; ++s)
    total += cells_[i * internal::kCells + s].v.load(
        std::memory_order_relaxed);
  return total;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.01, 0.025, 0.05, 0.1,  0.25,  0.5,   1.0,    2.5,
      5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0};
  return kBuckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // leaked: process-long
  return *g;
}

std::string MetricsRegistry::SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || (digit && !out.empty())) {
      out += c;
    } else if (digit) {
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

// Called with mu_ held. Children are unique_ptr-boxed so the returned
// pointer survives sibling registrations reallocating the vector.
MetricsRegistry::Child* MetricsRegistry::FindOrAddChild(
    const std::string& name, const std::string& help, Kind kind,
    const Labels& labels) {
  auto [it, inserted] = families_.try_emplace(SanitizeName(name));
  Family& fam = it->second;
  if (inserted) {
    fam.help = help;
    fam.kind = kind;
  }
  // A name reused with a different kind is a programming error; return the
  // existing family's child of matching labels so callers cannot corrupt
  // the exposition, creating the instrument under the registered kind.
  for (auto& c : fam.children)
    if (c->labels == labels) return c.get();
  fam.children.push_back(std::make_unique<Child>());
  fam.children.back()->labels = labels;
  return fam.children.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* c = FindOrAddChild(name, help, Kind::kCounter, labels);
  if (c->counter == nullptr) c->counter = std::make_unique<Counter>();
  return c->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* c = FindOrAddChild(name, help, Kind::kGauge, labels);
  if (c->gauge == nullptr) c->gauge = std::make_unique<Gauge>();
  return c->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* c = FindOrAddChild(name, help, Kind::kHistogram, labels);
  if (c->histogram == nullptr)
    c->histogram = std::make_unique<Histogram>(std::move(bounds));
  return c->histogram.get();
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, fam] : families_) n += fam.children.size();
  return n;
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    const char* type = fam.kind == Kind::kCounter   ? "counter"
                       : fam.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
    for (const auto& child : fam.children) {
      const Child& c = *child;
      if (c.counter != nullptr) {
        out += name + LabelBlock(c.labels, "", "") + " " +
               FormatValue(static_cast<double>(c.counter->Value())) + "\n";
      } else if (c.gauge != nullptr) {
        out += name + LabelBlock(c.labels, "", "") + " " +
               FormatValue(static_cast<double>(c.gauge->Value())) + "\n";
      } else if (c.histogram != nullptr) {
        const Histogram& h = *c.histogram;
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.BucketCount(b);
          out += name + "_bucket" +
                 LabelBlock(c.labels, "le", FormatValue(h.bounds()[b])) +
                 " " + FormatValue(static_cast<double>(cumulative)) + "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out += name + "_bucket" + LabelBlock(c.labels, "le", "+Inf") + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
        out += name + "_sum" + LabelBlock(c.labels, "", "") + " " +
               FormatValue(h.Sum()) + "\n";
        out += name + "_count" + LabelBlock(c.labels, "", "") + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace grepair
