// T1 — Dataset statistics table: the three shipped workloads at default
// evaluation scale, with clean sizes, rule counts, and the number of
// injected errors per semantic class at the default 5% error rate.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

void Row(TableWriter* t, const DatasetBundle& b) {
  size_t inc = b.truth.CountClass(ErrorClass::kIncomplete);
  size_t con = b.truth.CountClass(ErrorClass::kConflict);
  size_t red = b.truth.CountClass(ErrorClass::kRedundant);
  t->AddRow({b.name, TableWriter::Int(int64_t(b.clean_nodes)),
             TableWriter::Int(int64_t(b.clean_edges)),
             TableWriter::Int(int64_t(b.vocab->NumLabels() - 1)),
             TableWriter::Int(int64_t(b.rules.size())),
             TableWriter::Int(int64_t(inc)), TableWriter::Int(int64_t(con)),
             TableWriter::Int(int64_t(red)),
             TableWriter::Int(int64_t(b.truth.errors.size()))});
}

}  // namespace

int main() {
  InjectOptions iopt;
  iopt.rate = 0.05;

  TableWriter t("T1: datasets (5% injected error rate)",
                {"dataset", "|V|", "|E|", "labels", "rules", "incomplete",
                 "conflict", "redundant", "errors"});

  KgOptions kg;  // defaults: 5000 persons
  Row(&t, MustKgBundle(kg, iopt));
  SocialOptions social;  // defaults: 10000 users
  Row(&t, MustSocialBundle(social, iopt));
  CitationOptions cite;  // defaults: 4000 papers
  Row(&t, MustCitationBundle(cite, iopt));

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
