// GraphSnapshot equivalence suite: every read over the immutable snapshot
// must be bit-identical to the same read over the Graph it was built from —
// accessors, adjacency order (including revived-edge positions after undo),
// seed candidates, matcher expansions, and whole DetectAll violation streams
// across thread counts {1,2,4,8} on all three generator domains.
#include <gtest/gtest.h>

#include <algorithm>

#include "eval/experiment.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "match/incremental.h"
#include "match/matcher.h"
#include "repair/engine.h"
#include "snapshot_equivalence.h"

namespace grepair {
namespace {

DatasetBundle SmallKg() {
  KgOptions gopt;
  gopt.num_persons = 300;
  gopt.num_cities = 30;
  gopt.num_countries = 10;
  gopt.num_orgs = 20;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

DatasetBundle SmallSocial() {
  SocialOptions gopt;
  gopt.num_persons = 300;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeSocialBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

DatasetBundle SmallCitation() {
  CitationOptions gopt;
  gopt.num_papers = 200;
  gopt.num_authors = 80;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeCitationBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

TEST(SnapshotTest, AccessorEquivalenceOnInjectedKg) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  ExpectViewEquivalent(bundle.graph, snap);
  EXPECT_NE(snap.AsSnapshot(), nullptr);
  EXPECT_EQ(bundle.graph.AsSnapshot(), nullptr);
  EXPECT_GT(snap.MemoryBytes(), 0u);
}

// The hard case for adjacency-order preservation: removing an edge and
// undoing the removal revives it at the TAIL of its endpoints' adjacency
// lists (no longer in ascending id position). The snapshot must reproduce
// exactly that order, not an id-sorted one.
TEST(SnapshotTest, PreservesRevivedEdgeAdjacencyOrder) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  NodeId a = g.AddNode(person), b = g.AddNode(person), c = g.AddNode(person);
  EdgeId e0 = g.AddEdge(a, b, knows).value();
  EdgeId e1 = g.AddEdge(a, c, knows).value();
  EdgeId e2 = g.AddEdge(a, b, knows).value();  // parallel to e0
  size_t mark = g.JournalSize();
  ASSERT_TRUE(g.RemoveEdge(e0).ok());
  ASSERT_TRUE(g.UndoTo(mark).ok());  // e0 revived at the tail: e1, e2, e0

  std::vector<EdgeId> expected = {e1, e2, e0};
  ASSERT_EQ(ToVector(g.OutEdges(a)), expected);
  GraphSnapshot snap(g);
  EXPECT_EQ(ToVector(snap.OutEdges(a)), expected);
  ExpectViewEquivalent(g, snap);

  // Match enumeration over parallel edges follows that order on both
  // backends.
  Pattern p;
  VarId x = p.AddNode(person), y = p.AddNode(person);
  ASSERT_TRUE(p.AddEdge(x, y, knows).ok());
  std::vector<Match> over_g = Matcher(g, p).Collect();
  std::vector<Match> over_s = Matcher(snap, p).Collect();
  EXPECT_EQ(over_g, over_s);
}

// Snapshots taken mid-repair-history (merges, cascading removals, attribute
// rewrites) must still agree read-for-read.
TEST(SnapshotTest, AccessorEquivalenceAfterRepairMutations) {
  DatasetBundle bundle = SmallKg();
  Graph g = bundle.graph.Clone();
  RepairEngine engine;
  auto res = engine.Run(&g, bundle.rules);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  GraphSnapshot snap(g);
  ExpectViewEquivalent(g, snap);
}

void ExpectSeedEquivalence(const Graph& g, const RuleSet& rules) {
  GraphSnapshot snap(g);
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher over_g(g, rules[r].pattern());
    Matcher over_s(snap, rules[r].pattern());
    VarId sv_g = over_g.SeedVar();
    VarId sv_s = over_s.SeedVar();
    ASSERT_EQ(sv_g, sv_s) << rules[r].name();
    if (sv_g == kNoVar) continue;
    EXPECT_EQ(over_g.SeedCandidates(sv_g), over_s.SeedCandidates(sv_s))
        << rules[r].name();
  }
}

void ExpectMatchEquivalence(const Graph& g, const RuleSet& rules) {
  GraphSnapshot snap(g);
  for (RuleId r = 0; r < rules.size(); ++r) {
    std::vector<Match> a, b;
    MatchStats sa = Matcher(g, rules[r].pattern())
                        .FindAll(MatchOptions{}, [&](const Match& m) {
                          a.push_back(m);
                          return true;
                        });
    MatchStats sb = Matcher(snap, rules[r].pattern())
                        .FindAll(MatchOptions{}, [&](const Match& m) {
                          b.push_back(m);
                          return true;
                        });
    EXPECT_EQ(a, b) << rules[r].name();
    // Identical search trees, not just identical results.
    EXPECT_EQ(sa.expansions, sb.expansions) << rules[r].name();
    EXPECT_EQ(sa.matches, sb.matches) << rules[r].name();
    EXPECT_EQ(sa.exhausted, sb.exhausted) << rules[r].name();
  }
}

std::vector<Violation> Drain(ViolationStore* store) {
  std::vector<Violation> out;
  Violation v;
  while (store->PopBest(&v)) out.push_back(v);
  return out;
}

// DetectAll over the Graph vs over an explicit GraphSnapshot, across thread
// counts: identical violation streams in PopBest order (the order the
// repair engine consumes).
void ExpectDetectEquivalence(const Graph& g, const RuleSet& rules) {
  GraphSnapshot snap(g);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ViolationStore via_graph, via_snap;
    size_t n_g = DetectAll(g, rules, &via_graph, nullptr, threads);
    size_t n_s = DetectAll(snap, rules, &via_snap, nullptr, threads);
    EXPECT_EQ(n_g, n_s) << "threads=" << threads;
    std::vector<Violation> a = Drain(&via_graph), b = Drain(&via_snap);
    ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rule, b[i].rule) << "pop " << i;
      EXPECT_EQ(a[i].alternatives, b[i].alternatives) << "pop " << i;
      EXPECT_DOUBLE_EQ(a[i].best_cost, b[i].best_cost) << "pop " << i;
    }
  }
  // Sequential expansion statistics agree exactly as well.
  ViolationStore sg, ss;
  size_t exp_g = 0, exp_s = 0;
  DetectAll(g, rules, &sg, &exp_g, 1);
  DetectAll(snap, rules, &ss, &exp_s, 1);
  EXPECT_EQ(exp_g, exp_s);
}

TEST(SnapshotTest, KgSeedAndMatchAndDetectEquivalence) {
  DatasetBundle bundle = SmallKg();
  ExpectSeedEquivalence(bundle.graph, bundle.rules);
  ExpectMatchEquivalence(bundle.graph, bundle.rules);
  ExpectDetectEquivalence(bundle.graph, bundle.rules);
}

TEST(SnapshotTest, SocialSeedAndMatchAndDetectEquivalence) {
  DatasetBundle bundle = SmallSocial();
  ExpectSeedEquivalence(bundle.graph, bundle.rules);
  ExpectMatchEquivalence(bundle.graph, bundle.rules);
  ExpectDetectEquivalence(bundle.graph, bundle.rules);
}

TEST(SnapshotTest, CitationSeedAndMatchAndDetectEquivalence) {
  DatasetBundle bundle = SmallCitation();
  ExpectSeedEquivalence(bundle.graph, bundle.rules);
  ExpectMatchEquivalence(bundle.graph, bundle.rules);
  ExpectDetectEquivalence(bundle.graph, bundle.rules);
}

// Delta-anchored matching (the serving seed path) reads identically through
// a snapshot built after the batch was applied.
TEST(SnapshotTest, DeltaMatcherEquivalenceAfterBatch) {
  DatasetBundle bundle = SmallKg();
  Graph g = bundle.graph.Clone();
  const RuleSet& rules = bundle.rules;

  size_t mark = g.JournalSize();
  std::vector<NodeId> nodes = g.Nodes();
  SymbolId person = g.vocab()->Label("Person");
  SymbolId knows = g.vocab()->Label("knows");
  NodeId nu = g.AddNode(person);
  ASSERT_TRUE(g.AddEdge(nodes[0], nu, knows).ok());
  ASSERT_TRUE(g.AddEdge(nu, nodes[1], knows).ok());
  ASSERT_TRUE(g.SetNodeLabel(nodes[2], person).ok() ||
              true);  // may be a no-op relabel
  std::vector<EditEntry> delta(g.Journal().begin() + mark, g.Journal().end());

  GraphSnapshot snap(g);
  for (RuleId r = 0; r < rules.size(); ++r) {
    std::vector<Match> a, b;
    DeltaMatcher(g, rules[r].pattern()).FindDelta(delta, [&](const Match& m) {
      a.push_back(m);
      return true;
    });
    DeltaMatcher(snap, rules[r].pattern())
        .FindDelta(delta, [&](const Match& m) {
          b.push_back(m);
          return true;
        });
    EXPECT_EQ(a, b) << rules[r].name();
  }
}

// MemoryBytes accounts for the attribute maps' heap payload: loading the
// same structure with attributes must report strictly more than without
// (it used to under-report the column and per-map buffers).
TEST(SnapshotTest, MemoryBytesCountsAttributePayload) {
  auto vocab = MakeVocabulary();
  Graph bare(vocab), attributed(vocab);
  SymbolId label = vocab->Label("N");
  SymbolId attr = vocab->Attr("a");
  for (int i = 0; i < 64; ++i) {
    bare.AddNode(label);
    NodeId n = attributed.AddNode(label);
    ASSERT_TRUE(
        attributed.SetNodeAttr(n, attr, vocab->Value(std::to_string(i)))
            .ok());
  }
  GraphSnapshot bare_snap(bare);
  GraphSnapshot attr_snap(attributed);
  EXPECT_GT(attr_snap.MemoryBytes(), bare_snap.MemoryBytes());

  // Patch overlays are part of the footprint too.
  attributed.EnableDeltaLog();
  NodeId extra = attributed.AddNode(label);
  (void)extra;
  size_t before = attr_snap.MemoryBytes();
  auto [records, count] = attributed.DeltaLogSince(0);
  attr_snap.Patch(records, count);
  EXPECT_GT(attr_snap.MemoryBytes(), before);
}

// AttrMap capacity story: erasing the last entry releases the buffer.
TEST(SnapshotTest, AttrMapReleasesCapacityWhenEmptied) {
  AttrMap m;
  m.Reserve(4);
  m.Set(1, 10);
  m.Set(2, 20);
  EXPECT_GE(m.entries().capacity(), 2u);
  m.Set(1, 0);
  m.Set(2, 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.entries().capacity(), 0u);
}

}  // namespace
}  // namespace grepair
