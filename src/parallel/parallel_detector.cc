#include "parallel/parallel_detector.h"

#include <algorithm>
#include <exception>
#include <map>
#include <utility>
#include <vector>

namespace grepair {

namespace {

// One unit of detection work: a whole rule, or one contiguous seed range of
// a sharded rule. Tasks are created in emission order (rule id, then shard
// index); each fills only its own slot.
struct DetectTask {
  RuleId rule;
  VarId seed_var = kNoVar;         // kNoVar: unsharded full FindAll
  std::vector<NodeId> seeds;       // ascending; used when seed_var != kNoVar
  std::vector<Match> out;
  MatchStats stats;
};

void RunTask(const GraphView& g, const RuleSet& rules, DetectTask* task) {
  const Matcher matcher(g, rules[task->rule].pattern());
  auto collect = [task](const Match& m) {
    task->out.push_back(m);
    return true;
  };
  if (task->seed_var == kNoVar) {
    task->stats = matcher.FindAll(MatchOptions{}, collect);
    return;
  }
  for (NodeId seed : task->seeds) {
    MatchOptions opts;
    opts.node_anchors.emplace_back(task->seed_var, seed);
    MatchStats st = matcher.FindAll(opts, collect);
    task->stats.expansions += st.expansions;
    task->stats.matches += st.matches;
    task->stats.exhausted |= st.exhausted;
  }
}

}  // namespace

ParallelDetector::ParallelDetector(ThreadPool* pool,
                                   ParallelDetectOptions options)
    : pool_(pool), options_(options) {}

MatchStats ParallelDetector::Detect(const GraphView& g, const RuleSet& rules,
                                    const Emit& emit) const {
  size_t max_shards = options_.max_shards_per_rule
                          ? options_.max_shards_per_rule
                          : 2 * pool_->NumThreads();

  std::vector<DetectTask> tasks;
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher matcher(g, rules[r].pattern());
    VarId seed_var = matcher.SeedVar();
    if (seed_var == kNoVar) {  // node-less pattern: plain full FindAll
      DetectTask t;
      t.rule = r;
      tasks.push_back(std::move(t));
      continue;
    }
    // The seed list is computed anyway to decide shardability, so reuse it:
    // a below-threshold rule becomes ONE full-range seed task rather than
    // recomputing the identical root candidates inside an unanchored search.
    std::vector<NodeId> seeds = matcher.SeedCandidates(seed_var);
    size_t shards = (seeds.size() >= options_.shard_min_seeds)
                        ? std::min(std::max<size_t>(1, max_shards),
                                   seeds.size())
                        : 1;
    for (size_t s = 0; s < shards; ++s) {
      DetectTask t;
      t.rule = r;
      t.seed_var = seed_var;
      auto [begin, end] = BlockRange(seeds.size(), s, shards);
      t.seeds.assign(seeds.begin() + begin, seeds.begin() + end);
      tasks.push_back(std::move(t));
    }
  }

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (DetectTask& t : tasks) {
    futures.push_back(
        pool_->Submit([&g, &rules, task = &t] { RunTask(g, rules, task); }));
  }
  // Drain EVERY future before letting any exception unwind: workers hold raw
  // pointers into `tasks`, so the frame must stay alive until all finished.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // A sharded rule gives every seed a fresh expansion budget, so it can keep
  // matching past the point the sequential single-budget search would have
  // truncated. Sequential expansions for a rule are exactly 1 + the sum of
  // its per-seed subtree expansions; when that sum reaches the budget the
  // sequential path would have stopped early, so re-run the whole rule
  // sequentially to reproduce its truncated output bit-for-bit. (Pathological
  // by construction: the default budget is 50M expansions per rule.)
  const size_t budget = options_.sequential_budget
                            ? options_.sequential_budget
                            : MatchOptions{}.max_expansions;
  std::map<RuleId, size_t> rule_expansions;
  for (const DetectTask& t : tasks)
    if (t.seed_var != kNoVar) rule_expansions[t.rule] += t.stats.expansions;
  std::map<RuleId, DetectTask> reruns;
  for (const auto& [r, total] : rule_expansions) {
    if (total < budget) continue;
    DetectTask seq;
    seq.rule = r;
    RunTask(g, rules, &seq);
    reruns.emplace(r, std::move(seq));
  }

  MatchStats total;
  RuleId last_rerun = static_cast<RuleId>(rules.size());  // no-rule sentinel
  for (const DetectTask& t : tasks) {
    auto it = reruns.find(t.rule);
    if (it != reruns.end()) {
      if (t.rule == last_rerun) continue;  // emit a rerun rule exactly once
      last_rerun = t.rule;
      const DetectTask& seq = it->second;
      total.expansions += seq.stats.expansions;
      total.matches += seq.stats.matches;
      total.exhausted |= seq.stats.exhausted;
      for (const Match& m : seq.out) emit(seq.rule, m);
      continue;
    }
    total.expansions += t.stats.expansions;
    total.matches += t.stats.matches;
    total.exhausted |= t.stats.exhausted;
    for (const Match& m : t.out) emit(t.rule, m);
  }
  return total;
}

}  // namespace grepair
