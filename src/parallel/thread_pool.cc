#include "parallel/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace grepair {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain-on-destruction: only exit once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, NumThreads());
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    auto [begin, end] = BlockRange(n, c, chunks);
    futures.push_back(Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace grepair
