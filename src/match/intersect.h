// Vectorization-friendly sorted-range intersection for candidate pruning.
// The compiled match plans (plan.h) derive a step's candidates by
// intersecting already-sorted id ranges — CSR adjacency gathers and the
// snapshot's label/attr partitions — instead of probing a hash set per
// candidate. Two kernels, chosen by size ratio:
//   - block-wise merge for comparable sizes: a tight two-pointer loop over
//     contiguous uint32 ranges (branch-light, auto-vectorizes well);
//   - galloping for skewed sizes: each element of the small range
//     exponential-searches forward through the large one, O(n log(m/n)).
#ifndef GREPAIR_MATCH_INTERSECT_H_
#define GREPAIR_MATCH_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grepair {

/// Branch tallies for the obs registry: how often each kernel ran. Callers
/// accumulate locally and flush once per search (DESIGN.md "Observability").
struct IntersectStats {
  uint64_t gallop = 0;  ///< intersections taken by the galloping kernel
  uint64_t merge = 0;   ///< intersections taken by the block-wise merge
};

/// Size ratio at which galloping beats the linear merge: with
/// max/min >= 16, n * log2(m) comparisons undercut n + m.
inline constexpr size_t kGallopRatio = 16;

/// Intersects two ascending duplicate-free ranges into *out (replaced).
/// Output is ascending and duplicate-free. Either input may alias *out's
/// PREVIOUS contents only if the caller passed distinct storage — inputs
/// must not point into *out.
void IntersectSorted(const uint32_t* a, size_t an, const uint32_t* b,
                     size_t bn, std::vector<uint32_t>* out,
                     IntersectStats* stats = nullptr);

inline void IntersectSorted(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b,
                            std::vector<uint32_t>* out,
                            IntersectStats* stats = nullptr) {
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), out, stats);
}

/// Sorts ascending and drops duplicates in place — the scratch-reusing
/// replacement for the matcher's per-call unordered_set dedup.
void SortUniqueIds(std::vector<uint32_t>* v);

}  // namespace grepair

#endif  // GREPAIR_MATCH_INTERSECT_H_
