// Fix application and cost tests, one per action kind.
#include <gtest/gtest.h>

#include "grr/rule_builder.h"
#include "match/matcher.h"
#include "repair/fix.h"

namespace grepair {
namespace {

class FixTest : public ::testing::Test {
 protected:
  FixTest() : vocab_(MakeVocabulary()), g_(vocab_) {}

  Match FirstMatch(const Rule& r) {
    auto ms = Matcher(g_, r.pattern()).Collect(1);
    EXPECT_FALSE(ms.empty());
    return ms.empty() ? Match{} : ms[0];
  }

  VocabularyPtr vocab_;
  Graph g_;
  CostModel model_;
};

TEST_F(FixTest, AddEdge) {
  NodeId x = g_.AddNode(vocab_->Label("Person"));
  NodeId y = g_.AddNode(vocab_->Label("Person"));
  g_.AddEdge(x, y, vocab_->Label("knows"));

  RuleBuilder b(vocab_.get(), "sym", ErrorClass::kIncomplete);
  VarId bx = b.Node("x", "Person"), by = b.Node("y", "Person");
  b.Edge(bx, by, "knows");
  b.NoEdge(by, bx, "knows");
  b.ActionAddEdge(by, bx, "knows");
  Rule r = std::move(b).Build();

  Match m = FirstMatch(r);
  EXPECT_DOUBLE_EQ(FixCost(g_, r, m, model_, 0), 1.0);
  auto applied = ApplyFix(&g_, 0, r, m);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(g_.HasEdge(y, x, vocab_->Label("knows")));
  EXPECT_EQ(applied.value().kind, ActionKind::kAddEdge);
  EXPECT_EQ(applied.value().node_a, y);
  EXPECT_EQ(applied.value().node_b, x);
  // Rule no longer matches (self-disabled).
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, AddNode) {
  NodeId c = g_.AddNode(vocab_->Label("Country"));
  RuleBuilder b(vocab_.get(), "cap", ErrorClass::kIncomplete);
  VarId by = b.Node("y", "Country");
  b.NoInEdge(by, "capital_of");
  b.ActionAddNode("City", "capital_of", by, /*new_node_is_src=*/true);
  Rule r = std::move(b).Build();

  Match m = FirstMatch(r);
  EXPECT_DOUBLE_EQ(FixCost(g_, r, m, model_, 0), 2.0);  // node + edge
  auto applied = ApplyFix(&g_, 0, r, m);
  ASSERT_TRUE(applied.ok());
  NodeId nu = applied.value().new_node;
  ASSERT_NE(nu, kInvalidNode);
  EXPECT_EQ(g_.NodeLabel(nu), vocab_->Label("City"));
  EXPECT_TRUE(g_.HasEdge(nu, c, vocab_->Label("capital_of")));
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, DelEdgeWithConfidenceWeighting) {
  NodeId x = g_.AddNode(vocab_->Label("City"));
  NodeId y = g_.AddNode(vocab_->Label("Country"));
  NodeId z = g_.AddNode(vocab_->Label("City"));
  SymbolId cap = vocab_->Label("capital_of");
  SymbolId conf = vocab_->Attr("conf");
  EdgeId e1 = g_.AddEdge(x, y, cap).value();
  EdgeId e2 = g_.AddEdge(z, y, cap).value();
  g_.SetEdgeAttr(e1, conf, vocab_->Value("90"));
  g_.SetEdgeAttr(e2, conf, vocab_->Value("30"));

  RuleBuilder b(vocab_.get(), "one_cap", ErrorClass::kConflict);
  VarId bx = b.Node("x", "City"), by = b.Node("y", "Country"),
        bz = b.Node("z", "City");
  b.Edge(bx, by, "capital_of");
  size_t pe2 = b.Edge(bz, by, "capital_of");
  b.ActionDelEdge(pe2);
  Rule r = std::move(b).Build();

  // Two matches (orderings); deleting the conf=30 edge is cheaper.
  auto ms = Matcher(g_, r.pattern()).Collect();
  ASSERT_EQ(ms.size(), 2u);
  double c_hi = -1, c_lo = -1;
  for (const auto& m : ms) {
    double c = FixCost(g_, r, m, model_, conf);
    if (m.edges[pe2] == e1) c_hi = c;
    if (m.edges[pe2] == e2) c_lo = c;
  }
  EXPECT_DOUBLE_EQ(c_hi, 0.9);
  EXPECT_DOUBLE_EQ(c_lo, 0.3);

  // Apply the cheap one.
  for (const auto& m : ms) {
    if (m.edges[pe2] == e2) {
      auto applied = ApplyFix(&g_, 0, r, m);
      ASSERT_TRUE(applied.ok());
    }
  }
  EXPECT_FALSE(g_.EdgeAlive(e2));
  EXPECT_TRUE(g_.EdgeAlive(e1));
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, DelNodeCostIncludesIncidence) {
  NodeId x = g_.AddNode(vocab_->Label("Org"));
  NodeId y = g_.AddNode(vocab_->Label("Org"));
  g_.AddEdge(x, y, vocab_->Label("l"));
  g_.AddEdge(y, x, vocab_->Label("l"));

  RuleBuilder b(vocab_.get(), "del", ErrorClass::kRedundant);
  b.Node("x", "Org");
  b.ActionDelNode(0);
  Rule r = std::move(b).Build();

  MatchOptions opts;
  opts.node_anchors.push_back({0, x});
  auto ms = Matcher(g_, r.pattern()).CollectWith(opts);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_DOUBLE_EQ(FixCost(g_, r, ms[0], model_, 0), 3.0);  // node + 2 edges
  auto applied = ApplyFix(&g_, 0, r, ms[0]);
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(g_.NodeAlive(x));
  EXPECT_EQ(g_.NumEdges(), 0u);
}

TEST_F(FixTest, UpdNodeLabelAndAttr) {
  NodeId x = g_.AddNode(vocab_->Label("City"));
  NodeId o = g_.AddNode(vocab_->Label("Org"));
  g_.AddEdge(x, o, vocab_->Label("works_for"));

  RuleBuilder b(vocab_.get(), "fix_type", ErrorClass::kConflict);
  VarId bx = b.Node("x", "City"), bo = b.Node("o", "Org");
  b.Edge(bx, bo, "works_for");
  b.ActionRelabelNode(bx, "Person");
  Rule r = std::move(b).Build();

  Match m = FirstMatch(r);
  auto applied = ApplyFix(&g_, 0, r, m);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(g_.NodeLabel(x), vocab_->Label("Person"));
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, UpdEdgeLabel) {
  NodeId p = g_.AddNode(vocab_->Label("Paper"));
  NodeId a = g_.AddNode(vocab_->Label("Author"));
  EdgeId e = g_.AddEdge(p, a, vocab_->Label("cites")).value();

  RuleBuilder b(vocab_.get(), "relabel", ErrorClass::kConflict);
  VarId bp = b.Node("p", "Paper"), ba = b.Node("a", "Author");
  size_t pe = b.Edge(bp, ba, "cites");
  b.ActionRelabelEdge(pe, "authored_by");
  Rule r = std::move(b).Build();

  Match m = FirstMatch(r);
  auto applied = ApplyFix(&g_, 0, r, m);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(g_.EdgeLabel(e), vocab_->Label("authored_by"));
  EXPECT_EQ(applied.value().node_a, p);
  EXPECT_EQ(applied.value().node_b, a);
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, MergeKeepsLowerId) {
  SymbolId person = vocab_->Label("Person");
  SymbolId name = vocab_->Attr("name");
  NodeId x = g_.AddNode(person);
  NodeId y = g_.AddNode(person);
  g_.SetNodeAttr(x, name, vocab_->Value("n"));
  g_.SetNodeAttr(y, name, vocab_->Value("n"));

  RuleBuilder b(vocab_.get(), "dup", ErrorClass::kRedundant);
  VarId bx = b.Node("x", "Person"), by = b.Node("y", "Person");
  b.AttrCmp(bx, "name", CmpOp::kEq, by, "name");
  b.ActionMerge(bx, by);
  Rule r = std::move(b).Build();

  Match m = FirstMatch(r);
  EXPECT_DOUBLE_EQ(FixCost(g_, r, m, model_, 0), 1.0);
  auto applied = ApplyFix(&g_, 0, r, m);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().node_a, x);  // lower id survives
  EXPECT_EQ(applied.value().node_b, y);
  EXPECT_TRUE(g_.NodeAlive(x));
  EXPECT_FALSE(g_.NodeAlive(y));
  EXPECT_EQ(Matcher(g_, r.pattern()).Count(), 0u);
}

TEST_F(FixTest, PriorityDividesCost) {
  NodeId x = g_.AddNode(vocab_->Label("A"));
  NodeId y = g_.AddNode(vocab_->Label("B"));
  g_.AddEdge(x, y, vocab_->Label("l"));
  RuleBuilder b(vocab_.get(), "p", ErrorClass::kConflict);
  VarId bx = b.Node("x", "A"), by = b.Node("y", "B");
  size_t e = b.Edge(bx, by, "l");
  b.ActionDelEdge(e);
  b.Priority(4.0);
  Rule r = std::move(b).Build();
  Match m = FirstMatch(r);
  EXPECT_DOUBLE_EQ(FixCost(g_, r, m, model_, 0), 0.25);
}

TEST_F(FixTest, JournalRangeCoversEdits) {
  NodeId x = g_.AddNode(vocab_->Label("Person"));
  NodeId y = g_.AddNode(vocab_->Label("Person"));
  SymbolId name = vocab_->Attr("name");
  g_.SetNodeAttr(x, name, vocab_->Value("n"));
  g_.SetNodeAttr(y, name, vocab_->Value("n"));
  NodeId z = g_.AddNode(vocab_->Label("Person"));
  g_.AddEdge(y, z, vocab_->Label("knows"));

  RuleBuilder b(vocab_.get(), "dup", ErrorClass::kRedundant);
  VarId bx = b.Node("x", "Person"), by = b.Node("y", "Person");
  b.AttrCmp(bx, "name", CmpOp::kEq, by, "name");
  b.ActionMerge(bx, by);
  Rule r = std::move(b).Build();

  MatchOptions opts;
  opts.node_anchors.push_back({0, x});
  opts.node_anchors.push_back({1, y});
  auto ms = Matcher(g_, r.pattern()).CollectWith(opts);
  ASSERT_EQ(ms.size(), 1u);
  size_t before = g_.JournalSize();
  auto applied = ApplyFix(&g_, 0, r, ms[0]);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().journal_begin, before);
  EXPECT_EQ(applied.value().journal_end, g_.JournalSize());
  EXPECT_GT(applied.value().journal_end, applied.value().journal_begin);
}

}  // namespace
}  // namespace grepair
