#include "serve/repair_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "match/incremental.h"
#include "repair/fix.h"
#include "util/timer.h"

namespace grepair {

double ServiceStats::LatencyPercentileMs(double p) const {
  if (batch_ms.empty()) return 0.0;
  std::vector<double> sorted = batch_ms;
  std::sort(sorted.begin(), sorted.end());
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: the smallest latency >= p percent of the samples.
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * sorted.size()));
  return sorted[rank == 0 ? 0 : rank - 1];
}

RepairService::RepairService(Graph graph, RuleSet rules, ServeOptions options)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      rules_(std::move(rules)),
      clean_mark_(graph_.JournalSize()) {
  if (options_.num_threads != 1)
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

SymbolId RepairService::ConfAttr() const {
  // Lookup-only, never Intern: detection runs on pool threads reading the
  // vocabulary concurrently (see RepairEngine::ConfAttr).
  if (options_.confidence_attr.empty()) return 0;
  SymbolId id;
  if (!graph_.vocab()->lookup_only().Attr(options_.confidence_attr, &id))
    return 0;
  return id;
}

Result<EditApplied> RepairService::ApplyEdit(const EditEntry& op) {
  EditApplied out;
  Status st;
  switch (op.kind) {
    case EditKind::kAddNode:
      out.node = graph_.AddNode(op.label);
      break;
    case EditKind::kRemoveNode:
      st = graph_.RemoveNode(op.node);
      break;
    case EditKind::kAddEdge: {
      auto added = graph_.AddEdge(op.src, op.dst, op.label);
      if (!added.ok()) {
        st = added.status();
        break;
      }
      out.edge = added.value();
      break;
    }
    case EditKind::kRemoveEdge:
      st = graph_.RemoveEdge(op.edge);
      break;
    case EditKind::kSetNodeLabel:
      st = graph_.SetNodeLabel(op.node, op.new_sym);
      break;
    case EditKind::kSetEdgeLabel:
      st = graph_.SetEdgeLabel(op.edge, op.new_sym);
      break;
    case EditKind::kSetNodeAttr:
      st = graph_.SetNodeAttr(op.node, op.attr, op.new_sym);
      break;
    case EditKind::kSetEdgeAttr:
      st = graph_.SetEdgeAttr(op.edge, op.attr, op.new_sym);
      break;
  }
  if (!st.ok()) {
    ++stats_.op_errors;
    return st;
  }
  ++stats_.edits;
  return out;
}

BatchResult RepairService::Commit() {
  Timer total;
  BatchResult res;
  res.batch = stats_.batches + 1;
  res.edits = PendingEdits();
  SymbolId conf = ConfAttr();

  std::vector<EditEntry> delta(graph_.Journal().begin() + clean_mark_,
                               graph_.Journal().end());
  DeltaMatcher::Anchors anchors;  // pattern-independent: computed once
  if (!rules_.empty()) {
    anchors = DeltaMatcher(graph_, rules_[0].pattern()).ComputeAnchors(delta);
    res.anchor_nodes = anchors.nodes.size();
    res.anchor_edges = anchors.edges.size();
  }

  // Seed: batched parallel delta-detection. The detector falls back to the
  // sequential per-rule FindDelta loop for tiny deltas or a 1-thread budget;
  // either way the store receives the exact RunDelta seeding.
  const size_t backlog = store_.Size();  // budget-cut leftovers, if any
  {
    Timer t;
    ParallelDeltaOptions popt;
    popt.shard_min_anchors = options_.shard_min_anchors;
    popt.max_shards_per_rule = options_.max_shards_per_rule;
    ParallelDeltaDetector detector(pool_.get(), popt);
    MatchStats st = detector.Detect(
        graph_, rules_, anchors, [&](RuleId r, const Match& m) {
          store_.Add(r, m,
                     FixCost(graph_, rules_[r], m, options_.cost_model, conf));
        });
    res.expansions += st.expansions;
    res.detect_ms = t.ElapsedMs();
  }
  res.violations = store_.Size();

  // Cascade: drain greedily, re-detecting sequentially around each fix —
  // the same loop as RepairEngine::RunGreedy in dynamic mode, so a commit
  // is bit-identical to RunDelta over the same slice.
  Violation v;
  for (;;) {
    if (res.fixes >= options_.max_fixes_per_batch && !store_.Empty()) {
      res.budget_exhausted = true;
      break;
    }
    if (!store_.PopBest(&v)) break;
    const Rule& rule = rules_[v.rule];
    Matcher matcher(graph_, rule.pattern());
    const Match* best = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Match& alt : v.alternatives) {
      if (!matcher.Verify(alt)) continue;
      double c = FixCost(graph_, rule, alt, options_.cost_model, conf);
      if (c < best_cost) {
        best_cost = c;
        best = &alt;
      }
    }
    if (best == nullptr) continue;  // stale violation

    size_t mark = graph_.JournalSize();
    auto applied = ApplyFix(&graph_, v.rule, rule, *best);
    if (!applied.ok()) continue;  // defensive: verified matches must apply
    ++res.fixes;

    std::vector<EditEntry> fix_delta(graph_.Journal().begin() + mark,
                                     graph_.Journal().end());
    size_t cascade_expansions = 0;
    DetectDelta(graph_, rules_, fix_delta, &store_, options_.cost_model, conf,
                &cascade_expansions);
    res.expansions += cascade_expansions;
  }

  clean_mark_ = graph_.JournalSize();
  res.total_ms = total.ElapsedMs();

  ++stats_.batches;
  // Only newly seeded violations count as detected; backlog re-reported by
  // res.violations was already counted by the batch that found it.
  stats_.violations_detected += res.violations - backlog;
  stats_.violations_repaired += res.fixes;
  stats_.anchors_visited += res.anchor_nodes + res.anchor_edges;
  stats_.expansions += res.expansions;
  if (stats_.batch_ms.size() < ServiceStats::kLatencyWindow)
    stats_.batch_ms.push_back(res.total_ms);
  else
    stats_.batch_ms[(stats_.batches - 1) % ServiceStats::kLatencyWindow] =
        res.total_ms;
  return res;
}

Result<BatchResult> RepairService::ApplyBatch(
    const std::vector<EditEntry>& ops) {
  for (size_t i = 0; i < ops.size(); ++i) {
    auto applied = ApplyEdit(ops[i]);
    if (!applied.ok())
      return Status::InvalidArgument("batch op " + std::to_string(i) + ": " +
                                     applied.status().ToString());
  }
  return Commit();
}

}  // namespace grepair
