// Random-order repair baseline: applies whatever valid fix it sees next,
// with no cost model, no confidence weighting and full re-detection between
// rounds. This is the paper's "rule application without semantics" strawman
// (implemented on top of the engine's naive strategy).
#ifndef GREPAIR_BASELINE_RANDOM_REPAIR_H_
#define GREPAIR_BASELINE_RANDOM_REPAIR_H_

#include "grr/rule.h"
#include "repair/engine.h"

namespace grepair {

/// Repairs `g` in place in seeded-random order. Thin wrapper over the
/// engine's kNaive strategy so the baseline and the engine share mechanics
/// and differ only in policy.
Result<RepairResult> RandomOrderRepair(Graph* g, const RuleSet& rules,
                                       uint64_t seed);

}  // namespace grepair

#endif  // GREPAIR_BASELINE_RANDOM_REPAIR_H_
