// F9 (extension) — Dynamic repair under an update stream: a clean KG
// receives batches of corrupting edits; RunDelta (delta-proportional
// detection) vs full re-repair of the whole graph per batch. Expected
// shape: per-batch delta repair cost is flat and tiny regardless of |G|;
// full re-repair scales with |G| — the static-vs-dynamic trade discussed in
// the repair literature, resolved here by reusing the incremental matcher.
#include "bench_common.h"
#include "util/rng.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

// Applies one batch of corrupting edits; returns the journal mark before.
size_t CorruptBatch(Graph* g, const VocabularyPtr& vocab, Rng* rng,
                    size_t edits) {
  SymbolId person = vocab->Label("Person");
  SymbolId city = vocab->Label("City");
  SymbolId knows = vocab->Label("knows");
  SymbolId born = vocab->Label("born_in");
  std::vector<NodeId> persons(g->NodesWithLabel(person).begin(),
                              g->NodesWithLabel(person).end());
  std::vector<NodeId> cities(g->NodesWithLabel(city).begin(),
                             g->NodesWithLabel(city).end());
  size_t mark = g->JournalSize();
  for (size_t k = 0; k < edits; ++k) {
    NodeId p = persons[rng->PickIndex(persons)];
    if (!g->NodeAlive(p)) continue;
    if (rng->NextBernoulli(0.5)) {
      NodeId q = persons[rng->PickIndex(persons)];
      if (g->NodeAlive(q) && p != q && !g->HasEdge(p, q, knows))
        (void)g->AddEdge(p, q, knows);
    } else {
      NodeId c = cities[rng->PickIndex(cities)];
      if (g->NodeAlive(c) && !g->HasEdge(p, c, born))
        (void)g->AddEdge(p, c, born);
    }
  }
  return mark;
}

}  // namespace

int main() {
  TableWriter t("F9: dynamic repair under an update stream (10 edits/batch)",
                {"persons", "|V|", "delta_ms/batch", "full_ms/batch",
                 "speedup", "delta_fixes", "full_fixes"});

  const size_t kPersons[] = {1000, 2000, 4000, 8000};
  const size_t kBatches = 10, kEditsPerBatch = 10;
  for (size_t persons : kPersons) {
    KgOptions gopt;
    gopt.num_persons = persons;
    gopt.num_cities = persons / 10;
    gopt.num_countries = std::max<size_t>(10, persons / 200);
    gopt.num_orgs = persons / 15;
    InjectOptions iopt;
    iopt.rate = 0.0;  // start clean
    DatasetBundle bundle = MustKgBundle(gopt, iopt);

    RepairEngine engine;

    // Dynamic: RunDelta per batch.
    double delta_ms = 0;
    size_t delta_fixes = 0;
    {
      Graph g = bundle.graph.Clone();
      Rng rng(7);
      for (size_t batch = 0; batch < kBatches; ++batch) {
        size_t mark = CorruptBatch(&g, bundle.vocab, &rng, kEditsPerBatch);
        auto res = engine.RunDelta(&g, bundle.rules, mark);
        if (!res.ok()) return 1;
        delta_ms += res.value().total_ms;
        delta_fixes += res.value().applied.size();
      }
    }

    // Static: full Run per batch.
    double full_ms = 0;
    size_t full_fixes = 0;
    {
      Graph g = bundle.graph.Clone();
      Rng rng(7);
      for (size_t batch = 0; batch < kBatches; ++batch) {
        (void)CorruptBatch(&g, bundle.vocab, &rng, kEditsPerBatch);
        auto res = engine.Run(&g, bundle.rules);
        if (!res.ok()) return 1;
        full_ms += res.value().total_ms;
        full_fixes += res.value().applied.size();
      }
    }

    t.AddRow({TableWriter::Int(int64_t(persons)),
              TableWriter::Int(int64_t(bundle.graph.NumNodes())),
              TableWriter::Num(delta_ms / kBatches, 2),
              TableWriter::Num(full_ms / kBatches, 2),
              TableWriter::Num(full_ms / std::max(0.01, delta_ms), 1),
              TableWriter::Int(int64_t(delta_fixes)),
              TableWriter::Int(int64_t(full_fixes))});
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
