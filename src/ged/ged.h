// Graph edit distance: the paper's repair-quality measure ("the best repair
// is the one closest to the input graph"). Exact A* search for small graphs
// plus a cheap admissible lower bound; the repair engine's journal cost is
// validated against these in tests and in the repair-distance benchmark.
#ifndef GREPAIR_GED_GED_H_
#define GREPAIR_GED_GED_H_

#include "graph/graph.h"
#include "util/status.h"

namespace grepair {

struct GedOptions {
  CostModel costs;
  /// A* open-list expansion budget; exceeded searches report best-effort
  /// upper bound with `optimal == false`.
  size_t max_expansions = 2'000'000;
};

struct GedResult {
  double distance = 0.0;
  bool optimal = true;
  size_t expansions = 0;
};

/// Exact (A*) edit distance between the alive contents of g1 and g2.
/// Intended for small graphs (<= ~12 nodes); larger inputs will exhaust the
/// budget and return an upper bound. Both graphs must share a vocabulary.
GedResult ExactGed(const Graph& g1, const Graph& g2, const GedOptions& opt);

/// Admissible lower bound: label-multiset difference on nodes plus edge
/// count/label mismatch. Never exceeds the true distance.
double GedLowerBound(const Graph& g1, const Graph& g2, const CostModel& costs);

}  // namespace grepair

#endif  // GREPAIR_GED_GED_H_
