// Shared read-for-read equivalence assertion between a live Graph and any
// snapshot view — a GraphSnapshot (fresh-built or delta-patched) or a
// ShardedSnapshot at any shard count: accessors, tombstones, adjacency
// ORDER, Find/HasEdge, counts, and candidate collection with the snapshot
// ascending contract. Used by test_snapshot.cc, test_snapshot_patch.cc and
// test_sharded_snapshot.cc.
#ifndef GREPAIR_TESTS_SNAPSHOT_EQUIVALENCE_H_
#define GREPAIR_TESTS_SNAPSHOT_EQUIVALENCE_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "graph/snapshot.h"

namespace grepair {

inline std::vector<EdgeId> ToVector(IdSpan span) {
  return std::vector<EdgeId>(span.begin(), span.end());
}

// Element-by-element read equivalence, including tombstones and adjacency
// order. `s` must honor the snapshot contract (ascending Collect* with a
// true sorted flag) — GraphSnapshot and ShardedSnapshot both do.
inline void ExpectViewEquivalent(const Graph& g, const GraphView& s) {
  ASSERT_EQ(g.NumNodes(), s.NumNodes());
  ASSERT_EQ(g.NumEdges(), s.NumEdges());
  ASSERT_EQ(g.NodeIdBound(), s.NodeIdBound());
  ASSERT_EQ(g.EdgeIdBound(), s.EdgeIdBound());
  EXPECT_EQ(g.Nodes(), s.Nodes());
  EXPECT_EQ(g.Edges(), s.Edges());

  for (NodeId n = 0; n < g.NodeIdBound(); ++n) {
    ASSERT_EQ(g.NodeAlive(n), s.NodeAlive(n)) << "n" << n;
    EXPECT_EQ(g.NodeLabel(n), s.NodeLabel(n)) << "n" << n;
    EXPECT_TRUE(g.NodeAttrs(n) == s.NodeAttrs(n)) << "n" << n;
    if (!g.NodeAlive(n)) continue;
    // Adjacency: same edges in the SAME order (enumeration order is
    // load-bearing for match emission).
    EXPECT_EQ(ToVector(g.OutEdges(n)), ToVector(s.OutEdges(n))) << "n" << n;
    EXPECT_EQ(ToVector(g.InEdges(n)), ToVector(s.InEdges(n))) << "n" << n;
    EXPECT_EQ(g.CountNodesWithLabel(g.NodeLabel(n)),
              s.CountNodesWithLabel(g.NodeLabel(n)));
  }
  for (EdgeId e = 0; e < g.EdgeIdBound(); ++e) {
    ASSERT_EQ(g.EdgeAlive(e), s.EdgeAlive(e)) << "e" << e;
    EdgeView a = g.Edge(e), b = s.Edge(e);
    EXPECT_EQ(a.src, b.src) << "e" << e;
    EXPECT_EQ(a.dst, b.dst) << "e" << e;
    EXPECT_EQ(a.label, b.label) << "e" << e;
    EXPECT_TRUE(g.EdgeAttrs(e) == s.EdgeAttrs(e)) << "e" << e;
    if (!g.EdgeAlive(e)) continue;
    EXPECT_EQ(g.CountEdgesWithLabel(a.label), s.CountEdgesWithLabel(a.label));
    // FindEdge/HasEdge agree on every alive edge's endpoints, both with the
    // exact label and with the wildcard.
    EXPECT_EQ(g.FindEdge(a.src, a.dst, a.label),
              s.FindEdge(a.src, a.dst, a.label));
    EXPECT_EQ(g.FindEdge(a.src, a.dst, 0), s.FindEdge(a.src, a.dst, 0));
    EXPECT_TRUE(s.HasEdge(a.src, a.dst, a.label));
    EXPECT_EQ(g.HasEdge(a.dst, a.src, a.label),
              s.HasEdge(a.dst, a.src, a.label));
  }

  // Candidate collection: same SET of nodes; the snapshot's must come back
  // ascending (that is the contiguous-range seeding contract).
  std::vector<NodeId> from_g, from_s;
  for (NodeId n : g.Nodes()) {
    SymbolId label = g.NodeLabel(n);
    EXPECT_FALSE(g.CollectNodesWithLabel(label, &from_g));
    EXPECT_TRUE(s.CollectNodesWithLabel(label, &from_s));
    EXPECT_TRUE(std::is_sorted(from_s.begin(), from_s.end()));
    std::sort(from_g.begin(), from_g.end());
    EXPECT_EQ(from_g, from_s) << "label of n" << n;
    for (const auto& [attr, value] : g.NodeAttrs(n).entries()) {
      EXPECT_FALSE(g.CollectNodesWithAttr(attr, value, &from_g));
      EXPECT_TRUE(s.CollectNodesWithAttr(attr, value, &from_s));
      EXPECT_TRUE(std::is_sorted(from_s.begin(), from_s.end()));
      std::sort(from_g.begin(), from_g.end());
      EXPECT_EQ(from_g, from_s) << "attr " << attr << "=" << value;
    }
  }
}

}  // namespace grepair

#endif  // GREPAIR_TESTS_SNAPSHOT_EQUIVALENCE_H_
