#include "serve/session.h"

#include <algorithm>
#include <map>

#include "graph/graph_io.h"
#include "obs/build_info.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace grepair {
namespace serve {
namespace {

struct VerbSpec {
  Verb verb;
  /// Token bounds, verb included (so arity errors beat unknown-verb ones).
  /// Most verbs are fixed-arity (min == max); the read verbs take optional
  /// trailing arguments.
  size_t min_tokens;
  size_t max_tokens;
};

const std::map<std::string, VerbSpec, std::less<>>& VerbTable() {
  static const std::map<std::string, VerbSpec, std::less<>> kVerbs = {
      {"add_node", {Verb::kAddNode, 2, 2}},
      {"add_edge", {Verb::kAddEdge, 4, 4}},
      {"remove_node", {Verb::kRemoveNode, 2, 2}},
      {"remove_edge", {Verb::kRemoveEdge, 2, 2}},
      {"set_node_label", {Verb::kSetNodeLabel, 3, 3}},
      {"set_edge_label", {Verb::kSetEdgeLabel, 3, 3}},
      {"set_node_attr", {Verb::kSetNodeAttr, 4, 4}},
      {"set_edge_attr", {Verb::kSetEdgeAttr, 4, 4}},
      {"commit", {Verb::kCommit, 1, 1}},
      {"detect", {Verb::kDetect, 1, 2}},
      {"violations", {Verb::kViolations, 1, 3}},
      {"stats", {Verb::kStats, 1, 1}},
      {"metrics", {Verb::kMetrics, 1, 1}},
      {"trace", {Verb::kTrace, 2, 2}},
      {"save", {Verb::kSave, 2, 2}},
      {"snapshot", {Verb::kSnapshot, 2, 2}},
      {"restore", {Verb::kRestore, 2, 2}},
      {"quit", {Verb::kQuit, 1, 1}},
      {"shutdown", {Verb::kShutdown, 1, 1}},
  };
  return kVerbs;
}

/// First whitespace-delimited token of a trimmed line (read-verb probe —
/// cheaper than a full tokenize, allocation-free).
std::string_view FirstToken(std::string_view trimmed) {
  const size_t end = trimmed.find_first_of(" \t");
  return end == std::string_view::npos ? trimmed : trimmed.substr(0, end);
}

/// Protocol code for a published-read failure (the read path's closed
/// status set; see RepairService::DetectPublished).
std::string ReadErrResponse(const Status& st) {
  switch (st.code()) {
    case StatusCode::kResourceExhausted:
      return ErrResponse("busy", st.ToString());
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
      return ErrResponse("rejected", st.ToString());
    default:
      return ErrResponse("internal", st.ToString());
  }
}

bool ParseId(const std::string& s, uint32_t* id) {
  uint64_t v = 0;
  if (!ParseUint64(s, &v) || v > UINT32_MAX) return false;
  *id = static_cast<uint32_t>(v);
  return true;
}

/// Protocol code for a status coming out of a service/file operation
/// (restore, save, trace). Parse failures use ParseErrResponse instead.
std::string ExecErrCode(const Status& st) {
  switch (st.code()) {
    case StatusCode::kFailedPrecondition:
      return "staged_edits";
    case StatusCode::kNotFound:
    case StatusCode::kIo:
      return "io";  // the file/device failed, not the stored bytes
    case StatusCode::kParseError:
    case StatusCode::kDataLoss:
      return "corrupt";  // the stored bytes failed validation
    case StatusCode::kInternal:
      return "internal";
    default:
      return "io";
  }
}

}  // namespace

std::string ErrResponse(const std::string& code, const std::string& msg) {
  return "err " + code + " " + msg;
}

std::string ParseErrResponse(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return ErrResponse("unknown_verb", status.message());
    case StatusCode::kInvalidArgument:
      return ErrResponse("arity", status.message());
    case StatusCode::kOutOfRange:
      return ErrResponse("bad_id", status.message());
    default:
      return ErrResponse("bad_request", status.message());
  }
}

std::string FormatBatchLine(const BatchResult& r) {
  return StrFormat("batch %zu edits=%zu anchors=%zu violations=%zu fixes=%zu "
                   "ms=%.2f%s",
                   r.batch, r.edits, r.anchor_nodes + r.anchor_edges,
                   r.violations, r.fixes, r.total_ms,
                   r.budget_exhausted ? " BUDGET_EXHAUSTED" : "");
}

Result<Request> ParseRequest(const std::string& line,
                             const VocabularyPtr& vocab) {
  std::vector<std::string> tok = SplitWhitespace(line);
  if (tok.empty())
    return Status::ParseError("empty request");
  auto spec = VerbTable().find(tok[0]);
  if (spec == VerbTable().end())
    return Status::NotFound(tok[0]);
  if (tok.size() < spec->second.min_tokens ||
      tok.size() > spec->second.max_tokens) {
    if (spec->second.min_tokens == spec->second.max_tokens)
      return Status::InvalidArgument(StrFormat(
          "%s expects %zu argument(s)", tok[0].c_str(),
          spec->second.min_tokens - 1));
    return Status::InvalidArgument(StrFormat(
        "%s expects %zu to %zu argument(s)", tok[0].c_str(),
        spec->second.min_tokens - 1, spec->second.max_tokens - 1));
  }

  Request req;
  req.verb = spec->second.verb;
  EditEntry& op = req.edit;
  switch (req.verb) {
    case Verb::kAddNode:
      op.kind = EditKind::kAddNode;
      op.label = vocab->Label(tok[1]);
      break;
    case Verb::kAddEdge:
      op.kind = EditKind::kAddEdge;
      if (!ParseId(tok[1], &op.src) || !ParseId(tok[2], &op.dst))
        return Status::OutOfRange("bad node id");
      op.label = vocab->Label(tok[3]);
      break;
    case Verb::kRemoveNode:
      op.kind = EditKind::kRemoveNode;
      if (!ParseId(tok[1], &op.node)) return Status::OutOfRange("bad node id");
      break;
    case Verb::kRemoveEdge:
      op.kind = EditKind::kRemoveEdge;
      if (!ParseId(tok[1], &op.edge)) return Status::OutOfRange("bad edge id");
      break;
    case Verb::kSetNodeLabel:
    case Verb::kSetEdgeLabel: {
      bool is_node = req.verb == Verb::kSetNodeLabel;
      op.kind = is_node ? EditKind::kSetNodeLabel : EditKind::kSetEdgeLabel;
      if (!ParseId(tok[1], is_node ? &op.node : &op.edge))
        return Status::OutOfRange("bad element id");
      op.new_sym = vocab->Label(tok[2]);
      break;
    }
    case Verb::kSetNodeAttr:
    case Verb::kSetEdgeAttr: {
      bool is_node = req.verb == Verb::kSetNodeAttr;
      op.kind = is_node ? EditKind::kSetNodeAttr : EditKind::kSetEdgeAttr;
      if (!ParseId(tok[1], is_node ? &op.node : &op.edge))
        return Status::OutOfRange("bad element id");
      op.attr = vocab->Attr(tok[2]);
      op.new_sym = tok[3] == "-" ? 0 : vocab->Value(tok[3]);  // "-" clears
      break;
    }
    case Verb::kTrace:
    case Verb::kSave:
    case Verb::kSnapshot:
    case Verb::kRestore:
      req.path = tok[1];
      break;
    case Verb::kDetect:
      // The optional rule filter stays a raw string: read verbs intern
      // nothing (they run outside the vocabulary writer's lock) and the
      // service resolves it by name compare.
      if (tok.size() > 1) req.rule = tok[1];
      break;
    case Verb::kViolations: {
      uint64_t v = 0;
      if (tok.size() > 1) {
        if (!ParseUint64(tok[1], &v)) return Status::ParseError("bad offset");
        req.offset = static_cast<size_t>(v);
      }
      if (tok.size() > 2) {
        if (!ParseUint64(tok[2], &v) || v == 0)
          return Status::ParseError("bad limit");
        // Page-size ceiling: one response line per row, so an absurd limit
        // would turn a paged read into a full dump.
        constexpr uint64_t kMaxLimit = 10000;
        req.limit = static_cast<size_t>(std::min(v, kMaxLimit));
      }
      break;
    }
    default:
      break;  // bare verbs carry nothing
  }
  return req;
}

Session::Session(RepairService* service, SessionMode mode, std::mutex* mu)
    : service_(service), mode_(mode), mu_(mu) {}

std::unique_lock<std::mutex> Session::LockService() {
  return mu_ != nullptr ? std::unique_lock<std::mutex>(*mu_)
                        : std::unique_lock<std::mutex>();
}

std::string Session::HandleLine(const std::string& line) {
  std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return "";
  // Read verbs route AROUND the service mutex: their parse interns nothing
  // (the vocabulary is never consulted — see the static below) and their
  // execution pins an immutable published generation, so N readers run in
  // parallel with each other and with a writer mid-commit. Everything else
  // keeps the historical contract: one lock spans parse + dispatch,
  // because ParseRequest interns symbols into the shared vocabulary.
  const std::string_view head = FirstToken(trimmed);
  if (head == "detect" || head == "violations") {
    // Null vocabulary: proves by construction the read parse can't intern
    // (and avoids even touching service_->graph(), which a concurrent
    // restore may be swapping).
    static const VocabularyPtr kNoVocab;
    auto parsed = ParseRequest(line, kNoVocab);
    if (!parsed.ok()) return ParseErrResponse(parsed.status());
    return HandleRead(parsed.value());
  }
  auto lock = LockService();
  auto parsed = ParseRequest(line, service_->graph().vocab());
  if (!parsed.ok()) return ParseErrResponse(parsed.status());
  return HandleLocked(parsed.value());
}

std::string Session::Handle(const Request& req) {
  if (req.IsPublishedRead()) return HandleRead(req);
  auto lock = LockService();
  return HandleLocked(req);
}

std::string Session::HandleRead(const Request& req) {
  if (req.verb == Verb::kDetect) {
    auto r = service_->DetectPublished(req.rule);
    if (!r.ok()) return ReadErrResponse(r.status());
    const PublishedDetect& d = r.value();
    // EXACTLY the offline `grepair detect` report (minus the trailing
    // newline the transport appends) — the bit-identity the read path
    // promises (tests/test_publish.cc).
    std::string out = StrFormat("%zu violations", d.violations);
    for (const auto& [name, count] : d.per_rule)
      out += StrFormat("\n  %-32s %zu", name.c_str(), count);
    return out;
  }
  auto r = service_->ReadViolations(req.offset, req.limit);
  if (!r.ok()) return ReadErrResponse(r.status());
  const PublishedViolations& v = r.value();
  std::string out = StrFormat(
      "violations total=%zu generation=%zu batch=%zu offset=%zu returned=%zu",
      v.total, static_cast<size_t>(v.generation),
      static_cast<size_t>(v.batch), v.offset, v.rows.size());
  for (const PublishedViolations::Row& row : v.rows)
    out += StrFormat("\n  %-32s cost=%.6g nodes=%zu edges=%zu",
                     row.rule.c_str(), row.cost, row.nodes, row.edges);
  return out;
}

std::string Session::ApplyImmediate(const EditEntry& op) {
  auto r = service_->ApplyEdit(op);
  if (!r.ok()) {
    // A read-only service (degraded after a storage failure) refuses with
    // kIo; that is an io condition, not an op rejection.
    if (r.status().code() == StatusCode::kIo)
      return ErrResponse("io", r.status().ToString());
    return ErrResponse("rejected", r.status().ToString());
  }
  switch (op.kind) {
    case EditKind::kAddNode:
      return StrFormat("node %u", r.value().node);
    case EditKind::kAddEdge:
      return StrFormat("edge %u", r.value().edge);
    default:
      return "ok";
  }
}

std::string Session::HandleLocked(const Request& req) {
  if (req.IsEdit()) {
    if (mode_ == SessionMode::kImmediate) return ApplyImmediate(req.edit);
    staged_.push_back(req.edit);
    return StrFormat("staged %zu", staged_.size());
  }

  switch (req.verb) {
    case Verb::kCommit: {
      // Staged mode: the session's buffered ops become one atomic block.
      // Ops the service rejects (an element another session's committed
      // block removed, say) are skipped and surfaced in the batch line;
      // everything accepted repairs in this commit.
      size_t op_errors = 0;
      for (const EditEntry& op : staged_)
        if (!service_->ApplyEdit(op).ok()) ++op_errors;
      staged_.clear();
      auto committed = service_->Commit();
      // A WAL append failure surfaces here: the batch was rolled back and
      // the service is read-only — tell the client, not just the log.
      if (!committed.ok())
        return ErrResponse(ExecErrCode(committed.status()),
                           committed.status().ToString());
      std::string line = FormatBatchLine(committed.value());
      if (op_errors > 0) line += StrFormat(" op_errors=%zu", op_errors);
      return line;
    }
    case Verb::kStats: {
      const ServiceStats& s = service_->stats();
      return StrFormat(
          "stats batches=%zu edits=%zu op_errors=%zu violations=%zu "
          "fixes=%zu anchors=%zu pending=%zu p50_ms=%.2f p95_ms=%.2f "
          "p99_ms=%.2f snapshot_patches=%zu snapshot_rebuilds=%zu "
          "snapshot_mem=%zu shards=%zu shard_patches=%zu shard_rebuilds=%zu "
          "read_only=%d wal_appends=%zu wal_syncs=%zu checkpoints=%zu "
          "last_checkpoint=%zu published_generation=%zu published_reads=%zu "
          "stale_reads=%zu publishes=%zu publish_ms=%.2f",
          s.batches, s.edits, s.op_errors, s.violations_detected,
          s.violations_repaired, s.anchors_visited,
          service_->PendingEdits() + staged_.size(),
          s.LatencyPercentileMs(50), s.LatencyPercentileMs(95),
          s.LatencyPercentileMs(99), s.snapshot_patches, s.snapshot_rebuilds,
          s.snapshot_memory_bytes, service_->num_shards(), s.shard_patches,
          s.shard_rebuilds, s.read_only ? 1 : 0, s.wal_appends, s.wal_syncs,
          s.checkpoints, s.last_checkpoint_seq, s.published_generation,
          s.published_reads, s.stale_reads, s.publishes, s.publish_ms);
    }
    case Verb::kMetrics: {
      // stats() refreshes the lazily-priced snapshot-memory gauge before
      // the registry is rendered; the service instruments come first, then
      // the process-wide families (pool, matcher, build info). Names never
      // collide across the two registries, so the concatenation is itself
      // a well-formed exposition.
      (void)service_->stats();
      obs::RegisterBuildInfoMetric();
      std::string text = service_->metrics_registry().ExpositionText() +
                         obs::MetricsRegistry::Global().ExpositionText();
      // The protocol is line-oriented; the transport appends the final
      // newline.
      if (!text.empty() && text.back() == '\n') text.pop_back();
      return text;
    }
    case Verb::kTrace: {
      size_t events = obs::TraceEventCount();
      if (!obs::WriteChromeTrace(req.path))
        return ErrResponse("io", "cannot write trace: " + req.path);
      return StrFormat("trace %s events=%zu", req.path.c_str(), events);
    }
    case Verb::kSave: {
      Status st = SaveGraph(service_->graph(), req.path);
      return st.ok() ? "saved " + req.path
                     : ErrResponse(ExecErrCode(st), st.ToString());
    }
    case Verb::kSnapshot: {
      // SaveState commits pending edits first; surface that in the
      // response — including on write failure, since the commit mutated
      // the graph even when the file never materialized. Staged (session-
      // local) edits are NOT part of the saved state: the client has not
      // committed them.
      bool commits = service_->PendingEdits() > 0;
      Status st = service_->SaveState(req.path);
      std::string suffix =
          commits ? StrFormat(" committed_batch=%zu",
                              service_->stats().batches)
                  : std::string();
      if (!st.ok()) return ErrResponse(ExecErrCode(st), st.ToString() + suffix);
      return "snapshot " + req.path + suffix;
    }
    case Verb::kRestore: {
      // The staged-edits rule (DESIGN.md "Network serving"): restoring
      // while edits are staged would silently discard them or, worse,
      // commit them onto the restored state. Both session-staged and
      // service-pending edits refuse; the client commits (or reconnects)
      // first.
      if (!staged_.empty())
        return ErrResponse(
            "staged_edits",
            StrFormat("%zu staged edit(s) pending; commit before restore",
                      staged_.size()));
      Status st = service_->RestoreState(req.path);
      if (!st.ok()) return ErrResponse(ExecErrCode(st), st.ToString());
      return StrFormat("restored %s nodes=%zu edges=%zu violations=%zu",
                       req.path.c_str(), service_->graph().NumNodes(),
                       service_->graph().NumEdges(),
                       service_->ViolationBacklog());
    }
    case Verb::kQuit:
      quit_ = true;
      return "";
    case Verb::kShutdown:
      quit_ = true;
      shutdown_ = true;
      return "";
    default:
      return ErrResponse("internal", "unhandled verb");
  }
}

}  // namespace serve
}  // namespace grepair
