#include "graph/edit_log.h"

#include <cassert>

#include "util/strings.h"

namespace grepair {

double CostModel::EntryCost(const EditEntry& e) const {
  switch (e.kind) {
    case EditKind::kAddNode: return node_insert;
    case EditKind::kRemoveNode: return node_delete;
    case EditKind::kAddEdge: return edge_insert;
    case EditKind::kRemoveEdge: return edge_delete;
    case EditKind::kSetNodeLabel: return relabel;
    case EditKind::kSetEdgeLabel: return relabel;
    case EditKind::kSetNodeAttr: return attr_update;
    case EditKind::kSetEdgeAttr: return attr_update;
  }
  return 0.0;
}

double JournalCost(const std::vector<EditEntry>& log, size_t from, size_t to,
                   const CostModel& model) {
  assert(from <= to && to <= log.size());
  double total = 0.0;
  for (size_t i = from; i < to; ++i) total += model.EntryCost(log[i]);
  return total;
}

EditEntry InverseEntry(const EditEntry& e) {
  EditEntry inv = e;
  switch (e.kind) {
    case EditKind::kAddNode:
      // Undo AddNode happens only after every later mutation of the node
      // was already undone, so its attributes are empty again.
      inv.kind = EditKind::kRemoveNode;
      inv.attr_snapshot.clear();
      break;
    case EditKind::kRemoveNode:
      inv.kind = EditKind::kAddNode;  // revive, attrs from the snapshot
      break;
    case EditKind::kAddEdge:
      inv.kind = EditKind::kRemoveEdge;
      inv.attr_snapshot.clear();
      break;
    case EditKind::kRemoveEdge:
      inv.kind = EditKind::kAddEdge;  // revive at the adjacency tail
      break;
    case EditKind::kSetNodeLabel:
    case EditKind::kSetEdgeLabel:
    case EditKind::kSetNodeAttr:
    case EditKind::kSetEdgeAttr:
      inv.old_sym = e.new_sym;
      inv.new_sym = e.old_sym;
      break;
  }
  return inv;
}

std::string EditEntryToString(const EditEntry& e) {
  switch (e.kind) {
    case EditKind::kAddNode:
      return StrFormat("AddNode(n%u,l%u)", e.node, e.label);
    case EditKind::kRemoveNode:
      return StrFormat("RemoveNode(n%u,l%u)", e.node, e.label);
    case EditKind::kAddEdge:
      return StrFormat("AddEdge(e%u: n%u-[l%u]->n%u)", e.edge, e.src, e.label,
                       e.dst);
    case EditKind::kRemoveEdge:
      return StrFormat("RemoveEdge(e%u: n%u-[l%u]->n%u)", e.edge, e.src,
                       e.label, e.dst);
    case EditKind::kSetNodeLabel:
      return StrFormat("SetNodeLabel(n%u,l%u->l%u)", e.node, e.old_sym,
                       e.new_sym);
    case EditKind::kSetEdgeLabel:
      return StrFormat("SetEdgeLabel(e%u,l%u->l%u)", e.edge, e.old_sym,
                       e.new_sym);
    case EditKind::kSetNodeAttr:
      return StrFormat("SetNodeAttr(n%u,a%u:v%u->v%u)", e.node, e.attr,
                       e.old_sym, e.new_sym);
    case EditKind::kSetEdgeAttr:
      return StrFormat("SetEdgeAttr(e%u,a%u:v%u->v%u)", e.edge, e.attr,
                       e.old_sym, e.new_sym);
  }
  return "?";
}

}  // namespace grepair
