#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/build_info.h"
#include "serve/session.h"
#include "util/strings.h"

namespace grepair {
namespace serve {
namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(RepairService* service)
    : service_(service),
      admission_options_{service->options().max_connections,
                         service->options().max_requests_per_sec},
      admission_(admission_options_) {
  obs::MetricsRegistry* reg = service_->mutable_metrics_registry();
  m_active_ = reg->GetGauge("grepair_server_connections_active",
                            "Admitted client connections currently open.");
  m_conn_accepted_ =
      reg->GetCounter("grepair_server_connections_accepted_total",
                      "Client connections admitted.");
  m_conn_rejected_ = reg->GetCounter(
      "grepair_server_connections_rejected_total",
      "Client connections shed at the max_connections cap (err busy).");
  m_requests_ = reg->GetCounter("grepair_server_requests_total",
                                "Protocol requests admitted.");
  m_req_rejected_ = reg->GetCounter(
      "grepair_server_requests_rejected_total",
      "Protocol requests shed by the rate limiter (err busy).");
  m_request_ms_ = reg->GetHistogram(
      "grepair_server_request_ms",
      "Per-request latency as the client observes it (queueing included).",
      obs::DefaultLatencyBucketsMs());
}

Server::~Server() { Stop(); }

Status Server::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port =
      htons(static_cast<uint16_t>(service_->options().listen_port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::InvalidArgument(
        StrFormat("cannot bind port %d: %s", service_->options().listen_port,
                  std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  acceptor_ = std::thread(&Server::AcceptLoop, this);
  return Status::Ok();
}

void Server::RequestStop() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stop_requested_ = true;
  }
  state_cv_.notify_all();
}

void Server::Stop() {
  RequestStop();
  Wait();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    state_cv_.wait(lk, [&] { return stop_requested_; });
    if (stopped_) return;
    if (teardown_started_) {  // another caller is already draining
      state_cv_.wait(lk, [&] { return stopped_; });
      return;
    }
    teardown_started_ = true;
  }
  // Unblock accept() so the acceptor thread exits, then unblock every
  // connection's recv() and wait for the handlers to drain.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    state_cv_.wait(lk, [&] { return live_connections_ == 0; });
    stopped_ = true;
    // Notify under the lock: a concurrent Wait() caller may destroy the
    // server the moment it sees stopped_, so the notify must complete
    // before it can re-acquire the mutex and return.
    state_cv_.notify_all();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (stop_requested_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      RequestStop();  // listener is gone; a silent exit would hang Wait()
      return;
    }
    if (!admission_.TryAdmitConnection()) {
      m_conn_rejected_->Add();
      WriteLine(fd, ErrResponse("busy", "max connections"));
      ::close(fd);
      continue;
    }
    m_conn_accepted_->Add();
    m_active_->Set(static_cast<int64_t>(admission_.active_connections()));
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++live_connections_;
      conn_fds_.push_back(fd);
    }
    // Detached: lifetime is tracked by live_connections_, which Wait()
    // drains after unblocking the socket — the thread cannot outlive the
    // server.
    std::thread(&Server::HandleConnection, this, fd).detach();
  }
}

bool Server::WriteLine(int fd, const std::string& line) {
  std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Server::ProcessLine(int fd, Session* session, const std::string& line) {
  std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return true;
  // Admission front-runs the service: a shed request costs one bucket
  // probe and one write, never the service mutex.
  if (!admission_.TryAdmitRequest(NowSec())) {
    m_req_rejected_->Add();
    return WriteLine(fd, ErrResponse("busy", "rate limit exceeded"));
  }
  m_requests_->Add();
  auto start = std::chrono::steady_clock::now();
  std::string resp = session->HandleLine(line);
  m_request_ms_->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (session->quit_requested()) {
    std::string bye;
    {
      std::lock_guard<std::mutex> lock(service_mu_);
      const ServiceStats& s = service_->stats();
      bye = StrFormat("bye batches=%zu fixes=%zu", s.batches,
                      s.violations_repaired);
    }
    WriteLine(fd, bye);
    if (session->shutdown_requested()) RequestStop();
    return false;
  }
  if (resp.empty()) return true;
  return WriteLine(fd, resp);
}

void Server::HandleConnection(int fd) {
  Session session(service_, SessionMode::kStaged, &service_mu_);
  std::string greeting;
  {
    std::lock_guard<std::mutex> lock(service_mu_);
    greeting = obs::BuildInfoLine() + "\n" +
               StrFormat("serving %zu nodes %zu edges %zu rules threads=%zu "
                         "shards=%zu",
                         service_->graph().NumNodes(),
                         service_->graph().NumEdges(),
                         service_->rules().size(),
                         service_->options().num_threads,
                         service_->num_shards());
  }
  bool open = WriteLine(fd, greeting);

  std::string buf;
  char chunk[4096];
  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (open && (pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      open = ProcessLine(fd, &session, line);
    }
  }
  ::close(fd);
  admission_.ReleaseConnection();
  m_active_->Set(static_cast<int64_t>(admission_.active_connections()));
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
    --live_connections_;
    // Notify under the lock: this is a detached thread, and the draining
    // Wait() may destroy the server (and this condition variable) the
    // moment it sees the count hit zero — an unlocked notify could still
    // be touching the cv then.
    state_cv_.notify_all();
  }
}

}  // namespace serve
}  // namespace grepair
