// ShardedSnapshot: a read-optimized GraphView that hash-partitions the
// graph into S independent GraphSnapshot shards (shard(n) =
// StorageShardOfNode(n, S); an edge follows its src). Each shard is a full
// GraphSnapshot instance materializing only its slice — CSR adjacency,
// candidate partitions and the sorted edge index all reuse the monolithic
// machinery — so:
//   - BUILD is shard-parallel: the S shard constructors only read the
//     source view and can run one-per-pool-task;
//   - PATCH routes each delta-log record to the shard(s) it touches
//     (GraphSnapshot::AppliesTo), making dirty-fraction accounting
//     per-shard: a hot shard crosses its rebuild threshold and is rebuilt
//     ALONE in ~1/S the monolithic rebuild time while clean shards keep
//     patching (Advance implements the policy);
//   - DETECTION fan-out aligns with storage: NumStorageShards() exposes S
//     and the parallel detectors partition their seed/anchor lists by the
//     same function, so one task's reads stay within one shard's columns.
//
// Reads route by id arithmetic: node reads to shard(n), edge reads through
// a per-edge owner byte (the src's shard, O(1)); candidate collection and
// whole-graph enumeration k-way-merge the shards' ascending groups, so
// every read — order included — is bit-identical to a monolithic snapshot
// and to the live graph (tests/test_sharded_snapshot.cc).
//
// Concurrency contract: Advance/construction happen on the writer thread
// (shard tasks may fan out over a caller-supplied runner — each task
// touches exactly one shard); during a pass the whole store is frozen and
// shared read-only. See DESIGN.md "Storage model".
#ifndef GREPAIR_GRAPH_SHARDED_SNAPSHOT_H_
#define GREPAIR_GRAPH_SHARDED_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph_view.h"
#include "graph/snapshot.h"

namespace grepair {

/// Runs fn(0) .. fn(n-1) and returns when all completed — the shape of
/// ThreadPool::ParallelFor, taken as a callback so the graph layer stays
/// below the parallel module in the dependency order. Null = sequential.
using ParallelRunner =
    std::function<void(size_t, const std::function<void(size_t)>&)>;

class ShardedSnapshot final : public GraphView {
 public:
  /// Shard count ceiling: the per-edge owner table stores shard indexes in
  /// one byte. Requested counts are clamped into [1, kMaxShards].
  static constexpr size_t kMaxShards = 256;

  /// Builds all shards from `g` (the live Graph in practice), one
  /// GraphSnapshot per shard, via `runner` when given (shard builds only
  /// read `g`, so they are safe to run concurrently).
  ShardedSnapshot(const GraphView& g, size_t num_shards,
                  const ParallelRunner& runner = {});

  /// Outcome of one Advance: how many shards took the O(delta) patch path
  /// vs a 1/S rebuild. Untouched shards count in neither.
  struct AdvanceStats {
    size_t shards_patched = 0;
    size_t shards_rebuilt = 0;
  };

  /// Advances the store by `n` delta-log records to mirror `g`'s current
  /// state: routes the records, then PER SHARD either patches (records
  /// pending for the shard plus its accumulated PatchedEdits stay within
  /// `rebuild_fraction` of the shard's edge count, floored at 64) or
  /// rebuilds that shard alone from `g`. Shard work fans out over `runner`.
  /// NOT thread-safe with concurrent reads: call between passes.
  AdvanceStats Advance(const GraphView& g, const EditEntry* records, size_t n,
                       double rebuild_fraction,
                       const ParallelRunner& runner = {});

  size_t NumShards() const { return shards_.size(); }
  const GraphSnapshot& shard(size_t s) const { return *shards_[s]; }
  /// Total records applied across all shards since each shard's last
  /// (re)build — the aggregate dirtiness.
  size_t PatchedEdits() const;
  /// Heap footprint rolled up across shards plus the routing table, so
  /// serving stats stay truthful under sharding.
  size_t MemoryBytes() const;

  // --- GraphView --------------------------------------------------------
  const VocabularyPtr& vocab() const override { return shards_[0]->vocab(); }

  bool NodeAlive(NodeId n) const override {
    return NodeShard(n).NodeAlive(n);
  }
  bool EdgeAlive(EdgeId e) const override {
    return e < edge_owner_.size() && EdgeShard(e).EdgeAlive(e);
  }
  size_t NumNodes() const override { return num_nodes_; }
  size_t NumEdges() const override { return num_edges_; }
  size_t NodeIdBound() const override { return node_bound_; }
  size_t EdgeIdBound() const override { return edge_bound_; }

  SymbolId NodeLabel(NodeId n) const override {
    return NodeShard(n).NodeLabel(n);
  }
  SymbolId EdgeLabel(EdgeId e) const override {
    return EdgeShard(e).EdgeLabel(e);
  }
  EdgeView Edge(EdgeId e) const override { return EdgeShard(e).Edge(e); }
  SymbolId NodeAttr(NodeId n, SymbolId attr) const override {
    return NodeShard(n).NodeAttr(n, attr);
  }
  SymbolId EdgeAttr(EdgeId e, SymbolId attr) const override {
    return EdgeShard(e).EdgeAttr(e, attr);
  }
  const AttrMap& NodeAttrs(NodeId n) const override {
    return NodeShard(n).NodeAttrs(n);
  }
  const AttrMap& EdgeAttrs(EdgeId e) const override {
    return EdgeShard(e).EdgeAttrs(e);
  }

  IdSpan OutEdges(NodeId n) const override {
    return NodeShard(n).OutEdges(n);
  }
  IdSpan InEdges(NodeId n) const override { return NodeShard(n).InEdges(n); }

  EdgeId FindEdge(NodeId src, NodeId dst, SymbolId label) const override;
  /// Routed O(log E_s) probe of the src shard's sorted edge index.
  bool HasEdge(NodeId src, NodeId dst, SymbolId label) const override;

  std::vector<NodeId> Nodes() const override;
  std::vector<EdgeId> Edges() const override;
  bool CollectNodesWithLabel(SymbolId label,
                             std::vector<NodeId>* out) const override;
  bool CollectNodesWithAttr(SymbolId attr, SymbolId value,
                            std::vector<NodeId>* out) const override;
  size_t CountNodesWithLabel(SymbolId label) const override;
  size_t CountEdgesWithLabel(SymbolId label) const override;

  bool IsSnapshotView() const override { return true; }
  size_t NumStorageShards() const override { return shards_.size(); }

 private:
  const GraphSnapshot& NodeShard(NodeId n) const {
    return *shards_[StorageShardOfNode(n, shards_.size())];
  }
  const GraphSnapshot& EdgeShard(EdgeId e) const {
    return *shards_[edge_owner_[e]];
  }
  /// Re-derives the cached alive totals after construction or Advance.
  void RefreshCounts();
  /// Applies `fn` over shard indexes through `runner` (or inline).
  static void RunShards(size_t n, const ParallelRunner& runner,
                        const std::function<void(size_t)>& fn);

  std::vector<std::unique_ptr<GraphSnapshot>> shards_;
  /// e -> owning shard (= its src's shard), for O(1) edge-read routing;
  /// covers every id < edge_bound_, tombstones included.
  std::vector<uint8_t> edge_owner_;
  size_t node_bound_ = 0;
  size_t edge_bound_ = 0;
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_GRAPH_SHARDED_SNAPSHOT_H_
