// Detect-only baseline: reports violations, repairs nothing. The floor that
// every repairing method is compared against (recall is 0 by construction).
#ifndef GREPAIR_BASELINE_DETECT_ONLY_H_
#define GREPAIR_BASELINE_DETECT_ONLY_H_

#include "grr/rule.h"
#include "repair/engine.h"

namespace grepair {

/// Runs detection and returns a RepairResult with zero applied fixes.
RepairResult DetectOnlyBaseline(const GraphView& g, const RuleSet& rules);

}  // namespace grepair

#endif  // GREPAIR_BASELINE_DETECT_ONLY_H_
