// Admission control for the TCP serving front-end: a connection cap and a
// token-bucket request rate limit (DESIGN.md "Network serving"). Pure
// policy — no sockets, no clocks, no metrics: callers supply time as a
// monotonic seconds value, which makes every decision deterministic and
// unit-testable, and wire rejection counts into whatever instruments they
// own. Shed work answers `err busy <why>` at the protocol layer.
#ifndef GREPAIR_SERVE_ADMISSION_H_
#define GREPAIR_SERVE_ADMISSION_H_

#include <cstddef>
#include <mutex>

namespace grepair {
namespace serve {

/// A token bucket: capacity `burst`, refilled at `rate_per_sec`, starting
/// full. A rate of 0 disables limiting (every acquire succeeds). Not
/// thread-safe on its own — AdmissionController serializes access.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  /// Takes one token at monotonic time `now_sec`, refilling first. Time
  /// going backwards (clock adjustments, test replays) refills nothing
  /// rather than minting negative tokens.
  bool TryAcquire(double now_sec);

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_refill_sec_ = 0.0;
  bool primed_ = false;  ///< first acquire anchors the refill clock
};

struct AdmissionOptions {
  /// Concurrent client connections admitted; further accepts are answered
  /// `err busy` and closed.
  size_t max_connections = 64;
  /// Request rate across ALL connections (token bucket, burst =
  /// max(1, rate)); 0 = unlimited.
  double max_requests_per_sec = 0.0;
};

/// Thread-safe admission decisions shared by the acceptor and every
/// connection thread. Tracks its own accept/reject tallies so the server
/// can mirror them into metrics without owning the arithmetic.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Admits one connection (true) or rejects at the cap (false). Every
  /// admitted connection must be paired with ReleaseConnection().
  bool TryAdmitConnection();
  void ReleaseConnection();

  /// Admits one request at monotonic time `now_sec`, or sheds it (false)
  /// when the bucket is dry.
  bool TryAdmitRequest(double now_sec);

  size_t active_connections() const;
  size_t connections_admitted() const;
  size_t connections_rejected() const;
  size_t requests_admitted() const;
  size_t requests_rejected() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  TokenBucket bucket_;
  size_t active_ = 0;
  size_t conn_admitted_ = 0;
  size_t conn_rejected_ = 0;
  size_t req_admitted_ = 0;
  size_t req_rejected_ = 0;
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_ADMISSION_H_
