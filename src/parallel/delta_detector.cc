#include "parallel/delta_detector.h"

#include <algorithm>
#include <exception>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/ordered_merge.h"

namespace grepair {

namespace {

// One unit of delta-detection work: one anchor slice of one rule, searched
// through either the edge-anchor or the node-anchor path. A slice is a
// contiguous block of the ascending anchor list (unsharded stores) or one
// STORAGE shard's anchor subset (sharded stores, `aligned`), so a task's
// anchored reads stay within the shard owning its anchors. Tasks are
// created in emission order (rule id, edge slices before node slices,
// slice index); each fills only its own slot.
struct DeltaTask {
  RuleId rule;
  const MatchPlan* plan = nullptr;  // compiled plan for this rule, if any
  bool edge_kind = false;          // true: edge anchors, false: node anchors
  bool aligned = false;            // slice is one storage shard's subset
  std::vector<EdgeId> edge_slice;  // ascending; used when edge_kind
  std::vector<NodeId> node_slice;  // ascending; used when !edge_kind
  // Aligned tasks record matches found per anchor (parallel to the slice),
  // so the merge can interleave shard outputs back into global ascending
  // anchor order.
  std::vector<uint32_t> anchor_counts;
  std::vector<Match> out;          // raw, pre-dedup
  MatchStats stats;
};

void RunTask(const GraphView& g, const RuleSet& rules, DeltaTask* task) {
  DeltaMatcher dm(g, rules[task->rule].pattern(), task->plan);
  auto collect = [task](const Match& m) {
    task->out.push_back(m);
    return true;
  };
  if (!task->aligned) {
    task->stats = task->edge_kind
                      ? dm.MatchEdgeAnchors(task->edge_slice, collect)
                      : dm.MatchNodeAnchors(task->node_slice, collect);
    return;
  }
  // Aligned: run anchors one at a time to record per-anchor counts. Each
  // anchored search carries its own expansion budget, so any slicing —
  // including single-anchor slices — replays the identical searches.
  auto accumulate = [task](const MatchStats& st) {
    task->stats.expansions += st.expansions;
    task->stats.matches += st.matches;
    task->stats.exhausted |= st.exhausted;
  };
  if (task->edge_kind) {
    std::vector<EdgeId> one(1);
    task->anchor_counts.reserve(task->edge_slice.size());
    for (EdgeId a : task->edge_slice) {
      one[0] = a;
      size_t before = task->out.size();
      accumulate(dm.MatchEdgeAnchors(one, collect));
      task->anchor_counts.push_back(
          static_cast<uint32_t>(task->out.size() - before));
    }
  } else {
    std::vector<NodeId> one(1);
    task->anchor_counts.reserve(task->node_slice.size());
    for (NodeId a : task->node_slice) {
      one[0] = a;
      size_t before = task->out.size();
      accumulate(dm.MatchNodeAnchors(one, collect));
      task->anchor_counts.push_back(
          static_cast<uint32_t>(task->out.size() - before));
    }
  }
}

// Interleaves the raw outputs of one rule's aligned tasks of one anchor
// kind back into global ascending-anchor order via the shared k-way merge
// (anchors are disjoint across shards), feeding each match through the
// caller's dedup filter.
template <typename EmitFn>
void MergeAlignedKind(const std::vector<DeltaTask>& tasks, size_t begin,
                      size_t end, bool edge_kind, const EmitFn& emit_dedup) {
  std::vector<const DeltaTask*> kind;
  for (size_t k = begin; k < end; ++k)
    if (tasks[k].edge_kind == edge_kind) kind.push_back(&tasks[k]);
  auto anchors = [&](size_t t) -> size_t {
    return edge_kind ? kind[t]->edge_slice.size()
                     : kind[t]->node_slice.size();
  };
  std::vector<size_t> out_cur(kind.size(), 0);
  MergeByAscendingKey(
      kind.size(), anchors,
      [&](size_t t, size_t i) {
        return edge_kind ? kind[t]->edge_slice[i] : kind[t]->node_slice[i];
      },
      [&](size_t t, size_t i) {
        for (uint32_t k = 0; k < kind[t]->anchor_counts[i]; ++k)
          emit_dedup(kind[t]->out[out_cur[t]++]);
      });
}

}  // namespace

ParallelDeltaDetector::ParallelDeltaDetector(ThreadPool* pool,
                                             ParallelDeltaOptions options)
    : pool_(pool), options_(options) {}

MatchStats ParallelDeltaDetector::Detect(const GraphView& g, const RuleSet& rules,
                                         const std::vector<EditEntry>& delta,
                                         const Emit& emit,
                                         const MatchPlan* const* plans) const {
  if (rules.empty()) return MatchStats{};
  // Anchor extraction never reads the pattern, so one computation (through
  // an arbitrary rule's DeltaMatcher) serves the whole rule set.
  return Detect(g, rules,
                DeltaMatcher(g, rules[0].pattern()).ComputeAnchors(delta),
                emit, plans);
}

MatchStats ParallelDeltaDetector::Detect(const GraphView& g, const RuleSet& rules,
                                         const DeltaMatcher::Anchors& anchors,
                                         const Emit& emit,
                                         const MatchPlan* const* plans) const {
  MatchStats total;
  if (rules.empty()) return total;
  const size_t num_anchors = anchors.nodes.size() + anchors.edges.size();

  // Tiny deltas (the per-fix cascade case) stay on the calling thread: the
  // pool round-trip would dominate a handful of anchored searches.
  if (!WouldFanOut(num_anchors)) {
    for (RuleId r = 0; r < rules.size(); ++r) {
      DeltaMatcher dm(g, rules[r].pattern(), plans ? plans[r] : nullptr);
      MatchStats st = dm.FindDelta(anchors, [&](const Match& m) {
        emit(r, m);
        return true;
      });
      total.expansions += st.expansions;
      total.matches += st.matches;
      total.exhausted |= st.exhausted;
    }
    return total;
  }

  const size_t max_shards = options_.max_shards_per_rule
                                ? options_.max_shards_per_rule
                                : 2 * pool_->NumThreads();
  const size_t store_shards = g.NumStorageShards();

  std::vector<DeltaTask> tasks;
  if (store_shards > 1) {
    // Storage-aligned sharding: partition each anchor list ONCE by the
    // owning storage shard (an edge anchor belongs to its src's shard) and
    // give every rule one task per non-empty shard subset. Anchored reads
    // then stay within the columns of the shard that owns the anchor.
    std::vector<std::vector<EdgeId>> edges_by(store_shards);
    for (EdgeId e : anchors.edges)
      edges_by[StorageShardOfNode(g.Edge(e).src, store_shards)].push_back(e);
    std::vector<std::vector<NodeId>> nodes_by(store_shards);
    for (NodeId n : anchors.nodes)
      nodes_by[StorageShardOfNode(n, store_shards)].push_back(n);
    for (RuleId r = 0; r < rules.size(); ++r) {
      const MatchPlan* plan = plans ? plans[r] : nullptr;
      for (size_t s = 0; s < store_shards; ++s) {
        if (edges_by[s].empty()) continue;
        DeltaTask t;
        t.rule = r;
        t.plan = plan;
        t.edge_kind = true;
        t.aligned = true;
        t.edge_slice = edges_by[s];
        tasks.push_back(std::move(t));
      }
      for (size_t s = 0; s < store_shards; ++s) {
        if (nodes_by[s].empty()) continue;
        DeltaTask t;
        t.rule = r;
        t.plan = plan;
        t.edge_kind = false;
        t.aligned = true;
        t.node_slice = nodes_by[s];
        tasks.push_back(std::move(t));
      }
    }
  } else {
    auto num_slices = [&](size_t n) {
      return n == 0 ? size_t{0}
                    : std::min(std::max<size_t>(1, max_shards), n);
    };
    for (RuleId r = 0; r < rules.size(); ++r) {
      const MatchPlan* plan = plans ? plans[r] : nullptr;
      const size_t edge_slices = num_slices(anchors.edges.size());
      for (size_t s = 0; s < edge_slices; ++s) {
        DeltaTask t;
        t.rule = r;
        t.plan = plan;
        t.edge_kind = true;
        auto [begin, end] = BlockRange(anchors.edges.size(), s, edge_slices);
        t.edge_slice.assign(anchors.edges.begin() + begin,
                            anchors.edges.begin() + end);
        tasks.push_back(std::move(t));
      }
      const size_t node_slices = num_slices(anchors.nodes.size());
      for (size_t s = 0; s < node_slices; ++s) {
        DeltaTask t;
        t.rule = r;
        t.plan = plan;
        t.edge_kind = false;
        auto [begin, end] = BlockRange(anchors.nodes.size(), s, node_slices);
        t.node_slice.assign(anchors.nodes.begin() + begin,
                            anchors.nodes.begin() + end);
        tasks.push_back(std::move(t));
      }
    }
  }

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (DeltaTask& t : tasks) {
    futures.push_back(
        pool_->Submit([&g, &rules, task = &t] { RunTask(g, rules, task); }));
  }
  // Drain EVERY future before letting any exception unwind: workers hold raw
  // pointers into `tasks`, so the frame must stay alive until all finished.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Merge per rule group with the sequential footprint dedup. Block groups
  // concatenate in task order; aligned groups interleave shard outputs
  // back into ascending anchor order (edges first, then nodes — exactly
  // FindDelta's visit order). Either way the survivor stream is
  // bit-identical to the sequential loop.
  size_t i = 0;
  while (i < tasks.size()) {
    size_t j = i + 1;
    while (j < tasks.size() && tasks[j].rule == tasks[i].rule) ++j;
    const RuleId rule = tasks[i].rule;
    std::unordered_set<uint64_t> seen;
    auto emit_dedup = [&](const Match& m) {
      if (!seen.insert(DeltaMatchHash(m)).second) return;
      emit(rule, m);
    };
    for (size_t k = i; k < j; ++k) {
      total.expansions += tasks[k].stats.expansions;
      total.exhausted |= tasks[k].stats.exhausted;
    }
    if (tasks[i].aligned) {
      MergeAlignedKind(tasks, i, j, /*edge_kind=*/true, emit_dedup);
      MergeAlignedKind(tasks, i, j, /*edge_kind=*/false, emit_dedup);
    } else {
      for (size_t k = i; k < j; ++k)
        for (const Match& m : tasks[k].out) emit_dedup(m);
    }
    total.matches += seen.size();
    i = j;
  }
  return total;
}

}  // namespace grepair
