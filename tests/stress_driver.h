// Shared randomized-mutation machinery for the journal / snapshot stress
// suites: a Driver that applies random journaled mutations (all eight
// primitive kinds plus MergeNodes) to a small graph and can verify the live
// indexes against a rescan. Owned by test_journal_stress.cc originally;
// test_snapshot_patch.cc reuses it to drive patched-snapshot equivalence.
#ifndef GREPAIR_TESTS_STRESS_DRIVER_H_
#define GREPAIR_TESTS_STRESS_DRIVER_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace grepair {

struct StressDriver {
  explicit StressDriver(uint64_t seed)
      : vocab(MakeVocabulary()), g(vocab), rng(seed) {
    labels = {vocab->Label("A"), vocab->Label("B"), vocab->Label("C")};
    elabels = {vocab->Label("e"), vocab->Label("f")};
    attrs = {vocab->Attr("a1"), vocab->Attr("a2")};
    values = {vocab->Value("v1"), vocab->Value("v2"), vocab->Value("v3")};
    for (int i = 0; i < 8; ++i) g.AddNode(labels[rng.PickIndex(labels)]);
  }

  // One random mutation; returns false if it was a no-op this round.
  bool Step() {
    switch (rng.NextBounded(9)) {
      case 0:
        g.AddNode(labels[rng.PickIndex(labels)]);
        return true;
      case 1: {
        auto nodes = g.Nodes();
        if (nodes.size() < 2) return false;
        NodeId a = nodes[rng.PickIndex(nodes)];
        NodeId b = nodes[rng.PickIndex(nodes)];
        return g.AddEdge(a, b, elabels[rng.PickIndex(elabels)]).ok();
      }
      case 2: {
        auto edges = g.Edges();
        if (edges.empty()) return false;
        return g.RemoveEdge(edges[rng.PickIndex(edges)]).ok();
      }
      case 3: {
        auto nodes = g.Nodes();
        if (nodes.size() <= 2) return false;  // keep some nodes around
        return g.RemoveNode(nodes[rng.PickIndex(nodes)]).ok();
      }
      case 4: {
        auto nodes = g.Nodes();
        if (nodes.empty()) return false;
        return g.SetNodeLabel(nodes[rng.PickIndex(nodes)],
                              labels[rng.PickIndex(labels)])
            .ok();
      }
      case 5: {
        auto nodes = g.Nodes();
        if (nodes.empty()) return false;
        SymbolId v = rng.NextBernoulli(0.3) ? 0 : values[rng.PickIndex(values)];
        return g.SetNodeAttr(nodes[rng.PickIndex(nodes)],
                             attrs[rng.PickIndex(attrs)], v)
            .ok();
      }
      case 6: {
        auto edges = g.Edges();
        if (edges.empty()) return false;
        return g.SetEdgeAttr(edges[rng.PickIndex(edges)],
                             attrs[rng.PickIndex(attrs)],
                             values[rng.PickIndex(values)])
            .ok();
      }
      case 7: {
        // Edge relabels re-key the snapshot's sorted edge index — the one
        // mutation whose patch path maintains a frozen base sort key.
        auto edges = g.Edges();
        if (edges.empty()) return false;
        return g.SetEdgeLabel(edges[rng.PickIndex(edges)],
                              elabels[rng.PickIndex(elabels)])
            .ok();
      }
      default: {
        auto nodes = g.Nodes();
        if (nodes.size() < 3) return false;
        NodeId a = nodes[rng.PickIndex(nodes)];
        NodeId b = nodes[rng.PickIndex(nodes)];
        if (a == b) return false;
        return g.MergeNodes(a, b).ok();
      }
    }
  }

  // Full index verification: the label/attr indexes agree with a rescan.
  void VerifyIndexes() {
    size_t indexed = 0;
    for (NodeId n : g.Nodes()) {
      ASSERT_TRUE(g.NodesWithLabel(g.NodeLabel(n)).count(n));
      for (const auto& [a, v] : g.NodeAttrs(n).entries())
        ASSERT_TRUE(g.NodesWithAttr(a, v).count(n));
      ++indexed;
    }
    ASSERT_EQ(g.NodesWithLabel(0).size(), indexed);
    // Adjacency round trip.
    for (EdgeId e : g.Edges()) {
      EdgeView v = g.Edge(e);
      const auto& out = g.OutEdges(v.src);
      ASSERT_NE(std::find(out.begin(), out.end(), e), out.end());
      const auto& in = g.InEdges(v.dst);
      ASSERT_NE(std::find(in.begin(), in.end(), e), in.end());
    }
  }

  VocabularyPtr vocab;
  Graph g;
  Rng rng;
  std::vector<SymbolId> labels, elabels, attrs, values;
};

}  // namespace grepair

#endif  // GREPAIR_TESTS_STRESS_DRIVER_H_
