// Attribute predicate evaluation over (partial) variable bindings.
#ifndef GREPAIR_MATCH_PREDICATE_H_
#define GREPAIR_MATCH_PREDICATE_H_

#include <vector>

#include "graph/graph_view.h"
#include "match/pattern.h"

namespace grepair {

/// Three-valued evaluation result for partial bindings.
enum class PredVerdict : uint8_t { kTrue, kFalse, kUnknown };

/// Compares two interned values: numeric when both parse as doubles,
/// lexicographic otherwise.
bool CompareValues(const Vocabulary& vocab, SymbolId lhs, CmpOp op,
                   SymbolId rhs);

/// Evaluates a predicate under node `binding` (kInvalidNode = unbound) and
/// optional edge binding (`edges` may be null or contain kInvalidEdge for
/// unbound pattern edges). Returns kUnknown while any referenced var is
/// unbound. Absent attributes: EQ-family predicates are false; kNe is true
/// iff exactly one side absent.
PredVerdict EvalPredicate(const GraphView& g, const AttrPredicate& p,
                          const std::vector<NodeId>& binding,
                          const std::vector<EdgeId>* edges = nullptr);

/// True if either operand refers to a pattern edge attribute.
bool PredicateUsesEdges(const AttrPredicate& p);

/// Evaluates a NAC under a FULL binding; true = the NAC is satisfied
/// (i.e. the forbidden thing is absent).
bool EvalNac(const GraphView& g, const Nac& nac,
             const std::vector<NodeId>& binding);

}  // namespace grepair

#endif  // GREPAIR_MATCH_PREDICATE_H_
