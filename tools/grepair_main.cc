// The grepair command-line entry point. All logic lives in src/cli (tested
// as a library); this file only adapts argv and prints.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  int code = grepair::RunCli(args, &out);
  std::fputs(out.c_str(), stdout);
  return code;
}
