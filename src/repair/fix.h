// Candidate fixes: a rule action instantiated at a concrete match, with a
// cost under the weighted-GED model (low-confidence evidence is cheaper to
// delete), application to the graph, and the applied-fix record the
// evaluation compares against ground truth.
#ifndef GREPAIR_REPAIR_FIX_H_
#define GREPAIR_REPAIR_FIX_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "grr/rule.h"
#include "match/matcher.h"

namespace grepair {

/// A fix that has been applied: the canonical description of what changed,
/// plus the journal range holding its primitive edits.
struct AppliedFix {
  RuleId rule;
  ActionKind kind;
  NodeId node_a = kInvalidNode;  ///< primary node (src / deleted / kept)
  NodeId node_b = kInvalidNode;  ///< secondary node (dst / merged-away)
  SymbolId label = 0;            ///< edge label or new node/edge label
  SymbolId attr = 0;
  SymbolId value = 0;
  NodeId new_node = kInvalidNode;  ///< kAddNode only
  size_t journal_begin = 0;
  size_t journal_end = 0;

  std::string ToString(const Vocabulary& vocab) const;
};

/// Cost of repairing `match` with `rule`'s action. Deletion costs scale
/// with the evidence confidence carried by the `conf_attr` edge attribute
/// (numeric string, 0-100; absent = 100), so removing a low-confidence
/// claim is cheaper: this is the weighted-GED "closest repair" semantics.
/// Rule priority divides the final cost (higher priority = preferred).
double FixCost(const GraphView& g, const Rule& rule, const Match& match,
               const CostModel& model, SymbolId conf_attr);

/// Applies `rule`'s action at `match`. The caller must have verified the
/// match against the current graph. MERGE keeps the lower node id (the
/// deterministic survivor policy).
Result<AppliedFix> ApplyFix(Graph* g, RuleId rule_id, const Rule& rule,
                            const Match& match);

}  // namespace grepair

#endif  // GREPAIR_REPAIR_FIX_H_
