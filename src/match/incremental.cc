#include "match/incremental.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace grepair {

uint64_t DeltaMatchHash(const Match& m) {
  uint64_t h = 0;
  for (NodeId n : m.nodes) h = HashCombine(h, n);
  for (EdgeId e : m.edges) h = HashCombine(h, 0x800000000ULL + e);
  return h;
}

DeltaMatcher::DeltaMatcher(const GraphView& graph, const Pattern& pattern,
                           const MatchPlan* plan)
    : g_(graph), p_(pattern), plan_(plan) {}

DeltaMatcher::Anchors DeltaMatcher::ComputeAnchors(
    const std::vector<EditEntry>& delta) const {
  Anchors a;
  std::unordered_set<NodeId> nodes;
  std::unordered_set<EdgeId> edges;
  auto touch_node = [&](NodeId n) {
    if (n != kInvalidNode && g_.NodeAlive(n)) nodes.insert(n);
  };
  for (const auto& e : delta) {
    switch (e.kind) {
      case EditKind::kAddNode:
        touch_node(e.node);
        break;
      case EditKind::kRemoveNode:
        // The node itself is gone; its cascaded edge removals (journaled
        // before this entry) carry the neighborhood.
        break;
      case EditKind::kAddEdge:
        if (g_.EdgeAlive(e.edge)) edges.insert(e.edge);
        touch_node(e.src);
        touch_node(e.dst);
        break;
      case EditKind::kRemoveEdge:
        // Removal can only enable NAC-blocked matches around the endpoints.
        touch_node(e.src);
        touch_node(e.dst);
        break;
      case EditKind::kSetNodeLabel:
      case EditKind::kSetNodeAttr:
        touch_node(e.node);
        break;
      case EditKind::kSetEdgeLabel:
        if (g_.EdgeAlive(e.edge)) {
          edges.insert(e.edge);
          touch_node(g_.Edge(e.edge).src);
          touch_node(g_.Edge(e.edge).dst);
        }
        break;
      case EditKind::kSetEdgeAttr:
        if (g_.EdgeAlive(e.edge)) edges.insert(e.edge);
        break;
    }
  }
  a.nodes.assign(nodes.begin(), nodes.end());
  a.edges.assign(edges.begin(), edges.end());
  std::sort(a.nodes.begin(), a.nodes.end());
  std::sort(a.edges.begin(), a.edges.end());
  return a;
}

MatchStats DeltaMatcher::MatchEdgeAnchors(
    const std::vector<EdgeId>& anchor_edges, const MatchCallback& cb) const {
  MatchStats total;
  Matcher matcher(g_, p_, plan_);
  bool stop = false;
  auto counting_cb = [&](const Match& m) {
    if (!cb(m)) {
      stop = true;
      return false;
    }
    return true;
  };
  // Edge anchors: matches that use an added/relabeled edge.
  for (EdgeId eid : anchor_edges) {
    SymbolId el = g_.EdgeLabel(eid);
    for (size_t i = 0; i < p_.NumEdges(); ++i) {
      const auto& pe = p_.edges()[i];
      if (pe.label != 0 && pe.label != el) continue;
      MatchOptions opts;
      opts.edge_anchors.push_back({i, eid});
      MatchStats st = matcher.FindAll(opts, counting_cb);
      total.expansions += st.expansions;
      total.matches += st.matches;
      total.exhausted |= st.exhausted;
      if (stop) return total;
    }
  }
  return total;
}

MatchStats DeltaMatcher::MatchNodeAnchors(
    const std::vector<NodeId>& anchor_nodes, const MatchCallback& cb) const {
  MatchStats total;
  Matcher matcher(g_, p_, plan_);
  bool stop = false;
  auto counting_cb = [&](const Match& m) {
    if (!cb(m)) {
      stop = true;
      return false;
    }
    return true;
  };
  // Node anchors: matches through touched nodes (covers added nodes,
  // relabels, attr changes, and NAC-enabling removals around endpoints).
  for (NodeId nid : anchor_nodes) {
    SymbolId nl = g_.NodeLabel(nid);
    for (VarId v = 0; v < p_.NumNodes(); ++v) {
      const auto& pn = p_.nodes()[v];
      if (pn.label != 0 && pn.label != nl) continue;
      MatchOptions opts;
      opts.node_anchors.push_back({v, nid});
      MatchStats st = matcher.FindAll(opts, counting_cb);
      total.expansions += st.expansions;
      total.matches += st.matches;
      total.exhausted |= st.exhausted;
      if (stop) return total;
    }
  }
  return total;
}

MatchStats DeltaMatcher::FindDelta(const std::vector<EditEntry>& delta,
                                   const MatchCallback& cb) const {
  return FindDelta(ComputeAnchors(delta), cb);
}

MatchStats DeltaMatcher::FindDelta(const Anchors& anchors,
                                   const MatchCallback& cb) const {
  MatchStats total;

  // Dedup across anchor runs.
  std::unordered_set<uint64_t> seen;
  bool stop = false;
  auto dedup_cb = [&](const Match& m) {
    if (!seen.insert(DeltaMatchHash(m)).second) return true;  // reported
    if (!cb(m)) {
      stop = true;
      return false;
    }
    return true;
  };

  MatchStats st = MatchEdgeAnchors(anchors.edges, dedup_cb);
  total.expansions += st.expansions;
  total.exhausted |= st.exhausted;
  if (!stop) {
    st = MatchNodeAnchors(anchors.nodes, dedup_cb);
    total.expansions += st.expansions;
    total.exhausted |= st.exhausted;
  }
  total.matches = seen.size();
  return total;
}

}  // namespace grepair
