#include "graph/error_injector.h"

#include <cassert>

#include "util/rng.h"
#include "util/strings.h"

namespace grepair {
namespace {

ExpectedFact EdgeAddedFact(NodeId a, SymbolId label, NodeId b) {
  ExpectedFact f;
  f.kind = FactKind::kEdgeAdded;
  f.a = a;
  f.b = b;
  f.label = label;
  return f;
}

ExpectedFact EdgeRemovedFact(NodeId a, SymbolId label, NodeId b) {
  ExpectedFact f;
  f.kind = FactKind::kEdgeRemoved;
  f.a = a;
  f.b = b;
  f.label = label;
  return f;
}

ExpectedFact MergedFact(NodeId a, NodeId b) {
  ExpectedFact f;
  f.kind = FactKind::kNodesMerged;
  f.a = a;
  f.b = b;
  return f;
}

ExpectedFact RelabeledFact(NodeId a, SymbolId label) {
  ExpectedFact f;
  f.kind = FactKind::kNodeRelabeled;
  f.a = a;
  f.label = label;
  return f;
}

ExpectedFact AttrSetFact(NodeId a, SymbolId attr, SymbolId value) {
  ExpectedFact f;
  f.kind = FactKind::kAttrSet;
  f.a = a;
  f.attr = attr;
  f.value = value;
  return f;
}

ExpectedFact NodeAddedFact(NodeId anchor, SymbolId node_label,
                           SymbolId edge_label, bool new_node_is_src) {
  ExpectedFact f;
  f.kind = FactKind::kNodeAddedWithEdge;
  f.a = anchor;
  f.label = node_label;
  f.edge_label = edge_label;
  f.new_node_is_src = new_node_is_src;
  return f;
}

ExpectedFact NodeDeletedFact(NodeId a) {
  ExpectedFact f;
  f.kind = FactKind::kNodeDeleted;
  f.a = a;
  return f;
}

// Duplicates `orig` (label + attrs) and copies its adjacency; symmetric
// relations listed in `symmetric` are copied in both directions so the
// duplicate does not immediately violate symmetry rules.
Result<NodeId> CloneNodeWithEdges(Graph* g, NodeId orig, SymbolId conf_attr,
                                  SymbolId conf_value,
                                  const std::vector<SymbolId>& symmetric,
                                  Rng* rng, double edge_keep_prob) {
  NodeId dup = g->AddNode(g->NodeLabel(orig));
  for (const auto& [a, v] : g->NodeAttrs(orig).entries())
    GREPAIR_RETURN_IF_ERROR(g->SetNodeAttr(dup, a, v));
  auto is_symmetric = [&](SymbolId l) {
    for (SymbolId sl : symmetric)
      if (sl == l) return true;
    return false;
  };
  IdSpan orig_out = g->OutEdges(orig);
  std::vector<EdgeId> out(orig_out.begin(), orig_out.end());
  for (EdgeId e : out) {
    if (!rng->NextBernoulli(edge_keep_prob)) continue;
    EdgeView v = g->Edge(e);
    if (v.dst == orig) continue;  // skip self loops
    auto r = g->AddEdge(dup, v.dst, v.label);
    if (!r.ok()) return r.status();
    GREPAIR_RETURN_IF_ERROR(g->SetEdgeAttr(r.value(), conf_attr, conf_value));
    if (is_symmetric(v.label) && g->HasEdge(v.dst, orig, v.label) &&
        !g->HasEdge(v.dst, dup, v.label)) {
      auto r2 = g->AddEdge(v.dst, dup, v.label);
      if (!r2.ok()) return r2.status();
      GREPAIR_RETURN_IF_ERROR(
          g->SetEdgeAttr(r2.value(), conf_attr, conf_value));
    }
  }
  return dup;
}

}  // namespace

size_t InjectReport::CountClass(ErrorClass c) const {
  size_t n = 0;
  for (const auto& e : errors)
    if (e.cls == c) ++n;
  return n;
}

Result<InjectReport> InjectKgErrors(Graph* g, const KgSchema& s,
                                    const InjectOptions& opt) {
  InjectReport report;
  Rng rng(opt.seed);
  Vocabulary* vocab = g->vocab().get();

  // Snapshot eligible sites BEFORE mutating (injections must not cascade
  // into each other's site lists).
  struct SpousePair {
    NodeId a, b;
  };
  std::vector<SpousePair> spouse_pairs;
  std::vector<SpousePair> knows_pairs;
  std::vector<NodeId> capitals;           // city with capital_of
  std::vector<NodeId> countries;
  std::vector<NodeId> persons;
  std::vector<NodeId> persons_with_work;  // eligible for relabel conflict
  for (NodeId n : g->Nodes()) {
    SymbolId l = g->NodeLabel(n);
    if (l == s.person) {
      persons.push_back(n);
      bool works = false;
      for (EdgeId e : g->OutEdges(n))
        if (g->EdgeLabel(e) == s.works_for) works = true;
      if (works) persons_with_work.push_back(n);
      for (EdgeId e : g->OutEdges(n)) {
        EdgeView v = g->Edge(e);
        if (v.label == s.spouse && n < v.dst)
          spouse_pairs.push_back({n, v.dst});
        if (v.label == s.knows && n < v.dst) knows_pairs.push_back({n, v.dst});
      }
    } else if (l == s.city) {
      for (EdgeId e : g->OutEdges(n))
        if (g->EdgeLabel(e) == s.capital_of) capitals.push_back(n);
    } else if (l == s.country) {
      countries.push_back(n);
    }
  }
  std::vector<NodeId> cities(g->NodesWithLabel(s.city).begin(),
                             g->NodesWithLabel(s.city).end());

  // ---- Incomplete information -----------------------------------------
  if (opt.incomplete) {
    // (a) drop one direction of a spouse pair.
    for (const auto& p : spouse_pairs) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      EdgeId e = g->FindEdge(p.b, p.a, s.spouse);
      if (e == kInvalidEdge) continue;
      GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(e));
      report.errors.push_back({ErrorClass::kIncomplete, "spouse_symmetric",
                               EdgeAddedFact(p.b, s.spouse, p.a)});
    }
    // (b) drop one direction of a knows pair.
    for (const auto& p : knows_pairs) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      EdgeId e = g->FindEdge(p.b, p.a, s.knows);
      if (e == kInvalidEdge) continue;
      GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(e));
      report.errors.push_back({ErrorClass::kIncomplete, "knows_symmetric",
                               EdgeAddedFact(p.b, s.knows, p.a)});
    }
    // (c) drop located_in of a capital (capital_of implies located_in).
    for (NodeId cap : capitals) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      EdgeId loc = kInvalidEdge, capof = kInvalidEdge;
      for (EdgeId e : g->OutEdges(cap)) {
        if (g->EdgeLabel(e) == s.located_in) loc = e;
        if (g->EdgeLabel(e) == s.capital_of) capof = e;
      }
      if (loc == kInvalidEdge || capof == kInvalidEdge) continue;
      NodeId country = g->Edge(capof).dst;
      if (g->Edge(loc).dst != country) continue;
      GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(loc));
      report.errors.push_back({ErrorClass::kIncomplete,
                               "capital_implies_located",
                               EdgeAddedFact(cap, s.located_in, country)});
    }
    // (d) remove an entire capital city: the country then has no capital,
    // which only ADD_NODE can repair. Use a reduced rate — node removals
    // are heavier errors.
    for (NodeId cap : capitals) {
      if (!rng.NextBernoulli(opt.rate * 0.3)) continue;
      if (!g->NodeAlive(cap)) continue;
      EdgeId capof = kInvalidEdge;
      for (EdgeId e : g->OutEdges(cap))
        if (g->EdgeLabel(e) == s.capital_of) capof = e;
      if (capof == kInvalidEdge) continue;
      NodeId country = g->Edge(capof).dst;
      GREPAIR_RETURN_IF_ERROR(g->RemoveNode(cap));
      report.errors.push_back(
          {ErrorClass::kIncomplete, "country_needs_capital",
           NodeAddedFact(country, s.city, s.capital_of,
                         /*new_node_is_src=*/true)});
    }
  }

  // ---- Conflicting information ----------------------------------------
  if (opt.conflict) {
    // (a) second capital for a country (functional violation). The wrong
    // edge carries low confidence — the semantic signal a good repair uses.
    for (NodeId country : countries) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      if (!g->NodeAlive(country)) continue;
      // skip countries whose capital was removed above
      bool has_capital = false;
      for (EdgeId e : g->InEdges(country))
        if (g->EdgeLabel(e) == s.capital_of) has_capital = true;
      if (!has_capital || cities.empty()) continue;
      NodeId impostor = cities[rng.PickIndex(cities)];
      if (!g->NodeAlive(impostor) || g->HasEdge(impostor, country, s.capital_of))
        continue;
      auto r = g->AddEdge(impostor, country, s.capital_of);
      if (!r.ok()) return r.status();
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeAttr(r.value(), s.conf, s.conf_low));
      report.errors.push_back(
          {ErrorClass::kConflict, "one_capital_per_country",
           EdgeRemovedFact(impostor, s.capital_of, country)});
    }
    // (b) second born_in for a person.
    for (NodeId p : persons) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      if (!g->NodeAlive(p) || cities.empty()) continue;
      NodeId wrong = cities[rng.PickIndex(cities)];
      if (!g->NodeAlive(wrong) || g->HasEdge(p, wrong, s.born_in)) continue;
      bool has_born = false;
      for (EdgeId e : g->OutEdges(p))
        if (g->EdgeLabel(e) == s.born_in) has_born = true;
      if (!has_born) continue;
      auto r = g->AddEdge(p, wrong, s.born_in);
      if (!r.ok()) return r.status();
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeAttr(r.value(), s.conf, s.conf_low));
      report.errors.push_back({ErrorClass::kConflict, "one_birthplace",
                               EdgeRemovedFact(p, s.born_in, wrong)});
    }
    // (c) mislabel a working person as City (type conflict).
    for (NodeId p : persons_with_work) {
      if (!rng.NextBernoulli(opt.rate * 0.5)) continue;
      if (!g->NodeAlive(p) || g->NodeLabel(p) != s.person) continue;
      GREPAIR_RETURN_IF_ERROR(g->SetNodeLabel(p, s.city));
      report.errors.push_back({ErrorClass::kConflict, "worker_is_person",
                               RelabeledFact(p, s.person)});
    }
    // (d) clear is_capital on a capital city (attribute conflict).
    for (NodeId cap : capitals) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      if (!g->NodeAlive(cap)) continue;
      if (g->NodeAttr(cap, s.is_capital) != s.yes) continue;
      GREPAIR_RETURN_IF_ERROR(g->SetNodeAttr(cap, s.is_capital, 0));
      report.errors.push_back({ErrorClass::kConflict, "capital_flag",
                               AttrSetFact(cap, s.is_capital, s.yes)});
    }
  }

  // ---- Redundant information ------------------------------------------
  if (opt.redundant) {
    // (a) duplicate persons (same name + birth_year → same entity).
    for (NodeId p : persons) {
      if (!rng.NextBernoulli(opt.rate * 0.5)) continue;
      if (!g->NodeAlive(p) || g->NodeLabel(p) != s.person) continue;
      auto dup = CloneNodeWithEdges(g, p, s.conf, s.conf_low,
                                    {s.knows, s.spouse}, &rng, 0.5);
      if (!dup.ok()) return dup.status();
      report.errors.push_back({ErrorClass::kRedundant, "dup_person",
                               MergedFact(p, dup.value())});
    }
    // (b) junk organizations: isolated, unnamed nodes.
    size_t junk = static_cast<size_t>(opt.rate * double(persons.size()) * 0.2);
    for (size_t i = 0; i < junk; ++i) {
      NodeId j = g->AddNode(s.org);
      (void)vocab;
      report.errors.push_back(
          {ErrorClass::kRedundant, "junk_org", NodeDeletedFact(j)});
    }
  }

  g->ResetJournal();
  return report;
}

Result<InjectReport> InjectSocialErrors(Graph* g, const SocialSchema& s,
                                        const InjectOptions& opt) {
  InjectReport report;
  Rng rng(opt.seed);

  struct Pair {
    NodeId a, b;
  };
  std::vector<Pair> knows_pairs;
  std::vector<NodeId> persons;
  for (NodeId n : g->Nodes()) {
    if (g->NodeLabel(n) != s.person) continue;
    persons.push_back(n);
    for (EdgeId e : g->OutEdges(n)) {
      EdgeView v = g->Edge(e);
      if (v.label == s.knows && n < v.dst) knows_pairs.push_back({n, v.dst});
    }
  }

  if (opt.incomplete) {
    for (const auto& p : knows_pairs) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      EdgeId e = g->FindEdge(p.b, p.a, s.knows);
      if (e == kInvalidEdge) continue;
      GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(e));
      report.errors.push_back({ErrorClass::kIncomplete, "knows_symmetric",
                               EdgeAddedFact(p.b, s.knows, p.a)});
    }
  }
  if (opt.conflict) {
    // Self-friendship loops.
    for (NodeId p : persons) {
      if (!rng.NextBernoulli(opt.rate * 0.5)) continue;
      if (g->HasEdge(p, p, s.knows)) continue;
      auto r = g->AddEdge(p, p, s.knows);
      if (!r.ok()) return r.status();
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeAttr(r.value(), s.conf, s.conf_low));
      report.errors.push_back({ErrorClass::kConflict, "no_self_knows",
                               EdgeRemovedFact(p, s.knows, p)});
    }
  }
  if (opt.redundant) {
    for (NodeId p : persons) {
      if (!rng.NextBernoulli(opt.rate * 0.3)) continue;
      if (!g->NodeAlive(p)) continue;
      auto dup =
          CloneNodeWithEdges(g, p, s.conf, s.conf_low, {s.knows}, &rng, 0.5);
      if (!dup.ok()) return dup.status();
      report.errors.push_back({ErrorClass::kRedundant, "dup_user",
                               MergedFact(p, dup.value())});
    }
    size_t junk = static_cast<size_t>(opt.rate * double(persons.size()) * 0.1);
    for (size_t i = 0; i < junk; ++i) {
      NodeId j = g->AddNode(s.person);
      report.errors.push_back(
          {ErrorClass::kRedundant, "orphan_user", NodeDeletedFact(j)});
    }
  }

  g->ResetJournal();
  return report;
}

Result<InjectReport> InjectCitationErrors(Graph* g, const CitationSchema& s,
                                          const InjectOptions& opt) {
  InjectReport report;
  Rng rng(opt.seed);
  Vocabulary* vocab = g->vocab().get();

  std::vector<NodeId> papers;
  for (NodeId n : g->Nodes())
    if (g->NodeLabel(n) == s.paper) papers.push_back(n);

  auto year_of = [&](NodeId p) -> int {
    SymbolId v = g->NodeAttr(p, s.year);
    if (v == 0) return -1;
    double out = 0;
    if (!ParseDouble(vocab->ValueName(v), &out)) return -1;
    return static_cast<int>(out);
  };

  if (opt.conflict) {
    // (a) time-travel citation: older paper cites newer.
    for (NodeId p : papers) {
      if (!rng.NextBernoulli(opt.rate)) continue;
      NodeId q = papers[rng.PickIndex(papers)];
      if (p == q) continue;
      if (year_of(p) >= year_of(q)) continue;  // need p older than q
      if (g->HasEdge(p, q, s.cites)) continue;
      auto r = g->AddEdge(p, q, s.cites);
      if (!r.ok()) return r.status();
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeAttr(r.value(), s.conf, s.conf_low));
      report.errors.push_back({ErrorClass::kConflict, "no_future_citation",
                               EdgeRemovedFact(p, s.cites, q)});
    }
    // (b) mislabeled authored_by edge (labeled cites, pointing at an
    // Author): repaired by UPD_EDGE_LABEL.
    for (NodeId p : papers) {
      if (!rng.NextBernoulli(opt.rate * 0.5)) continue;
      EdgeId victim = kInvalidEdge;
      for (EdgeId e : g->OutEdges(p))
        if (g->EdgeLabel(e) == s.authored_by) victim = e;
      if (victim == kInvalidEdge) continue;
      // Only mislabel when the paper keeps >= 1 other author; otherwise the
      // authorless-paper rule would also fire and the expected repair would
      // be ambiguous.
      size_t n_auth = 0;
      for (EdgeId e : g->OutEdges(p))
        if (g->EdgeLabel(e) == s.authored_by) ++n_auth;
      if (n_auth < 2) continue;
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeLabel(victim, s.cites));
      ExpectedFact f;
      f.kind = FactKind::kEdgeRemoved;  // placeholder, replaced below
      // Expected repair: that edge relabeled back to authored_by. We encode
      // it as an EdgeAdded fact for (p)-[authored_by]->(author): relabeling
      // produces exactly that adjacency.
      f = EdgeAddedFact(p, s.authored_by, g->Edge(victim).dst);
      report.errors.push_back(
          {ErrorClass::kConflict, "cites_to_author_is_authorship", f});
    }
  }
  if (opt.incomplete) {
    // Authorless papers: remove ALL authored_by edges of a paper.
    for (NodeId p : papers) {
      if (!rng.NextBernoulli(opt.rate * 0.5)) continue;
      std::vector<EdgeId> auths;
      for (EdgeId e : g->OutEdges(p))
        if (g->EdgeLabel(e) == s.authored_by) auths.push_back(e);
      if (auths.empty()) continue;
      for (EdgeId e : auths) GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(e));
      report.errors.push_back(
          {ErrorClass::kIncomplete, "paper_needs_author",
           NodeAddedFact(p, s.author, s.authored_by,
                         /*new_node_is_src=*/false)});
    }
  }
  if (opt.redundant) {
    for (NodeId p : papers) {
      if (!rng.NextBernoulli(opt.rate * 0.3)) continue;
      if (!g->NodeAlive(p)) continue;
      auto dup = CloneNodeWithEdges(g, p, s.conf, s.conf_low, {}, &rng, 0.6);
      if (!dup.ok()) return dup.status();
      report.errors.push_back(
          {ErrorClass::kRedundant, "dup_paper", MergedFact(p, dup.value())});
    }
  }

  g->ResetJournal();
  return report;
}

}  // namespace grepair
