// Cleaning a citation graph: time-travel citations (a paper citing a
// newer one) are deleted, mislabeled authorship edges are RELABELED rather
// than deleted, and authorless papers get a placeholder author node — one
// example per conflict/incompleteness repair flavor.
//
//   $ ./build/examples/citation_conflicts
#include <cstdio>

#include "eval/experiment.h"

using namespace grepair;

int main() {
  CitationOptions gopt;
  gopt.num_papers = 2000;
  gopt.num_authors = 600;
  InjectOptions iopt;
  iopt.rate = 0.08;

  auto bundle = MakeCitationBundle(gopt, iopt);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const DatasetBundle& b = bundle.value();

  std::printf("citation graph: %zu nodes, %zu edges, %zu injected errors\n",
              b.graph.NumNodes(), b.graph.NumEdges(),
              b.truth.errors.size());

  auto out = RunMethod(b, "greedy");
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  // Count repairs per action kind to show the operation diversity.
  size_t del = 0, relabel = 0, add_node = 0, merged = 0, other = 0;
  for (const AppliedFix& f : out.value().repair.applied) {
    switch (f.kind) {
      case ActionKind::kDelEdge: ++del; break;
      case ActionKind::kUpdEdge: ++relabel; break;
      case ActionKind::kAddNode: ++add_node; break;
      case ActionKind::kMerge: ++merged; break;
      default: ++other; break;
    }
  }
  std::printf("\nrepairs applied (%zu total):\n",
              out.value().repair.applied.size());
  std::printf("  deleted time-travel citations:   %zu\n", del);
  std::printf("  relabeled authorship edges:      %zu\n", relabel);
  std::printf("  placeholder authors created:     %zu\n", add_node);
  std::printf("  duplicate papers merged:         %zu\n", merged);
  if (other) std::printf("  other:                           %zu\n", other);

  std::printf("\nremaining violations: %zu,  precision=%.3f  recall=%.3f\n",
              out.value().repair.remaining_violations,
              out.value().quality.precision, out.value().quality.recall);
  return 0;
}
