#include "parallel/delta_detector.h"

#include <algorithm>
#include <exception>
#include <unordered_set>
#include <utility>
#include <vector>

namespace grepair {

namespace {

// One unit of delta-detection work: one contiguous anchor slice of one rule,
// searched through either the edge-anchor or the node-anchor path. Tasks are
// created in emission order (rule id, edge slices before node slices, slice
// index); each fills only its own slot.
struct DeltaTask {
  RuleId rule;
  bool edge_kind = false;          // true: edge anchors, false: node anchors
  std::vector<EdgeId> edge_slice;  // ascending; used when edge_kind
  std::vector<NodeId> node_slice;  // ascending; used when !edge_kind
  std::vector<Match> out;          // raw, pre-dedup
  MatchStats stats;
};

void RunTask(const GraphView& g, const RuleSet& rules, DeltaTask* task) {
  DeltaMatcher dm(g, rules[task->rule].pattern());
  auto collect = [task](const Match& m) {
    task->out.push_back(m);
    return true;
  };
  task->stats = task->edge_kind
                    ? dm.MatchEdgeAnchors(task->edge_slice, collect)
                    : dm.MatchNodeAnchors(task->node_slice, collect);
}

}  // namespace

ParallelDeltaDetector::ParallelDeltaDetector(ThreadPool* pool,
                                             ParallelDeltaOptions options)
    : pool_(pool), options_(options) {}

MatchStats ParallelDeltaDetector::Detect(const GraphView& g, const RuleSet& rules,
                                         const std::vector<EditEntry>& delta,
                                         const Emit& emit) const {
  if (rules.empty()) return MatchStats{};
  // Anchor extraction never reads the pattern, so one computation (through
  // an arbitrary rule's DeltaMatcher) serves the whole rule set.
  return Detect(g, rules,
                DeltaMatcher(g, rules[0].pattern()).ComputeAnchors(delta),
                emit);
}

MatchStats ParallelDeltaDetector::Detect(const GraphView& g, const RuleSet& rules,
                                         const DeltaMatcher::Anchors& anchors,
                                         const Emit& emit) const {
  MatchStats total;
  if (rules.empty()) return total;
  const size_t num_anchors = anchors.nodes.size() + anchors.edges.size();

  // Tiny deltas (the per-fix cascade case) stay on the calling thread: the
  // pool round-trip would dominate a handful of anchored searches.
  if (!WouldFanOut(num_anchors)) {
    for (RuleId r = 0; r < rules.size(); ++r) {
      DeltaMatcher dm(g, rules[r].pattern());
      MatchStats st = dm.FindDelta(anchors, [&](const Match& m) {
        emit(r, m);
        return true;
      });
      total.expansions += st.expansions;
      total.matches += st.matches;
      total.exhausted |= st.exhausted;
    }
    return total;
  }

  const size_t max_shards = options_.max_shards_per_rule
                                ? options_.max_shards_per_rule
                                : 2 * pool_->NumThreads();
  auto num_slices = [&](size_t n) {
    return n == 0 ? size_t{0} : std::min(std::max<size_t>(1, max_shards), n);
  };

  std::vector<DeltaTask> tasks;
  for (RuleId r = 0; r < rules.size(); ++r) {
    const size_t edge_slices = num_slices(anchors.edges.size());
    for (size_t s = 0; s < edge_slices; ++s) {
      DeltaTask t;
      t.rule = r;
      t.edge_kind = true;
      auto [begin, end] = BlockRange(anchors.edges.size(), s, edge_slices);
      t.edge_slice.assign(anchors.edges.begin() + begin,
                          anchors.edges.begin() + end);
      tasks.push_back(std::move(t));
    }
    const size_t node_slices = num_slices(anchors.nodes.size());
    for (size_t s = 0; s < node_slices; ++s) {
      DeltaTask t;
      t.rule = r;
      t.edge_kind = false;
      auto [begin, end] = BlockRange(anchors.nodes.size(), s, node_slices);
      t.node_slice.assign(anchors.nodes.begin() + begin,
                          anchors.nodes.begin() + end);
      tasks.push_back(std::move(t));
    }
  }

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (DeltaTask& t : tasks) {
    futures.push_back(
        pool_->Submit([&g, &rules, task = &t] { RunTask(g, rules, task); }));
  }
  // Drain EVERY future before letting any exception unwind: workers hold raw
  // pointers into `tasks`, so the frame must stay alive until all finished.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Merge in task order with the sequential per-rule footprint dedup. Task
  // order equals FindDelta's visit order (edges then nodes, ascending), so
  // the survivor stream is bit-identical to the sequential loop.
  RuleId cur_rule = static_cast<RuleId>(rules.size());  // no-rule sentinel
  std::unordered_set<uint64_t> seen;
  for (const DeltaTask& t : tasks) {
    if (t.rule != cur_rule) {
      total.matches += seen.size();
      seen.clear();
      cur_rule = t.rule;
    }
    total.expansions += t.stats.expansions;
    total.exhausted |= t.stats.exhausted;
    for (const Match& m : t.out) {
      if (!seen.insert(DeltaMatchHash(m)).second) continue;
      emit(t.rule, m);
    }
  }
  total.matches += seen.size();
  return total;
}

}  // namespace grepair
