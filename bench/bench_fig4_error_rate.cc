// F4 — F1 vs error rate (1%..10%) on the knowledge graph, one series per
// method. Expected shape: greedy/batch stay flat and high (the confidence
// semantics keep precision up as conflicts multiply); naive decays with
// rate (more arbitrary choices); cfd stays low and flat (covers only the
// relational subset regardless of rate); detect_only is 0 everywhere.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  TableWriter t("F4: F1 vs error rate (KG)",
                {"rate_pct", "detect_only", "cfd", "naive", "greedy",
                 "batch", "errors"});

  const double kRates[] = {0.01, 0.02, 0.04, 0.06, 0.08, 0.10};
  for (double rate : kRates) {
    KgOptions gopt;
    gopt.num_persons = 2000;
    gopt.num_cities = 200;
    gopt.num_countries = 20;
    gopt.num_orgs = 150;
    InjectOptions iopt;
    iopt.rate = rate;
    DatasetBundle bundle = MustKgBundle(gopt, iopt);

    std::vector<std::string> row = {TableWriter::Num(rate * 100, 0)};
    for (const std::string& method : StandardMethods()) {
      MethodOutcome out = MustRun(bundle, method);
      row.push_back(TableWriter::Num(out.quality.f1, 3));
    }
    row.push_back(TableWriter::Int(int64_t(bundle.truth.errors.size())));
    t.AddRow(row);
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
