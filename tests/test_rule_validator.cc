// Validator tests: class/action agreement and self-disabling guards.
#include <gtest/gtest.h>

#include "grr/rule_builder.h"
#include "grr/rule_validator.h"

namespace grepair {
namespace {

TEST(RuleValidatorTest, IncompleteAddEdgeNeedsNac) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "r", ErrorClass::kIncomplete);
  VarId x = b.Node("x", "A"), y = b.Node("y", "A");
  b.Edge(x, y, "l");
  b.ActionAddEdge(y, x, "l");  // no NAC -> would re-fire forever
  Rule r = std::move(b).Build();
  Status st = ValidateRule(r, *vocab);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("self-disabling"), std::string::npos);
}

TEST(RuleValidatorTest, IncompleteAddEdgeWithNacOk) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "r", ErrorClass::kIncomplete);
  VarId x = b.Node("x", "A"), y = b.Node("y", "A");
  b.Edge(x, y, "l");
  b.NoEdge(y, x, "l");
  b.ActionAddEdge(y, x, "l");
  EXPECT_TRUE(ValidateRule(std::move(b).Build(), *vocab).ok());
}

TEST(RuleValidatorTest, AddNodeNeedsMatchingDirectionNac) {
  auto vocab = MakeVocabulary();
  {
    RuleBuilder b(vocab.get(), "r", ErrorClass::kIncomplete);
    VarId y = b.Node("y", "Country");
    b.NoInEdge(y, "capital_of");
    b.ActionAddNode("City", "capital_of", y, /*new_node_is_src=*/true);
    EXPECT_TRUE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
  {
    // NAC guards the wrong direction: invalid.
    RuleBuilder b(vocab.get(), "r", ErrorClass::kIncomplete);
    VarId y = b.Node("y", "Country");
    b.NoOutEdge(y, "capital_of");
    b.ActionAddNode("City", "capital_of", y, /*new_node_is_src=*/true);
    EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
}

TEST(RuleValidatorTest, ClassActionAgreement) {
  auto vocab = MakeVocabulary();
  {
    // conflict rule with ADD action: invalid.
    RuleBuilder b(vocab.get(), "r", ErrorClass::kConflict);
    VarId x = b.Node("x", "A"), y = b.Node("y", "A");
    b.NoEdge(x, y, "l");
    b.ActionAddEdge(x, y, "l");
    EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
  {
    // redundant rule with DEL_EDGE: invalid (must merge or delete node).
    RuleBuilder b(vocab.get(), "r", ErrorClass::kRedundant);
    VarId x = b.Node("x", "A"), y = b.Node("y", "A");
    size_t e = b.Edge(x, y, "l");
    b.ActionDelEdge(e);
    EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
  {
    // incomplete rule with MERGE: invalid.
    RuleBuilder b(vocab.get(), "r", ErrorClass::kIncomplete);
    VarId x = b.Node("x", "A"), y = b.Node("y", "A");
    b.ActionMerge(x, y);
    EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
}

TEST(RuleValidatorTest, RelabelToSameLabelRejected) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "r", ErrorClass::kConflict);
  b.Node("x", "A");
  b.ActionRelabelNode(0, "A");
  EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
}

TEST(RuleValidatorTest, SetAttrNeedsGuardPredicate) {
  auto vocab = MakeVocabulary();
  {
    RuleBuilder b(vocab.get(), "r", ErrorClass::kConflict);
    b.Node("x", "A");
    b.ActionSetAttr(0, "flag", "yes");  // unguarded: re-fires forever
    EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
  {
    RuleBuilder b(vocab.get(), "r", ErrorClass::kConflict);
    b.Node("x", "A");
    b.AttrCmpConst(0, "flag", CmpOp::kNe, "yes");
    b.ActionSetAttr(0, "flag", "yes");
    EXPECT_TRUE(ValidateRule(std::move(b).Build(), *vocab).ok());
  }
}

TEST(RuleValidatorTest, MergeSelfRejected) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "r", ErrorClass::kRedundant);
  VarId x = b.Node("x", "A");
  b.ActionMerge(x, x);
  EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
}

TEST(RuleValidatorTest, DelEdgeRangeChecked) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "r", ErrorClass::kConflict);
  VarId x = b.Node("x", "A"), y = b.Node("y", "A");
  b.Edge(x, y, "l");
  b.ActionDelEdge(7);  // out of range
  EXPECT_FALSE(ValidateRule(std::move(b).Build(), *vocab).ok());
}

}  // namespace
}  // namespace grepair
