// S1 — Serving throughput: a RepairService under a stream of random edits,
// swept over batch size × worker threads on a clean repaired knowledge
// graph. Reports per-batch commit latency (p50/p95 from ServiceStats) and
// edit throughput; results are bit-identical across thread counts (asserted
// in tests/test_serve.cc), so the sweep measures pure wall-clock. Each row
// is also emitted as a self-describing JSON line (see PrintBenchHeader).
//
// S2 — Snapshot acquisition: what the serving commit path pays to hand the
// seed pass a read snapshot, per batch size AND shard count — advancing
// the cached store by a delta-log Patch (O(delta)) vs building a fresh one
// (O(V+E)). Rows report the delta fraction of |E| and the speedup; the
// acceptance bar is >=10x for deltas <= 1% of |E| at the largest scale.
//
// S2b — Dirty-shard rebuild: a batch of edits confined to ONE storage
// shard forces that shard's rebuild alone on a ShardedSnapshot (~1/S the
// work) while a monolithic snapshot pays the full O(V+E) rebuild — the
// locality the sharded store exists for, measured at the 4000-node scale.
//
// S3 — Durable commit cost: the same edit stream with a write-ahead log on
// the real filesystem, per fsync policy (off / interval / every) against
// the no-WAL baseline. Reports commit latency and the WAL ledger (appends,
// syncs, bytes) — the price sheet of the durability knob (DESIGN.md
// "Durability").
//
// S4 — Published-read throughput: N reader threads loop full detection
// against the epoch-published snapshot generation while a writer commits
// batches, vs the single-mutex baseline where every read serializes behind
// the same mutex the writer holds. Reports aggregate reads/sec per
// (readers x writer batch size) cell — the scaling the lock-free read path
// exists for (DESIGN.md "Read path / epoch publication").
//
// GREPAIR_BENCH_SMOKE=1 shrinks all sections to CI-smoke scale; the JSON
// header records the mode so collected artifacts stay comparable.
#include "bench_common.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "serve/repair_service.h"
#include "storage/fs.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

bool SmokeMode() {
  const char* v = std::getenv("GREPAIR_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// The same domain-agnostic edit generator the serve tests use: mutate a
// scratch clone, feed the journal slice to the service as ops.
std::vector<EditEntry> MakeBatch(Graph* scratch, Rng* rng, size_t n) {
  size_t mark = scratch->JournalSize();
  std::vector<NodeId> nodes = scratch->Nodes();
  std::vector<SymbolId> nlabels, elabels;
  for (NodeId node : nodes) nlabels.push_back(scratch->NodeLabel(node));
  for (EdgeId e : scratch->Edges()) elabels.push_back(scratch->EdgeLabel(e));
  for (size_t k = 0; k < n; ++k) {
    switch (rng->NextBounded(4)) {
      case 0: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        NodeId b = nodes[rng->PickIndex(nodes)];
        if (scratch->NodeAlive(a) && scratch->NodeAlive(b) && a != b)
          scratch->AddEdge(a, b, elabels[rng->PickIndex(elabels)]);
        break;
      }
      case 1: {
        std::vector<EdgeId> cur = scratch->Edges();
        if (!cur.empty()) scratch->RemoveEdge(cur[rng->PickIndex(cur)]);
        break;
      }
      case 2: {
        scratch->AddNode(nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      default: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        if (scratch->NodeAlive(a))
          scratch->SetNodeLabel(a, nlabels[rng->PickIndex(nlabels)]);
        break;
      }
    }
  }
  return std::vector<EditEntry>(scratch->Journal().begin() + mark,
                                scratch->Journal().end());
}

// S2: the per-commit snapshot acquisition cost, patch vs rebuild, on a
// clean graph under batches of `batch_size` random edits, for a monolithic
// (shards == 1) or sharded snapshot store. Each round applies a batch,
// patches the cached store forward (timed; sharded stores route records to
// their shards) and builds a fresh store of the same state (timed);
// medians over `rounds`.
void AcquisitionSweep(const DatasetBundle& clean, size_t batch_size,
                      size_t rounds, size_t shards, TableWriter* table) {
  Graph g = clean.graph.Clone();
  g.EnableDeltaLog();
  Graph scratch = clean.graph.Clone();
  Rng rng(23);
  std::unique_ptr<GraphSnapshot> mono;
  std::unique_ptr<ShardedSnapshot> sharded;
  if (shards <= 1)
    mono = std::make_unique<GraphSnapshot>(g);
  else
    sharded = std::make_unique<ShardedSnapshot>(g, shards);
  uint64_t watermark = g.DeltaLogEnd();

  std::vector<double> patch_ms, rebuild_ms;
  size_t delta_edits = 0;
  for (size_t round = 0; round < rounds; ++round) {
    std::vector<EditEntry> ops = MakeBatch(&scratch, &rng, batch_size);
    size_t mark = g.JournalSize();
    for (const EditEntry& op : ops) {
      switch (op.kind) {
        case EditKind::kAddNode: g.AddNode(op.label); break;
        case EditKind::kAddEdge: (void)g.AddEdge(op.src, op.dst, op.label);
          break;
        case EditKind::kRemoveEdge: (void)g.RemoveEdge(op.edge); break;
        case EditKind::kSetNodeLabel:
          (void)g.SetNodeLabel(op.node, op.new_sym);
          break;
        default: break;
      }
    }
    delta_edits += g.JournalSize() - mark;
    {
      Timer t;
      auto [records, count] = g.DeltaLogSince(watermark);
      if (mono != nullptr)
        mono->Patch(records, count);
      else  // force the patch path: the rebuild column measures rebuilds
        sharded->Advance(g, records, count, /*rebuild_fraction=*/1e30);
      watermark = g.DeltaLogEnd();
      patch_ms.push_back(t.ElapsedMs());
    }
    {
      Timer t;
      if (mono != nullptr) {
        GraphSnapshot fresh(g);
        rebuild_ms.push_back(t.ElapsedMs());
        if (fresh.NumEdges() != mono->NumEdges()) std::abort();  // sanity
      } else {
        ShardedSnapshot fresh(g, shards);
        rebuild_ms.push_back(t.ElapsedMs());
        if (fresh.NumEdges() != sharded->NumEdges()) std::abort();
      }
    }
    scratch = g.Clone();
  }
  std::sort(patch_ms.begin(), patch_ms.end());
  std::sort(rebuild_ms.begin(), rebuild_ms.end());
  double p = patch_ms[patch_ms.size() / 2];
  double r = rebuild_ms[rebuild_ms.size() / 2];
  double delta_fraction =
      static_cast<double>(delta_edits) /
      (static_cast<double>(rounds) *
       static_cast<double>(std::max<size_t>(g.NumEdges(), 1)));
  size_t patched_total =
      mono != nullptr ? mono->PatchedEdits() : sharded->PatchedEdits();
  size_t mem =
      mono != nullptr ? mono->MemoryBytes() : sharded->MemoryBytes();
  std::printf("{\"mode\":\"snapshot_acquisition\",\"shards\":%zu,"
              "\"batch_size\":%zu,"
              "\"edges\":%zu,\"delta_fraction\":%.5f,\"patch_ms\":%.4f,"
              "\"rebuild_ms\":%.4f,\"speedup\":%.1f,"
              "\"patched_edits_total\":%zu,\"snapshot_mem_bytes\":%zu}\n",
              shards, batch_size, g.NumEdges(), delta_fraction, p, r,
              r / std::max(1e-6, p), patched_total, mem);
  table->AddRow({TableWriter::Int(int64_t(shards)),
                 TableWriter::Int(int64_t(batch_size)),
                 TableWriter::Int(int64_t(g.NumEdges())),
                 TableWriter::Num(100.0 * delta_fraction, 3),
                 TableWriter::Num(p, 4), TableWriter::Num(r, 4),
                 TableWriter::Num(r / std::max(1e-6, p), 1)});
}

// S2b: the sharded store's dirty-shard-only rebuild. Every round confines
// a batch of attribute edits to ONE storage shard's nodes and forces the
// rebuild path (fraction 0): the sharded store rebuilds the single dirty
// shard while a monolithic snapshot pays the full O(V+E) rebuild for the
// same localized delta — the locality argument of the sharded store,
// measured.
void DirtyShardSweep(const DatasetBundle& clean, size_t shards,
                     size_t rounds, TableWriter* table) {
  Graph g = clean.graph.Clone();
  g.EnableDeltaLog();
  ShardedSnapshot store(g, shards);
  uint64_t watermark = g.DeltaLogEnd();
  std::vector<NodeId> local;
  for (NodeId n : g.Nodes())
    if (StorageShardOfNode(n, shards) == 0) local.push_back(n);
  SymbolId attr = g.vocab()->Attr("bench_note");

  std::vector<double> dirty_ms, mono_ms;
  for (size_t round = 0; round < rounds; ++round) {
    SymbolId value =
        g.vocab()->Value("v" + std::to_string(round));  // always a change
    for (size_t i = 0; i < 16 && i < local.size(); ++i)
      (void)g.SetNodeAttr(local[i], attr, value);
    {
      Timer t;
      auto [records, count] = g.DeltaLogSince(watermark);
      ShardedSnapshot::AdvanceStats st =
          store.Advance(g, records, count, /*rebuild_fraction=*/0.0);
      watermark = g.DeltaLogEnd();
      dirty_ms.push_back(t.ElapsedMs());
      if (st.shards_rebuilt != 1) std::abort();  // sanity: one dirty shard
    }
    {
      Timer t;
      GraphSnapshot fresh(g);
      mono_ms.push_back(t.ElapsedMs());
      if (fresh.NumEdges() != store.NumEdges()) std::abort();
    }
  }
  std::sort(dirty_ms.begin(), dirty_ms.end());
  std::sort(mono_ms.begin(), mono_ms.end());
  double d = dirty_ms[dirty_ms.size() / 2];
  double m = mono_ms[mono_ms.size() / 2];
  std::printf("{\"mode\":\"dirty_shard_rebuild\",\"shards\":%zu,"
              "\"edges\":%zu,\"dirty_rebuild_ms\":%.4f,"
              "\"mono_rebuild_ms\":%.4f,\"speedup\":%.1f}\n",
              shards, g.NumEdges(), d, m, m / std::max(1e-6, d));
  table->AddRow({TableWriter::Int(int64_t(shards)),
                 TableWriter::Int(int64_t(g.NumEdges())),
                 TableWriter::Num(d, 4), TableWriter::Num(m, 4),
                 TableWriter::Num(m / std::max(1e-6, d), 1)});
}

// S3: one (policy) cell — a durable service on a real on-disk WAL
// directory fed `total_edits` edits in batches, against the shared edit
// stream. `policy` is "none" for the no-WAL baseline.
void DurabilitySweep(const DatasetBundle& clean, const std::string& policy,
                     size_t batch_size, size_t total_edits,
                     TableWriter* table) {
  storage::Fs* fs = storage::RealFs::Default();
  const std::string dir = "bench_wal_" + policy + ".dir";
  ServeOptions sopt;
  if (policy != "none") {
    sopt.wal_dir = dir;
    sopt.checkpoint_every = 64;
    if (policy == "every")
      sopt.fsync_policy = storage::FsyncPolicy::kEveryCommit;
    else if (policy == "interval")
      sopt.fsync_policy = storage::FsyncPolicy::kInterval;
    else
      sopt.fsync_policy = storage::FsyncPolicy::kOff;
  }
  RepairService service(clean.graph.Clone(), clean.rules, sopt);
  if (!sopt.wal_dir.empty()) {
    auto rec = service.OpenDurability();
    if (!rec.ok()) {
      std::fprintf(stderr, "OpenDurability failed: %s\n",
                   rec.status().ToString().c_str());
      std::exit(1);
    }
  }
  Graph scratch = clean.graph.Clone();
  Rng rng(17);  // the S1 stream, so rows are comparable across policies

  Timer wall;
  for (size_t done = 0; done < total_edits; done += batch_size) {
    std::vector<EditEntry> ops = MakeBatch(&scratch, &rng, batch_size);
    auto r = service.ApplyBatch(ops);
    if (!r.ok()) {
      std::fprintf(stderr, "durable batch failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    scratch = service.graph().Clone();
  }
  double total_s = wall.ElapsedMs() / 1000.0;

  const ServiceStats& s = service.stats();
  double p50 = s.LatencyPercentileMs(50), p95 = s.LatencyPercentileMs(95);
  double eps = total_s > 0 ? static_cast<double>(s.edits) / total_s : 0;
  std::printf("{\"mode\":\"durability\",\"fsync_policy\":\"%s\","
              "\"batch_size\":%zu,\"batches\":%zu,\"edits\":%zu,"
              "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"edits_per_s\":%.1f,"
              "\"wal_appends\":%zu,\"wal_syncs\":%zu,\"wal_bytes\":%zu,"
              "\"checkpoints\":%zu}\n",
              policy.c_str(), batch_size, s.batches, s.edits, p50, p95, eps,
              s.wal_appends, s.wal_syncs, s.wal_bytes, s.checkpoints);
  table->AddRow({policy,
                 TableWriter::Int(int64_t(s.batches)),
                 TableWriter::Num(p50, 3), TableWriter::Num(p95, 3),
                 TableWriter::Num(eps, 1),
                 TableWriter::Int(int64_t(s.wal_appends)),
                 TableWriter::Int(int64_t(s.wal_syncs)),
                 TableWriter::Int(int64_t(s.wal_bytes))});

  if (!sopt.wal_dir.empty()) {
    auto names = fs->ListDir(dir);
    if (names.ok())
      for (const std::string& name : names.value())
        (void)fs->RemoveFile(dir + "/" + name);
    std::remove(dir.c_str());
  }
}

// S4: one (readers, writer batch, locking) cell — reader threads loop
// DetectPublished while the main thread commits batches for `seconds` of
// wall clock. With `mutex_baseline` every read AND every commit serializes
// behind one shared mutex (the pre-publication locking discipline, on
// identical detection work); without it both run the lock-free published
// path. The ratio between the two rows is the read-path speedup.
void ReadPathSweep(const DatasetBundle& clean, size_t readers,
                   size_t writer_batch, bool mutex_baseline, double seconds,
                   TableWriter* table) {
  ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.shard_min_anchors = 2;
  RepairService service(clean.graph.Clone(), clean.rules, sopt);
  std::mutex service_mu;  // the baseline's serialization point
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};

  std::vector<std::thread> pool;
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (mutex_baseline) {
          std::lock_guard<std::mutex> lock(service_mu);
          if (!service.DetectPublished("").ok()) std::abort();
        } else {
          if (!service.DetectPublished("").ok()) std::abort();
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Graph scratch = clean.graph.Clone();
  Rng rng(29);
  Timer wall;
  size_t batches = 0;
  while (wall.ElapsedMs() < seconds * 1000.0) {
    std::vector<EditEntry> ops = MakeBatch(&scratch, &rng, writer_batch);
    Result<BatchResult> r = Status::Ok();
    if (mutex_baseline) {
      std::lock_guard<std::mutex> lock(service_mu);
      r = service.ApplyBatch(ops);
    } else {
      r = service.ApplyBatch(ops);
    }
    if (!r.ok()) {
      std::fprintf(stderr, "read-path batch failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    scratch = service.graph().Clone();
    ++batches;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  double total_s = wall.ElapsedMs() / 1000.0;

  const char* locking = mutex_baseline ? "mutex" : "published";
  double rps = static_cast<double>(reads.load()) / std::max(1e-6, total_s);
  double bps = static_cast<double>(batches) / std::max(1e-6, total_s);
  const ServiceStats& s = service.stats();
  std::printf("{\"mode\":\"read_path\",\"readers\":%zu,"
              "\"writer_batch\":%zu,\"locking\":\"%s\",\"reads\":%zu,"
              "\"reads_per_s\":%.1f,\"writer_batches\":%zu,"
              "\"writer_batches_per_s\":%.1f,\"published_generation\":%zu,"
              "\"publish_ms\":%.3f}\n",
              readers, writer_batch, locking, reads.load(), rps, batches, bps,
              s.published_generation, s.publish_ms);
  table->AddRow({TableWriter::Int(int64_t(readers)),
                 TableWriter::Int(int64_t(writer_batch)), locking,
                 TableWriter::Num(rps, 1),
                 TableWriter::Int(int64_t(batches)),
                 TableWriter::Num(bps, 1)});
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  PrintBenchHeader("S1: serving throughput vs batch size x threads (KG)",
                   std::string("\"snapshot_read_path\":") +
                       (kSnapshotDetectReads ? "true" : "false") +
                       ",\"incremental_snapshots\":true,\"smoke\":" +
                       (smoke ? "true" : "false"));
  const size_t kPersons = smoke ? 400 : 2000;
  TableWriter t("S1: commit latency / edit throughput (KG)",
                {"batch_size", "threads", "batches", "edits", "fixes",
                 "p50_ms", "p95_ms", "edits_per_s"});

  KgOptions gopt;
  gopt.num_persons = kPersons;
  gopt.num_cities = kPersons / 10;
  gopt.num_countries = 10;
  gopt.num_orgs = kPersons / 15;
  InjectOptions iopt;
  iopt.rate = 0.05;
  DatasetBundle bundle = MustKgBundle(gopt, iopt);
  // Serve from a clean state: repair the injected corruption first.
  {
    RepairEngine engine;
    auto res = engine.Run(&bundle.graph, bundle.rules);
    if (!res.ok() || res.value().remaining_violations != 0) {
      std::fprintf(stderr, "initial repair failed\n");
      return 1;
    }
  }

  const size_t kTotalEdits = smoke ? 64 : 192;
  std::vector<size_t> batch_sizes =
      smoke ? std::vector<size_t>{8, 64} : std::vector<size_t>{1, 8, 64};
  std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 8};
  for (size_t batch_size : batch_sizes) {
    for (size_t threads : thread_counts) {
      ServeOptions sopt;
      sopt.num_threads = threads;
      sopt.shard_min_anchors = 2;  // fan out everything but single anchors
      RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
      Graph scratch = bundle.graph.Clone();
      Rng rng(17);  // same stream for every (batch size, threads) cell

      Timer wall;
      for (size_t done = 0; done < kTotalEdits; done += batch_size) {
        std::vector<EditEntry> ops = MakeBatch(&scratch, &rng, batch_size);
        auto r = service.ApplyBatch(ops);
        if (!r.ok()) {
          std::fprintf(stderr, "batch failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        // Keep the edit generator aligned with the repaired graph.
        scratch = service.graph().Clone();
      }
      double total_s = wall.ElapsedMs() / 1000.0;

      const ServiceStats& s = service.stats();
      double p50 = s.LatencyPercentileMs(50), p95 = s.LatencyPercentileMs(95);
      double eps = total_s > 0 ? static_cast<double>(s.edits) / total_s : 0;
      std::printf("{\"batch_size\":%zu,\"threads\":%zu,\"shards\":%zu,"
                  "\"batches\":%zu,"
                  "\"edits\":%zu,\"fixes\":%zu,\"p50_ms\":%.3f,"
                  "\"p95_ms\":%.3f,\"edits_per_s\":%.1f,"
                  "\"snapshot_batches\":%zu,\"snapshot_patches\":%zu,"
                  "\"snapshot_rebuilds\":%zu,\"snapshot_patch_ms\":%.3f,"
                  "\"snapshot_rebuild_ms\":%.3f,\"shard_patches\":%zu,"
                  "\"shard_rebuilds\":%zu}\n",
                  batch_size, threads, service.num_shards(), s.batches,
                  s.edits,
                  s.violations_repaired, p50, p95, eps, s.snapshot_batches,
                  s.snapshot_patches, s.snapshot_rebuilds,
                  s.snapshot_patch_ms, s.snapshot_rebuild_ms,
                  s.shard_patches, s.shard_rebuilds);
      t.AddRow({TableWriter::Int(int64_t(batch_size)),
                TableWriter::Int(int64_t(threads)),
                TableWriter::Int(int64_t(s.batches)),
                TableWriter::Int(int64_t(s.edits)),
                TableWriter::Int(int64_t(s.violations_repaired)),
                TableWriter::Num(p50, 3), TableWriter::Num(p95, 3),
                TableWriter::Num(eps, 1)});
    }
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);

  // --- S2: snapshot acquisition, patch vs rebuild ----------------------
  // The largest scale is where the O(delta)-vs-O(V+E) gap matters; smoke
  // mode shrinks it but keeps the row shape. Batch sizes are chosen to
  // bracket the 1%-of-|E| acceptance point.
  const size_t kAcqPersons = smoke ? 400 : 4000;
  KgOptions aopt;
  aopt.num_persons = kAcqPersons;
  aopt.num_cities = kAcqPersons / 10;
  aopt.num_countries = 10;
  aopt.num_orgs = kAcqPersons / 15;
  InjectOptions clean_iopt;
  clean_iopt.rate = 0.0;
  DatasetBundle acq = MustKgBundle(aopt, clean_iopt);
  TableWriter t2("S2: snapshot acquisition per commit — patch vs rebuild "
                 "(per shard count)",
                 {"shards", "batch_size", "|E|", "delta_pct", "patch_ms",
                  "rebuild_ms", "speedup"});
  const size_t acq_rounds = smoke ? 5 : 9;
  size_t edges = acq.graph.NumEdges();
  std::vector<size_t> acq_batches = {1, 8, 64};
  acq_batches.push_back(std::max<size_t>(1, edges / 100));  // the 1% point
  acq_batches.push_back(std::max<size_t>(1, edges / 20));   // past threshold
  std::vector<size_t> acq_shards =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 8};
  for (size_t shards : acq_shards)
    for (size_t batch_size : acq_batches)
      AcquisitionSweep(acq, batch_size, acq_rounds, shards, &t2);
  t2.Print();
  std::puts("\nCSV:");
  std::fputs(t2.ToCsv().c_str(), stdout);

  // --- S2b: localized edits — dirty-shard rebuild vs monolithic rebuild --
  TableWriter t3("S2b: localized-edit rebuild — one dirty shard vs "
                 "monolithic O(V+E)",
                 {"shards", "|E|", "dirty_rebuild_ms", "mono_rebuild_ms",
                  "speedup"});
  std::vector<size_t> dirty_shards =
      smoke ? std::vector<size_t>{4} : std::vector<size_t>{2, 4, 8};
  for (size_t shards : dirty_shards)
    DirtyShardSweep(acq, shards, acq_rounds, &t3);
  t3.Print();
  std::puts("\nCSV:");
  std::fputs(t3.ToCsv().c_str(), stdout);

  // --- S3: durable commit cost per fsync policy ------------------------
  TableWriter t4("S3: durable commit cost per fsync policy (real fs WAL)",
                 {"fsync_policy", "batches", "p50_ms", "p95_ms",
                  "edits_per_s", "wal_appends", "wal_syncs", "wal_bytes"});
  const size_t kDurableEdits = smoke ? 64 : 192;
  for (const char* policy : {"none", "off", "interval", "every"})
    DurabilitySweep(bundle, policy, 8, kDurableEdits, &t4);
  t4.Print();
  std::puts("\nCSV:");
  std::fputs(t4.ToCsv().c_str(), stdout);

  // --- S4: published-read throughput vs the single-mutex baseline -------
  TableWriter t5("S4: published-read throughput — lock-free readers vs "
                 "single-mutex baseline",
                 {"readers", "writer_batch", "locking", "reads_per_s",
                  "batches", "batches_per_s"});
  std::vector<size_t> reader_counts =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 8};
  std::vector<size_t> read_wbatches =
      smoke ? std::vector<size_t>{8} : std::vector<size_t>{8, 64};
  const double read_secs = smoke ? 0.4 : 1.5;
  for (size_t wb : read_wbatches)
    for (size_t readers : reader_counts)
      for (bool baseline : {true, false})
        ReadPathSweep(bundle, readers, wb, baseline, read_secs, &t5);
  t5.Print();
  std::puts("\nCSV:");
  std::fputs(t5.ToCsv().c_str(), stdout);
  return 0;
}
