// Unit tests for util/: Status/Result, Rng, strings, Dictionary, TableWriter.
#include <gtest/gtest.h>

#include <set>

#include "util/dictionary.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_writer.h"

namespace grepair {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.Next() != b.Next()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBounded(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.NextBernoulli(0.0));
    EXPECT_TRUE(r.NextBernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng r(17);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i)
    if (r.NextZipf(100, 1.0) < 10) ++low;
  // With s=1 the first 10 of 100 ranks carry far more than 10% of the mass.
  EXPECT_GT(low, total / 4);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng r(19);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i)
    if (r.NextZipf(100, 0.0) < 10) ++low;
  EXPECT_NEAR(double(low) / double(total), 0.10, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a   b\tc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
}

TEST(StringsTest, ParseUint64) {
  uint64_t v;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
}

TEST(StringsTest, ParseDouble) {
  double v;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(DictionaryTest, EmptyStringIsZero) {
  Dictionary d;
  EXPECT_EQ(d.Intern(""), 0u);
  EXPECT_EQ(d.Name(0), "");
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  SymbolId a = d.Intern("alpha");
  SymbolId b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.Name(a), "alpha");
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, LookupDoesNotIntern) {
  Dictionary d;
  SymbolId id;
  EXPECT_FALSE(d.Lookup("nothere", &id));
  EXPECT_EQ(d.size(), 1u);
  d.Intern("x");
  EXPECT_TRUE(d.Lookup("x", &id));
}

TEST(HashTest, Mix64InjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(TableWriterTest, AsciiAndCsv) {
  TableWriter t("demo", {"a", "bee"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("demo"), std::string::npos);
  EXPECT_NE(ascii.find("333"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "a,bee\n1,2\n333,4\n");
}

TEST(TableWriterTest, NumFormatting) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Int(-5), "-5");
}

}  // namespace
}  // namespace grepair
