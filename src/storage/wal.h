// The write-ahead log of the serving commit path. Each committed batch's
// accepted edit ops (the journal slice RepairService::Commit captures as
// its delta — cascade fixes are NOT logged; they are recomputed
// deterministically on replay) are appended as CRC32C-checksummed frames
// followed by a commit-marker frame, and fsynced per the configured policy
// BEFORE detection/repair runs. Recovery (recovery.h) replays complete
// batches and truncates torn or corrupt tails at the last valid commit
// marker.
//
// Frame format (little-endian):
//   [u32 length][u32 masked crc32c][u8 type][payload: length-1 bytes]
// where the CRC covers type+payload and is masked (util/crc32c.h) so a
// frame embedding another frame's CRC still checks. Types:
//   'H'  segment header: 8-byte magic "GRWALv01" + u64 first batch seq
//   'S'  symbol definition: u8 dictionary (0=label 1=attr 2=value) +
//        u32 expected id + name bytes — vocabulary entries interned since
//        the last append, so replay re-interns them at identical ids
//        before applying the batch's records (which store raw SymbolIds)
//   'R'  one EditEntry record (graph/edit_log.h binary form)
//   'C'  commit marker: u64 batch seq + u32 symbol count + u32 record
//        count for the batch
//
// A segment file `wal-<start_seq 20 digits>.log` holds batches
// [start_seq, next segment's start_seq). Rotation happens at checkpoints
// (checkpoint.h); the writer syncs the outgoing segment so a rotation
// never widens the loss window of a relaxed fsync policy.
#ifndef GREPAIR_STORAGE_WAL_H_
#define GREPAIR_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/edit_log.h"
#include "storage/fs.h"

namespace grepair {
namespace storage {

/// When WAL appends reach the device. Weaker policies trade the tail of
/// the commit history (bounded by the interval / the OS flush cadence)
/// for append latency; recovery still lands on a valid PREFIX of acked
/// commits — never a torn or reordered one.
enum class FsyncPolicy {
  kEveryCommit,  ///< fsync after every commit marker (default; no loss)
  kInterval,     ///< fsync when `interval_ms` elapsed since the last sync
  kOff,          ///< never fsync; the OS decides (crash loses the tail)
};

/// `wal-<start_seq>.log` (20-digit zero-padded, so lexicographic order is
/// numeric order).
std::string WalSegmentName(uint64_t start_seq);
/// Parses a segment name; false when `name` is not one.
bool ParseWalSegmentName(const std::string& name, uint64_t* start_seq);

/// A vocabulary entry a batch interned: which dictionary, the id the
/// original process assigned (replay verifies it re-interns to the same),
/// and the name.
struct WalSymDef {
  uint8_t dict = 0;  ///< 0 = label, 1 = attr, 2 = value
  uint32_t id = 0;
  std::string name;
};

/// One complete batch: what gets appended, and what a scan reads back.
struct WalBatch {
  uint64_t seq = 0;
  std::vector<WalSymDef> symbols;  ///< interned before `records` apply
  std::vector<EditEntry> records;
};

/// Outcome of scanning one segment. Never an error for content problems:
/// a torn or corrupt tail is DATA (batches up to it are good), reported
/// via valid_size < file_size and `note`.
struct WalSegmentScan {
  uint64_t start_seq = 0;      ///< from the header frame
  std::vector<WalBatch> batches;
  uint64_t valid_size = 0;     ///< bytes up to the last valid commit marker
  uint64_t file_size = 0;
  bool header_ok = false;      ///< false => whole segment is unusable
  std::string note;            ///< first problem found, "" when clean
};

/// Scans `path` frame by frame, stopping at the first torn/corrupt frame,
/// an out-of-order batch seq, or a record-count mismatch. Only complete
/// record+marker runs become batches. Fails only when the file cannot be
/// READ at all (kIo/kNotFound).
Result<WalSegmentScan> ReadWalSegment(Fs* fs, const std::string& path);

/// Append half of the log. Single-writer, owned by RepairService.
class WalWriter {
 public:
  /// Creates/truncates segment `wal-<start_seq>.log` in `dir`, writes its
  /// header frame, and makes the segment's existence durable (file +
  /// directory fsync) regardless of policy — rotation points are where
  /// recovery re-anchors, so they must not be lost to a crash.
  static Result<std::unique_ptr<WalWriter>> Open(Fs* fs,
                                                 const std::string& dir,
                                                 uint64_t start_seq,
                                                 FsyncPolicy policy,
                                                 uint64_t interval_ms);

  /// Appends one batch (symbol frames + record frames + the commit marker)
  /// in a single Append call, then syncs per policy. `now_ms` is the
  /// caller's clock (monotonic, milliseconds) — only read under
  /// FsyncPolicy::kInterval, passed as an argument so tests control time
  /// (the TokenBucket idiom). A failed append or sync leaves the batch NOT
  /// committed: the caller must treat the batch as rejected (undo +
  /// read-only degradation).
  Status AppendBatch(const WalBatch& batch, uint64_t now_ms);

  /// Syncs the current segment and switches appends to a fresh segment
  /// `wal-<next_seq>.log`.
  Status Rotate(uint64_t next_seq);

  /// Flushes regardless of policy (shutdown path).
  Status SyncNow();

  uint64_t appends() const { return appends_; }
  uint64_t bytes_appended() const { return bytes_; }
  uint64_t syncs() const { return syncs_; }
  const std::string& segment_path() const { return path_; }

 private:
  WalWriter(Fs* fs, std::string dir, FsyncPolicy policy, uint64_t interval_ms)
      : fs_(fs), dir_(std::move(dir)), policy_(policy),
        interval_ms_(interval_ms) {}
  Status OpenSegment(uint64_t start_seq);

  Fs* fs_;
  std::string dir_;
  FsyncPolicy policy_;
  uint64_t interval_ms_;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  uint64_t last_sync_ms_ = 0;
  bool sync_pending_ = false;  ///< appended bytes not yet fsynced
  uint64_t appends_ = 0;
  uint64_t bytes_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace storage
}  // namespace grepair

#endif  // GREPAIR_STORAGE_WAL_H_
