// Journal stress property tests (TEST_P): long random edit scripts with
// undo to random marks must restore byte-identical state against reference
// snapshots, and interleaved undo/redo-like usage (mark, edit, undo, edit
// again) must never corrupt indexes (invariant 1 of DESIGN.md, hardened).
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "util/rng.h"

namespace grepair {
namespace {

struct Driver {
  explicit Driver(uint64_t seed)
      : vocab(MakeVocabulary()), g(vocab), rng(seed) {
    labels = {vocab->Label("A"), vocab->Label("B"), vocab->Label("C")};
    elabels = {vocab->Label("e"), vocab->Label("f")};
    attrs = {vocab->Attr("a1"), vocab->Attr("a2")};
    values = {vocab->Value("v1"), vocab->Value("v2"), vocab->Value("v3")};
    for (int i = 0; i < 8; ++i) g.AddNode(labels[rng.PickIndex(labels)]);
  }

  // One random mutation; returns false if it was a no-op this round.
  bool Step() {
    switch (rng.NextBounded(8)) {
      case 0:
        g.AddNode(labels[rng.PickIndex(labels)]);
        return true;
      case 1: {
        auto nodes = g.Nodes();
        if (nodes.size() < 2) return false;
        NodeId a = nodes[rng.PickIndex(nodes)];
        NodeId b = nodes[rng.PickIndex(nodes)];
        return g.AddEdge(a, b, elabels[rng.PickIndex(elabels)]).ok();
      }
      case 2: {
        auto edges = g.Edges();
        if (edges.empty()) return false;
        return g.RemoveEdge(edges[rng.PickIndex(edges)]).ok();
      }
      case 3: {
        auto nodes = g.Nodes();
        if (nodes.size() <= 2) return false;  // keep some nodes around
        return g.RemoveNode(nodes[rng.PickIndex(nodes)]).ok();
      }
      case 4: {
        auto nodes = g.Nodes();
        if (nodes.empty()) return false;
        return g.SetNodeLabel(nodes[rng.PickIndex(nodes)],
                              labels[rng.PickIndex(labels)])
            .ok();
      }
      case 5: {
        auto nodes = g.Nodes();
        if (nodes.empty()) return false;
        SymbolId v = rng.NextBernoulli(0.3) ? 0 : values[rng.PickIndex(values)];
        return g.SetNodeAttr(nodes[rng.PickIndex(nodes)],
                             attrs[rng.PickIndex(attrs)], v)
            .ok();
      }
      case 6: {
        auto edges = g.Edges();
        if (edges.empty()) return false;
        return g.SetEdgeAttr(edges[rng.PickIndex(edges)],
                             attrs[rng.PickIndex(attrs)],
                             values[rng.PickIndex(values)])
            .ok();
      }
      default: {
        auto nodes = g.Nodes();
        if (nodes.size() < 3) return false;
        NodeId a = nodes[rng.PickIndex(nodes)];
        NodeId b = nodes[rng.PickIndex(nodes)];
        if (a == b) return false;
        return g.MergeNodes(a, b).ok();
      }
    }
  }

  // Full index verification: the label/attr indexes agree with a rescan.
  void VerifyIndexes() {
    size_t indexed = 0;
    for (NodeId n : g.Nodes()) {
      ASSERT_TRUE(g.NodesWithLabel(g.NodeLabel(n)).count(n));
      for (const auto& [a, v] : g.NodeAttrs(n).entries())
        ASSERT_TRUE(g.NodesWithAttr(a, v).count(n));
      ++indexed;
    }
    ASSERT_EQ(g.NodesWithLabel(0).size(), indexed);
    // Adjacency round trip.
    for (EdgeId e : g.Edges()) {
      EdgeView v = g.Edge(e);
      const auto& out = g.OutEdges(v.src);
      ASSERT_NE(std::find(out.begin(), out.end(), e), out.end());
      const auto& in = g.InEdges(v.dst);
      ASSERT_NE(std::find(in.begin(), in.end(), e), in.end());
    }
  }

  VocabularyPtr vocab;
  Graph g;
  Rng rng;
  std::vector<SymbolId> labels, elabels, attrs, values;
};

class JournalStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalStress, UndoToRandomMarksRestoresSnapshots) {
  Driver d(GetParam());
  // Record snapshots at random marks along a 120-edit script.
  std::vector<std::pair<size_t, uint64_t>> snapshots;  // mark -> fingerprint
  for (int i = 0; i < 120; ++i) {
    if (d.rng.NextBernoulli(0.15))
      snapshots.push_back({d.g.JournalSize(), d.g.Fingerprint()});
    d.Step();
  }
  d.VerifyIndexes();
  // Undo back through the snapshots in reverse order.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    ASSERT_TRUE(d.g.UndoTo(it->first).ok());
    EXPECT_EQ(d.g.Fingerprint(), it->second) << "seed " << GetParam();
  }
  d.VerifyIndexes();
}

TEST_P(JournalStress, UndoRedoInterleavingKeepsIndexesSound) {
  Driver d(GetParam() + 5000);
  for (int round = 0; round < 10; ++round) {
    size_t mark = d.g.JournalSize();
    uint64_t fp = d.g.Fingerprint();
    for (int i = 0; i < 12; ++i) d.Step();
    if (d.rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(d.g.UndoTo(mark).ok());
      ASSERT_EQ(d.g.Fingerprint(), fp);
    }
    d.VerifyIndexes();
  }
}

TEST_P(JournalStress, CostNonNegativeAndAdditive) {
  Driver d(GetParam() + 9000);
  CostModel m;
  size_t m1 = d.g.JournalSize();
  for (int i = 0; i < 20; ++i) d.Step();
  size_t m2 = d.g.JournalSize();
  for (int i = 0; i < 20; ++i) d.Step();
  double part1 = JournalCost(d.g.Journal(), m1, m2, m);
  double part2 = JournalCost(d.g.Journal(), m2, d.g.JournalSize(), m);
  EXPECT_GE(part1, 0.0);
  EXPECT_GE(part2, 0.0);
  EXPECT_DOUBLE_EQ(part1 + part2, d.g.CostSince(m1, m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalStress,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace grepair
