#include "cli/cli.h"

#include <cstdio>
#include <iostream>
#include <map>
#include <set>

#include "consistency/checker.h"
#include "consistency/simulator.h"
#include "graph/error_injector.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "grr/rule_parser.h"
#include "grr/standard_rules.h"
#include "match/plan.h"
#include "mining/rule_miner.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "repair/engine.h"
#include "serve/repair_service.h"
#include "serve/server.h"
#include "serve/session.h"
#include "storage/fs.h"
#include "storage/recovery.h"
#include "util/strings.h"

namespace grepair {
namespace {

constexpr char kUsage[] = R"(usage:
  grepair gen <kg|social|citation> --out g.tsv [--scale N] [--rate R]
          [--seed S] [--rules-out r.grr]
  grepair stats  <graph.tsv> [--format text|prom]
  grepair check  <rules.grr>
  grepair detect <graph.tsv> <rules.grr> [--threads N]
  grepair explain_plan <graph.tsv> <rules.grr>
  grepair repair <graph.tsv> <rules.grr> [--strategy greedy|naive|batch|exact]
          [--out repaired.tsv] [--threads N]
  grepair mine   <graph.tsv> [--min-support X] [--threads N]
  grepair serve  <graph.tsv> <rules.grr> [--threads N] [--shards S]
          [--trace-out trace.json] [--listen PORT] [--max-connections N]
          [--max-requests-per-sec R] [--wal DIR] [--fsync-policy P]
          [--fsync-interval-ms MS] [--checkpoint-every N]
          [--publish on|off] [--max-read-threads N]
  grepair wal dump <dir>

--threads N fans detection / mining statistics out over N worker threads
(0 = hardware concurrency); results are identical to --threads 1.
--shards S partitions serve's cached read snapshot into S storage shards
(0 = one per worker thread, 1 = monolithic); results are identical for
any S, but a hot shard rebuilds alone instead of forcing a full rebuild.

serve reads edit commands from stdin, one per line, and repairs after each
commit (see DESIGN.md "Serving model"):
  add_node <Label>                   add_edge <src> <dst> <label>
  remove_node <id>                   remove_edge <id>
  set_node_label <id> <Label>        set_edge_label <id> <label>
  set_node_attr <id> <attr> <value>  set_edge_attr <id> <attr> <value>
  commit | stats | save <path> | quit
  detect [rule]     count violations on the last published snapshot
                    generation (optionally one rule by name); runs outside
                    the commit path, any number concurrently
  violations [offset [limit]]
                    page the published violation backlog (default limit
                    100); same lock-free read path as detect
  snapshot <path>   persist service state (graph + violation backlog;
                    commits pending edits first)
  restore <path>    replace service state from a snapshot file
  metrics           dump all instruments in Prometheus text exposition
  trace <path>      flush the commit-path trace rings to <path> as Chrome
                    trace-event JSON (requires --trace-out or prior traces)

--trace-out FILE enables commit-path tracing for the session and writes the
accumulated spans to FILE (Chrome trace-event JSON, Perfetto-loadable) when
the session ends.

--listen PORT serves the same line protocol over TCP instead of stdio (0 =
ephemeral port, printed on startup): many concurrent client sessions share
one service, each staging its edits locally and applying them as one atomic
block at commit. Admission control sheds overload with `err busy`:
--max-connections caps concurrent clients (default 64), and
--max-requests-per-sec rate-limits requests across all connections with a
token bucket (default 0 = unlimited). A client's `shutdown` verb stops the
server; `quit` only closes that client's connection. Protocol errors are
machine-parseable `err <code> <msg>` lines (DESIGN.md "Network serving" has
the code set); tools/serve_client.py is a minimal scripting client.

--publish on|off (default on) controls epoch-published snapshots: after
each committed batch the service atomically publishes an immutable snapshot
generation, and the read verbs (`detect`, `violations`) run against it
WITHOUT taking the commit mutex — reads scale with cores and a slow
detection never stalls writers (DESIGN.md "Read path / epoch publication").
--max-read-threads N (default 0 = unlimited) caps concurrently executing
read verbs; excess reads are shed with `err busy`. `off` is the ablation
switch: read verbs answer `err rejected` and serving degrades to the
single-mutex behavior.

--wal DIR makes serve durable: every committed batch is appended to a
write-ahead log in DIR (fsynced per --fsync-policy: every = fsync each
commit, the default; interval = fsync at most every --fsync-interval-ms;
off = leave flushing to the OS) before the commit is acknowledged, and a
checkpoint of the full service state is written every --checkpoint-every
batches (default 256, 0 = only the baseline checkpoint at startup). On
startup serve restores the newest valid checkpoint from DIR and replays
the WAL tail, so a crashed server restarted with the same --wal (and the
same graph/rules files) recovers every acknowledged commit. If a WAL
append ever fails the batch is rolled back and the service degrades to
read-only (`err io` on edits) rather than acknowledging writes it cannot
make durable. DESIGN.md "Durability" has the file formats and crash
semantics; `grepair wal dump <dir>` prints what a directory would recover.
)";

// Flags each command accepts; anything else is a usage error (exit 2), so a
// typo like --thread cannot be silently ignored.
const std::map<std::string, std::set<std::string>>& AllowedFlags() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"gen", {"out", "scale", "rate", "seed", "rules-out"}},
      {"stats", {"format"}},
      {"check", {}},
      {"detect", {"threads"}},
      {"explain_plan", {}},
      {"repair", {"strategy", "out", "threads"}},
      {"mine", {"min-support", "threads"}},
      {"serve",
       {"threads", "shards", "trace-out", "listen", "max-connections",
        "max-requests-per-sec", "wal", "fsync-policy", "fsync-interval-ms",
        "checkpoint-every", "publish", "max-read-threads"}},
      {"wal", {}},
  };
  return kAllowed;
}

// Parses the shared --threads flag (default 1 = sequential).
Status ParseThreads(const std::map<std::string, std::string>& flags,
                    size_t* threads) {
  auto it = flags.find("threads");
  if (it == flags.end()) return Status::Ok();
  uint64_t v = 0;
  if (!ParseUint64(it->second, &v))
    return Status::InvalidArgument("bad --threads");
  *threads = static_cast<size_t>(v);
  return Status::Ok();
}

// Simple flag parsing: positional args + --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Result<Args> Parse(const std::vector<std::string>& raw) {
    Args out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (StartsWith(raw[i], "--")) {
        // Both spellings: --key value and --key=value.
        if (size_t eq = raw[i].find('='); eq != std::string::npos) {
          out.flags[raw[i].substr(2, eq - 2)] = raw[i].substr(eq + 1);
          continue;
        }
        if (i + 1 >= raw.size())
          return Status::InvalidArgument("flag " + raw[i] + " needs a value");
        out.flags[raw[i].substr(2)] = raw[i + 1];
        ++i;
      } else {
        out.positional.push_back(raw[i]);
      }
    }
    return out;
  }

  std::string Flag(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
};

Status WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return Status::NotFound("cannot open: " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return data;
}

Status CmdGen(const Args& args, std::string* out) {
  if (args.positional.size() < 2)
    return Status::InvalidArgument("gen needs a dataset name");
  const std::string& which = args.positional[1];
  std::string out_path = args.Flag("out", "");
  if (out_path.empty())
    return Status::InvalidArgument("gen needs --out <path>");
  uint64_t scale = 2000, seed = 42;
  double rate = 0.0;
  if (!ParseUint64(args.Flag("scale", "2000"), &scale))
    return Status::InvalidArgument("bad --scale");
  if (!ParseUint64(args.Flag("seed", "42"), &seed))
    return Status::InvalidArgument("bad --seed");
  if (!ParseDouble(args.Flag("rate", "0"), &rate))
    return Status::InvalidArgument("bad --rate");

  auto vocab = MakeVocabulary();
  Graph g(vocab);
  const char* rules_dsl = nullptr;
  if (which == "kg") {
    KgSchema schema = KgSchema::Create(vocab.get());
    KgOptions o;
    o.num_persons = scale;
    o.num_cities = std::max<size_t>(10, scale / 10);
    o.num_countries = std::max<size_t>(5, scale / 200);
    o.num_orgs = std::max<size_t>(5, scale / 15);
    o.seed = seed;
    g = GenerateKg(vocab, schema, o);
    if (rate > 0) {
      InjectOptions io;
      io.rate = rate;
      io.seed = seed + 1;
      auto rep = InjectKgErrors(&g, schema, io);
      if (!rep.ok()) return rep.status();
      *out += StrFormat("injected %zu errors\n", rep.value().errors.size());
    }
    rules_dsl = kKgRulesDsl;
  } else if (which == "social") {
    SocialSchema schema = SocialSchema::Create(vocab.get());
    SocialOptions o;
    o.num_persons = scale;
    o.seed = seed;
    g = GenerateSocial(vocab, schema, o);
    if (rate > 0) {
      InjectOptions io;
      io.rate = rate;
      io.seed = seed + 1;
      auto rep = InjectSocialErrors(&g, schema, io);
      if (!rep.ok()) return rep.status();
      *out += StrFormat("injected %zu errors\n", rep.value().errors.size());
    }
    rules_dsl = kSocialRulesDsl;
  } else if (which == "citation") {
    CitationSchema schema = CitationSchema::Create(vocab.get());
    CitationOptions o;
    o.num_papers = scale;
    o.num_authors = std::max<size_t>(10, scale / 3);
    o.seed = seed;
    g = GenerateCitation(vocab, schema, o);
    if (rate > 0) {
      InjectOptions io;
      io.rate = rate;
      io.seed = seed + 1;
      auto rep = InjectCitationErrors(&g, schema, io);
      if (!rep.ok()) return rep.status();
      *out += StrFormat("injected %zu errors\n", rep.value().errors.size());
    }
    rules_dsl = kCitationRulesDsl;
  } else {
    return Status::InvalidArgument("unknown dataset: " + which);
  }

  GREPAIR_RETURN_IF_ERROR(SaveGraph(g, out_path));
  *out += StrFormat("wrote %s: %zu nodes, %zu edges\n", out_path.c_str(),
                    g.NumNodes(), g.NumEdges());
  std::string rules_path = args.Flag("rules-out", "");
  if (!rules_path.empty()) {
    GREPAIR_RETURN_IF_ERROR(WriteFile(rules_path, rules_dsl));
    *out += "wrote " + rules_path + "\n";
  }
  return Status::Ok();
}

Status CmdStats(const Args& args, std::string* out) {
  if (args.positional.size() < 2)
    return Status::InvalidArgument("stats needs a graph path");
  std::string format = args.Flag("format", "text");
  if (format != "text" && format != "prom")
    return Status::InvalidArgument("bad --format (want text or prom)");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  // Label histograms.
  std::map<std::string, size_t> node_hist, edge_hist;
  for (NodeId n : g.Nodes()) node_hist[vocab->LabelName(g.NodeLabel(n))]++;
  for (EdgeId e : g.Edges()) edge_hist[vocab->LabelName(g.EdgeLabel(e))]++;
  if (format == "prom") {
    // Same numbers as the text report, re-shaped into the exposition the
    // `metrics` serve verb speaks — scrapeable graph-shape gauges.
    obs::MetricsRegistry reg;
    obs::RegisterBuildInfoMetric(&reg);
    reg.GetGauge("grepair_graph_nodes", "Alive nodes in the graph.")
        ->Set(static_cast<int64_t>(g.NumNodes()));
    reg.GetGauge("grepair_graph_edges", "Alive edges in the graph.")
        ->Set(static_cast<int64_t>(g.NumEdges()));
    for (const auto& [l, c] : node_hist)
      reg.GetGauge("grepair_graph_node_labels", "Alive nodes by label.",
                   {{"label", l}})
          ->Set(static_cast<int64_t>(c));
    for (const auto& [l, c] : edge_hist)
      reg.GetGauge("grepair_graph_edge_labels", "Alive edges by label.",
                   {{"label", l}})
          ->Set(static_cast<int64_t>(c));
    *out += reg.ExpositionText();
    return Status::Ok();
  }
  *out += StrFormat("nodes: %zu\nedges: %zu\n", g.NumNodes(), g.NumEdges());
  *out += "node labels:\n";
  for (const auto& [l, c] : node_hist)
    *out += StrFormat("  %-16s %zu\n", l.c_str(), c);
  *out += "edge labels:\n";
  for (const auto& [l, c] : edge_hist)
    *out += StrFormat("  %-16s %zu\n", l.c_str(), c);
  return Status::Ok();
}

Status CmdCheck(const Args& args, std::string* out) {
  if (args.positional.size() < 2)
    return Status::InvalidArgument("check needs a rules path");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[1]));
  GREPAIR_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(text, vocab));
  *out += StrFormat("parsed %zu rules\n", rules.size());
  ConsistencyReport rep = CheckConsistency(rules, *vocab);
  *out += StrFormat("static analysis: %s (%zu trigger edges, "
                    "%zu contradictions)\n",
                    rep.statically_consistent ? "CONSISTENT" : "REJECTED",
                    rep.num_trigger_edges, rep.num_contradictions);
  for (const auto& issue : rep.issues) *out += "  issue: " + issue + "\n";
  SimOptions sopt;
  SimulationReport sim = SimulateRuleSet(rules, vocab, sopt);
  *out += StrFormat("simulation: %zu trials, %zu non-terminating, "
                    "%zu divergent\n",
                    sim.trials, sim.nonterminating, sim.divergent);
  if (sim.witness_found) *out += "  witness: " + sim.witness + "\n";
  return rep.statically_consistent && sim.nonterminating == 0
             ? Status::Ok()
             : Status::Inconsistent("rule set rejected");
}

Status CmdDetect(const Args& args, std::string* out) {
  if (args.positional.size() < 3)
    return Status::InvalidArgument("detect needs <graph> <rules>");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  GREPAIR_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[2]));
  GREPAIR_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(text, vocab));
  size_t threads = 1;
  GREPAIR_RETURN_IF_ERROR(ParseThreads(args.flags, &threads));
  ViolationStore store;
  DetectAll(g, rules, &store, /*expansions=*/nullptr, threads);
  std::map<std::string, size_t> per_rule;
  for (const Violation& v : store.Snapshot()) per_rule[rules[v.rule].name()]++;
  *out += StrFormat("%zu violations\n", store.Size());
  for (const auto& [name, c] : per_rule)
    *out += StrFormat("  %-32s %zu\n", name.c_str(), c);
  return Status::Ok();
}

Status CmdExplainPlan(const Args& args, std::string* out) {
  if (args.positional.size() < 3)
    return Status::InvalidArgument("explain_plan needs <graph> <rules>");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  GREPAIR_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[2]));
  GREPAIR_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(text, vocab));
  // Plans are compiled against the same frozen view detection reads, so
  // what this prints is exactly what a fanning-out pass executes.
  GraphSnapshot snap(g);
  for (RuleId r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    *out += StrFormat("rule %zu: %s\n", static_cast<size_t>(r),
                      rule.ToString(*vocab).c_str());
    MatchPlan plan = MatchPlan::Compile(rule.pattern(), snap);
    *out += plan.Explain(*vocab);
    *out += "\n";
  }
  return Status::Ok();
}

Status CmdRepair(const Args& args, std::string* out) {
  if (args.positional.size() < 3)
    return Status::InvalidArgument("repair needs <graph> <rules>");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  GREPAIR_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[2]));
  GREPAIR_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(text, vocab));

  RepairOptions opt;
  GREPAIR_RETURN_IF_ERROR(ParseThreads(args.flags, &opt.num_threads));
  std::string strategy = args.Flag("strategy", "greedy");
  if (strategy == "greedy") {
    opt.strategy = RepairStrategy::kGreedy;
  } else if (strategy == "naive") {
    opt.strategy = RepairStrategy::kNaive;
  } else if (strategy == "batch") {
    opt.strategy = RepairStrategy::kBatch;
  } else if (strategy == "exact") {
    opt.strategy = RepairStrategy::kExact;
  } else {
    return Status::InvalidArgument("unknown strategy: " + strategy);
  }

  RepairEngine engine(opt);
  GREPAIR_ASSIGN_OR_RETURN(RepairResult res, engine.Run(&g, rules));
  *out += StrFormat(
      "violations: %zu -> %zu\nfixes applied: %zu (cost %.1f) in %.1f ms\n",
      res.initial_violations, res.remaining_violations, res.applied.size(),
      res.repair_cost, res.total_ms);
  if (res.budget_exhausted) *out += "WARNING: fix budget exhausted\n";

  std::string out_path = args.Flag("out", "");
  if (!out_path.empty()) {
    GREPAIR_RETURN_IF_ERROR(SaveGraph(g, out_path));
    *out += "wrote " + out_path + "\n";
  }
  return Status::Ok();
}

Status CmdMine(const Args& args, std::string* out) {
  if (args.positional.size() < 2)
    return Status::InvalidArgument("mine needs a graph path");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  MiningOptions opt;
  GREPAIR_RETURN_IF_ERROR(ParseThreads(args.flags, &opt.num_threads));
  double support = 0.9;
  if (!ParseDouble(args.Flag("min-support", "0.9"), &support))
    return Status::InvalidArgument("bad --min-support");
  opt.min_support = support;
  auto mined = MineRules(g, opt);
  *out += StrFormat("mined %zu rules\n", mined.size());
  for (const MinedRule& m : mined)
    *out += StrFormat("  %-20s %-36s support=%.3f evidence=%zu\n",
                      m.kind.c_str(), m.rule.name().c_str(), m.support,
                      m.evidence);
  return Status::Ok();
}

// ------------------------------------------------------------------ serve
//
// The protocol itself (parsing, dispatch, responses) lives in
// src/serve/session.{h,cc}; this file only owns the transports: the
// historical stdio loop (one kImmediate session, byte-identical responses)
// and the --listen TCP front-end (serve::Server, many kStaged sessions).

Status CmdServe(const Args& args, std::string* out, std::istream* in,
                std::ostream* live) {
  if (args.positional.size() < 3)
    return Status::InvalidArgument("serve needs <graph> <rules>");
  auto vocab = MakeVocabulary();
  GREPAIR_ASSIGN_OR_RETURN(Graph g, LoadGraph(args.positional[1], vocab));
  GREPAIR_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[2]));
  GREPAIR_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(text, vocab));

  ServeOptions sopt;
  GREPAIR_RETURN_IF_ERROR(ParseThreads(args.flags, &sopt.num_threads));
  if (auto it = args.flags.find("shards"); it != args.flags.end()) {
    uint64_t v = 0;
    if (!ParseUint64(it->second, &v))
      return Status::InvalidArgument("bad --shards");
    sopt.num_shards = static_cast<size_t>(v);
  }
  if (auto it = args.flags.find("listen"); it != args.flags.end()) {
    uint64_t v = 0;
    if (!ParseUint64(it->second, &v) || v > 65535)
      return Status::InvalidArgument("bad --listen (want a port in 0..65535)");
    sopt.listen_port = static_cast<int>(v);
  }
  if (auto it = args.flags.find("max-connections"); it != args.flags.end()) {
    uint64_t v = 0;
    if (!ParseUint64(it->second, &v))
      return Status::InvalidArgument("bad --max-connections");
    sopt.max_connections = static_cast<size_t>(v);
  }
  if (auto it = args.flags.find("max-requests-per-sec");
      it != args.flags.end()) {
    double v = 0;
    if (!ParseDouble(it->second, &v))
      return Status::InvalidArgument("bad --max-requests-per-sec");
    sopt.max_requests_per_sec = v;
  }
  sopt.wal_dir = args.Flag("wal", "");
  if (auto it = args.flags.find("fsync-policy"); it != args.flags.end()) {
    if (it->second == "every") {
      sopt.fsync_policy = storage::FsyncPolicy::kEveryCommit;
    } else if (it->second == "interval") {
      sopt.fsync_policy = storage::FsyncPolicy::kInterval;
    } else if (it->second == "off") {
      sopt.fsync_policy = storage::FsyncPolicy::kOff;
    } else {
      return Status::InvalidArgument(
          "bad --fsync-policy (want every, interval, or off)");
    }
  }
  if (auto it = args.flags.find("fsync-interval-ms"); it != args.flags.end()) {
    if (!ParseUint64(it->second, &sopt.fsync_interval_ms))
      return Status::InvalidArgument("bad --fsync-interval-ms");
  }
  if (auto it = args.flags.find("checkpoint-every"); it != args.flags.end()) {
    if (!ParseUint64(it->second, &sopt.checkpoint_every))
      return Status::InvalidArgument("bad --checkpoint-every");
  }
  if (auto it = args.flags.find("publish"); it != args.flags.end()) {
    if (it->second == "on") {
      sopt.publish_snapshots = true;
    } else if (it->second == "off") {
      sopt.publish_snapshots = false;
    } else {
      return Status::InvalidArgument("bad --publish (want on or off)");
    }
  }
  if (auto it = args.flags.find("max-read-threads"); it != args.flags.end()) {
    uint64_t v = 0;
    if (!ParseUint64(it->second, &v))
      return Status::InvalidArgument("bad --max-read-threads");
    sopt.max_read_threads = static_cast<size_t>(v);
  }
  // Validate BEFORE constructing: the service constructor throws on bad
  // options, but flag errors should exit through the status path.
  GREPAIR_RETURN_IF_ERROR(sopt.Validate());
  std::string trace_out = args.Flag("trace-out", "");
  if (!trace_out.empty()) {
    // Session-scoped tracing: start from empty rings so the dump holds
    // exactly this session's commit path, and drop the enable on exit so a
    // host process running several sessions doesn't trace the untraced.
    obs::ClearTrace();
    obs::SetTracingEnabled(true);
  }
  RepairService service(std::move(g), std::move(rules), sopt);

  auto respond = [&](const std::string& line) {
    *out += line + "\n";
    if (live != nullptr) {
      *live << line << "\n";
      live->flush();
    }
  };
  auto flush_trace = [&] {
    if (trace_out.empty()) return;
    size_t events = obs::TraceEventCount();
    if (obs::WriteChromeTrace(trace_out))
      respond(StrFormat("trace %s events=%zu", trace_out.c_str(), events));
    else
      respond(serve::ErrResponse("io", "cannot write trace: " + trace_out));
    obs::SetTracingEnabled(false);
  };

  // Durability opens before any transport accepts a line: recovery replays
  // the WAL tail into the fresh service, and the WAL writer must be live
  // before the first commit so no acknowledged batch ever skips the log.
  if (!sopt.wal_dir.empty()) {
    auto rec = service.OpenDurability();
    if (!rec.ok()) return rec.status();
    const RecoveryInfo& ri = rec.value();
    respond(StrFormat("recovered checkpoint=%llu replayed=%llu "
                      "truncated_bytes=%llu dropped=%llu corrupt_ckpts=%llu",
                      static_cast<unsigned long long>(ri.checkpoint_seq),
                      static_cast<unsigned long long>(ri.replayed_batches),
                      static_cast<unsigned long long>(ri.truncated_bytes),
                      static_cast<unsigned long long>(ri.dropped_batches),
                      static_cast<unsigned long long>(ri.corrupt_checkpoints)));
  }

  if (sopt.listen_port >= 0) {
    // TCP transport: the server owns the sessions (one kStaged session per
    // connection); this thread only reports the bound port and waits for a
    // client's `shutdown` verb.
    serve::Server server(&service);
    GREPAIR_RETURN_IF_ERROR(server.Start());
    respond(obs::BuildInfoLine());
    respond(StrFormat("listening port=%u max_connections=%zu "
                      "max_requests_per_sec=%.0f threads=%zu shards=%zu",
                      server.port(), sopt.max_connections,
                      sopt.max_requests_per_sec, sopt.num_threads,
                      service.num_shards()));
    server.Wait();
    flush_trace();
    const ServiceStats& s = service.stats();
    respond(StrFormat("bye batches=%zu fixes=%zu", s.batches,
                      s.violations_repaired));
    return Status::Ok();
  }

  respond(obs::BuildInfoLine());
  respond(StrFormat("serving %zu nodes %zu edges %zu rules threads=%zu "
                    "shards=%zu",
                    service.graph().NumNodes(), service.graph().NumEdges(),
                    service.rules().size(), sopt.num_threads,
                    service.num_shards()));

  // Stdio transport: one exclusive kImmediate session (edits apply as they
  // arrive, responses carry real element ids — the historical protocol,
  // byte for byte).
  serve::Session session(&service, serve::SessionMode::kImmediate);
  if (in == nullptr) in = &std::cin;
  std::string line;
  while (std::getline(*in, line)) {
    std::string response = session.HandleLine(line);
    if (session.quit_requested()) break;
    if (!response.empty()) respond(response);
  }
  // Repair anything still pending so quitting never abandons a dirty graph.
  if (service.PendingEdits() > 0) {
    auto committed = service.Commit();
    if (committed.ok())
      respond(serve::FormatBatchLine(committed.value()));
    else
      respond(serve::ErrResponse(
          committed.status().code() == StatusCode::kIo ? "io" : "internal",
          committed.status().ToString()));
  }
  flush_trace();
  const ServiceStats& s = service.stats();
  respond(StrFormat("bye batches=%zu fixes=%zu", s.batches,
                    s.violations_repaired));
  return Status::Ok();
}

// Read-only inspection of a durability directory: lists every checkpoint
// (valid or not) and WAL segment with its batch range and torn-tail note,
// without mutating anything — safe to run against a live server's --wal dir.
Status CmdWalDump(const Args& args, std::string* out) {
  if (args.positional.size() < 3 || args.positional[1] != "dump")
    return Status::InvalidArgument("usage: grepair wal dump <dir>");
  GREPAIR_ASSIGN_OR_RETURN(
      std::string report,
      storage::DumpStorageDir(storage::RealFs::Default(), args.positional[2]));
  *out += report;
  return Status::Ok();
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::string* out,
           std::istream* serve_in, std::ostream* serve_live) {
  if (args.empty()) {
    *out = kUsage;
    return 2;
  }
  auto parsed = Args::Parse(args);
  if (!parsed.ok()) {
    *out = parsed.status().ToString() + "\n" + kUsage;
    return 2;
  }
  const std::string& cmd = args[0];
  auto allowed = AllowedFlags().find(cmd);
  if (allowed == AllowedFlags().end()) {
    *out = "unknown command: " + cmd + "\n" + kUsage;
    return 2;
  }
  for (const auto& [flag, value] : parsed.value().flags) {
    (void)value;
    if (!allowed->second.count(flag)) {
      *out = "unknown flag --" + flag + " for '" + cmd + "'\n" + kUsage;
      return 2;
    }
  }
  Status st;
  if (cmd == "gen") {
    st = CmdGen(parsed.value(), out);
  } else if (cmd == "stats") {
    st = CmdStats(parsed.value(), out);
  } else if (cmd == "check") {
    st = CmdCheck(parsed.value(), out);
  } else if (cmd == "detect") {
    st = CmdDetect(parsed.value(), out);
  } else if (cmd == "explain_plan") {
    st = CmdExplainPlan(parsed.value(), out);
  } else if (cmd == "repair") {
    st = CmdRepair(parsed.value(), out);
  } else if (cmd == "mine") {
    st = CmdMine(parsed.value(), out);
  } else if (cmd == "serve") {
    st = CmdServe(parsed.value(), out, serve_in, serve_live);
  } else if (cmd == "wal") {
    st = CmdWalDump(parsed.value(), out);
  } else {
    // Unreachable while AllowedFlags() and this chain list the same
    // commands; fail loudly if they ever drift.
    *out = "command not dispatched: " + cmd + "\n" + kUsage;
    return 2;
  }
  if (!st.ok()) {
    *out += st.ToString() + "\n";
    return 1;
  }
  return 0;
}

}  // namespace grepair
