// The serving subsystem: a long-lived RepairService that owns a graph and a
// persistent violation store, accepts batches of edits, and keeps the graph
// clean under a stream of updates — the paper's "efficient repairing"
// (delta-anchored re-detection) turned into a system surface.
//
// Lifecycle per batch (DESIGN.md "Serving model"):
//   1. edits are applied to the owned graph immediately (journaled);
//   2. Commit() takes the journal slice since the last commit as the delta
//      and seeds the violation store with batched PARALLEL delta-detection
//      (parallel::ParallelDeltaDetector over the service pool — bit-identical
//      to the sequential RunDelta seeding for any thread count). A
//      fanning-out seed pass reads the service's CACHED GraphSnapshot,
//      advanced to the current state by patching the graph's delta log —
//      O(delta) per commit instead of an O(V+E) rebuild (DESIGN.md
//      "Incremental maintenance"; rebuilt past snapshot_rebuild_fraction);
//   3. repair cascades drain the store greedily, exactly like
//      RepairEngine::RunDelta: pop cheapest, re-verify, apply, re-detect
//      sequentially around the fix (a cascade delta is O(1) anchors).
//
// Threading contract: all mutation happens on the caller's thread; worker
// threads only read the frozen graph during step 2 (DESIGN.md "Threading
// model"). The service is single-writer — callers serialize access — with
// ONE carve-out: the published read path (DetectPublished / ReadViolations
// / PinPublished) is safe from any thread concurrently with the writer; it
// runs against immutable epoch-published snapshot generations
// (serve::SnapshotPublisher) and never touches the mutable service state.
#ifndef GREPAIR_SERVE_REPAIR_SERVICE_H_
#define GREPAIR_SERVE_REPAIR_SERVICE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "serve/publisher.h"
#include "grr/rule.h"
#include "match/plan.h"
#include "obs/metrics.h"
#include "parallel/delta_detector.h"
#include "parallel/thread_pool.h"
#include "repair/engine.h"
#include "repair/violation.h"
#include "storage/fs.h"
#include "storage/wal.h"
#include "util/status.h"

namespace grepair {

/// Service configuration.
struct ServeOptions {
  /// Worker threads for batched delta-detection (0 = hardware concurrency,
  /// 1 = sequential, no pool). Results are bit-identical across counts.
  size_t num_threads = 1;
  /// Fan out a batch only when its delta induces at least this many anchors;
  /// smaller batches (and all per-fix cascades) run sequentially.
  size_t shard_min_anchors = 16;
  /// Anchor slices per (rule, anchor kind); 0 = 2x pool threads.
  size_t max_shards_per_rule = 0;
  /// Edge attribute carrying evidence confidence ("" disables weighting).
  std::string confidence_attr = "conf";
  /// Cost model for fix selection and cost accounting.
  CostModel cost_model;
  /// Per-batch cascade budget; an exhausted batch leaves the remaining
  /// violations in the store for the next commit to continue draining.
  size_t max_fixes_per_batch = 1'000'000;
  /// Maintain ONE read snapshot across commits and advance it per batch
  /// from the graph's delta log (O(delta)) instead of rebuilding it from
  /// scratch (O(V+E)) — the incremental serving hot path. Disable to force
  /// a rebuild whenever a batch fans out (mainly for tests/benchmarks).
  bool incremental_snapshots = true;
  /// Rebuild instead of patch once the records to apply — the pending
  /// delta plus everything already patched into the cached snapshot —
  /// exceed this fraction of |E|: per-record overlay bookkeeping has a
  /// higher constant than the linear rebuild, and a heavily patched
  /// snapshot carries overlay lookups on its read paths. Under sharding
  /// the same fraction applies PER SHARD against the shard's own edge
  /// count, so a hot shard rebuilds alone.
  double snapshot_rebuild_fraction = 0.15;
  /// Storage shards for the cached read snapshot (ShardedSnapshot): 0 =
  /// one shard per pool thread (the default — build, patch and rebuild all
  /// align with the detection fan-out), 1 = one monolithic GraphSnapshot,
  /// capped at ShardedSnapshot::kMaxShards. Ignored by a sequential
  /// (1-thread) service, which never reads snapshots. Results are
  /// bit-identical across shard counts; only wall-clock changes.
  size_t num_shards = 0;
  /// Publish an immutable snapshot generation after every committed batch
  /// (and at construction / restore) through the RCU-style
  /// serve::SnapshotPublisher, so `detect` / `violations` readers run
  /// lock-free against the last committed state while the writer commits
  /// (DESIGN.md "Read path / epoch publication"). Disabling reverts to the
  /// write-only service: read verbs answer `err rejected` and no
  /// publication work rides the commit path (the ablation baseline
  /// bench_serving S4 compares against).
  bool publish_snapshots = true;
  /// Cap on concurrently executing published reads across all transports
  /// (`--max-read-threads`); excess requests are shed with `err busy`
  /// instead of queueing behind each other. 0 = unlimited.
  size_t max_read_threads = 0;
  /// TCP listener port for `grepair serve --listen` (serve::Server). -1 =
  /// no listener, stdio transport; 0 = bind an ephemeral port (published
  /// via Server::port()); 1..65535 = that port.
  int listen_port = -1;
  /// Admission cap on concurrently admitted TCP client connections;
  /// accepts beyond it are answered `err busy` and closed.
  size_t max_connections = 64;
  /// Token-bucket request rate limit across ALL connections (burst =
  /// max(1, rate)); requests past it are shed with `err busy`. 0 disables.
  double max_requests_per_sec = 0.0;
  /// Durability directory for the write-ahead log + checkpoints ("" = no
  /// durability, the pre-WAL in-memory behavior). With a directory set,
  /// OpenDurability() must run before the first commit: it recovers from
  /// the newest valid checkpoint, replays the WAL tail, and opens the
  /// writer. The SAME --graph/--rules configuration must be used across
  /// restarts of one directory (DESIGN.md "Durability").
  std::string wal_dir;
  /// When WAL appends reach the device (storage/wal.h). Weaker policies
  /// trade the last `fsync_interval_ms` (or OS flush cadence) of acked
  /// commits for append latency; recovery still lands on a valid prefix.
  storage::FsyncPolicy fsync_policy = storage::FsyncPolicy::kEveryCommit;
  /// Sync cadence under FsyncPolicy::kInterval, in milliseconds.
  uint64_t fsync_interval_ms = 100;
  /// Write a checkpoint (and rotate + trim the WAL) every N committed
  /// batches. 0 = only the baseline checkpoints OpenDurability and
  /// RestoreState write — the WAL then grows until the next restart.
  /// NOTE a checkpoint compacts element ids exactly like a save/restore
  /// round trip (DESIGN.md "Durability"); ids handed to clients before it
  /// are remapped to their dense rank.
  uint64_t checkpoint_every = 256;
  /// Filesystem seam for durability AND SaveState/RestoreState (tests and
  /// fault injection pass MemFs/FaultFs). Null = the real filesystem. Not
  /// owned; must outlive the service.
  storage::Fs* wal_fs = nullptr;
  /// Monotonic clock in ms for the interval fsync policy (tests inject a
  /// fake). Null = std::chrono::steady_clock.
  std::function<uint64_t()> clock_ms;

  /// Rejects out-of-range configuration — snapshot_rebuild_fraction
  /// outside [0,1] (or NaN), num_shards beyond the kMaxShards routing
  /// cap, absurd thread counts, out-of-range listener/admission knobs —
  /// instead of letting it silently misbehave.
  /// RepairService's constructor enforces this (std::invalid_argument);
  /// the CLI validates before constructing so bad flags exit cleanly.
  Status Validate() const;
};

/// Outcome of one committed batch.
struct BatchResult {
  size_t batch = 0;         ///< 1-based commit sequence number
  size_t edits = 0;         ///< journal entries in the batch delta
  size_t anchor_nodes = 0;  ///< node anchors the delta induced
  size_t anchor_edges = 0;  ///< edge anchors the delta induced
  /// Violations pending after seeding: the delta's, plus any backlog a
  /// budget-cut earlier batch left in the persistent store.
  size_t violations = 0;
  size_t fixes = 0;  ///< cascade fixes applied
  size_t expansions = 0;    ///< matcher expansions (detection + cascades)
  /// True when seed detection fanned out over the pool and therefore read
  /// from a GraphSnapshot instead of the live graph (see DESIGN.md
  /// "Storage model").
  bool snapshot_reads = false;
  /// Among snapshot-read batches: true when the cached snapshot was
  /// advanced by an O(delta) patch, false when it was (re)built O(V+E).
  bool snapshot_patched = false;
  /// Snapshot acquisition time (patch or rebuild), included in detect_ms.
  double snapshot_ms = 0.0;
  bool budget_exhausted = false;
  double detect_ms = 0.0;  ///< seed detection time
  double total_ms = 0.0;   ///< whole commit (detection + cascades)
};

/// What OpenDurability found and did on startup (the recovery summary the
/// CLI prints; the same numbers feed the recovery_* instruments).
struct RecoveryInfo {
  bool durable = false;  ///< a wal_dir is configured and open
  bool recovered_from_checkpoint = false;
  uint64_t checkpoint_seq = 0;      ///< base the replay started from
  uint64_t replayed_batches = 0;    ///< complete WAL batches re-committed
  uint64_t truncated_bytes = 0;     ///< torn/corrupt WAL tail cut off
  uint64_t dropped_batches = 0;     ///< complete batches lost to a seq gap
  uint64_t corrupt_checkpoints = 0; ///< quarantined as *.corrupt
};

/// Cumulative service counters; latencies are per committed batch.
///
/// Since the observability layer landed this is a VIEW: the service's
/// source of truth is its obs::MetricsRegistry (the same instruments the
/// `metrics` serve verb exports as Prometheus text), and stats()
/// materializes this struct from those instruments on query. Field
/// semantics are unchanged from the pre-registry struct — every assertion
/// that held on the old bookkeeping holds on the view.
struct ServiceStats {
  /// Latency samples kept: a bounded ring of the most recent commits, so a
  /// long-lived service never grows without bound.
  static constexpr size_t kLatencyWindow = 4096;

  size_t batches = 0;
  size_t edits = 0;
  size_t op_errors = 0;  ///< rejected edit ops (dead ids, bad endpoints)
  size_t violations_detected = 0;  ///< newly seeded (backlog not recounted)
  size_t violations_repaired = 0;
  size_t anchors_visited = 0;  ///< node + edge anchors over all batches
  size_t expansions = 0;
  size_t snapshot_batches = 0;  ///< commits whose seed pass read a snapshot
  /// Snapshot-read batches split by acquisition path (patches + rebuilds
  /// == snapshot_batches), with cumulative acquisition wall-clock per path
  /// — the O(delta)-vs-O(V+E) ledger of the serving commit path.
  size_t snapshot_patches = 0;
  size_t snapshot_rebuilds = 0;
  double snapshot_patch_ms = 0.0;
  double snapshot_rebuild_ms = 0.0;
  /// Per-shard ledger of the sharded store (zeros when serving with one
  /// monolithic snapshot): cumulative SHARDS patched / rebuilt across all
  /// acquisitions. A commit that patches 3 shards and rebuilds the one hot
  /// shard adds 3 and 1 — the dirty-shard-only economics the monolithic
  /// counters cannot express (they count the whole acquisition as one
  /// rebuild whenever any shard rebuilt).
  size_t shard_patches = 0;
  size_t shard_rebuilds = 0;
  /// Heap footprint of the publisher's snapshot slots (0 when none).
  /// Computed when stats() is queried — the walk over the snapshot's
  /// attribute maps is O(V+E) and must not ride the per-commit hot path.
  size_t snapshot_memory_bytes = 0;
  /// Epoch-publication ledger (all zero with publish_snapshots=false).
  size_t published_generation = 0;  ///< last published generation number
  size_t publishes = 0;             ///< generations published
  size_t published_reads = 0;       ///< detect/violations served lock-free
  size_t stale_reads = 0;  ///< reads rejected (nothing published / disabled)
  double publish_ms = 0.0; ///< cumulative publication wall-clock
  /// Durability ledger (all zero on a service without a wal_dir).
  bool read_only = false;        ///< degraded after a storage failure
  size_t wal_appends = 0;        ///< batches appended to the WAL
  size_t wal_bytes = 0;          ///< bytes appended (frames included)
  size_t wal_syncs = 0;          ///< fsyncs issued by the writer
  size_t wal_append_errors = 0;  ///< failed appends (each one degrades)
  size_t checkpoints = 0;        ///< checkpoints written (baselines too)
  size_t last_checkpoint_seq = 0;
  size_t recovery_replayed_batches = 0;  ///< WAL batches replayed at open
  /// Commit latencies of the most recent kLatencyWindow batches (unordered
  /// once the ring wraps).
  std::vector<double> batch_ms;

  /// Latency percentile over the retained window (p in [0,100];
  /// nearest-rank). Returns 0 before the first commit.
  double LatencyPercentileMs(double p) const;
};

/// Result of applying one edit op: the id it created, when it created one.
struct EditApplied {
  NodeId node = kInvalidNode;  ///< kAddNode
  EdgeId edge = kInvalidEdge;  ///< kAddEdge
};

/// One lock-free detection pass over the published generation (`detect`
/// verb). Counts are bit-identical to offline `grepair detect` against the
/// same committed batch (the plan determinism contract).
struct PublishedDetect {
  uint64_t generation = 0;  ///< publication the pass ran against
  uint64_t batch = 0;       ///< committed batch that publication mirrors
  size_t violations = 0;    ///< total matches across the selected rules
  /// Per-rule match counts, name-sorted (the offline report order).
  std::vector<std::pair<std::string, size_t>> per_rule;
  size_t expansions = 0;  ///< matcher expansions spent
};

/// One page of the published violation backlog (`violations` verb): the
/// budget-cut leftovers pending repair at the published batch boundary, in
/// the deterministic SaveState order.
struct PublishedViolations {
  uint64_t generation = 0;
  uint64_t batch = 0;
  size_t total = 0;   ///< backlog size at the boundary
  size_t offset = 0;  ///< first row's index into the sorted backlog
  struct Row {
    std::string rule;  ///< rule name
    double cost = 0.0; ///< best-alternative repair cost
    size_t nodes = 0;  ///< nodes bound by the best alternative
    size_t edges = 0;  ///< edges bound by the best alternative
  };
  std::vector<Row> rows;
};

/// A long-lived repair service over one graph + rule set.
class RepairService {
 public:
  /// Takes ownership of the graph. The rule set must share its vocabulary.
  /// Throws std::invalid_argument when `options` fail
  /// ServeOptions::Validate() (callers that must not throw validate
  /// first).
  RepairService(Graph graph, RuleSet rules, ServeOptions options = {});

  /// Applies one edit op, journaled but NOT yet repaired (repair happens at
  /// the next Commit). Ops are interpreted EditEntry records — the fields a
  /// journal replay needs: kAddNode reads `label`; kAddEdge reads
  /// `src`/`dst`/`label`; kRemove* read the element id; kSet*Label and
  /// kSet*Attr read the element id, `attr` and `new_sym`. Invalid ops (dead
  /// or unknown ids, self-referential adds) are rejected without touching
  /// the graph.
  Result<EditApplied> ApplyEdit(const EditEntry& op);

  /// Runs batched delta-detection over everything journaled since the last
  /// commit, then repairs cascades greedily. Equivalent to
  /// RepairEngine::RunDelta over the same slice for any thread count.
  ///
  /// Under durability the batch's journal slice (plus any symbols interned
  /// since the last append) is appended to the WAL and fsynced per policy
  /// BEFORE detection runs — an acked batch line implies the edits are on
  /// disk under kEveryCommit. A failed append rejects the batch: the
  /// staged edits are rolled back, the service degrades to read-only, and
  /// kIo comes back (protocol code `err io`). Cascade fixes are NOT
  /// logged; replay recomputes them bit-identically.
  Result<BatchResult> Commit();

  /// Brings up durability for ServeOptions::wal_dir (no-op without one):
  /// restores the newest valid checkpoint (falling back one on
  /// corruption), replays the WAL tail through the normal commit path
  /// (verifying each replayed batch lands on its logged seq), truncates
  /// torn tails, opens the writer, and re-anchors with a baseline
  /// checkpoint. Call once, after construction, before serving traffic.
  /// kDataLoss = the directory's contents cannot reproduce a committed
  /// prefix (never silently partial); kIo = plain I/O failure.
  Result<RecoveryInfo> OpenDurability();

  /// Writes a checkpoint at the current commit seq, swaps the service into
  /// the compacted id space the checkpoint parses back to (so live state
  /// and recovered state are identical by construction — DESIGN.md
  /// "Durability"), rotates the WAL, and trims per retention. `baseline`
  /// re-anchors history (keeps only this checkpoint; used after recovery
  /// and restore, whose swap points a replay could not reproduce).
  Status CheckpointNow(bool baseline);

  /// ApplyEdit for each op (stopping at the first invalid one), then
  /// Commit. The error status reports the offending op index; edits before
  /// it stay journaled and are repaired by the next commit.
  Result<BatchResult> ApplyBatch(const std::vector<EditEntry>& ops);

  /// Persists the service's graph + violation-store backlog to `path`
  /// (protocol verb `snapshot <file>`), via temp file + fsync + atomic
  /// rename — a crash mid-save never leaves a torn file where a previous
  /// good one stood. Pending edits are committed first —
  /// their delta could not survive a save/load round trip, and quitting
  /// already commits, so a saved state is always a committed state. Stale
  /// backlog alternatives referencing dead elements are dropped (re-verify
  /// would discard them on pop anyway); element ids are rewritten to the
  /// dense id space a reload produces.
  Status SaveState(const std::string& path);

  /// Replaces the owned graph and violation backlog with the state saved at
  /// `path` (protocol verb `restore <file>`). Rules, options and the worker
  /// pool are kept; cumulative ServiceStats keep counting across the
  /// restore. Refused (kFailedPrecondition, protocol code `staged_edits`)
  /// while edits are staged-but-uncommitted: silently discarding them — or
  /// committing them onto the restored state — would both be surprising,
  /// so the caller commits first and restores a quiescent service. Under
  /// durability a successful restore is sealed with a baseline checkpoint
  /// (the restore's state swap is a point a WAL replay could not
  /// reproduce, so history re-anchors here).
  Status RestoreState(const std::string& path);

  /// ---- Published read path (thread-safe, never takes the commit lock) --
  ///
  /// The three calls below are safe from ANY thread while the writer
  /// commits: they pin the last published generation (publisher mutex —
  /// pointer work only), then run entirely against that frozen state.
  /// kFailedPrecondition = nothing published (publishing disabled or the
  /// service was constructed with it off); kResourceExhausted = the
  /// max_read_threads gate shed the request; kNotFound = unknown rule
  /// filter.

  /// Full (or rule-filtered, `rule_filter` non-empty) detection over the
  /// published generation with generation-cached compiled plans.
  Result<PublishedDetect> DetectPublished(const std::string& rule_filter) const;

  /// One page of the published violation backlog.
  Result<PublishedViolations> ReadViolations(size_t offset,
                                             size_t limit) const;

  /// Pins the published generation directly (tests and embedders; the
  /// lease keeps that generation alive across any number of commits).
  serve::ReadLease PinPublished() const { return publisher_.Pin(); }

  /// Last published generation number (0 before the first publication).
  uint64_t PublishedGeneration() const {
    return publisher_.CurrentGeneration();
  }

  /// Edit ops journaled since the last commit.
  size_t PendingEdits() const { return graph_.JournalSize() - clean_mark_; }
  /// Violations waiting in the persistent store (a budget-cut backlog).
  size_t ViolationBacklog() const { return store_.Size(); }

  const Graph& graph() const { return graph_; }
  const RuleSet& rules() const { return rules_; }
  const ServiceStats& stats() const;
  /// The service-scoped instruments backing stats() — exported by the
  /// `metrics` serve verb (alongside MetricsRegistry::Global() for the
  /// process-wide pool/matcher instruments).
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  /// Writable registry handle for components instrumenting this service's
  /// exposition (serve::Server registers its connection/admission
  /// instruments here so the `metrics` verb exports them).
  obs::MetricsRegistry* mutable_metrics_registry() { return &registry_; }
  const ServeOptions& options() const { return options_; }
  /// Effective storage shards of the cached snapshot (1 = monolithic; also
  /// 1 for a sequential service, which never snapshots).
  size_t num_shards() const { return num_shards_; }
  /// True after a WAL/checkpoint write failed: every mutation is refused
  /// with kIo until the process restarts (and recovers). Reads still work.
  bool read_only() const { return read_only_; }
  /// True once OpenDurability opened a WAL writer.
  bool durable() const { return wal_ != nullptr; }

 private:
  SymbolId ConfAttr() const;
  /// The one rebuild-threshold policy for a MONOLITHIC slot store: true
  /// when advancing `snap` by `pending` more records stays within
  /// `snapshot_rebuild_fraction` of |E| (accumulated patches included).
  /// Sharded slots apply the same fraction per shard inside
  /// ShardedSnapshot::Advance.
  bool PatchWithinBudget(const GraphSnapshot& snap, uint64_t pending) const;
  /// How one publisher-slot advancement went (AdvanceSlot): the caller
  /// attributes the numbers to the seed-pass instruments or the
  /// publication instruments depending on which path asked.
  struct SlotAdvance {
    bool patched = false;      ///< O(delta) patch (vs (re)build)
    size_t shards_patched = 0; ///< per-shard ledger (sharded slots only)
    size_t shards_rebuilt = 0;
    double ms = 0.0;
  };
  /// Brings a publisher slot to the CURRENT graph state: patches its store
  /// forward by the delta-log slice since its watermark, or (re)builds
  /// when it has none / the slice was trimmed away / the patch fraction
  /// crosses `snapshot_rebuild_fraction` / incremental maintenance is
  /// disabled. Under sharding the patch-or-rebuild decision is PER SHARD
  /// (dirty shards rebuild alone, in parallel over the pool). Bumps
  /// plan_generation_ so the seed-pass PlanCache revalidates.
  SlotAdvance AdvanceSlot(serve::Generation* slot);
  /// Hands out the read snapshot view for a fanning-out seed pass: the
  /// publisher's writable slot advanced to the current graph (the SAME
  /// slot Commit later advances past the cascades and publishes — the seed
  /// pass is the expensive half of preparing the next generation). Updates
  /// the patch/rebuild counters and trims the consumed delta log.
  const GraphView& AcquireSnapshot(BatchResult* res);
  /// Publishes the writable slot as the next generation at committed batch
  /// `batch`: advances it past any remaining delta (cascade fixes), copies
  /// the backlog in SaveState order, flips the published pointer, trims
  /// the consumed delta log. No-op with publishing disabled.
  void PublishGeneration(uint64_t batch);
  /// Trims the delta log to the oldest position any slot still needs for
  /// an in-budget patch; a slot whose pending records already exceed the
  /// rebuild threshold forfeits its claim (it will rebuild anyway), so a
  /// fan-out drought never accumulates an unbounded log.
  void TrimConsumedDeltaLog();
  /// Shard-task runner over the service pool (null runner when there is no
  /// pool to fan out over).
  ParallelRunner ShardRunner() const;
  /// Filesystem for ALL state files (WAL, checkpoints, SaveState/Restore):
  /// the injected seam or the real one.
  storage::Fs* StateFs() const;
  uint64_t NowMs() const;
  /// The full serialized service state: vocabulary dump (L/K/W lines, id
  /// order — what makes raw SymbolIds in WAL records valid against a
  /// reloaded checkpoint) + graph + violation backlog.
  std::string SerializeServiceState() const;
  /// Parses `text` (SerializeServiceState / SaveState format) and swaps it
  /// in — graph, backlog, vocab tail — after full validation. `origin`
  /// names the source in error messages.
  Status LoadServiceState(const std::string& text, const std::string& origin);
  /// Serialize + load own payload: the deterministic id-compacting state
  /// swap both a live checkpoint and its recovery perform. Replay calls
  /// this (no file writes) at the same seqs the original checkpointed at.
  Status SwapState();
  /// Flips read-only on (mutations refuse with kIo from here on).
  void EnterReadOnly(const std::string& why);
  /// Appends the pending journal slice + newly interned symbols as batch
  /// `seq`; updates the vocab watermarks on success.
  Status AppendBatchToWal(uint64_t seq);
  /// Rolls the writer's cumulative counters into the registry counters.
  void SyncWalInstruments();

  ServeOptions options_;
  Graph graph_;
  RuleSet rules_;
  ViolationStore store_;  ///< persistent across batches
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_threads == 1
  size_t num_shards_ = 1;  ///< resolved ServeOptions::num_shards
  size_t clean_mark_ = 0;  ///< journal position of the last commit
  /// The double-buffered snapshot slots (monolithic store when num_shards_
  /// == 1, sharded otherwise) and the atomic publication point readers pin
  /// generations from. The writable slot doubles as the seed-pass read
  /// cache: AcquireSnapshot advances it, Commit publishes it. Maintained
  /// whenever the pool can fan out OR publishing is on (a sequential
  /// non-publishing service never snapshots).
  serve::SnapshotPublisher publisher_;
  /// Compiled match plans for the fanning-out seed pass, keyed by rule
  /// index and revalidated against the acquired slot's generation: each
  /// AdvanceSlot bumps plan_generation_, and PlanCache::Get then keeps
  /// a plan whose variable orders still hold under the new label
  /// cardinalities, recompiling only past the drift threshold. The cascade
  /// loop matches the LIVE mutating graph and stays on the interpreter.
  PlanCache plan_cache_;
  uint64_t plan_generation_ = 0;
  /// Thread-safe plan cache of the published read path, keyed by PUBLISHED
  /// generation (frozen views — no revalidation); mutable because reads
  /// are const and concurrent.
  mutable SharedPlanCache read_plans_;
  /// In-flight published reads, against options_.max_read_threads.
  mutable std::atomic<int64_t> active_reads_{0};

  /// Durability state (all inert without a wal_dir).
  std::unique_ptr<storage::WalWriter> wal_;
  bool read_only_ = false;
  /// True while OpenDurability re-commits WAL batches: Commit then skips
  /// the WAL append (the records are already on disk) but runs everything
  /// else — including the cadence state swaps — exactly like the original.
  bool replaying_ = false;
  /// Vocabulary sizes already covered by the WAL/checkpoint: symbols
  /// interned past these marks ride the next batch as 'S' frames, so
  /// replay interns them at identical ids before applying the records.
  size_t logged_labels_ = 0;
  size_t logged_attrs_ = 0;
  size_t logged_values_ = 0;
  /// Writer counter snapshots, so the registry counters below advance by
  /// deltas (the writer survives rotations but not reopen).
  uint64_t seen_wal_appends_ = 0;
  uint64_t seen_wal_bytes_ = 0;
  uint64_t seen_wal_syncs_ = 0;

  /// The service's metrics: instrument handles into registry_ (resolved
  /// once in the constructor), incremented where the old struct fields
  /// were. The registry is per-service so concurrent/sequential services
  /// in one process never bleed counts into each other's stats.
  obs::MetricsRegistry registry_;
  obs::Counter* m_batches_;
  obs::Counter* m_edits_;
  obs::Counter* m_op_errors_;
  obs::Counter* m_violations_detected_;
  obs::Counter* m_fixes_;
  obs::Counter* m_anchors_;
  obs::Counter* m_expansions_;
  obs::Counter* m_snapshot_batches_;
  obs::Counter* m_shard_patches_;
  obs::Counter* m_shard_rebuilds_;
  obs::Counter* m_wal_appends_;
  obs::Counter* m_wal_bytes_;
  obs::Counter* m_wal_syncs_;
  obs::Counter* m_wal_append_errors_;
  obs::Counter* m_checkpoints_;
  obs::Counter* m_checkpoint_errors_;
  obs::Counter* m_recovery_replayed_;
  obs::Counter* m_recovery_truncated_bytes_;
  obs::Counter* m_recovery_dropped_;
  obs::Counter* m_recovery_corrupt_ckpts_;
  obs::Counter* m_published_reads_;  ///< detect/violations served
  obs::Counter* m_stale_reads_;      ///< reads shed/refused pre-pin
  obs::Gauge* m_read_only_;
  obs::Gauge* m_last_checkpoint_seq_;
  obs::Gauge* m_backlog_;
  obs::Gauge* m_snapshot_mem_;
  obs::Gauge* m_published_generation_;
  obs::Histogram* m_commit_ms_;
  obs::Histogram* m_detect_ms_;
  obs::Histogram* m_acquire_patch_ms_;    ///< count == snapshot_patches
  obs::Histogram* m_acquire_rebuild_ms_;  ///< count == snapshot_rebuilds
  obs::Histogram* m_publish_ms_;  ///< count == publishes
  obs::Histogram* m_read_ms_;     ///< per published read
  /// Raw commit-latency samples of the most recent kLatencyWindow batches
  /// (histograms cannot answer nearest-rank percentiles exactly).
  std::vector<double> latency_ring_;
  /// mutable: stats() materializes the view (and prices
  /// snapshot_memory_bytes, an O(V+E) walk kept off the commit path) on
  /// query; the service is single-caller, so const reads never race.
  mutable ServiceStats stats_view_;
};

}  // namespace grepair

#endif  // GREPAIR_SERVE_REPAIR_SERVICE_H_
