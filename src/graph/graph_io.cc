#include "graph/graph_io.h"

#include <cstdio>
#include <map>

#include "util/strings.h"

namespace grepair {
namespace {

std::string AttrsToString(const Graph& g, const AttrMap& attrs) {
  std::vector<std::string> parts;
  for (const auto& [a, v] : attrs.entries())
    parts.push_back(g.vocab()->AttrName(a) + "=" + g.vocab()->ValueName(v));
  return Join(parts, ";");
}

Status ParseAttrs(const std::string& field, Vocabulary* vocab,
                  std::vector<std::pair<SymbolId, SymbolId>>* out) {
  if (field.empty()) return Status::Ok();
  for (const auto& part : Split(field, ';')) {
    if (part.empty()) continue;
    auto kv = Split(part, '=');
    if (kv.size() != 2)
      return Status::ParseError("bad attr syntax: " + part);
    out->emplace_back(vocab->Attr(kv[0]), vocab->Value(kv[1]));
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeGraph(const Graph& g) {
  std::string out;
  out += "# GRepair graph: |V|=" + std::to_string(g.NumNodes()) +
         " |E|=" + std::to_string(g.NumEdges()) + "\n";
  for (NodeId n : g.Nodes()) {
    out += StrFormat("N\t%u\t%s", n, g.vocab()->LabelName(g.NodeLabel(n)).c_str());
    std::string attrs = AttrsToString(g, g.NodeAttrs(n));
    if (!attrs.empty()) out += "\t" + attrs;
    out += "\n";
  }
  for (EdgeId e : g.Edges()) {
    EdgeView v = g.Edge(e);
    out += StrFormat("E\t%u\t%u\t%u\t%s", e, v.src, v.dst,
                     g.vocab()->LabelName(v.label).c_str());
    std::string attrs = AttrsToString(g, g.EdgeAttrs(e));
    if (!attrs.empty()) out += "\t" + attrs;
    out += "\n";
  }
  return out;
}

Result<Graph> ParseGraph(const std::string& text, VocabularyPtr vocab) {
  // Two passes: collect records, then materialize in id order. Because the
  // Graph assigns dense ids itself, we remap file ids -> graph ids.
  struct NodeLine {
    uint64_t id;
    std::string label;
    std::vector<std::pair<SymbolId, SymbolId>> attrs;
  };
  struct EdgeLine {
    uint64_t src, dst;
    std::string label;
    std::vector<std::pair<SymbolId, SymbolId>> attrs;
  };
  std::vector<NodeLine> node_lines;
  std::vector<EdgeLine> edge_lines;

  size_t line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto fields = Split(line, '\t');
    auto err = [&](const std::string& what) {
      return Status::ParseError(
          StrFormat("line %zu: %s", line_no, what.c_str()));
    };
    if (fields[0] == "N") {
      if (fields.size() < 3 || fields.size() > 4) return err("bad N record");
      NodeLine nl;
      if (!ParseUint64(fields[1], &nl.id)) return err("bad node id");
      nl.label = fields[2];
      if (fields.size() == 4)
        GREPAIR_RETURN_IF_ERROR(ParseAttrs(fields[3], vocab.get(), &nl.attrs));
      node_lines.push_back(std::move(nl));
    } else if (fields[0] == "E") {
      if (fields.size() < 5 || fields.size() > 6) return err("bad E record");
      EdgeLine el;
      uint64_t ignored_id;
      if (!ParseUint64(fields[1], &ignored_id)) return err("bad edge id");
      if (!ParseUint64(fields[2], &el.src)) return err("bad edge src");
      if (!ParseUint64(fields[3], &el.dst)) return err("bad edge dst");
      el.label = fields[4];
      if (fields.size() == 6)
        GREPAIR_RETURN_IF_ERROR(ParseAttrs(fields[5], vocab.get(), &el.attrs));
      edge_lines.push_back(std::move(el));
    } else {
      return err("unknown record type '" + fields[0] + "'");
    }
  }

  Graph g(vocab);
  std::map<uint64_t, NodeId> remap;
  for (const auto& nl : node_lines) {
    if (remap.count(nl.id))
      return Status::ParseError(
          StrFormat("duplicate node id %llu", (unsigned long long)nl.id));
    NodeId n = g.AddNode(vocab->Label(nl.label));
    for (const auto& [a, v] : nl.attrs)
      GREPAIR_RETURN_IF_ERROR(g.SetNodeAttr(n, a, v));
    remap[nl.id] = n;
  }
  for (const auto& el : edge_lines) {
    auto si = remap.find(el.src);
    auto di = remap.find(el.dst);
    if (si == remap.end() || di == remap.end())
      return Status::ParseError("edge references unknown node");
    auto r = g.AddEdge(si->second, di->second, vocab->Label(el.label));
    if (!r.ok()) return r.status();
    for (const auto& [a, v] : el.attrs)
      GREPAIR_RETURN_IF_ERROR(g.SetEdgeAttr(r.value(), a, v));
  }
  g.ResetJournal();
  return g;
}

Status SaveGraph(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  std::string data = SerializeGraph(g);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size())
    return Status::Internal("short write to " + path);
  return Status::Ok();
}

std::string ToDot(const Graph& g) {
  std::string out = "digraph G {\n  rankdir=LR;\n  node [shape=box];\n";
  // Use the "name" attribute as display text when present.
  SymbolId name_attr = g.vocab()->Attr("name");
  for (NodeId n : g.Nodes()) {
    std::string label = g.vocab()->LabelName(g.NodeLabel(n));
    std::string display = StrFormat("n%u:%s", n, label.c_str());
    SymbolId v = g.NodeAttr(n, name_attr);
    if (v != 0) display += "\\n" + g.vocab()->ValueName(v);
    out += StrFormat("  n%u [label=\"%s\"];\n", n, display.c_str());
  }
  for (EdgeId e : g.Edges()) {
    EdgeView v = g.Edge(e);
    out += StrFormat("  n%u -> n%u [label=\"%s\"];\n", v.src, v.dst,
                     g.vocab()->LabelName(v.label).c_str());
  }
  out += "}\n";
  return out;
}

Result<Graph> LoadGraph(const std::string& path, VocabularyPtr vocab) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return Status::NotFound("cannot open for read: " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseGraph(data, std::move(vocab));
}

}  // namespace grepair
