// Repair strategies: how the engine orders and batches candidate fixes.
#ifndef GREPAIR_REPAIR_STRATEGY_H_
#define GREPAIR_REPAIR_STRATEGY_H_

#include <cstdint>
#include <string_view>

namespace grepair {

/// kNaive  — round-based, arbitrary fix order, no cost model, full
///           re-detection between rounds (the strawman every efficient
///           method is measured against).
/// kGreedy — one fix at a time, always the globally cheapest (weighted-GED)
///           candidate, incremental re-detection.
/// kBatch  — per round: take all current violations, order their best fixes
///           by cost, apply a maximal non-interacting subset at once, then
///           incrementally re-detect ("efficient repairing" of the paper).
/// kExact  — branch-and-bound over fix sequences for the minimum-cost
///           repaired graph; exponential, only for small instances.
enum class RepairStrategy : uint8_t { kNaive, kGreedy, kBatch, kExact };

std::string_view RepairStrategyName(RepairStrategy s);

}  // namespace grepair

#endif  // GREPAIR_REPAIR_STRATEGY_H_
