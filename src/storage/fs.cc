#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace grepair {
namespace storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

// POSIX fd-backed append file. Retries short writes (EINTR, partial
// writes) because a torn userspace write is not the torn-tail model we
// recover from — that model is the DEVICE losing the un-synced suffix.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

RealFs* RealFs::Default() {
  static RealFs fs;
  return &fs;
}

Result<std::unique_ptr<WritableFile>> RealFs::OpenWritable(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  return std::unique_ptr<WritableFile>(
      std::make_unique<PosixWritableFile>(fd, path));
}

Result<std::string> RealFs::ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Result<uint64_t> RealFs::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool RealFs::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RealFs::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::Ok();
}

Status RealFs::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::Ok();
}

Status RealFs::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    return Errno("truncate", path);
  return Status::Ok();
}

Status RealFs::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Errno("mkdir", dir);
  return Status::Ok();
}

Result<std::vector<std::string>> RealFs::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RealFs::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::Ok();
}

// ------------------------------------------------------------------ MemFs

// Not in the anonymous namespace: MemFs befriends ::grepair::storage::
// MemWritableFile, and the friend grant only reaches this definition here.
class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(MemFs::FileRec* rec) : rec_(rec) {}

  Status Append(const void* data, size_t n) override {
    rec_->data.append(static_cast<const char*>(data), n);
    return Status::Ok();
  }
  Status Sync() override {
    rec_->synced_size = rec_->data.size();
    return Status::Ok();
  }
  Status Close() override { return Status::Ok(); }

 private:
  MemFs::FileRec* rec_;
};

Result<std::unique_ptr<WritableFile>> MemFs::OpenWritable(
    const std::string& path, bool truncate) {
  FileRec& rec = files_[path];
  if (truncate) {
    rec.data.clear();
    rec.synced_size = 0;
  }
  return std::unique_ptr<WritableFile>(std::make_unique<MemWritableFile>(&rec));
}

Result<std::string> MemFs::ReadFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data;
}

Result<uint64_t> MemFs::FileSize(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data.size());
}

bool MemFs::FileExists(const std::string& path) {
  return files_.count(path) > 0;
}

Status MemFs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IoError("rename: no such file " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemFs::RemoveFile(const std::string& path) {
  if (files_.erase(path) == 0)
    return Status::IoError("unlink: no such file " + path);
  return Status::Ok();
}

Status MemFs::Truncate(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end())
    return Status::IoError("truncate: no such file " + path);
  FileRec& rec = it->second;
  if (size < rec.data.size()) rec.data.resize(size);
  rec.synced_size = std::min<uint64_t>(rec.synced_size, size);
  return Status::Ok();
}

Status MemFs::CreateDir(const std::string& dir) {
  dirs_[dir] = true;
  return Status::Ok();
}

Result<std::vector<std::string>> MemFs::ListDir(const std::string& dir) {
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, rec] : files_) {
    (void)rec;
    if (path.rfind(prefix, 0) != 0) continue;
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // std::map iteration is already sorted
}

Status MemFs::SyncDir(const std::string&) { return Status::Ok(); }

void MemFs::DropUnsynced() {
  for (auto& [path, rec] : files_) {
    (void)path;
    rec.data.resize(rec.synced_size);
  }
}

// ---------------------------------------------------------------- helpers

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

Status WriteFileAtomic(Fs* fs, const std::string& path,
                       const std::string& data) {
  const std::string tmp = path + ".tmp";
  GREPAIR_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           fs->OpenWritable(tmp, /*truncate=*/true));
  Status st = f->Append(data.data(), data.size());
  if (st.ok()) st = f->Sync();
  Status closed = f->Close();
  if (st.ok()) st = closed;
  if (!st.ok()) {
    fs->RemoveFile(tmp);  // best effort; the target was never touched
    return st;
  }
  GREPAIR_RETURN_IF_ERROR(fs->Rename(tmp, path));
  std::string dir = DirName(path);
  if (!dir.empty()) GREPAIR_RETURN_IF_ERROR(fs->SyncDir(dir));
  return Status::Ok();
}

}  // namespace storage
}  // namespace grepair
