// GRR mining: discover candidate graph-repairing rules from data instead of
// writing them by hand. The miner scans one graph and proposes rules whose
// statistical support clears a threshold:
//
//   symmetry          l(x,y) => l(y,x)            -> incomplete ADD_EDGE
//   forward implication  l1(x,y) => l2(x,y)       -> incomplete ADD_EDGE
//   reverse implication  l1(x,y) => l2(y,x)       -> incomplete ADD_EDGE
//   functional        at most one l out of x      -> conflict DEL_EDGE
//   inverse functional at most one l into y       -> conflict DEL_EDGE
//   uniqueness key    (label, attr) nearly unique -> redundant MERGE
//
// Rules are emitted pre-validated (self-disabling NACs included) and can be
// fed straight to the repair engine. Mining from a lightly corrupted graph
// still works: the thresholds tolerate the error rate.
#ifndef GREPAIR_MINING_RULE_MINER_H_
#define GREPAIR_MINING_RULE_MINER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "grr/rule.h"

namespace grepair {

struct MiningOptions {
  /// Minimum fraction of witnesses satisfying the candidate's implication.
  double min_support = 0.9;
  /// Minimum number of witnesses (guards against tiny-sample artifacts).
  size_t min_evidence = 10;
  /// Node-label homogeneity needed to type a pattern variable; below this
  /// the variable is left unlabeled (wildcard).
  double min_label_purity = 0.95;
  /// For key mining: minimum distinct-value ratio to call an attr a key.
  double min_key_uniqueness = 0.99;
  /// Worker threads for the support-statistics passes (0 = hardware
  /// concurrency). The scan shards edges/nodes across a thread pool and
  /// merges the per-shard counts; since every aggregate is additive the
  /// mined output is identical for any thread count. Rule construction and
  /// validation stay on the calling thread (they intern symbols, which the
  /// single-writer threading model reserves for the owner; see DESIGN.md).
  size_t num_threads = 1;
};

/// One discovered rule with its supporting statistics.
struct MinedRule {
  Rule rule;
  double support;      ///< fraction of witnesses satisfying the implication
  size_t evidence;     ///< number of witnesses inspected
  std::string kind;    ///< "symmetry" | "implication" | "functional" | ...
};

/// Mines candidate rules from `g`. Every returned rule passes ValidateRule.
/// Deterministic: output order is fixed by label id.
std::vector<MinedRule> MineRules(const GraphView& g,
                                 const MiningOptions& opt);

}  // namespace grepair

#endif  // GREPAIR_MINING_RULE_MINER_H_
