#include "storage/wal.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/strings.h"

namespace grepair {
namespace storage {

namespace {

constexpr char kMagic[8] = {'G', 'R', 'W', 'A', 'L', 'v', '0', '1'};
constexpr char kFrameHeader = 'H';
constexpr char kFrameSymbol = 'S';
constexpr char kFrameRecord = 'R';
constexpr char kFrameCommit = 'C';
// length + crc prefix ahead of every frame body.
constexpr size_t kFramePrefix = 8;
// A record frame is at least kind + 9 u32 fields; caps below keep a
// corrupt length word from turning into a huge allocation.
constexpr uint32_t kMaxFrameLen = 1u << 30;

void PutU32(uint32_t v, std::string* out) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t ReadU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | static_cast<uint32_t>(u[1]) << 8 |
         static_cast<uint32_t>(u[2]) << 16 | static_cast<uint32_t>(u[3]) << 24;
}

uint64_t ReadU64(const char* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

/// Appends `[len][masked crc][body]` where body = type + payload.
void AppendFrame(char type, const std::string& payload, std::string* out) {
  uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  PutU32(len, out);
  uint32_t crc = Crc32cExtend(Crc32c(&type, 1), payload.data(),
                              payload.size());
  PutU32(Crc32cMask(crc), out);
  out->push_back(type);
  out->append(payload);
}

}  // namespace

std::string WalSegmentName(uint64_t start_seq) {
  return StrFormat("wal-%020llu.log",
                   static_cast<unsigned long long>(start_seq));
}

bool ParseWalSegmentName(const std::string& name, uint64_t* start_seq) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0)
    return false;
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *start_seq = v;
  return true;
}

Result<WalSegmentScan> ReadWalSegment(Fs* fs, const std::string& path) {
  GREPAIR_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  WalSegmentScan scan;
  scan.file_size = data.size();

  // Walk frames; valid_size trails at the last durable cut point (after
  // the header, then after each commit marker). Everything else is tail.
  std::vector<WalSymDef> pending_syms;
  std::vector<EditEntry> pending;
  bool saw_header = false;
  uint64_t next_seq = 0;
  auto stop = [&](const std::string& why) {
    scan.note = why;
    return scan;
  };
  size_t cursor = 0;
  while (cursor + kFramePrefix <= data.size()) {
    uint32_t len = ReadU32(data.data() + cursor);
    uint32_t stored_crc = ReadU32(data.data() + cursor + 4);
    if (len == 0 || len > kMaxFrameLen ||
        cursor + kFramePrefix + len > data.size())
      return stop("torn frame at offset " + std::to_string(cursor));
    const char* body = data.data() + cursor + kFramePrefix;
    if (Crc32cMask(Crc32c(body, len)) != stored_crc)
      return stop("crc mismatch at offset " + std::to_string(cursor));
    const char type = body[0];
    const char* payload = body + 1;
    const size_t payload_len = len - 1;
    if (!saw_header) {
      if (type != kFrameHeader || payload_len != 16 ||
          std::memcmp(payload, kMagic, 8) != 0)
        return stop("bad segment header");
      scan.start_seq = ReadU64(payload + 8);
      next_seq = scan.start_seq;
      saw_header = true;
      scan.header_ok = true;
      cursor += kFramePrefix + len;
      scan.valid_size = cursor;
      continue;
    }
    if (type == kFrameRecord) {
      EditEntry e;
      size_t p = 0;
      std::string_view pv(payload, payload_len);
      if (!DecodeEditEntry(pv, &p, &e) || p != payload_len)
        return stop("undecodable record at offset " + std::to_string(cursor));
      pending.push_back(std::move(e));
    } else if (type == kFrameSymbol) {
      if (payload_len < 5 || static_cast<uint8_t>(payload[0]) > 2)
        return stop("bad symbol frame at offset " + std::to_string(cursor));
      WalSymDef s;
      s.dict = static_cast<uint8_t>(payload[0]);
      s.id = ReadU32(payload + 1);
      s.name.assign(payload + 5, payload_len - 5);
      pending_syms.push_back(std::move(s));
    } else if (type == kFrameCommit) {
      if (payload_len != 16)
        return stop("bad commit marker at offset " + std::to_string(cursor));
      uint64_t seq = ReadU64(payload);
      uint32_t sym_count = ReadU32(payload + 8);
      uint32_t rec_count = ReadU32(payload + 12);
      if (seq != next_seq)
        return stop(StrFormat("batch seq %llu where %llu expected",
                              (unsigned long long)seq,
                              (unsigned long long)next_seq));
      if (sym_count != pending_syms.size() || rec_count != pending.size())
        return stop(StrFormat(
            "commit marker counts %u+%u != %zu symbols + %zu records",
            sym_count, rec_count, pending_syms.size(), pending.size()));
      WalBatch b;
      b.seq = seq;
      b.symbols = std::move(pending_syms);
      b.records = std::move(pending);
      pending_syms.clear();
      pending.clear();
      scan.batches.push_back(std::move(b));
      ++next_seq;
      scan.valid_size = cursor + kFramePrefix + len;
    } else {
      return stop("unknown frame type at offset " + std::to_string(cursor));
    }
    cursor += kFramePrefix + len;
  }
  if (cursor < data.size() && scan.note.empty())
    scan.note = "trailing bytes at offset " + std::to_string(cursor);
  if ((!pending.empty() || !pending_syms.empty()) && scan.note.empty())
    scan.note = "records without commit marker";
  return scan;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Fs* fs,
                                                   const std::string& dir,
                                                   uint64_t start_seq,
                                                   FsyncPolicy policy,
                                                   uint64_t interval_ms) {
  std::unique_ptr<WalWriter> w(new WalWriter(fs, dir, policy, interval_ms));
  GREPAIR_RETURN_IF_ERROR(w->OpenSegment(start_seq));
  return w;
}

Status WalWriter::OpenSegment(uint64_t start_seq) {
  path_ = dir_ + "/" + WalSegmentName(start_seq);
  // Truncate: the only way this name already exists is a torn segment that
  // contributed zero complete batches (otherwise recovery would have
  // resumed past it) — its bytes are dead.
  GREPAIR_ASSIGN_OR_RETURN(file_, fs_->OpenWritable(path_, /*truncate=*/true));
  std::string header;
  header.append(kMagic, 8);
  PutU64(start_seq, &header);
  std::string frame;
  AppendFrame(kFrameHeader, header, &frame);
  GREPAIR_RETURN_IF_ERROR(file_->Append(frame.data(), frame.size()));
  GREPAIR_RETURN_IF_ERROR(file_->Sync());
  GREPAIR_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  bytes_ += frame.size();
  ++syncs_;
  sync_pending_ = false;
  return Status::Ok();
}

Status WalWriter::AppendBatch(const WalBatch& batch, uint64_t now_ms) {
  std::string buf;
  std::string payload;
  for (const WalSymDef& s : batch.symbols) {
    payload.clear();
    payload.push_back(static_cast<char>(s.dict));
    PutU32(s.id, &payload);
    payload.append(s.name);
    AppendFrame(kFrameSymbol, payload, &buf);
  }
  for (const EditEntry& rec : batch.records) {
    payload.clear();
    EncodeEditEntry(rec, &payload);
    AppendFrame(kFrameRecord, payload, &buf);
  }
  payload.clear();
  PutU64(batch.seq, &payload);
  PutU32(static_cast<uint32_t>(batch.symbols.size()), &payload);
  PutU32(static_cast<uint32_t>(batch.records.size()), &payload);
  AppendFrame(kFrameCommit, payload, &buf);

  GREPAIR_RETURN_IF_ERROR(file_->Append(buf.data(), buf.size()));
  ++appends_;
  bytes_ += buf.size();
  sync_pending_ = true;
  switch (policy_) {
    case FsyncPolicy::kEveryCommit:
      return SyncNow();
    case FsyncPolicy::kInterval:
      if (now_ms - last_sync_ms_ >= interval_ms_) {
        Status st = SyncNow();
        last_sync_ms_ = now_ms;
        return st;
      }
      return Status::Ok();
    case FsyncPolicy::kOff:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WalWriter::SyncNow() {
  if (!sync_pending_) return Status::Ok();
  GREPAIR_RETURN_IF_ERROR(file_->Sync());
  ++syncs_;
  sync_pending_ = false;
  return Status::Ok();
}

Status WalWriter::Rotate(uint64_t next_seq) {
  // The outgoing segment is synced no matter the policy: rotation points
  // anchor checkpoint fallback, and a lost tail there would silently
  // shorten the range an older checkpoint can replay.
  GREPAIR_RETURN_IF_ERROR(SyncNow());
  GREPAIR_RETURN_IF_ERROR(file_->Close());
  return OpenSegment(next_seq);
}

}  // namespace storage
}  // namespace grepair
