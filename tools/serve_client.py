#!/usr/bin/env python3
"""Minimal line-protocol client for `grepair serve --listen`.

Reads protocol lines from stdin (or --cmd arguments), sends them to the
server, and prints every response line the server returns. Lines starting
with `!sleep <seconds>` are client-side directives (used by CI to let the
admission token bucket refill between bursts) and are not sent.

Usage:
  grepair serve g.tsv r.grr --listen 7471 &
  printf 'add_node Org\ncommit\nquit\n' | tools/serve_client.py --port 7471

The client sends everything as fast as the socket accepts it, then closes
the write side and drains responses to EOF — so over-rate bursts genuinely
race the server's token bucket, which is exactly what the admission tests
want. Responses may include multi-line payloads (`metrics`); they are
printed verbatim.
"""

import argparse
import socket
import sys
import time


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument(
        "--cmd",
        action="append",
        default=[],
        help="protocol line to send (repeatable; stdin is read when absent)",
    )
    ap.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds",
    )
    args = ap.parse_args()

    lines = args.cmd if args.cmd else [l.rstrip("\n") for l in sys.stdin]

    with socket.create_connection((args.host, args.port), args.timeout) as s:
        s.settimeout(args.timeout)
        for line in lines:
            if line.startswith("!sleep "):
                time.sleep(float(line.split(None, 1)[1]))
                continue
            s.sendall(line.encode() + b"\n")
        s.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            try:
                chunk = s.recv(65536)
            except (socket.timeout, ConnectionResetError):
                break
            if not chunk:
                break
            buf += chunk
        sys.stdout.write(buf.decode(errors="replace"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
