// Repair engine tests across all strategies on hand-built scenarios.
#include <gtest/gtest.h>

#include "grr/rule_parser.h"
#include "repair/engine.h"

namespace grepair {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : vocab_(MakeVocabulary()), g_(vocab_) {}

  RuleSet Rules(const std::string& dsl) {
    auto r = ParseRules(dsl, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : RuleSet{};
  }

  RepairResult Run(RepairStrategy strategy, const RuleSet& rules,
                   bool incremental = true) {
    RepairOptions opt;
    opt.strategy = strategy;
    opt.incremental = incremental;
    RepairEngine engine(opt);
    auto r = engine.Run(&g_, rules);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : RepairResult{};
  }

  VocabularyPtr vocab_;
  Graph g_;
};

constexpr char kSymmetryRule[] = R"(
  RULE sym CLASS incomplete
  MATCH (x:P)-[knows]->(y:P)
  WHERE NOT EDGE (y)-[knows]->(x)
  ACTION ADD_EDGE (y)-[knows]->(x)
)";

TEST_F(EngineTest, GreedyRepairsAsymmetry) {
  SymbolId p = vocab_->Label("P"), knows = vocab_->Label("knows");
  NodeId a = g_.AddNode(p), b = g_.AddNode(p), c = g_.AddNode(p);
  g_.AddEdge(a, b, knows);
  g_.AddEdge(b, c, knows);
  g_.ResetJournal();

  RuleSet rules = Rules(kSymmetryRule);
  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_EQ(res.initial_violations, 2u);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_EQ(res.applied.size(), 2u);
  EXPECT_TRUE(g_.HasEdge(b, a, knows));
  EXPECT_TRUE(g_.HasEdge(c, b, knows));
  EXPECT_DOUBLE_EQ(res.repair_cost, 2.0);
}

TEST_F(EngineTest, AllStrategiesReachZeroViolations) {
  SymbolId p = vocab_->Label("P"), knows = vocab_->Label("knows");
  RuleSet rules = Rules(kSymmetryRule);
  for (auto strategy :
       {RepairStrategy::kNaive, RepairStrategy::kGreedy,
        RepairStrategy::kBatch, RepairStrategy::kExact}) {
    Graph fresh(vocab_);
    NodeId a = fresh.AddNode(p), b = fresh.AddNode(p);
    NodeId c = fresh.AddNode(p);
    fresh.AddEdge(a, b, knows);
    fresh.AddEdge(c, a, knows);
    fresh.ResetJournal();
    g_ = fresh;
    RepairResult res = Run(strategy, rules);
    EXPECT_EQ(res.remaining_violations, 0u)
        << RepairStrategyName(strategy);
  }
}

TEST_F(EngineTest, CascadeAcrossRules) {
  // Repairing rule 1 (country needs capital) creates a city whose missing
  // located_in then violates rule 2 — the engine must chase the chain.
  RuleSet rules = Rules(R"(
    RULE country_needs_capital CLASS incomplete
    MATCH (y:Country)
    WHERE NOT EDGE (*)-[capital_of]->(y)
    ACTION ADD_NODE (c:City)-[capital_of]->(y)

    RULE capital_implies_located CLASS incomplete
    MATCH (x:City)-[capital_of]->(y:Country)
    WHERE NOT EDGE (x)-[located_in]->(y)
    ACTION ADD_EDGE (x)-[located_in]->(y)
  )");
  NodeId country = g_.AddNode(vocab_->Label("Country"));
  g_.ResetJournal();

  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_EQ(res.applied.size(), 2u);  // one ADD_NODE + one cascaded ADD_EDGE
  SymbolId cap = vocab_->Label("capital_of");
  SymbolId loc = vocab_->Label("located_in");
  bool found = false;
  for (EdgeId e : g_.Edges()) {
    if (g_.EdgeLabel(e) == cap) {
      EdgeView v = g_.Edge(e);
      EXPECT_EQ(v.dst, country);
      EXPECT_TRUE(g_.HasEdge(v.src, country, loc));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineTest, GreedyPrefersLowConfidenceDeletion) {
  RuleSet rules = Rules(R"(
    RULE one_cap CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    ACTION DEL_EDGE e2
  )");
  SymbolId city = vocab_->Label("City"), country = vocab_->Label("Country");
  SymbolId cap = vocab_->Label("capital_of");
  SymbolId conf = vocab_->Attr("conf");
  NodeId c1 = g_.AddNode(city), c2 = g_.AddNode(city);
  NodeId y = g_.AddNode(country);
  EdgeId real = g_.AddEdge(c1, y, cap).value();
  EdgeId fake = g_.AddEdge(c2, y, cap).value();
  g_.SetEdgeAttr(real, conf, vocab_->Value("90"));
  g_.SetEdgeAttr(fake, conf, vocab_->Value("30"));
  g_.ResetJournal();

  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_TRUE(g_.EdgeAlive(real));
  EXPECT_FALSE(g_.EdgeAlive(fake));
}

TEST_F(EngineTest, MergeRepairsDuplicates) {
  RuleSet rules = Rules(R"(
    RULE dup CLASS redundant
    MATCH (x:P), (y:P)
    WHERE x.name = y.name
    ACTION MERGE (x, y)
  )");
  SymbolId p = vocab_->Label("P");
  SymbolId name = vocab_->Attr("name");
  NodeId a = g_.AddNode(p), b = g_.AddNode(p), c = g_.AddNode(p);
  g_.SetNodeAttr(a, name, vocab_->Value("alice"));
  g_.SetNodeAttr(b, name, vocab_->Value("alice"));
  g_.SetNodeAttr(c, name, vocab_->Value("carol"));
  g_.ResetJournal();

  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_EQ(g_.NumNodes(), 2u);
  EXPECT_TRUE(g_.NodeAlive(a));  // survivor is the lower id
  EXPECT_FALSE(g_.NodeAlive(b));
  EXPECT_TRUE(g_.NodeAlive(c));
}

TEST_F(EngineTest, TripleDuplicateChainMerges) {
  RuleSet rules = Rules(R"(
    RULE dup CLASS redundant
    MATCH (x:P), (y:P)
    WHERE x.name = y.name
    ACTION MERGE (x, y)
  )");
  SymbolId p = vocab_->Label("P");
  SymbolId name = vocab_->Attr("name");
  for (int i = 0; i < 3; ++i) {
    NodeId n = g_.AddNode(p);
    g_.SetNodeAttr(n, name, vocab_->Value("same"));
  }
  g_.ResetJournal();
  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_EQ(g_.NumNodes(), 1u);
  EXPECT_EQ(res.applied.size(), 2u);
}

TEST_F(EngineTest, NonTerminatingSetHitsBudget) {
  RuleSet rules = Rules(R"(
    RULE a_needs_b CLASS incomplete
    MATCH (x:A)
    WHERE NOT EDGE (x)-[req]->(*)
    ACTION ADD_NODE (x)-[req]->(n:B)

    RULE b_needs_a CLASS incomplete
    MATCH (x:B)
    WHERE NOT EDGE (x)-[req]->(*)
    ACTION ADD_NODE (x)-[req]->(n:A)
  )");
  g_.AddNode(vocab_->Label("A"));
  g_.ResetJournal();

  RepairOptions opt;
  opt.strategy = RepairStrategy::kGreedy;
  opt.max_fixes = 50;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, rules);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().budget_exhausted);
  EXPECT_GT(res.value().remaining_violations, 0u);
}

TEST_F(EngineTest, OscillationDetected) {
  // add_back_link / no_mutual_follow oscillate on a one-way follow edge.
  RuleSet rules = Rules(R"(
    RULE add_back CLASS incomplete
    MATCH (x:P)-[follows]->(y:P)
    WHERE NOT EDGE (y)-[follows]->(x)
    ACTION ADD_EDGE (y)-[follows]->(x)

    RULE no_mutual CLASS conflict
    MATCH (x:P)-[e1:follows]->(y:P), (y)-[e2:follows]->(x)
    ACTION DEL_EDGE e2
  )");
  SymbolId p = vocab_->Label("P"), follows = vocab_->Label("follows");
  NodeId a = g_.AddNode(p), b = g_.AddNode(p);
  g_.AddEdge(a, b, follows);
  g_.ResetJournal();

  RepairOptions opt;
  opt.strategy = RepairStrategy::kGreedy;
  opt.detect_oscillation = true;
  opt.max_fixes = 1000;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, rules);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().oscillation_detected ||
              res.value().budget_exhausted);
}

TEST_F(EngineTest, ExactFindsMinimumCostRepair) {
  // Conflict with two alternatives: deleting the low-confidence edge costs
  // 0.3, the high-confidence one 0.9. Exact must pick 0.3.
  RuleSet rules = Rules(R"(
    RULE one_cap CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    ACTION DEL_EDGE e2
  )");
  SymbolId city = vocab_->Label("City"), country = vocab_->Label("Country");
  SymbolId cap = vocab_->Label("capital_of");
  SymbolId conf = vocab_->Attr("conf");
  NodeId c1 = g_.AddNode(city), c2 = g_.AddNode(city);
  NodeId y = g_.AddNode(country);
  EdgeId real = g_.AddEdge(c1, y, cap).value();
  EdgeId fake = g_.AddEdge(c2, y, cap).value();
  g_.SetEdgeAttr(real, conf, vocab_->Value("90"));
  g_.SetEdgeAttr(fake, conf, vocab_->Value("30"));
  g_.ResetJournal();

  RepairResult res = Run(RepairStrategy::kExact, rules);
  EXPECT_EQ(res.remaining_violations, 0u);
  EXPECT_EQ(res.applied.size(), 1u);
  EXPECT_FALSE(g_.EdgeAlive(fake));
  EXPECT_TRUE(g_.EdgeAlive(real));
}

TEST_F(EngineTest, ExactNeverWorseThanGreedy) {
  RuleSet rules = Rules(kSymmetryRule);
  SymbolId p = vocab_->Label("P"), knows = vocab_->Label("knows");
  Graph base(vocab_);
  NodeId a = base.AddNode(p), b = base.AddNode(p), c = base.AddNode(p);
  base.AddEdge(a, b, knows);
  base.AddEdge(b, c, knows);
  base.AddEdge(c, a, knows);
  base.ResetJournal();

  g_ = base.Clone();
  RepairResult greedy = Run(RepairStrategy::kGreedy, rules);
  g_ = base.Clone();
  RepairResult exact = Run(RepairStrategy::kExact, rules);
  EXPECT_EQ(exact.remaining_violations, 0u);
  EXPECT_LE(exact.repair_cost, greedy.repair_cost + 1e-9);
}

TEST_F(EngineTest, IncrementalAndFullAgreeOnOutcome) {
  RuleSet rules = Rules(kSymmetryRule);
  SymbolId p = vocab_->Label("P"), knows = vocab_->Label("knows");
  Graph base(vocab_);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(base.AddNode(p));
  for (int i = 0; i + 1 < 10; ++i)
    base.AddEdge(nodes[i], nodes[i + 1], knows);
  base.ResetJournal();

  g_ = base.Clone();
  RepairResult inc = Run(RepairStrategy::kGreedy, rules, true);
  uint64_t fp_inc = g_.Fingerprint();
  g_ = base.Clone();
  RepairResult full = Run(RepairStrategy::kGreedy, rules, false);
  uint64_t fp_full = g_.Fingerprint();

  EXPECT_EQ(inc.remaining_violations, 0u);
  EXPECT_EQ(full.remaining_violations, 0u);
  EXPECT_EQ(fp_inc, fp_full);
  EXPECT_EQ(inc.applied.size(), full.applied.size());
}

TEST_F(EngineTest, EmptyRuleSetIsNoOp) {
  g_.AddNode(vocab_->Label("P"));
  g_.ResetJournal();
  RuleSet empty;
  RepairResult res = Run(RepairStrategy::kGreedy, empty);
  EXPECT_EQ(res.initial_violations, 0u);
  EXPECT_TRUE(res.applied.empty());
  EXPECT_DOUBLE_EQ(res.repair_cost, 0.0);
}

TEST_F(EngineTest, CleanGraphUntouched) {
  SymbolId p = vocab_->Label("P"), knows = vocab_->Label("knows");
  NodeId a = g_.AddNode(p), b = g_.AddNode(p);
  g_.AddEdge(a, b, knows);
  g_.AddEdge(b, a, knows);
  g_.ResetJournal();
  uint64_t fp = g_.Fingerprint();
  RuleSet rules = Rules(kSymmetryRule);
  RepairResult res = Run(RepairStrategy::kGreedy, rules);
  EXPECT_TRUE(res.applied.empty());
  EXPECT_EQ(g_.Fingerprint(), fp);
}

TEST_F(EngineTest, NullGraphRejected) {
  RepairEngine engine;
  RuleSet rules;
  auto res = engine.Run(nullptr, rules);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace grepair
