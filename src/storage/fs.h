// The filesystem seam of the durability subsystem. Every file operation the
// WAL, checkpoint and recovery layers perform goes through an abstract Fs,
// for the same reason admission control takes its clock as an argument: the
// failure modes that matter — a torn append, a power cut between write and
// fsync, a bit flip on disk — are impossible to provoke reliably against a
// real filesystem, and a crash-safety layer that cannot be crash-tested is
// decoration. Three implementations:
//
//   - RealFs: POSIX fd-backed files (write/fsync/rename/unlink), the one
//     production uses. Durability choreography (temp file + fsync + atomic
//     rename + directory fsync) is the caller's job; RealFs only promises
//     that Sync() reaches the device before returning.
//   - MemFs: an in-memory tree that models the sync boundary explicitly —
//     each file tracks how much of it has been fsynced, and
//     DropUnsynced() simulates the pessimistic crash where everything
//     past the last fsync is lost. This is what makes fsync-policy
//     trade-offs assertable in a unit test.
//   - FaultFs (fault_fs.h): wraps either of the above and injects a fault
//     at the Nth mutating operation — fail-stop, short write, or bit flip.
//
// Thread safety: the durability layer is single-writer (the serve commit
// path), so Fs implementations only promise const-read concurrency.
#ifndef GREPAIR_STORAGE_FS_H_
#define GREPAIR_STORAGE_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace grepair {
namespace storage {

/// An open append-only file handle. Close() without Sync() models the
/// crash-unsafe default; callers that need durability call Sync() first.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  /// Flushes everything appended so far to durable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The file operations the durability layer needs — deliberately minimal.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for appending, creating it when absent. `truncate` drops
  /// any existing content first (new WAL segments own their name).
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;
  /// Reads the whole file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// File size in bytes, or NotFound.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Atomic replace (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Truncates `path` to `size` bytes (torn-tail removal).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// Creates `dir` (one level); ok if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
  /// Entry names (not paths) in `dir`, sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  /// Fsyncs the directory itself so renames/creates within it are durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The production POSIX filesystem. Stateless; one shared instance.
class RealFs : public Fs {
 public:
  static RealFs* Default();

  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
};

/// In-memory filesystem with an explicit sync boundary per file: Append
/// grows `data`, Sync advances `synced_size`, and DropUnsynced() rolls
/// every file back to its last-synced prefix — the pessimistic crash model
/// the fault-injection suite recovers from.
class MemFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

  /// Simulates the crash: every file loses its un-fsynced tail, and files
  /// created but never synced into their (also unsynced) directory vanish
  /// entirely is NOT modeled — renames are kept — because the WAL/checkpoint
  /// writers sync both file and directory on every durability point; the
  /// un-synced tail is the loss mode that distinguishes fsync policies.
  void DropUnsynced();

 private:
  friend class MemWritableFile;
  struct FileRec {
    std::string data;
    uint64_t synced_size = 0;
  };
  std::map<std::string, FileRec> files_;
  std::map<std::string, bool> dirs_;
};

// ---------------------------------------------------------------- helpers

/// Crash-safe whole-file write: `path.tmp` + Sync + Close + atomic Rename
/// onto `path` + SyncDir. A crash at any point leaves either the old file
/// or the new one, never a torn mix — the idiom RepairService::SaveState
/// and the checkpoint writer share.
Status WriteFileAtomic(Fs* fs, const std::string& path,
                       const std::string& data);

/// Directory part of `path` ("" when none) for SyncDir after renames.
std::string DirName(const std::string& path);

}  // namespace storage
}  // namespace grepair

#endif  // GREPAIR_STORAGE_FS_H_
