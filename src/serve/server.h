// The TCP serving front-end: a thread-per-connection listener multiplexing
// many concurrent client Sessions onto one RepairService (DESIGN.md
// "Network serving").
//
// Each admitted connection gets a kStaged Session: edit verbs buffer inside
// the session and apply as one atomic block at `commit` under the shared
// service mutex, so clients interleave at commit granularity and the final
// state is bit-identical to replaying the same per-client op blocks through
// a single stdio session in commit order (tests/test_server.cc pins this).
// Published read verbs (`detect` / `violations`) are routed around that
// mutex inside the Session: they pin the last epoch-published snapshot
// generation and run lock-free against its frozen store, so read throughput
// scales with connection threads instead of serializing behind commits
// (DESIGN.md "Read path / epoch publication").
//
// Admission control front-runs the service: connections beyond
// ServeOptions::max_connections are answered `err busy max connections` and
// closed; requests beyond the ServeOptions::max_requests_per_sec token
// bucket are shed with `err busy rate limit exceeded` without touching the
// service. Connection/admission instruments live in the service's metrics
// registry, so the `metrics` verb exports them alongside the serving
// counters.
#ifndef GREPAIR_SERVE_SERVER_H_
#define GREPAIR_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/repair_service.h"
#include "util/status.h"

namespace grepair {
namespace serve {

class Session;

/// A line-protocol TCP listener over one RepairService. Lifecycle:
/// Start() binds and spawns the acceptor; Wait() blocks until a client's
/// `shutdown` verb (or RequestStop()) and then drains; the destructor
/// stops too, so a scoped Server never leaks threads. The service must
/// outlive the server and must not be touched by other writers while the
/// server runs (the server owns the serialization mutex).
class Server {
 public:
  /// Serves `service` per `service->options()`: listen_port (0 = pick an
  /// ephemeral port, published via port()), max_connections,
  /// max_requests_per_sec.
  explicit Server(RepairService* service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor thread.
  Status Start();

  /// The bound port (valid after a successful Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Asks the server to stop accepting and unblocks Wait(). Safe from any
  /// thread, including a connection handler (the `shutdown` verb).
  void RequestStop();

  /// Blocks until a stop is requested, then tears down: closes the
  /// listener, shuts down live connections, and joins every thread.
  void Wait();

  /// RequestStop() + Wait().
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Runs one protocol line through admission + the session; returns false
  /// when the connection should close (quit/shutdown, write failure).
  bool ProcessLine(int fd, Session* session, const std::string& line);
  /// Appends '\n' and writes the whole response to the socket.
  static bool WriteLine(int fd, const std::string& line);

  RepairService* service_;
  AdmissionOptions admission_options_;
  AdmissionController admission_;
  /// Serializes sessions' service access — edits, commits, file verbs.
  /// Published read verbs never take it (Session routes them to the
  /// publisher's pinned generation before locking).
  std::mutex service_mu_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool stop_requested_ = false;
  bool teardown_started_ = false;
  bool stopped_ = false;
  size_t live_connections_ = 0;
  std::vector<int> conn_fds_;  ///< open sockets, for shutdown-time unblock

  // Admission/connection instruments (service registry, so `metrics`
  // exports them): gauge of live connections, accepted/rejected ledgers,
  // and the per-request latency histogram (admitted requests; lock wait
  // included — it is the client-observed service time).
  obs::Gauge* m_active_;
  obs::Counter* m_conn_accepted_;
  obs::Counter* m_conn_rejected_;
  obs::Counter* m_requests_;
  obs::Counter* m_req_rejected_;
  obs::Histogram* m_request_ms_;
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_SERVER_H_
