// Baseline behavior tests: detect-only floor, random-order repair, and the
// relational CFD baseline's strengths (functional conflicts) and structural
// blind spots (incompleteness, merge-vs-delete).
#include <gtest/gtest.h>

#include "baseline/detect_only.h"
#include "baseline/random_repair.h"
#include "baseline/triple_cfd.h"
#include "eval/experiment.h"

namespace grepair {
namespace {

DatasetBundle SmallKg(uint64_t seed = 3, double rate = 0.08) {
  KgOptions gopt;
  gopt.num_persons = 150;
  gopt.num_cities = 25;
  gopt.num_countries = 6;
  gopt.num_orgs = 15;
  gopt.seed = seed;
  InjectOptions iopt;
  iopt.rate = rate;
  iopt.seed = seed + 1;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok());
  return std::move(b).value();
}

TEST(DetectOnlyTest, CountsButDoesNotRepair) {
  DatasetBundle bundle = SmallKg();
  Graph work = bundle.graph.Clone();
  uint64_t fp = work.Fingerprint();
  RepairResult res = DetectOnlyBaseline(work, bundle.rules);
  EXPECT_GT(res.initial_violations, 0u);
  EXPECT_EQ(res.remaining_violations, res.initial_violations);
  EXPECT_TRUE(res.applied.empty());
  EXPECT_EQ(work.Fingerprint(), fp);
}

TEST(DetectOnlyTest, ZeroRecallByConstruction) {
  DatasetBundle bundle = SmallKg();
  auto out = RunMethod(bundle, "detect_only");
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value().quality.recall, 0.0);
}

TEST(RandomRepairTest, ReachesFixpointOnConsistentRules) {
  DatasetBundle bundle = SmallKg();
  Graph work = bundle.graph.Clone();
  auto res = RandomOrderRepair(&work, bundle.rules, 77);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
}

TEST(RandomRepairTest, SeedChangesOutcomeOnConflicts) {
  // With two equally valid deletions per conflict, different seeds should
  // (almost surely, across several conflicts) produce different graphs.
  DatasetBundle bundle = SmallKg(9, 0.12);
  Graph w1 = bundle.graph.Clone();
  Graph w2 = bundle.graph.Clone();
  ASSERT_TRUE(RandomOrderRepair(&w1, bundle.rules, 1).ok());
  ASSERT_TRUE(RandomOrderRepair(&w2, bundle.rules, 999).ok());
  // Not a hard guarantee per seed; this fixture has >= 5 conflicts so a
  // collision of all coin flips is vanishingly unlikely.
  EXPECT_NE(w1.Fingerprint(), w2.Fingerprint());
}

TEST(TripleCfdTest, ResolvesFunctionalConflicts) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), city = vocab->Label("City");
  SymbolId born = vocab->Label("born_in");
  SymbolId conf = vocab->Attr("conf");
  NodeId p = g.AddNode(person);
  NodeId c1 = g.AddNode(city), c2 = g.AddNode(city);
  EdgeId real = g.AddEdge(p, c1, born).value();
  EdgeId fake = g.AddEdge(p, c2, born).value();
  g.SetEdgeAttr(real, conf, vocab->Value("90"));
  g.SetEdgeAttr(fake, conf, vocab->Value("30"));
  g.ResetJournal();

  TripleCfdOptions opt;
  opt.functional_edges = {"born_in"};
  auto res = TripleCfdRepair(&g, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(g.EdgeAlive(real));
  EXPECT_FALSE(g.EdgeAlive(fake));
  EXPECT_EQ(res.value().applied.size(), 1u);
}

TEST(TripleCfdTest, CannotRepairIncompleteness) {
  // Missing symmetric edge: the relational baseline has no rule language
  // for structural additions; graph must remain unchanged.
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  NodeId a = g.AddNode(person), b = g.AddNode(person);
  g.AddEdge(a, b, knows);  // missing reverse
  g.ResetJournal();
  uint64_t fp = g.Fingerprint();

  auto res = TripleCfdRepair(&g, SocialCfdConfig());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(g.Fingerprint(), fp);
}

TEST(TripleCfdTest, DedupDeletesInsteadOfMerging) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  SymbolId name = vocab->Attr("name");
  NodeId orig = g.AddNode(person);
  NodeId dup = g.AddNode(person);
  NodeId friend1 = g.AddNode(person);
  g.SetNodeAttr(orig, name, vocab->Value("alice"));
  g.SetNodeAttr(dup, name, vocab->Value("alice"));
  g.SetNodeAttr(friend1, name, vocab->Value("frida"));
  g.AddEdge(dup, friend1, knows);  // knowledge only the duplicate carries
  g.ResetJournal();

  auto res = TripleCfdRepair(&g, SocialCfdConfig());
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(g.NodeAlive(dup));
  // The relational delete LOSES the duplicate's edge — the structural
  // damage a graph-aware MERGE avoids.
  EXPECT_FALSE(g.HasEdge(orig, friend1, knows));
}

TEST(TripleCfdTest, LowerRecallThanGreedyOnMixedErrors) {
  DatasetBundle bundle = SmallKg(5, 0.08);
  auto cfd = RunMethod(bundle, "cfd");
  auto greedy = RunMethod(bundle, "greedy");
  ASSERT_TRUE(cfd.ok() && greedy.ok());
  EXPECT_LT(cfd.value().quality.recall, greedy.value().quality.recall);
  EXPECT_GT(cfd.value().repair.remaining_violations, 0u);
  EXPECT_EQ(greedy.value().repair.remaining_violations, 0u);
}

}  // namespace
}  // namespace grepair
