#include "grr/standard_rules.h"

#include "grr/rule_parser.h"

namespace grepair {

const char kKgRulesDsl[] = R"RULES(
# --- incompleteness ----------------------------------------------------
RULE spouse_symmetric CLASS incomplete
MATCH (x:Person)-[spouse]->(y:Person)
WHERE NOT EDGE (y)-[spouse]->(x)
ACTION ADD_EDGE (y)-[spouse]->(x)

RULE knows_symmetric CLASS incomplete
MATCH (x:Person)-[knows]->(y:Person)
WHERE NOT EDGE (y)-[knows]->(x)
ACTION ADD_EDGE (y)-[knows]->(x)

RULE capital_implies_located CLASS incomplete
MATCH (x:City)-[capital_of]->(y:Country)
WHERE NOT EDGE (x)-[located_in]->(y)
ACTION ADD_EDGE (x)-[located_in]->(y)

RULE country_needs_capital CLASS incomplete
MATCH (y:Country)
WHERE NOT EDGE (*)-[capital_of]->(y)
ACTION ADD_NODE (c:City)-[capital_of]->(y)

# --- conflicts ----------------------------------------------------------
RULE one_capital_per_country CLASS conflict
MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
ACTION DEL_EDGE e2

RULE one_birthplace CLASS conflict
MATCH (p:Person)-[e1:born_in]->(c1:City), (p)-[e2:born_in]->(c2:City)
ACTION DEL_EDGE e2

RULE worker_is_person CLASS conflict
MATCH (x:City)-[works_for]->(o:Org)
ACTION UPD_NODE x LABEL Person

RULE capital_flag CLASS conflict
MATCH (x:City)-[capital_of]->(y:Country)
WHERE x.is_capital != "yes"
ACTION UPD_NODE x SET is_capital = "yes"

# --- redundancy ---------------------------------------------------------
RULE dup_person CLASS redundant
MATCH (x:Person), (y:Person)
WHERE x.name = y.name AND x.birth_year = y.birth_year
ACTION MERGE (x, y)

RULE junk_org CLASS redundant
MATCH (x:Org)
WHERE ISOLATED x AND ABSENT x.name
ACTION DEL_NODE x
)RULES";

const char kSocialRulesDsl[] = R"RULES(
RULE knows_symmetric CLASS incomplete
MATCH (x:Person)-[knows]->(y:Person)
WHERE NOT EDGE (y)-[knows]->(x)
ACTION ADD_EDGE (y)-[knows]->(x)

RULE no_self_knows CLASS conflict
MATCH (x:Person)-[e:knows]->(x)
ACTION DEL_EDGE e

RULE dup_user CLASS redundant
MATCH (x:Person), (y:Person)
WHERE x.name = y.name
ACTION MERGE (x, y)

RULE orphan_user CLASS redundant
MATCH (x:Person)
WHERE ISOLATED x AND ABSENT x.name
ACTION DEL_NODE x
)RULES";

const char kCitationRulesDsl[] = R"RULES(
RULE no_future_citation CLASS conflict
MATCH (p:Paper)-[e:cites]->(q:Paper)
WHERE p.year < q.year
ACTION DEL_EDGE e

RULE cites_to_author_is_authorship CLASS conflict
MATCH (p:Paper)-[e:cites]->(a:Author)
ACTION UPD_EDGE e LABEL authored_by

RULE paper_needs_author CLASS incomplete
MATCH (p:Paper)
WHERE NOT EDGE (p)-[authored_by]->(*)
ACTION ADD_NODE (p)-[authored_by]->(a:Author)

RULE dup_paper CLASS redundant
MATCH (x:Paper), (y:Paper)
WHERE x.title = y.title AND x.year = y.year
ACTION MERGE (x, y)
)RULES";

const char kAdversarialCyclicDsl[] = R"RULES(
# Creation cycle: repairing an A spawns a B, which spawns a C, which spawns
# a fresh A — the repair process grows the graph forever.
RULE a_needs_b CLASS incomplete
MATCH (x:A)
WHERE NOT EDGE (x)-[req]->(*)
ACTION ADD_NODE (x)-[req]->(n:B)

RULE b_needs_c CLASS incomplete
MATCH (x:B)
WHERE NOT EDGE (x)-[req]->(*)
ACTION ADD_NODE (x)-[req]->(n:C)

RULE c_needs_a CLASS incomplete
MATCH (x:C)
WHERE NOT EDGE (x)-[req]->(*)
ACTION ADD_NODE (x)-[req]->(n:A)
)RULES";

const char kContradictoryDsl[] = R"RULES(
# One rule inserts exactly the edge the other deletes: the pair oscillates.
RULE add_back_link CLASS incomplete
MATCH (x:Person)-[follows]->(y:Person)
WHERE NOT EDGE (y)-[follows]->(x)
ACTION ADD_EDGE (y)-[follows]->(x)

RULE no_mutual_follow CLASS conflict
MATCH (x:Person)-[e1:follows]->(y:Person), (y)-[e2:follows]->(x)
ACTION DEL_EDGE e2
)RULES";

Result<RuleSet> KgRules(VocabularyPtr vocab) {
  return ParseRules(kKgRulesDsl, std::move(vocab));
}

Result<RuleSet> SocialRules(VocabularyPtr vocab) {
  return ParseRules(kSocialRulesDsl, std::move(vocab));
}

Result<RuleSet> CitationRules(VocabularyPtr vocab) {
  return ParseRules(kCitationRulesDsl, std::move(vocab));
}

Result<RuleSet> AdversarialCyclicRules(VocabularyPtr vocab) {
  return ParseRules(kAdversarialCyclicDsl, std::move(vocab));
}

Result<RuleSet> ContradictoryRules(VocabularyPtr vocab) {
  return ParseRules(kContradictoryDsl, std::move(vocab));
}

}  // namespace grepair
