#include "match/intersect.h"

#include <algorithm>

namespace grepair {

namespace {

// Galloping (exponential) search: smallest index i in [lo, n) with
// a[i] >= key. Doubles the probe stride from lo, then binary-searches the
// bracketed window — O(log(i - lo)) instead of O(log n), which is what
// makes per-element probing cheap when matches cluster forward.
size_t GallopLowerBound(const uint32_t* a, size_t n, size_t lo, uint32_t key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(a + lo, a + hi, key) - a);
}

// Skewed kernel: gallop each element of the SMALL range through the large
// one. `small`/`large` are ascending duplicate-free.
void IntersectGallop(const uint32_t* small, size_t sn, const uint32_t* large,
                     size_t ln, std::vector<uint32_t>* out) {
  size_t pos = 0;
  for (size_t i = 0; i < sn; ++i) {
    pos = GallopLowerBound(large, ln, pos, small[i]);
    if (pos == ln) return;
    if (large[pos] == small[i]) {
      out->push_back(small[i]);
      ++pos;
    }
  }
}

// Comparable-size kernel: two-pointer merge. The loop body is branch-light
// (pointer advances computed from comparison results) so the compiler can
// keep it in registers and vectorize the equality scan.
void IntersectMerge(const uint32_t* a, size_t an, const uint32_t* b,
                    size_t bn, std::vector<uint32_t>* out) {
  size_t i = 0, j = 0;
  while (i < an && j < bn) {
    uint32_t x = a[i], y = b[j];
    if (x == y) {
      out->push_back(x);
      ++i;
      ++j;
    } else {
      i += x < y;
      j += y < x;
    }
  }
}

}  // namespace

void IntersectSorted(const uint32_t* a, size_t an, const uint32_t* b,
                     size_t bn, std::vector<uint32_t>* out,
                     IntersectStats* stats) {
  out->clear();
  if (an == 0 || bn == 0) return;
  const size_t small = std::min(an, bn);
  const size_t large = std::max(an, bn);
  out->reserve(small);
  if (large / small >= kGallopRatio) {
    if (stats) ++stats->gallop;
    if (an <= bn)
      IntersectGallop(a, an, b, bn, out);
    else
      IntersectGallop(b, bn, a, an, out);
  } else {
    if (stats) ++stats->merge;
    IntersectMerge(a, an, b, bn, out);
  }
}

void SortUniqueIds(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace grepair
