// A fixed-size worker pool for the read-path fan-out (parallel detection,
// mining support evaluation). Tasks are arbitrary callables; Submit returns
// a std::future so exceptions thrown inside a task propagate to whoever
// waits on it. The destructor drains: every task submitted before
// destruction runs to completion before the workers join.
//
// Threading contract (see DESIGN.md "Threading model"): the pool is the ONLY
// sanctioned way to run engine code concurrently, and tasks must treat the
// Graph, Vocabulary and RuleSet they read as frozen — const reads only, no
// Dictionary::Intern, no graph mutation.
#ifndef GREPAIR_PARALLEL_THREAD_POOL_H_
#define GREPAIR_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace grepair {

/// Block i of k contiguous blocks covering [0, n): {begin, end}. The single
/// partition formula shared by ParallelFor, detection sharding and mining
/// shard scans, so the paths cannot drift apart.
inline std::pair<size_t, size_t> BlockRange(size_t n, size_t i, size_t k) {
  return {n * i / k, n * (i + 1) / k};
}

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// itself clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues `fn`; the future carries its result or its exception.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(0) .. fn(n-1) across the pool and waits for all of them.
  /// Indices are block-partitioned into at most NumThreads() contiguous
  /// chunks (one task each), so per-call overhead is paid per chunk, not
  /// per index. If any call throws, the first (lowest-chunk) exception is
  /// rethrown after every chunk finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// A queued task plus its enqueue timestamp (obs time base, 0 when
  /// metrics are disabled) so the dequeueing worker can price queue wait.
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_us = 0;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace grepair

#endif  // GREPAIR_PARALLEL_THREAD_POOL_H_
