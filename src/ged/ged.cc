#include "ged/ged.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

namespace grepair {
namespace {

constexpr uint32_t kEps = UINT32_MAX;  // "mapped to nothing" (deleted)

// Multiset of edge labels between an ordered node pair.
std::map<SymbolId, int> EdgeLabels(const Graph& g, NodeId a, NodeId b) {
  std::map<SymbolId, int> out;
  for (EdgeId e : g.OutEdges(a)) {
    EdgeView v = g.Edge(e);
    if (v.dst == b) out[v.label]++;
  }
  return out;
}

// Minimal cost to turn label multiset m1 into m2 (uniform relabel cost).
double EdgeMultisetCost(const std::map<SymbolId, int>& m1,
                        const std::map<SymbolId, int>& m2,
                        const CostModel& c) {
  int n1 = 0, n2 = 0, common = 0;
  for (const auto& [l, k] : m1) n1 += k;
  for (const auto& [l, k] : m2) n2 += k;
  for (const auto& [l, k] : m1) {
    auto it = m2.find(l);
    if (it != m2.end()) common += std::min(k, it->second);
  }
  int paired = std::min(n1, n2);
  double relabel = std::min(c.relabel, c.edge_delete + c.edge_insert);
  return (n1 - paired) * c.edge_delete + (n2 - paired) * c.edge_insert +
         (paired - common) * relabel;
}

// Cost of substituting node u (g1) by v (g2): label + attribute deltas.
double NodeSubCost(const Graph& g1, NodeId u, const Graph& g2, NodeId v,
                   const CostModel& c) {
  double cost = 0.0;
  if (g1.NodeLabel(u) != g2.NodeLabel(v)) cost += c.relabel;
  const auto& a1 = g1.NodeAttrs(u).entries();
  const auto& a2 = g2.NodeAttrs(v).entries();
  size_t i = 0, j = 0;
  while (i < a1.size() || j < a2.size()) {
    if (i < a1.size() && (j >= a2.size() || a1[i].first < a2[j].first)) {
      cost += c.attr_update;  // attribute removed
      ++i;
    } else if (j < a2.size() && (i >= a1.size() || a2[j].first < a1[i].first)) {
      cost += c.attr_update;  // attribute added
      ++j;
    } else {
      if (a1[i].second != a2[j].second) cost += c.attr_update;
      ++i;
      ++j;
    }
  }
  return cost;
}

struct AStarState {
  double g = 0.0;
  double f = 0.0;
  std::vector<uint32_t> map;  // per processed g1 node: g2 index or kEps
  bool operator>(const AStarState& o) const { return f > o.f; }
};

}  // namespace

double GedLowerBound(const Graph& g1, const Graph& g2,
                     const CostModel& costs) {
  std::map<SymbolId, int> l1, l2;
  for (NodeId n : g1.Nodes()) l1[g1.NodeLabel(n)]++;
  for (NodeId n : g2.Nodes()) l2[g2.NodeLabel(n)]++;
  int n1 = static_cast<int>(g1.NumNodes());
  int n2 = static_cast<int>(g2.NumNodes());
  int common = 0;
  for (const auto& [l, k] : l1) {
    auto it = l2.find(l);
    if (it != l2.end()) common += std::min(k, it->second);
  }
  int paired = std::min(n1, n2);
  double relabel =
      std::min(costs.relabel, costs.node_delete + costs.node_insert);
  double node_part = (n1 - paired) * costs.node_delete +
                     (n2 - paired) * costs.node_insert +
                     (paired - common) * relabel;
  // Edge count difference is also a valid lower bound component.
  int e1 = static_cast<int>(g1.NumEdges());
  int e2 = static_cast<int>(g2.NumEdges());
  double edge_part = (e1 > e2) ? (e1 - e2) * costs.edge_delete
                               : (e2 - e1) * costs.edge_insert;
  return node_part + edge_part;
}

GedResult ExactGed(const Graph& g1, const Graph& g2, const GedOptions& opt) {
  const CostModel& c = opt.costs;
  std::vector<NodeId> n1 = g1.Nodes();
  std::vector<NodeId> n2 = g2.Nodes();

  // Heuristic over the remaining suffix of n1 and unused part of n2.
  auto heuristic = [&](const std::vector<uint32_t>& map) {
    std::map<SymbolId, int> l1, l2;
    int r1 = 0, r2 = 0;
    for (size_t i = map.size(); i < n1.size(); ++i) {
      l1[g1.NodeLabel(n1[i])]++;
      ++r1;
    }
    std::vector<bool> used(n2.size(), false);
    for (uint32_t m : map)
      if (m != kEps) used[m] = true;
    for (size_t j = 0; j < n2.size(); ++j) {
      if (!used[j]) {
        l2[g2.NodeLabel(n2[j])]++;
        ++r2;
      }
    }
    int common = 0;
    for (const auto& [l, k] : l1) {
      auto it = l2.find(l);
      if (it != l2.end()) common += std::min(k, it->second);
    }
    int paired = std::min(r1, r2);
    double relabel = std::min(c.relabel, c.node_delete + c.node_insert);
    return (r1 - paired) * c.node_delete + (r2 - paired) * c.node_insert +
           (paired - common) * relabel;
  };

  // Edge cost of extending `map` (k processed) with u_k -> image.
  auto extension_edge_cost = [&](const std::vector<uint32_t>& map,
                                 uint32_t image) {
    size_t k = map.size();
    NodeId uk = n1[k];
    double cost = 0.0;
    // Self-loops.
    {
      std::map<SymbolId, int> s1 = EdgeLabels(g1, uk, uk);
      std::map<SymbolId, int> s2;
      if (image != kEps) s2 = EdgeLabels(g2, n2[image], n2[image]);
      cost += EdgeMultisetCost(s1, s2, c);
    }
    for (size_t j = 0; j < k; ++j) {
      NodeId uj = n1[j];
      std::map<SymbolId, int> fwd1 = EdgeLabels(g1, uj, uk);
      std::map<SymbolId, int> bwd1 = EdgeLabels(g1, uk, uj);
      std::map<SymbolId, int> fwd2, bwd2;
      if (image != kEps && map[j] != kEps) {
        fwd2 = EdgeLabels(g2, n2[map[j]], n2[image]);
        bwd2 = EdgeLabels(g2, n2[image], n2[map[j]]);
      }
      cost += EdgeMultisetCost(fwd1, fwd2, c);
      cost += EdgeMultisetCost(bwd1, bwd2, c);
    }
    return cost;
  };

  // Cost of finishing a complete node mapping: insert unused g2 nodes,
  // their attributes, and every g2 edge with >= 1 unused endpoint.
  auto completion_cost = [&](const std::vector<uint32_t>& map) {
    std::vector<bool> used(n2.size(), false);
    for (uint32_t m : map)
      if (m != kEps) used[m] = true;
    double cost = 0.0;
    std::vector<bool> node_used(g2.NodeIdBound(), false);
    for (size_t j = 0; j < n2.size(); ++j)
      if (used[j]) node_used[n2[j]] = true;
    for (size_t j = 0; j < n2.size(); ++j) {
      if (used[j]) continue;
      cost += c.node_insert;
      cost += c.attr_update *
              static_cast<double>(g2.NodeAttrs(n2[j]).entries().size());
    }
    for (EdgeId e : g2.Edges()) {
      EdgeView v = g2.Edge(e);
      if (!node_used[v.src] || !node_used[v.dst]) cost += c.edge_insert;
    }
    return cost;
  };

  GedResult result;
  std::priority_queue<AStarState, std::vector<AStarState>,
                      std::greater<AStarState>>
      open;
  AStarState init;
  init.f = heuristic(init.map);
  open.push(init);

  double best_upper = std::numeric_limits<double>::infinity();
  while (!open.empty()) {
    AStarState st = open.top();
    open.pop();
    if (++result.expansions > opt.max_expansions) {
      result.optimal = false;
      break;
    }
    if (st.f >= best_upper) continue;
    if (st.map.size() == n1.size()) {
      double total = st.g + completion_cost(st.map);
      if (total < best_upper) best_upper = total;
      // A* with admissible h: the first completed state popped is optimal
      // only if completion cost is folded into f; we fold it below when
      // pushing complete states, so reaching here means done.
      result.distance = best_upper;
      return result;
    }
    NodeId uk = n1[st.map.size()];
    (void)uk;
    // Substitute with any unused g2 node.
    std::vector<bool> used(n2.size(), false);
    for (uint32_t m : st.map)
      if (m != kEps) used[m] = true;
    for (uint32_t j = 0; j < n2.size(); ++j) {
      if (used[j]) continue;
      AStarState nxt = st;
      nxt.g += NodeSubCost(g1, n1[st.map.size()], g2, n2[j], c) +
               extension_edge_cost(st.map, j);
      nxt.map.push_back(j);
      double h = heuristic(nxt.map);
      if (nxt.map.size() == n1.size()) h = completion_cost(nxt.map);
      nxt.f = nxt.g + h;
      if (nxt.f < best_upper) open.push(nxt);
    }
    // Delete. (No attribute charge: the journal model deletes a node's
    // attributes for free with the node, and GED must lower-bound it.)
    {
      AStarState nxt = st;
      nxt.g += c.node_delete + extension_edge_cost(st.map, kEps);
      nxt.map.push_back(kEps);
      double h = heuristic(nxt.map);
      if (nxt.map.size() == n1.size()) h = completion_cost(nxt.map);
      nxt.f = nxt.g + h;
      if (nxt.f < best_upper) open.push(nxt);
    }
  }

  if (best_upper < std::numeric_limits<double>::infinity()) {
    result.distance = best_upper;
  } else {
    // Budget hit before any complete mapping: fall back to the trivial
    // upper bound (delete everything, insert everything).
    CostModel cm = c;
    Graph empty(g1.vocab());
    result.distance =
        GedLowerBound(g1, empty, cm) + GedLowerBound(empty, g2, cm);
    result.optimal = false;
  }
  return result;
}

}  // namespace grepair
