// Tests for the parallel detection subsystem: ThreadPool semantics
// (futures, exception propagation, drain-on-destruction) and the central
// determinism guarantee — DetectAll(threads=1) == DetectAll(threads=N),
// contents AND order, on generator graphs with injected errors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "eval/experiment.h"
#include "graph/error_injector.h"
#include "graph/generators.h"
#include "mining/rule_miner.h"
#include "parallel/parallel_detector.h"
#include "parallel/thread_pool.h"
#include "repair/engine.h"

namespace grepair {
namespace {

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.NumThreads(), 1u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 57)
                                    throw std::runtime_error("index 57");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done++;
      });
    }
    // Destructor must run every already-submitted task before joining.
  }
  EXPECT_EQ(done.load(), kTasks);
}

// ------------------------------------------------- Detection determinism

// Fully drains a store in PopBest order — the order the repair engine
// consumes, so equality here is the strongest determinism statement.
std::vector<Violation> Drain(ViolationStore* store) {
  std::vector<Violation> out;
  Violation v;
  while (store->PopBest(&v)) out.push_back(v);
  return out;
}

void ExpectSameDetection(const Graph& g, const RuleSet& rules,
                         size_t threads) {
  ViolationStore seq, par;
  size_t n_seq = DetectAll(g, rules, &seq);
  size_t n_par = DetectAll(g, rules, &par, /*expansions=*/nullptr, threads);
  EXPECT_EQ(n_seq, n_par) << "threads=" << threads;
  std::vector<Violation> a = Drain(&seq), b = Drain(&par);
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule) << "pop " << i << " threads=" << threads;
    EXPECT_EQ(a[i].alternatives, b[i].alternatives)
        << "pop " << i << " threads=" << threads;
    EXPECT_DOUBLE_EQ(a[i].best_cost, b[i].best_cost)
        << "pop " << i << " threads=" << threads;
  }
}

DatasetBundle SmallKg() {
  KgOptions gopt;
  gopt.num_persons = 400;
  gopt.num_cities = 40;
  gopt.num_countries = 10;
  gopt.num_orgs = 25;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

TEST(ParallelDetectTest, KgBundleMatchesSequential) {
  DatasetBundle bundle = SmallKg();
  for (size_t threads : {2u, 4u, 8u})
    ExpectSameDetection(bundle.graph, bundle.rules, threads);
}

TEST(ParallelDetectTest, SocialBundleMatchesSequential) {
  SocialOptions gopt;
  gopt.num_persons = 400;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeSocialBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  for (size_t threads : {2u, 4u, 8u})
    ExpectSameDetection(b.value().graph, b.value().rules, threads);
}

TEST(ParallelDetectTest, CitationBundleMatchesSequential) {
  CitationOptions gopt;
  gopt.num_papers = 300;
  gopt.num_authors = 120;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  for (size_t threads : {2u, 4u, 8u})
    ExpectSameDetection(b.value().graph, b.value().rules, threads);
}

// Forces the shard-level fan-out (every rule sharded down to single seeds)
// and checks the emission order is exactly the sequential enumeration.
TEST(ParallelDetectTest, ForcedShardingPreservesEmissionOrder) {
  DatasetBundle bundle = SmallKg();
  const Graph& g = bundle.graph;
  const RuleSet& rules = bundle.rules;

  std::vector<std::pair<RuleId, Match>> seq;
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher matcher(g, rules[r].pattern());
    matcher.FindAll(MatchOptions{}, [&](const Match& m) {
      seq.emplace_back(r, m);
      return true;
    });
  }

  ThreadPool pool(4);
  ParallelDetectOptions opts;
  opts.shard_min_seeds = 1;  // shard everything
  opts.max_shards_per_rule = 16;
  ParallelDetector detector(&pool, opts);
  std::vector<std::pair<RuleId, Match>> par;
  MatchStats st = detector.Detect(
      g, rules, [&](RuleId r, const Match& m) { par.emplace_back(r, m); });

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].first, par[i].first) << "emission " << i;
    EXPECT_EQ(seq[i].second, par[i].second) << "emission " << i;
  }
  EXPECT_EQ(st.matches, seq.size());
}

// Forcing the expansion-budget fallback (sequential_budget=1 makes every
// sharded rule "over budget") must still reproduce the sequential emission
// stream: the fallback re-runs the rule sequentially and emits it once.
TEST(ParallelDetectTest, BudgetFallbackPreservesEmissionOrder) {
  DatasetBundle bundle = SmallKg();
  const Graph& g = bundle.graph;
  const RuleSet& rules = bundle.rules;

  std::vector<std::pair<RuleId, Match>> seq;
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher matcher(g, rules[r].pattern());
    matcher.FindAll(MatchOptions{}, [&](const Match& m) {
      seq.emplace_back(r, m);
      return true;
    });
  }

  ThreadPool pool(4);
  ParallelDetectOptions opts;
  opts.shard_min_seeds = 1;
  opts.max_shards_per_rule = 8;
  opts.sequential_budget = 1;  // every sharded rule triggers the fallback
  ParallelDetector detector(&pool, opts);
  std::vector<std::pair<RuleId, Match>> par;
  detector.Detect(g, rules,
                  [&](RuleId r, const Match& m) { par.emplace_back(r, m); });

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].first, par[i].first) << "emission " << i;
    EXPECT_EQ(seq[i].second, par[i].second) << "emission " << i;
  }
}

// The seed contract the sharding relies on: every match binds SeedVar() to
// a node in SeedCandidates().
TEST(ParallelDetectTest, SeedCandidatesCoverAllMatches) {
  DatasetBundle bundle = SmallKg();
  const Graph& g = bundle.graph;
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    Matcher matcher(g, bundle.rules[r].pattern());
    VarId seed_var = matcher.SeedVar();
    ASSERT_NE(seed_var, kNoVar);
    std::vector<NodeId> seeds = matcher.SeedCandidates(seed_var);
    EXPECT_TRUE(std::is_sorted(seeds.begin(), seeds.end()));
    matcher.FindAll(MatchOptions{}, [&](const Match& m) {
      EXPECT_TRUE(std::binary_search(seeds.begin(), seeds.end(),
                                     m.nodes[seed_var]));
      return true;
    });
  }
}

// --------------------------------------------------- Engine integration

TEST(ParallelEngineTest, GreedyRepairIdenticalAcrossThreadCounts) {
  DatasetBundle bundle = SmallKg();
  Graph base = bundle.graph.Clone();

  RepairOptions opt1;
  opt1.num_threads = 1;
  Graph g1 = base.Clone();
  auto r1 = RepairEngine(opt1).Run(&g1, bundle.rules);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  for (size_t threads : {2u, 4u}) {
    RepairOptions optn;
    optn.num_threads = threads;
    Graph gn = base.Clone();
    auto rn = RepairEngine(optn).Run(&gn, bundle.rules);
    ASSERT_TRUE(rn.ok()) << rn.status().ToString();
    EXPECT_TRUE(g1.ContentEquals(gn)) << "threads=" << threads;
    EXPECT_EQ(r1.value().applied.size(), rn.value().applied.size());
    EXPECT_EQ(r1.value().initial_violations, rn.value().initial_violations);
    EXPECT_EQ(r1.value().remaining_violations,
              rn.value().remaining_violations);
    EXPECT_DOUBLE_EQ(r1.value().repair_cost, rn.value().repair_cost);
  }
}

TEST(ParallelEngineTest, FullRedetectionModeIdenticalAcrossThreads) {
  DatasetBundle bundle = SmallKg();
  Graph base = bundle.graph.Clone();

  RepairOptions opt;
  opt.incremental = false;  // every round is a full parallel re-detection
  Graph g1 = base.Clone(), g4 = base.Clone();
  opt.num_threads = 1;
  auto r1 = RepairEngine(opt).Run(&g1, bundle.rules);
  opt.num_threads = 4;
  auto r4 = RepairEngine(opt).Run(&g4, bundle.rules);
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_TRUE(g1.ContentEquals(g4));
  EXPECT_EQ(r1.value().remaining_violations, r4.value().remaining_violations);
}

// --------------------------------------------------- Mining integration

TEST(ParallelMiningTest, MinedRulesIdenticalAcrossThreadCounts) {
  DatasetBundle bundle = SmallKg();
  MiningOptions opt;
  opt.min_evidence = 5;
  std::vector<MinedRule> seq = MineRules(bundle.graph, opt);
  EXPECT_FALSE(seq.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    opt.num_threads = threads;
    std::vector<MinedRule> par = MineRules(bundle.graph, opt);
    ASSERT_EQ(seq.size(), par.size()) << "threads=" << threads;
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].rule.name(), par[i].rule.name());
      EXPECT_EQ(seq[i].kind, par[i].kind);
      EXPECT_EQ(seq[i].evidence, par[i].evidence);
      EXPECT_DOUBLE_EQ(seq[i].support, par[i].support);
    }
  }
}

// ------------------------------------------------ Vocabulary::LookupOnly

TEST(LookupOnlyTest, NeverInterns) {
  auto vocab = MakeVocabulary();
  vocab->Label("Person");
  vocab->Attr("conf");
  size_t labels = vocab->NumLabels(), attrs = vocab->NumAttrs(),
         values = vocab->NumValues();

  Vocabulary::LookupOnly view = vocab->lookup_only();
  SymbolId id = 0;
  EXPECT_TRUE(view.Label("Person", &id));
  EXPECT_EQ(view.LabelName(id), "Person");
  EXPECT_TRUE(view.Attr("conf", &id));
  EXPECT_FALSE(view.Label("Ghost", &id));
  EXPECT_FALSE(view.Attr("ghost_attr", &id));
  EXPECT_FALSE(view.Value("ghost_value", &id));

  // The misses above must not have interned anything.
  EXPECT_EQ(vocab->NumLabels(), labels);
  EXPECT_EQ(vocab->NumAttrs(), attrs);
  EXPECT_EQ(vocab->NumValues(), values);
}

}  // namespace
}  // namespace grepair
