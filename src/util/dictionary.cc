#include "util/dictionary.h"

#include <cassert>

namespace grepair {

Dictionary::Dictionary() {
  names_.emplace_back("");
  ids_.emplace("", 0);
}

SymbolId Dictionary::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

bool Dictionary::Lookup(std::string_view s, SymbolId* id) const {
  auto it = ids_.find(std::string(s));
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

const std::string& Dictionary::Name(SymbolId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace grepair
