// F8 — Repair distance: how close each method's repaired graph stays to the
// corrupted input, on small instances where the exact (branch-and-bound)
// strategy and exact A* GED are feasible. Expected shape:
// exact <= greedy <= naive in weighted repair cost; the exact engine's
// uniform cost equals the true graph edit distance (validating the
// journal-cost accounting end to end).
#include "bench_common.h"
#include "ged/ged.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  TableWriter t("F8: repair distance on small KG instances",
                {"seed", "errors", "naive_cost", "greedy_cost", "batch_cost",
                 "exact_cost", "ged(corrupt,exact_repair)"});

  double sum_naive = 0, sum_greedy = 0, sum_exact = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    KgOptions gopt;
    gopt.num_persons = 12;
    gopt.num_cities = 4;
    gopt.num_countries = 2;
    gopt.num_orgs = 2;
    gopt.avg_knows = 1.0;
    gopt.spouse_frac = 0.4;
    gopt.seed = seed;
    InjectOptions iopt;
    iopt.rate = 0.25;
    iopt.seed = seed * 101;
    iopt.redundant = false;  // keep instances tiny enough for exact GED
    DatasetBundle bundle = MustKgBundle(gopt, iopt);

    // Uniform costs across methods so distances are comparable with GED.
    RepairOptions uniform;
    uniform.confidence_attr.clear();

    MethodOutcome naive = MustRun(bundle, "naive", uniform);
    MethodOutcome greedy = MustRun(bundle, "greedy", uniform);
    MethodOutcome batch = MustRun(bundle, "batch", uniform);

    Graph exact_graph = bundle.graph.Clone();
    RepairOptions eopt = uniform;
    eopt.strategy = RepairStrategy::kExact;
    RepairEngine exact_engine(eopt);
    auto exact = exact_engine.Run(&exact_graph, bundle.rules);
    if (!exact.ok()) {
      std::fprintf(stderr, "exact failed: %s\n",
                   exact.status().ToString().c_str());
      return 1;
    }

    GedOptions gedo;
    gedo.max_expansions = 5'000'000;
    GedResult ged = ExactGed(bundle.graph, exact_graph, gedo);

    sum_naive += naive.repair.repair_cost;
    sum_greedy += greedy.repair.repair_cost;
    sum_exact += exact.value().repair_cost;

    t.AddRow({TableWriter::Int(int64_t(seed)),
              TableWriter::Int(int64_t(bundle.truth.errors.size())),
              TableWriter::Num(naive.repair.repair_cost, 2),
              TableWriter::Num(greedy.repair.repair_cost, 2),
              TableWriter::Num(batch.repair.repair_cost, 2),
              TableWriter::Num(exact.value().repair_cost, 2),
              ged.optimal ? TableWriter::Num(ged.distance, 2)
                          : (TableWriter::Num(ged.distance, 2) + "*")});
  }

  t.Print();
  std::printf("\ntotals: naive=%.1f greedy=%.1f exact=%.1f  "
              "(* = GED budget hit, value is an upper bound)\n",
              sum_naive, sum_greedy, sum_exact);
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
