// The property-graph store: a directed, labeled multigraph with symbolic
// attributes on nodes and edges, adjacency and label indexes, and a full
// mutation journal with undo. This is the substrate every other module
// (matcher, repair engine, baselines, benchmarks) runs on.
//
// Graph is the WRITE path. It also implements the GraphView read seam
// (graph_view.h) as a thin adapter over its live indexes, so read-only
// layers can run over either the live graph or an immutable GraphSnapshot
// (snapshot.h) interchangeably.
//
// Identity semantics: ids are never reused. Removing an element tombstones
// it; undoing the removal revives the same id. This keeps ground-truth
// bookkeeping and incremental match maintenance simple and exact.
#ifndef GREPAIR_GRAPH_GRAPH_H_
#define GREPAIR_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/edit_log.h"
#include "graph/graph_view.h"
#include "graph/vocabulary.h"
#include "util/status.h"

namespace grepair {

/// Directed labeled multigraph with journaled mutations.
class Graph : public GraphView {
 public:
  /// Creates an empty graph over the given shared vocabulary.
  explicit Graph(VocabularyPtr vocab);

  /// Copies duplicate everything INCLUDING the journal but start with the
  /// delta log disabled — a delta-log consumer watches one specific graph
  /// instance, never a copy.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Deep copy (shares the vocabulary, copies all elements and the journal
  /// boundary: the copy starts with an EMPTY journal so that repairs on the
  /// copy are costed relative to the copied state).
  Graph Clone() const;

  const VocabularyPtr& vocab() const override { return vocab_; }

  // --- Mutations (all journaled) --------------------------------------

  /// Adds a node with the given label; returns its id.
  NodeId AddNode(SymbolId label);
  /// Adds an edge; endpoints must be alive. Parallel edges are allowed.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, SymbolId label);
  /// Removes one edge.
  Status RemoveEdge(EdgeId e);
  /// Removes a node and (first) all incident edges, each journaled.
  Status RemoveNode(NodeId n);
  /// Relabels a node/edge. No-op (and no journal entry) if unchanged.
  Status SetNodeLabel(NodeId n, SymbolId label);
  Status SetEdgeLabel(EdgeId e, SymbolId label);
  /// Sets or erases (value==0) an attribute. No-op journal-wise if unchanged.
  Status SetNodeAttr(NodeId n, SymbolId attr, SymbolId value);
  Status SetEdgeAttr(EdgeId e, SymbolId attr, SymbolId value);

  /// Merges `gone` into `keep`: every edge incident to `gone` is re-created
  /// with the endpoint replaced by `keep` (skipping exact duplicates of
  /// existing `keep` edges and would-be self-loops that arise only from the
  /// merge), attributes of `gone` fill gaps in `keep`, then `gone` is
  /// removed. Journaled entirely via primitives, so undo works.
  Status MergeNodes(NodeId keep, NodeId gone);

  // --- Inspection (the GraphView read surface) -------------------------

  bool NodeAlive(NodeId n) const override {
    return n < nodes_.size() && nodes_[n].alive;
  }
  bool EdgeAlive(EdgeId e) const override {
    return e < edges_.size() && edges_[e].alive;
  }
  /// Number of alive nodes / edges.
  size_t NumNodes() const override { return num_alive_nodes_; }
  size_t NumEdges() const override { return num_alive_edges_; }
  /// Id-space upper bounds (alive or dead ids are all < these).
  size_t NodeIdBound() const override { return nodes_.size(); }
  size_t EdgeIdBound() const override { return edges_.size(); }

  SymbolId NodeLabel(NodeId n) const override { return nodes_[n].label; }
  SymbolId EdgeLabel(EdgeId e) const override { return edges_[e].label; }
  EdgeView Edge(EdgeId e) const override {
    return {e, edges_[e].src, edges_[e].dst, edges_[e].label};
  }
  SymbolId NodeAttr(NodeId n, SymbolId attr) const override {
    return nodes_[n].attrs.Get(attr);
  }
  SymbolId EdgeAttr(EdgeId e, SymbolId attr) const override {
    return edges_[e].attrs.Get(attr);
  }
  const AttrMap& NodeAttrs(NodeId n) const override {
    return nodes_[n].attrs;
  }
  const AttrMap& EdgeAttrs(EdgeId e) const override {
    return edges_[e].attrs;
  }

  /// Outgoing / incoming alive edge ids of an alive node.
  IdSpan OutEdges(NodeId n) const override {
    return {nodes_[n].out.data(), nodes_[n].out.size()};
  }
  IdSpan InEdges(NodeId n) const override {
    return {nodes_[n].in.data(), nodes_[n].in.size()};
  }

  /// First alive edge src-[label]->dst, or kInvalidEdge. label==0 matches
  /// any label.
  EdgeId FindEdge(NodeId src, NodeId dst, SymbolId label) const override;

  /// All alive node ids (ascending).
  std::vector<NodeId> Nodes() const override;
  /// All alive edge ids (ascending).
  std::vector<EdgeId> Edges() const override;
  /// Alive nodes carrying `label` (unordered). label==0 → all alive nodes.
  const std::unordered_set<NodeId>& NodesWithLabel(SymbolId label) const;
  /// Alive nodes whose attribute `attr` currently equals `value` (value!=0).
  /// Backed by an eagerly maintained index; used for attribute joins in
  /// duplicate-detection patterns.
  const std::unordered_set<NodeId>& NodesWithAttr(SymbolId attr,
                                                  SymbolId value) const;
  /// GraphView candidate collection: copies the hash indexes above into
  /// *out; returns false (unsorted).
  bool CollectNodesWithLabel(SymbolId label,
                             std::vector<NodeId>* out) const override;
  bool CollectNodesWithAttr(SymbolId attr, SymbolId value,
                            std::vector<NodeId>* out) const override;
  /// Count of alive nodes carrying `label`.
  size_t CountNodesWithLabel(SymbolId label) const override;
  /// Count of alive edges carrying `label`.
  size_t CountEdgesWithLabel(SymbolId label) const override;

  // --- Journal ---------------------------------------------------------

  /// Journal length; use as a mark for UndoTo/CostSince.
  size_t JournalSize() const { return log_.size(); }
  const std::vector<EditEntry>& Journal() const { return log_; }
  /// Reverts all mutations after `mark` (most recent first). `mark` must not
  /// exceed the current journal size.
  Status UndoTo(size_t mark);
  /// Weighted cost of journal entries since `mark`.
  double CostSince(size_t mark, const CostModel& model) const {
    return JournalCost(log_, mark, log_.size(), model);
  }
  /// Drops journal history (keeps the graph): future costs are relative to
  /// the current state. Used after error injection so repair cost doesn't
  /// include the injected corruption. The delta log (below) is untouched —
  /// no physical state changed.
  void ResetJournal() { log_.clear(); }

  // --- Delta log (incremental snapshot maintenance) ---------------------
  //
  // An opt-in, append-only stream of PHYSICAL mutation records: every
  // applied mutation appends its journal entry, and every mutation popped
  // by UndoTo appends the inverse record (InverseEntry), so replaying the
  // stream forward mirrors the live graph exactly — including the
  // adjacency-tail position of undo-revived edges, which the journal stack
  // alone cannot express (undo POPS entries; the order side effect of the
  // revival would be invisible to a journal-slice consumer).
  //
  // GraphSnapshot::Patch consumes slices of this stream to advance a
  // cached snapshot in O(delta) instead of an O(V+E) rebuild (the serving
  // commit path). Disabled by default: non-serving workloads (eval loops,
  // repair search with heavy undo) would pay the copy for nothing.

  /// Starts recording (idempotent). Records accumulate until trimmed.
  void EnableDeltaLog();
  bool DeltaLogEnabled() const { return delta_log_ != nullptr; }
  /// Sequence bounds of the retained records: [DeltaLogBegin, DeltaLogEnd).
  /// Sequences are monotone over the graph's lifetime; Trim only advances
  /// Begin. Both are 0 while disabled.
  uint64_t DeltaLogBegin() const;
  uint64_t DeltaLogEnd() const;
  /// The retained records with sequence >= `from` (caller must keep
  /// `from` within [Begin, End]), as a contiguous (pointer, count) pair
  /// valid until the next mutation or Trim.
  std::pair<const EditEntry*, size_t> DeltaLogSince(uint64_t from) const;
  /// Drops records with sequence < `upto` (consumer watermark).
  void TrimDeltaLog(uint64_t upto);

  // --- Whole-graph utilities -------------------------------------------

  /// Order-independent content hash: equal graphs (same alive ids, labels,
  /// attrs, edges) hash equal. Used by tests and the oscillation guard.
  uint64_t Fingerprint() const;

  /// Structural equality on alive content (ids must match; this is identity
  /// equality, which is what undo/clone tests need).
  bool ContentEquals(const Graph& other) const;

  /// Human-readable one-line summary.
  std::string DebugSummary() const;

 private:
  struct NodeRec {
    SymbolId label = 0;
    bool alive = false;
    AttrMap attrs;
    std::vector<EdgeId> out;
    std::vector<EdgeId> in;
  };
  struct EdgeRec {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    SymbolId label = 0;
    bool alive = false;
    AttrMap attrs;
  };

  // Appends to the journal (and mirrors into the delta log when enabled).
  // Every mutation routes its EditEntry through here.
  void Journal(EditEntry entry);

  // Raw (non-journaling) helpers shared by mutations and undo.
  void LinkEdge(EdgeId e);
  void UnlinkEdge(EdgeId e);
  void IndexNode(NodeId n);
  void UnindexNode(NodeId n);
  void IndexNodeAttr(NodeId n, SymbolId attr, SymbolId value);
  void UnindexNodeAttr(NodeId n, SymbolId attr, SymbolId value);
  Status UndoEntry(const EditEntry& e);

  static uint64_t AttrKey(SymbolId attr, SymbolId value) {
    return (static_cast<uint64_t>(attr) << 32) | value;
  }

  // Retained delta-log records plus the sequence of the first one. Heap
  // allocated so an (uncommon) enabled log doesn't grow every Graph, and so
  // Clone() naturally starts clones with the log disabled.
  struct DeltaLog {
    uint64_t base = 0;
    std::vector<EditEntry> records;
  };

  VocabularyPtr vocab_;
  std::vector<NodeRec> nodes_;
  std::vector<EdgeRec> edges_;
  std::vector<EditEntry> log_;
  std::unique_ptr<DeltaLog> delta_log_;
  size_t num_alive_nodes_ = 0;
  size_t num_alive_edges_ = 0;
  // label -> alive nodes with that label; key 0 holds ALL alive nodes.
  mutable std::unordered_map<SymbolId, std::unordered_set<NodeId>> label_index_;
  // (attr<<32|value) -> alive nodes with that attribute value.
  mutable std::unordered_map<uint64_t, std::unordered_set<NodeId>> attr_index_;
};

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GRAPH_H_
