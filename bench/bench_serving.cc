// S1 — Serving throughput: a RepairService under a stream of random edits,
// swept over batch size × worker threads on a clean repaired knowledge
// graph. Reports per-batch commit latency (p50/p95 from ServiceStats) and
// edit throughput; results are bit-identical across thread counts (asserted
// in tests/test_serve.cc), so the sweep measures pure wall-clock. Each row
// is also emitted as a self-describing JSON line (see PrintBenchHeader).
#include "bench_common.h"

#include "serve/repair_service.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

// The same domain-agnostic edit generator the serve tests use: mutate a
// scratch clone, feed the journal slice to the service as ops.
std::vector<EditEntry> MakeBatch(Graph* scratch, Rng* rng, size_t n) {
  size_t mark = scratch->JournalSize();
  std::vector<NodeId> nodes = scratch->Nodes();
  std::vector<SymbolId> nlabels, elabels;
  for (NodeId node : nodes) nlabels.push_back(scratch->NodeLabel(node));
  for (EdgeId e : scratch->Edges()) elabels.push_back(scratch->EdgeLabel(e));
  for (size_t k = 0; k < n; ++k) {
    switch (rng->NextBounded(4)) {
      case 0: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        NodeId b = nodes[rng->PickIndex(nodes)];
        if (scratch->NodeAlive(a) && scratch->NodeAlive(b) && a != b)
          scratch->AddEdge(a, b, elabels[rng->PickIndex(elabels)]);
        break;
      }
      case 1: {
        std::vector<EdgeId> cur = scratch->Edges();
        if (!cur.empty()) scratch->RemoveEdge(cur[rng->PickIndex(cur)]);
        break;
      }
      case 2: {
        scratch->AddNode(nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      default: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        if (scratch->NodeAlive(a))
          scratch->SetNodeLabel(a, nlabels[rng->PickIndex(nlabels)]);
        break;
      }
    }
  }
  return std::vector<EditEntry>(scratch->Journal().begin() + mark,
                                scratch->Journal().end());
}

}  // namespace

int main() {
  PrintBenchHeader("S1: serving throughput vs batch size x threads (KG)",
                   std::string("\"snapshot_read_path\":") +
                       (kSnapshotDetectReads ? "true" : "false"));
  TableWriter t("S1: commit latency / edit throughput (KG, 2000 persons)",
                {"batch_size", "threads", "batches", "edits", "fixes",
                 "p50_ms", "p95_ms", "edits_per_s"});

  KgOptions gopt;
  gopt.num_persons = 2000;
  gopt.num_cities = 200;
  gopt.num_countries = 10;
  gopt.num_orgs = 130;
  InjectOptions iopt;
  iopt.rate = 0.05;
  DatasetBundle bundle = MustKgBundle(gopt, iopt);
  // Serve from a clean state: repair the injected corruption first.
  {
    RepairEngine engine;
    auto res = engine.Run(&bundle.graph, bundle.rules);
    if (!res.ok() || res.value().remaining_violations != 0) {
      std::fprintf(stderr, "initial repair failed\n");
      return 1;
    }
  }

  const size_t kTotalEdits = 192;
  const size_t kBatchSizes[] = {1, 8, 64};
  const size_t kThreads[] = {1, 2, 4, 8};
  for (size_t batch_size : kBatchSizes) {
    for (size_t threads : kThreads) {
      ServeOptions sopt;
      sopt.num_threads = threads;
      sopt.shard_min_anchors = 2;  // fan out everything but single anchors
      RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
      Graph scratch = bundle.graph.Clone();
      Rng rng(17);  // same stream for every (batch size, threads) cell

      Timer wall;
      for (size_t done = 0; done < kTotalEdits; done += batch_size) {
        std::vector<EditEntry> ops = MakeBatch(&scratch, &rng, batch_size);
        auto r = service.ApplyBatch(ops);
        if (!r.ok()) {
          std::fprintf(stderr, "batch failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        // Keep the edit generator aligned with the repaired graph.
        scratch = service.graph().Clone();
      }
      double total_s = wall.ElapsedMs() / 1000.0;

      const ServiceStats& s = service.stats();
      double p50 = s.LatencyPercentileMs(50), p95 = s.LatencyPercentileMs(95);
      double eps = total_s > 0 ? static_cast<double>(s.edits) / total_s : 0;
      std::printf("{\"batch_size\":%zu,\"threads\":%zu,\"batches\":%zu,"
                  "\"edits\":%zu,\"fixes\":%zu,\"p50_ms\":%.3f,"
                  "\"p95_ms\":%.3f,\"edits_per_s\":%.1f,"
                  "\"snapshot_batches\":%zu}\n",
                  batch_size, threads, s.batches, s.edits,
                  s.violations_repaired, p50, p95, eps, s.snapshot_batches);
      t.AddRow({TableWriter::Int(int64_t(batch_size)),
                TableWriter::Int(int64_t(threads)),
                TableWriter::Int(int64_t(s.batches)),
                TableWriter::Int(int64_t(s.edits)),
                TableWriter::Int(int64_t(s.violations_repaired)),
                TableWriter::Num(p50, 3), TableWriter::Num(p95, 3),
                TableWriter::Num(eps, 1)});
    }
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
