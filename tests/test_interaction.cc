// Fix-interaction / scope-analysis tests for the batch strategy.
#include <gtest/gtest.h>

#include "grr/rule_builder.h"
#include "match/matcher.h"
#include "repair/interaction.h"

namespace grepair {
namespace {

class InteractionTest : public ::testing::Test {
 protected:
  InteractionTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    a_ = vocab_->Label("A");
    l_ = vocab_->Label("l");
  }

  Rule DelEdgeRule() {
    RuleBuilder b(vocab_.get(), "del_e", ErrorClass::kConflict);
    VarId x = b.Node("x", "A"), y = b.Node("y", "A");
    size_t e = b.Edge(x, y, "l");
    b.ActionDelEdge(e);
    return std::move(b).Build();
  }

  Rule DelNodeRule() {
    RuleBuilder b(vocab_.get(), "del_n", ErrorClass::kRedundant);
    b.Node("x", "A");
    b.ActionDelNode(0);
    return std::move(b).Build();
  }

  Match MatchAt(const Rule& r, std::vector<std::pair<VarId, NodeId>> anchors) {
    MatchOptions opts;
    opts.node_anchors = std::move(anchors);
    auto ms = Matcher(g_, r.pattern()).CollectWith(opts);
    EXPECT_FALSE(ms.empty());
    return ms.empty() ? Match{} : ms[0];
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId a_, l_;
};

TEST_F(InteractionTest, DisjointEdgeDeletionsIndependent) {
  NodeId n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  NodeId n3 = g_.AddNode(a_), n4 = g_.AddNode(a_);
  g_.AddEdge(n1, n2, l_);
  g_.AddEdge(n3, n4, l_);
  Rule r = DelEdgeRule();
  FixScope s1 = ComputeScope(g_, r, MatchAt(r, {{0, n1}}));
  FixScope s2 = ComputeScope(g_, r, MatchAt(r, {{0, n3}}));
  EXPECT_FALSE(ScopesConflict(s1, s2));
}

TEST_F(InteractionTest, SharedEdgeConflicts) {
  NodeId n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  g_.AddEdge(n1, n2, l_);
  Rule r = DelEdgeRule();
  Match m = MatchAt(r, {{0, n1}});
  FixScope s1 = ComputeScope(g_, r, m);
  FixScope s2 = ComputeScope(g_, r, m);
  EXPECT_TRUE(ScopesConflict(s1, s2));
}

TEST_F(InteractionTest, NodeDeletionConflictsWithTouchingEdgeFix) {
  NodeId n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  g_.AddEdge(n1, n2, l_);
  Rule del_edge = DelEdgeRule();
  Rule del_node = DelNodeRule();
  FixScope se = ComputeScope(g_, del_edge, MatchAt(del_edge, {{0, n1}}));
  FixScope sn = ComputeScope(g_, del_node, MatchAt(del_node, {{0, n2}}));
  // Deleting n2 cascades the edge the other fix reads.
  EXPECT_TRUE(ScopesConflict(se, sn));
}

TEST_F(InteractionTest, ReadReadDoesNotConflict) {
  NodeId n1 = g_.AddNode(a_), n2 = g_.AddNode(a_), n3 = g_.AddNode(a_);
  g_.AddEdge(n1, n2, l_);
  g_.AddEdge(n2, n3, l_);
  Rule r = DelEdgeRule();
  // Fix 1 deletes edge n1->n2 (writes it, reads n1,n2).
  // Fix 2 deletes edge n2->n3 (writes it, reads n2,n3).
  // Shared n2 is read by both but written by neither -> independent.
  FixScope s1 = ComputeScope(g_, r, MatchAt(r, {{0, n1}, {1, n2}}));
  FixScope s2 = ComputeScope(g_, r, MatchAt(r, {{0, n2}, {1, n3}}));
  EXPECT_FALSE(ScopesConflict(s1, s2));
}

TEST_F(InteractionTest, SelectIndependentGreedy) {
  NodeId n1 = g_.AddNode(a_), n2 = g_.AddNode(a_);
  NodeId n3 = g_.AddNode(a_), n4 = g_.AddNode(a_);
  g_.AddEdge(n1, n2, l_);
  g_.AddEdge(n3, n4, l_);
  Rule r = DelEdgeRule();
  Match m1 = MatchAt(r, {{0, n1}});
  Match m2 = MatchAt(r, {{0, n3}});
  std::vector<FixScope> scopes = {
      ComputeScope(g_, r, m1),  // 0
      ComputeScope(g_, r, m1),  // 1: duplicate of 0 -> conflicts
      ComputeScope(g_, r, m2),  // 2: independent
  };
  auto chosen = SelectIndependent(scopes);
  EXPECT_EQ(chosen, (std::vector<size_t>{0, 2}));
}

TEST_F(InteractionTest, MergeScopeCoversBothNeighborhoods) {
  NodeId keep = g_.AddNode(a_), gone = g_.AddNode(a_), other = g_.AddNode(a_);
  g_.AddEdge(gone, other, l_);
  RuleBuilder b(vocab_.get(), "merge", ErrorClass::kRedundant);
  VarId x = b.Node("x", "A"), y = b.Node("y", "A");
  b.ActionMerge(x, y);
  Rule r = std::move(b).Build();
  MatchOptions opts;
  opts.node_anchors = {{0u, keep}, {1u, gone}};
  auto ms = Matcher(g_, r.pattern()).CollectWith(opts);
  ASSERT_FALSE(ms.empty());
  FixScope s = ComputeScope(g_, r, ms[0]);
  // The edge gone->other is rewired: it must be in the write set.
  EXPECT_NE(std::find(s.write_edges.begin(), s.write_edges.end(), 0u),
            s.write_edges.end());
  // `other` is in the read set (its adjacency changes).
  EXPECT_NE(std::find(s.read_nodes.begin(), s.read_nodes.end(), other),
            s.read_nodes.end());
}

}  // namespace
}  // namespace grepair
