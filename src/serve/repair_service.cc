#include "serve/repair_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "match/incremental.h"
#include "obs/trace.h"
#include "repair/fix.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "util/strings.h"

namespace grepair {

double ServiceStats::LatencyPercentileMs(double p) const {
  if (batch_ms.empty()) return 0.0;  // no commits in the window yet
  if (std::isnan(p)) return 0.0;     // garbage percentile, not UB
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank over the retained window. The ring is UNORDERED once it
  // wraps (newest overwrites oldest in place), so selection must not
  // assume arrival order carries rank: rank-select on a scratch copy.
  // rank = ceil(p/100 * n) clamped to [1, n]; p = 0 maps to the minimum
  // (rank 1), p = 100 to the maximum (rank n).
  std::vector<double> scratch = batch_ms;
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 *
                                              static_cast<double>(
                                                  scratch.size())));
  rank = std::max<size_t>(1, std::min(rank, scratch.size()));
  std::nth_element(scratch.begin(), scratch.begin() + (rank - 1),
                   scratch.end());
  return scratch[rank - 1];
}

Status ServeOptions::Validate() const {
  // NaN fails both comparisons' complement, so spell the accept range out.
  if (!(snapshot_rebuild_fraction >= 0.0 &&
        snapshot_rebuild_fraction <= 1.0))
    return Status::InvalidArgument(
        "snapshot_rebuild_fraction must be in [0, 1]");
  if (num_shards > ShardedSnapshot::kMaxShards)
    return Status::InvalidArgument(
        StrFormat("num_shards must be at most %zu",
                  ShardedSnapshot::kMaxShards));
  // size_t cannot be negative, but a "-1" that slipped through an unsigned
  // parse becomes an absurd count — reject it rather than spawning it.
  constexpr size_t kMaxThreads = 4096;
  if (num_threads > kMaxThreads)
    return Status::InvalidArgument(
        StrFormat("num_threads must be at most %zu", kMaxThreads));
  if (max_read_threads > kMaxThreads)
    return Status::InvalidArgument(
        StrFormat("max_read_threads must be at most %zu (0 = unlimited)",
                  kMaxThreads));
  if (listen_port < -1 || listen_port > 65535)
    return Status::InvalidArgument(
        "listen_port must be in [0, 65535] (-1 = stdio)");
  // A cap of 0 would reject every client of a listener that was asked for;
  // the upper bound keeps a mistyped value from exhausting fds/threads.
  constexpr size_t kMaxConnectionCap = 65536;
  if (max_connections == 0 || max_connections > kMaxConnectionCap)
    return Status::InvalidArgument(
        StrFormat("max_connections must be in [1, %zu]", kMaxConnectionCap));
  if (!(max_requests_per_sec >= 0.0 && max_requests_per_sec <= 1e9))
    return Status::InvalidArgument(
        "max_requests_per_sec must be in [0, 1e9] (0 = unlimited)");
  return Status::Ok();
}

RepairService::RepairService(Graph graph, RuleSet rules, ServeOptions options)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      rules_(std::move(rules)),
      clean_mark_(graph_.JournalSize()),
      publisher_(options_.publish_snapshots) {
  Status valid = options_.Validate();
  if (!valid.ok()) throw std::invalid_argument(valid.ToString());

  // Resolve the instrument handles once; every former stats_ field
  // increment now lands on one of these (DESIGN.md "Observability" has the
  // naming scheme). Registration order fixes nothing — exposition sorts by
  // name — but keep it grouped for readers.
  m_batches_ = registry_.GetCounter("grepair_serve_batches_total",
                                    "Committed batches.");
  m_edits_ = registry_.GetCounter("grepair_serve_edits_total",
                                  "Edit ops accepted into the journal.");
  m_op_errors_ = registry_.GetCounter(
      "grepair_serve_op_errors_total",
      "Edit ops rejected (dead ids, bad endpoints).");
  m_violations_detected_ = registry_.GetCounter(
      "grepair_serve_violations_detected_total",
      "Violations newly seeded by batch delta-detection.");
  m_fixes_ = registry_.GetCounter("grepair_serve_fixes_total",
                                  "Cascade fixes applied.");
  m_anchors_ = registry_.GetCounter(
      "grepair_serve_anchors_total",
      "Node + edge anchors induced by committed deltas.");
  m_expansions_ = registry_.GetCounter(
      "grepair_serve_expansions_total",
      "Matcher expansions spent on detection and cascades.");
  m_snapshot_batches_ = registry_.GetCounter(
      "grepair_snapshot_batches_total",
      "Commits whose seed pass read a snapshot instead of the live graph.");
  m_shard_patches_ = registry_.GetCounter(
      "grepair_shard_patches_total",
      "Store shards advanced by an O(delta) patch.");
  m_shard_rebuilds_ = registry_.GetCounter(
      "grepair_shard_rebuilds_total",
      "Store shards rebuilt from scratch (dirty-shard-only economics).");
  m_wal_appends_ = registry_.GetCounter(
      "grepair_wal_appends_total", "Batches appended to the write-ahead log.");
  m_wal_bytes_ = registry_.GetCounter(
      "grepair_wal_bytes_total", "Bytes appended to the WAL, frames included.");
  m_wal_syncs_ = registry_.GetCounter(
      "grepair_wal_syncs_total", "fsyncs issued by the WAL writer.");
  m_wal_append_errors_ = registry_.GetCounter(
      "grepair_wal_append_errors_total",
      "Failed WAL appends; each one rolls the batch back and degrades the "
      "service to read-only.");
  m_checkpoints_ = registry_.GetCounter(
      "grepair_checkpoints_total",
      "Checkpoints written (cadence and baseline).");
  m_checkpoint_errors_ = registry_.GetCounter(
      "grepair_checkpoint_errors_total",
      "Checkpoint attempts that failed (the service degrades to read-only).");
  m_recovery_replayed_ = registry_.GetCounter(
      "grepair_recovery_replayed_batches_total",
      "Complete WAL batches re-committed during startup recovery.");
  m_recovery_truncated_bytes_ = registry_.GetCounter(
      "grepair_recovery_truncated_bytes_total",
      "Torn/corrupt WAL tail bytes truncated during startup recovery.");
  m_recovery_dropped_ = registry_.GetCounter(
      "grepair_recovery_dropped_batches_total",
      "Complete WAL batches dropped after a sequence gap during recovery.");
  m_recovery_corrupt_ckpts_ = registry_.GetCounter(
      "grepair_recovery_corrupt_checkpoints_total",
      "Checkpoints that failed validation and were quarantined.");
  m_read_only_ = registry_.GetGauge(
      "grepair_serve_read_only",
      "1 after a storage failure degraded the service to read-only.");
  m_last_checkpoint_seq_ = registry_.GetGauge(
      "grepair_last_checkpoint_seq",
      "Batch seq covered by the newest checkpoint.");
  m_backlog_ = registry_.GetGauge(
      "grepair_serve_backlog",
      "Violations waiting in the persistent store after the last commit.");
  m_snapshot_mem_ = registry_.GetGauge(
      "grepair_snapshot_memory_bytes",
      "Heap footprint of the cached read snapshot (0 when none).");
  m_published_reads_ = registry_.GetCounter(
      "grepair_serve_published_reads_total",
      "detect/violations requests served lock-free from a published "
      "snapshot generation.");
  m_stale_reads_ = registry_.GetCounter(
      "grepair_serve_stale_reads_total",
      "Read requests refused before pinning a generation (publishing "
      "disabled, nothing published yet, unknown rule, or shed by the "
      "max_read_threads gate).");
  m_published_generation_ = registry_.GetGauge(
      "grepair_serve_published_generation",
      "Generation number of the snapshot readers currently pin (0 before "
      "the first publication).");
  m_commit_ms_ = registry_.GetHistogram(
      "grepair_serve_commit_ms", "Whole-commit latency (detect + cascades).",
      obs::DefaultLatencyBucketsMs());
  m_detect_ms_ = registry_.GetHistogram(
      "grepair_serve_detect_ms",
      "Seed detection latency (snapshot acquisition included).",
      obs::DefaultLatencyBucketsMs());
  m_acquire_patch_ms_ = registry_.GetHistogram(
      "grepair_snapshot_acquire_ms",
      "Snapshot acquisition latency by path; counts are the patch/rebuild "
      "ledger.",
      obs::DefaultLatencyBucketsMs(), {{"path", "patch"}});
  m_acquire_rebuild_ms_ = registry_.GetHistogram(
      "grepair_snapshot_acquire_ms",
      "Snapshot acquisition latency by path; counts are the patch/rebuild "
      "ledger.",
      obs::DefaultLatencyBucketsMs(), {{"path", "rebuild"}});
  m_publish_ms_ = registry_.GetHistogram(
      "grepair_serve_publish_ms",
      "Generation publication latency (slot advance + backlog copy + "
      "pointer flip); count is the publication ledger.",
      obs::DefaultLatencyBucketsMs());
  m_read_ms_ = registry_.GetHistogram(
      "grepair_serve_read_ms",
      "Published read latency (detect / violations verbs).",
      obs::DefaultLatencyBucketsMs());
  if (options_.num_threads != 1)
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  // Record physical deltas for incremental snapshot maintenance — kept by
  // any service that reads snapshots: one whose pool can fan out, or one
  // that publishes generations (even single-threaded). A 1-thread
  // non-publishing service pays no record copies and keeps num_shards_ at
  // 1, since no snapshot ever exists to shard.
  if (pool_ != nullptr) {
    num_shards_ = options_.num_shards == 0 ? pool_->NumThreads()
                                           : options_.num_shards;
    num_shards_ = std::min(num_shards_, ShardedSnapshot::kMaxShards);
  }
  if (pool_ != nullptr || publisher_.enabled()) graph_.EnableDeltaLog();
  // Eager first publication: readers can pin the constructed state before
  // any batch commits, and the spare slot economics of the seed pass stay
  // exactly as they were pre-publication (the FIRST seed acquisition still
  // finds an empty slot and builds it; this construction build counts only
  // in the publication instruments).
  if (publisher_.enabled()) PublishGeneration(0);
}

storage::Fs* RepairService::StateFs() const {
  return options_.wal_fs != nullptr ? options_.wal_fs
                                    : storage::RealFs::Default();
}

uint64_t RepairService::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RepairService::EnterReadOnly(const std::string& why) {
  if (read_only_) return;
  read_only_ = true;
  m_read_only_->Set(1);
  std::fprintf(stderr, "grepair: service entering read-only mode: %s\n",
               why.c_str());
}

void RepairService::SyncWalInstruments() {
  if (wal_ == nullptr) return;
  m_wal_appends_->Add(wal_->appends() - seen_wal_appends_);
  m_wal_bytes_->Add(wal_->bytes_appended() - seen_wal_bytes_);
  m_wal_syncs_->Add(wal_->syncs() - seen_wal_syncs_);
  seen_wal_appends_ = wal_->appends();
  seen_wal_bytes_ = wal_->bytes_appended();
  seen_wal_syncs_ = wal_->syncs();
}

ParallelRunner RepairService::ShardRunner() const {
  if (pool_ == nullptr || pool_->NumThreads() <= 1) return {};
  return [this](size_t n, const std::function<void(size_t)>& fn) {
    pool_->ParallelFor(n, fn);
  };
}

bool RepairService::PatchWithinBudget(const GraphSnapshot& snap,
                                      uint64_t pending) const {
  const double budget =
      options_.snapshot_rebuild_fraction *
      static_cast<double>(std::max<size_t>(graph_.NumEdges(), 64));
  return static_cast<double>(pending + snap.PatchedEdits()) <= budget;
}

RepairService::SlotAdvance RepairService::AdvanceSlot(
    serve::Generation* slot) {
  obs::Stopwatch t;
  SlotAdvance out;
  const uint64_t log_end = graph_.DeltaLogEnd();
  // Already current (typical for the publication advance of a cascade-free
  // commit right after its own seed advance): nothing to patch, and the
  // plans compiled against it still hold.
  if (slot->has_store() && slot->watermark == log_end &&
      slot->watermark >= graph_.DeltaLogBegin()) {
    out.patched = true;
    out.ms = t.ElapsedMs();
    return out;
  }
  // The slot's contents change, so cached match plans must revalidate
  // their variable orders against the new cardinalities.
  ++plan_generation_;
  // A slot whose pending slice was trimmed off the delta log (it forfeited
  // its claim in TrimConsumedDeltaLog) can no longer be patched.
  const bool stale =
      slot->has_store() && slot->watermark < graph_.DeltaLogBegin();
  if (num_shards_ > 1) {
    // Sharded store: the patch-or-rebuild decision moves inside
    // ShardedSnapshot::Advance and becomes PER SHARD — clean shards are
    // untouched, lightly dirty shards patch, and a shard past its own
    // fraction rebuilds alone (~1/S of a monolithic rebuild), all fanned
    // out over the pool. The whole advance counts as a patch only when no
    // shard had to rebuild.
    if (!options_.incremental_snapshots || slot->sharded == nullptr ||
        stale) {
      slot->mono.reset();
      slot->sharded = std::make_unique<ShardedSnapshot>(graph_, num_shards_,
                                                        ShardRunner());
      out.shards_rebuilt = num_shards_;
    } else {
      auto [records, count] = graph_.DeltaLogSince(slot->watermark);
      ShardedSnapshot::AdvanceStats adv =
          slot->sharded->Advance(graph_, records, count,
                                 options_.snapshot_rebuild_fraction,
                                 ShardRunner());
      out.shards_patched = adv.shards_patched;
      out.shards_rebuilt = adv.shards_rebuilt;
      out.patched = adv.shards_rebuilt == 0;
    }
  } else if (options_.incremental_snapshots && !stale &&
             slot->mono != nullptr &&
             PatchWithinBudget(*slot->mono, log_end - slot->watermark)) {
    auto [records, count] = graph_.DeltaLogSince(slot->watermark);
    slot->mono->Patch(records, count);
    out.patched = true;
  } else {
    slot->sharded.reset();
    slot->mono = std::make_unique<GraphSnapshot>(graph_);
  }
  slot->watermark = log_end;
  out.ms = t.ElapsedMs();
  return out;
}

const GraphView& RepairService::AcquireSnapshot(BatchResult* res) {
  OBS_SPAN("commit.snapshot");
  serve::Generation* slot = publisher_.Writable();
  SlotAdvance adv = AdvanceSlot(slot);
  m_shard_patches_->Add(adv.shards_patched);
  m_shard_rebuilds_->Add(adv.shards_rebuilt);
  if (adv.patched) {
    res->snapshot_patched = true;
    m_acquire_patch_ms_->Observe(adv.ms);
  } else {
    m_acquire_rebuild_ms_->Observe(adv.ms);
  }
  res->snapshot_ms = adv.ms;
  TrimConsumedDeltaLog();
  return *slot->view();
}

void RepairService::PublishGeneration(uint64_t batch) {
  if (!publisher_.enabled()) return;
  OBS_SPAN("commit.publish");
  obs::Stopwatch t;
  serve::Generation* slot = publisher_.Writable();
  AdvanceSlot(slot);  // bring it past the cascade fixes (publish-side cost)
  // Deterministic backlog page source: the SaveState sort order, so two
  // replicas at the same batch page identically.
  std::vector<Violation> backlog = store_.Snapshot();
  std::sort(backlog.begin(), backlog.end(),
            [](const Violation& a, const Violation& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.alternatives.front().nodes != b.alternatives.front().nodes)
                return a.alternatives.front().nodes <
                       b.alternatives.front().nodes;
              return a.alternatives.front().edges <
                     b.alternatives.front().edges;
            });
  publisher_.Publish(batch, std::move(backlog));
  m_published_generation_->Set(
      static_cast<int64_t>(publisher_.CurrentGeneration()));
  TrimConsumedDeltaLog();
  m_publish_ms_->Observe(t.ElapsedMs());
}

void RepairService::TrimConsumedDeltaLog() {
  const uint64_t log_begin = graph_.DeltaLogBegin();
  const uint64_t log_end = graph_.DeltaLogEnd();
  if (publisher_.enabled()) {
    // Publishing keeps BOTH slots advancing — every commit moves the
    // writable slot to log_end at publication, so the laggard (the slot
    // retired by the previous publish) is at most one batch behind. Keep
    // records back to the oldest valid watermark and let AdvanceSlot's own
    // budget checks decide patch vs rebuild when they are consumed; growth
    // is structurally bounded at ~2 batches of records. A slot from an
    // older epoch (or already trimmed past) holds no claim.
    uint64_t keep_from = log_end;
    publisher_.ForEachSlot([&](const serve::Generation& s) {
      if (!s.has_store()) return;
      if (s.epoch != publisher_.current_epoch()) return;
      if (s.watermark < log_begin || s.watermark > log_end) return;
      keep_from = std::min(keep_from, s.watermark);
    });
    graph_.TrimDeltaLog(keep_from);
    return;
  }
  if (pool_ == nullptr) return;  // no delta log without a snapshot consumer
  // Non-publishing pool service: ONE private slot, advanced only when a
  // commit fans out. Between fan-outs records accumulate, so reproduce the
  // historical CapDeltaLogGrowth economics: keep them only while the store
  // could still patch them cheaper than the rebuild it would otherwise
  // get; past the budget drop the store AND the records (nobody reads the
  // slot — publication is off).
  serve::Generation* slot = publisher_.Writable();
  if (slot->has_store() && slot->epoch == publisher_.current_epoch() &&
      slot->watermark >= log_begin && slot->watermark <= log_end) {
    const uint64_t pending = log_end - slot->watermark;
    bool keep = true;
    if (pending > 0) {
      const uint64_t patched = slot->sharded != nullptr
                                   ? slot->sharded->PatchedEdits()
                                   : slot->mono->PatchedEdits();
      // Aggregate bound for the sharded store: per-shard budgets sum to
      // roughly fraction * |E|, the same gate the monolithic path uses.
      keep = static_cast<double>(pending + patched) <=
             options_.snapshot_rebuild_fraction *
                 static_cast<double>(std::max<size_t>(graph_.NumEdges(), 64));
    }
    if (keep) {
      graph_.TrimDeltaLog(slot->watermark);
      return;
    }
    slot->mono.reset();
    slot->sharded.reset();
    slot->watermark = log_end;
  }
  graph_.TrimDeltaLog(log_end);
}

const ServiceStats& RepairService::stats() const {
  // Materialize the view from the registry instruments — the counters ARE
  // the bookkeeping now; this struct is how callers that predate the
  // registry (tests, the stats verb) keep reading them.
  ServiceStats& s = stats_view_;
  s.batches = m_batches_->Value();
  s.edits = m_edits_->Value();
  s.op_errors = m_op_errors_->Value();
  s.violations_detected = m_violations_detected_->Value();
  s.violations_repaired = m_fixes_->Value();
  s.anchors_visited = m_anchors_->Value();
  s.expansions = m_expansions_->Value();
  s.snapshot_batches = m_snapshot_batches_->Value();
  s.snapshot_patches = m_acquire_patch_ms_->Count();
  s.snapshot_rebuilds = m_acquire_rebuild_ms_->Count();
  s.snapshot_patch_ms = m_acquire_patch_ms_->Sum();
  s.snapshot_rebuild_ms = m_acquire_rebuild_ms_->Sum();
  s.shard_patches = m_shard_patches_->Value();
  s.shard_rebuilds = m_shard_rebuilds_->Value();
  s.read_only = read_only_;
  s.wal_appends = m_wal_appends_->Value();
  s.wal_bytes = m_wal_bytes_->Value();
  s.wal_syncs = m_wal_syncs_->Value();
  s.wal_append_errors = m_wal_append_errors_->Value();
  s.checkpoints = m_checkpoints_->Value();
  s.last_checkpoint_seq =
      static_cast<size_t>(m_last_checkpoint_seq_->Value());
  s.recovery_replayed_batches = m_recovery_replayed_->Value();
  s.batch_ms = latency_ring_;
  s.published_generation =
      static_cast<size_t>(publisher_.CurrentGeneration());
  s.publishes = m_publish_ms_->Count();
  s.publish_ms = m_publish_ms_->Sum();
  s.published_reads = m_published_reads_->Value();
  s.stale_reads = m_stale_reads_->Value();
  // Lazily priced: MemoryBytes walks every attribute map, which must not
  // ride the per-commit hot path AcquireSnapshot just took off it. Rolls
  // up across the publisher's slots (and their shards when the store is
  // sharded). The gauge keeps the Prometheus exposition in step with the
  // view.
  s.snapshot_memory_bytes = publisher_.MemoryBytes();
  m_snapshot_mem_->Set(static_cast<int64_t>(s.snapshot_memory_bytes));
  return s;
}

SymbolId RepairService::ConfAttr() const {
  // Lookup-only, never Intern: detection runs on pool threads reading the
  // vocabulary concurrently (see RepairEngine::ConfAttr).
  if (options_.confidence_attr.empty()) return 0;
  SymbolId id;
  if (!graph_.vocab()->lookup_only().Attr(options_.confidence_attr, &id))
    return 0;
  return id;
}

Result<EditApplied> RepairService::ApplyEdit(const EditEntry& op) {
  OBS_SPAN("serve.edit");
  if (read_only_)
    return Status::IoError(
        "service is read-only after a storage failure; restart to recover");
  EditApplied out;
  Status st;
  switch (op.kind) {
    case EditKind::kAddNode:
      out.node = graph_.AddNode(op.label);
      break;
    case EditKind::kRemoveNode:
      st = graph_.RemoveNode(op.node);
      break;
    case EditKind::kAddEdge: {
      auto added = graph_.AddEdge(op.src, op.dst, op.label);
      if (!added.ok()) {
        st = added.status();
        break;
      }
      out.edge = added.value();
      break;
    }
    case EditKind::kRemoveEdge:
      st = graph_.RemoveEdge(op.edge);
      break;
    case EditKind::kSetNodeLabel:
      st = graph_.SetNodeLabel(op.node, op.new_sym);
      break;
    case EditKind::kSetEdgeLabel:
      st = graph_.SetEdgeLabel(op.edge, op.new_sym);
      break;
    case EditKind::kSetNodeAttr:
      st = graph_.SetNodeAttr(op.node, op.attr, op.new_sym);
      break;
    case EditKind::kSetEdgeAttr:
      st = graph_.SetEdgeAttr(op.edge, op.attr, op.new_sym);
      break;
  }
  if (!st.ok()) {
    m_op_errors_->Add(1);
    return st;
  }
  m_edits_->Add(1);
  return out;
}

Status RepairService::AppendBatchToWal(uint64_t seq) {
  OBS_SPAN("commit.wal");
  storage::WalBatch b;
  b.seq = seq;
  // Symbols interned since the last append (by session parsing, ahead of
  // the edits that reference them) ride along so replay can re-intern them
  // at identical ids — WAL records store raw SymbolIds.
  const Vocabulary& v = *graph_.vocab();
  for (size_t i = logged_labels_; i < v.NumLabels(); ++i)
    b.symbols.push_back(
        {0, static_cast<uint32_t>(i), v.LabelName(static_cast<SymbolId>(i))});
  for (size_t i = logged_attrs_; i < v.NumAttrs(); ++i)
    b.symbols.push_back(
        {1, static_cast<uint32_t>(i), v.AttrName(static_cast<SymbolId>(i))});
  for (size_t i = logged_values_; i < v.NumValues(); ++i)
    b.symbols.push_back(
        {2, static_cast<uint32_t>(i), v.ValueName(static_cast<SymbolId>(i))});
  b.records.assign(graph_.Journal().begin() + clean_mark_,
                   graph_.Journal().end());
  GREPAIR_RETURN_IF_ERROR(wal_->AppendBatch(b, NowMs()));
  logged_labels_ = v.NumLabels();
  logged_attrs_ = v.NumAttrs();
  logged_values_ = v.NumValues();
  SyncWalInstruments();
  return Status::Ok();
}

Result<BatchResult> RepairService::Commit() {
  OBS_SPAN("commit");
  if (read_only_)
    return Status::IoError(
        "service is read-only after a storage failure; restart to recover");
  obs::Stopwatch total;
  BatchResult res;
  res.batch = m_batches_->Value() + 1;
  res.edits = PendingEdits();
  SymbolId conf = ConfAttr();

  // Durability: the batch's client edits go to the WAL (and the device,
  // per policy) BEFORE detection/cascades run, so an acked batch line
  // implies a durable batch. A failed append REJECTS the batch — the
  // staged edits roll back and the service degrades to read-only rather
  // than silently diverging from its log.
  if (wal_ != nullptr && !replaying_) {
    Status appended = AppendBatchToWal(res.batch);
    if (!appended.ok()) {
      m_wal_append_errors_->Add(1);
      Status undone = graph_.UndoTo(clean_mark_);
      EnterReadOnly("wal append failed: " + appended.message() +
                    (undone.ok() ? "" : "; rollback also failed: " +
                                            undone.message()));
      return Status::IoError("wal append failed: " + appended.message());
    }
  }

  std::vector<EditEntry> delta(graph_.Journal().begin() + clean_mark_,
                               graph_.Journal().end());
  DeltaMatcher::Anchors anchors;  // pattern-independent: computed once
  if (!rules_.empty()) {
    OBS_SPAN("commit.delta");
    anchors = DeltaMatcher(graph_, rules_[0].pattern()).ComputeAnchors(delta);
    res.anchor_nodes = anchors.nodes.size();
    res.anchor_edges = anchors.edges.size();
  }

  // Seed: batched parallel delta-detection. The detector falls back to the
  // sequential per-rule FindDelta loop for tiny deltas or a 1-thread budget;
  // either way the store receives the exact RunDelta seeding.
  const size_t backlog = store_.Size();  // budget-cut leftovers, if any
  {
    OBS_SPAN("commit.detect");
    obs::Stopwatch t;
    ParallelDeltaOptions popt;
    popt.shard_min_anchors = options_.shard_min_anchors;
    popt.max_shards_per_rule = options_.max_shards_per_rule;
    ParallelDeltaDetector detector(pool_.get(), popt);
    // When the batch fans out, the seed pass reads the service's CACHED
    // snapshot, advanced to the current graph state by patching the
    // delta-log slice accumulated since the last acquisition — O(delta)
    // instead of the former per-commit O(|G|) rebuild (AcquireSnapshot
    // falls back to a rebuild on the first batch and past the patch
    // threshold). Tiny batches (and thread budget 1) read the live graph
    // directly. Reads are bit-identical either way (tests/test_snapshot.cc,
    // tests/test_snapshot_patch.cc).
    const GraphView* view = &graph_;
    // Frozen-view passes match through compiled plans (cached across
    // commits, revalidated per snapshot generation); the live-graph path
    // stays on the interpreter — both streams are bit-identical.
    std::vector<const MatchPlan*> plans;
    if (detector.WouldFanOut(anchors.nodes.size() + anchors.edges.size())) {
      view = &AcquireSnapshot(&res);
      res.snapshot_reads = true;
      m_snapshot_batches_->Add(1);
      plans.reserve(rules_.size());
      for (RuleId r = 0; r < rules_.size(); ++r)
        plans.push_back(
            plan_cache_.Get(r, rules_[r].pattern(), *view, plan_generation_));
    } else if (!publisher_.enabled()) {
      // No publication will advance the slots this commit, so cap the
      // delta log here: slots whose pending slice already lost to a
      // rebuild forfeit their claim and the records go.
      TrimConsumedDeltaLog();
    }
    MatchStats st = detector.Detect(
        *view, rules_, anchors,
        [&](RuleId r, const Match& m) {
          store_.Add(r, m,
                     FixCost(*view, rules_[r], m, options_.cost_model, conf));
        },
        plans.empty() ? nullptr : plans.data());
    res.expansions += st.expansions;
    res.detect_ms = t.ElapsedMs();
    m_detect_ms_->Observe(res.detect_ms);
  }
  res.violations = store_.Size();

  // Cascade: drain greedily, re-detecting sequentially around each fix —
  // the same loop as RepairEngine::RunGreedy in dynamic mode, so a commit
  // is bit-identical to RunDelta over the same slice.
  OBS_SPAN("commit.cascade");
  Violation v;
  for (;;) {
    if (res.fixes >= options_.max_fixes_per_batch && !store_.Empty()) {
      res.budget_exhausted = true;
      break;
    }
    if (!store_.PopBest(&v)) break;
    const Rule& rule = rules_[v.rule];
    Matcher matcher(graph_, rule.pattern());
    const Match* best = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Match& alt : v.alternatives) {
      if (!matcher.Verify(alt)) continue;
      double c = FixCost(graph_, rule, alt, options_.cost_model, conf);
      if (c < best_cost) {
        best_cost = c;
        best = &alt;
      }
    }
    if (best == nullptr) continue;  // stale violation

    size_t mark = graph_.JournalSize();
    auto applied = ApplyFix(&graph_, v.rule, rule, *best);
    if (!applied.ok()) continue;  // defensive: verified matches must apply
    ++res.fixes;

    std::vector<EditEntry> fix_delta(graph_.Journal().begin() + mark,
                                     graph_.Journal().end());
    size_t cascade_expansions = 0;
    DetectDelta(graph_, rules_, fix_delta, &store_, options_.cost_model, conf,
                &cascade_expansions);
    res.expansions += cascade_expansions;
  }

  clean_mark_ = graph_.JournalSize();
  res.total_ms = total.ElapsedMs();

  m_batches_->Add(1);
  // Only newly seeded violations count as detected; backlog re-reported by
  // res.violations was already counted by the batch that found it.
  m_violations_detected_->Add(res.violations - backlog);
  m_fixes_->Add(res.fixes);
  m_anchors_->Add(res.anchor_nodes + res.anchor_edges);
  m_expansions_->Add(res.expansions);
  m_commit_ms_->Observe(res.total_ms);
  m_backlog_->Set(static_cast<int64_t>(store_.Size()));
  // Exact percentiles want raw samples, which histogram buckets quantize
  // away — the bounded ring survives the registry refactor for that.
  const uint64_t batches = m_batches_->Value();
  if (latency_ring_.size() < ServiceStats::kLatencyWindow)
    latency_ring_.push_back(res.total_ms);
  else
    latency_ring_[(batches - 1) % ServiceStats::kLatencyWindow] =
        res.total_ms;

  // Publication point: the batch has fully landed (cascades drained or
  // budget-cut, counters settled), so expose it to the lock-free readers.
  // Everything a reader can observe — store, backlog — is frozen before
  // the atomic flip; concurrent readers keep the previous generation until
  // it happens and see exactly one committed boundary either way.
  PublishGeneration(res.batch);

  // Cadence checkpoint: absolute seq multiples, so a replay knows to
  // re-execute the id-compacting state swap at exactly these points. The
  // batch itself is already durable and committed — a failed checkpoint
  // degrades the service but still acks the batch.
  if (wal_ != nullptr && !replaying_ && options_.checkpoint_every > 0 &&
      res.batch % options_.checkpoint_every == 0) {
    Status ckpt = CheckpointNow(/*baseline=*/false);
    if (!ckpt.ok()) {
      m_checkpoint_errors_->Add(1);
      EnterReadOnly("checkpoint failed: " + ckpt.message());
    }
  }
  return res;
}

// ------------------------------------------------- state persistence
// File layout (line-oriented, TSV-compatible with graph_io):
//   # comments
//   L/K/W <name>       the vocabulary dump: every label / attr name /
//                      value in id order (id 0, the empty string, is
//                      implicit). Interning these in order before parsing
//                      the rest reproduces the writing process's symbol
//                      ids exactly — what makes raw SymbolIds in WAL
//                      records valid against a reloaded checkpoint.
//   N/E ...            the graph (SerializeGraph format)
//   V <rule> <cost>    one backlog violation (cost = best_cost)
//   A <k> <node ids...> <m> <edge ids...>   one alternative match of the
//                      preceding V, ids already in the reloaded id space
namespace {

// ParseGraph assigns fresh dense ids in serialization order (alive
// elements, ascending), so the reloaded id of an element is its rank among
// the alive ids of its kind.
template <typename Id>
std::unordered_map<Id, Id> RankMap(const std::vector<Id>& alive_ascending) {
  std::unordered_map<Id, Id> rank;
  rank.reserve(alive_ascending.size());
  for (size_t i = 0; i < alive_ascending.size(); ++i)
    rank[alive_ascending[i]] = static_cast<Id>(i);
  return rank;
}

}  // namespace

std::string RepairService::SerializeServiceState() const {
  std::unordered_map<NodeId, NodeId> node_rank = RankMap(graph_.Nodes());
  std::unordered_map<EdgeId, EdgeId> edge_rank = RankMap(graph_.Edges());

  // Backlog with ids translated to the reloaded space; alternatives that
  // reference dead elements cannot be expressed there and are dropped (the
  // cascade loop's re-verify would discard them on pop anyway).
  struct SavedViolation {
    RuleId rule;
    double cost;
    std::vector<Match> alternatives;
  };
  std::vector<SavedViolation> backlog;
  for (const Violation& v : store_.Snapshot()) {
    SavedViolation sv;
    sv.rule = v.rule;
    sv.cost = v.best_cost;
    for (const Match& alt : v.alternatives) {
      Match translated;
      bool live = true;
      for (NodeId n : alt.nodes) {
        auto it = node_rank.find(n);
        if (it == node_rank.end() || !graph_.NodeAlive(n)) {
          live = false;
          break;
        }
        translated.nodes.push_back(it->second);
      }
      for (EdgeId e : alt.edges) {
        auto it = edge_rank.find(e);
        if (!live || it == edge_rank.end() || !graph_.EdgeAlive(e)) {
          live = false;
          break;
        }
        translated.edges.push_back(it->second);
      }
      if (live) sv.alternatives.push_back(std::move(translated));
    }
    if (!sv.alternatives.empty()) backlog.push_back(std::move(sv));
  }
  // Deterministic file order (Snapshot() iterates a hash map).
  std::sort(backlog.begin(), backlog.end(),
            [](const SavedViolation& a, const SavedViolation& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.alternatives.front().nodes != b.alternatives.front().nodes)
                return a.alternatives.front().nodes <
                       b.alternatives.front().nodes;
              return a.alternatives.front().edges <
                     b.alternatives.front().edges;
            });

  std::string out = "# grepair service state v1\n";
  const Vocabulary& v = *graph_.vocab();
  for (size_t i = 1; i < v.NumLabels(); ++i)
    out += "L\t" + v.LabelName(static_cast<SymbolId>(i)) + "\n";
  for (size_t i = 1; i < v.NumAttrs(); ++i)
    out += "K\t" + v.AttrName(static_cast<SymbolId>(i)) + "\n";
  for (size_t i = 1; i < v.NumValues(); ++i)
    out += "W\t" + v.ValueName(static_cast<SymbolId>(i)) + "\n";
  out += SerializeGraph(graph_);
  for (const SavedViolation& sv : backlog) {
    out += StrFormat("V\t%u\t%.17g\n", sv.rule, sv.cost);
    for (const Match& alt : sv.alternatives) {
      out += StrFormat("A\t%zu", alt.nodes.size());
      for (NodeId n : alt.nodes) out += StrFormat("\t%u", n);
      out += StrFormat("\t%zu", alt.edges.size());
      for (EdgeId e : alt.edges) out += StrFormat("\t%u", e);
      out += "\n";
    }
  }
  return out;
}

Status RepairService::SaveState(const std::string& path) {
  if (PendingEdits() > 0) {
    auto committed = Commit();
    if (!committed.ok()) return committed.status();
  }
  // Temp file + fsync + atomic rename: a crash mid-save never replaces a
  // previous good state file with a torn one.
  return storage::WriteFileAtomic(StateFs(), path, SerializeServiceState());
}

Status RepairService::LoadServiceState(const std::string& text,
                                       const std::string& origin) {
  const std::string& path = origin;  // error-message label
  // Split vocabulary and graph lines from violation lines.
  size_t next_label = 1, next_attr = 1, next_value = 1;
  std::string graph_text;
  struct PendingViolation {
    RuleId rule;
    double cost;
    std::vector<Match> alternatives;
  };
  std::vector<PendingViolation> backlog;
  size_t line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    auto err = [&](const std::string& what) {
      return Status::ParseError(
          StrFormat("%s line %zu: %s", path.c_str(), line_no, what.c_str()));
    };
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == 'N' || line[0] == 'E') {
      graph_text += std::string(line) + "\n";
      continue;
    }
    auto fields = Split(line, '\t');
    if (fields[0] == "L" || fields[0] == "K" || fields[0] == "W") {
      if (fields.size() != 2) return err("bad vocabulary record");
      // Interning straight into the live (shared) vocabulary is safe even
      // when a later line fails validation: it is append-only, so extra
      // symbols are inert. Each entry must land on its dumped id — drift
      // means the service was built from different --graph/--rules than
      // the one that wrote this state, and every raw SymbolId in it (and
      // in any WAL tail about to replay) would silently mean something
      // else.
      SymbolId got;
      size_t expect;
      if (fields[0] == "L") {
        got = graph_.vocab()->Label(fields[1]);
        expect = next_label++;
      } else if (fields[0] == "K") {
        got = graph_.vocab()->Attr(fields[1]);
        expect = next_attr++;
      } else {
        got = graph_.vocab()->Value(fields[1]);
        expect = next_value++;
      }
      if (got != expect)
        return err(StrFormat(
            "vocabulary drift: '%s' interned as %u where %zu expected (was "
            "the service built from the same --graph/--rules?)",
            fields[1].c_str(), got, expect));
      continue;
    }
    if (fields[0] == "V") {
      if (fields.size() != 3) return err("bad V record");
      PendingViolation pv;
      uint64_t rule = 0;
      if (!ParseUint64(fields[1], &rule) || rule >= rules_.size())
        return err("bad rule id");
      pv.rule = static_cast<RuleId>(rule);
      if (!ParseDouble(fields[2], &pv.cost)) return err("bad cost");
      backlog.push_back(std::move(pv));
    } else if (fields[0] == "A") {
      if (backlog.empty()) return err("A record before any V record");
      if (fields.size() < 3) return err("bad A record");
      Match m;
      size_t idx = 1;
      uint64_t count = 0, id = 0;
      // Reject ids that don't fit the 32-bit id space BEFORE the
      // static_cast: truncation could alias a live element and defeat the
      // validated-before-swap guarantee.
      if (!ParseUint64(fields[idx++], &count)) return err("bad node count");
      for (uint64_t i = 0; i < count; ++i) {
        if (idx >= fields.size() || !ParseUint64(fields[idx++], &id) ||
            id >= kInvalidNode)
          return err("bad node id");
        m.nodes.push_back(static_cast<NodeId>(id));
      }
      if (idx >= fields.size() || !ParseUint64(fields[idx++], &count))
        return err("bad edge count");
      for (uint64_t i = 0; i < count; ++i) {
        if (idx >= fields.size() || !ParseUint64(fields[idx++], &id) ||
            id >= kInvalidEdge)
          return err("bad edge id");
        m.edges.push_back(static_cast<EdgeId>(id));
      }
      if (idx != fields.size()) return err("trailing fields in A record");
      const Pattern& p = rules_[backlog.back().rule].pattern();
      if (m.nodes.size() != p.NumNodes() || m.edges.size() != p.NumEdges())
        return err("match arity does not fit the rule's pattern");
      backlog.back().alternatives.push_back(std::move(m));
    } else {
      return err("unknown record type '" + std::string(fields[0]) + "'");
    }
  }

  auto parsed = ParseGraph(graph_text, graph_.vocab());
  if (!parsed.ok()) return parsed.status();
  Graph restored = std::move(parsed).value();
  // The parse journal is construction noise, not user edits; the restored
  // state is clean by definition (SaveState commits first).
  restored.ResetJournal();
  for (const PendingViolation& pv : backlog) {
    for (const Match& alt : pv.alternatives) {
      for (NodeId nid : alt.nodes)
        if (!restored.NodeAlive(nid))
          return Status::ParseError(
              StrFormat("%s: violation references dead node %u",
                        path.c_str(), nid));
      for (EdgeId eid : alt.edges)
        if (!restored.EdgeAlive(eid))
          return Status::ParseError(
              StrFormat("%s: violation references dead edge %u",
                        path.c_str(), eid));
    }
  }

  // Point of no return: every record validated, swap the state in. The
  // publisher's slot stores mirror the OLD graph — and their watermarks
  // the old delta log — so a new epoch invalidates them for WRITER reuse
  // (the next advance rebuilds from scratch) while the published
  // generation keeps serving the consistent pre-swap state to any pinned
  // reader until the republication below atomically replaces it. A reader
  // therefore never observes a half-restored store.
  graph_ = std::move(restored);
  if (pool_ != nullptr || publisher_.enabled()) graph_.EnableDeltaLog();
  publisher_.BeginNewEpoch();
  plan_cache_.Clear();
  read_plans_.Clear();
  clean_mark_ = 0;
  store_.Clear();
  for (const PendingViolation& pv : backlog)
    for (const Match& alt : pv.alternatives)
      store_.Add(pv.rule, alt, pv.cost);
  // Everything the vocabulary now holds is covered by this state (its dump
  // plus the construction prefix it verified), so the next WAL append
  // starts its symbol frames here.
  logged_labels_ = graph_.vocab()->NumLabels();
  logged_attrs_ = graph_.vocab()->NumAttrs();
  logged_values_ = graph_.vocab()->NumValues();
  // Atomic republication of the restored state (every LoadServiceState
  // caller — restore, checkpoint swap, recovery — swaps to a committed
  // boundary, so publishing here keeps the reader-visible sequence at
  // committed boundaries only).
  PublishGeneration(m_batches_->Value());
  return Status::Ok();
}

Status RepairService::RestoreState(const std::string& path) {
  if (read_only_)
    return Status::IoError(
        "service is read-only after a storage failure; restart to recover");
  // The staged-edits rule: a restore while edits are journaled-but-
  // uncommitted is ambiguous (discard them? commit them onto the restored
  // state?), so it is refused outright — protocol code `staged_edits`.
  if (PendingEdits() > 0)
    return Status::FailedPrecondition(
        StrFormat("%zu staged edit(s) pending; commit before restore",
                  PendingEdits()));
  auto text = StateFs()->ReadFile(path);
  if (!text.ok()) return text.status();
  GREPAIR_RETURN_IF_ERROR(LoadServiceState(text.value(), path));
  // The restore itself is a state swap no WAL replay could reproduce, so
  // under durability history re-anchors on a baseline checkpoint of the
  // restored state. Its failure degrades the service: the restore already
  // happened in memory, but it is not durable.
  if (wal_ != nullptr) {
    Status ckpt = CheckpointNow(/*baseline=*/true);
    if (!ckpt.ok()) {
      m_checkpoint_errors_->Add(1);
      EnterReadOnly("post-restore checkpoint failed: " + ckpt.message());
      return Status::IoError("restored in memory, but the re-anchoring "
                             "checkpoint failed: " +
                             ckpt.message());
    }
  }
  return Status::Ok();
}

Status RepairService::SwapState() {
  std::string payload = SerializeServiceState();
  Status st = LoadServiceState(payload, "<state swap>");
  if (!st.ok())
    return Status::Internal("state failed to survive its own serialize/load "
                            "round trip: " +
                            st.ToString());
  return Status::Ok();
}

Status RepairService::CheckpointNow(bool baseline) {
  if (wal_ == nullptr)
    return Status::FailedPrecondition("durability is not open");
  if (PendingEdits() > 0)
    return Status::FailedPrecondition(
        "checkpoint with uncommitted edits staged");
  OBS_SPAN("serve.checkpoint");
  const uint64_t seq = m_batches_->Value();
  std::string payload = SerializeServiceState();
  GREPAIR_RETURN_IF_ERROR(
      storage::WriteCheckpoint(StateFs(), options_.wal_dir, seq, payload));
  // The swap: load our own payload, compacting ids exactly the way a
  // recovery that starts from this checkpoint will. Live state and
  // recovered state converge by construction (DESIGN.md "Durability").
  Status swapped = LoadServiceState(payload, "<checkpoint swap>");
  if (!swapped.ok())
    return Status::Internal(
        "checkpoint payload failed to reload: " + swapped.ToString());
  GREPAIR_RETURN_IF_ERROR(wal_->Rotate(seq + 1));
  // A baseline re-anchors history (recovery/restore swap points a replay
  // could not reproduce): everything older is unsound to fall back to.
  storage::TrimStorageDir(StateFs(), options_.wal_dir, baseline ? 1 : 2);
  m_checkpoints_->Add(1);
  m_last_checkpoint_seq_->Set(static_cast<int64_t>(seq));
  SyncWalInstruments();
  return Status::Ok();
}

Result<RecoveryInfo> RepairService::OpenDurability() {
  RecoveryInfo info;
  if (options_.wal_dir.empty()) return info;
  if (wal_ != nullptr)
    return Status::FailedPrecondition("durability is already open");
  if (m_batches_->Value() != 0 || PendingEdits() > 0)
    return Status::FailedPrecondition(
        "OpenDurability must run before the first commit");
  storage::Fs* fs = StateFs();
  GREPAIR_RETURN_IF_ERROR(fs->CreateDir(options_.wal_dir));
  GREPAIR_ASSIGN_OR_RETURN(storage::RecoveryPlan plan,
                           storage::PlanRecovery(fs, options_.wal_dir));
  info.durable = true;
  info.recovered_from_checkpoint = plan.found_checkpoint;
  info.checkpoint_seq = plan.checkpoint_seq;
  info.truncated_bytes = plan.truncated_bytes;
  info.dropped_batches = plan.dropped_batches;
  info.corrupt_checkpoints = plan.corrupt_checkpoints;

  if (plan.found_checkpoint) {
    GREPAIR_RETURN_IF_ERROR(LoadServiceState(
        plan.checkpoint_payload,
        options_.wal_dir + "/" + storage::CheckpointName(plan.checkpoint_seq)));
    m_batches_->Add(plan.checkpoint_seq);
  }

  // Replay the WAL tail through the NORMAL commit path: detection and
  // cascade fixes are recomputed (they are not logged — the engine is
  // bit-identical across thread/shard counts), and each replayed batch
  // must land on its logged seq or the replay is declared diverged rather
  // than silently partial. Cadence state swaps re-execute at the same
  // absolute seqs the original checkpointed at.
  replaying_ = true;
  auto diverged = [this](std::string why) {
    replaying_ = false;
    return Status::DataLoss("replay diverged: " + std::move(why));
  };
  for (const storage::WalBatch& batch : plan.batches) {
    for (const storage::WalSymDef& s : batch.symbols) {
      SymbolId got = s.dict == 0   ? graph_.vocab()->Label(s.name)
                     : s.dict == 1 ? graph_.vocab()->Attr(s.name)
                                   : graph_.vocab()->Value(s.name);
      if (got != s.id)
        return diverged(StrFormat(
            "symbol '%s' re-interned as %u, wal batch %llu says %u (was the "
            "service built from the same --graph/--rules?)",
            s.name.c_str(), got, (unsigned long long)batch.seq, s.id));
    }
    for (const EditEntry& rec : batch.records) {
      auto applied = ApplyEdit(rec);
      if (!applied.ok())
        return diverged(StrFormat("batch %llu record rejected: %s",
                                  (unsigned long long)batch.seq,
                                  applied.status().ToString().c_str()));
    }
    auto res = Commit();
    if (!res.ok()) {
      replaying_ = false;
      return res.status();
    }
    if (res.value().batch != batch.seq)
      return diverged(StrFormat("commit landed on seq %zu, wal says %llu",
                                res.value().batch,
                                (unsigned long long)batch.seq));
    if (options_.checkpoint_every > 0 &&
        batch.seq % options_.checkpoint_every == 0) {
      Status swapped = SwapState();
      if (!swapped.ok()) {
        replaying_ = false;
        return swapped;
      }
    }
  }
  replaying_ = false;
  info.replayed_batches = plan.batches.size();
  m_recovery_replayed_->Add(plan.batches.size());
  m_recovery_truncated_bytes_->Add(plan.truncated_bytes);
  m_recovery_dropped_->Add(plan.dropped_batches);
  m_recovery_corrupt_ckpts_->Add(plan.corrupt_checkpoints);
  for (const std::string& note : plan.notes)
    std::fprintf(stderr, "grepair: recovery: %s\n", note.c_str());

  GREPAIR_ASSIGN_OR_RETURN(
      wal_, storage::WalWriter::Open(fs, options_.wal_dir, plan.next_seq,
                                     options_.fsync_policy,
                                     options_.fsync_interval_ms));
  // Baseline re-anchor: a fresh directory gets its seq-0 checkpoint (so
  // recovery never depends on --graph again), and a recovered one stops
  // depending on the history just replayed.
  Status ckpt = CheckpointNow(/*baseline=*/true);
  if (!ckpt.ok()) {
    wal_.reset();
    return ckpt;
  }
  SyncWalInstruments();
  return info;
}

// ------------------------------------------------- published read path
// Everything below runs on READER threads, concurrently with the writer.
// The rules it lives by: pin first (publisher mutex, pointer work only),
// then touch ONLY the pinned generation, the immutable rule set / options,
// and thread-safe instruments — never graph_, store_, the vocabulary, or
// any writer-side cache.

namespace {

// RAII in-flight ticket against the max_read_threads gate. The counter is
// advisory (relaxed): an over-admit under a race sheds the next request
// instead, which is the right failure direction for load shedding.
class InflightRead {
 public:
  InflightRead(std::atomic<int64_t>* counter, size_t cap) : counter_(counter) {
    const int64_t n = counter_->fetch_add(1, std::memory_order_relaxed) + 1;
    admitted_ = cap == 0 || n <= static_cast<int64_t>(cap);
  }
  ~InflightRead() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  InflightRead(const InflightRead&) = delete;
  InflightRead& operator=(const InflightRead&) = delete;
  bool admitted() const { return admitted_; }

 private:
  std::atomic<int64_t>* counter_;
  bool admitted_ = false;
};

}  // namespace

Result<PublishedDetect> RepairService::DetectPublished(
    const std::string& rule_filter) const {
  OBS_SPAN("read.detect");
  InflightRead ticket(&active_reads_, options_.max_read_threads);
  if (!ticket.admitted()) {
    m_stale_reads_->Add(1);
    return Status::ResourceExhausted("read capacity exhausted");
  }
  // Filter resolution by plain string compare — the vocabulary is mutable
  // under the writer (session parsing interns), so readers never touch it.
  if (!rule_filter.empty()) {
    bool known = false;
    for (RuleId r = 0; r < rules_.size() && !known; ++r)
      known = rules_[r].name() == rule_filter;
    if (!known) {
      m_stale_reads_->Add(1);
      return Status::NotFound("unknown rule '" + rule_filter + "'");
    }
  }
  serve::ReadLease lease = publisher_.Pin();
  if (!lease.valid()) {
    m_stale_reads_->Add(1);
    return Status::FailedPrecondition(
        "no published snapshot generation (publishing disabled?)");
  }
  obs::Stopwatch t;
  const GraphView& view = lease.view();
  std::vector<const Pattern*> patterns;
  patterns.reserve(rules_.size());
  for (RuleId r = 0; r < rules_.size(); ++r)
    patterns.push_back(&rules_[r].pattern());
  // Plans compiled ONCE per published generation (against its frozen
  // view), shared by every reader of that generation.
  std::shared_ptr<const std::vector<MatchPlan>> plans =
      read_plans_.Get(lease->generation, patterns, view);
  // Mirror the offline `grepair detect` pass exactly — matches folded into
  // violations by a local store, default cost model, no confidence
  // weighting (the DetectAll contract) — so the verb's counts are
  // bit-identical to the CLI's against the same committed batch.
  ViolationStore folded;
  PublishedDetect out;
  out.generation = lease->generation;
  out.batch = lease->batch;
  for (RuleId r = 0; r < rules_.size(); ++r) {
    if (!rule_filter.empty() && rules_[r].name() != rule_filter) continue;
    Matcher matcher(view, rules_[r].pattern(), &(*plans)[r]);
    MatchOptions opts;
    MatchStats st = matcher.FindAll(opts, [&](const Match& m) {
      folded.Add(r, m, FixCost(view, rules_[r], m, CostModel{}, 0));
      return true;
    });
    out.expansions += st.expansions;
  }
  out.violations = folded.Size();
  std::map<std::string, size_t> per_rule;
  for (const Violation& v : folded.Snapshot())
    per_rule[rules_[v.rule].name()]++;
  out.per_rule.assign(per_rule.begin(), per_rule.end());
  m_published_reads_->Add(1);
  m_read_ms_->Observe(t.ElapsedMs());
  return out;
}

Result<PublishedViolations> RepairService::ReadViolations(
    size_t offset, size_t limit) const {
  OBS_SPAN("read.violations");
  InflightRead ticket(&active_reads_, options_.max_read_threads);
  if (!ticket.admitted()) {
    m_stale_reads_->Add(1);
    return Status::ResourceExhausted("read capacity exhausted");
  }
  serve::ReadLease lease = publisher_.Pin();
  if (!lease.valid()) {
    m_stale_reads_->Add(1);
    return Status::FailedPrecondition(
        "no published snapshot generation (publishing disabled?)");
  }
  obs::Stopwatch t;
  PublishedViolations out;
  out.generation = lease->generation;
  out.batch = lease->batch;
  out.total = lease->backlog.size();
  out.offset = std::min(offset, out.total);
  const size_t end = std::min(out.total, out.offset + limit);
  out.rows.reserve(end - out.offset);
  for (size_t i = out.offset; i < end; ++i) {
    const Violation& v = lease->backlog[i];
    PublishedViolations::Row row;
    row.rule = rules_[v.rule].name();
    row.cost = v.best_cost;
    row.nodes = v.alternatives.front().nodes.size();
    row.edges = v.alternatives.front().edges.size();
    out.rows.push_back(std::move(row));
  }
  m_published_reads_->Add(1);
  m_read_ms_->Observe(t.ElapsedMs());
  return out;
}

Result<BatchResult> RepairService::ApplyBatch(
    const std::vector<EditEntry>& ops) {
  for (size_t i = 0; i < ops.size(); ++i) {
    auto applied = ApplyEdit(ops[i]);
    if (!applied.ok())
      return Status::InvalidArgument("batch op " + std::to_string(i) + ": " +
                                     applied.status().ToString());
  }
  return Commit();
}

}  // namespace grepair
