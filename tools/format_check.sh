#!/usr/bin/env bash
# clang-format gate: fails if any C++ source under src/, tests/, bench/,
# examples/ or tools/ deviates from .clang-format. Run from the repo root:
#   tools/format_check.sh          # check (CI gate)
#   tools/format_check.sh --fix    # rewrite files in place
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format_check: $CLANG_FORMAT not found; skipping (install clang-format to enable the gate)" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.h' \) | sort)

if [ "${1:-}" = "--fix" ]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "format_check: needs formatting: $f" >&2
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "format_check: FAILED — run tools/format_check.sh --fix" >&2
  exit 1
fi
echo "format_check: OK (${#files[@]} files)"
