// Journal stress property tests (TEST_P): long random edit scripts with
// undo to random marks must restore byte-identical state against reference
// snapshots, and interleaved undo/redo-like usage (mark, edit, undo, edit
// again) must never corrupt indexes (invariant 1 of DESIGN.md, hardened).
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "stress_driver.h"
#include "util/rng.h"

namespace grepair {
namespace {

using Driver = StressDriver;

class JournalStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalStress, UndoToRandomMarksRestoresSnapshots) {
  Driver d(GetParam());
  // Record snapshots at random marks along a 120-edit script.
  std::vector<std::pair<size_t, uint64_t>> snapshots;  // mark -> fingerprint
  for (int i = 0; i < 120; ++i) {
    if (d.rng.NextBernoulli(0.15))
      snapshots.push_back({d.g.JournalSize(), d.g.Fingerprint()});
    d.Step();
  }
  d.VerifyIndexes();
  // Undo back through the snapshots in reverse order.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    ASSERT_TRUE(d.g.UndoTo(it->first).ok());
    EXPECT_EQ(d.g.Fingerprint(), it->second) << "seed " << GetParam();
  }
  d.VerifyIndexes();
}

TEST_P(JournalStress, UndoRedoInterleavingKeepsIndexesSound) {
  Driver d(GetParam() + 5000);
  for (int round = 0; round < 10; ++round) {
    size_t mark = d.g.JournalSize();
    uint64_t fp = d.g.Fingerprint();
    for (int i = 0; i < 12; ++i) d.Step();
    if (d.rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(d.g.UndoTo(mark).ok());
      ASSERT_EQ(d.g.Fingerprint(), fp);
    }
    d.VerifyIndexes();
  }
}

TEST_P(JournalStress, CostNonNegativeAndAdditive) {
  Driver d(GetParam() + 9000);
  CostModel m;
  size_t m1 = d.g.JournalSize();
  for (int i = 0; i < 20; ++i) d.Step();
  size_t m2 = d.g.JournalSize();
  for (int i = 0; i < 20; ++i) d.Step();
  double part1 = JournalCost(d.g.Journal(), m1, m2, m);
  double part2 = JournalCost(d.g.Journal(), m2, d.g.JournalSize(), m);
  EXPECT_GE(part1, 0.0);
  EXPECT_GE(part2, 0.0);
  EXPECT_DOUBLE_EQ(part1 + part2, d.g.CostSince(m1, m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalStress,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace grepair
