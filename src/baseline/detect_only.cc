#include "baseline/detect_only.h"

#include "util/timer.h"

namespace grepair {

RepairResult DetectOnlyBaseline(const GraphView& g, const RuleSet& rules) {
  Timer t;
  RepairResult res;
  ViolationStore store;
  res.initial_violations =
      DetectAll(g, rules, &store, &res.matcher_expansions);
  res.remaining_violations = res.initial_violations;
  res.detect_ms = t.ElapsedMs();
  res.total_ms = res.detect_ms;
  return res;
}

}  // namespace grepair
