// Behavioral unit tests for every shipped rule: each rule is exercised on a
// minimal scenario containing exactly its error, and must produce exactly
// its repair. This pins the semantics of the rule libraries the benchmarks
// and examples depend on.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "grr/standard_rules.h"
#include "repair/engine.h"

namespace grepair {
namespace {

// Runs the engine restricted to one named rule.
RepairResult RunOne(Graph* g, const RuleSet& all, const std::string& name) {
  RuleSet one;
  auto id = all.Find(name);
  EXPECT_TRUE(id.ok()) << name;
  EXPECT_TRUE(one.Add(all[id.value()]).ok());
  RepairEngine engine;
  auto res = engine.Run(g, one);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? std::move(res).value() : RepairResult{};
}

class KgRuleTest : public ::testing::Test {
 protected:
  KgRuleTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    rules_ = KgRules(vocab_).value();
    s_ = KgSchema::Create(vocab_.get());
  }

  VocabularyPtr vocab_;
  Graph g_;
  RuleSet rules_;
  KgSchema s_;
};

TEST_F(KgRuleTest, SpouseSymmetric) {
  NodeId a = g_.AddNode(s_.person), b = g_.AddNode(s_.person);
  g_.AddEdge(a, b, s_.spouse);
  RepairResult r = RunOne(&g_, rules_, "spouse_symmetric");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.HasEdge(b, a, s_.spouse));
}

TEST_F(KgRuleTest, KnowsSymmetric) {
  NodeId a = g_.AddNode(s_.person), b = g_.AddNode(s_.person);
  g_.AddEdge(a, b, s_.knows);
  RepairResult r = RunOne(&g_, rules_, "knows_symmetric");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.HasEdge(b, a, s_.knows));
}

TEST_F(KgRuleTest, CapitalImpliesLocated) {
  NodeId c = g_.AddNode(s_.city), y = g_.AddNode(s_.country);
  g_.AddEdge(c, y, s_.capital_of);
  RepairResult r = RunOne(&g_, rules_, "capital_implies_located");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.HasEdge(c, y, s_.located_in));
}

TEST_F(KgRuleTest, CountryNeedsCapital) {
  NodeId y = g_.AddNode(s_.country);
  RepairResult r = RunOne(&g_, rules_, "country_needs_capital");
  ASSERT_EQ(r.applied.size(), 1u);
  NodeId nu = r.applied[0].new_node;
  EXPECT_EQ(g_.NodeLabel(nu), s_.city);
  EXPECT_TRUE(g_.HasEdge(nu, y, s_.capital_of));
}

TEST_F(KgRuleTest, OneCapitalPerCountryPrefersLowConfidence) {
  NodeId c1 = g_.AddNode(s_.city), c2 = g_.AddNode(s_.city);
  NodeId y = g_.AddNode(s_.country);
  EdgeId hi = g_.AddEdge(c1, y, s_.capital_of).value();
  EdgeId lo = g_.AddEdge(c2, y, s_.capital_of).value();
  g_.SetEdgeAttr(hi, s_.conf, s_.conf_high);
  g_.SetEdgeAttr(lo, s_.conf, s_.conf_low);
  RepairResult r = RunOne(&g_, rules_, "one_capital_per_country");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.EdgeAlive(hi));
  EXPECT_FALSE(g_.EdgeAlive(lo));
}

TEST_F(KgRuleTest, OneBirthplace) {
  NodeId p = g_.AddNode(s_.person);
  NodeId c1 = g_.AddNode(s_.city), c2 = g_.AddNode(s_.city);
  EdgeId real = g_.AddEdge(p, c1, s_.born_in).value();
  EdgeId fake = g_.AddEdge(p, c2, s_.born_in).value();
  g_.SetEdgeAttr(real, s_.conf, s_.conf_high);
  g_.SetEdgeAttr(fake, s_.conf, s_.conf_low);
  RepairResult r = RunOne(&g_, rules_, "one_birthplace");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.EdgeAlive(real));
  EXPECT_FALSE(g_.EdgeAlive(fake));
}

TEST_F(KgRuleTest, WorkerIsPerson) {
  NodeId x = g_.AddNode(s_.city);  // mislabeled person
  NodeId o = g_.AddNode(s_.org);
  g_.AddEdge(x, o, s_.works_for);
  RepairResult r = RunOne(&g_, rules_, "worker_is_person");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(g_.NodeLabel(x), s_.person);
}

TEST_F(KgRuleTest, CapitalFlag) {
  NodeId c = g_.AddNode(s_.city), y = g_.AddNode(s_.country);
  g_.AddEdge(c, y, s_.capital_of);
  g_.AddEdge(c, y, s_.located_in);
  RepairResult r = RunOne(&g_, rules_, "capital_flag");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(g_.NodeAttr(c, s_.is_capital), s_.yes);
}

TEST_F(KgRuleTest, DupPersonRequiresBothKeys) {
  SymbolId name = s_.name, year = s_.birth_year;
  NodeId a = g_.AddNode(s_.person), b = g_.AddNode(s_.person);
  NodeId c = g_.AddNode(s_.person);
  g_.SetNodeAttr(a, name, vocab_->Value("alice"));
  g_.SetNodeAttr(b, name, vocab_->Value("alice"));
  g_.SetNodeAttr(c, name, vocab_->Value("alice"));
  g_.SetNodeAttr(a, year, vocab_->Value("1980"));
  g_.SetNodeAttr(b, year, vocab_->Value("1980"));
  g_.SetNodeAttr(c, year, vocab_->Value("1999"));  // same name, diff year
  RepairResult r = RunOne(&g_, rules_, "dup_person");
  EXPECT_EQ(r.applied.size(), 1u);  // only a+b merge
  EXPECT_TRUE(g_.NodeAlive(a));
  EXPECT_FALSE(g_.NodeAlive(b));
  EXPECT_TRUE(g_.NodeAlive(c));
}

TEST_F(KgRuleTest, JunkOrgOnlyWhenIsolatedAndUnnamed) {
  NodeId junk = g_.AddNode(s_.org);
  NodeId named = g_.AddNode(s_.org);
  g_.SetNodeAttr(named, s_.name, vocab_->Value("acme"));
  NodeId connected = g_.AddNode(s_.org);
  NodeId city = g_.AddNode(s_.city);
  g_.AddEdge(connected, city, s_.hq_in);
  RepairResult r = RunOne(&g_, rules_, "junk_org");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_FALSE(g_.NodeAlive(junk));
  EXPECT_TRUE(g_.NodeAlive(named));
  EXPECT_TRUE(g_.NodeAlive(connected));
}

class SocialRuleTest : public ::testing::Test {
 protected:
  SocialRuleTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    rules_ = SocialRules(vocab_).value();
    s_ = SocialSchema::Create(vocab_.get());
  }
  VocabularyPtr vocab_;
  Graph g_;
  RuleSet rules_;
  SocialSchema s_;
};

TEST_F(SocialRuleTest, NoSelfKnows) {
  NodeId a = g_.AddNode(s_.person);
  g_.AddEdge(a, a, s_.knows);
  RepairResult r = RunOne(&g_, rules_, "no_self_knows");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(g_.NumEdges(), 0u);
}

TEST_F(SocialRuleTest, DupUserMergePreservesFriends) {
  NodeId orig = g_.AddNode(s_.person), dup = g_.AddNode(s_.person);
  NodeId f = g_.AddNode(s_.person);
  g_.SetNodeAttr(orig, s_.name, vocab_->Value("u1"));
  g_.SetNodeAttr(dup, s_.name, vocab_->Value("u1"));
  g_.SetNodeAttr(f, s_.name, vocab_->Value("u2"));
  g_.AddEdge(dup, f, s_.knows);
  g_.AddEdge(f, dup, s_.knows);
  RepairResult r = RunOne(&g_, rules_, "dup_user");
  EXPECT_FALSE(g_.NodeAlive(dup));
  EXPECT_TRUE(g_.HasEdge(orig, f, s_.knows));
  EXPECT_TRUE(g_.HasEdge(f, orig, s_.knows));
}

TEST_F(SocialRuleTest, OrphanUserDeleted) {
  NodeId orphan = g_.AddNode(s_.person);  // no name, no edges
  NodeId named = g_.AddNode(s_.person);
  g_.SetNodeAttr(named, s_.name, vocab_->Value("u"));
  RepairResult r = RunOne(&g_, rules_, "orphan_user");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_FALSE(g_.NodeAlive(orphan));
  EXPECT_TRUE(g_.NodeAlive(named));
}

class CitationRuleTest : public ::testing::Test {
 protected:
  CitationRuleTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    rules_ = CitationRules(vocab_).value();
    s_ = CitationSchema::Create(vocab_.get());
  }
  NodeId Paper(const char* title, const char* year) {
    NodeId p = g_.AddNode(s_.paper);
    g_.SetNodeAttr(p, s_.title, vocab_->Value(title));
    g_.SetNodeAttr(p, s_.year, vocab_->Value(year));
    return p;
  }
  VocabularyPtr vocab_;
  Graph g_;
  RuleSet rules_;
  CitationSchema s_;
};

TEST_F(CitationRuleTest, NoFutureCitation) {
  NodeId old_p = Paper("a", "1990"), new_p = Paper("b", "2010");
  g_.AddEdge(old_p, new_p, s_.cites);  // time travel
  g_.AddEdge(new_p, old_p, s_.cites);  // legitimate
  RepairResult r = RunOne(&g_, rules_, "no_future_citation");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_FALSE(g_.HasEdge(old_p, new_p, s_.cites));
  EXPECT_TRUE(g_.HasEdge(new_p, old_p, s_.cites));
}

TEST_F(CitationRuleTest, CitesToAuthorRelabeled) {
  NodeId p = Paper("a", "2000");
  NodeId a = g_.AddNode(s_.author);
  EdgeId e = g_.AddEdge(p, a, s_.cites).value();
  RepairResult r = RunOne(&g_, rules_, "cites_to_author_is_authorship");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(g_.EdgeLabel(e), s_.authored_by);
}

TEST_F(CitationRuleTest, PaperNeedsAuthor) {
  NodeId p = Paper("lonely", "2001");
  RepairResult r = RunOne(&g_, rules_, "paper_needs_author");
  ASSERT_EQ(r.applied.size(), 1u);
  NodeId nu = r.applied[0].new_node;
  EXPECT_EQ(g_.NodeLabel(nu), s_.author);
  EXPECT_TRUE(g_.HasEdge(p, nu, s_.authored_by));
}

TEST_F(CitationRuleTest, DupPaperNeedsTitleAndYear) {
  NodeId a = Paper("same", "2001");
  NodeId b = Paper("same", "2001");
  NodeId c = Paper("same", "2005");  // same title, different year
  RepairResult r = RunOne(&g_, rules_, "dup_paper");
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_TRUE(g_.NodeAlive(a));
  EXPECT_FALSE(g_.NodeAlive(b));
  EXPECT_TRUE(g_.NodeAlive(c));
}

}  // namespace
}  // namespace grepair
