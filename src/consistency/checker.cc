#include "consistency/checker.h"

#include "util/strings.h"
#include "util/timer.h"

namespace grepair {

ConsistencyReport CheckConsistency(const RuleSet& rules,
                                   const Vocabulary& vocab) {
  Timer t;
  ConsistencyReport rep;
  TriggerGraph tg = TriggerGraph::Build(rules, vocab);
  rep.num_trigger_edges = tg.triggers().size();
  rep.num_contradictions = tg.contradictions().size();
  rep.creation_cycle = tg.HasCreationCycle();
  rep.relabel_cycle = tg.HasRelabelCycle();

  if (rep.creation_cycle) {
    std::string names = "creation cycle among ADD_NODE rules:";
    for (RuleId r : tg.CreationCycle()) names += " " + rules[r].name();
    rep.issues.push_back(names);
  }
  if (rep.relabel_cycle)
    rep.issues.push_back("relabeling rules form a label cycle");
  for (const auto& c : tg.contradictions())
    rep.issues.push_back(StrFormat("contradiction: %s", c.reason.c_str()));

  rep.statically_consistent = !rep.creation_cycle && !rep.relabel_cycle &&
                              rep.num_contradictions == 0;
  rep.analysis_ms = t.ElapsedMs();
  return rep;
}

}  // namespace grepair
