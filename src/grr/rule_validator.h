// Static validation of a GRR: structural sanity, class/action agreement,
// and the self-disabling property of incompleteness rules (an ADD rule whose
// action does not falsify its own guard would re-fire forever).
#ifndef GREPAIR_GRR_RULE_VALIDATOR_H_
#define GREPAIR_GRR_RULE_VALIDATOR_H_

#include "grr/rule.h"
#include "util/status.h"

namespace grepair {

/// Validates one rule. Returns InvalidArgument with a description of the
/// first problem found, or OK.
Status ValidateRule(const Rule& rule, const Vocabulary& vocab);

/// Validates every rule of a set.
Status ValidateRuleSet(const RuleSet& rules, const Vocabulary& vocab);

}  // namespace grepair

#endif  // GREPAIR_GRR_RULE_VALIDATOR_H_
