#include "util/rng.h"

#include <cmath>

namespace grepair {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  if (bound == 0) return 0;
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Inverse-CDF over precomputed-free harmonic approximation: rejection with
  // the classic (Devroye) method is overkill for our sizes; simple linear CDF
  // walk is fine because callers use modest n for label pools, and for large
  // n we use the approximate inversion below.
  if (n <= 1024) {
    double h = 0.0;
    for (uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(double(k), s);
    double u = NextDouble() * h;
    double acc = 0.0;
    for (uint64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(double(k), s);
      if (u <= acc) return k - 1;
    }
    return n - 1;
  }
  // Approximate inversion for large n (good enough for workload skew).
  double u = NextDouble();
  double exp = 1.0 - s;
  double val;
  if (std::fabs(exp) < 1e-9) {
    val = std::exp(u * std::log(double(n)));
  } else {
    val = std::pow(u * (std::pow(double(n), exp) - 1.0) + 1.0, 1.0 / exp);
  }
  uint64_t k = static_cast<uint64_t>(val);
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace grepair
