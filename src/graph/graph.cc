#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"
#include "util/strings.h"

namespace grepair {

// ---------------------------------------------------------------- AttrMap

SymbolId AttrMap::Get(SymbolId attr) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), attr,
      [](const auto& p, SymbolId a) { return p.first < a; });
  if (it != entries_.end() && it->first == attr) return it->second;
  return 0;
}

SymbolId AttrMap::Set(SymbolId attr, SymbolId value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), attr,
      [](const auto& p, SymbolId a) { return p.first < a; });
  SymbolId old = 0;
  if (it != entries_.end() && it->first == attr) {
    old = it->second;
    if (value == 0) {
      entries_.erase(it);
      // Capacity story: an emptied map releases its buffer — tombstoned
      // elements keep their AttrMap forever, and a graph that strips
      // attributes at scale must not pin one allocation per element.
      if (entries_.empty()) entries_.shrink_to_fit();
    } else {
      it->second = value;
    }
  } else if (value != 0) {
    entries_.insert(it, {attr, value});
  }
  return old;
}

// ------------------------------------------------------------------ Graph

Graph::Graph(VocabularyPtr vocab) : vocab_(std::move(vocab)) {
  assert(vocab_ != nullptr);
  label_index_[0];  // ensure the all-nodes bucket exists
}

Graph::Graph(const Graph& other)
    : vocab_(other.vocab_),
      nodes_(other.nodes_),
      edges_(other.edges_),
      log_(other.log_),
      num_alive_nodes_(other.num_alive_nodes_),
      num_alive_edges_(other.num_alive_edges_),
      label_index_(other.label_index_),
      attr_index_(other.attr_index_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  vocab_ = other.vocab_;
  nodes_ = other.nodes_;
  edges_ = other.edges_;
  log_ = other.log_;
  num_alive_nodes_ = other.num_alive_nodes_;
  num_alive_edges_ = other.num_alive_edges_;
  label_index_ = other.label_index_;
  attr_index_ = other.attr_index_;
  delta_log_.reset();
  return *this;
}

Graph Graph::Clone() const {
  Graph copy(vocab_);
  copy.nodes_ = nodes_;
  copy.edges_ = edges_;
  copy.num_alive_nodes_ = num_alive_nodes_;
  copy.num_alive_edges_ = num_alive_edges_;
  copy.label_index_ = label_index_;
  copy.attr_index_ = attr_index_;
  copy.log_.clear();
  return copy;
}

void Graph::Journal(EditEntry entry) {
  if (delta_log_ != nullptr) delta_log_->records.push_back(entry);
  log_.push_back(std::move(entry));
}

void Graph::EnableDeltaLog() {
  if (delta_log_ == nullptr) delta_log_ = std::make_unique<DeltaLog>();
}

uint64_t Graph::DeltaLogBegin() const {
  return delta_log_ == nullptr ? 0 : delta_log_->base;
}

uint64_t Graph::DeltaLogEnd() const {
  return delta_log_ == nullptr ? 0
                               : delta_log_->base + delta_log_->records.size();
}

std::pair<const EditEntry*, size_t> Graph::DeltaLogSince(
    uint64_t from) const {
  if (delta_log_ == nullptr) return {nullptr, 0};
  assert(from >= delta_log_->base && from <= DeltaLogEnd());
  size_t offset = static_cast<size_t>(from - delta_log_->base);
  return {delta_log_->records.data() + offset,
          delta_log_->records.size() - offset};
}

void Graph::TrimDeltaLog(uint64_t upto) {
  if (delta_log_ == nullptr || upto <= delta_log_->base) return;
  assert(upto <= DeltaLogEnd());
  size_t drop = static_cast<size_t>(upto - delta_log_->base);
  delta_log_->records.erase(delta_log_->records.begin(),
                            delta_log_->records.begin() + drop);
  delta_log_->base = upto;
}

void Graph::IndexNode(NodeId n) {
  label_index_[nodes_[n].label].insert(n);
  label_index_[0].insert(n);
  for (const auto& [a, v] : nodes_[n].attrs.entries()) IndexNodeAttr(n, a, v);
}

void Graph::UnindexNode(NodeId n) {
  auto it = label_index_.find(nodes_[n].label);
  if (it != label_index_.end()) it->second.erase(n);
  label_index_[0].erase(n);
  for (const auto& [a, v] : nodes_[n].attrs.entries())
    UnindexNodeAttr(n, a, v);
}

void Graph::IndexNodeAttr(NodeId n, SymbolId attr, SymbolId value) {
  if (value != 0) attr_index_[AttrKey(attr, value)].insert(n);
}

void Graph::UnindexNodeAttr(NodeId n, SymbolId attr, SymbolId value) {
  if (value == 0) return;
  auto it = attr_index_.find(AttrKey(attr, value));
  if (it != attr_index_.end()) it->second.erase(n);
}

void Graph::LinkEdge(EdgeId e) {
  EdgeRec& rec = edges_[e];
  nodes_[rec.src].out.push_back(e);
  nodes_[rec.dst].in.push_back(e);
}

void Graph::UnlinkEdge(EdgeId e) {
  EdgeRec& rec = edges_[e];
  auto& out = nodes_[rec.src].out;
  out.erase(std::find(out.begin(), out.end(), e));
  auto& in = nodes_[rec.dst].in;
  in.erase(std::find(in.begin(), in.end(), e));
}

NodeId Graph::AddNode(SymbolId label) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  NodeRec rec;
  rec.label = label;
  rec.alive = true;
  nodes_.push_back(std::move(rec));
  ++num_alive_nodes_;
  IndexNode(id);
  EditEntry entry;
  entry.kind = EditKind::kAddNode;
  entry.node = id;
  entry.label = label;
  Journal(std::move(entry));
  return id;
}

Result<EdgeId> Graph::AddEdge(NodeId src, NodeId dst, SymbolId label) {
  if (!NodeAlive(src))
    return Status::NotFound(StrFormat("AddEdge: src n%u not alive", src));
  if (!NodeAlive(dst))
    return Status::NotFound(StrFormat("AddEdge: dst n%u not alive", dst));
  EdgeId id = static_cast<EdgeId>(edges_.size());
  EdgeRec rec;
  rec.src = src;
  rec.dst = dst;
  rec.label = label;
  rec.alive = true;
  edges_.push_back(std::move(rec));
  ++num_alive_edges_;
  LinkEdge(id);
  EditEntry entry;
  entry.kind = EditKind::kAddEdge;
  entry.edge = id;
  entry.src = src;
  entry.dst = dst;
  entry.label = label;
  Journal(std::move(entry));
  return id;
}

Status Graph::RemoveEdge(EdgeId e) {
  if (!EdgeAlive(e))
    return Status::NotFound(StrFormat("RemoveEdge: e%u not alive", e));
  UnlinkEdge(e);
  EdgeRec& rec = edges_[e];
  rec.alive = false;
  --num_alive_edges_;
  EditEntry entry;
  entry.kind = EditKind::kRemoveEdge;
  entry.edge = e;
  entry.src = rec.src;
  entry.dst = rec.dst;
  entry.label = rec.label;
  entry.attr_snapshot = rec.attrs.entries();
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::RemoveNode(NodeId n) {
  if (!NodeAlive(n))
    return Status::NotFound(StrFormat("RemoveNode: n%u not alive", n));
  // Cascade incident edges first (copy: RemoveEdge mutates the vectors).
  std::vector<EdgeId> incident = nodes_[n].out;
  incident.insert(incident.end(), nodes_[n].in.begin(), nodes_[n].in.end());
  // A self-loop appears in both lists; dedupe.
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  for (EdgeId e : incident) GREPAIR_RETURN_IF_ERROR(RemoveEdge(e));
  UnindexNode(n);
  NodeRec& rec = nodes_[n];
  rec.alive = false;
  --num_alive_nodes_;
  EditEntry entry;
  entry.kind = EditKind::kRemoveNode;
  entry.node = n;
  entry.label = rec.label;
  entry.attr_snapshot = rec.attrs.entries();
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::SetNodeLabel(NodeId n, SymbolId label) {
  if (!NodeAlive(n))
    return Status::NotFound(StrFormat("SetNodeLabel: n%u not alive", n));
  SymbolId old = nodes_[n].label;
  if (old == label) return Status::Ok();
  UnindexNode(n);
  nodes_[n].label = label;
  IndexNode(n);
  EditEntry entry;
  entry.kind = EditKind::kSetNodeLabel;
  entry.node = n;
  entry.old_sym = old;
  entry.new_sym = label;
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::SetEdgeLabel(EdgeId e, SymbolId label) {
  if (!EdgeAlive(e))
    return Status::NotFound(StrFormat("SetEdgeLabel: e%u not alive", e));
  SymbolId old = edges_[e].label;
  if (old == label) return Status::Ok();
  edges_[e].label = label;
  EditEntry entry;
  entry.kind = EditKind::kSetEdgeLabel;
  entry.edge = e;
  entry.old_sym = old;
  entry.new_sym = label;
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::SetNodeAttr(NodeId n, SymbolId attr, SymbolId value) {
  if (!NodeAlive(n))
    return Status::NotFound(StrFormat("SetNodeAttr: n%u not alive", n));
  SymbolId old = nodes_[n].attrs.Get(attr);
  if (old == value) return Status::Ok();
  UnindexNodeAttr(n, attr, old);
  nodes_[n].attrs.Set(attr, value);
  IndexNodeAttr(n, attr, value);
  EditEntry entry;
  entry.kind = EditKind::kSetNodeAttr;
  entry.node = n;
  entry.attr = attr;
  entry.old_sym = old;
  entry.new_sym = value;
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::SetEdgeAttr(EdgeId e, SymbolId attr, SymbolId value) {
  if (!EdgeAlive(e))
    return Status::NotFound(StrFormat("SetEdgeAttr: e%u not alive", e));
  SymbolId old = edges_[e].attrs.Get(attr);
  if (old == value) return Status::Ok();
  edges_[e].attrs.Set(attr, value);
  EditEntry entry;
  entry.kind = EditKind::kSetEdgeAttr;
  entry.edge = e;
  entry.attr = attr;
  entry.old_sym = old;
  entry.new_sym = value;
  Journal(std::move(entry));
  return Status::Ok();
}

Status Graph::MergeNodes(NodeId keep, NodeId gone) {
  if (!NodeAlive(keep))
    return Status::NotFound(StrFormat("MergeNodes: keep n%u not alive", keep));
  if (!NodeAlive(gone))
    return Status::NotFound(StrFormat("MergeNodes: gone n%u not alive", gone));
  if (keep == gone)
    return Status::InvalidArgument("MergeNodes: keep == gone");

  // Re-home gone's edges onto keep, skipping duplicates keep already has and
  // self-loops that exist only because of the merge (an edge between keep
  // and gone collapses away, mirroring entity-resolution semantics).
  std::vector<EdgeId> out = nodes_[gone].out;
  for (EdgeId e : out) {
    EdgeView v = Edge(e);
    NodeId new_dst = (v.dst == gone) ? keep : v.dst;
    if (new_dst == keep && v.src == gone && v.dst == gone) {
      // true self-loop on gone: becomes self-loop on keep
      if (FindEdge(keep, keep, v.label) == kInvalidEdge) {
        auto r = AddEdge(keep, keep, v.label);
        if (!r.ok()) return r.status();
      }
      continue;
    }
    if (v.dst == keep) continue;  // gone->keep collapses
    if (FindEdge(keep, new_dst, v.label) == kInvalidEdge) {
      auto r = AddEdge(keep, new_dst, v.label);
      if (!r.ok()) return r.status();
      // carry edge attributes over
      for (const auto& [a, val] : EdgeAttrs(e).entries())
        GREPAIR_RETURN_IF_ERROR(SetEdgeAttr(r.value(), a, val));
    }
  }
  std::vector<EdgeId> in = nodes_[gone].in;
  for (EdgeId e : in) {
    EdgeView v = Edge(e);
    if (v.src == gone) continue;  // handled above (self-loop)
    if (v.src == keep) continue;  // keep->gone collapses
    if (FindEdge(v.src, keep, v.label) == kInvalidEdge) {
      auto r = AddEdge(v.src, keep, v.label);
      if (!r.ok()) return r.status();
      for (const auto& [a, val] : EdgeAttrs(e).entries())
        GREPAIR_RETURN_IF_ERROR(SetEdgeAttr(r.value(), a, val));
    }
  }
  // Fill attribute gaps on keep from gone.
  for (const auto& [a, val] : nodes_[gone].attrs.entries()) {
    if (nodes_[keep].attrs.Get(a) == 0)
      GREPAIR_RETURN_IF_ERROR(SetNodeAttr(keep, a, val));
  }
  return RemoveNode(gone);
}

EdgeId Graph::FindEdge(NodeId src, NodeId dst, SymbolId label) const {
  if (!NodeAlive(src) || !NodeAlive(dst)) return kInvalidEdge;
  // Scan the smaller adjacency list.
  if (nodes_[src].out.size() <= nodes_[dst].in.size()) {
    for (EdgeId e : nodes_[src].out) {
      const EdgeRec& rec = edges_[e];
      if (rec.dst == dst && (label == 0 || rec.label == label)) return e;
    }
  } else {
    for (EdgeId e : nodes_[dst].in) {
      const EdgeRec& rec = edges_[e];
      if (rec.src == src && (label == 0 || rec.label == label)) return e;
    }
  }
  return kInvalidEdge;
}

std::vector<NodeId> Graph::Nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_alive_nodes_);
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (nodes_[n].alive) out.push_back(n);
  return out;
}

std::vector<EdgeId> Graph::Edges() const {
  std::vector<EdgeId> out;
  out.reserve(num_alive_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e)
    if (edges_[e].alive) out.push_back(e);
  return out;
}

const std::unordered_set<NodeId>& Graph::NodesWithLabel(SymbolId label) const {
  static const std::unordered_set<NodeId> kEmpty;
  auto it = label_index_.find(label);
  return it == label_index_.end() ? kEmpty : it->second;
}

const std::unordered_set<NodeId>& Graph::NodesWithAttr(SymbolId attr,
                                                       SymbolId value) const {
  static const std::unordered_set<NodeId> kEmpty;
  auto it = attr_index_.find(AttrKey(attr, value));
  return it == attr_index_.end() ? kEmpty : it->second;
}

bool Graph::CollectNodesWithLabel(SymbolId label,
                                  std::vector<NodeId>* out) const {
  const auto& set = NodesWithLabel(label);
  out->assign(set.begin(), set.end());
  return false;  // hash-set order
}

bool Graph::CollectNodesWithAttr(SymbolId attr, SymbolId value,
                                 std::vector<NodeId>* out) const {
  const auto& set = NodesWithAttr(attr, value);
  out->assign(set.begin(), set.end());
  return false;  // hash-set order
}

size_t Graph::CountNodesWithLabel(SymbolId label) const {
  return NodesWithLabel(label).size();
}

size_t Graph::CountEdgesWithLabel(SymbolId label) const {
  size_t count = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e)
    if (edges_[e].alive && edges_[e].label == label) ++count;
  return count;
}

Status Graph::UndoEntry(const EditEntry& e) {
  switch (e.kind) {
    case EditKind::kAddNode: {
      if (!NodeAlive(e.node))
        return Status::Internal("undo AddNode: node not alive");
      if (!nodes_[e.node].out.empty() || !nodes_[e.node].in.empty())
        return Status::Internal("undo AddNode: node still has edges");
      UnindexNode(e.node);
      nodes_[e.node].alive = false;
      nodes_[e.node].attrs = AttrMap();
      --num_alive_nodes_;
      return Status::Ok();
    }
    case EditKind::kRemoveNode: {
      NodeRec& rec = nodes_[e.node];
      if (rec.alive) return Status::Internal("undo RemoveNode: node alive");
      rec.alive = true;
      rec.label = e.label;
      rec.attrs = AttrMap();
      rec.attrs.Reserve(e.attr_snapshot.size());
      for (const auto& [a, v] : e.attr_snapshot) rec.attrs.Set(a, v);
      ++num_alive_nodes_;
      IndexNode(e.node);
      return Status::Ok();
    }
    case EditKind::kAddEdge: {
      if (!EdgeAlive(e.edge))
        return Status::Internal("undo AddEdge: edge not alive");
      UnlinkEdge(e.edge);
      edges_[e.edge].alive = false;
      edges_[e.edge].attrs = AttrMap();
      --num_alive_edges_;
      return Status::Ok();
    }
    case EditKind::kRemoveEdge: {
      EdgeRec& rec = edges_[e.edge];
      if (rec.alive) return Status::Internal("undo RemoveEdge: edge alive");
      rec.alive = true;
      rec.src = e.src;
      rec.dst = e.dst;
      rec.label = e.label;
      rec.attrs = AttrMap();
      rec.attrs.Reserve(e.attr_snapshot.size());
      for (const auto& [a, v] : e.attr_snapshot) rec.attrs.Set(a, v);
      ++num_alive_edges_;
      LinkEdge(e.edge);
      return Status::Ok();
    }
    case EditKind::kSetNodeLabel: {
      UnindexNode(e.node);
      nodes_[e.node].label = e.old_sym;
      IndexNode(e.node);
      return Status::Ok();
    }
    case EditKind::kSetEdgeLabel: {
      edges_[e.edge].label = e.old_sym;
      return Status::Ok();
    }
    case EditKind::kSetNodeAttr: {
      UnindexNodeAttr(e.node, e.attr, e.new_sym);
      nodes_[e.node].attrs.Set(e.attr, e.old_sym);
      IndexNodeAttr(e.node, e.attr, e.old_sym);
      return Status::Ok();
    }
    case EditKind::kSetEdgeAttr: {
      edges_[e.edge].attrs.Set(e.attr, e.old_sym);
      return Status::Ok();
    }
  }
  return Status::Internal("undo: unknown edit kind");
}

Status Graph::UndoTo(size_t mark) {
  if (mark > log_.size())
    return Status::OutOfRange("UndoTo: mark beyond journal");
  while (log_.size() > mark) {
    EditEntry entry = std::move(log_.back());
    log_.pop_back();
    GREPAIR_RETURN_IF_ERROR(UndoEntry(entry));
    // The journal pops silently, but the PHYSICAL state change (including
    // the adjacency-tail position of a revived edge) must stay visible to
    // delta-log consumers: record the undo as its forward inverse.
    if (delta_log_ != nullptr)
      delta_log_->records.push_back(InverseEntry(entry));
  }
  return Status::Ok();
}

uint64_t Graph::Fingerprint() const {
  uint64_t h = 0;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const NodeRec& rec = nodes_[n];
    if (!rec.alive) continue;
    uint64_t nh = HashCombine(Mix64(n + 1), rec.label);
    for (const auto& [a, v] : rec.attrs.entries())
      nh = HashCombine(nh, (uint64_t(a) << 32) | v);
    h ^= Mix64(nh);
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const EdgeRec& rec = edges_[e];
    if (!rec.alive) continue;
    uint64_t eh = HashCombine(
        HashCombine(Mix64(uint64_t(rec.src) + 0x51ULL), rec.dst), rec.label);
    for (const auto& [a, v] : rec.attrs.entries())
      eh = HashCombine(eh, (uint64_t(a) << 32) | v);
    h ^= Mix64(eh ^ 0xABCDEF12345ULL);
  }
  return h;
}

bool Graph::ContentEquals(const Graph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges())
    return false;
  size_t nb = std::max(nodes_.size(), other.nodes_.size());
  for (NodeId n = 0; n < nb; ++n) {
    bool a = NodeAlive(n), b = other.NodeAlive(n);
    if (a != b) return false;
    if (!a) continue;
    if (nodes_[n].label != other.nodes_[n].label) return false;
    if (!(nodes_[n].attrs == other.nodes_[n].attrs)) return false;
  }
  size_t eb = std::max(edges_.size(), other.edges_.size());
  for (EdgeId e = 0; e < eb; ++e) {
    bool a = EdgeAlive(e), b = other.EdgeAlive(e);
    if (a != b) return false;
    if (!a) continue;
    if (edges_[e].src != other.edges_[e].src ||
        edges_[e].dst != other.edges_[e].dst ||
        edges_[e].label != other.edges_[e].label)
      return false;
    if (!(edges_[e].attrs == other.edges_[e].attrs)) return false;
  }
  return true;
}

std::string Graph::DebugSummary() const {
  return StrFormat("Graph{|V|=%zu,|E|=%zu,journal=%zu}", NumNodes(),
                   NumEdges(), log_.size());
}

}  // namespace grepair
