// Serving subsystem tests. The load-bearing property is the acceptance
// criterion of the serving layer: a RepairService commit (batched PARALLEL
// delta-detection + greedy cascades) is bit-identical to the sequential
// RepairEngine::RunDelta over the same edit slice, for thread counts
// {1, 2, 4, 8}, on all three generator domains — graphs, fix counts,
// violation counts AND matcher expansions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "eval/experiment.h"
#include "parallel/delta_detector.h"
#include "serve/repair_service.h"
#include "util/rng.h"

namespace grepair {
namespace {

// A clean (fully repaired) bundle of the given domain.
DatasetBundle CleanBundle(const std::string& domain, uint64_t seed = 3) {
  Result<DatasetBundle> b = Status::Ok();
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = seed + 5;
  if (domain == "kg") {
    KgOptions gopt;
    gopt.num_persons = 300;
    gopt.num_cities = 40;
    gopt.num_countries = 10;
    gopt.num_orgs = 20;
    gopt.seed = seed;
    b = MakeKgBundle(gopt, iopt);
  } else if (domain == "social") {
    SocialOptions gopt;
    gopt.num_persons = 300;
    gopt.seed = seed;
    b = MakeSocialBundle(gopt, iopt);
  } else {
    CitationOptions gopt;
    gopt.num_papers = 250;
    gopt.num_authors = 100;
    gopt.seed = seed;
    b = MakeCitationBundle(gopt, iopt);
  }
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  DatasetBundle bundle = std::move(b).value();
  auto res = RepairEngine().Run(&bundle.graph, bundle.rules);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
  return bundle;
}

// Applies n random domain-agnostic edits to g (labels sampled from the
// graph itself, so any domain works) and returns the resulting journal
// slice — which doubles as the op list a RepairService replays, since ops
// are interpreted EditEntry records.
std::vector<EditEntry> MutateRandom(Graph* g, Rng* rng, size_t n) {
  size_t mark = g->JournalSize();
  std::vector<NodeId> nodes = g->Nodes();
  std::vector<SymbolId> nlabels, elabels;
  for (NodeId node : nodes) nlabels.push_back(g->NodeLabel(node));
  for (EdgeId e : g->Edges()) elabels.push_back(g->EdgeLabel(e));
  for (size_t k = 0; k < n; ++k) {
    switch (rng->NextBounded(5)) {
      case 0: {  // edge between random endpoints (asymmetries, conflicts)
        NodeId a = nodes[rng->PickIndex(nodes)];
        NodeId b = nodes[rng->PickIndex(nodes)];
        if (g->NodeAlive(a) && g->NodeAlive(b) && a != b)
          g->AddEdge(a, b, elabels[rng->PickIndex(elabels)]);
        break;
      }
      case 1: {  // drop a random edge (breaks required/symmetric edges)
        std::vector<EdgeId> cur = g->Edges();
        if (!cur.empty()) g->RemoveEdge(cur[rng->PickIndex(cur)]);
        break;
      }
      case 2: {  // node relabel
        NodeId a = nodes[rng->PickIndex(nodes)];
        if (g->NodeAlive(a))
          g->SetNodeLabel(a, nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      case 3: {  // orphan node (incompleteness)
        g->AddNode(nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      default: {  // edge relabel
        std::vector<EdgeId> cur = g->Edges();
        if (!cur.empty())
          g->SetEdgeLabel(cur[rng->PickIndex(cur)],
                          elabels[rng->PickIndex(elabels)]);
        break;
      }
    }
  }
  return std::vector<EditEntry>(g->Journal().begin() + mark,
                                g->Journal().end());
}

// ---------------------------------------------- Commit == RunDelta (bitwise)

void ExpectServiceMatchesRunDelta(const std::string& domain, size_t threads) {
  DatasetBundle bundle = CleanBundle(domain);
  Graph reference = bundle.graph.Clone();

  ServeOptions sopt;
  sopt.num_threads = threads;
  sopt.shard_min_anchors = 1;  // force the fan-out path even for tiny deltas
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);

  Rng rng(domain.size() * 1000 + threads);
  RepairEngine engine;
  for (size_t batch = 0; batch < 4; ++batch) {
    // Generate the batch against the reference, repair it with RunDelta,
    // and replay the identical ops through the service.
    size_t mark = reference.JournalSize();
    std::vector<EditEntry> ops = MutateRandom(&reference, &rng, 8);
    auto ref = engine.RunDelta(&reference, bundle.rules, mark);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    auto got = service.ApplyBatch(ops);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const BatchResult& r = got.value();
    EXPECT_EQ(r.edits, ops.size());
    EXPECT_EQ(r.violations, ref.value().initial_violations)
        << domain << " batch " << batch << " threads " << threads;
    EXPECT_EQ(r.fixes, ref.value().applied.size());
    EXPECT_EQ(r.expansions, ref.value().matcher_expansions)
        << domain << " batch " << batch << " threads " << threads;
    EXPECT_TRUE(service.graph().ContentEquals(reference))
        << domain << " diverged at batch " << batch << " threads " << threads;
  }
  EXPECT_EQ(CountViolations(service.graph(), bundle.rules), 0u);
}

class ServeBitIdentity
    : public ::testing::TestWithParam<std::tuple<const char*, size_t>> {};

TEST_P(ServeBitIdentity, CommitMatchesRunDelta) {
  ExpectServiceMatchesRunDelta(std::get<0>(GetParam()),
                               std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Domains, ServeBitIdentity,
    ::testing::Combine(::testing::Values("kg", "social", "citation"),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- ParallelDeltaDetector

// Forced sharding must reproduce the sequential per-rule FindDelta stream
// exactly: same (rule, match) sequence, same stats.
TEST(ParallelDeltaDetectorTest, ForcedShardingPreservesEmissionOrder) {
  DatasetBundle bundle = CleanBundle("kg");
  Graph& g = bundle.graph;
  Rng rng(99);
  std::vector<EditEntry> delta = MutateRandom(&g, &rng, 30);

  std::vector<std::pair<RuleId, Match>> seq;
  MatchStats seq_stats;
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    DeltaMatcher dm(g, bundle.rules[r].pattern());
    MatchStats st = dm.FindDelta(delta, [&](const Match& m) {
      seq.emplace_back(r, m);
      return true;
    });
    seq_stats.expansions += st.expansions;
    seq_stats.matches += st.matches;
    seq_stats.exhausted |= st.exhausted;
  }

  ThreadPool pool(4);
  ParallelDeltaOptions opts;
  opts.shard_min_anchors = 1;
  opts.max_shards_per_rule = 16;
  ParallelDeltaDetector detector(&pool, opts);
  std::vector<std::pair<RuleId, Match>> par;
  MatchStats par_stats = detector.Detect(
      g, bundle.rules, delta,
      [&](RuleId r, const Match& m) { par.emplace_back(r, m); });

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].first, par[i].first) << "emission " << i;
    EXPECT_EQ(seq[i].second, par[i].second) << "emission " << i;
  }
  EXPECT_EQ(seq_stats.expansions, par_stats.expansions);
  EXPECT_EQ(seq_stats.matches, par_stats.matches);
  EXPECT_EQ(seq_stats.exhausted, par_stats.exhausted);
}

TEST(ParallelDeltaDetectorTest, EmptyRuleSetFindsNothing) {
  DatasetBundle bundle = CleanBundle("kg");
  Rng rng(7);
  std::vector<EditEntry> delta = MutateRandom(&bundle.graph, &rng, 5);
  ThreadPool pool(2);
  ParallelDeltaDetector detector(&pool);
  size_t emitted = 0;
  MatchStats st = detector.Detect(bundle.graph, RuleSet(), delta,
                                  [&](RuleId, const Match&) { ++emitted; });
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(st.matches, 0u);
}

// ------------------------------------------------------- service behavior

TEST(RepairServiceTest, StatsAccumulateAcrossBatches) {
  DatasetBundle bundle = CleanBundle("kg");
  ServeOptions sopt;
  sopt.num_threads = 2;
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
  Rng rng(5);

  Graph scratch = bundle.graph.Clone();  // op generator only
  size_t expected_edits = 0;  // some random draws no-op, so count actual ops
  for (int i = 0; i < 3; ++i) {
    std::vector<EditEntry> ops = MutateRandom(&scratch, &rng, 4);
    expected_edits += ops.size();
    // Keep generator and service in lockstep by replaying fixes.
    auto r = service.ApplyBatch(ops);
    ASSERT_TRUE(r.ok());
    scratch = service.graph().Clone();
  }

  const ServiceStats& s = service.stats();
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.batch_ms.size(), 3u);
  EXPECT_EQ(s.edits, expected_edits);
  EXPECT_EQ(s.op_errors, 0u);
  EXPECT_GE(s.LatencyPercentileMs(95), s.LatencyPercentileMs(50));
  EXPECT_GT(s.LatencyPercentileMs(50), 0.0);
  EXPECT_EQ(service.PendingEdits(), 0u);
}

TEST(ServiceStatsTest, LatencyPercentileEdgeCases) {
  ServiceStats s;
  // Empty window: every percentile is 0, not UB.
  EXPECT_EQ(s.LatencyPercentileMs(50), 0.0);
  // Nearest-rank on a known window. The stored order is scrambled on
  // purpose — the ring is UNORDERED once it wraps, and selection must not
  // assume arrival order carries rank.
  s.batch_ms = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(s.LatencyPercentileMs(0), 1.0);     // rank clamps to 1 == min
  EXPECT_EQ(s.LatencyPercentileMs(100), 5.0);   // rank n == max
  EXPECT_EQ(s.LatencyPercentileMs(50), 3.0);    // ceil(.5 * 5) = rank 3
  EXPECT_EQ(s.LatencyPercentileMs(95), 5.0);    // ceil(.95 * 5) = rank 5
  EXPECT_EQ(s.LatencyPercentileMs(20), 1.0);    // ceil(.2 * 5) = rank 1
  // Out-of-range and garbage percentiles clamp instead of corrupting the
  // rank arithmetic.
  EXPECT_EQ(s.LatencyPercentileMs(-10), 1.0);
  EXPECT_EQ(s.LatencyPercentileMs(400), 5.0);
  EXPECT_EQ(s.LatencyPercentileMs(std::nan("")), 0.0);
  // Single sample: everything selects it.
  s.batch_ms = {7.5};
  EXPECT_EQ(s.LatencyPercentileMs(0), 7.5);
  EXPECT_EQ(s.LatencyPercentileMs(99), 7.5);
}

TEST(RepairServiceTest, InvalidOpRejectedAndCounted) {
  DatasetBundle bundle = CleanBundle("kg");
  RepairService service(bundle.graph.Clone(), bundle.rules);

  EditEntry bad;
  bad.kind = EditKind::kRemoveNode;
  bad.node = 1u << 30;  // far beyond the id space
  auto r = service.ApplyEdit(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service.stats().op_errors, 1u);

  auto b = service.ApplyBatch({bad});
  EXPECT_FALSE(b.ok());
  EXPECT_NE(b.status().ToString().find("batch op 0"), std::string::npos);
}

TEST(RepairServiceTest, BudgetLeftoversDrainAcrossCommits) {
  DatasetBundle bundle = CleanBundle("kg");
  ServeOptions sopt;
  sopt.max_fixes_per_batch = 1;  // one fix per commit: force carry-over
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
  Rng rng(13);

  // An edit batch that provably introduces violations.
  Graph scratch = service.graph().Clone();
  std::vector<EditEntry> ops;
  while (ops.empty() || CountViolations(scratch, bundle.rules) == 0)
    ops = MutateRandom(&scratch, &rng, 6);

  auto first = service.ApplyBatch(ops);
  ASSERT_TRUE(first.ok());
  EXPECT_GE(first.value().violations, 1u);
  EXPECT_LE(first.value().fixes, 1u);

  // The store persists across commits: re-committing with no new edits
  // keeps draining the backlog one fix at a time until the graph is clean.
  bool exhausted = first.value().budget_exhausted;
  for (int i = 0; exhausted && i < 100; ++i)
    exhausted = service.Commit().value().budget_exhausted;
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(CountViolations(service.graph(), bundle.rules), 0u);
}

TEST(RepairServiceTest, CommitWithNoEditsIsCheapNoop) {
  DatasetBundle bundle = CleanBundle("social");
  RepairService service(bundle.graph.Clone(), bundle.rules);
  BatchResult r = service.Commit().value();
  EXPECT_EQ(r.edits, 0u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.fixes, 0u);
  EXPECT_EQ(r.anchor_nodes + r.anchor_edges, 0u);
}

// ------------------------------------------------- state persistence

TEST(RepairServiceTest, SaveRestoreRoundTripIsStable) {
  DatasetBundle bundle = CleanBundle("kg");
  RepairService service(bundle.graph.Clone(), bundle.rules);
  Rng rng(29);
  Graph scratch = service.graph().Clone();
  auto r = service.ApplyBatch(MutateRandom(&scratch, &rng, 8));
  ASSERT_TRUE(r.ok());

  std::string path1 = ::testing::TempDir() + "/grepair_state_a.snap";
  std::string path2 = ::testing::TempDir() + "/grepair_state_b.snap";
  ASSERT_TRUE(service.SaveState(path1).ok());
  size_t nodes = service.graph().NumNodes();
  size_t edges = service.graph().NumEdges();
  size_t backlog = service.ViolationBacklog();

  // Restore into a SECOND service over the same rules/vocab.
  RepairService other(bundle.graph.Clone(), bundle.rules);
  ASSERT_TRUE(other.RestoreState(path1).ok());
  EXPECT_EQ(other.graph().NumNodes(), nodes);
  EXPECT_EQ(other.graph().NumEdges(), edges);
  EXPECT_EQ(other.ViolationBacklog(), backlog);
  EXPECT_EQ(other.PendingEdits(), 0u);
  // Same alive content (restored ids are dense ranks, so compare counts +
  // full detection rather than raw ids).
  EXPECT_EQ(CountViolations(service.graph(), bundle.rules),
            CountViolations(other.graph(), bundle.rules));

  // Id translation reaches a fixpoint after one round trip (the first save
  // may still carry sparse pre-restore ids in the graph section): saving
  // the restored state and saving a restore OF that save produce identical
  // bytes.
  ASSERT_TRUE(other.SaveState(path2).ok());
  RepairService third(bundle.graph.Clone(), bundle.rules);
  ASSERT_TRUE(third.RestoreState(path2).ok());
  std::string path3 = ::testing::TempDir() + "/grepair_state_c.snap";
  ASSERT_TRUE(third.SaveState(path3).ok());
  std::ifstream f2(path2), f3(path3);
  std::stringstream s2, s3;
  s2 << f2.rdbuf();
  s3 << f3.rdbuf();
  EXPECT_EQ(s2.str(), s3.str());
  EXPECT_NE(s2.str().find("# grepair service state v1"), std::string::npos);

  std::remove(path1.c_str());
  std::remove(path2.c_str());
  std::remove(path3.c_str());
}

TEST(RepairServiceTest, RestorePreservesViolationBacklog) {
  DatasetBundle bundle = CleanBundle("kg");
  ServeOptions sopt;
  sopt.max_fixes_per_batch = 0;  // commit detects but repairs nothing
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
  Rng rng(13);

  Graph scratch = service.graph().Clone();
  std::vector<EditEntry> ops;
  while (ops.empty() || CountViolations(scratch, bundle.rules) == 0)
    ops = MutateRandom(&scratch, &rng, 6);
  auto first = service.ApplyBatch(ops);
  ASSERT_TRUE(first.ok());
  ASSERT_GE(service.ViolationBacklog(), 1u);

  std::string path = ::testing::TempDir() + "/grepair_state_backlog.snap";
  ASSERT_TRUE(service.SaveState(path).ok());

  // Restore into a fresh default-options service and drain: it ends clean.
  RepairService restored(bundle.graph.Clone(), bundle.rules);
  ASSERT_TRUE(restored.RestoreState(path).ok());
  EXPECT_EQ(restored.ViolationBacklog(), service.ViolationBacklog());
  BatchResult drained = restored.Commit().value();
  EXPECT_GE(drained.fixes, 1u);
  EXPECT_EQ(CountViolations(restored.graph(), bundle.rules), 0u);
  EXPECT_EQ(restored.ViolationBacklog(), 0u);

  std::remove(path.c_str());
}

TEST(RepairServiceTest, SaveCommitsPendingEditsFirst) {
  DatasetBundle bundle = CleanBundle("social");
  RepairService service(bundle.graph.Clone(), bundle.rules);
  EditEntry op;
  op.kind = EditKind::kAddNode;
  op.label = bundle.vocab->Label("Person");
  ASSERT_TRUE(service.ApplyEdit(op).ok());
  ASSERT_EQ(service.PendingEdits(), 1u);

  std::string path = ::testing::TempDir() + "/grepair_state_pending.snap";
  ASSERT_TRUE(service.SaveState(path).ok());
  EXPECT_EQ(service.PendingEdits(), 0u);  // implicit commit
  EXPECT_EQ(service.stats().batches, 1u);

  std::remove(path.c_str());
}

TEST(RepairServiceTest, RestoreRejectsCorruptState) {
  DatasetBundle bundle = CleanBundle("social");
  RepairService service(bundle.graph.Clone(), bundle.rules);
  std::string path = ::testing::TempDir() + "/grepair_state_bad.snap";

  {  // rule id out of range
    std::ofstream f(path);
    f << "N\t0\tPerson\nV\t9999\t1.0\nA\t1\t0\t0\n";
  }
  EXPECT_FALSE(service.RestoreState(path).ok());
  {  // match arity does not fit the rule's pattern (no pattern has 0 nodes)
    std::ofstream f(path);
    f << "N\t0\tPerson\nV\t0\t1.0\nA\t0\t0\n";
  }
  EXPECT_FALSE(service.RestoreState(path).ok());
  EXPECT_FALSE(service.RestoreState("/nonexistent/state.snap").ok());
  // Failed restores leave the service untouched.
  EXPECT_EQ(service.graph().NumNodes(), bundle.graph.NumNodes());

  std::remove(path.c_str());
}

// ----------------------------------------------------------- CLI surface

TEST(ServeCliTest, LineProtocolRepairsAndReports) {
  std::string graph = ::testing::TempDir() + "/grepair_serve_g.tsv";
  std::string rules = ::testing::TempDir() + "/grepair_serve_r.grr";
  std::string out;
  ASSERT_EQ(RunCli({"gen", "kg", "--out", graph, "--rules-out", rules,
                    "--scale", "150"},
                   &out),
            0)
      << out;

  std::istringstream in(
      "add_node Org\n"
      "commit\n"
      "stats\n"
      "nonsense\n"
      "quit\n");
  out.clear();
  int code = RunCli({"serve", graph, rules, "--threads", "2"}, &out, &in);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("serving"), std::string::npos);
  EXPECT_NE(out.find("node "), std::string::npos);
  EXPECT_NE(out.find("batch 1"), std::string::npos);
  EXPECT_NE(out.find("stats batches=1"), std::string::npos);
  EXPECT_NE(out.find("err unknown_verb"), std::string::npos);
  EXPECT_NE(out.find("bye"), std::string::npos);

  std::remove(graph.c_str());
  std::remove(rules.c_str());
}

TEST(ServeCliTest, SnapshotAndRestoreVerbs) {
  std::string graph = ::testing::TempDir() + "/grepair_serve_g3.tsv";
  std::string rules = ::testing::TempDir() + "/grepair_serve_r3.grr";
  std::string state = ::testing::TempDir() + "/grepair_serve_s3.snap";
  std::string out;
  ASSERT_EQ(RunCli({"gen", "kg", "--out", graph, "--rules-out", rules,
                    "--scale", "150"},
                   &out),
            0);

  std::istringstream in("add_node Org\n"
                        "snapshot " + state + "\n"   // commits the pending op
                        "add_node Org\n"
                        "restore " + state + "\n"    // refused: edit pending
                        "commit\n"
                        "restore " + state + "\n"    // now allowed
                        "restore /nonexistent.snap\n"
                        "quit\n");
  out.clear();
  EXPECT_EQ(RunCli({"serve", graph, rules}, &out, &in), 0) << out;
  // The snapshot verb committed the pending op and says so.
  EXPECT_NE(out.find("snapshot " + state + " committed_batch=1"),
            std::string::npos);
  // Restore never silently drops uncommitted work: with an edit pending it
  // is refused with the staged_edits code, and succeeds after the commit.
  EXPECT_NE(out.find("err staged_edits"), std::string::npos);
  EXPECT_NE(out.find("restored " + state), std::string::npos);
  EXPECT_NE(out.find("err io"), std::string::npos);  // bad restore reported
  // After restore nothing is pending, so quit adds no third batch.
  EXPECT_NE(out.find("bye batches=2"), std::string::npos);

  std::remove(graph.c_str());
  std::remove(rules.c_str());
  std::remove(state.c_str());
}

TEST(ServeCliTest, PendingEditsCommittedOnQuit) {
  std::string graph = ::testing::TempDir() + "/grepair_serve_g2.tsv";
  std::string rules = ::testing::TempDir() + "/grepair_serve_r2.grr";
  std::string out;
  ASSERT_EQ(RunCli({"gen", "kg", "--out", graph, "--rules-out", rules,
                    "--scale", "150"},
                   &out),
            0);

  std::istringstream in("add_node Org\nquit\n");  // no explicit commit
  out.clear();
  EXPECT_EQ(RunCli({"serve", graph, rules}, &out, &in), 0);
  EXPECT_NE(out.find("batch 1"), std::string::npos);  // implicit final commit

  std::remove(graph.c_str());
  std::remove(rules.c_str());
}

}  // namespace
}  // namespace grepair
