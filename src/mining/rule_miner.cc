#include "mining/rule_miner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "graph/snapshot.h"
#include "grr/rule_builder.h"
#include "grr/rule_validator.h"
#include "parallel/thread_pool.h"
#include "util/strings.h"

namespace grepair {
namespace {

// Per-edge-label endpoint statistics.
struct LabelStats {
  size_t count = 0;
  size_t symmetric = 0;  // edges whose reverse same-label edge exists
  std::map<SymbolId, size_t> src_labels;
  std::map<SymbolId, size_t> dst_labels;
  // functional side: sources with >=1 / exactly 1 outgoing edge
  size_t srcs_with_any = 0, srcs_with_one = 0;
  size_t dsts_with_any = 0, dsts_with_one = 0;
};

// Dominant node label if pure enough, else 0 (wildcard).
SymbolId DominantLabel(const std::map<SymbolId, size_t>& hist, size_t total,
                       double purity) {
  for (const auto& [label, n] : hist)
    if (double(n) >= purity * double(total)) return label;
  return 0;
}

std::string LabelName(const GraphView& g, SymbolId l) {
  return l ? g.vocab()->LabelName(l) : std::string("any");
}

// Everything the support-statistics passes accumulate. Each shard fills its
// own instance from a contiguous slice of edges/nodes; Merge folds shards
// together. All aggregates are sums, max-free counts or set unions, so the
// merged result is independent of sharding.
struct SupportStats {
  std::map<SymbolId, LabelStats> stats;
  // co_fwd[l1][l2]: edges (x,l1,y) with an (x,l2,y) companion.
  // co_rev[l1][l2]: edges (x,l1,y) with a (y,l2,x) companion.
  std::map<SymbolId, std::map<SymbolId, size_t>> co_fwd, co_rev;
  // label -> attr -> (count, distinct values), for key mining.
  std::map<SymbolId, std::map<SymbolId, std::pair<size_t, std::set<SymbolId>>>>
      attr_values;

  void Merge(const SupportStats& o) {
    for (const auto& [l, s] : o.stats) {
      LabelStats& d = stats[l];
      d.count += s.count;
      d.symmetric += s.symmetric;
      for (const auto& [k, v] : s.src_labels) d.src_labels[k] += v;
      for (const auto& [k, v] : s.dst_labels) d.dst_labels[k] += v;
      d.srcs_with_any += s.srcs_with_any;
      d.srcs_with_one += s.srcs_with_one;
      d.dsts_with_any += s.dsts_with_any;
      d.dsts_with_one += s.dsts_with_one;
    }
    for (const auto& [l1, row] : o.co_fwd)
      for (const auto& [l2, c] : row) co_fwd[l1][l2] += c;
    for (const auto& [l1, row] : o.co_rev)
      for (const auto& [l2, c] : row) co_rev[l1][l2] += c;
    for (const auto& [nl, attrs] : o.attr_values) {
      for (const auto& [attr, slot] : attrs) {
        auto& dst = attr_values[nl][attr];
        dst.first += slot.first;
        dst.second.insert(slot.second.begin(), slot.second.end());
      }
    }
  }

  // Edge-anchored statistics for edges[lo, hi).
  void ScanEdges(const GraphView& g, const std::vector<EdgeId>& edges,
                 size_t lo,
                 size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      EdgeView v = g.Edge(edges[i]);
      LabelStats& s = stats[v.label];
      ++s.count;
      if (g.HasEdge(v.dst, v.src, v.label)) ++s.symmetric;
      s.src_labels[g.NodeLabel(v.src)]++;
      s.dst_labels[g.NodeLabel(v.dst)]++;
    }
  }

  // Node-anchored statistics (functionality, co-occurrence, key attrs) for
  // nodes[lo, hi).
  void ScanNodes(const GraphView& g, const std::vector<NodeId>& nodes,
                 size_t lo,
                 size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      NodeId n = nodes[i];
      // Functionality: per-node out/in edge counts per label.
      std::map<SymbolId, size_t> out_per_label, in_per_label;
      for (EdgeId e : g.OutEdges(n)) out_per_label[g.EdgeLabel(e)]++;
      for (EdgeId e : g.InEdges(n)) in_per_label[g.EdgeLabel(e)]++;
      for (const auto& [l, k] : out_per_label) {
        ++stats[l].srcs_with_any;
        if (k == 1) ++stats[l].srcs_with_one;
      }
      for (const auto& [l, k] : in_per_label) {
        ++stats[l].dsts_with_any;
        if (k == 1) ++stats[l].dsts_with_one;
      }
      // Implications between labels on the same node pair.
      std::map<NodeId, std::set<SymbolId>> by_dst;
      for (EdgeId e : g.OutEdges(n))
        by_dst[g.Edge(e).dst].insert(g.EdgeLabel(e));
      for (const auto& [y, labels] : by_dst) {
        std::set<SymbolId> rev;
        for (EdgeId e : g.OutEdges(y))
          if (g.Edge(e).dst == n) rev.insert(g.EdgeLabel(e));
        for (SymbolId l1 : labels) {
          for (SymbolId l2 : labels)
            if (l1 != l2) co_fwd[l1][l2]++;
          for (SymbolId l2 : rev)
            if (l1 != l2) co_rev[l1][l2]++;
        }
      }
      // Key mining: attr usage per node label.
      SymbolId nl = g.NodeLabel(n);
      for (const auto& [attr, value] : g.NodeAttrs(n).entries()) {
        auto& slot = attr_values[nl][attr];
        slot.first++;
        slot.second.insert(value);
      }
    }
  }
};

// Runs the read-only scan passes, sharded across a pool when
// opt.num_threads != 1. Shard workers touch only const Graph state and
// never the vocabulary writer API (single-writer/concurrent-reader model).
SupportStats CollectSupportStats(const GraphView& g,
                                 const MiningOptions& opt) {
  std::vector<EdgeId> edges = g.Edges();
  std::vector<NodeId> nodes = g.Nodes();

  if (opt.num_threads == 1) {
    SupportStats total;
    total.ScanEdges(g, edges, 0, edges.size());
    total.ScanNodes(g, nodes, 0, nodes.size());
    return total;
  }

  ThreadPool pool(opt.num_threads);
  // The sharded scan reads through one immutable snapshot shared by every
  // worker (all aggregates are sharding-independent, and snapshot reads are
  // bit-identical to live-graph reads, so the merged result is unchanged).
  // A 1-worker pool (e.g. num_threads=0 on a single-core host) skips the
  // build: there is nothing to share.
  std::unique_ptr<GraphSnapshot> built;
  const GraphView& view =
      pool.NumThreads() > 1 ? SnapshotForPass(g, &built) : g;
  size_t shards = std::max<size_t>(1, pool.NumThreads());
  std::vector<SupportStats> per_shard(shards);
  pool.ParallelFor(shards, [&](size_t s) {
    auto [elo, ehi] = BlockRange(edges.size(), s, shards);
    per_shard[s].ScanEdges(view, edges, elo, ehi);
    auto [nlo, nhi] = BlockRange(nodes.size(), s, shards);
    per_shard[s].ScanNodes(view, nodes, nlo, nhi);
  });
  SupportStats total;
  for (const SupportStats& ps : per_shard) total.Merge(ps);
  return total;
}

}  // namespace

std::vector<MinedRule> MineRules(const GraphView& g,
                                 const MiningOptions& opt) {
  std::vector<MinedRule> out;
  Vocabulary* vocab = g.vocab().get();

  // ---- Support statistics (parallel when opt.num_threads != 1) ----------
  SupportStats support = CollectSupportStats(g, opt);
  std::map<SymbolId, LabelStats>& stats = support.stats;
  auto& co_fwd = support.co_fwd;
  auto& co_rev = support.co_rev;
  auto& attr_values = support.attr_values;

  // ---- Emit edge rules ---------------------------------------------------
  for (const auto& [label, s] : stats) {
    if (s.count < opt.min_evidence) continue;
    std::string lname = vocab->LabelName(label);
    SymbolId src_l = DominantLabel(s.src_labels, s.count, opt.min_label_purity);
    SymbolId dst_l = DominantLabel(s.dst_labels, s.count, opt.min_label_purity);
    std::string src_name = LabelName(g, src_l);
    std::string dst_name = LabelName(g, dst_l);

    // Symmetry. Only meaningful when both endpoint types agree.
    double sym_support = double(s.symmetric) / double(s.count);
    if (sym_support >= opt.min_support && src_l == dst_l) {
      RuleBuilder b(vocab, "mined_sym_" + lname, ErrorClass::kIncomplete);
      VarId x = b.Node("x", src_l ? src_name : "");
      VarId y = b.Node("y", src_l ? src_name : "");
      b.Edge(x, y, lname);
      b.NoEdge(y, x, lname);
      b.ActionAddEdge(y, x, lname);
      Rule r = std::move(b).Build();
      if (ValidateRule(r, *vocab).ok())
        out.push_back({std::move(r), sym_support, s.count, "symmetry"});
    }

    // Functional / inverse-functional conflicts. Skip symmetric relations:
    // "at most one partner" style constraints are legitimate (spouse), but
    // social ties (knows) are not functional — the with_one ratio filters
    // that automatically.
    if (s.srcs_with_any >= opt.min_evidence) {
      double fn_support = double(s.srcs_with_one) / double(s.srcs_with_any);
      if (fn_support >= opt.min_support) {
        RuleBuilder b(vocab, "mined_fn_" + lname, ErrorClass::kConflict);
        VarId p = b.Node("p", src_l ? src_name : "");
        VarId c1 = b.Node("c1", dst_l ? dst_name : "");
        VarId c2 = b.Node("c2", dst_l ? dst_name : "");
        b.Edge(p, c1, lname);
        size_t e2 = b.Edge(p, c2, lname);
        b.ActionDelEdge(e2);
        Rule r = std::move(b).Build();
        if (ValidateRule(r, *vocab).ok())
          out.push_back(
              {std::move(r), fn_support, s.srcs_with_any, "functional"});
      }
    }
    if (s.dsts_with_any >= opt.min_evidence) {
      double ifn_support = double(s.dsts_with_one) / double(s.dsts_with_any);
      if (ifn_support >= opt.min_support) {
        RuleBuilder b(vocab, "mined_ifn_" + lname, ErrorClass::kConflict);
        VarId c1 = b.Node("c1", src_l ? src_name : "");
        VarId c2 = b.Node("c2", src_l ? src_name : "");
        VarId y = b.Node("y", dst_l ? dst_name : "");
        b.Edge(c1, y, lname);
        size_t e2 = b.Edge(c2, y, lname);
        b.ActionDelEdge(e2);
        Rule r = std::move(b).Build();
        if (ValidateRule(r, *vocab).ok())
          out.push_back({std::move(r), ifn_support, s.dsts_with_any,
                         "inverse_functional"});
      }
    }
  }

  // Implications (forward and reverse).
  auto emit_implication = [&](SymbolId l1, SymbolId l2, size_t co,
                              bool reverse) {
    const LabelStats& s1 = stats[l1];
    if (s1.count < opt.min_evidence) return;
    double support = double(co) / double(s1.count);
    if (support < opt.min_support) return;
    // Symmetric pairs already covered by symmetry rules.
    if (l1 == l2) return;
    std::string l1n = vocab->LabelName(l1), l2n = vocab->LabelName(l2);
    SymbolId src_l =
        DominantLabel(s1.src_labels, s1.count, opt.min_label_purity);
    SymbolId dst_l =
        DominantLabel(s1.dst_labels, s1.count, opt.min_label_purity);
    RuleBuilder b(vocab,
                  StrFormat("mined_imp%s_%s_%s", reverse ? "_rev" : "",
                            l1n.c_str(), l2n.c_str()),
                  ErrorClass::kIncomplete);
    VarId x = b.Node("x", src_l ? LabelName(g, src_l) : "");
    VarId y = b.Node("y", dst_l ? LabelName(g, dst_l) : "");
    b.Edge(x, y, l1n);
    if (reverse) {
      b.NoEdge(y, x, l2n);
      b.ActionAddEdge(y, x, l2n);
    } else {
      b.NoEdge(x, y, l2n);
      b.ActionAddEdge(x, y, l2n);
    }
    Rule r = std::move(b).Build();
    if (ValidateRule(r, *vocab).ok())
      out.push_back({std::move(r), support, s1.count, "implication"});
  };
  for (const auto& [l1, row] : co_fwd)
    for (const auto& [l2, co] : row) emit_implication(l1, l2, co, false);
  for (const auto& [l1, row] : co_rev)
    for (const auto& [l2, co] : row) emit_implication(l1, l2, co, true);

  // ---- Key mining: (node label, attr) uniqueness -> MERGE rule ----------
  for (const auto& [nl, attrs] : attr_values) {
    for (const auto& [attr, slot] : attrs) {
      const auto& [count, distinct] = slot;
      if (count < opt.min_evidence) continue;
      double uniqueness = double(distinct.size()) / double(count);
      if (uniqueness < opt.min_key_uniqueness) continue;
      std::string nln = vocab->LabelName(nl);
      std::string an = vocab->AttrName(attr);
      RuleBuilder b(vocab, StrFormat("mined_key_%s_%s", nln.c_str(),
                                     an.c_str()),
                    ErrorClass::kRedundant);
      VarId x = b.Node("x", nln);
      VarId y = b.Node("y", nln);
      b.AttrCmp(x, an, CmpOp::kEq, y, an);
      b.ActionMerge(x, y);
      Rule r = std::move(b).Build();
      if (ValidateRule(r, *vocab).ok())
        out.push_back({std::move(r), uniqueness, count, "key"});
    }
  }

  // Deterministic presentation: by kind, then name.
  std::sort(out.begin(), out.end(), [](const MinedRule& a, const MinedRule& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.rule.name() < b.rule.name();
  });
  return out;
}

}  // namespace grepair
