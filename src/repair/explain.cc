#include "repair/explain.h"

#include <map>
#include <set>

#include "util/strings.h"

namespace grepair {
namespace {

// "Person(n17 \"alice\")" — label, id, and name attribute when present.
// Works for tombstoned nodes too (their label/attrs survive removal).
std::string NodeRef(const GraphView& g, NodeId n) {
  if (n == kInvalidNode) return "?";
  if (n >= g.NodeIdBound()) return StrFormat("n%u", n);
  std::string out = g.vocab()->LabelName(g.NodeLabel(n));
  out += StrFormat("(n%u", n);
  SymbolId name = g.NodeAttr(n, g.vocab()->Attr("name"));
  if (name != 0) out += " \"" + g.vocab()->ValueName(name) + "\"";
  out += ")";
  return out;
}

std::string RuleName(const RuleSet& rules, RuleId id) {
  if (id < rules.size()) return rules[id].name();
  return StrFormat("baseline#%u", id);
}

std::string ClassName(const RuleSet& rules, RuleId id) {
  if (id < rules.size())
    return std::string(ErrorClassName(rules[id].error_class()));
  return "baseline";
}

}  // namespace

std::string ExplainFix(const GraphView& g, const RuleSet& rules,
                       const AppliedFix& fix) {
  std::string head = StrFormat("[%s] %s: ",
                               ClassName(rules, fix.rule).c_str(),
                               RuleName(rules, fix.rule).c_str());
  const std::string label =
      fix.label ? g.vocab()->LabelName(fix.label) : std::string("?");
  switch (fix.kind) {
    case ActionKind::kAddEdge:
      return head + StrFormat("added %s edge %s -> %s", label.c_str(),
                              NodeRef(g, fix.node_a).c_str(),
                              NodeRef(g, fix.node_b).c_str());
    case ActionKind::kAddNode:
      return head + StrFormat("created %s linked to %s via %s",
                              NodeRef(g, fix.new_node).c_str(),
                              NodeRef(g, fix.node_a).c_str(), label.c_str());
    case ActionKind::kDelEdge:
      return head + StrFormat("deleted %s edge %s -> %s", label.c_str(),
                              NodeRef(g, fix.node_a).c_str(),
                              NodeRef(g, fix.node_b).c_str());
    case ActionKind::kDelNode:
      return head + "deleted " + NodeRef(g, fix.node_a);
    case ActionKind::kUpdNode:
      if (fix.attr != 0)
        return head + StrFormat("set %s.%s = \"%s\"",
                                NodeRef(g, fix.node_a).c_str(),
                                g.vocab()->AttrName(fix.attr).c_str(),
                                g.vocab()->ValueName(fix.value).c_str());
      return head + StrFormat("relabeled %s to %s",
                              NodeRef(g, fix.node_a).c_str(), label.c_str());
    case ActionKind::kUpdEdge:
      return head + StrFormat("relabeled edge %s -> %s to %s",
                              NodeRef(g, fix.node_a).c_str(),
                              NodeRef(g, fix.node_b).c_str(), label.c_str());
    case ActionKind::kMerge:
      return head + StrFormat("merged %s into %s",
                              NodeRef(g, fix.node_b).c_str(),
                              NodeRef(g, fix.node_a).c_str());
  }
  return head + "?";
}

std::string ExplainRepair(const GraphView& g, const RuleSet& rules,
                          const RepairResult& result, size_t max_fixes) {
  std::string out = StrFormat(
      "repair: %zu violations -> %zu, %zu fixes, cost %.1f, %.1f ms "
      "(%.1f ms detecting)\n",
      result.initial_violations, result.remaining_violations,
      result.applied.size(), result.repair_cost, result.total_ms,
      result.detect_ms);
  if (result.budget_exhausted) out += "  WARNING: fix budget exhausted\n";
  if (result.oscillation_detected) out += "  WARNING: oscillation detected\n";

  std::map<std::string, size_t> per_class;
  std::map<std::string, size_t> per_rule;
  for (const AppliedFix& f : result.applied) {
    per_class[ClassName(rules, f.rule)]++;
    per_rule[RuleName(rules, f.rule)]++;
  }
  out += "by class:\n";
  for (const auto& [cls, n] : per_class)
    out += StrFormat("  %-12s %zu\n", cls.c_str(), n);
  out += "by rule:\n";
  for (const auto& [rule, n] : per_rule)
    out += StrFormat("  %-32s %zu\n", rule.c_str(), n);

  out += "fixes:\n";
  for (size_t i = 0; i < result.applied.size() && i < max_fixes; ++i)
    out += "  " + ExplainFix(g, rules, result.applied[i]) + "\n";
  if (result.applied.size() > max_fixes)
    out += StrFormat("  ... and %zu more\n",
                     result.applied.size() - max_fixes);
  return out;
}

std::string RepairDiffDot(const Graph& repaired,
                          const RepairResult& result) {
  // Classify elements from the journal slice the repair produced.
  std::set<NodeId> added_nodes, touched_nodes, removed_nodes;
  std::set<EdgeId> added_edges, touched_edges;
  struct Ghost {
    NodeId src, dst;
    SymbolId label;
  };
  std::vector<Ghost> removed_edges;

  size_t begin = result.applied.empty() ? repaired.JournalSize()
                                        : result.applied.front().journal_begin;
  size_t end = result.applied.empty() ? repaired.JournalSize()
                                      : result.applied.back().journal_end;
  for (size_t i = begin; i < end && i < repaired.Journal().size(); ++i) {
    const EditEntry& e = repaired.Journal()[i];
    switch (e.kind) {
      case EditKind::kAddNode: added_nodes.insert(e.node); break;
      case EditKind::kRemoveNode: removed_nodes.insert(e.node); break;
      case EditKind::kAddEdge: added_edges.insert(e.edge); break;
      case EditKind::kRemoveEdge:
        removed_edges.push_back({e.src, e.dst, e.label});
        break;
      case EditKind::kSetNodeLabel:
      case EditKind::kSetNodeAttr:
        touched_nodes.insert(e.node);
        break;
      case EditKind::kSetEdgeLabel:
      case EditKind::kSetEdgeAttr:
        touched_edges.insert(e.edge);
        break;
    }
  }

  const Vocabulary& vocab = *repaired.vocab();
  std::string out = "digraph repair {\n  rankdir=LR;\n  node [shape=box];\n";
  for (NodeId n : repaired.Nodes()) {
    std::string attrs;
    if (added_nodes.count(n)) {
      attrs = ", color=green, penwidth=2";
    } else if (touched_nodes.count(n)) {
      attrs = ", color=orange, penwidth=2";
    }
    out += StrFormat("  n%u [label=\"n%u:%s\"%s];\n", n, n,
                     vocab.LabelName(repaired.NodeLabel(n)).c_str(),
                     attrs.c_str());
  }
  for (NodeId n : removed_nodes) {
    out += StrFormat(
        "  n%u [label=\"n%u:%s\", color=red, style=dashed];\n", n, n,
        vocab.LabelName(repaired.NodeLabel(n)).c_str());
  }
  for (EdgeId e : repaired.Edges()) {
    EdgeView v = repaired.Edge(e);
    std::string attrs;
    if (added_edges.count(e)) {
      attrs = ", color=green, penwidth=2";
    } else if (touched_edges.count(e)) {
      attrs = ", color=orange, penwidth=2";
    }
    out += StrFormat("  n%u -> n%u [label=\"%s\"%s];\n", v.src, v.dst,
                     vocab.LabelName(v.label).c_str(), attrs.c_str());
  }
  for (const Ghost& ghost : removed_edges) {
    out += StrFormat(
        "  n%u -> n%u [label=\"%s\", color=red, style=dashed];\n", ghost.src,
        ghost.dst, vocab.LabelName(ghost.label).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace grepair
