#include "grr/rule.h"

#include "util/strings.h"

namespace grepair {

std::string_view ActionKindName(ActionKind k) {
  switch (k) {
    case ActionKind::kAddNode: return "ADD_NODE";
    case ActionKind::kAddEdge: return "ADD_EDGE";
    case ActionKind::kDelNode: return "DEL_NODE";
    case ActionKind::kDelEdge: return "DEL_EDGE";
    case ActionKind::kUpdNode: return "UPD_NODE";
    case ActionKind::kUpdEdge: return "UPD_EDGE";
    case ActionKind::kMerge: return "MERGE";
  }
  return "?";
}

std::string Rule::ToString(const Vocabulary& vocab) const {
  std::string out = StrFormat("RULE %s CLASS %s\n  %s\n  ACTION %s",
                              name_.c_str(),
                              std::string(ErrorClassName(cls_)).c_str(),
                              pattern_.ToString(vocab).c_str(),
                              std::string(ActionKindName(action_.kind)).c_str());
  return out;
}

Status RuleSet::Add(Rule rule) {
  for (const auto& r : rules_)
    if (r.name() == rule.name())
      return Status::AlreadyExists("duplicate rule name: " + rule.name());
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Result<RuleId> RuleSet::Find(std::string_view name) const {
  for (RuleId i = 0; i < rules_.size(); ++i)
    if (rules_[i].name() == name) return i;
  return Status::NotFound("no rule named " + std::string(name));
}

RuleSet RuleSet::Prefix(size_t n) const {
  RuleSet out;
  for (size_t i = 0; i < std::min(n, rules_.size()); ++i)
    out.rules_.push_back(rules_[i]);
  return out;
}

}  // namespace grepair
