#include "graph/error_class.h"

namespace grepair {

std::string_view ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kIncomplete: return "incomplete";
    case ErrorClass::kConflict: return "conflict";
    case ErrorClass::kRedundant: return "redundant";
  }
  return "?";
}

}  // namespace grepair
