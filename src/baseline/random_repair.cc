#include "baseline/random_repair.h"

namespace grepair {

Result<RepairResult> RandomOrderRepair(Graph* g, const RuleSet& rules,
                                       uint64_t seed) {
  RepairOptions opt;
  opt.strategy = RepairStrategy::kNaive;
  opt.seed = seed;
  opt.confidence_attr.clear();  // no semantic signal
  RepairEngine engine(opt);
  return engine.Run(g, rules);
}

}  // namespace grepair
