// Edge-attribute predicates: WHERE clauses over edge attributes (e.g.
// `e2.conf < e1.conf`), across the builder, the DSL, the matcher (full and
// incremental) and the engine.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "grr/rule_builder.h"
#include "grr/rule_parser.h"
#include "match/incremental.h"
#include "match/matcher.h"
#include "repair/engine.h"

namespace grepair {
namespace {

class EdgePredTest : public ::testing::Test {
 protected:
  EdgePredTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    city_ = vocab_->Label("City");
    country_ = vocab_->Label("Country");
    cap_ = vocab_->Label("capital_of");
    conf_ = vocab_->Attr("conf");
  }

  EdgeId AddCap(NodeId src, NodeId dst, const char* conf) {
    EdgeId e = g_.AddEdge(src, dst, cap_).value();
    g_.SetEdgeAttr(e, conf_, vocab_->Value(conf));
    return e;
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId city_, country_, cap_, conf_;
};

TEST_F(EdgePredTest, MatcherComparesEdgeAttrs) {
  NodeId c1 = g_.AddNode(city_), c2 = g_.AddNode(city_);
  NodeId y = g_.AddNode(country_);
  EdgeId hi = AddCap(c1, y, "90");
  EdgeId lo = AddCap(c2, y, "30");

  // (x)-[e1]->(y), (z)-[e2]->(y) WHERE e2.conf < e1.conf : exactly one
  // ordering satisfies the comparison, pinning e2 to the low-conf edge.
  Pattern p;
  VarId x = p.AddNode(city_), yv = p.AddNode(country_), z = p.AddNode(city_);
  p.AddEdge(x, yv, cap_);
  p.AddEdge(z, yv, cap_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(1, conf_);
  pred.op = CmpOp::kLt;
  pred.rhs = AttrOperand::EdgeAttr(0, conf_);
  p.AddPredicate(pred);

  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].edges[0], hi);
  EXPECT_EQ(matches[0].edges[1], lo);
}

TEST_F(EdgePredTest, EdgeAttrVsConstant) {
  NodeId c1 = g_.AddNode(city_), y = g_.AddNode(country_);
  AddCap(c1, y, "30");
  NodeId c2 = g_.AddNode(city_), y2 = g_.AddNode(country_);
  AddCap(c2, y2, "90");

  Pattern p;
  VarId x = p.AddNode(city_), yv = p.AddNode(country_);
  p.AddEdge(x, yv, cap_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(0, conf_);
  pred.op = CmpOp::kLt;
  pred.rhs = AttrOperand::Const(vocab_->Value("50"));
  p.AddPredicate(pred);

  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].nodes[0], c1);
}

TEST_F(EdgePredTest, AbsentEdgeAttrFailsComparison) {
  NodeId c1 = g_.AddNode(city_), y = g_.AddNode(country_);
  g_.AddEdge(c1, y, cap_);  // no conf attribute
  Pattern p;
  VarId x = p.AddNode(city_), yv = p.AddNode(country_);
  p.AddEdge(x, yv, cap_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(0, conf_);
  pred.op = CmpOp::kLt;
  pred.rhs = AttrOperand::Const(vocab_->Value("50"));
  p.AddPredicate(pred);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);
}

TEST_F(EdgePredTest, VerifyChecksEdgePredicates) {
  NodeId c1 = g_.AddNode(city_), c2 = g_.AddNode(city_);
  NodeId y = g_.AddNode(country_);
  AddCap(c1, y, "90");
  EdgeId lo = AddCap(c2, y, "30");

  Pattern p;
  VarId x = p.AddNode(city_), yv = p.AddNode(country_), z = p.AddNode(city_);
  p.AddEdge(x, yv, cap_);
  p.AddEdge(z, yv, cap_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(1, conf_);
  pred.op = CmpOp::kLt;
  pred.rhs = AttrOperand::EdgeAttr(0, conf_);
  p.AddPredicate(pred);

  auto matches = Matcher(g_, p).Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(Matcher(g_, p).Verify(matches[0]));
  // Raising the low confidence invalidates the match.
  g_.SetEdgeAttr(lo, conf_, vocab_->Value("95"));
  EXPECT_FALSE(Matcher(g_, p).Verify(matches[0]));
}

TEST_F(EdgePredTest, DslParsesEdgeOperands) {
  auto rule = ParseRule(R"(
    RULE drop_low_conf_capital CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    WHERE e2.conf < e1.conf
    ACTION DEL_EDGE e2
  )",
                        vocab_);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const auto& preds = rule.value().pattern().predicates();
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(preds[0].lhs.is_edge);
  EXPECT_TRUE(preds[0].rhs.is_edge);
  EXPECT_EQ(preds[0].lhs.var, 1u);
  EXPECT_EQ(preds[0].rhs.var, 0u);
}

TEST_F(EdgePredTest, EngineUsesEdgePredicateRule) {
  // With the e2.conf < e1.conf guard, even the NAIVE strategy (which has no
  // confidence cost model) is forced to delete the low-confidence claim:
  // the semantics moved from the engine into the rule.
  auto rules = ParseRules(R"(
    RULE drop_low_conf_capital CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    WHERE e2.conf < e1.conf
    ACTION DEL_EDGE e2
  )",
                          vocab_);
  ASSERT_TRUE(rules.ok());
  NodeId c1 = g_.AddNode(city_), c2 = g_.AddNode(city_);
  NodeId y = g_.AddNode(country_);
  EdgeId hi = AddCap(c1, y, "90");
  EdgeId lo = AddCap(c2, y, "30");
  g_.ResetJournal();

  RepairOptions opt;
  opt.strategy = RepairStrategy::kNaive;
  RepairEngine engine(opt);
  auto res = engine.Run(&g_, rules.value());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
  EXPECT_TRUE(g_.EdgeAlive(hi));
  EXPECT_FALSE(g_.EdgeAlive(lo));
}

TEST_F(EdgePredTest, IncrementalDetectsEdgeAttrChange) {
  NodeId c1 = g_.AddNode(city_), c2 = g_.AddNode(city_);
  NodeId y = g_.AddNode(country_);
  AddCap(c1, y, "90");
  EdgeId e2 = AddCap(c2, y, "90");  // equal: strict < holds in no ordering

  Pattern p;
  VarId x = p.AddNode(city_), yv = p.AddNode(country_), z = p.AddNode(city_);
  p.AddEdge(x, yv, cap_);
  p.AddEdge(z, yv, cap_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(1, conf_);
  pred.op = CmpOp::kLt;
  pred.rhs = AttrOperand::EdgeAttr(0, conf_);
  p.AddPredicate(pred);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);

  size_t mark = g_.JournalSize();
  g_.SetEdgeAttr(e2, conf_, vocab_->Value("10"));  // now a violation
  std::vector<EditEntry> delta(g_.Journal().begin() + mark,
                               g_.Journal().end());
  size_t found = 0;
  DeltaMatcher(g_, p).FindDelta(delta, [&](const Match&) {
    ++found;
    return true;
  });
  EXPECT_EQ(found, 1u);
}

TEST_F(EdgePredTest, ValidatorRangeChecksEdgeOperands) {
  Pattern p;
  p.AddNode(city_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::EdgeAttr(5, conf_);  // no edge 5
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::Const(vocab_->Value("1"));
  p.AddPredicate(pred);
  EXPECT_FALSE(p.Validate().ok());
}

}  // namespace
}  // namespace grepair
