// F6 — Runtime vs number of rules: repair time on a fixed KG workload as
// the rule set grows from 2 to all 10 KG rules (prefixes of the shipped
// set). Expected shape: roughly linear in the rule count for detection-
// bound runs; violations found grows stepwise as classes of errors become
// detectable.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  KgOptions gopt;
  gopt.num_persons = 3000;
  gopt.num_cities = 300;
  gopt.num_countries = 30;
  gopt.num_orgs = 200;
  InjectOptions iopt;
  iopt.rate = 0.05;
  DatasetBundle bundle = MustKgBundle(gopt, iopt);

  TableWriter t("F6: repair runtime vs rule count (KG, 5% errors)",
                {"rules", "violations", "fixes", "greedy_ms", "batch_ms"});

  for (size_t k = 2; k <= bundle.rules.size(); k += 2) {
    DatasetBundle sub;
    sub.name = bundle.name;
    sub.vocab = bundle.vocab;
    sub.graph = bundle.graph.Clone();
    sub.rules = bundle.rules.Prefix(k);
    sub.truth = bundle.truth;
    sub.clean_nodes = bundle.clean_nodes;
    sub.clean_edges = bundle.clean_edges;

    MethodOutcome greedy = MustRun(sub, "greedy");
    MethodOutcome batch = MustRun(sub, "batch");
    t.AddRow({TableWriter::Int(int64_t(k)),
              TableWriter::Int(int64_t(greedy.repair.initial_violations)),
              TableWriter::Int(int64_t(greedy.repair.applied.size())),
              TableWriter::Num(greedy.repair.total_ms, 1),
              TableWriter::Num(batch.repair.total_ms, 1)});
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
