// DSL parser tests: happy paths for all seven actions, WHERE forms, and
// error paths with line numbers.
#include <gtest/gtest.h>

#include "grr/rule_parser.h"
#include "grr/standard_rules.h"

namespace grepair {
namespace {

TEST(RuleParserTest, ParsesAddEdgeRule) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE spouse_symmetric CLASS incomplete
    MATCH (x:Person)-[spouse]->(y:Person)
    WHERE NOT EDGE (y)-[spouse]->(x)
    ACTION ADD_EDGE (y)-[spouse]->(x)
  )",
                     vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Rule& rule = r.value();
  EXPECT_EQ(rule.name(), "spouse_symmetric");
  EXPECT_EQ(rule.error_class(), ErrorClass::kIncomplete);
  EXPECT_EQ(rule.action().kind, ActionKind::kAddEdge);
  EXPECT_EQ(rule.pattern().NumNodes(), 2u);
  EXPECT_EQ(rule.pattern().NumEdges(), 1u);
  EXPECT_EQ(rule.pattern().nacs().size(), 1u);
  // Action adds (y)->(x): var=y=1, var2=x=0.
  EXPECT_EQ(rule.action().var, 1u);
  EXPECT_EQ(rule.action().var2, 0u);
}

TEST(RuleParserTest, ParsesAddNodeBothDirections) {
  auto vocab = MakeVocabulary();
  auto r1 = ParseRule(R"(
    RULE needs_cap CLASS incomplete
    MATCH (y:Country)
    WHERE NOT EDGE (*)-[capital_of]->(y)
    ACTION ADD_NODE (c:City)-[capital_of]->(y)
  )",
                      vocab);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().action().kind, ActionKind::kAddNode);
  EXPECT_TRUE(r1.value().action().new_node_is_src);

  auto r2 = ParseRule(R"(
    RULE needs_author CLASS incomplete
    MATCH (p:Paper)
    WHERE NOT EDGE (p)-[authored_by]->(*)
    ACTION ADD_NODE (p)-[authored_by]->(a:Author)
  )",
                      vocab);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.value().action().new_node_is_src);
}

TEST(RuleParserTest, ParsesDelEdgeWithNamedEdgeVar) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE one_cap CLASS conflict
    MATCH (x:City)-[e1:capital_of]->(y:Country), (z:City)-[e2:capital_of]->(y)
    ACTION DEL_EDGE e2
  )",
                     vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().action().kind, ActionKind::kDelEdge);
  EXPECT_EQ(r.value().action().edge_idx, 1u);
  EXPECT_EQ(r.value().pattern().NumNodes(), 3u);
}

TEST(RuleParserTest, ParsesDelNodeWithIsolatedAndAbsent) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE junk CLASS redundant
    MATCH (x:Org)
    WHERE ISOLATED x AND ABSENT x.name
    ACTION DEL_NODE x
  )",
                     vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().action().kind, ActionKind::kDelNode);
  EXPECT_EQ(r.value().pattern().nacs().size(), 1u);
  EXPECT_EQ(r.value().pattern().predicates().size(), 1u);
}

TEST(RuleParserTest, ParsesUpdNodeLabelAndSet) {
  auto vocab = MakeVocabulary();
  auto r1 = ParseRule(R"(
    RULE fix_type CLASS conflict
    MATCH (x:City)-[works_for]->(o:Org)
    ACTION UPD_NODE x LABEL Person
  )",
                      vocab);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().action().kind, ActionKind::kUpdNode);
  SymbolId person;
  ASSERT_TRUE(vocab->LookupLabel("Person", &person));
  EXPECT_EQ(r1.value().action().label, person);

  auto r2 = ParseRule(R"(
    RULE flag CLASS conflict
    MATCH (x:City)-[capital_of]->(y:Country)
    WHERE x.is_capital != "yes"
    ACTION UPD_NODE x SET is_capital = "yes"
  )",
                      vocab);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_NE(r2.value().action().attr, 0u);
  EXPECT_NE(r2.value().action().value, 0u);
}

TEST(RuleParserTest, ParsesUpdEdgeAndMerge) {
  auto vocab = MakeVocabulary();
  auto r1 = ParseRule(R"(
    RULE relabel CLASS conflict
    MATCH (p:Paper)-[e:cites]->(a:Author)
    ACTION UPD_EDGE e LABEL authored_by
  )",
                      vocab);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().action().kind, ActionKind::kUpdEdge);

  auto r2 = ParseRule(R"(
    RULE dup CLASS redundant
    MATCH (x:Person), (y:Person)
    WHERE x.name = y.name
    ACTION MERGE (x, y)
  )",
                      vocab);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().action().kind, ActionKind::kMerge);
}

TEST(RuleParserTest, ParsesPriorityAndComparisons) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE future_cite CLASS conflict
    MATCH (p:Paper)-[e:cites]->(q:Paper)
    WHERE p.year < q.year
    ACTION DEL_EDGE e
    PRIORITY 2.5
  )",
                     vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().priority(), 2.5);
}

TEST(RuleParserTest, SelfLoopPattern) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE self_knows CLASS conflict
    MATCH (x:Person)-[e:knows]->(x)
    ACTION DEL_EDGE e
  )",
                     vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().pattern().NumNodes(), 1u);
  EXPECT_EQ(r.value().pattern().edges()[0].src,
            r.value().pattern().edges()[0].dst);
}

TEST(RuleParserTest, MultipleRulesInOneFile) {
  auto vocab = MakeVocabulary();
  auto rs = ParseRules(R"(
    # first
    RULE r1 CLASS conflict
    MATCH (x:A)-[e:l]->(y:B)
    ACTION DEL_EDGE e

    RULE r2 CLASS redundant
    MATCH (x:A), (y:A)
    WHERE x.k = y.k
    ACTION MERGE (x, y)
  )",
                       vocab);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().size(), 2u);
  EXPECT_TRUE(rs.value().Find("r2").ok());
  EXPECT_FALSE(rs.value().Find("nope").ok());
}

TEST(RuleParserTest, RejectsDuplicateRuleNames) {
  auto vocab = MakeVocabulary();
  auto rs = ParseRules(R"(
    RULE r CLASS conflict
    MATCH (x:A)-[e:l]->(y:B)
    ACTION DEL_EDGE e
    RULE r CLASS conflict
    MATCH (x:A)-[e:l]->(y:B)
    ACTION DEL_EDGE e
  )",
                       vocab);
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kAlreadyExists);
}

TEST(RuleParserTest, ErrorsCarryLineNumbers) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule("RULE x CLASS conflict\nMATCH (a:A)\nACTION BOGUS a\n",
                     vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
}

TEST(RuleParserTest, RejectsUnknownVariable) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE r CLASS redundant
    MATCH (x:A)
    ACTION DEL_NODE zz
  )",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, RejectsUnknownEdgeVariable) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE r CLASS conflict
    MATCH (x:A)-[e:l]->(y:B)
    ACTION DEL_EDGE nosuch
  )",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, RejectsDoubleStarNac) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE r CLASS incomplete
    MATCH (x:A)
    WHERE NOT EDGE (*)-[l]->(*)
    ACTION ADD_EDGE (x)-[l]->(x)
  )",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, RejectsAddNodeWithTwoExistingVars) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE r CLASS incomplete
    MATCH (x:A), (y:B)
    WHERE NOT EDGE (x)-[l]->(y)
    ACTION ADD_NODE (x)-[l]->(y)
  )",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, RejectsUnterminatedString) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule("RULE r CLASS conflict\nMATCH (x:A)\nWHERE x.a = \"oops",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, ConflictingVarLabelRejected) {
  auto vocab = MakeVocabulary();
  auto r = ParseRule(R"(
    RULE r CLASS conflict
    MATCH (x:A)-[e:l]->(x:B)
    ACTION DEL_EDGE e
  )",
                     vocab);
  EXPECT_FALSE(r.ok());
}

TEST(RuleParserTest, StandardRuleSetsParse) {
  auto vocab = MakeVocabulary();
  EXPECT_TRUE(KgRules(vocab).ok());
  EXPECT_TRUE(SocialRules(vocab).ok());
  EXPECT_TRUE(CitationRules(vocab).ok());
  EXPECT_TRUE(AdversarialCyclicRules(vocab).ok());
  EXPECT_TRUE(ContradictoryRules(vocab).ok());
  EXPECT_EQ(KgRules(vocab).value().size(), 10u);
}

TEST(RuleParserTest, RuleSetPrefix) {
  auto vocab = MakeVocabulary();
  auto rs = KgRules(vocab);
  ASSERT_TRUE(rs.ok());
  RuleSet pre = rs.value().Prefix(3);
  EXPECT_EQ(pre.size(), 3u);
  EXPECT_EQ(pre[0].name(), rs.value()[0].name());
}

}  // namespace
}  // namespace grepair
