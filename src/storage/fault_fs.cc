#include "storage/fault_fs.h"

namespace grepair {
namespace storage {

namespace {

Status Injected(const char* what) {
  return Status::IoError(std::string("injected fault: ") + what);
}

}  // namespace

// Wraps the base WritableFile so Append/Sync count as mutating ops and
// honour the short-write / bit-flip plan entries.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultFs* owner)
      : base_(std::move(base)), owner_(owner) {}

  Status Append(const void* data, size_t n) override {
    const uint64_t op = owner_->ops_;
    if (!owner_->NextOpAllowed()) return Injected("append");
    if (op == owner_->plan_.short_write_op) {
      // Persist half the payload, then report failure: the caller believes
      // nothing landed, but a torn prefix is on "disk".
      Status st = base_->Append(data, n / 2);
      if (!st.ok()) return st;
      return Injected("short write");
    }
    if (op == owner_->plan_.bit_flip_op && n > 0) {
      // Flip one bit mid-payload and report success: silent corruption
      // only the CRC layer can detect.
      std::string copy(static_cast<const char*>(data), n);
      copy[copy.size() / 2] ^= 0x10;
      return base_->Append(copy.data(), copy.size());
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    if (!owner_->NextOpAllowed()) return Injected("fsync");
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultFs* owner_;
};

bool FaultFs::NextOpAllowed() {
  const uint64_t op = ops_++;
  return op < plan_.fail_after_op;
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenWritable(
    const std::string& path, bool truncate) {
  if (!NextOpAllowed()) return Injected("open");
  GREPAIR_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->OpenWritable(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(base), this));
}

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  if (!NextOpAllowed()) return Injected("rename");
  return base_->Rename(from, to);
}

Status FaultFs::RemoveFile(const std::string& path) {
  if (!NextOpAllowed()) return Injected("unlink");
  return base_->RemoveFile(path);
}

Status FaultFs::Truncate(const std::string& path, uint64_t size) {
  if (!NextOpAllowed()) return Injected("truncate");
  return base_->Truncate(path, size);
}

Status FaultFs::CreateDir(const std::string& dir) {
  if (!NextOpAllowed()) return Injected("mkdir");
  return base_->CreateDir(dir);
}

Result<std::vector<std::string>> FaultFs::ListDir(const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultFs::SyncDir(const std::string& dir) {
  if (!NextOpAllowed()) return Injected("fsync dir");
  return base_->SyncDir(dir);
}

}  // namespace storage
}  // namespace grepair
