#include "storage/recovery.h"

#include <algorithm>

#include "storage/checkpoint.h"
#include "util/strings.h"

namespace grepair {
namespace storage {

namespace {

/// Segment start seqs in `dir`, ascending.
Result<std::vector<uint64_t>> ListSegments(Fs* fs, const std::string& dir) {
  GREPAIR_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

Result<RecoveryPlan> PlanRecovery(Fs* fs, const std::string& dir) {
  RecoveryPlan plan;
  GREPAIR_ASSIGN_OR_RETURN(std::vector<uint64_t> ckpts,
                           ListCheckpoints(fs, dir));

  // Newest checkpoint that validates; fall back at most once (retention
  // never keeps WAL history across more than two checkpoints, so a third
  // attempt could not be replayed forward anyway).
  const size_t tries = std::min<size_t>(2, ckpts.size());
  for (size_t i = 0; i < tries && !plan.found_checkpoint; ++i) {
    const std::string path = dir + "/" + CheckpointName(ckpts[i]);
    Result<std::string> payload = ReadCheckpoint(fs, path, ckpts[i]);
    if (payload.ok()) {
      plan.found_checkpoint = true;
      plan.checkpoint_seq = ckpts[i];
      plan.checkpoint_payload = std::move(payload).value();
      break;
    }
    if (payload.status().code() != StatusCode::kDataLoss)
      return payload.status();
    // Quarantine rather than delete: the bytes stay inspectable, but the
    // name no longer parses so no later pass can pick the file up again.
    ++plan.corrupt_checkpoints;
    plan.notes.push_back(payload.status().message() + " (quarantined)");
    Status quarantine = fs->Rename(path, path + ".corrupt");
    if (!quarantine.ok())
      plan.notes.push_back("quarantine failed: " + quarantine.message());
  }
  if (!plan.found_checkpoint && !ckpts.empty())
    return Status::DataLoss(
        "no retained checkpoint validates; refusing to guess a base state");
  if (!plan.found_checkpoint) plan.checkpoint_seq = 0;

  GREPAIR_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                           ListSegments(fs, dir));
  uint64_t expected = plan.checkpoint_seq + 1;
  bool gap = false;
  for (uint64_t start : segments) {
    const std::string path = dir + "/" + WalSegmentName(start);
    GREPAIR_ASSIGN_OR_RETURN(WalSegmentScan scan, ReadWalSegment(fs, path));
    if (scan.valid_size < scan.file_size) {
      plan.truncated_bytes += scan.file_size - scan.valid_size;
      plan.notes.push_back(StrFormat(
          "%s: truncated %llu tail bytes (%s)", path.c_str(),
          (unsigned long long)(scan.file_size - scan.valid_size),
          scan.note.empty() ? "incomplete batch" : scan.note.c_str()));
      GREPAIR_RETURN_IF_ERROR(fs->Truncate(path, scan.valid_size));
    }
    for (WalBatch& b : scan.batches) {
      if (b.seq < expected) continue;  // already covered by the checkpoint
      if (gap || b.seq > expected) {
        if (!gap) {
          if (plan.batches.empty())
            return Status::DataLoss(StrFormat(
                "wal does not reach the checkpoint: first batch is %llu, "
                "need %llu",
                (unsigned long long)b.seq, (unsigned long long)expected));
          gap = true;
          plan.notes.push_back(StrFormat(
              "seq gap: batch %llu where %llu expected; dropping everything "
              "after the gap",
              (unsigned long long)b.seq, (unsigned long long)expected));
        }
        ++plan.dropped_batches;
        continue;
      }
      plan.batches.push_back(std::move(b));
      ++expected;
    }
  }
  plan.next_seq = plan.checkpoint_seq + 1 + plan.batches.size();
  return plan;
}

Result<std::string> DumpStorageDir(Fs* fs, const std::string& dir) {
  std::string out = "storage dir " + dir + "\n";
  GREPAIR_ASSIGN_OR_RETURN(std::vector<uint64_t> ckpts,
                           ListCheckpoints(fs, dir));
  out += StrFormat("checkpoints: %zu\n", ckpts.size());
  for (uint64_t seq : ckpts) {
    const std::string path = dir + "/" + CheckpointName(seq);
    Result<std::string> payload = ReadCheckpoint(fs, path, seq);
    if (payload.ok())
      out += StrFormat("  checkpoint seq=%llu ok payload_bytes=%zu\n",
                       (unsigned long long)seq, payload.value().size());
    else
      out += StrFormat("  checkpoint seq=%llu INVALID: %s\n",
                       (unsigned long long)seq,
                       payload.status().message().c_str());
  }
  GREPAIR_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                           ListSegments(fs, dir));
  out += StrFormat("segments: %zu\n", segments.size());
  for (uint64_t start : segments) {
    const std::string path = dir + "/" + WalSegmentName(start);
    GREPAIR_ASSIGN_OR_RETURN(WalSegmentScan scan, ReadWalSegment(fs, path));
    std::string range = "empty";
    if (!scan.batches.empty())
      range = StrFormat("%llu..%llu",
                        (unsigned long long)scan.batches.front().seq,
                        (unsigned long long)scan.batches.back().seq);
    out += StrFormat(
        "  segment start=%llu batches=%zu (%s) valid_bytes=%llu "
        "file_bytes=%llu%s%s\n",
        (unsigned long long)start, scan.batches.size(), range.c_str(),
        (unsigned long long)scan.valid_size,
        (unsigned long long)scan.file_size, scan.note.empty() ? "" : " note=",
        scan.note.c_str());
  }
  return out;
}

}  // namespace storage
}  // namespace grepair
