// The violation store: detected rule violations deduplicated by their
// element footprint, with alternative repairs per violation, prioritized by
// cheapest-fix cost (min-heap with lazy invalidation).
#ifndef GREPAIR_REPAIR_VIOLATION_H_
#define GREPAIR_REPAIR_VIOLATION_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "grr/rule.h"
#include "match/matcher.h"

namespace grepair {

/// One detected violation: a rule and the (one or more) matches that embody
/// it. Matches of the same rule over the same element set — e.g. the two
/// orderings of a functional-conflict pattern — are folded into ONE
/// violation whose matches are alternative repairs.
struct Violation {
  RuleId rule;
  std::vector<Match> alternatives;
  double best_cost = 0.0;
};

/// Stable key of a violation: rule + sorted node ids + sorted edge ids.
uint64_t ViolationKey(RuleId rule, const Match& m);

/// Priority store. Entries are only ever invalidated lazily: the consumer
/// pops, re-verifies against the live graph, and discards dead entries.
class ViolationStore {
 public:
  /// Adds a match; folds into an existing violation with the same key.
  /// Returns true if this created a NEW violation (not a fold/duplicate).
  bool Add(RuleId rule, const Match& m, double cost);

  /// Pops the cheapest violation. Returns false when empty. The popped
  /// violation may be stale — the caller re-verifies.
  bool PopBest(Violation* out);

  /// Number of live (non-popped) violations currently tracked.
  size_t Size() const { return live_.size(); }
  bool Empty() const { return live_.empty(); }

  /// Drops everything.
  void Clear();

  /// All live violations (unsorted); used by batch strategies.
  std::vector<Violation> Snapshot() const;

 private:
  struct HeapItem {
    double cost;
    uint64_t key;
    bool operator>(const HeapItem& o) const { return cost > o.cost; }
  };
  std::unordered_map<uint64_t, Violation> live_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap_;
};

}  // namespace grepair

#endif  // GREPAIR_REPAIR_VIOLATION_H_
