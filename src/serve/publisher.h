// Epoch-published snapshots: the read side of the serving subsystem
// (DESIGN.md "Read path / epoch publication").
//
// The single writer (RepairService::Commit) prepares the NEXT generation in
// a private double-buffer slot — patching it forward from the graph's delta
// log with the same machinery the seed pass uses — and publishes it with one
// atomic pointer swap after the batch (cascade fixes included) has landed.
// Any number of concurrent readers pin the last published generation and
// run detection or backlog reads against it without ever touching the
// service commit mutex; a reader therefore observes EXACTLY the state of
// some committed batch boundary, bit-identical to a sequential replay up to
// that batch.
//
// Lifetime rules (RCU-style):
//   - a Generation is immutable from Publish() until the writer recycles
//     its slot; readers share it read-only through shared_ptr;
//   - the writer recycles the retired slot IN PLACE only when its pin
//     count has drained to zero. A still-pinned retired slot is abandoned
//     instead (the slot gets a fresh Generation object; the old one lives
//     on until the last reader's lease drops — "old generation survives
//     until last reader", tests/test_publish.cc);
//   - pin counting, not shared_ptr::use_count(), gates recycling: leases
//     release their pin with a release-store and the writer re-reads it
//     with an acquire-load, giving the happens-before edge use_count()'s
//     relaxed accounting cannot (the scheme TSan verifies).
//
// Pinning takes a tiny mutex (pointer copy + counter increment — no
// allocation, no graph work); every read of graph data after that is
// lock-free and scales with cores.
#ifndef GREPAIR_SERVE_PUBLISHER_H_
#define GREPAIR_SERVE_PUBLISHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph_view.h"
#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "repair/violation.h"

namespace grepair {
namespace serve {

class SnapshotPublisher;

/// One published (or in-preparation) snapshot generation: the frozen store
/// — monolithic or sharded, exactly one non-null once built — plus the
/// violation backlog captured at the same batch boundary, so the
/// `violations` verb pages a state consistent with what `detect` sees.
struct Generation {
  std::unique_ptr<GraphSnapshot> mono;
  std::unique_ptr<ShardedSnapshot> sharded;
  /// Backlog at the boundary, sorted deterministically (rule, first
  /// alternative's nodes, then edges — the SaveState order).
  std::vector<Violation> backlog;
  uint64_t generation = 0;  ///< publication counter (1-based; 0 = never)
  uint64_t batch = 0;       ///< committed batch seq this state mirrors
  uint64_t watermark = 0;   ///< delta-log position the store mirrors
  /// Which BeginNewEpoch() era the store belongs to; a slot from an older
  /// era (the backing graph was swapped by restore/recovery) is cleared
  /// before reuse instead of patched.
  uint64_t epoch = 0;
  /// Live leases. Writer-side recycling loads with acquire and requires 0;
  /// leases decrement with release — see the file comment.
  std::atomic<uint64_t> pins{0};

  bool has_store() const { return mono != nullptr || sharded != nullptr; }
  const GraphView* view() const {
    return sharded != nullptr ? static_cast<const GraphView*>(sharded.get())
                              : static_cast<const GraphView*>(mono.get());
  }
  size_t MemoryBytes() const {
    if (sharded != nullptr) return sharded->MemoryBytes();
    return mono != nullptr ? mono->MemoryBytes() : 0;
  }
};

/// RAII pin on one published generation. While any lease is live the
/// generation's store is frozen and safe to read from any thread; the
/// destructor releases the pin (and, through the shared_ptr, the
/// generation itself once the publisher has also let go). Move-only.
class ReadLease {
 public:
  ReadLease() = default;
  explicit ReadLease(std::shared_ptr<const Generation> gen)
      : gen_(std::move(gen)) {}
  ~ReadLease() { Release(); }
  ReadLease(ReadLease&& o) noexcept : gen_(std::move(o.gen_)) {
    o.gen_.reset();
  }
  ReadLease& operator=(ReadLease&& o) noexcept {
    if (this != &o) {
      Release();
      gen_ = std::move(o.gen_);
      o.gen_.reset();
    }
    return *this;
  }
  ReadLease(const ReadLease&) = delete;
  ReadLease& operator=(const ReadLease&) = delete;

  bool valid() const { return gen_ != nullptr; }
  const Generation* operator->() const { return gen_.get(); }
  const Generation& operator*() const { return *gen_; }
  /// The pinned frozen store (valid() must hold).
  const GraphView& view() const { return *gen_->view(); }

  void Release() {
    if (gen_ == nullptr) return;
    // Release order: the writer's acquire-load of pins == 0 must see every
    // read this lease performed as happened-before the recycle.
    const_cast<Generation*>(gen_.get())
        ->pins.fetch_sub(1, std::memory_order_release);
    gen_.reset();
  }

 private:
  std::shared_ptr<const Generation> gen_;
};

/// The double-buffered publication point. Single writer (the commit
/// thread) calls Writable/Publish/BeginNewEpoch; any thread calls Pin and
/// the counters. With `enabled` false the publisher degrades to one
/// private writer slot and Pin() always returns an empty lease — the
/// pre-publication serving behavior, kept as an ablation switch.
class SnapshotPublisher {
 public:
  explicit SnapshotPublisher(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Writer: the slot the next generation is prepared in (stable between
  /// Publish calls — a commit may advance it at the seed pass and again at
  /// publication). Recycled in place when reader-free; abandoned to its
  /// pinned readers and replaced with a fresh Generation otherwise. A slot
  /// from an older epoch comes back cleared (store dropped, watermark 0).
  Generation* Writable();

  /// Writer: atomically exposes the Writable() slot to readers as the next
  /// generation of committed batch `batch`, with `backlog` as its
  /// violation page source. The previously published generation retires
  /// into the writable slot.
  void Publish(uint64_t batch, std::vector<Violation> backlog);

  /// Reader: pins the last published generation (empty lease when nothing
  /// is published or publication is disabled).
  ReadLease Pin() const;

  /// Writer: invalidates every slot's store (the backing graph was swapped
  /// — restore, checkpoint compaction, recovery). The published generation
  /// keeps serving the consistent PRE-swap state until the next Publish
  /// atomically replaces it; no reader ever observes a half-restored
  /// store.
  void BeginNewEpoch();

  /// Last published generation number (0 before the first Publish).
  uint64_t CurrentGeneration() const;

  /// Writer: the current BeginNewEpoch() era (slot-validity accounting).
  uint64_t current_epoch() const { return epoch_; }

  /// Writer: number of retired-but-pinned generations abandoned to their
  /// readers (each one cost a fresh rebuild instead of a recycle).
  uint64_t abandoned() const { return abandoned_; }

  /// Writer: heap footprint across both slots' stores.
  size_t MemoryBytes() const;

  /// Writer: walks both slots (for delta-log retention accounting).
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (const auto& s : slots_)
      if (s != nullptr) fn(*s);
  }

 private:
  bool enabled_;
  uint64_t epoch_ = 0;
  uint64_t next_generation_ = 1;
  uint64_t abandoned_ = 0;
  /// Guards published_/slots_ pointer swaps and pin acquisition. Held for
  /// pointer-sized work only — never while building or reading a store.
  mutable std::mutex mu_;
  std::shared_ptr<Generation> slots_[2];
  int published_ = -1;  ///< index into slots_, -1 = nothing published
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_PUBLISHER_H_
