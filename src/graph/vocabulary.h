// Shared symbol space for graphs and rules. A Graph and the RuleSet applied
// to it must use the same Vocabulary so label/attribute ids agree.
#ifndef GREPAIR_GRAPH_VOCABULARY_H_
#define GREPAIR_GRAPH_VOCABULARY_H_

#include <memory>
#include <string_view>

#include "util/dictionary.h"

namespace grepair {

/// Three interned namespaces: element labels (node types and edge relation
/// names share one space), attribute names, and attribute values. All values
/// are symbolic strings — numeric comparisons are done on the string form by
/// the predicate evaluator where a rule requests it.
class Vocabulary {
 public:
  /// Interns an element label (e.g. "Person", "knows").
  SymbolId Label(std::string_view s) { return labels_.Intern(s); }
  /// Interns an attribute name (e.g. "name", "conf").
  SymbolId Attr(std::string_view s) { return attrs_.Intern(s); }
  /// Interns an attribute value (e.g. "Alice", "1970").
  SymbolId Value(std::string_view s) { return values_.Intern(s); }

  const std::string& LabelName(SymbolId id) const { return labels_.Name(id); }
  const std::string& AttrName(SymbolId id) const { return attrs_.Name(id); }
  const std::string& ValueName(SymbolId id) const { return values_.Name(id); }

  bool LookupLabel(std::string_view s, SymbolId* id) const {
    return labels_.Lookup(s, id);
  }
  bool LookupAttr(std::string_view s, SymbolId* id) const {
    return attrs_.Lookup(s, id);
  }
  bool LookupValue(std::string_view s, SymbolId* id) const {
    return values_.Lookup(s, id);
  }

  /// Read-only view for code that runs on concurrent reader threads
  /// (parallel detection, mining statistics). It exposes lookups and name
  /// resolution but no interning, so holding a LookupOnly instead of the
  /// Vocabulary makes the no-Intern rule (DESIGN.md "Threading model") a
  /// compile-time guarantee. A symbol that was never interned cannot occur
  /// in the graph, so a failed lookup simply means "matches nothing".
  class LookupOnly {
   public:
    explicit LookupOnly(const Vocabulary& v) : v_(v) {}
    bool Label(std::string_view s, SymbolId* id) const {
      return v_.LookupLabel(s, id);
    }
    bool Attr(std::string_view s, SymbolId* id) const {
      return v_.LookupAttr(s, id);
    }
    bool Value(std::string_view s, SymbolId* id) const {
      return v_.LookupValue(s, id);
    }
    const std::string& LabelName(SymbolId id) const { return v_.LabelName(id); }
    const std::string& AttrName(SymbolId id) const { return v_.AttrName(id); }
    const std::string& ValueName(SymbolId id) const { return v_.ValueName(id); }

   private:
    const Vocabulary& v_;
  };
  LookupOnly lookup_only() const { return LookupOnly(*this); }

  size_t NumLabels() const { return labels_.size(); }
  size_t NumAttrs() const { return attrs_.size(); }
  size_t NumValues() const { return values_.size(); }

 private:
  Dictionary labels_;
  Dictionary attrs_;
  Dictionary values_;
};

using VocabularyPtr = std::shared_ptr<Vocabulary>;

/// Creates a fresh shared vocabulary.
inline VocabularyPtr MakeVocabulary() { return std::make_shared<Vocabulary>(); }

}  // namespace grepair

#endif  // GREPAIR_GRAPH_VOCABULARY_H_
