// Small string helpers shared by the DSL parser, graph I/O and table writers.
#ifndef GREPAIR_UTIL_STRINGS_H_
#define GREPAIR_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace grepair {

/// Splits on `sep`, keeping empty fields (TSV semantics).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Uppercases ASCII in place and returns the result (for DSL keywords).
std::string ToUpperAscii(std::string_view s);

/// Parses a non-negative integer; returns false on any non-digit content.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double via strtod; returns false on trailing junk.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace grepair

#endif  // GREPAIR_UTIL_STRINGS_H_
