// Rule-mining tests: the miner must recover the shipped KG constraints from
// clean data, tolerate a dirty graph, respect thresholds, and emit rules
// the engine can run directly.
#include <gtest/gtest.h>

#include <set>

#include "eval/experiment.h"
#include "graph/generators.h"
#include "mining/rule_miner.h"
#include "repair/engine.h"

namespace grepair {
namespace {

std::set<std::string> Kinds(const std::vector<MinedRule>& mined,
                            const std::string& kind) {
  std::set<std::string> names;
  for (const auto& m : mined)
    if (m.kind == kind) names.insert(m.rule.name());
  return names;
}

class MiningTest : public ::testing::Test {
 protected:
  MiningTest() : vocab_(MakeVocabulary()), schema_(KgSchema::Create(vocab_.get())),
                 graph_(vocab_) {
    KgOptions opt;
    opt.num_persons = 800;
    opt.num_cities = 80;
    opt.num_countries = 15;
    opt.num_orgs = 60;
    graph_ = GenerateKg(vocab_, schema_, opt);
  }

  VocabularyPtr vocab_;
  KgSchema schema_;
  Graph graph_;
};

TEST_F(MiningTest, RecoversSymmetryOfKnowsAndSpouse) {
  auto mined = MineRules(graph_, MiningOptions{});
  auto syms = Kinds(mined, "symmetry");
  EXPECT_TRUE(syms.count("mined_sym_knows"));
  EXPECT_TRUE(syms.count("mined_sym_spouse"));
}

TEST_F(MiningTest, RecoversCapitalImpliesLocated) {
  auto mined = MineRules(graph_, MiningOptions{});
  auto imps = Kinds(mined, "implication");
  EXPECT_TRUE(imps.count("mined_imp_capital_of_located_in"));
  // The converse (located_in => capital_of) must NOT be mined: most cities
  // are not capitals.
  EXPECT_FALSE(imps.count("mined_imp_located_in_capital_of"));
}

TEST_F(MiningTest, RecoversFunctionalRelations) {
  auto mined = MineRules(graph_, MiningOptions{});
  auto fns = Kinds(mined, "functional");
  auto ifns = Kinds(mined, "inverse_functional");
  EXPECT_TRUE(fns.count("mined_fn_born_in"));
  EXPECT_TRUE(ifns.count("mined_ifn_capital_of"));
  // knows is emphatically not functional.
  EXPECT_FALSE(fns.count("mined_fn_knows"));
}

TEST_F(MiningTest, RecoversNameKey) {
  auto mined = MineRules(graph_, MiningOptions{});
  auto keys = Kinds(mined, "key");
  EXPECT_TRUE(keys.count("mined_key_Person_name"));
  // birth_year is heavily repeated: not a key.
  EXPECT_FALSE(keys.count("mined_key_Person_birth_year"));
}

TEST_F(MiningTest, AllMinedRulesValidateAndTypeEndpoints) {
  auto mined = MineRules(graph_, MiningOptions{});
  ASSERT_FALSE(mined.empty());
  for (const auto& m : mined) {
    EXPECT_GE(m.support, 0.9) << m.rule.name();
    EXPECT_GE(m.evidence, 10u) << m.rule.name();
  }
  // The symmetric knows rule should have typed Person endpoints.
  for (const auto& m : mined) {
    if (m.rule.name() == "mined_sym_knows") {
      EXPECT_EQ(m.rule.pattern().nodes()[0].label, schema_.person);
      EXPECT_EQ(m.rule.pattern().nodes()[1].label, schema_.person);
    }
  }
}

TEST_F(MiningTest, ThresholdsFilterWeakCandidates) {
  MiningOptions strict;
  strict.min_support = 0.999;
  auto strict_mined = MineRules(graph_, strict);
  MiningOptions loose;
  loose.min_support = 0.5;
  auto loose_mined = MineRules(graph_, loose);
  EXPECT_LT(strict_mined.size(), loose_mined.size());
}

TEST_F(MiningTest, MinEvidenceSuppressesSmallSamples) {
  // A tiny graph with 2 symmetric edges: below min_evidence, no rule.
  Graph tiny(vocab_);
  NodeId a = tiny.AddNode(schema_.person), b = tiny.AddNode(schema_.person);
  tiny.AddEdge(a, b, schema_.knows);
  tiny.AddEdge(b, a, schema_.knows);
  auto mined = MineRules(tiny, MiningOptions{});
  EXPECT_TRUE(mined.empty());
}

TEST_F(MiningTest, MiningToleratesDirtyGraph) {
  InjectOptions iopt;
  iopt.rate = 0.05;
  auto report = InjectKgErrors(&graph_, schema_, iopt);
  ASSERT_TRUE(report.ok());
  auto mined = MineRules(graph_, MiningOptions{});
  auto syms = Kinds(mined, "symmetry");
  EXPECT_TRUE(syms.count("mined_sym_knows"));
  EXPECT_TRUE(Kinds(mined, "implication")
                  .count("mined_imp_capital_of_located_in"));
}

TEST_F(MiningTest, MinedRulesDriveTheEngine) {
  // Mine on the dirty graph, then repair with ONLY mined rules: the
  // symmetric / functional / key errors must all be fixable.
  InjectOptions iopt;
  iopt.rate = 0.05;
  auto report = InjectKgErrors(&graph_, schema_, iopt);
  ASSERT_TRUE(report.ok());

  auto mined = MineRules(graph_, MiningOptions{});
  RuleSet rules;
  for (auto& m : mined) ASSERT_TRUE(rules.Add(std::move(m.rule)).ok());
  ASSERT_GT(rules.size(), 3u);

  size_t before = CountViolations(graph_, rules);
  ASSERT_GT(before, 0u);
  RepairEngine engine;
  auto res = engine.Run(&graph_, rules);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().remaining_violations, 0u);
  EXPECT_GE(res.value().applied.size(), before / 2);
}

TEST_F(MiningTest, DeterministicOutput) {
  auto m1 = MineRules(graph_, MiningOptions{});
  auto m2 = MineRules(graph_, MiningOptions{});
  ASSERT_EQ(m1.size(), m2.size());
  for (size_t i = 0; i < m1.size(); ++i)
    EXPECT_EQ(m1[i].rule.name(), m2[i].rule.name());
}

}  // namespace
}  // namespace grepair
