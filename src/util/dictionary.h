// String interning: labels, attribute names and attribute values are stored
// once and referred to by dense 32-bit ids everywhere in the engine.
#ifndef GREPAIR_UTIL_DICTIONARY_H_
#define GREPAIR_UTIL_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace grepair {

/// Dense id for an interned string. Id 0 is always the empty string, which
/// doubles as "unlabeled"/wildcard-free default.
using SymbolId = uint32_t;

/// Append-only bidirectional string <-> id map. Not thread-safe: the engine
/// follows a single-writer/concurrent-reader model in which interning only
/// happens on the owning thread (load, generation, rule building) and the
/// parallel read paths (detection, mining statistics) call Lookup/Name only
/// — enforced at the API level by Vocabulary::LookupOnly. See DESIGN.md
/// "Threading model".
class Dictionary {
 public:
  Dictionary();

  /// Interns `s`, returning its stable id (existing id if already present).
  SymbolId Intern(std::string_view s);

  /// Looks up without interning; returns false if absent.
  bool Lookup(std::string_view s, SymbolId* id) const;

  /// The string for an id; id must be valid.
  const std::string& Name(SymbolId id) const;

  /// Number of interned symbols (>= 1: the empty string).
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_DICTIONARY_H_
