// Knowledge-graph cleaning end to end: generate a consistent KG, corrupt it
// with all three error classes, repair with the full 10-rule set, and score
// the repair against the injected ground truth — the paper's headline
// scenario.
//
//   $ ./build/examples/kg_cleaning
#include <cstdio>

#include "eval/experiment.h"
#include "util/table_writer.h"

using namespace grepair;

int main() {
  KgOptions gopt;
  gopt.num_persons = 2000;
  gopt.num_cities = 200;
  gopt.num_countries = 20;
  gopt.num_orgs = 150;
  InjectOptions iopt;
  iopt.rate = 0.06;

  auto bundle = MakeKgBundle(gopt, iopt);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const DatasetBundle& b = bundle.value();

  std::printf("clean graph: %zu nodes, %zu edges\n", b.clean_nodes,
              b.clean_edges);
  std::printf("injected %zu errors (%zu incomplete, %zu conflict, "
              "%zu redundant)\n",
              b.truth.errors.size(),
              b.truth.CountClass(ErrorClass::kIncomplete),
              b.truth.CountClass(ErrorClass::kConflict),
              b.truth.CountClass(ErrorClass::kRedundant));
  std::printf("rules: %zu\n\n", b.rules.size());

  TableWriter t("repair methods on the corrupted KG",
                {"method", "precision", "recall", "F1", "remaining",
                 "fixes", "time_ms"});
  for (const std::string& method : StandardMethods()) {
    auto out = RunMethod(b, method);
    if (!out.ok()) {
      std::fprintf(stderr, "%s: %s\n", method.c_str(),
                   out.status().ToString().c_str());
      return 1;
    }
    t.AddRow({method, TableWriter::Num(out.value().quality.precision, 3),
              TableWriter::Num(out.value().quality.recall, 3),
              TableWriter::Num(out.value().quality.f1, 3),
              TableWriter::Int(int64_t(out.value().repair.remaining_violations)),
              TableWriter::Int(int64_t(out.value().repair.applied.size())),
              TableWriter::Num(out.value().repair.total_ms, 1)});
  }
  t.Print();

  std::puts("\nReading the table: greedy/batch use the GRR semantics");
  std::puts("(confidence-weighted deletions, merges for duplicates) and");
  std::puts("repair everything; naive repairs everything but guesses on");
  std::puts("conflicts; the relational baseline (cfd) cannot express");
  std::puts("structural additions or merges at all.");
  return 0;
}
