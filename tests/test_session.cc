// Protocol conformance for the transport-independent session layer
// (src/serve/session.h) and the admission-control policy
// (src/serve/admission.h). Pins three contracts:
//
//   1. ParseRequest: every verb of the line protocol parses to the right
//      tagged Request, and every failure maps to its documented
//      `err <code> <msg>` line (unknown_verb / arity / bad_id).
//   2. Immediate mode reproduces the historical stdio responses byte for
//      byte ("node N", "edge N", "ok", batch/stats lines), while staged
//      mode buffers ("staged N") and commits atomically — and both modes
//      leave the service in an identical state for the same op sequence.
//   3. TokenBucket / AdmissionController decisions are a pure function of
//      the caller-supplied clock, so rate-limit behavior is deterministic.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "grr/rule_parser.h"
#include "serve/admission.h"
#include "serve/repair_service.h"
#include "serve/session.h"

namespace grepair {
namespace serve {
namespace {

// A tiny service: a Person chain and one never-firing rule, enough to
// exercise every verb without repair cascades changing ids under the test.
RepairService MakeService(size_t nodes = 4) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  for (size_t i = 0; i < nodes; ++i) g.AddNode(person);
  for (NodeId n = 0; n + 1 < nodes; ++n) (void)g.AddEdge(n, n + 1, knows);
  auto rules = ParseRules(
      "RULE never CLASS conflict\nMATCH (x:Ghost)\n"
      "ACTION UPD_NODE x LABEL Person\n",
      vocab);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return RepairService(std::move(g), std::move(rules).value(),
                       ServeOptions());
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ ParseRequest

TEST(ParseRequestTest, ParsesEveryVerb) {
  auto vocab = MakeVocabulary();
  struct Case {
    const char* line;
    Verb verb;
  };
  const Case kCases[] = {
      {"add_node Person", Verb::kAddNode},
      {"add_edge 0 1 knows", Verb::kAddEdge},
      {"remove_node 3", Verb::kRemoveNode},
      {"remove_edge 2", Verb::kRemoveEdge},
      {"set_node_label 1 Org", Verb::kSetNodeLabel},
      {"set_edge_label 1 likes", Verb::kSetEdgeLabel},
      {"set_node_attr 0 name Ada", Verb::kSetNodeAttr},
      {"set_edge_attr 0 since 1999", Verb::kSetEdgeAttr},
      {"commit", Verb::kCommit},
      {"stats", Verb::kStats},
      {"metrics", Verb::kMetrics},
      {"trace /tmp/t.json", Verb::kTrace},
      {"save /tmp/g.tsv", Verb::kSave},
      {"snapshot /tmp/s.snap", Verb::kSnapshot},
      {"restore /tmp/s.snap", Verb::kRestore},
      {"quit", Verb::kQuit},
      {"shutdown", Verb::kShutdown},
  };
  for (const Case& c : kCases) {
    auto r = ParseRequest(c.line, vocab);
    ASSERT_TRUE(r.ok()) << c.line << ": " << r.status().ToString();
    EXPECT_EQ(r.value().verb, c.verb) << c.line;
  }
}

TEST(ParseRequestTest, EditPayloadIsJournalShaped) {
  auto vocab = MakeVocabulary();
  auto r = ParseRequest("add_edge 7 9 knows", vocab);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().IsEdit());
  EXPECT_EQ(r.value().edit.kind, EditKind::kAddEdge);
  EXPECT_EQ(r.value().edit.src, 7u);
  EXPECT_EQ(r.value().edit.dst, 9u);
  EXPECT_EQ(r.value().edit.label, vocab->Label("knows"));

  // "-" clears an attribute (new_sym stays the reserved 0 symbol).
  r = ParseRequest("set_node_attr 3 name -", vocab);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().edit.new_sym, 0u);

  r = ParseRequest("restore /some/state.snap", vocab);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().IsEdit());
  EXPECT_EQ(r.value().path, "/some/state.snap");
}

TEST(ParseRequestTest, FailuresMapToDocumentedCodes) {
  auto vocab = MakeVocabulary();
  auto unknown = ParseRequest("bogus 1 2", vocab);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(ParseErrResponse(unknown.status()), "err unknown_verb bogus");

  auto arity = ParseRequest("add_node", vocab);
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(ParseErrResponse(arity.status()),
            "err arity add_node expects 1 argument(s)");

  auto bad_id = ParseRequest("remove_node notanumber", vocab);
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(ParseErrResponse(bad_id.status()), "err bad_id bad node id");

  // Ids above the 32-bit element space are bad_id, not silent truncation.
  auto wide = ParseRequest("remove_edge 4294967296", vocab);
  ASSERT_FALSE(wide.ok());
  EXPECT_EQ(ParseErrResponse(wide.status()), "err bad_id bad edge id");
}

// ------------------------------------------------------- immediate session

TEST(SessionTest, ImmediateModeKeepsHistoricalResponses) {
  RepairService service = MakeService();
  Session session(&service, SessionMode::kImmediate);

  // Golden lines of the stdio protocol, byte for byte.
  EXPECT_EQ(session.HandleLine("add_node Org"), "node 4");
  EXPECT_EQ(session.HandleLine("add_edge 0 4 knows"), "edge 3");
  EXPECT_EQ(session.HandleLine("set_node_label 4 Person"), "ok");
  std::string batch = session.HandleLine("commit");
  EXPECT_EQ(batch.rfind("batch 1 edits=3 ", 0), 0u) << batch;
  EXPECT_EQ(batch.find("op_errors"), std::string::npos) << batch;
  std::string stats = session.HandleLine("stats");
  EXPECT_EQ(stats.rfind("stats batches=1 edits=3 op_errors=0 ", 0), 0u)
      << stats;

  // Blank lines and comments produce no response at all.
  EXPECT_EQ(session.HandleLine(""), "");
  EXPECT_EQ(session.HandleLine("   "), "");
  EXPECT_EQ(session.HandleLine("# comment"), "");

  // A service-rejected edit is the rejected code, not a parse error.
  std::string rejected = session.HandleLine("remove_node 999");
  EXPECT_EQ(rejected.rfind("err rejected ", 0), 0u) << rejected;
  EXPECT_EQ(session.StagedEdits(), 0u);
}

TEST(SessionTest, QuitAndShutdownRaiseFlagsOnly) {
  RepairService service = MakeService();
  Session session(&service, SessionMode::kImmediate);
  EXPECT_FALSE(session.quit_requested());
  EXPECT_EQ(session.HandleLine("quit"), "");
  EXPECT_TRUE(session.quit_requested());
  EXPECT_FALSE(session.shutdown_requested());

  Session s2(&service, SessionMode::kStaged);
  EXPECT_EQ(s2.HandleLine("shutdown"), "");
  EXPECT_TRUE(s2.quit_requested());
  EXPECT_TRUE(s2.shutdown_requested());
}

// ---------------------------------------------------------- staged session

TEST(SessionTest, StagedModeBuffersUntilCommit) {
  RepairService service = MakeService();
  Session session(&service, SessionMode::kStaged);

  EXPECT_EQ(session.HandleLine("add_node Org"), "staged 1");
  EXPECT_EQ(session.HandleLine("add_node Org"), "staged 2");
  EXPECT_EQ(session.StagedEdits(), 2u);
  // Nothing reaches the service before commit; stats still reports the
  // session's staged ops as pending so clients can see their backlog.
  EXPECT_EQ(service.PendingEdits(), 0u);
  EXPECT_NE(session.HandleLine("stats").find(" pending=2 "),
            std::string::npos);

  std::string batch = session.HandleLine("commit");
  EXPECT_EQ(batch.rfind("batch 1 edits=2 ", 0), 0u) << batch;
  EXPECT_EQ(session.StagedEdits(), 0u);
  EXPECT_EQ(service.graph().NumNodes(), 6u);
}

TEST(SessionTest, StagedCommitCountsRejectedOps) {
  RepairService service = MakeService();
  Session session(&service, SessionMode::kStaged);
  session.HandleLine("add_node Org");
  session.HandleLine("remove_node 999");  // stages fine, dies at commit
  std::string batch = session.HandleLine("commit");
  EXPECT_NE(batch.find(" op_errors=1"), std::string::npos) << batch;
  EXPECT_EQ(service.graph().NumNodes(), 5u);
}

TEST(SessionTest, StagedAndImmediateConvergeToIdenticalState) {
  const char* kOps[] = {
      "add_node Org",          "add_edge 0 4 knows", "set_node_label 1 Org",
      "set_node_attr 2 n Ada", "remove_edge 1",      "commit",
      "add_node Person",       "commit",
  };
  RepairService immediate = MakeService();
  RepairService staged = MakeService();
  Session si(&immediate, SessionMode::kImmediate);
  Session ss(&staged, SessionMode::kStaged);
  for (const char* op : kOps) {
    si.HandleLine(op);
    ss.HandleLine(op);
  }
  std::string a = ::testing::TempDir() + "/grepair_sess_imm.snap";
  std::string b = ::testing::TempDir() + "/grepair_sess_staged.snap";
  ASSERT_TRUE(immediate.SaveState(a).ok());
  ASSERT_TRUE(staged.SaveState(b).ok());
  EXPECT_EQ(Slurp(a), Slurp(b));  // bit-identical graph + backlog
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ------------------------------------------------------- restore guarding

TEST(SessionTest, RestoreRefusedWhileEditsAreStaged) {
  RepairService service = MakeService();
  std::string state = ::testing::TempDir() + "/grepair_sess_guard.snap";
  ASSERT_TRUE(service.SaveState(state).ok());

  Session session(&service, SessionMode::kStaged);
  session.HandleLine("add_node Org");
  std::string resp = session.HandleLine("restore " + state);
  EXPECT_EQ(resp.rfind("err staged_edits ", 0), 0u) << resp;
  EXPECT_EQ(session.StagedEdits(), 1u);  // nothing was discarded

  session.HandleLine("commit");
  resp = session.HandleLine("restore " + state);
  EXPECT_EQ(resp.rfind("restored ", 0), 0u) << resp;
  std::remove(state.c_str());
}

TEST(RepairServiceTest, RestoreRefusedWhilePendingEditsExist) {
  RepairService service = MakeService();
  std::string state = ::testing::TempDir() + "/grepair_svc_guard.snap";
  ASSERT_TRUE(service.SaveState(state).ok());

  EditEntry op;
  op.kind = EditKind::kAddNode;
  op.label = service.graph().vocab()->Label("Org");
  ASSERT_TRUE(service.ApplyEdit(op).ok());
  Status st = service.RestoreState(state);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.PendingEdits(), 1u);  // the edit survived the refusal

  (void)service.Commit();
  EXPECT_TRUE(service.RestoreState(state).ok());
  std::remove(state.c_str());
}

// -------------------------------------------------------- ServeOptions

TEST(ServeOptionsTest, ValidatesAdmissionKnobs) {
  ServeOptions opt;
  EXPECT_TRUE(opt.Validate().ok());  // defaults: stdio, no limits

  opt.listen_port = 65536;
  EXPECT_FALSE(opt.Validate().ok());
  opt.listen_port = -2;
  EXPECT_FALSE(opt.Validate().ok());
  opt.listen_port = 0;  // ephemeral port is fine
  EXPECT_TRUE(opt.Validate().ok());

  opt.max_connections = 0;
  EXPECT_FALSE(opt.Validate().ok());
  opt.max_connections = 8;
  EXPECT_TRUE(opt.Validate().ok());

  opt.max_requests_per_sec = -1.0;
  EXPECT_FALSE(opt.Validate().ok());
  opt.max_requests_per_sec = 100.0;
  EXPECT_TRUE(opt.Validate().ok());
}

// ----------------------------------------------------------- admission

TEST(TokenBucketTest, DeterministicUnderSuppliedClock) {
  TokenBucket bucket(2.0, 2.0);  // 2 req/s, burst 2, starts full
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  EXPECT_FALSE(bucket.TryAcquire(10.0));  // burst exhausted
  EXPECT_TRUE(bucket.TryAcquire(10.5));   // +0.5s * 2/s = 1 token
  EXPECT_FALSE(bucket.TryAcquire(10.5));
  // Time going backwards refills nothing.
  EXPECT_FALSE(bucket.TryAcquire(9.0));
  // The bucket caps at burst: a long idle stretch is not a license to
  // flood.
  EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_FALSE(bucket.TryAcquire(100.0));
}

TEST(TokenBucketTest, ZeroRateDisablesLimiting) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(AdmissionControllerTest, CapsConnectionsAndCountsDecisions) {
  AdmissionOptions opt;
  opt.max_connections = 2;
  AdmissionController ctrl(opt);
  EXPECT_TRUE(ctrl.TryAdmitConnection());
  EXPECT_TRUE(ctrl.TryAdmitConnection());
  EXPECT_FALSE(ctrl.TryAdmitConnection());  // at cap
  EXPECT_EQ(ctrl.active_connections(), 2u);
  EXPECT_EQ(ctrl.connections_admitted(), 2u);
  EXPECT_EQ(ctrl.connections_rejected(), 1u);
  ctrl.ReleaseConnection();
  EXPECT_TRUE(ctrl.TryAdmitConnection());  // freed slot is reusable
}

TEST(AdmissionControllerTest, ShedsOverRateRequests) {
  AdmissionOptions opt;
  opt.max_requests_per_sec = 1.0;  // burst max(1, rate) = 1
  AdmissionController ctrl(opt);
  EXPECT_TRUE(ctrl.TryAdmitRequest(5.0));
  EXPECT_FALSE(ctrl.TryAdmitRequest(5.0));
  EXPECT_TRUE(ctrl.TryAdmitRequest(6.0));
  EXPECT_EQ(ctrl.requests_admitted(), 2u);
  EXPECT_EQ(ctrl.requests_rejected(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace grepair
