#include "repair/fix.h"

#include <algorithm>

#include "util/strings.h"

namespace grepair {
namespace {

// Confidence factor in (0, 1]: conf=30 -> 0.3. Absent/garbled attr -> 1.0.
double ConfFactor(const GraphView& g, EdgeId e, SymbolId conf_attr) {
  if (conf_attr == 0) return 1.0;
  SymbolId v = g.EdgeAttr(e, conf_attr);
  if (v == 0) return 1.0;
  double num;
  if (!ParseDouble(g.vocab()->ValueName(v), &num)) return 1.0;
  double f = num / 100.0;
  if (f < 0.05) f = 0.05;
  if (f > 1.0) f = 1.0;
  return f;
}

}  // namespace

std::string AppliedFix::ToString(const Vocabulary& vocab) const {
  return StrFormat("%s[r%u](n%u,n%u,%s)",
                   std::string(ActionKindName(kind)).c_str(), rule, node_a,
                   node_b, label ? vocab.LabelName(label).c_str() : "-");
}

double FixCost(const GraphView& g, const Rule& rule, const Match& match,
               const CostModel& model, SymbolId conf_attr) {
  const RepairAction& a = rule.action();
  double cost = 0.0;
  switch (a.kind) {
    case ActionKind::kAddEdge:
      cost = model.edge_insert;
      break;
    case ActionKind::kAddNode:
      cost = model.node_insert + model.edge_insert;
      break;
    case ActionKind::kDelEdge:
      cost = model.edge_delete *
             ConfFactor(g, match.edges[a.edge_idx], conf_attr);
      break;
    case ActionKind::kDelNode: {
      NodeId n = match.nodes[a.var];
      cost = model.node_delete;
      for (EdgeId e : g.OutEdges(n))
        cost += model.edge_delete * ConfFactor(g, e, conf_attr);
      for (EdgeId e : g.InEdges(n)) {
        EdgeView v = g.Edge(e);
        if (v.src == n && v.dst == n) continue;  // self-loop counted once
        cost += model.edge_delete * ConfFactor(g, e, conf_attr);
      }
      break;
    }
    case ActionKind::kUpdNode:
      cost = (a.label != 0 ? model.relabel : 0.0) +
             (a.attr != 0 ? model.attr_update : 0.0);
      break;
    case ActionKind::kUpdEdge:
      cost = model.relabel;
      break;
    case ActionKind::kMerge:
      // Entity resolution: one node disappears; edge moves are bookkeeping,
      // not information loss.
      cost = model.node_delete;
      break;
  }
  double prio = rule.priority() > 0 ? rule.priority() : 1.0;
  return cost / prio;
}

Result<AppliedFix> ApplyFix(Graph* g, RuleId rule_id, const Rule& rule,
                            const Match& match) {
  const RepairAction& a = rule.action();
  AppliedFix out;
  out.rule = rule_id;
  out.kind = a.kind;
  out.journal_begin = g->JournalSize();

  switch (a.kind) {
    case ActionKind::kAddEdge: {
      NodeId src = match.nodes[a.var], dst = match.nodes[a.var2];
      auto r = g->AddEdge(src, dst, a.label);
      if (!r.ok()) return r.status();
      out.node_a = src;
      out.node_b = dst;
      out.label = a.label;
      break;
    }
    case ActionKind::kAddNode: {
      NodeId anchor = match.nodes[a.var];
      NodeId nu = g->AddNode(a.node_label);
      Result<EdgeId> r = a.new_node_is_src ? g->AddEdge(nu, anchor, a.label)
                                           : g->AddEdge(anchor, nu, a.label);
      if (!r.ok()) return r.status();
      out.node_a = anchor;
      out.new_node = nu;
      out.label = a.label;
      break;
    }
    case ActionKind::kDelEdge: {
      EdgeId e = match.edges[a.edge_idx];
      EdgeView v = g->Edge(e);
      out.node_a = v.src;
      out.node_b = v.dst;
      out.label = v.label;
      GREPAIR_RETURN_IF_ERROR(g->RemoveEdge(e));
      break;
    }
    case ActionKind::kDelNode: {
      NodeId n = match.nodes[a.var];
      out.node_a = n;
      GREPAIR_RETURN_IF_ERROR(g->RemoveNode(n));
      break;
    }
    case ActionKind::kUpdNode: {
      NodeId n = match.nodes[a.var];
      out.node_a = n;
      if (a.label != 0) {
        out.label = a.label;
        GREPAIR_RETURN_IF_ERROR(g->SetNodeLabel(n, a.label));
      }
      if (a.attr != 0) {
        out.attr = a.attr;
        out.value = a.value;
        GREPAIR_RETURN_IF_ERROR(g->SetNodeAttr(n, a.attr, a.value));
      }
      break;
    }
    case ActionKind::kUpdEdge: {
      EdgeId e = match.edges[a.edge_idx];
      EdgeView v = g->Edge(e);
      out.node_a = v.src;
      out.node_b = v.dst;
      out.label = a.label;
      GREPAIR_RETURN_IF_ERROR(g->SetEdgeLabel(e, a.label));
      break;
    }
    case ActionKind::kMerge: {
      NodeId n1 = match.nodes[a.var], n2 = match.nodes[a.var2];
      NodeId keep = std::min(n1, n2), gone = std::max(n1, n2);
      out.node_a = keep;
      out.node_b = gone;
      GREPAIR_RETURN_IF_ERROR(g->MergeNodes(keep, gone));
      break;
    }
  }
  out.journal_end = g->JournalSize();
  return out;
}

}  // namespace grepair
