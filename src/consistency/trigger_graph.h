// Static rule-interaction analysis at the label level: which rule's action
// can create matches of (trigger) another rule, and which pairs directly
// contradict (one inserts what the other deletes). Deciding exact rule-set
// consistency is intractable (it embeds satisfiability of pattern overlap),
// so this is a conservative approximation: it never misses a real trigger /
// contradiction, but may report spurious ones.
#ifndef GREPAIR_CONSISTENCY_TRIGGER_GRAPH_H_
#define GREPAIR_CONSISTENCY_TRIGGER_GRAPH_H_

#include <string>
#include <vector>

#include "grr/rule.h"

namespace grepair {

/// A directed trigger edge: applying `from` can enable a new match of `to`.
struct TriggerEdge {
  RuleId from;
  RuleId to;
  std::string reason;
};

/// A contradiction: `adder` can create exactly what `deleter` removes (the
/// deletion then re-enables the adder's NAC — an oscillation candidate).
struct ContradictionPair {
  RuleId adder;
  RuleId deleter;
  std::string reason;
};

/// The analysis result over one rule set.
class TriggerGraph {
 public:
  /// Builds the conservative label-level analysis.
  static TriggerGraph Build(const RuleSet& rules, const Vocabulary& vocab);

  const std::vector<TriggerEdge>& triggers() const { return triggers_; }
  const std::vector<ContradictionPair>& contradictions() const {
    return contradictions_;
  }

  /// True when the growth-capable rules (ADD_NODE) lie on a trigger cycle:
  /// the repair process can create nodes that re-trigger creation forever.
  bool HasCreationCycle() const;
  /// The rule ids on some creation cycle (empty when none).
  std::vector<RuleId> CreationCycle() const;

  /// True when node-relabeling rules form a label cycle (A->B, B->A).
  bool HasRelabelCycle() const;

  size_t num_rules() const { return n_; }

 private:
  size_t n_ = 0;
  std::vector<TriggerEdge> triggers_;
  std::vector<ContradictionPair> contradictions_;
  std::vector<std::pair<SymbolId, SymbolId>> node_relabels_;
  std::vector<std::pair<SymbolId, SymbolId>> edge_relabels_;
  std::vector<bool> is_creator_;  // per rule: ADD_NODE action
};

}  // namespace grepair

#endif  // GREPAIR_CONSISTENCY_TRIGGER_GRAPH_H_
