// Monte-Carlo consistency testing: run the repair engine on small random
// graphs drawn over the rule set's own label vocabulary, and look for
// concrete witnesses of (a) non-termination (fix budget exhausted or a
// repeated graph state) and (b) non-confluence (two application orders end
// in different graphs). A found witness refutes consistency; absence of
// witnesses is evidence, not proof — which is exactly the trade the paper
// makes against the intractable exact check.
#ifndef GREPAIR_CONSISTENCY_SIMULATOR_H_
#define GREPAIR_CONSISTENCY_SIMULATOR_H_

#include <string>

#include "grr/rule.h"
#include "util/status.h"

namespace grepair {

struct SimOptions {
  size_t trials = 20;
  size_t nodes_per_trial = 12;
  size_t edges_per_trial = 24;
  /// Fix budget per run; exhausting it counts as a non-termination witness.
  size_t max_fixes = 400;
  uint64_t seed = 99;
};

struct SimulationReport {
  size_t trials = 0;
  size_t nonterminating = 0;  ///< runs that hit the budget or oscillated
  size_t divergent = 0;       ///< trials where two orders ended differently
  bool witness_found = false;
  std::string witness;        ///< description of the first witness
  double elapsed_ms = 0.0;
};

/// Runs the simulation. The random graphs use only labels/attributes that
/// appear in the rules, so every rule has a chance to fire.
SimulationReport SimulateRuleSet(const RuleSet& rules, VocabularyPtr vocab,
                                 const SimOptions& opt);

}  // namespace grepair

#endif  // GREPAIR_CONSISTENCY_SIMULATOR_H_
