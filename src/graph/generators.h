// Schema-driven synthetic dataset generators. These stand in for the real
// graphs the paper evaluated on (public knowledge graphs / social networks):
// the repair algorithms only observe labels, degrees and match counts, and
// the generators reproduce those distributions while giving the evaluation
// exact ground truth (see DESIGN.md "Substitutions").
#ifndef GREPAIR_GRAPH_GENERATORS_H_
#define GREPAIR_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace grepair {

/// Interned symbol handles for the knowledge-graph domain. Construct once
/// per vocabulary; rules built against the same vocabulary see the same ids.
struct KgSchema {
  // node labels
  SymbolId person, city, country, org;
  // edge labels
  SymbolId born_in, lives_in, located_in, capital_of, works_for, hq_in,
      knows, spouse;
  // attribute names
  SymbolId name, birth_year, conf, is_capital;
  // common values
  SymbolId yes, conf_high, conf_low;

  static KgSchema Create(Vocabulary* vocab);
};

/// Knowledge-graph generator parameters (defaults give ~8.3k nodes).
struct KgOptions {
  size_t num_persons = 5000;
  size_t num_cities = 400;
  size_t num_countries = 40;
  size_t num_orgs = 300;
  double avg_knows = 3.0;    ///< mean symmetric knows pairs per person
  double spouse_frac = 0.3;  ///< fraction of persons with a spouse
  double zipf_skew = 0.8;    ///< skew of city/org popularity
  uint64_t seed = 42;
};

/// Generates a consistent knowledge graph: every country has exactly one
/// capital (capital_of + located_in + is_capital="yes"), persons have exactly
/// one born_in, knows/spouse are symmetric, every edge carries conf="90".
/// The returned graph has an empty journal.
Graph GenerateKg(VocabularyPtr vocab, const KgSchema& s, const KgOptions& opt);

/// Social-network domain symbols.
struct SocialSchema {
  SymbolId person;       // node label
  SymbolId knows;        // edge label
  SymbolId name, conf;   // attributes
  SymbolId conf_high, conf_low;

  static SocialSchema Create(Vocabulary* vocab);
};

struct SocialOptions {
  size_t num_persons = 10000;
  size_t attach_edges = 3;  ///< preferential-attachment edges per new node
  uint64_t seed = 7;
};

/// Barabási–Albert-style friendship graph; knows is generated symmetric.
Graph GenerateSocial(VocabularyPtr vocab, const SocialSchema& s,
                     const SocialOptions& opt);

/// Citation-network domain symbols.
struct CitationSchema {
  SymbolId paper, author, venue;                   // node labels
  SymbolId cites, authored_by, published_in;       // edge labels
  SymbolId title, year, conf;                      // attributes
  SymbolId conf_high, conf_low;

  static CitationSchema Create(Vocabulary* vocab);
};

struct CitationOptions {
  size_t num_papers = 4000;
  size_t num_authors = 1500;
  size_t num_venues = 50;
  double avg_cites = 4.0;    ///< mean citations per paper (only to older)
  double avg_authors = 2.0;  ///< mean authors per paper
  uint64_t seed = 13;
};

/// Layered citation DAG: cites edges only point from newer to older papers,
/// every paper has >= 1 author and exactly one venue.
Graph GenerateCitation(VocabularyPtr vocab, const CitationSchema& s,
                       const CitationOptions& opt);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GENERATORS_H_
