// Deterministic pseudo-random number generation for generators, injectors and
// randomized strategies. Every experiment is seeded so runs are reproducible.
#ifndef GREPAIR_UTIL_RNG_H_
#define GREPAIR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grepair {

/// SplitMix64-seeded xoshiro256** generator. Not cryptographic; chosen for
/// speed, quality and exact reproducibility across platforms (no reliance on
/// unspecified std::uniform_int_distribution behavior).
class Rng {
 public:
  /// Seeds the stream; identical seeds yield identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 → uniform).
  /// Used to mimic the skewed relation frequencies of real knowledge graphs.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element index; vector must be non-empty.
  template <typename T>
  size_t PickIndex(const std::vector<T>& v) {
    return static_cast<size_t>(NextBounded(v.size()));
  }

 private:
  uint64_t state_[4];
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_RNG_H_
