// The edit journal: every primitive graph mutation is recorded so that (a) a
// repair's cost (graph edit distance from the input) can be accounted
// exactly, (b) any suffix of mutations can be undone, and (c) the incremental
// matcher can be fed the delta.
#ifndef GREPAIR_GRAPH_EDIT_LOG_H_
#define GREPAIR_GRAPH_EDIT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/dictionary.h"

namespace grepair {

using NodeId = uint32_t;
using EdgeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;
inline constexpr EdgeId kInvalidEdge = UINT32_MAX;

/// Primitive mutation kinds. MERGE is journaled as the sequence of
/// primitives it decomposes into (edge moves + node removal).
enum class EditKind : uint8_t {
  kAddNode,
  kRemoveNode,
  kAddEdge,
  kRemoveEdge,
  kSetNodeLabel,
  kSetEdgeLabel,
  kSetNodeAttr,
  kSetEdgeAttr,
};

/// One journal record. Field use depends on `kind`:
///  kAddNode/kRemoveNode: node, label (node's label), attrs snapshot on remove
///  kAddEdge/kRemoveEdge: edge, src, dst, label, attrs snapshot on remove
///  kSetNodeLabel/kSetEdgeLabel: node/edge, old_sym -> new_sym
///  kSetNodeAttr/kSetEdgeAttr: node/edge, attr, old_sym -> new_sym (0=absent)
struct EditEntry {
  EditKind kind;
  NodeId node = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  SymbolId label = 0;
  SymbolId attr = 0;
  SymbolId old_sym = 0;
  SymbolId new_sym = 0;
  /// Attribute snapshot captured when removing an element, for exact undo.
  std::vector<std::pair<SymbolId, SymbolId>> attr_snapshot;
};

/// Unit costs of the standard graph-edit operations; repair distance is the
/// weighted sum of journal entries. Defaults are the uniform GED costs used
/// throughout the evaluation.
struct CostModel {
  double node_insert = 1.0;
  double node_delete = 1.0;
  double edge_insert = 1.0;
  double edge_delete = 1.0;
  double relabel = 1.0;      ///< node or edge label substitution
  double attr_update = 1.0;  ///< attribute set/clear

  /// Cost of one journal entry under this model.
  double EntryCost(const EditEntry& e) const;
};

/// Computes the total cost of entries [from, to) of a journal.
double JournalCost(const std::vector<EditEntry>& log, size_t from, size_t to,
                   const CostModel& model);

/// The PHYSICAL inverse of a journal entry: the forward record whose
/// replay effect equals undoing `e`. Undoing a removal revives the element
/// (with the removal's attribute snapshot), so the inverse of kRemoveEdge
/// is a kAddEdge record carrying that snapshot — replayed, it re-links the
/// edge at its endpoints' adjacency TAILS, exactly where Graph::UndoTo
/// revives it. This is what lets Graph's delta log describe undo to a
/// snapshot patcher as plain forward records.
EditEntry InverseEntry(const EditEntry& e);

/// Debug rendering of a journal entry.
std::string EditEntryToString(const EditEntry& e);

/// Binary serialization of a journal record — the on-disk form the
/// write-ahead log (src/storage/wal.{h,cc}) frames and checksums. Fixed
/// little-endian layout: kind (u8), node, edge, src, dst, label, attr,
/// old_sym, new_sym (u32 each), then the attr_snapshot as a u32 count of
/// (u32, u32) pairs. Symbol and element ids are stored verbatim: WAL
/// records are only ever replayed against a graph restored to the exact
/// id space they were written in (see DESIGN.md "Durability").
void EncodeEditEntry(const EditEntry& e, std::string* out);

/// Decodes one record at `*pos`, advancing `*pos` past it. Returns false
/// (leaving `*pos` unspecified) on truncation or an invalid kind byte.
bool DecodeEditEntry(std::string_view data, size_t* pos, EditEntry* out);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_EDIT_LOG_H_
