// CLI tests: every command end to end through temp files, plus error paths.
#include <gtest/gtest.h>

#include <cstdio>

#include "cli/cli.h"

namespace grepair {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string Tmp(const std::string& name) {
    return ::testing::TempDir() + "/grepair_cli_" + name;
  }

  int Run(std::vector<std::string> args, std::string* out) {
    out->clear();
    return RunCli(args, out);
  }

  void TearDown() override {
    for (const auto& f : cleanup_) std::remove(f.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string out;
  EXPECT_EQ(Run({}, &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_EQ(Run({"frobnicate"}, &out), 2);
}

TEST_F(CliTest, GenStatsRoundTrip) {
  std::string graph = Track(Tmp("g1.tsv"));
  std::string out;
  ASSERT_EQ(Run({"gen", "kg", "--out", graph, "--scale", "200"}, &out), 0)
      << out;
  EXPECT_NE(out.find("wrote"), std::string::npos);

  ASSERT_EQ(Run({"stats", graph}, &out), 0) << out;
  EXPECT_NE(out.find("Person"), std::string::npos);
  EXPECT_NE(out.find("capital_of"), std::string::npos);
}

TEST_F(CliTest, FullDetectRepairPipeline) {
  std::string graph = Track(Tmp("g2.tsv"));
  std::string rules = Track(Tmp("r2.grr"));
  std::string repaired = Track(Tmp("g2fixed.tsv"));
  std::string out;
  ASSERT_EQ(Run({"gen", "kg", "--out", graph, "--rules-out", rules,
                 "--scale", "300", "--rate", "0.08"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("injected"), std::string::npos);

  ASSERT_EQ(Run({"detect", graph, rules}, &out), 0) << out;
  EXPECT_EQ(out.find("0 violations"), std::string::npos);

  ASSERT_EQ(Run({"repair", graph, rules, "--out", repaired}, &out), 0) << out;
  EXPECT_NE(out.find("-> 0"), std::string::npos);  // zero remaining

  // The repaired graph has no violations left.
  ASSERT_EQ(Run({"detect", repaired, rules}, &out), 0) << out;
  EXPECT_NE(out.find("0 violations"), std::string::npos);
}

TEST_F(CliTest, RepairStrategies) {
  std::string graph = Track(Tmp("g3.tsv"));
  std::string rules = Track(Tmp("r3.grr"));
  std::string out;
  ASSERT_EQ(Run({"gen", "social", "--out", graph, "--rules-out", rules,
                 "--scale", "300", "--rate", "0.05"},
                &out),
            0);
  for (const char* strategy : {"greedy", "naive", "batch"}) {
    ASSERT_EQ(Run({"repair", graph, rules, "--strategy", strategy}, &out), 0)
        << strategy << ": " << out;
  }
  EXPECT_EQ(Run({"repair", graph, rules, "--strategy", "bogus"}, &out), 1);
}

TEST_F(CliTest, CheckAcceptsShippedAndRejectsBadRules) {
  std::string graph = Track(Tmp("g4.tsv"));
  std::string rules = Track(Tmp("r4.grr"));
  std::string out;
  ASSERT_EQ(Run({"gen", "citation", "--out", graph, "--rules-out", rules,
                 "--scale", "100"},
                &out),
            0);
  EXPECT_EQ(Run({"check", rules}, &out), 0) << out;
  EXPECT_NE(out.find("CONSISTENT"), std::string::npos);

  std::string bad = Track(Tmp("bad.grr"));
  std::FILE* f = std::fopen(bad.c_str(), "w");
  std::fputs(R"(
RULE a_needs_b CLASS incomplete
MATCH (x:A)
WHERE NOT EDGE (x)-[req]->(*)
ACTION ADD_NODE (x)-[req]->(n:B)

RULE b_needs_a CLASS incomplete
MATCH (x:B)
WHERE NOT EDGE (x)-[req]->(*)
ACTION ADD_NODE (x)-[req]->(n:A)
)",
             f);
  std::fclose(f);
  EXPECT_EQ(Run({"check", bad}, &out), 1) << out;
  EXPECT_NE(out.find("REJECTED"), std::string::npos);
}

TEST_F(CliTest, MineFindsRules) {
  std::string graph = Track(Tmp("g5.tsv"));
  std::string out;
  ASSERT_EQ(Run({"gen", "kg", "--out", graph, "--scale", "500"}, &out), 0);
  ASSERT_EQ(Run({"mine", graph}, &out), 0) << out;
  EXPECT_NE(out.find("mined_sym_knows"), std::string::npos);
  EXPECT_NE(out.find("mined_key_Person_name"), std::string::npos);
}

TEST_F(CliTest, MissingFilesReported) {
  std::string out;
  EXPECT_EQ(Run({"stats", "/nonexistent/g.tsv"}, &out), 1);
  EXPECT_NE(out.find("NOT_FOUND"), std::string::npos);
  EXPECT_EQ(Run({"detect", "/nonexistent/a", "/nonexistent/b"}, &out), 1);
}

TEST_F(CliTest, BadFlagsReported) {
  std::string out;
  EXPECT_EQ(Run({"gen", "kg", "--out"}, &out), 2);  // dangling flag
  EXPECT_EQ(Run({"gen", "kg"}, &out), 1);           // missing --out
  EXPECT_EQ(Run({"gen", "mars", "--out", "/tmp/x"}, &out), 1);
}

TEST_F(CliTest, UnknownFlagsAreUsageErrors) {
  // A mistyped flag must fail loudly (exit 2 + usage), never be silently
  // ignored: --thread instead of --threads would otherwise run sequentially.
  std::string graph = Track(Tmp("g6.tsv"));
  std::string rules = Track(Tmp("r6.grr"));
  std::string out;
  ASSERT_EQ(Run({"gen", "kg", "--out", graph, "--rules-out", rules,
                 "--scale", "100"},
                &out),
            0);

  EXPECT_EQ(Run({"detect", graph, rules, "--thread", "4"}, &out), 2);
  EXPECT_NE(out.find("unknown flag --thread"), std::string::npos);
  EXPECT_NE(out.find("usage:"), std::string::npos);

  EXPECT_EQ(Run({"repair", graph, rules, "--stratgy", "greedy"}, &out), 2);
  EXPECT_NE(out.find("unknown flag --stratgy"), std::string::npos);

  EXPECT_EQ(Run({"stats", graph, "--threads", "2"}, &out), 2);  // not accepted
  EXPECT_EQ(Run({"mine", graph, "--min-supprot", "0.5"}, &out), 2);

  // Correctly spelled flags still work.
  EXPECT_EQ(Run({"detect", graph, rules, "--threads", "2"}, &out), 0) << out;
}

}  // namespace
}  // namespace grepair
