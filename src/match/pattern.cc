#include "match/pattern.h"

#include <algorithm>

#include "util/strings.h"

namespace grepair {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kAbsent: return "ABSENT";
    case CmpOp::kPresent: return "PRESENT";
  }
  return "?";
}

VarId Pattern::AddNode(SymbolId label, std::string var_name) {
  PatternNode n;
  n.label = label;
  n.var_name = std::move(var_name);
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

Result<size_t> Pattern::AddEdge(VarId src, VarId dst, SymbolId label) {
  if (src >= nodes_.size() || dst >= nodes_.size())
    return Status::InvalidArgument("pattern edge endpoint out of range");
  PatternEdge e;
  e.src = src;
  e.dst = dst;
  e.label = label;
  edges_.push_back(e);
  return edges_.size() - 1;
}

Status Pattern::Validate() const {
  if (nodes_.empty())
    return Status::InvalidArgument("pattern has no node variables");
  for (const auto& e : edges_)
    if (e.src >= nodes_.size() || e.dst >= nodes_.size())
      return Status::InvalidArgument("pattern edge endpoint out of range");
  for (const auto& p : predicates_) {
    auto check = [&](const AttrOperand& o, const char* side) -> Status {
      if (o.var == kNoVar) return Status::Ok();
      size_t bound = o.is_edge ? edges_.size() : nodes_.size();
      if (o.var >= bound)
        return Status::InvalidArgument(
            std::string("predicate ") + side + " var out of range");
      return Status::Ok();
    };
    GREPAIR_RETURN_IF_ERROR(check(p.lhs, "lhs"));
    GREPAIR_RETURN_IF_ERROR(check(p.rhs, "rhs"));
    if (p.lhs.var == kNoVar && p.rhs.var == kNoVar)
      return Status::InvalidArgument("predicate compares two constants");
  }
  for (const auto& n : nacs_) {
    switch (n.kind) {
      case NacKind::kNoEdge:
        if (n.src_var >= nodes_.size() || n.dst_var >= nodes_.size())
          return Status::InvalidArgument("NAC var out of range");
        break;
      case NacKind::kNoOutEdge:
      case NacKind::kNoIncident:
        if (n.src_var >= nodes_.size())
          return Status::InvalidArgument("NAC var out of range");
        break;
      case NacKind::kNoInEdge:
        if (n.dst_var >= nodes_.size())
          return Status::InvalidArgument("NAC var out of range");
        break;
    }
  }
  return Status::Ok();
}

std::vector<SymbolId> Pattern::PositiveLabels() const {
  std::vector<SymbolId> out;
  for (const auto& n : nodes_)
    if (n.label != 0) out.push_back(n.label);
  for (const auto& e : edges_)
    if (e.label != 0) out.push_back(e.label);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SymbolId> Pattern::NacLabels() const {
  std::vector<SymbolId> out;
  for (const auto& n : nacs_) out.push_back(n.label);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Pattern::ToString(const Vocabulary& vocab) const {
  std::string out = "MATCH ";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i) out += ", ";
    std::string name =
        nodes_[i].var_name.empty() ? StrFormat("v%zu", i) : nodes_[i].var_name;
    out += "(" + name;
    if (nodes_[i].label) out += ":" + vocab.LabelName(nodes_[i].label);
    out += ")";
  }
  for (const auto& e : edges_) {
    out += StrFormat(", (v%u)-[%s]->(v%u)", e.src,
                     e.label ? vocab.LabelName(e.label).c_str() : "*", e.dst);
  }
  if (!predicates_.empty() || !nacs_.empty()) out += " WHERE ...";
  return out;
}

}  // namespace grepair
