// T4 (extension) — Rule mining: how well the miner recovers the shipped
// hand-written constraints from data, on clean and on corrupted graphs, and
// the end-to-end quality of repairing with mined rules only. Expected
// shape: all mineable KG constraints (symmetry, functionality, implication,
// keys) are recovered from clean data and survive 5% corruption; repair
// with mined rules approaches the hand-written rule set's quality on those
// error types.
#include "bench_common.h"
#include "mining/rule_miner.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  KgOptions gopt;
  gopt.num_persons = 2000;
  gopt.num_cities = 200;
  gopt.num_countries = 20;
  gopt.num_orgs = 150;
  InjectOptions iopt;
  iopt.rate = 0.05;

  // Mine on the clean graph and on the corrupted graph.
  auto vocab = MakeVocabulary();
  KgSchema schema = KgSchema::Create(vocab.get());
  Graph clean = GenerateKg(vocab, schema, gopt);
  auto clean_mined = MineRules(clean, MiningOptions{});

  DatasetBundle bundle = MustKgBundle(gopt, iopt);
  auto dirty_mined = MineRules(bundle.graph, MiningOptions{});

  TableWriter t("T4: mined rules (KG)",
                {"kind", "rule", "support_clean", "support_dirty"});
  for (const MinedRule& m : clean_mined) {
    std::string dirty_support = "-";
    for (const MinedRule& d : dirty_mined)
      if (d.rule.name() == m.rule.name())
        dirty_support = TableWriter::Num(d.support, 3);
    t.AddRow({m.kind, m.rule.name(), TableWriter::Num(m.support, 3),
              dirty_support});
  }
  t.Print();

  // End-to-end: repair the corrupted bundle with mined rules only.
  DatasetBundle mined_bundle;
  mined_bundle.name = bundle.name;
  mined_bundle.vocab = bundle.vocab;
  mined_bundle.graph = bundle.graph.Clone();
  mined_bundle.truth = bundle.truth;
  mined_bundle.clean_nodes = bundle.clean_nodes;
  mined_bundle.clean_edges = bundle.clean_edges;
  for (auto& m : dirty_mined) (void)mined_bundle.rules.Add(std::move(m.rule));

  MethodOutcome hand = MustRun(bundle, "greedy");
  MethodOutcome mined = MustRun(mined_bundle, "greedy");

  TableWriter t2("T4b: repairing with mined vs hand-written rules",
                 {"rule_set", "rules", "precision", "recall", "F1",
                  "remaining"});
  t2.AddRow({"hand-written", TableWriter::Int(int64_t(bundle.rules.size())),
             TableWriter::Num(hand.quality.precision, 3),
             TableWriter::Num(hand.quality.recall, 3),
             TableWriter::Num(hand.quality.f1, 3),
             TableWriter::Int(int64_t(hand.repair.remaining_violations))});
  t2.AddRow({"mined", TableWriter::Int(int64_t(mined_bundle.rules.size())),
             TableWriter::Num(mined.quality.precision, 3),
             TableWriter::Num(mined.quality.recall, 3),
             TableWriter::Num(mined.quality.f1, 3),
             TableWriter::Int(int64_t(mined.repair.remaining_violations))});
  t2.Print();

  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  std::fputs(t2.ToCsv().c_str(), stdout);
  return 0;
}
