// GraphSnapshot: an immutable, read-optimized copy of a graph state built
// for repeated subgraph matching. Where the journaled Graph answers reads
// through per-node vectors and hash-map label/attr indexes, the snapshot
// packs:
//   - CSR out/in adjacency: one flat edge array per direction plus offsets,
//     preserving the source graph's per-node adjacency order EXACTLY (match
//     enumeration order — and therefore every downstream repair decision —
//     depends on that order, including revived-edge positions after undo);
//   - dense node/edge label, endpoint and attribute columns (tombstones
//     keep their data addressable, mirroring Graph's identity semantics);
//   - label- and attr-partitioned candidate indexes: alive node ids grouped
//     per label / per (attr, value), each group ascending, so
//     Matcher::SeedCandidates is a contiguous-range copy with no sort;
//   - an alive-edge index sorted by (src, dst, label, id) that answers
//     HasEdge in O(log E) instead of an adjacency scan.
//
// One snapshot per detection pass is built by DetectAll / DetectInto and
// RepairService::Commit when the pool fans out, and shared read-only across
// all worker threads (no synchronization needed: the snapshot never
// changes). Every read is bit-identical to the Graph it was built from —
// asserted by tests/test_snapshot.cc. See DESIGN.md "Storage model".
#ifndef GREPAIR_GRAPH_SNAPSHOT_H_
#define GREPAIR_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_view.h"

namespace grepair {

class GraphSnapshot final : public GraphView {
 public:
  /// Builds from any GraphView (in practice: the live Graph). O(V + E +
  /// sort of the edge index). The source must not be mutated during
  /// construction.
  explicit GraphSnapshot(const GraphView& g);

  const VocabularyPtr& vocab() const override { return vocab_; }

  bool NodeAlive(NodeId n) const override {
    return n < node_alive_.size() && node_alive_[n] != 0;
  }
  bool EdgeAlive(EdgeId e) const override {
    return e < edge_alive_.size() && edge_alive_[e] != 0;
  }
  size_t NumNodes() const override { return num_nodes_; }
  size_t NumEdges() const override { return num_edges_; }
  size_t NodeIdBound() const override { return node_alive_.size(); }
  size_t EdgeIdBound() const override { return edge_alive_.size(); }

  SymbolId NodeLabel(NodeId n) const override { return node_label_[n]; }
  SymbolId EdgeLabel(EdgeId e) const override { return edge_label_[e]; }
  EdgeView Edge(EdgeId e) const override {
    return {e, edge_src_[e], edge_dst_[e], edge_label_[e]};
  }
  SymbolId NodeAttr(NodeId n, SymbolId attr) const override {
    return node_attrs_[n].Get(attr);
  }
  SymbolId EdgeAttr(EdgeId e, SymbolId attr) const override {
    return edge_attrs_[e].Get(attr);
  }
  const AttrMap& NodeAttrs(NodeId n) const override { return node_attrs_[n]; }
  const AttrMap& EdgeAttrs(EdgeId e) const override { return edge_attrs_[e]; }

  IdSpan OutEdges(NodeId n) const override {
    return {out_edges_.data() + out_offset_[n],
            out_offset_[n + 1] - out_offset_[n]};
  }
  IdSpan InEdges(NodeId n) const override {
    return {in_edges_.data() + in_offset_[n],
            in_offset_[n + 1] - in_offset_[n]};
  }

  EdgeId FindEdge(NodeId src, NodeId dst, SymbolId label) const override;
  /// O(log E) binary search over the (src, dst, label)-sorted edge index.
  bool HasEdge(NodeId src, NodeId dst, SymbolId label) const override;

  std::vector<NodeId> Nodes() const override;
  std::vector<EdgeId> Edges() const override;
  bool CollectNodesWithLabel(SymbolId label,
                             std::vector<NodeId>* out) const override;
  bool CollectNodesWithAttr(SymbolId attr, SymbolId value,
                            std::vector<NodeId>* out) const override;
  size_t CountNodesWithLabel(SymbolId label) const override;
  size_t CountEdgesWithLabel(SymbolId label) const override;

  const GraphSnapshot* AsSnapshot() const override { return this; }

  /// The label-partitioned candidate index as a raw range: alive nodes
  /// carrying `label` (0 = all alive), ascending, contiguous.
  IdSpan NodesWithLabelSorted(SymbolId label) const;
  /// Same for the (attr, value) partitions.
  IdSpan NodesWithAttrSorted(SymbolId attr, SymbolId value) const;

  /// Approximate heap footprint of the packed arrays, for capacity
  /// planning (documented in DESIGN.md "Storage model").
  size_t MemoryBytes() const;

 private:
  struct Range {
    uint32_t offset = 0;
    uint32_t len = 0;
  };

  static uint64_t AttrKey(SymbolId attr, SymbolId value) {
    return (static_cast<uint64_t>(attr) << 32) | value;
  }

  VocabularyPtr vocab_;
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;

  // Dense columns over the full id space (tombstones included).
  std::vector<uint8_t> node_alive_;
  std::vector<SymbolId> node_label_;
  std::vector<AttrMap> node_attrs_;
  std::vector<uint8_t> edge_alive_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<SymbolId> edge_label_;
  std::vector<AttrMap> edge_attrs_;

  // CSR adjacency, per-node order copied verbatim from the source view.
  std::vector<uint32_t> out_offset_;  // NodeIdBound()+1 entries
  std::vector<uint32_t> in_offset_;
  std::vector<EdgeId> out_edges_;
  std::vector<EdgeId> in_edges_;

  // Label-partitioned candidate index: groups of ascending alive node ids.
  // label_dir_[0] covers ALL alive nodes (mirrors Graph's label_index_[0]).
  std::vector<NodeId> label_nodes_;
  std::unordered_map<SymbolId, Range> label_dir_;
  std::vector<NodeId> attr_nodes_;
  std::unordered_map<uint64_t, Range> attr_dir_;

  // Alive edges sorted by (src, dst, label, id) for HasEdge; and ascending
  // alive edge ids for Edges().
  std::vector<EdgeId> edge_search_;
  std::vector<EdgeId> alive_edges_;
  std::unordered_map<SymbolId, size_t> edge_label_count_;
};

/// The one-snapshot-per-pass idiom of the parallel read paths: returns `g`
/// itself when it already is a snapshot, otherwise builds one into
/// `*storage` (which owns it for the duration of the pass) and returns
/// that. Keeps the build-or-reuse gate in one place.
inline const GraphView& SnapshotForPass(
    const GraphView& g, std::unique_ptr<GraphSnapshot>* storage) {
  if (g.AsSnapshot() != nullptr) return g;
  *storage = std::make_unique<GraphSnapshot>(g);
  return **storage;
}

}  // namespace grepair

#endif  // GREPAIR_GRAPH_SNAPSHOT_H_
