// Tests for the error injectors: every injected error creates >= 1 rule
// violation, ground-truth facts are well-formed, and class filters work.
#include <gtest/gtest.h>

#include "graph/error_injector.h"
#include "grr/standard_rules.h"
#include "repair/engine.h"

namespace grepair {
namespace {

struct KgFixture {
  VocabularyPtr vocab = MakeVocabulary();
  KgSchema schema = KgSchema::Create(vocab.get());
  Graph graph{vocab};
  RuleSet rules;

  explicit KgFixture(size_t persons = 400) {
    KgOptions opt;
    opt.num_persons = persons;
    opt.num_cities = 40;
    opt.num_countries = 10;
    opt.num_orgs = 30;
    graph = GenerateKg(vocab, schema, opt);
    auto r = KgRules(vocab);
    EXPECT_TRUE(r.ok());
    rules = std::move(r).value();
  }
};

TEST(KgInjectorTest, InjectionCreatesViolations) {
  KgFixture f;
  InjectOptions opt;
  opt.rate = 0.08;
  auto report = InjectKgErrors(&f.graph, f.schema, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().errors.size(), 0u);
  EXPECT_GT(CountViolations(f.graph, f.rules), 0u);
  EXPECT_EQ(f.graph.JournalSize(), 0u);  // journal reset post-injection
}

TEST(KgInjectorTest, AllThreeClassesInjected) {
  KgFixture f;
  InjectOptions opt;
  opt.rate = 0.10;
  auto report = InjectKgErrors(&f.graph, f.schema, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().CountClass(ErrorClass::kIncomplete), 0u);
  EXPECT_GT(report.value().CountClass(ErrorClass::kConflict), 0u);
  EXPECT_GT(report.value().CountClass(ErrorClass::kRedundant), 0u);
}

TEST(KgInjectorTest, ClassFiltersRespected) {
  KgFixture f;
  InjectOptions opt;
  opt.rate = 0.1;
  opt.conflict = false;
  opt.redundant = false;
  auto report = InjectKgErrors(&f.graph, f.schema, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().CountClass(ErrorClass::kIncomplete), 0u);
  EXPECT_EQ(report.value().CountClass(ErrorClass::kConflict), 0u);
  EXPECT_EQ(report.value().CountClass(ErrorClass::kRedundant), 0u);
}

TEST(KgInjectorTest, ZeroRateInjectsNothing) {
  KgFixture f;
  uint64_t fp = f.graph.Fingerprint();
  InjectOptions opt;
  opt.rate = 0.0;
  auto report = InjectKgErrors(&f.graph, f.schema, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().errors.empty());
  EXPECT_EQ(f.graph.Fingerprint(), fp);
  EXPECT_EQ(CountViolations(f.graph, f.rules), 0u);
}

TEST(KgInjectorTest, DeterministicForSeed) {
  KgFixture f1, f2;
  InjectOptions opt;
  opt.rate = 0.05;
  auto r1 = InjectKgErrors(&f1.graph, f1.schema, opt);
  auto r2 = InjectKgErrors(&f2.graph, f2.schema, opt);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(f1.graph.Fingerprint(), f2.graph.Fingerprint());
  EXPECT_EQ(r1.value().errors.size(), r2.value().errors.size());
}

TEST(KgInjectorTest, HigherRateMoreErrors) {
  KgFixture f1, f2;
  InjectOptions lo, hi;
  lo.rate = 0.02;
  hi.rate = 0.15;
  auto r1 = InjectKgErrors(&f1.graph, f1.schema, lo);
  auto r2 = InjectKgErrors(&f2.graph, f2.schema, hi);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r2.value().errors.size(), r1.value().errors.size());
}

TEST(KgInjectorTest, DupPersonFactsReferenceAliveNodes) {
  KgFixture f;
  InjectOptions opt;
  opt.rate = 0.1;
  opt.incomplete = false;
  opt.conflict = false;
  auto report = InjectKgErrors(&f.graph, f.schema, opt);
  ASSERT_TRUE(report.ok());
  for (const auto& err : report.value().errors) {
    if (err.fact.kind == FactKind::kNodesMerged) {
      EXPECT_TRUE(f.graph.NodeAlive(err.fact.a));
      EXPECT_TRUE(f.graph.NodeAlive(err.fact.b));
      // Duplicates share name and birth_year.
      EXPECT_EQ(f.graph.NodeAttr(err.fact.a, f.schema.name),
                f.graph.NodeAttr(err.fact.b, f.schema.name));
    }
  }
}

TEST(SocialInjectorTest, InjectsAndViolates) {
  auto vocab = MakeVocabulary();
  SocialSchema s = SocialSchema::Create(vocab.get());
  SocialOptions gopt;
  gopt.num_persons = 500;
  Graph g = GenerateSocial(vocab, s, gopt);
  auto rules = SocialRules(vocab);
  ASSERT_TRUE(rules.ok());
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto report = InjectSocialErrors(&g, s, iopt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().errors.size(), 0u);
  EXPECT_GT(CountViolations(g, rules.value()), 0u);
}

TEST(CitationInjectorTest, InjectsAndViolates) {
  auto vocab = MakeVocabulary();
  CitationSchema s = CitationSchema::Create(vocab.get());
  CitationOptions gopt;
  gopt.num_papers = 400;
  Graph g = GenerateCitation(vocab, s, gopt);
  auto rules = CitationRules(vocab);
  ASSERT_TRUE(rules.ok());
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto report = InjectCitationErrors(&g, s, iopt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().errors.size(), 0u);
  EXPECT_GT(CountViolations(g, rules.value()), 0u);
  EXPECT_GT(report.value().CountClass(ErrorClass::kIncomplete), 0u);
  EXPECT_GT(report.value().CountClass(ErrorClass::kConflict), 0u);
  EXPECT_GT(report.value().CountClass(ErrorClass::kRedundant), 0u);
}

}  // namespace
}  // namespace grepair
