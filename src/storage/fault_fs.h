// Deterministic fault injection over any Fs, in the clock-as-argument
// spirit of serve::TokenBucket: the crash point is data, not chance. Every
// MUTATING operation (append, sync, rename, remove, truncate, create-dir)
// increments a global operation counter; the configured FaultPlan decides
// what happens at each index:
//
//   - fail_after_op N: operations with index >= N fail with kIo and have
//     no effect — the fail-stop crash model. Sweeping N over a workload
//     visits every crash point between two file operations.
//   - short_write_op N: the Nth append persists only the first half of its
//     payload, then fails — the torn-tail model fsck can't see.
//   - bit_flip_op N: the Nth append succeeds but one bit of its payload is
//     flipped — silent media corruption the CRC layer must catch.
//
// Reads are never failed here: recovery-time read errors are just
// Status propagation, already exercised by pointing recovery at garbage.
#ifndef GREPAIR_STORAGE_FAULT_FS_H_
#define GREPAIR_STORAGE_FAULT_FS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "storage/fs.h"

namespace grepair {
namespace storage {

inline constexpr uint64_t kNoFault = std::numeric_limits<uint64_t>::max();

/// Which mutating operation indexes misbehave. Indexes are 0-based over
/// the lifetime of the FaultFs (not per file).
struct FaultPlan {
  /// Every mutating op with index >= this fails with kIo (fail-stop).
  uint64_t fail_after_op = kNoFault;
  /// This append persists floor(n/2) bytes, then fails.
  uint64_t short_write_op = kNoFault;
  /// This append succeeds with one bit of its payload flipped.
  uint64_t bit_flip_op = kNoFault;
};

/// Fs decorator injecting the FaultPlan. Does not own the base Fs.
class FaultFs : public Fs {
 public:
  explicit FaultFs(Fs* base) : base_(base) {}

  void set_plan(const FaultPlan& plan) { plan_ = plan; }
  /// Mutating operations attempted so far (failed ones included) — run the
  /// workload once fault-free to learn the op count, then sweep.
  uint64_t ops() const { return ops_; }
  void ResetOps() { ops_ = 0; }

  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;
  /// Claims the next op index; returns false when the plan fails it.
  bool NextOpAllowed();

  Fs* base_;
  FaultPlan plan_;
  uint64_t ops_ = 0;
};

}  // namespace storage
}  // namespace grepair

#endif  // GREPAIR_STORAGE_FAULT_FS_H_
