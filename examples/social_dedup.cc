// Entity resolution on a social network: duplicate user profiles are
// repaired by MERGE, which preserves the union of both profiles'
// friendships. The relational baseline deletes the duplicate row instead
// and silently loses edges — run side by side to see the difference.
//
//   $ ./build/examples/social_dedup
#include <cstdio>

#include "baseline/triple_cfd.h"
#include "eval/experiment.h"

using namespace grepair;

int main() {
  SocialOptions gopt;
  gopt.num_persons = 3000;
  InjectOptions iopt;
  iopt.rate = 0.08;
  iopt.incomplete = false;  // isolate the redundancy story
  iopt.conflict = false;

  auto bundle = MakeSocialBundle(gopt, iopt);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const DatasetBundle& b = bundle.value();
  size_t dups = b.truth.CountClass(ErrorClass::kRedundant);
  std::printf("network: %zu users, %zu knows-edges, %zu duplicates injected\n",
              b.graph.NumNodes(), b.graph.NumEdges(), dups);

  // GRR repair: MERGE.
  auto grr = RunMethod(b, "greedy");
  if (!grr.ok()) return 1;
  Graph merged = b.graph.Clone();
  {
    RepairEngine engine;
    (void)engine.Run(&merged, b.rules);
  }

  // Relational repair: DELETE the duplicate row.
  Graph deleted = b.graph.Clone();
  auto cfd = TripleCfdRepair(&deleted, SocialCfdConfig());
  if (!cfd.ok()) return 1;

  std::printf("\n                         GRR (MERGE)   relational (DELETE)\n");
  std::printf("users after repair:      %8zu        %8zu\n",
              merged.NumNodes(), deleted.NumNodes());
  std::printf("edges after repair:      %8zu        %8zu\n",
              merged.NumEdges(), deleted.NumEdges());
  std::printf("recall vs ground truth:  %8.3f        (deletes, never merges)\n",
              grr.value().quality.recall);

  size_t lost = merged.NumEdges() > deleted.NumEdges()
                    ? merged.NumEdges() - deleted.NumEdges()
                    : 0;
  std::printf("\nfriendships the relational repair destroyed: %zu\n", lost);
  std::puts("MERGE re-homes the duplicate's edges onto the survivor;");
  std::puts("row deletion throws that knowledge away.");
  return 0;
}
