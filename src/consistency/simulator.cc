#include "consistency/simulator.h"

#include <algorithm>
#include <set>

#include "repair/engine.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace grepair {
namespace {

// Labels/attributes/values mentioned anywhere in the rule set.
struct RuleAlphabet {
  std::vector<SymbolId> node_labels;
  std::vector<SymbolId> edge_labels;
  std::vector<std::pair<SymbolId, std::vector<SymbolId>>> attrs;  // attr->values
};

RuleAlphabet CollectAlphabet(const RuleSet& rules, Vocabulary* vocab) {
  std::set<SymbolId> nl, el;
  std::set<SymbolId> attr_ids;
  std::set<SymbolId> value_ids;
  for (const auto& r : rules.rules()) {
    const Pattern& p = r.pattern();
    for (const auto& n : p.nodes())
      if (n.label) nl.insert(n.label);
    for (const auto& e : p.edges())
      if (e.label) el.insert(e.label);
    for (const auto& nac : p.nacs())
      if (nac.label) el.insert(nac.label);
    for (const auto& pred : p.predicates()) {
      if (pred.lhs.var != kNoVar) attr_ids.insert(pred.lhs.attr);
      if (pred.rhs.var != kNoVar) attr_ids.insert(pred.rhs.attr);
      if (pred.lhs.var == kNoVar && pred.lhs.constant)
        value_ids.insert(pred.lhs.constant);
      if (pred.rhs.var == kNoVar && pred.rhs.constant)
        value_ids.insert(pred.rhs.constant);
    }
    const RepairAction& a = r.action();
    if (a.label) {
      // could be node or edge label depending on kind; harmless to add both
      if (a.kind == ActionKind::kUpdNode)
        nl.insert(a.label);
      else
        el.insert(a.label);
    }
    if (a.node_label) nl.insert(a.node_label);
    if (a.attr) {
      attr_ids.insert(a.attr);
      if (a.value) value_ids.insert(a.value);
    }
  }
  RuleAlphabet out;
  out.node_labels.assign(nl.begin(), nl.end());
  out.edge_labels.assign(el.begin(), el.end());
  // A couple of synthetic values so equality predicates can both hit & miss.
  std::vector<SymbolId> values(value_ids.begin(), value_ids.end());
  values.push_back(vocab->Value("simv1"));
  values.push_back(vocab->Value("simv2"));
  values.push_back(vocab->Value("simv3"));
  for (SymbolId a : attr_ids) out.attrs.push_back({a, values});
  if (out.node_labels.empty()) out.node_labels.push_back(vocab->Label("N"));
  if (out.edge_labels.empty()) out.edge_labels.push_back(vocab->Label("e"));
  return out;
}

Graph RandomGraph(VocabularyPtr vocab, const RuleAlphabet& alpha,
                  const SimOptions& opt, uint64_t seed) {
  Graph g(vocab);
  Rng rng(seed);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < opt.nodes_per_trial; ++i) {
    SymbolId l = alpha.node_labels[rng.PickIndex(alpha.node_labels)];
    NodeId n = g.AddNode(l);
    for (const auto& [attr, values] : alpha.attrs) {
      if (rng.NextBernoulli(0.7))
        g.SetNodeAttr(n, attr, values[rng.PickIndex(values)]);
    }
    nodes.push_back(n);
  }
  for (size_t i = 0; i < opt.edges_per_trial; ++i) {
    NodeId a = nodes[rng.PickIndex(nodes)];
    NodeId b = nodes[rng.PickIndex(nodes)];
    SymbolId l = alpha.edge_labels[rng.PickIndex(alpha.edge_labels)];
    if (!g.HasEdge(a, b, l)) {
      auto r = g.AddEdge(a, b, l);
      (void)r;
    }
  }
  g.ResetJournal();
  return g;
}

}  // namespace

SimulationReport SimulateRuleSet(const RuleSet& rules, VocabularyPtr vocab,
                                 const SimOptions& opt) {
  Timer t;
  SimulationReport rep;
  RuleAlphabet alpha = CollectAlphabet(rules, vocab.get());

  for (size_t trial = 0; trial < opt.trials; ++trial) {
    rep.trials++;
    Graph base = RandomGraph(vocab, alpha, opt, opt.seed + trial * 7919);

    struct RunOutcome {
      bool ok = false;
      bool nonterm = false;
      uint64_t fingerprint = 0;
    };
    auto run = [&](uint64_t order_seed) -> RunOutcome {
      Graph work = base.Clone();
      RepairOptions ro;
      ro.strategy = RepairStrategy::kNaive;  // order-sensitive on purpose
      ro.seed = order_seed;
      ro.max_fixes = opt.max_fixes;
      ro.max_rounds = opt.max_fixes;
      ro.detect_oscillation = true;
      RepairEngine engine(ro);
      auto rr = engine.Run(&work, rules);
      RunOutcome out;
      if (!rr.ok()) return out;
      out.ok = true;
      out.nonterm =
          rr.value().budget_exhausted || rr.value().oscillation_detected;
      out.fingerprint = work.Fingerprint();
      return out;
    };

    RunOutcome r1 = run(1);
    RunOutcome r2 = run(42);
    if (!r1.ok || !r2.ok) continue;

    if (r1.nonterm || r2.nonterm) {
      rep.nonterminating++;
      if (!rep.witness_found) {
        rep.witness_found = true;
        rep.witness = StrFormat(
            "trial %zu: repair did not terminate within %zu fixes",
            trial, opt.max_fixes);
      }
      continue;
    }
    if (r1.fingerprint != r2.fingerprint) {
      rep.divergent++;
      if (!rep.witness_found) {
        rep.witness_found = true;
        rep.witness = StrFormat(
            "trial %zu: two application orders produced different graphs",
            trial);
      }
    }
  }
  rep.elapsed_ms = t.ElapsedMs();
  return rep;
}

}  // namespace grepair
