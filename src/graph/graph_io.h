// Plain-text graph serialization. The format is line-oriented TSV:
//   # comment
//   N <id> <label> [attr=value;attr=value...]
//   E <id> <src> <dst> <label> [attr=value;...]
// Ids must be dense-ish but gaps are tolerated (gaps become tombstones).
#ifndef GREPAIR_GRAPH_GRAPH_IO_H_
#define GREPAIR_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace grepair {

/// Serializes the alive content of `g` to the text format above.
std::string SerializeGraph(const Graph& g);

/// Parses a graph from the text format, interning into `vocab`.
Result<Graph> ParseGraph(const std::string& text, VocabularyPtr vocab);

/// Writes/reads the format to/from a file path.
Status SaveGraph(const Graph& g, const std::string& path);
Result<Graph> LoadGraph(const std::string& path, VocabularyPtr vocab);

/// Renders the alive content as Graphviz DOT (node labels + names, edge
/// labels), for visual inspection of small graphs and repair diffs.
std::string ToDot(const Graph& g);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GRAPH_IO_H_
