// Durability subsystem tests: CRC32C vectors, the EditEntry binary codec,
// WAL frame scanning under torn/corrupt tails, checkpoint validation and
// retention, recovery planning, fsync-policy loss windows on MemFs, and the
// service-level contract — a RepairService restarted against the same
// --wal directory recovers the acked committed prefix bit-identically.
//
// The capstone is the crash-point sweep: FaultFs fail-stops the workload at
// EVERY mutating file operation in turn; after each crash the recovered
// service's serialized state must equal the crashed service's, byte for
// byte (SaveState's serialization is id-compacting, so the comparison is
// insensitive to checkpoint swap points — exactly the durability contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "eval/experiment.h"
#include "graph/edit_log.h"
#include "serve/repair_service.h"
#include "serve/session.h"
#include "storage/checkpoint.h"
#include "storage/fault_fs.h"
#include "storage/fs.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/strings.h"

namespace grepair {
namespace {

using storage::FaultFs;
using storage::FaultPlan;
using storage::Fs;
using storage::FsyncPolicy;
using storage::MemFs;
using storage::RecoveryPlan;
using storage::WalBatch;
using storage::WalSegmentScan;
using storage::WalSymDef;
using storage::WalWriter;

// ------------------------------------------------------------------ crc32c

TEST(Crc32cTest, MatchesReferenceVector) {
  // RFC 3720 reference: "123456789" under Castagnoli.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendEqualsConcatenation) {
  const std::string a = "hello ", b = "durable world";
  EXPECT_EQ(Crc32cExtend(Crc32c(a.data(), a.size()), b.data(), b.size()),
            Crc32c((a + b).data(), a.size() + b.size()));
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  uint32_t crc = Crc32c("123456789", 9);
  EXPECT_NE(Crc32cMask(crc), crc);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
}

// ------------------------------------------------------------- edit codec

TEST(EditCodecTest, RoundTripsEveryKind) {
  std::vector<EditEntry> entries;
  for (uint8_t k = 0; k <= static_cast<uint8_t>(EditKind::kSetEdgeAttr); ++k) {
    EditEntry e;
    e.kind = static_cast<EditKind>(k);
    e.node = 7 + k;
    e.edge = 9 + k;
    e.src = 1;
    e.dst = 2;
    e.label = 3;
    e.attr = 4;
    e.old_sym = 5;
    e.new_sym = 6;
    if (k % 2) e.attr_snapshot = {{1, 2}, {3, 0}};
    entries.push_back(e);
  }
  std::string buf;
  for (const EditEntry& e : entries) EncodeEditEntry(e, &buf);
  size_t pos = 0;
  for (const EditEntry& want : entries) {
    EditEntry got;
    ASSERT_TRUE(DecodeEditEntry(buf, &pos, &got));
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.node, want.node);
    EXPECT_EQ(got.edge, want.edge);
    EXPECT_EQ(got.src, want.src);
    EXPECT_EQ(got.dst, want.dst);
    EXPECT_EQ(got.label, want.label);
    EXPECT_EQ(got.attr, want.attr);
    EXPECT_EQ(got.old_sym, want.old_sym);
    EXPECT_EQ(got.new_sym, want.new_sym);
    EXPECT_EQ(got.attr_snapshot, want.attr_snapshot);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(EditCodecTest, RejectsTruncationAndBadKind) {
  EditEntry e;
  e.kind = EditKind::kAddNode;
  e.label = 42;
  std::string buf;
  EncodeEditEntry(e, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    EditEntry out;
    EXPECT_FALSE(DecodeEditEntry(std::string_view(buf.data(), cut), &pos, &out))
        << "cut " << cut;
  }
  std::string bad = buf;
  bad[0] = static_cast<char>(200);  // not an EditKind
  size_t pos = 0;
  EditEntry out;
  EXPECT_FALSE(DecodeEditEntry(bad, &pos, &out));
}

// ------------------------------------------------------------- file names

TEST(StorageNamesTest, SegmentAndCheckpointNamesRoundTrip) {
  uint64_t seq = 0;
  EXPECT_EQ(storage::WalSegmentName(42), "wal-00000000000000000042.log");
  EXPECT_TRUE(storage::ParseWalSegmentName("wal-00000000000000000042.log",
                                           &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(storage::ParseWalSegmentName("wal-42.log", &seq));
  EXPECT_FALSE(storage::ParseWalSegmentName("wal-0000000000000000004x.log",
                                            &seq));

  EXPECT_EQ(storage::CheckpointName(7), "checkpoint-00000000000000000007.ckpt");
  EXPECT_TRUE(storage::ParseCheckpointName(
      "checkpoint-00000000000000000007.ckpt", &seq));
  EXPECT_EQ(seq, 7u);
  EXPECT_FALSE(storage::ParseCheckpointName("checkpoint-7.ckpt", &seq));
  EXPECT_FALSE(storage::ParseCheckpointName(
      "checkpoint-00000000000000000007.ckpt.corrupt", &seq));
}

// -------------------------------------------------------- writer and scan

// A small deterministic batch: one symbol definition + two records.
WalBatch MakeBatch(uint64_t seq) {
  WalBatch b;
  b.seq = seq;
  WalSymDef s;
  s.dict = static_cast<uint8_t>(seq % 3);
  s.id = static_cast<uint32_t>(10 + seq);
  s.name = StrFormat("sym-%llu", static_cast<unsigned long long>(seq));
  b.symbols.push_back(s);
  EditEntry e1;
  e1.kind = EditKind::kAddNode;
  e1.label = static_cast<SymbolId>(seq);
  EditEntry e2;
  e2.kind = EditKind::kSetNodeAttr;
  e2.node = static_cast<NodeId>(seq);
  e2.attr = 2;
  e2.new_sym = 3;
  b.records = {e1, e2};
  return b;
}

TEST(WalWriterTest, AppendAndScanRoundTrip) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("wal").ok());
  auto w = WalWriter::Open(&fs, "wal", 1, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  for (uint64_t seq = 1; seq <= 3; ++seq)
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(seq), 0).ok());

  auto scan = storage::ReadWalSegment(&fs, "wal/" + storage::WalSegmentName(1));
  ASSERT_TRUE(scan.ok());
  const WalSegmentScan& s = scan.value();
  EXPECT_TRUE(s.header_ok);
  EXPECT_EQ(s.start_seq, 1u);
  EXPECT_EQ(s.note, "");
  EXPECT_EQ(s.valid_size, s.file_size);
  ASSERT_EQ(s.batches.size(), 3u);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    const WalBatch& b = s.batches[seq - 1];
    EXPECT_EQ(b.seq, seq);
    ASSERT_EQ(b.symbols.size(), 1u);
    EXPECT_EQ(b.symbols[0].id, 10 + seq);
    EXPECT_EQ(b.symbols[0].name,
              StrFormat("sym-%llu", static_cast<unsigned long long>(seq)));
    ASSERT_EQ(b.records.size(), 2u);
    EXPECT_EQ(b.records[0].kind, EditKind::kAddNode);
    EXPECT_EQ(b.records[1].kind, EditKind::kSetNodeAttr);
  }
}

TEST(WalWriterTest, RotateStartsAFreshSegment) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("wal").ok());
  auto w = WalWriter::Open(&fs, "wal", 1, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(1), 0).ok());
  ASSERT_TRUE(w.value()->Rotate(2).ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(2), 0).ok());
  EXPECT_EQ(w.value()->segment_path(), "wal/" + storage::WalSegmentName(2));

  auto s1 = storage::ReadWalSegment(&fs, "wal/" + storage::WalSegmentName(1));
  auto s2 = storage::ReadWalSegment(&fs, "wal/" + storage::WalSegmentName(2));
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1.value().batches.size(), 1u);
  ASSERT_EQ(s2.value().batches.size(), 1u);
  EXPECT_EQ(s2.value().batches[0].seq, 2u);
}

TEST(WalScanTest, TornTailTruncatesToLastCommit) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("wal").ok());
  const std::string path = "wal/" + storage::WalSegmentName(1);
  {
    auto w = WalWriter::Open(&fs, "wal", 1, FsyncPolicy::kEveryCommit, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(1), 0).ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(2), 0).ok());
  }
  uint64_t clean_size = fs.FileSize(path).value();
  // Torn tail: half a frame prefix claiming a huge length.
  auto f = fs.OpenWritable(path, /*truncate=*/false);
  ASSERT_TRUE(f.ok());
  const char garbage[] = {127, 0, 0, 64, 1};
  ASSERT_TRUE(f.value()->Append(garbage, sizeof(garbage)).ok());

  auto scan = storage::ReadWalSegment(&fs, path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().batches.size(), 2u);
  EXPECT_EQ(scan.value().valid_size, clean_size);
  EXPECT_GT(scan.value().file_size, clean_size);
  EXPECT_NE(scan.value().note, "");
}

TEST(WalScanTest, BitFlipIsCaughtByCrc) {
  MemFs mem;
  FaultFs fs(&mem);
  ASSERT_TRUE(fs.CreateDir("wal").ok());
  auto w = WalWriter::Open(&fs, "wal", 1, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(1), 0).ok());
  // A fat attr snapshot makes the record frame dominate the batch buffer,
  // so the flip (at the buffer's midpoint) lands inside its body and the
  // frame CRC — not the framing itself — is what catches it.
  WalBatch fat = MakeBatch(2);
  for (uint32_t i = 0; i < 60; ++i)
    fat.records[0].attr_snapshot.emplace_back(i, i + 1);
  FaultPlan plan;
  plan.bit_flip_op = fs.ops();  // the next append lands corrupted
  fs.set_plan(plan);
  ASSERT_TRUE(w.value()->AppendBatch(fat, 0).ok());  // silent

  auto scan = storage::ReadWalSegment(&mem, "wal/" + storage::WalSegmentName(1));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().batches.size(), 1u);  // batch 2 must NOT replay
  EXPECT_NE(scan.value().note.find("crc mismatch"), std::string::npos)
      << scan.value().note;
  EXPECT_LT(scan.value().valid_size, scan.value().file_size);
}

TEST(WalScanTest, ShortWriteLeavesReplayablePrefix) {
  MemFs mem;
  FaultFs fs(&mem);
  ASSERT_TRUE(fs.CreateDir("wal").ok());
  auto w = WalWriter::Open(&fs, "wal", 1, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(1), 0).ok());
  FaultPlan plan;
  plan.short_write_op = fs.ops();
  fs.set_plan(plan);
  EXPECT_FALSE(w.value()->AppendBatch(MakeBatch(2), 0).ok());

  auto scan = storage::ReadWalSegment(&mem, "wal/" + storage::WalSegmentName(1));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().batches.size(), 1u);
  EXPECT_LT(scan.value().valid_size, scan.value().file_size);
  EXPECT_NE(scan.value().note, "");
}

// ---------------------------------------------------------- fsync policies

// Batches that survive the pessimistic crash (everything unsynced lost)
// after three appends under `policy`, with the injected clock at t=0, 150,
// 160 ms.
size_t SurvivingBatches(FsyncPolicy policy) {
  MemFs fs;
  EXPECT_TRUE(fs.CreateDir("wal").ok());
  auto w = WalWriter::Open(&fs, "wal", 1, policy, /*interval_ms=*/100);
  EXPECT_TRUE(w.ok());
  const uint64_t clock[] = {0, 150, 160};
  for (uint64_t seq = 1; seq <= 3; ++seq)
    EXPECT_TRUE(w.value()->AppendBatch(MakeBatch(seq), clock[seq - 1]).ok());
  fs.DropUnsynced();
  auto scan = storage::ReadWalSegment(&fs, "wal/" + storage::WalSegmentName(1));
  EXPECT_TRUE(scan.ok());
  return scan.value().batches.size();
}

TEST(FsyncPolicyTest, EveryCommitLosesNothing) {
  EXPECT_EQ(SurvivingBatches(FsyncPolicy::kEveryCommit), 3u);
}

TEST(FsyncPolicyTest, IntervalBoundsTheLossWindow) {
  // t=0 within the interval (no sync), t=150 syncs batches 1-2, t=160 not.
  EXPECT_EQ(SurvivingBatches(FsyncPolicy::kInterval), 2u);
}

TEST(FsyncPolicyTest, OffLosesTheUnflushedTail) {
  // The segment header is synced at open regardless; every batch is lost.
  EXPECT_EQ(SurvivingBatches(FsyncPolicy::kOff), 0u);
}

// ------------------------------------------------------------- checkpoints

TEST(CheckpointTest, WriteReadRoundTrip) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  const std::string payload = "# grepair service state v1\nN 0 1\n";
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 5, payload).ok());
  auto got = storage::ReadCheckpoint(&fs, "d/" + storage::CheckpointName(5), 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), payload);
  // No stray temp file survives the atomic rename.
  std::vector<std::string> names = fs.ListDir("d").value();
  for (const std::string& name : names)
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
}

TEST(CheckpointTest, CorruptionAndSeqMismatchAreDataLoss) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 5, "payload bytes").ok());
  const std::string path = "d/" + storage::CheckpointName(5);

  auto wrong_seq = storage::ReadCheckpoint(&fs, path, 6);
  EXPECT_EQ(wrong_seq.status().code(), StatusCode::kDataLoss);

  // Flip a payload byte: the length still matches, the CRC must not.
  std::string bytes = fs.ReadFile(path).value();
  bytes[bytes.size() - 3] ^= 0x01;
  auto f = fs.OpenWritable(path, /*truncate=*/true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->Append(bytes.data(), bytes.size()).ok());
  auto corrupt = storage::ReadCheckpoint(&fs, path, 5);
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);

  auto missing = storage::ReadCheckpoint(&fs, "d/nope", 5);
  EXPECT_NE(missing.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, ListIsNewestFirst) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  for (uint64_t seq : {4u, 12u, 8u})
    ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", seq, "x").ok());
  auto ckpts = storage::ListCheckpoints(&fs, "d");
  ASSERT_TRUE(ckpts.ok());
  EXPECT_EQ(ckpts.value(), (std::vector<uint64_t>{12, 8, 4}));
}

TEST(CheckpointTest, TrimKeepsEveryReplayableSegment) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  for (uint64_t seq : {4u, 8u})
    ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", seq, "x").ok());
  // Segments starting at 1, 5, 9: checkpoint 4 needs batches from 5 on.
  for (uint64_t start : {1u, 5u, 9u}) {
    auto w = WalWriter::Open(&fs, "d", start, FsyncPolicy::kEveryCommit, 0);
    ASSERT_TRUE(w.ok());
  }

  // keep=2: checkpoint 4 is retained, so segment 1 alone is removable
  // (the next segment starts at 5 <= 4+1).
  EXPECT_EQ(storage::TrimStorageDir(&fs, "d", 2), 1u);
  EXPECT_FALSE(fs.FileExists("d/" + storage::WalSegmentName(1)));
  EXPECT_TRUE(fs.FileExists("d/" + storage::WalSegmentName(5)));
  EXPECT_TRUE(fs.FileExists("d/" + storage::CheckpointName(4)));

  // keep=1: checkpoint 4 goes, and with only checkpoint 8 retained
  // segment 5 is no longer needed (next segment starts at 9 <= 8+1).
  EXPECT_EQ(storage::TrimStorageDir(&fs, "d", 1), 2u);
  EXPECT_FALSE(fs.FileExists("d/" + storage::CheckpointName(4)));
  EXPECT_FALSE(fs.FileExists("d/" + storage::WalSegmentName(5)));
  EXPECT_TRUE(fs.FileExists("d/" + storage::CheckpointName(8)));
  EXPECT_TRUE(fs.FileExists("d/" + storage::WalSegmentName(9)));
}

// ---------------------------------------------------------------- recovery

TEST(RecoveryPlanTest, FreshDirIsAnEmptyPlan) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  auto plan = storage::PlanRecovery(&fs, "d");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().found_checkpoint);
  EXPECT_TRUE(plan.value().batches.empty());
  EXPECT_EQ(plan.value().next_seq, 1u);
}

TEST(RecoveryPlanTest, FallsBackOneCheckpointAndQuarantines) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 2, "good old state").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 4, "newer state").ok());
  const std::string newest = "d/" + storage::CheckpointName(4);
  auto f = fs.OpenWritable(newest, /*truncate=*/true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->Append("garbage", 7).ok());

  auto plan = storage::PlanRecovery(&fs, "d");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().found_checkpoint);
  EXPECT_EQ(plan.value().checkpoint_seq, 2u);
  EXPECT_EQ(plan.value().checkpoint_payload, "good old state");
  EXPECT_EQ(plan.value().corrupt_checkpoints, 1u);
  EXPECT_FALSE(fs.FileExists(newest));
  EXPECT_TRUE(fs.FileExists(newest + ".corrupt"));  // inspectable, unpickable
  EXPECT_EQ(plan.value().next_seq, 3u);
}

TEST(RecoveryPlanTest, RefusesToGuessWhenNoCheckpointValidates) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  for (uint64_t seq : {2u, 4u}) {
    ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", seq, "state").ok());
    auto f = fs.OpenWritable("d/" + storage::CheckpointName(seq), true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("junk", 4).ok());
  }
  auto plan = storage::PlanRecovery(&fs, "d");
  EXPECT_EQ(plan.status().code(), StatusCode::kDataLoss);
}

TEST(RecoveryPlanTest, SeqGapDropsEverythingAfterIt) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  {
    auto w = WalWriter::Open(&fs, "d", 1, FsyncPolicy::kEveryCommit, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(1), 0).ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(2), 0).ok());
  }
  {
    auto w = WalWriter::Open(&fs, "d", 5, FsyncPolicy::kEveryCommit, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(5), 0).ok());
    ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(6), 0).ok());
  }
  auto plan = storage::PlanRecovery(&fs, "d");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().batches.size(), 2u);  // 1 and 2; never 5 and 6
  EXPECT_EQ(plan.value().batches.back().seq, 2u);
  EXPECT_EQ(plan.value().dropped_batches, 2u);
  EXPECT_EQ(plan.value().next_seq, 3u);
  ASSERT_FALSE(plan.value().notes.empty());
}

TEST(RecoveryPlanTest, WalBehindTheCheckpointIsDataLoss) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 3, "state").ok());
  // The only segment starts at 7: batches 4..6 are simply gone.
  auto w = WalWriter::Open(&fs, "d", 7, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(7), 0).ok());
  auto plan = storage::PlanRecovery(&fs, "d");
  EXPECT_EQ(plan.status().code(), StatusCode::kDataLoss);
}

TEST(RecoveryPlanTest, DumpReportsCheckpointsAndSegments) {
  MemFs fs;
  ASSERT_TRUE(fs.CreateDir("d").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 2, "state").ok());
  ASSERT_TRUE(storage::WriteCheckpoint(&fs, "d", 4, "newer").ok());
  auto f = fs.OpenWritable("d/" + storage::CheckpointName(4), true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->Append("junk", 4).ok());
  auto w = WalWriter::Open(&fs, "d", 3, FsyncPolicy::kEveryCommit, 0);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value()->AppendBatch(MakeBatch(3), 0).ok());

  auto dump = storage::DumpStorageDir(&fs, "d");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(dump.value().find("checkpoint seq=2 ok"), std::string::npos)
      << dump.value();
  EXPECT_NE(dump.value().find("checkpoint seq=4 INVALID"), std::string::npos);
  EXPECT_NE(dump.value().find("segment start=3 batches=1 (3..3)"),
            std::string::npos)
      << dump.value();
}

// ---------------------------------------------------------------- fault fs

TEST(FaultFsTest, FailStopBlocksEveryMutation) {
  MemFs mem;
  FaultFs fs(&mem);
  FaultPlan plan;
  plan.fail_after_op = 0;
  fs.set_plan(plan);
  EXPECT_FALSE(fs.CreateDir("d").ok());
  EXPECT_FALSE(fs.OpenWritable("f", true).ok());
  EXPECT_FALSE(fs.Rename("a", "b").ok());
  EXPECT_FALSE(fs.RemoveFile("a").ok());
  EXPECT_FALSE(fs.Truncate("a", 0).ok());
  EXPECT_FALSE(fs.SyncDir("d").ok());
  EXPECT_EQ(fs.ops(), 6u);  // failed attempts are counted too
  // Reads pass through untouched.
  EXPECT_FALSE(fs.FileExists("a"));
}

// ---------------------------------------------------- service integration

// A small cleaned social-domain bundle, deterministic per seed.
DatasetBundle SmallBundle(uint64_t seed = 3) {
  SocialOptions gopt;
  gopt.num_persons = 60;
  gopt.seed = seed;
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = seed + 5;
  Result<DatasetBundle> b = MakeSocialBundle(gopt, iopt);
  EXPECT_TRUE(b.ok());
  DatasetBundle bundle = std::move(b).value();
  auto res = RepairEngine().Run(&bundle.graph, bundle.rules);
  EXPECT_TRUE(res.ok());
  return bundle;
}

ServeOptions DurableOpts(Fs* fs, uint64_t checkpoint_every = 2) {
  ServeOptions o;
  o.wal_dir = "wal";
  o.wal_fs = fs;
  o.checkpoint_every = checkpoint_every;
  return o;
}

// Applies n random edits THROUGH the service (journaled, WAL-logged),
// sampling ids and labels from the live graph. Rejected ops (dead ids,
// read-only degradation) are silently skipped — exactly what a driving
// client experiences.
void MutateService(RepairService* svc, Rng* rng, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    const Graph& g = svc->graph();
    std::vector<NodeId> nodes = g.Nodes();
    std::vector<EdgeId> edges = g.Edges();
    if (nodes.size() < 2) return;
    EditEntry op;
    switch (rng->NextBounded(5)) {
      case 0: {
        op.kind = EditKind::kAddEdge;
        op.src = nodes[rng->PickIndex(nodes)];
        op.dst = nodes[rng->PickIndex(nodes)];
        if (op.src == op.dst || edges.empty()) continue;
        op.label = g.EdgeLabel(edges[rng->PickIndex(edges)]);
        break;
      }
      case 1: {
        if (edges.empty()) continue;
        op.kind = EditKind::kRemoveEdge;
        op.edge = edges[rng->PickIndex(edges)];
        break;
      }
      case 2: {
        op.kind = EditKind::kSetNodeLabel;
        op.node = nodes[rng->PickIndex(nodes)];
        op.new_sym = g.NodeLabel(nodes[rng->PickIndex(nodes)]);
        break;
      }
      case 3: {
        op.kind = EditKind::kAddNode;
        op.label = g.NodeLabel(nodes[rng->PickIndex(nodes)]);
        break;
      }
      default: {
        if (edges.empty()) continue;
        op.kind = EditKind::kSetEdgeLabel;
        op.edge = edges[rng->PickIndex(edges)];
        op.new_sym = g.EdgeLabel(edges[rng->PickIndex(edges)]);
        break;
      }
    }
    (void)svc->ApplyEdit(op);
  }
}

// Loads the state file at `path` into a fresh non-durable service and
// re-saves it. LoadServiceState compacts element ids exactly the way the
// checkpoint/recovery swaps do, so two states that differ only by the
// order-preserving renumbering those swaps perform (DESIGN.md
// "Durability") normalize to identical bytes — and any dropped, mangled,
// or extra edit still shows as a byte difference.
std::string Normalized(const DatasetBundle& bundle, const Graph& master,
                       Fs* fs, const std::string& path) {
  ServeOptions o;
  o.wal_fs = fs;
  RepairService svc(master.Clone(), bundle.rules, o);
  EXPECT_TRUE(svc.RestoreState(path).ok()) << path;
  EXPECT_TRUE(svc.SaveState(path + ".norm").ok()) << path;
  auto bytes = fs->ReadFile(path + ".norm");
  EXPECT_TRUE(bytes.ok()) << path;
  return bytes.ok() ? bytes.value() : "";
}

// One edit that interns a brand-new value symbol, so 'S' frames ride the
// WAL and replay exercises the vocabulary-fidelity path.
void TouchFreshSymbol(RepairService* svc, const VocabularyPtr& vocab,
                      int batch) {
  std::vector<NodeId> nodes = svc->graph().Nodes();
  if (nodes.empty()) return;
  EditEntry op;
  op.kind = EditKind::kSetNodeAttr;
  op.node = nodes.front();
  op.attr = vocab->Attr("note");
  op.new_sym = vocab->Value(StrFormat("fresh-%d", batch));
  (void)svc->ApplyEdit(op);
}

// The deterministic durable workload: open durability, then kBatches
// commits of random edits plus one fresh symbol each. Failures (the
// injected crash and the read-only degradation after it) are absorbed —
// the state the service ACKED is what recovery is measured against.
constexpr int kWorkloadBatches = 6;

void RunWorkload(RepairService* svc, const VocabularyPtr& vocab,
                 uint64_t seed) {
  auto open = svc->OpenDurability();
  if (!open.ok()) return;  // crashed during startup: nothing was acked
  Rng rng(seed);
  for (int b = 0; b < kWorkloadBatches; ++b) {
    MutateService(svc, &rng, 5);
    TouchFreshSymbol(svc, vocab, b);
    (void)svc->Commit();
  }
}

TEST(DurableServiceTest, FreshDirGetsABaselineCheckpoint) {
  DatasetBundle bundle = SmallBundle();
  MemFs fs;
  RepairService svc(bundle.graph.Clone(), bundle.rules, DurableOpts(&fs));
  auto info = svc.OpenDurability();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info.value().durable);
  EXPECT_FALSE(info.value().recovered_from_checkpoint);
  EXPECT_TRUE(svc.durable());
  EXPECT_FALSE(svc.read_only());
  // The baseline at seq 0 re-anchors history: restarts never need --graph.
  auto ckpts = storage::ListCheckpoints(&fs, "wal");
  ASSERT_TRUE(ckpts.ok());
  ASSERT_EQ(ckpts.value().size(), 1u);
  EXPECT_EQ(ckpts.value()[0], 0u);
  EXPECT_EQ(svc.stats().checkpoints, 1u);
}

TEST(DurableServiceTest, RestartRecoversAckedCommitsBitIdentically) {
  DatasetBundle bundle = SmallBundle();
  Graph master = bundle.graph.Clone();
  MemFs fs;
  {
    RepairService svc(master.Clone(), bundle.rules, DurableOpts(&fs));
    RunWorkload(&svc, bundle.vocab, 17);
    ASSERT_FALSE(svc.read_only());
    EXPECT_GT(svc.stats().wal_appends, 0u);
    EXPECT_GT(svc.stats().checkpoints, 1u);  // baseline + cadence
    ASSERT_TRUE(svc.SaveState("/want").ok());
  }  // process "exits"; only the MemFs survives

  RepairService restarted(master.Clone(), bundle.rules, DurableOpts(&fs));
  auto info = restarted.OpenDurability();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info.value().recovered_from_checkpoint);
  EXPECT_EQ(info.value().checkpoint_seq + info.value().replayed_batches,
            static_cast<uint64_t>(kWorkloadBatches));
  EXPECT_EQ(restarted.stats().batches, static_cast<size_t>(kWorkloadBatches));

  ASSERT_TRUE(restarted.SaveState("/got").ok());
  EXPECT_EQ(fs.ReadFile("/want").value(), fs.ReadFile("/got").value());

  // Serving continues where the crashed process stopped: the next commit
  // gets the next sequence number and is WAL-logged like any other.
  Rng rng(99);
  MutateService(&restarted, &rng, 3);
  auto next = restarted.Commit();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().batch, static_cast<size_t>(kWorkloadBatches) + 1);
}

TEST(DurableServiceTest, IntervalPolicyRecoversTheSyncedPrefix) {
  DatasetBundle bundle = SmallBundle();
  Graph master = bundle.graph.Clone();
  MemFs fs;
  uint64_t now = 0;
  ServeOptions opts = DurableOpts(&fs, /*checkpoint_every=*/0);
  opts.fsync_policy = FsyncPolicy::kInterval;
  opts.fsync_interval_ms = 100;
  opts.clock_ms = [&now] { return now; };

  std::string want_after_2;
  {
    RepairService svc(master.Clone(), bundle.rules, opts);
    ASSERT_TRUE(svc.OpenDurability().ok());
    Rng rng(5);
    const uint64_t clock[] = {0, 150, 160};
    for (int b = 0; b < 3; ++b) {
      now = clock[b];
      MutateService(&svc, &rng, 4);
      ASSERT_TRUE(svc.Commit().ok());
      if (b == 1) {
        // SaveState is itself synced (atomic rename), so the oracle for
        // the synced prefix survives the crash below.
        ASSERT_TRUE(svc.SaveState("/want2").ok());
      }
    }
  }
  fs.DropUnsynced();  // batch 3 was acked but never reached the device

  RepairService restarted(master.Clone(), bundle.rules, opts);
  auto info = restarted.OpenDurability();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Batches 1-2 were fsynced at t=150; batch 3 is the documented loss
  // window of the relaxed policy. Recovery lands on that exact prefix.
  EXPECT_EQ(info.value().replayed_batches, 2u);
  ASSERT_TRUE(restarted.SaveState("/got2").ok());
  EXPECT_EQ(Normalized(bundle, master, &fs, "/want2"),
            Normalized(bundle, master, &fs, "/got2"));
}

TEST(DurableServiceTest, AppendFailureRollsBackAndDegradesReadOnly) {
  DatasetBundle bundle = SmallBundle();
  MemFs mem;
  FaultFs fs(&mem);
  RepairService svc(bundle.graph.Clone(), bundle.rules, DurableOpts(&fs));
  ASSERT_TRUE(svc.OpenDurability().ok());
  Rng rng(7);
  MutateService(&svc, &rng, 4);
  ASSERT_TRUE(svc.Commit().ok());
  const uint64_t fingerprint = svc.graph().Fingerprint();

  FaultPlan plan;
  plan.fail_after_op = fs.ops();  // the next file op — batch 2's append
  fs.set_plan(plan);
  MutateService(&svc, &rng, 4);
  ASSERT_GT(svc.PendingEdits(), 0u);
  auto committed = svc.Commit();
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kIo);

  // The batch was rejected WHOLE: staged edits rolled back, graph as after
  // batch 1, and the service refuses mutations until a restart recovers.
  EXPECT_TRUE(svc.read_only());
  EXPECT_EQ(svc.PendingEdits(), 0u);
  EXPECT_EQ(svc.graph().Fingerprint(), fingerprint);
  EXPECT_EQ(svc.stats().wal_append_errors, 1u);
  EXPECT_TRUE(svc.stats().read_only);
  EditEntry op;
  op.kind = EditKind::kAddNode;
  op.label = svc.graph().NodeLabel(svc.graph().Nodes().front());
  EXPECT_EQ(svc.ApplyEdit(op).status().code(), StatusCode::kIo);

  // The protocol surfaces the degradation as a structured `err io` line.
  serve::Session session(&svc, serve::SessionMode::kImmediate);
  EXPECT_EQ(session.HandleLine("add_node Person").rfind("err io ", 0), 0u);

  // A restart against the same directory recovers the acked prefix.
  fs.set_plan(FaultPlan{});
  RepairService restarted(bundle.graph.Clone(), bundle.rules,
                          DurableOpts(&fs));
  ASSERT_TRUE(restarted.OpenDurability().ok());
  EXPECT_FALSE(restarted.read_only());
  EXPECT_EQ(restarted.stats().batches, 1u);
}

TEST(DurableServiceTest, CorruptRestoreFileIsErrCorrupt) {
  DatasetBundle bundle = SmallBundle();
  MemFs fs;
  ServeOptions opts;
  opts.wal_fs = &fs;  // no wal_dir: just the Fs seam for save/restore
  RepairService svc(bundle.graph.Clone(), bundle.rules, opts);
  auto f = fs.OpenWritable("/junk", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->Append("not a state file\n", 17).ok());
  serve::Session session(&svc, serve::SessionMode::kImmediate);
  EXPECT_EQ(session.HandleLine("restore /junk").rfind("err corrupt ", 0), 0u);
  // Save to an unwritable path still maps to a structured io error.
  FaultFs faulty(&fs);
  // (separate service so the sealed one above stays untouched)
  ServeOptions fopts;
  fopts.wal_fs = &faulty;
  RepairService svc2(bundle.graph.Clone(), bundle.rules, fopts);
  FaultPlan plan;
  plan.fail_after_op = 0;
  faulty.set_plan(plan);
  serve::Session session2(&svc2, serve::SessionMode::kImmediate);
  EXPECT_EQ(session2.HandleLine("snapshot /out").rfind("err io ", 0), 0u);
}

TEST(DurableServiceTest, MismatchedConfigurationIsRefused) {
  // A directory written under one --graph/--rules cannot be opened under
  // another: the checkpoint's vocabulary dump re-interns to different ids
  // and recovery refuses rather than replaying against drifted symbols.
  DatasetBundle social = SmallBundle();
  MemFs fs;
  {
    RepairService svc(social.graph.Clone(), social.rules, DurableOpts(&fs));
    ASSERT_TRUE(svc.OpenDurability().ok());
    Rng rng(11);
    MutateService(&svc, &rng, 4);
    ASSERT_TRUE(svc.Commit().ok());
  }
  CitationOptions gopt;
  gopt.num_papers = 40;
  gopt.num_authors = 15;
  gopt.seed = 3;
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = 8;
  auto citation = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(citation.ok());
  RepairService other(std::move(citation.value().graph),
                      citation.value().rules, DurableOpts(&fs));
  EXPECT_FALSE(other.OpenDurability().ok());
}

// ------------------------------------------------------ crash-point sweep

// The randomized crash-point property test: fail-stop the workload at
// every mutating file operation in turn; recovery must reproduce the
// crashed process's state byte-for-byte. SaveState's serialization is the
// oracle — it rewrites ids densely, so it is a fixed point under the
// checkpoint swaps and compares states the way recovery produces them.
TEST(CrashPointSweepTest, EveryCrashPointRecoversTheAckedPrefix) {
  DatasetBundle bundle = SmallBundle();
  Graph master = bundle.graph.Clone();
  constexpr uint64_t kSeed = 77;

  // Fault-free dry run: learn the op count, and pin the oracle itself —
  // recovery of a clean directory must reproduce the final state exactly.
  uint64_t total_ops = 0;
  {
    MemFs mem;
    FaultFs fs(&mem);
    RepairService svc(master.Clone(), bundle.rules, DurableOpts(&fs));
    RunWorkload(&svc, bundle.vocab, kSeed);
    ASSERT_FALSE(svc.read_only());
    total_ops = fs.ops();
    ASSERT_TRUE(svc.SaveState("/want").ok());
    RepairService rec(master.Clone(), bundle.rules, DurableOpts(&fs));
    ASSERT_TRUE(rec.OpenDurability().ok());
    ASSERT_TRUE(rec.SaveState("/got").ok());
    ASSERT_EQ(Normalized(bundle, master, &mem, "/want"),
              Normalized(bundle, master, &mem, "/got"));
  }
  ASSERT_GT(total_ops, 20u) << "workload too small to sweep";

  for (uint64_t crash = 0; crash < total_ops; ++crash) {
    MemFs mem;
    FaultFs fs(&mem);
    FaultPlan plan;
    plan.fail_after_op = crash;  // fail-stop: ops >= crash all fail
    fs.set_plan(plan);
    RepairService crashed(master.Clone(), bundle.rules, DurableOpts(&fs));
    RunWorkload(&crashed, bundle.vocab, kSeed);
    mem.DropUnsynced();  // the pessimistic power cut
    fs.set_plan(FaultPlan{});  // the machine comes back healthy

    // What the crashed process had acked is exactly its live state: failed
    // batches were rolled back before the error surfaced.
    ASSERT_TRUE(crashed.SaveState("/want").ok()) << "crash point " << crash;

    RepairService recovered(master.Clone(), bundle.rules, DurableOpts(&fs));
    auto info = recovered.OpenDurability();
    ASSERT_TRUE(info.ok())
        << "crash point " << crash << ": " << info.status().ToString();
    ASSERT_TRUE(recovered.SaveState("/got").ok());
    ASSERT_EQ(Normalized(bundle, master, &mem, "/want"),
              Normalized(bundle, master, &mem, "/got"))
        << "recovery diverged from the acked prefix at crash point " << crash;
    EXPECT_FALSE(recovered.read_only());
  }
}

// -------------------------------------------------------------- wal dump

TEST(WalDumpCliTest, PrintsRecoverableStateOfARealDirectory) {
  DatasetBundle bundle = SmallBundle();
  storage::Fs* fs = storage::RealFs::Default();
  const std::string dir = "wal_dump_cli_test.dir";
  {
    ServeOptions opts;
    opts.wal_dir = dir;
    opts.checkpoint_every = 2;
    RepairService svc(bundle.graph.Clone(), bundle.rules, opts);
    ASSERT_TRUE(svc.OpenDurability().ok());
    Rng rng(13);
    for (int b = 0; b < 3; ++b) {
      MutateService(&svc, &rng, 4);
      ASSERT_TRUE(svc.Commit().ok());
    }
  }
  std::string out;
  EXPECT_EQ(RunCli({"wal", "dump", dir}, &out), 0) << out;
  EXPECT_NE(out.find("storage dir " + dir), std::string::npos) << out;
  EXPECT_NE(out.find("checkpoint seq="), std::string::npos) << out;
  EXPECT_NE(out.find("segment start="), std::string::npos) << out;

  out.clear();
  EXPECT_NE(RunCli({"wal", "dump"}, &out), 0);  // usage error, not a crash

  std::vector<std::string> names = fs->ListDir(dir).value();
  for (const std::string& name : names)
    ASSERT_TRUE(fs->RemoveFile(dir + "/" + name).ok());
  std::remove(dir.c_str());
}

}  // namespace
}  // namespace grepair
