// Rule-set consistency checking. Exact consistency (every graph reaches a
// violation-free fixpoint, regardless of application order) is intractable,
// so the checker layers (a) a conservative static analysis — sufficient
// conditions for termination — over (b) a Monte-Carlo simulator that hunts
// for concrete non-termination / divergence witnesses (see simulator.h).
#ifndef GREPAIR_CONSISTENCY_CHECKER_H_
#define GREPAIR_CONSISTENCY_CHECKER_H_

#include <string>
#include <vector>

#include "consistency/trigger_graph.h"
#include "grr/rule.h"

namespace grepair {

/// Static analysis verdict for one rule set.
struct ConsistencyReport {
  /// True when the sufficient conditions hold: no creation cycle among
  /// ADD_NODE rules, no relabel cycle, no add/delete contradiction pair.
  bool statically_consistent = false;
  bool creation_cycle = false;
  bool relabel_cycle = false;
  size_t num_trigger_edges = 0;
  size_t num_contradictions = 0;
  std::vector<std::string> issues;  ///< human-readable findings
  double analysis_ms = 0.0;
};

/// Runs the static analysis.
ConsistencyReport CheckConsistency(const RuleSet& rules,
                                   const Vocabulary& vocab);

}  // namespace grepair

#endif  // GREPAIR_CONSISTENCY_CHECKER_H_
