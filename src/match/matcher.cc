#include "match/matcher.h"

#include <algorithm>

#include "graph/snapshot.h"
#include "match/intersect.h"
#include "match/plan.h"
#include "match/predicate.h"
#include "obs/metrics.h"

namespace grepair {

namespace {

// Process-wide matcher instruments. The hot loops count into plain
// SearchState locals; one flush of sharded-cell adds per FindAll keeps the
// per-expansion cost at zero (DESIGN.md "Observability").
struct MatchMetrics {
  obs::Counter* seeds;
  obs::Counter* candidates;
  obs::Counter* expansions;
  obs::Counter* matches;
  obs::Counter* gallop;
  obs::Counter* merge;
};

MatchMetrics& Metrics() {
  static MatchMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return MatchMetrics{
        reg.GetCounter("grepair_match_seeds_total",
                       "Root-level seed candidates tried across searches."),
        reg.GetCounter("grepair_match_candidates_total",
                       "Candidate nodes probed at every search depth."),
        reg.GetCounter("grepair_match_expansions_total",
                       "Backtracking search-tree expansions."),
        reg.GetCounter("grepair_match_matches_total",
                       "Embeddings found and delivered to callbacks."),
        reg.GetCounter("grepair_intersect_gallop_total",
                       "Candidate intersections taken by the galloping "
                       "kernel (planned path)."),
        reg.GetCounter("grepair_intersect_merge_total",
                       "Candidate intersections taken by the block-wise "
                       "merge kernel (planned path).")};
  }();
  return m;
}

// Injectivity via linear scan: the bound set is pattern-sized (a handful of
// entries), where a scan over contiguous ids beats hashed membership.
bool NodeBound(const std::vector<NodeId>& binding, NodeId node) {
  return std::find(binding.begin(), binding.end(), node) != binding.end();
}

bool EdgeBound(const std::vector<EdgeId>& edge_binding, EdgeId e) {
  return std::find(edge_binding.begin(), edge_binding.end(), e) !=
         edge_binding.end();
}

// A pivot list this many times larger than the current candidate set is
// cheaper to leave to the per-candidate HasEdge check than to gather, sort
// and intersect.
constexpr size_t kIntersectSlack = 8;

}  // namespace

bool Match::ContainsNode(NodeId n) const {
  return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
}

bool Match::ContainsEdge(EdgeId e) const {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

Matcher::Matcher(const GraphView& graph, const Pattern& pattern,
                 const MatchPlan* plan)
    : g_(graph), p_(pattern), plan_(plan), snap_(graph.AsSnapshot()) {}

struct Matcher::SearchState {
  const MatchOptions* opts;
  const MatchCallback* cb = nullptr;
  MatchStats stats;
  bool stop = false;

  MatchScratch* s = nullptr;       // bindings + per-depth candidate buffers
  const PlanBody* body = nullptr;  // non-null: compiled extension path
  size_t bound_count = 0;
  IntersectStats isect;  // kernel tallies, flushed once per FindAll

  // Local observability tallies, flushed to the registry once per FindAll.
  size_t root_depth = 0;      // bound_count after anchors = the seed level
  size_t obs_seeds = 0;       // candidates tried at the seed level
  size_t obs_candidates = 0;  // candidates generated at every level
};

// Checks label, injectivity, adjacency to all bound neighbors, and every
// predicate that becomes fully bound with this assignment.
bool Matcher::CheckNewBinding(SearchState* st, VarId var, NodeId node) const {
  if (!g_.NodeAlive(node)) return false;
  const PatternNode& pn = p_.nodes()[var];
  if (pn.label != 0 && g_.NodeLabel(node) != pn.label) return false;
  std::vector<NodeId>& binding = st->s->binding;
  if (NodeBound(binding, node)) return false;

  // Adjacency: every pattern edge between var and an already-bound var must
  // have at least one concrete counterpart.
  for (const auto& pe : p_.edges()) {
    if (pe.src == var && binding[pe.dst] != kInvalidNode) {
      if (!g_.HasEdge(node, binding[pe.dst], pe.label)) return false;
    } else if (pe.dst == var && binding[pe.src] != kInvalidNode) {
      if (!g_.HasEdge(binding[pe.src], node, pe.label)) return false;
    } else if (pe.src == var && pe.dst == var) {
      if (!g_.HasEdge(node, node, pe.label)) return false;
    }
  }

  // Predicates that just became decidable. (Edge-attribute predicates stay
  // kUnknown here — they are settled during edge enumeration.)
  binding[var] = node;
  bool ok = true;
  for (const auto& pred : p_.predicates()) {
    bool involves = (!pred.lhs.is_edge && pred.lhs.var == var) ||
                    (!pred.rhs.is_edge && pred.rhs.var == var);
    if (!involves) continue;
    if (EvalPredicate(g_, pred, binding) == PredVerdict::kFalse) {
      ok = false;
      break;
    }
  }
  binding[var] = kInvalidNode;
  return ok;
}

// The planned counterpart: same checks, but the pattern scan for relevant
// edges/predicates was done at compile time, and checks the candidate
// source already guarantees are skipped. `covered_pivots` bit i set means
// the candidate list was gathered from (or intersected with) pivot i's
// alive-adjacency under its edge-label filter — exactly HasEdge's
// membership on every backend, so re-probing cannot change the verdict.
// `covered_pred` (>= 0) is the attr-join predicate whose index supplied
// the candidates: membership means node.attr == the resolved value, which
// is the predicate's truth. Uncovered pivots/predicates are checked in
// full, so the accepted set never depends on the candidate source.
bool Matcher::CheckPlannedBinding(SearchState* st, const PlanStep& step,
                                  NodeId node, uint32_t covered_pivots,
                                  int covered_pred) const {
  if (!g_.NodeAlive(node)) return false;
  if (step.label != 0 && g_.NodeLabel(node) != step.label) return false;
  std::vector<NodeId>& binding = st->s->binding;
  if (NodeBound(binding, node)) return false;

  for (size_t i = 0; i < step.pivots.size(); ++i) {
    if (i < 32 && (covered_pivots >> i) & 1u) continue;
    const PlanPivot& piv = step.pivots[i];
    const NodeId b = binding[piv.bound_var];
    const bool ok = piv.forward ? g_.HasEdge(b, node, piv.edge_label)
                                : g_.HasEdge(node, b, piv.edge_label);
    if (!ok) return false;
  }
  for (uint32_t ei : step.self_loops)
    if (!g_.HasEdge(node, node, p_.edges()[ei].label)) return false;

  if (step.preds.empty()) return true;
  binding[step.var] = node;
  bool ok = true;
  for (uint32_t pi : step.preds) {
    if (covered_pred >= 0 && pi == static_cast<uint32_t>(covered_pred))
      continue;
    if (EvalPredicate(g_, p_.predicates()[pi], binding) ==
        PredVerdict::kFalse) {
      ok = false;
      break;
    }
  }
  binding[step.var] = kInvalidNode;
  return ok;
}

// Candidate nodes for `var`, from the most selective available source:
// 1) adjacency to a bound var, 2) attr-index join via an EQ predicate with
// a bound var or constant, 3) label index. Writes into *out (replaced).
void Matcher::CandidatesFor(const SearchState& st, VarId var,
                            std::vector<NodeId>* out, bool* sorted) const {
  const std::vector<NodeId>& binding = st.s->binding;
  out->clear();
  *sorted = false;
  // 1) adjacency pivot: choose the bound-adjacent pattern edge whose bound
  //    endpoint has the smallest relevant degree.
  int best_edge = -1;
  bool best_forward = false;  // true: bound is src, candidates from OutEdges
  size_t best_deg = SIZE_MAX;
  for (size_t i = 0; st.opts->use_adjacency_pivot && i < p_.edges().size();
       ++i) {
    const auto& pe = p_.edges()[i];
    if (pe.dst == var && pe.src != var && binding[pe.src] != kInvalidNode) {
      size_t deg = g_.OutDegree(binding[pe.src]);
      if (deg < best_deg) {
        best_deg = deg;
        best_edge = static_cast<int>(i);
        best_forward = true;
      }
    }
    if (pe.src == var && pe.dst != var && binding[pe.dst] != kInvalidNode) {
      size_t deg = g_.InDegree(binding[pe.dst]);
      if (deg < best_deg) {
        best_deg = deg;
        best_edge = static_cast<int>(i);
        best_forward = false;
      }
    }
  }
  if (best_edge >= 0) {
    const auto& pe = p_.edges()[best_edge];
    if (best_forward) {
      NodeId b = binding[pe.src];
      for (EdgeId e : g_.OutEdges(b)) {
        if (pe.label != 0 && g_.EdgeLabel(e) != pe.label) continue;
        out->push_back(g_.Edge(e).dst);
      }
    } else {
      NodeId b = binding[pe.dst];
      for (EdgeId e : g_.InEdges(b)) {
        if (pe.label != 0 && g_.EdgeLabel(e) != pe.label) continue;
        out->push_back(g_.Edge(e).src);
      }
    }
    // Sort+unique in place replaces the old per-call unordered_set dedup;
    // the search wants ascending order anyway, so report it as sorted and
    // downstream skips its re-sort.
    SortUniqueIds(out);
    *sorted = true;
    return;
  }

  // 2) attribute join: EQ predicate var.attr = bound.attr / constant.
  for (const auto& pred : p_.predicates()) {
    if (!st.opts->use_attr_join) break;
    if (pred.op != CmpOp::kEq) continue;
    if (PredicateUsesEdges(pred)) continue;
    const AttrOperand* self = nullptr;
    const AttrOperand* other = nullptr;
    if (pred.lhs.var == var) {
      self = &pred.lhs;
      other = &pred.rhs;
    } else if (pred.rhs.var == var) {
      self = &pred.rhs;
      other = &pred.lhs;
    } else {
      continue;
    }
    SymbolId value = 0;
    if (other->var == kNoVar) {
      value = other->constant;
    } else if (binding[other->var] != kInvalidNode) {
      value = g_.NodeAttr(binding[other->var], other->attr);
    } else {
      continue;
    }
    if (value == 0) continue;  // absent attr: EQ can't hold anyway
    *sorted = g_.CollectNodesWithAttr(self->attr, value, out);
    return;
  }

  // 3) label index.
  *sorted = g_.CollectNodesWithLabel(p_.nodes()[var].label, out);
}

// Candidate list for one planned step: pointer + count, either a zero-copy
// snapshot partition span or this depth's scratch buffer.
size_t Matcher::PlannedCandidates(SearchState* st, const PlanStep& step,
                                  size_t depth, const NodeId** out,
                                  uint32_t* covered_pivots,
                                  int* covered_pred) const {
  MatchScratch::DepthBufs& bufs = st->s->depth[depth];
  const std::vector<NodeId>& binding = st->s->binding;
  *covered_pivots = 0;
  *covered_pred = -1;

  if (step.source == PlanStep::Source::kAdjacency) {
    // Gather the pivot with the smallest runtime degree (the same pivot the
    // interpreter would pick), then shrink the set by intersecting the
    // other pivots' neighbor lists where that is affordable.
    size_t best = 0;
    size_t best_deg = SIZE_MAX;
    for (size_t i = 0; i < step.pivots.size(); ++i) {
      const PlanPivot& piv = step.pivots[i];
      const NodeId b = binding[piv.bound_var];
      const size_t deg = piv.forward ? g_.OutDegree(b) : g_.InDegree(b);
      if (deg < best_deg) {
        best_deg = deg;
        best = i;
      }
    }
    const auto gather = [this, &binding](const PlanPivot& piv,
                                         std::vector<NodeId>* dst) {
      dst->clear();
      const NodeId b = binding[piv.bound_var];
      if (piv.forward) {
        for (EdgeId e : g_.OutEdges(b)) {
          if (piv.edge_label != 0 && g_.EdgeLabel(e) != piv.edge_label)
            continue;
          dst->push_back(g_.Edge(e).dst);
        }
      } else {
        for (EdgeId e : g_.InEdges(b)) {
          if (piv.edge_label != 0 && g_.EdgeLabel(e) != piv.edge_label)
            continue;
          dst->push_back(g_.Edge(e).src);
        }
      }
      SortUniqueIds(dst);
    };
    gather(step.pivots[best], &bufs.cand);
    if (best < 32) *covered_pivots |= 1u << best;
    for (size_t i = 0; i < step.pivots.size() && !bufs.cand.empty(); ++i) {
      if (i == best) continue;
      const PlanPivot& piv = step.pivots[i];
      const NodeId b = binding[piv.bound_var];
      const size_t deg = piv.forward ? g_.OutDegree(b) : g_.InDegree(b);
      if (deg > kIntersectSlack * bufs.cand.size()) continue;
      gather(piv, &bufs.gather);
      IntersectSorted(bufs.cand, bufs.gather, &bufs.tmp, &st->isect);
      bufs.cand.swap(bufs.tmp);
      if (i < 32) *covered_pivots |= 1u << i;
    }
    *out = bufs.cand.data();
    return bufs.cand.size();
  }

  if (step.source == PlanStep::Source::kAttrJoin) {
    for (const PlanAttrJoin& j : step.attr_joins) {
      const SymbolId value =
          j.other_var == kNoVar ? j.constant
                                : g_.NodeAttr(binding[j.other_var],
                                              j.other_attr);
      if (value == 0) continue;  // absent attr: EQ can't hold anyway
      *covered_pred = static_cast<int>(j.pred_index);
      if (snap_ != nullptr) {
        const IdSpan span = snap_->NodesWithAttrSorted(j.attr, value);
        *out = span.ptr;
        return span.len;
      }
      if (!g_.CollectNodesWithAttr(j.attr, value, &bufs.cand))
        std::sort(bufs.cand.begin(), bufs.cand.end());
      *out = bufs.cand.data();
      return bufs.cand.size();
    }
    // No join resolved at runtime: label scan, like the interpreter.
  }

  if (snap_ != nullptr) {
    const IdSpan span = snap_->NodesWithLabelSorted(step.label);
    *out = span.ptr;
    return span.len;
  }
  if (!g_.CollectNodesWithLabel(step.label, &bufs.cand))
    std::sort(bufs.cand.begin(), bufs.cand.end());
  *out = bufs.cand.data();
  return bufs.cand.size();
}

// Next unbound var: prefer ones adjacent to the bound set; tie-break by the
// graph-level frequency of the var's label (rarest first). Delegates to the
// shared ordering policy in plan.h — the plan compiler runs the SAME code,
// which is what keeps planned and interpreted variable orders identical.
VarId Matcher::PickNextVar(const SearchState& st) const {
  const std::vector<NodeId>& binding = st.s->binding;
  return PickNextVarOrdered(
      g_, p_, [&binding](VarId v) { return binding[v] != kInvalidNode; });
}

// All node vars bound: enumerate injective concrete-edge assignments for the
// pattern edges, then run NACs and emit.
void Matcher::EnumerateEdges(SearchState* st, size_t edge_idx) const {
  if (st->stop) return;
  std::vector<NodeId>& binding = st->s->binding;
  std::vector<EdgeId>& edge_binding = st->s->edge_binding;
  if (edge_idx == p_.NumEdges()) {
    // NACs (node-var based) — checked once per node binding; doing it here
    // (inside edge enumeration) would re-check identically, so callers
    // arrange to call with edge_idx==0 only after NACs pass.
    // Edge-attribute predicates become decidable only now.
    for (const auto& pred : p_.predicates()) {
      if (!PredicateUsesEdges(pred)) continue;
      if (EvalPredicate(g_, pred, binding, &edge_binding) !=
          PredVerdict::kTrue)
        return;
    }
    ++st->stats.matches;
    Match m;
    m.nodes = binding;
    m.edges = edge_binding;
    if (!(*st->cb)(m) || st->stats.matches >= st->opts->max_matches)
      st->stop = true;
    return;
  }
  const auto& pe = p_.edges()[edge_idx];
  // Honor anchors.
  for (const auto& [idx, eid] : st->opts->edge_anchors) {
    if (idx == edge_idx) {
      EdgeView v = g_.Edge(eid);
      if (g_.EdgeAlive(eid) && v.src == binding[pe.src] &&
          v.dst == binding[pe.dst] && (pe.label == 0 || v.label == pe.label) &&
          !EdgeBound(edge_binding, eid)) {
        edge_binding[edge_idx] = eid;
        EnumerateEdges(st, edge_idx + 1);
        edge_binding[edge_idx] = kInvalidEdge;
      }
      return;
    }
  }
  NodeId s = binding[pe.src], d = binding[pe.dst];
  for (EdgeId e : g_.OutEdges(s)) {
    EdgeView v = g_.Edge(e);
    if (v.dst != d) continue;
    if (pe.label != 0 && v.label != pe.label) continue;
    if (EdgeBound(edge_binding, e)) continue;
    edge_binding[edge_idx] = e;
    EnumerateEdges(st, edge_idx + 1);
    edge_binding[edge_idx] = kInvalidEdge;
    if (st->stop) return;
  }
}

void Matcher::Extend(SearchState* st) const {
  if (st->stop) return;
  if (++st->stats.expansions > st->opts->max_expansions) {
    st->stats.exhausted = true;
    st->stop = true;
    return;
  }
  if (st->bound_count == p_.NumNodes()) {
    // NACs first (cheap, node-level), then concrete edge enumeration.
    for (const auto& nac : p_.nacs())
      if (!EvalNac(g_, nac, st->s->binding)) return;
    EnumerateEdges(st, 0);
    return;
  }
  VarId var = PickNextVar(*st);
  // Per-depth scratch: deeper recursion uses its own entry, so this level's
  // list stays intact across the candidate loop.
  std::vector<NodeId>& cands = st->s->depth[st->bound_count].cand;
  bool sorted = false;
  CandidatesFor(*st, var, &cands, &sorted);
  // Deterministic (ascending) order helps tests and reproducibility; a
  // snapshot's label/attr partitions arrive pre-sorted.
  if (!sorted) std::sort(cands.begin(), cands.end());
  st->obs_candidates += cands.size();
  if (st->bound_count == st->root_depth) st->obs_seeds += cands.size();
  for (size_t i = 0; i < cands.size(); ++i) {
    NodeId cand = cands[i];
    if (!CheckNewBinding(st, var, cand)) continue;
    st->s->binding[var] = cand;
    ++st->bound_count;
    Extend(st);
    --st->bound_count;
    st->s->binding[var] = kInvalidNode;
    if (st->stop) return;
  }
}

// The compiled twin of Extend: same expansion accounting, same NAC/edge
// tail, but the step (variable, candidate source, hoisted checks) comes
// from the plan body instead of being re-derived.
void Matcher::ExtendPlanned(SearchState* st, size_t depth) const {
  if (st->stop) return;
  if (++st->stats.expansions > st->opts->max_expansions) {
    st->stats.exhausted = true;
    st->stop = true;
    return;
  }
  const PlanBody& body = *st->body;
  if (depth == body.steps.size()) {
    for (const auto& nac : p_.nacs())
      if (!EvalNac(g_, nac, st->s->binding)) return;
    EnumerateEdges(st, 0);
    return;
  }
  const PlanStep& step = body.steps[depth];
  const NodeId* cands = nullptr;
  uint32_t covered_pivots = 0;
  int covered_pred = -1;
  const size_t n =
      PlannedCandidates(st, step, depth, &cands, &covered_pivots,
                        &covered_pred);
  st->obs_candidates += n;
  if (depth == 0) st->obs_seeds += n;
  for (size_t i = 0; i < n; ++i) {
    NodeId cand = cands[i];
    if (!CheckPlannedBinding(st, step, cand, covered_pivots, covered_pred))
      continue;
    st->s->binding[step.var] = cand;
    ++st->bound_count;
    ExtendPlanned(st, depth + 1);
    --st->bound_count;
    st->s->binding[step.var] = kInvalidNode;
    if (st->stop) return;
  }
}

MatchStats Matcher::FindAll(const MatchOptions& opts,
                            const MatchCallback& cb) const {
  ScratchLease lease;
  SearchState st;
  st.opts = &opts;
  st.cb = &cb;
  st.s = lease.get();
  st.s->Prepare(p_.NumNodes(), p_.NumEdges());
  std::vector<NodeId>& binding = st.s->binding;

  // Apply edge anchors (bind endpoints too).
  for (const auto& [idx, eid] : opts.edge_anchors) {
    if (idx >= p_.NumEdges() || !g_.EdgeAlive(eid)) return st.stats;
    const auto& pe = p_.edges()[idx];
    EdgeView v = g_.Edge(eid);
    if (pe.label != 0 && v.label != pe.label) return st.stats;
    // Bind src endpoint.
    if (binding[pe.src] == kInvalidNode) {
      if (!CheckNewBinding(&st, pe.src, v.src)) return st.stats;
      binding[pe.src] = v.src;
      ++st.bound_count;
    } else if (binding[pe.src] != v.src) {
      return st.stats;
    }
    // Bind dst endpoint (self-loop pattern edges share the var).
    if (binding[pe.dst] == kInvalidNode) {
      if (!CheckNewBinding(&st, pe.dst, v.dst)) return st.stats;
      binding[pe.dst] = v.dst;
      ++st.bound_count;
    } else if (binding[pe.dst] != v.dst) {
      return st.stats;
    }
  }
  // Apply node anchors.
  for (const auto& [var, node] : opts.node_anchors) {
    if (var >= p_.NumNodes()) return st.stats;
    if (binding[var] != kInvalidNode) {
      if (binding[var] != node) return st.stats;
      continue;
    }
    if (!CheckNewBinding(&st, var, node)) return st.stats;
    binding[var] = node;
    ++st.bound_count;
  }

  st.root_depth = st.bound_count;

  // Planned path: only when the plan was compiled for this exact pattern,
  // the pruning heuristics it bakes in are enabled, and a body exists for
  // this anchor shape. Everything else falls back to the interpreter — the
  // emitted stream is identical either way.
  if (plan_ != nullptr && opts.use_plan && opts.use_adjacency_pivot &&
      opts.use_attr_join && plan_->usable() && plan_->pattern() == &p_) {
    uint32_t mask = 0;
    for (const auto& [idx, eid] : opts.edge_anchors)
      mask |= (1u << p_.edges()[idx].src) | (1u << p_.edges()[idx].dst);
    for (const auto& [var, node] : opts.node_anchors) mask |= 1u << var;
    st.body = plan_->BodyFor(mask);
  }
  if (st.body != nullptr)
    ExtendPlanned(&st, 0);
  else
    Extend(&st);

  if (obs::MetricsEnabled()) {
    MatchMetrics& m = Metrics();
    m.seeds->Add(st.obs_seeds);
    m.candidates->Add(st.obs_candidates);
    m.expansions->Add(st.stats.expansions);
    m.matches->Add(st.stats.matches);
    if (st.isect.gallop) m.gallop->Add(st.isect.gallop);
    if (st.isect.merge) m.merge->Add(st.isect.merge);
  }
  return st.stats;
}

std::vector<Match> Matcher::Collect(size_t limit) const {
  MatchOptions opts;
  opts.max_matches = limit;
  return CollectWith(opts);
}

std::vector<Match> Matcher::CollectWith(const MatchOptions& opts) const {
  std::vector<Match> out;
  FindAll(opts, [&](const Match& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

bool Matcher::Exists() const {
  MatchOptions opts;
  opts.max_matches = 1;
  bool found = false;
  FindAll(opts, [&](const Match&) {
    found = true;
    return false;
  });
  return found;
}

size_t Matcher::Count(size_t limit) const {
  MatchOptions opts;
  opts.max_matches = limit;
  size_t n = 0;
  FindAll(opts, [&](const Match&) {
    ++n;
    return true;
  });
  return n;
}

VarId Matcher::SeedVar() const {
  if (p_.NumNodes() == 0) return kNoVar;
  const auto unbound = [](VarId) { return false; };
  return PickNextVarOrdered(g_, p_, unbound);
}

std::vector<NodeId> Matcher::SeedCandidates(VarId var) const {
  MatchOptions opts;
  ScratchLease lease;
  SearchState st;
  st.opts = &opts;
  st.s = lease.get();
  st.s->Prepare(p_.NumNodes(), p_.NumEdges());
  std::vector<NodeId> cands;
  bool sorted = false;
  CandidatesFor(st, var, &cands, &sorted);
  // Same deterministic order Extend() uses. Over a GraphSnapshot this is a
  // contiguous-range copy with no sort at all.
  if (!sorted) std::sort(cands.begin(), cands.end());
  return cands;
}

bool Matcher::Verify(const Match& m) const {
  if (m.nodes.size() != p_.NumNodes() || m.edges.size() != p_.NumEdges())
    return false;
  // Injectivity + aliveness + labels.
  for (VarId v = 0; v < p_.NumNodes(); ++v) {
    NodeId n = m.nodes[v];
    if (!g_.NodeAlive(n)) return false;
    const auto& pn = p_.nodes()[v];
    if (pn.label != 0 && g_.NodeLabel(n) != pn.label) return false;
    for (VarId w = 0; w < v; ++w)
      if (m.nodes[w] == n) return false;
  }
  for (size_t i = 0; i < p_.NumEdges(); ++i) {
    EdgeId e = m.edges[i];
    if (!g_.EdgeAlive(e)) return false;
    const auto& pe = p_.edges()[i];
    EdgeView v = g_.Edge(e);
    if (v.src != m.nodes[pe.src] || v.dst != m.nodes[pe.dst]) return false;
    if (pe.label != 0 && v.label != pe.label) return false;
    for (size_t j = 0; j < i; ++j)
      if (m.edges[j] == e) return false;
  }
  for (const auto& pred : p_.predicates())
    if (EvalPredicate(g_, pred, m.nodes, &m.edges) != PredVerdict::kTrue)
      return false;
  for (const auto& nac : p_.nacs())
    if (!EvalNac(g_, nac, m.nodes)) return false;
  return true;
}

}  // namespace grepair
