#include "baseline/triple_cfd.h"

#include <algorithm>
#include <map>

#include "util/strings.h"
#include "util/timer.h"

namespace grepair {
namespace {

double Confidence(const Graph& g, EdgeId e, SymbolId conf_attr) {
  if (conf_attr == 0) return 1.0;
  SymbolId v = g.EdgeAttr(e, conf_attr);
  if (v == 0) return 1.0;
  double num;
  if (!ParseDouble(g.vocab()->ValueName(v), &num)) return 1.0;
  return num;
}

}  // namespace

Result<RepairResult> TripleCfdRepair(Graph* g, const TripleCfdOptions& opt) {
  Timer total;
  RepairResult res;
  size_t start_mark = g->JournalSize();
  Vocabulary* vocab = g->vocab().get();
  SymbolId conf = opt.confidence_attr.empty()
                      ? 0
                      : vocab->Attr(opt.confidence_attr);

  auto record_del_edge = [&](EdgeId e) {
    EdgeView v = g->Edge(e);
    AppliedFix f;
    f.rule = kBaselineRuleId;
    f.kind = ActionKind::kDelEdge;
    f.node_a = v.src;
    f.node_b = v.dst;
    f.label = v.label;
    f.journal_begin = g->JournalSize();
    Status st = g->RemoveEdge(e);
    f.journal_end = g->JournalSize();
    res.applied.push_back(f);
    return st;
  };

  // FDs over the triple view: group edges per (group node, label); keep the
  // highest-confidence tuple, delete the rest.
  auto enforce_fd = [&](const std::string& label_name, bool per_source)
      -> Status {
    SymbolId label;
    if (!vocab->LookupLabel(label_name, &label)) return Status::Ok();
    for (NodeId n : g->Nodes()) {
      IdSpan edges = per_source ? g->OutEdges(n) : g->InEdges(n);
      std::vector<EdgeId> group;
      for (EdgeId e : edges)
        if (g->EdgeLabel(e) == label) group.push_back(e);
      if (group.size() <= 1) continue;
      ++res.initial_violations;
      // Keep max confidence (ties: lowest id, i.e. the oldest tuple).
      EdgeId keep = group[0];
      double best = Confidence(*g, keep, conf);
      for (EdgeId e : group) {
        double c = Confidence(*g, e, conf);
        if (c > best || (c == best && e < keep)) {
          best = c;
          keep = e;
        }
      }
      for (EdgeId e : group) {
        if (e == keep) continue;
        GREPAIR_RETURN_IF_ERROR(record_del_edge(e));
      }
    }
    return Status::Ok();
  };

  for (const auto& l : opt.functional_edges)
    GREPAIR_RETURN_IF_ERROR(enforce_fd(l, /*per_source=*/true));
  for (const auto& l : opt.inverse_functional_edges)
    GREPAIR_RETURN_IF_ERROR(enforce_fd(l, /*per_source=*/false));

  // Key-based dedup: delete the newer duplicate ROW (the relational move;
  // a graph-aware tool would merge instead).
  for (const auto& [label_name, attr_name] : opt.dedup_keys) {
    SymbolId label;
    if (!vocab->LookupLabel(label_name, &label)) continue;
    SymbolId attr = vocab->Attr(attr_name);
    std::map<SymbolId, std::vector<NodeId>> by_key;
    for (NodeId n : g->NodesWithLabel(label)) {
      SymbolId v = g->NodeAttr(n, attr);
      if (v != 0) by_key[v].push_back(n);
    }
    for (auto& [key, nodes] : by_key) {
      if (nodes.size() <= 1) continue;
      ++res.initial_violations;
      std::sort(nodes.begin(), nodes.end());
      for (size_t i = 1; i < nodes.size(); ++i) {
        AppliedFix f;
        f.rule = kBaselineRuleId;
        f.kind = ActionKind::kDelNode;
        f.node_a = nodes[i];
        f.journal_begin = g->JournalSize();
        GREPAIR_RETURN_IF_ERROR(g->RemoveNode(nodes[i]));
        f.journal_end = g->JournalSize();
        res.applied.push_back(f);
      }
    }
  }

  res.rounds = 1;
  res.repair_cost = g->CostSince(start_mark, CostModel{});
  res.total_ms = total.ElapsedMs();
  return res;
}

TripleCfdOptions KgCfdConfig() {
  TripleCfdOptions opt;
  opt.functional_edges = {"born_in"};
  opt.inverse_functional_edges = {"capital_of"};
  opt.dedup_keys = {{"Person", "name"}};
  return opt;
}

TripleCfdOptions SocialCfdConfig() {
  TripleCfdOptions opt;
  opt.dedup_keys = {{"Person", "name"}};
  return opt;
}

TripleCfdOptions CitationCfdConfig() {
  TripleCfdOptions opt;
  opt.functional_edges = {"published_in"};
  opt.dedup_keys = {{"Paper", "title"}};
  return opt;
}

}  // namespace grepair
