#include "graph/snapshot.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

#include "obs/trace.h"

namespace grepair {

namespace {

// Rough heap footprint of an unordered_map: bucket array plus one heap node
// per element. Close enough for the capacity-planning purpose of
// MemoryBytes().
template <typename Map>
size_t HashMapBytes(const Map& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(typename Map::value_type) + 2 * sizeof(void*));
}

AttrMap AttrMapFromSnapshot(
    const std::vector<std::pair<SymbolId, SymbolId>>& snapshot) {
  AttrMap m;
  m.Reserve(snapshot.size());
  // Snapshot pairs are sorted by attr id, so each Set appends at the tail.
  for (const auto& [a, v] : snapshot) m.Set(a, v);
  return m;
}

void SortedInsert(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  assert(it == v->end() || *it != x);
  v->insert(it, x);
}

void SortedErase(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  assert(it != v->end() && *it == x);
  v->erase(it);
}

}  // namespace

GraphSnapshot::GraphSnapshot(const GraphView& g, SnapshotShard shard)
    : vocab_(g.vocab()), shard_(shard) {
  OBS_SPAN_ARG("snapshot.build", "shard", shard.index);
  const size_t nb = g.NodeIdBound();
  const size_t eb = g.EdgeIdBound();
  base_node_bound_ = nb;
  base_edge_bound_ = eb;

  // --- Node columns + label/attr partitions ----------------------------
  // Columns span the FULL id space even when sharded (routing stays O(1)
  // id arithmetic), but non-owned ids keep their defaults: the owner shard
  // is the only one ever read for them.
  node_alive_.resize(nb, 0);
  node_label_.resize(nb, 0);
  node_attrs_.resize(nb);
  adj_patched_.resize(nb, 0);
  // Ordered buckets so the flattened partitions are deterministic; node ids
  // are appended in ascending order, so every group comes out ascending.
  std::map<SymbolId, std::vector<NodeId>> label_buckets;
  std::map<uint64_t, std::vector<NodeId>> attr_buckets;
  for (NodeId n = 0; n < nb; ++n) {
    if (!shard_.OwnsNode(n)) continue;
    node_label_[n] = g.NodeLabel(n);
    node_attrs_[n] = g.NodeAttrs(n);  // tombstones keep attrs addressable
    if (!g.NodeAlive(n)) continue;
    node_alive_[n] = 1;
    ++num_nodes_;
    label_buckets[node_label_[n]].push_back(n);
    for (const auto& [a, v] : node_attrs_[n].entries())
      attr_buckets[AttrKey(a, v)].push_back(n);
  }
  label_nodes_.reserve(2 * num_nodes_);
  // Group 0: all alive nodes, ascending (mirrors Graph's label_index_[0]).
  {
    Range all;
    all.offset = 0;
    all.len = static_cast<uint32_t>(num_nodes_);
    label_nodes_.resize(num_nodes_);
    NodeId* out = label_nodes_.data();
    for (NodeId n = 0; n < nb; ++n)
      if (node_alive_[n]) *out++ = n;
    label_dir_[0] = all;
  }
  for (const auto& [label, nodes] : label_buckets) {
    if (label == 0) continue;  // unlabeled nodes are only in group 0
    Range r;
    r.offset = static_cast<uint32_t>(label_nodes_.size());
    r.len = static_cast<uint32_t>(nodes.size());
    label_nodes_.insert(label_nodes_.end(), nodes.begin(), nodes.end());
    label_dir_[label] = r;
  }
  size_t attr_total = 0;
  for (const auto& [key, nodes] : attr_buckets) attr_total += nodes.size();
  attr_nodes_.reserve(attr_total);
  for (const auto& [key, nodes] : attr_buckets) {
    Range r;
    r.offset = static_cast<uint32_t>(attr_nodes_.size());
    r.len = static_cast<uint32_t>(nodes.size());
    attr_nodes_.insert(attr_nodes_.end(), nodes.begin(), nodes.end());
    attr_dir_[key] = r;
  }

  // --- Edge columns ----------------------------------------------------
  // An edge belongs to its src's shard; non-owned edges (including their
  // tombstones) stay at defaults and are read through their owner.
  edge_alive_.resize(eb, 0);
  edge_src_.resize(eb, kInvalidNode);
  edge_dst_.resize(eb, kInvalidNode);
  edge_label_.resize(eb, 0);
  edge_attrs_.resize(eb);
  for (EdgeId e = 0; e < eb; ++e) {
    EdgeView v = g.Edge(e);
    if (!shard_.OwnsNode(v.src)) continue;
    edge_src_[e] = v.src;
    edge_dst_[e] = v.dst;
    edge_label_[e] = v.label;
    edge_attrs_[e] = g.EdgeAttrs(e);
    if (!g.EdgeAlive(e)) continue;
    edge_alive_[e] = 1;
    ++num_edges_;
    alive_edges_.push_back(e);
    ++edge_label_count_[v.label];
  }

  // --- CSR adjacency, source order preserved verbatim ------------------
  out_offset_.assign(nb + 1, 0);
  in_offset_.assign(nb + 1, 0);
  for (NodeId n = 0; n < nb; ++n) {
    // Dead nodes have empty adjacency (RemoveNode cascades first).
    out_offset_[n + 1] =
        out_offset_[n] +
        static_cast<uint32_t>(node_alive_[n] ? g.OutEdges(n).size() : 0);
    in_offset_[n + 1] =
        in_offset_[n] +
        static_cast<uint32_t>(node_alive_[n] ? g.InEdges(n).size() : 0);
  }
  out_edges_.resize(out_offset_[nb]);
  in_edges_.resize(in_offset_[nb]);
  for (NodeId n = 0; n < nb; ++n) {
    if (!node_alive_[n]) continue;
    IdSpan out = g.OutEdges(n);
    std::copy(out.begin(), out.end(), out_edges_.begin() + out_offset_[n]);
    IdSpan in = g.InEdges(n);
    std::copy(in.begin(), in.end(), in_edges_.begin() + in_offset_[n]);
  }

  // --- (src, dst, label, id)-sorted alive-edge index for HasEdge -------
  edge_search_ = alive_edges_;
  std::sort(edge_search_.begin(), edge_search_.end(),
            [this](EdgeId a, EdgeId b) { return EdgeSearchLess(a, b); });
}

// ------------------------------------------------------------------ reads

EdgeId GraphSnapshot::FindEdge(NodeId src, NodeId dst, SymbolId label) const {
  // Same scan (and therefore same "first edge") as Graph::FindEdge: walk
  // the smaller adjacency side in stored order.
  if (!NodeAlive(src) || !NodeAlive(dst)) return kInvalidEdge;
  if (OutDegree(src) <= InDegree(dst)) {
    for (EdgeId e : OutEdges(src))
      if (edge_dst_[e] == dst && (label == 0 || edge_label_[e] == label))
        return e;
  } else {
    for (EdgeId e : InEdges(dst))
      if (edge_src_[e] == src && (label == 0 || edge_label_[e] == label))
        return e;
  }
  return kInvalidEdge;
}

bool GraphSnapshot::SearchIndexContains(const std::vector<EdgeId>& index,
                                        NodeId src, NodeId dst,
                                        SymbolId label, bool base) const {
  // Lower bound of (src, dst, label, 0); every hit with that (src, dst) —
  // and that exact label when one was asked for — is a candidate. Base
  // entries can be stale after a patch (removed or relabeled), so scan the
  // matching run for the first still-valid entry; label==0 accepts the
  // whole (src, dst) run. The base array stays sorted under the BUILD-time
  // labels (BaseSearchLabel), which equal the current labels on every
  // still-valid entry; the added side is keyed by current labels.
  auto it = std::lower_bound(
      index.begin(), index.end(), std::make_tuple(src, dst, label),
      [this, base](EdgeId e, const auto& key) {
        if (edge_src_[e] != std::get<0>(key))
          return edge_src_[e] < std::get<0>(key);
        if (edge_dst_[e] != std::get<1>(key))
          return edge_dst_[e] < std::get<1>(key);
        SymbolId l = base ? BaseSearchLabel(e) : edge_label_[e];
        return l < std::get<2>(key);
      });
  for (; it != index.end(); ++it) {
    EdgeId e = *it;
    if (edge_src_[e] != src || edge_dst_[e] != dst) return false;
    SymbolId l = base ? BaseSearchLabel(e) : edge_label_[e];
    if (label != 0 && l != label) return false;
    if (base && has_patches_ &&
        (edge_alive_[e] == 0 || edge_search_dead_.count(e) != 0))
      continue;
    return true;
  }
  return false;
}

bool GraphSnapshot::EdgeIndexContains(NodeId src, NodeId dst,
                                      SymbolId label) const {
  if (SearchIndexContains(edge_search_, src, dst, label, /*base=*/true))
    return true;
  return has_patches_ &&
         SearchIndexContains(edge_search_added_, src, dst, label,
                             /*base=*/false);
}

bool GraphSnapshot::HasEdge(NodeId src, NodeId dst, SymbolId label) const {
  if (!NodeAlive(src) || !NodeAlive(dst)) return false;
  return EdgeIndexContains(src, dst, label);
}

std::vector<NodeId> GraphSnapshot::Nodes() const {
  IdSpan all = NodesWithLabelSorted(0);
  return std::vector<NodeId>(all.begin(), all.end());
}

std::vector<EdgeId> GraphSnapshot::Edges() const {
  if (!has_patches_) return alive_edges_;
  // Merge the still-alive base list with the patch-added ids (both
  // ascending and disjoint by construction).
  std::vector<EdgeId> out;
  out.reserve(num_edges_);
  auto add = alive_added_.begin();
  for (EdgeId e : alive_edges_) {
    if (edge_alive_[e] == 0) continue;
    while (add != alive_added_.end() && *add < e) out.push_back(*add++);
    out.push_back(e);
  }
  out.insert(out.end(), add, alive_added_.end());
  return out;
}

IdSpan GraphSnapshot::NodesWithLabelSorted(SymbolId label) const {
  if (has_patches_) {
    auto it = label_patch_.find(label);
    if (it != label_patch_.end())
      return {it->second.data(), it->second.size()};
  }
  auto it = label_dir_.find(label);
  if (it == label_dir_.end()) return {};
  return {label_nodes_.data() + it->second.offset, it->second.len};
}

IdSpan GraphSnapshot::NodesWithAttrSorted(SymbolId attr,
                                          SymbolId value) const {
  if (has_patches_) {
    auto it = attr_patch_.find(AttrKey(attr, value));
    if (it != attr_patch_.end())
      return {it->second.data(), it->second.size()};
  }
  auto it = attr_dir_.find(AttrKey(attr, value));
  if (it == attr_dir_.end()) return {};
  return {attr_nodes_.data() + it->second.offset, it->second.len};
}

bool GraphSnapshot::CollectNodesWithLabel(SymbolId label,
                                          std::vector<NodeId>* out) const {
  IdSpan range = NodesWithLabelSorted(label);
  out->assign(range.begin(), range.end());
  return true;  // partitions are ascending
}

bool GraphSnapshot::CollectNodesWithAttr(SymbolId attr, SymbolId value,
                                         std::vector<NodeId>* out) const {
  IdSpan range = NodesWithAttrSorted(attr, value);
  out->assign(range.begin(), range.end());
  return true;  // partitions are ascending
}

size_t GraphSnapshot::CountNodesWithLabel(SymbolId label) const {
  return NodesWithLabelSorted(label).size();
}

size_t GraphSnapshot::CountEdgesWithLabel(SymbolId label) const {
  auto it = edge_label_count_.find(label);
  return it == edge_label_count_.end() ? 0 : it->second;
}

// ------------------------------------------------------------------ patch

void GraphSnapshot::Patch(const EditEntry* records, size_t n) {
  OBS_SPAN_ARG("snapshot.patch", "shard", shard_.index);
  // A sharded snapshot receives the FULL record slice and applies only the
  // records touching its slice; PatchedEdits() counts exactly those, which
  // is what the per-shard rebuild heuristics budget against. Monolithic
  // snapshots apply (and count) everything, as before.
  for (size_t i = 0; i < n; ++i) {
    if (!AppliesTo(records[i])) continue;
    has_patches_ = true;
    ++patched_edits_;
    PatchOne(records[i]);
  }
}

bool GraphSnapshot::AppliesTo(const EditEntry& rec) const {
  switch (rec.kind) {
    case EditKind::kAddNode:
    case EditKind::kRemoveNode:
    case EditKind::kSetNodeLabel:
    case EditKind::kSetNodeAttr:
      return shard_.OwnsNode(rec.node);
    case EditKind::kAddEdge:
    case EditKind::kRemoveEdge:
      // The src shard owns the edge; the dst shard owns the in-adjacency
      // side effect. Either involvement makes the record this shard's.
      return shard_.OwnsNode(rec.src) || shard_.OwnsNode(rec.dst);
    case EditKind::kSetEdgeLabel:
    case EditKind::kSetEdgeAttr:
      // These records carry no endpoints; ownership comes from the edge's
      // own (owned-only) src column.
      return OwnsEdge(rec.edge);
  }
  return false;
}

void GraphSnapshot::PatchOne(const EditEntry& rec) {
  switch (rec.kind) {
    case EditKind::kAddNode:
      PatchAddNode(rec);
      return;
    case EditKind::kRemoveNode:
      PatchRemoveNode(rec);
      return;
    case EditKind::kAddEdge:
      PatchAddEdge(rec);
      return;
    case EditKind::kRemoveEdge:
      PatchRemoveEdge(rec);
      return;
    case EditKind::kSetNodeLabel: {
      NodeId n = rec.node;
      SymbolId old = node_label_[n];
      if (old != 0) SortedErase(&TouchLabelGroup(old), n);
      node_label_[n] = rec.new_sym;
      if (rec.new_sym != 0) SortedInsert(&TouchLabelGroup(rec.new_sym), n);
      return;
    }
    case EditKind::kSetEdgeLabel: {
      EdgeId e = rec.edge;
      // Mutating edge_label_ would re-key the base edge index in place;
      // freeze its sort keys first (one-time copy, only ever paid by
      // snapshots that see a relabel).
      SnapshotBaseEdgeLabels();
      SearchIndexInvalidate(e);  // keyed by the OLD label
      --edge_label_count_[edge_label_[e]];
      edge_label_[e] = rec.new_sym;
      ++edge_label_count_[rec.new_sym];
      SearchIndexInsert(e);  // re-enter under the new label
      return;
    }
    case EditKind::kSetNodeAttr: {
      NodeId n = rec.node;
      SymbolId old = node_attrs_[n].Get(rec.attr);
      if (old != 0) SortedErase(&TouchAttrGroup(AttrKey(rec.attr, old)), n);
      node_attrs_[n].Set(rec.attr, rec.new_sym);
      if (rec.new_sym != 0)
        SortedInsert(&TouchAttrGroup(AttrKey(rec.attr, rec.new_sym)), n);
      return;
    }
    case EditKind::kSetEdgeAttr:
      edge_attrs_[rec.edge].Set(rec.attr, rec.new_sym);
      return;
  }
}

void GraphSnapshot::PatchAddNode(const EditEntry& rec) {
  NodeId n = rec.node;
  EnsureNodeColumns(n);
  node_alive_[n] = 1;
  node_label_[n] = rec.label;
  // Fresh adds carry no attributes; a revival (the inverse of kRemoveNode)
  // restores the removal's attribute snapshot — exactly what Graph::UndoTo
  // rebuilds.
  node_attrs_[n] = AttrMapFromSnapshot(rec.attr_snapshot);
  ++num_nodes_;
  FreshAdjacency(n);  // no edges yet; revived edges follow as records
  SortedInsert(&TouchLabelGroup(0), n);
  if (rec.label != 0) SortedInsert(&TouchLabelGroup(rec.label), n);
  for (const auto& [a, v] : node_attrs_[n].entries())
    SortedInsert(&TouchAttrGroup(AttrKey(a, v)), n);
}

void GraphSnapshot::PatchRemoveNode(const EditEntry& rec) {
  NodeId n = rec.node;
  // Partitions drop the node under its CURRENT label/attrs (incident edges
  // were already removed by the preceding cascade records).
  SortedErase(&TouchLabelGroup(0), n);
  if (node_label_[n] != 0) SortedErase(&TouchLabelGroup(node_label_[n]), n);
  for (const auto& [a, v] : node_attrs_[n].entries())
    SortedErase(&TouchAttrGroup(AttrKey(a, v)), n);
  node_alive_[n] = 0;
  --num_nodes_;
  // Tombstones keep label and attrs addressable. For a true removal the
  // snapshot equals the current attrs (no-op); for the inverse of kAddNode
  // it is empty, mirroring Graph::UndoEntry's reset.
  node_attrs_[n] = AttrMapFromSnapshot(rec.attr_snapshot);
}

void GraphSnapshot::PatchAddEdge(const EditEntry& rec) {
  EdgeId e = rec.edge;
  // Split by ownership: the src shard owns the edge columns, index entries
  // and out-adjacency; the dst shard owns only the in-adjacency. The
  // monolithic shard owns both and takes both branches, reproducing the
  // pre-shard behavior exactly.
  if (shard_.OwnsNode(rec.src)) {
    EnsureEdgeColumns(e);
    edge_alive_[e] = 1;
    edge_src_[e] = rec.src;
    edge_dst_[e] = rec.dst;
    edge_label_[e] = rec.label;
    edge_attrs_[e] = AttrMapFromSnapshot(rec.attr_snapshot);
    ++num_edges_;
    ++edge_label_count_[rec.label];
    // Tail append: Graph::LinkEdge pushes back, and an undo-revived edge
    // lands at the tail the same way.
    TouchAdjacency(rec.src);
    out_patch_[rec.src].push_back(e);
    SearchIndexInsert(e);
    if (!InBaseAliveEdges(e)) SortedInsert(&alive_added_, e);
  }
  if (shard_.OwnsNode(rec.dst)) {
    TouchAdjacency(rec.dst);
    in_patch_[rec.dst].push_back(e);
  }
}

void GraphSnapshot::PatchRemoveEdge(const EditEntry& rec) {
  EdgeId e = rec.edge;
  // Endpoints come from the record, not the columns: a shard owning only
  // the dst side never populated this edge's columns.
  if (shard_.OwnsNode(rec.src)) {
    SearchIndexInvalidate(e);
    TouchAdjacency(rec.src);
    std::vector<EdgeId>& out = out_patch_[rec.src];
    out.erase(std::find(out.begin(), out.end(), e));
    edge_alive_[e] = 0;
    --num_edges_;
    --edge_label_count_[edge_label_[e]];
    // Keep the tombstone addressable; empty for the inverse of kAddEdge.
    edge_attrs_[e] = AttrMapFromSnapshot(rec.attr_snapshot);
    if (!InBaseAliveEdges(e)) SortedErase(&alive_added_, e);
  }
  if (shard_.OwnsNode(rec.dst)) {
    TouchAdjacency(rec.dst);
    std::vector<EdgeId>& in = in_patch_[rec.dst];
    in.erase(std::find(in.begin(), in.end(), e));
  }
}

void GraphSnapshot::EnsureNodeColumns(NodeId n) {
  if (n < node_alive_.size()) return;
  size_t need = static_cast<size_t>(n) + 1;
  node_alive_.resize(need, 0);
  node_label_.resize(need, 0);
  node_attrs_.resize(need);
  adj_patched_.resize(need, 0);
}

void GraphSnapshot::EnsureEdgeColumns(EdgeId e) {
  if (e < edge_alive_.size()) return;
  size_t need = static_cast<size_t>(e) + 1;
  edge_alive_.resize(need, 0);
  edge_src_.resize(need, kInvalidNode);
  edge_dst_.resize(need, kInvalidNode);
  edge_label_.resize(need, 0);
  edge_attrs_.resize(need);
}

void GraphSnapshot::TouchAdjacency(NodeId n) {
  if (adj_patched_[n]) return;
  adj_patched_[n] = 1;
  IdSpan out{out_edges_.data() + out_offset_[n],
             out_offset_[n + 1] - out_offset_[n]};
  out_patch_[n].assign(out.begin(), out.end());
  IdSpan in{in_edges_.data() + in_offset_[n],
            in_offset_[n + 1] - in_offset_[n]};
  in_patch_[n].assign(in.begin(), in.end());
}

void GraphSnapshot::FreshAdjacency(NodeId n) {
  adj_patched_[n] = 1;
  out_patch_[n].clear();
  in_patch_[n].clear();
}

std::vector<NodeId>& GraphSnapshot::TouchLabelGroup(SymbolId label) {
  auto [it, fresh] = label_patch_.try_emplace(label);
  if (fresh) {
    auto base = label_dir_.find(label);
    if (base != label_dir_.end())
      it->second.assign(label_nodes_.begin() + base->second.offset,
                        label_nodes_.begin() + base->second.offset +
                            base->second.len);
  }
  return it->second;
}

std::vector<NodeId>& GraphSnapshot::TouchAttrGroup(uint64_t key) {
  auto [it, fresh] = attr_patch_.try_emplace(key);
  if (fresh) {
    auto base = attr_dir_.find(key);
    if (base != attr_dir_.end())
      it->second.assign(attr_nodes_.begin() + base->second.offset,
                        attr_nodes_.begin() + base->second.offset +
                            base->second.len);
  }
  return it->second;
}

bool GraphSnapshot::EdgeSearchLess(EdgeId a, EdgeId b) const {
  if (edge_src_[a] != edge_src_[b]) return edge_src_[a] < edge_src_[b];
  if (edge_dst_[a] != edge_dst_[b]) return edge_dst_[a] < edge_dst_[b];
  if (edge_label_[a] != edge_label_[b])
    return edge_label_[a] < edge_label_[b];
  return a < b;
}

void GraphSnapshot::SearchIndexInsert(EdgeId e) {
  auto it = std::lower_bound(
      edge_search_added_.begin(), edge_search_added_.end(), e,
      [this](EdgeId a, EdgeId b) { return EdgeSearchLess(a, b); });
  assert(it == edge_search_added_.end() || *it != e);
  edge_search_added_.insert(it, e);
}

bool GraphSnapshot::SearchIndexEraseAdded(EdgeId e) {
  // Keyed search over the CURRENT columns (call before mutating them).
  auto it = std::lower_bound(
      edge_search_added_.begin(), edge_search_added_.end(), e,
      [this](EdgeId a, EdgeId b) { return EdgeSearchLess(a, b); });
  if (it == edge_search_added_.end() || *it != e) return false;
  edge_search_added_.erase(it);
  return true;
}

void GraphSnapshot::SearchIndexInvalidate(EdgeId e) {
  // Either the edge entered through the patch side (erase it there) or it
  // is a still-keyed base entry (tombstone it; revivals re-enter through
  // the added side, so a dead-set entry never becomes valid again).
  if (SearchIndexEraseAdded(e)) return;
  if (InBaseAliveEdges(e)) edge_search_dead_.insert(e);
}

void GraphSnapshot::SnapshotBaseEdgeLabels() {
  if (!base_edge_label_.empty() || base_edge_bound_ == 0) return;
  // No base edge was relabeled yet (this runs before the first such
  // record), so the current column still holds every build-time label.
  base_edge_label_.assign(edge_label_.begin(),
                          edge_label_.begin() + base_edge_bound_);
}

bool GraphSnapshot::InBaseAliveEdges(EdgeId e) const {
  auto it = std::lower_bound(alive_edges_.begin(), alive_edges_.end(), e);
  return it != alive_edges_.end() && *it == e;
}

// ----------------------------------------------------------------- memory

size_t GraphSnapshot::MemoryBytes() const {
  size_t bytes = node_alive_.capacity() + edge_alive_.capacity() +
                 adj_patched_.capacity() +
                 sizeof(SymbolId) * (node_label_.capacity() +
                                     edge_label_.capacity() +
                                     base_edge_label_.capacity()) +
                 sizeof(NodeId) * (edge_src_.capacity() +
                                   edge_dst_.capacity()) +
                 sizeof(uint32_t) * (out_offset_.capacity() +
                                     in_offset_.capacity()) +
                 sizeof(EdgeId) * (out_edges_.capacity() +
                                   in_edges_.capacity() +
                                   edge_search_.capacity() +
                                   alive_edges_.capacity() +
                                   edge_search_added_.capacity() +
                                   alive_added_.capacity()) +
                 sizeof(NodeId) * (label_nodes_.capacity() +
                                   attr_nodes_.capacity());
  // Attribute columns: the AttrMap objects live in the column vectors
  // (count their CAPACITY, not just the constructed size) and each map owns
  // a heap buffer of (attr, value) pairs.
  bytes += sizeof(AttrMap) * (node_attrs_.capacity() - node_attrs_.size() +
                              edge_attrs_.capacity() - edge_attrs_.size());
  for (const AttrMap& m : node_attrs_)
    bytes += sizeof(AttrMap) +
             m.entries().capacity() * sizeof(std::pair<SymbolId, SymbolId>);
  for (const AttrMap& m : edge_attrs_)
    bytes += sizeof(AttrMap) +
             m.entries().capacity() * sizeof(std::pair<SymbolId, SymbolId>);
  // Partition directories and patch overlay containers.
  bytes += HashMapBytes(label_dir_) + HashMapBytes(attr_dir_) +
           HashMapBytes(edge_label_count_) + HashMapBytes(out_patch_) +
           HashMapBytes(in_patch_) + HashMapBytes(label_patch_) +
           HashMapBytes(attr_patch_) + HashMapBytes(edge_search_dead_);
  for (const auto& [n, v] : out_patch_)
    bytes += v.capacity() * sizeof(EdgeId);
  for (const auto& [n, v] : in_patch_) bytes += v.capacity() * sizeof(EdgeId);
  for (const auto& [l, v] : label_patch_)
    bytes += v.capacity() * sizeof(NodeId);
  for (const auto& [k, v] : attr_patch_)
    bytes += v.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace grepair
