// TCP serving front-end tests (src/serve/server.h). The acceptance
// criterion of the network layer: N concurrent clients staging interleaved
// edits over real sockets leave the service in a state bit-identical to
// replaying the same per-client op blocks through a single immediate-mode
// session in commit order — plus admission control (connection cap, request
// rate limit) answering `err busy` and counting every shed in metrics.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "serve/repair_service.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/strings.h"

namespace grepair {
namespace serve {
namespace {

// A deterministic kg-domain bundle: constructing it twice (server side,
// replay side) yields identical graphs, rules and violation backlogs.
DatasetBundle MakeBundle() {
  KgOptions gopt;
  gopt.num_persons = 120;
  gopt.num_cities = 20;
  gopt.num_countries = 6;
  gopt.num_orgs = 10;
  gopt.seed = 11;
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = 17;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << strerror(errno);
  return fd;
}

void SendStr(int fd, const std::string& s) {
  size_t off = 0;
  while (off < s.size()) {
    ssize_t n = ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

// Blocking buffered line reads — keeps each client in protocol lockstep.
struct LineReader {
  int fd;
  std::string buf;
  // Returns the next line, or "" on EOF (protocol lines are never empty).
  std::string ReadLine() {
    size_t pos;
    while ((pos = buf.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buf.substr(0, pos);
    buf.erase(0, pos + 1);
    return line;
  }
  std::string ReadToEof() {
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
      buf.append(chunk, static_cast<size_t>(n));
    return buf;
  }
};

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ------------------------------------------------- multi-client identity

TEST(ServerTest, ConcurrentStagedClientsMatchSequentialReplay) {
  DatasetBundle bundle = MakeBundle();
  ServeOptions sopt;
  sopt.listen_port = 0;  // ephemeral
  RepairService service(std::move(bundle.graph), std::move(bundle.rules),
                        sopt);
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());

  // Four clients, each staging a disjoint block of edits and committing
  // whenever their turn at the mutex comes — the interleaving is real and
  // unconstrained; only commit order (read back from the batch number) is
  // used to sequence the replay.
  constexpr int kClients = 4;
  auto ops_for = [](int c) {
    std::vector<std::string> ops = {
        "add_node Org",
        StrFormat("add_edge %d %d knows", 10 + c, 20 + c),
        StrFormat("remove_node %d", 30 + c),
        StrFormat("set_node_label %d Org", 40 + c),
    };
    return ops;
  };
  std::vector<size_t> batch_of(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = Connect(server.port());
      LineReader r{fd, {}};
      r.ReadLine();  // build info
      EXPECT_EQ(r.ReadLine().rfind("serving ", 0), 0u);
      size_t k = 0;
      for (const std::string& op : ops_for(c)) {
        SendStr(fd, op + "\n");
        EXPECT_EQ(r.ReadLine(), StrFormat("staged %zu", ++k));
      }
      SendStr(fd, "commit\n");
      std::string batch = r.ReadLine();
      EXPECT_EQ(batch.rfind("batch ", 0), 0u) << batch;
      EXPECT_EQ(batch.find("op_errors"), std::string::npos) << batch;
      sscanf(batch.c_str(), "batch %zu", &batch_of[c]);
      SendStr(fd, "quit\n");
      EXPECT_EQ(r.ReadLine().rfind("bye ", 0), 0u);
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();

  // Every client committed exactly one batch, numbered 1..kClients.
  std::vector<int> order(kClients);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_GE(batch_of[c], 1u);
    ASSERT_LE(batch_of[c], static_cast<size_t>(kClients));
    order[batch_of[c] - 1] = c;
  }

  // Snapshot the served state through the protocol, then stop.
  std::string served = ::testing::TempDir() + "/grepair_srv_tcp.snap";
  {
    int fd = Connect(server.port());
    LineReader r{fd, {}};
    r.ReadLine();
    r.ReadLine();
    SendStr(fd, "snapshot " + served + "\nquit\n");
    EXPECT_EQ(r.ReadLine(), "snapshot " + served);
    ::close(fd);
  }
  server.Stop();

  // Replay the same per-client blocks through one immediate session, in
  // commit order, on an identically-constructed service.
  DatasetBundle replay_bundle = MakeBundle();
  RepairService replay(std::move(replay_bundle.graph),
                       std::move(replay_bundle.rules), ServeOptions());
  Session session(&replay, SessionMode::kImmediate);
  for (int c : order) {
    for (const std::string& op : ops_for(c)) session.HandleLine(op);
    session.HandleLine("commit");
  }
  std::string replayed = ::testing::TempDir() + "/grepair_srv_replay.snap";
  ASSERT_TRUE(replay.SaveState(replayed).ok());

  // Final graph + violation backlog, bit for bit.
  std::string a = Slurp(served), b = Slurp(replayed);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(served.c_str());
  std::remove(replayed.c_str());
}

// ------------------------------------------------------------- admission

TEST(ServerTest, OverCapConnectionsAreShedWithBusy) {
  DatasetBundle bundle = MakeBundle();
  ServeOptions sopt;
  sopt.listen_port = 0;
  sopt.max_connections = 1;
  RepairService service(std::move(bundle.graph), std::move(bundle.rules),
                        sopt);
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());

  int first = Connect(server.port());
  LineReader r1{first, {}};
  r1.ReadLine();
  EXPECT_EQ(r1.ReadLine().rfind("serving ", 0), 0u);

  // The slot is taken: the second connection is answered and closed.
  int second = Connect(server.port());
  LineReader r2{second, {}};
  EXPECT_EQ(r2.ReadLine(), "err busy max connections");
  EXPECT_EQ(r2.ReadLine(), "");  // EOF
  ::close(second);
  ::close(first);

  // The freed slot readmits — poll, since the handler releases it a beat
  // after the socket closes — and the rejection is on the metrics ledger.
  // Each shed poll attempt increments the counter too, so assert >= 1
  // rather than an exact count.
  std::string text;
  for (int attempt = 0; attempt < 200 && text.empty(); ++attempt) {
    int fd = Connect(server.port());
    LineReader r{fd, {}};
    std::string first_line = r.ReadLine();
    if (first_line.rfind("err busy", 0) == 0) {
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    r.ReadLine();  // serving line
    SendStr(fd, "metrics\nquit\n");
    text = r.ReadToEof();
    ::close(fd);
  }
  // \n-anchored so the # HELP line naming the metric cannot match first.
  size_t pos = text.find("\ngrepair_server_connections_rejected_total ");
  ASSERT_NE(pos, std::string::npos) << text;
  uint64_t rejected = std::strtoull(
      text.c_str() + pos +
          std::strlen("\ngrepair_server_connections_rejected_total "),
      nullptr, 10);
  EXPECT_GE(rejected, 1u) << text;
  server.Stop();
}

TEST(ServerTest, OverRateRequestsAreShedWithBusy) {
  DatasetBundle bundle = MakeBundle();
  ServeOptions sopt;
  sopt.listen_port = 0;
  sopt.max_requests_per_sec = 5.0;
  RepairService service(std::move(bundle.graph), std::move(bundle.rules),
                        sopt);
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());

  int fd = Connect(server.port());
  LineReader r{fd, {}};
  r.ReadLine();
  r.ReadLine();
  // A burst far beyond the bucket: at 5 req/s with burst 5, most of these
  // 40 must shed no matter how slowly the test machine drains them.
  std::string burst;
  for (int i = 0; i < 40; ++i) burst += "add_node Org\n";
  SendStr(fd, burst);
  // Let the bucket refill so metrics/quit are admitted deterministically.
  std::this_thread::sleep_for(std::chrono::milliseconds(1600));
  SendStr(fd, "metrics\nquit\n");
  std::string text = r.ReadToEof();
  ::close(fd);
  server.Stop();

  EXPECT_NE(text.find("err busy rate limit exceeded"), std::string::npos);
  // The ledger counted the sheds (exact count depends on drain speed).
  // Anchor to a line start: the family's # HELP line holds the name too.
  size_t pos = text.find("\ngrepair_server_requests_rejected_total ");
  ASSERT_NE(pos, std::string::npos) << text;
  size_t rejected = 0;
  sscanf(text.c_str() + pos, "\ngrepair_server_requests_rejected_total %zu",
         &rejected);
  EXPECT_GE(rejected, 1u);
  EXPECT_NE(text.find("bye "), std::string::npos);
}

// -------------------------------------------------------------- lifecycle

TEST(ServerTest, ShutdownVerbStopsTheListener) {
  DatasetBundle bundle = MakeBundle();
  ServeOptions sopt;
  sopt.listen_port = 0;
  RepairService service(std::move(bundle.graph), std::move(bundle.rules),
                        sopt);
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());

  int fd = Connect(server.port());
  LineReader r{fd, {}};
  r.ReadLine();
  r.ReadLine();
  SendStr(fd, "add_node Org\nshutdown\n");
  EXPECT_EQ(r.ReadLine(), "staged 1");
  EXPECT_EQ(r.ReadLine().rfind("bye ", 0), 0u);
  ::close(fd);

  server.Wait();  // returns because the verb requested the stop
  server.Stop();  // idempotent after Wait
  // Staged-but-uncommitted edits died with the session.
  EXPECT_EQ(service.PendingEdits(), 0u);
  EXPECT_EQ(service.stats().batches, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace grepair
