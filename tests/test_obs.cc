// Observability layer tests: exact counter aggregation across threads,
// histogram le-bucket semantics, trace-ring overflow (drop-oldest), Chrome
// trace-event JSON well-formedness, Prometheus text-exposition grammar, and
// the load-bearing guarantee that flipping metrics/tracing on or off never
// changes what a served workload computes (bit-identical graphs and stats).
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/repair_service.h"

namespace grepair {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsTest, CounterExactAcrossThreads) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("grepair_test_total", "concurrent adds");
  constexpr int kThreads = 8, kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add(1);
    });
  for (auto& w : workers) w.join();
  // Sharded cells lose nothing: relaxed adds into per-thread cells, summed
  // on read — the total must be exact, not approximate.
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, GetIsIdempotentPerNameAndLabels) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("grepair_x_total", "h");
  obs::Counter* b = reg.GetCounter("grepair_x_total", "h");
  EXPECT_EQ(a, b);
  obs::Counter* labeled =
      reg.GetCounter("grepair_x_total", "h", {{"path", "patch"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(reg.GetCounter("grepair_x_total", "h", {{"path", "patch"}}),
            labeled);
  EXPECT_EQ(reg.NumInstruments(), 2u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreLe) {
  obs::MetricsRegistry reg;
  obs::Histogram* h =
      reg.GetHistogram("grepair_test_ms", "le semantics", {1.0, 10.0});
  h->Observe(0.5);   // bucket 0
  h->Observe(1.0);   // bucket 0: le means v <= bound lands AT the bound
  h->Observe(1.5);   // bucket 1
  h->Observe(10.0);  // bucket 1
  h->Observe(11.0);  // +Inf bucket
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 2u);
  EXPECT_EQ(h->BucketCount(2), 1u);  // +Inf
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
}

TEST(MetricsTest, HistogramExactAcrossThreads) {
  obs::MetricsRegistry reg;
  obs::Histogram* h =
      reg.GetHistogram("grepair_conc_ms", "concurrent observes", {4.0});
  constexpr int kThreads = 8, kObs = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([h] {
      for (int i = 0; i < kObs; ++i) h->Observe(2.0);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(h->Sum(), 2.0 * kThreads * kObs);
  EXPECT_EQ(h->BucketCount(0), static_cast<uint64_t>(kThreads) * kObs);
}

TEST(MetricsTest, SanitizeNameEnforcesCharset) {
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("commit.detect-ms"),
            "commit_detect_ms");
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("9lives"), "_9lives");
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("ok_name"), "ok_name");
}

// ----------------------------------------------------------- exposition

// Splits exposition text into lines (dropping the trailing empty one).
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
      s[0] != ':')
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  return true;
}

TEST(ExpositionTest, GrammarHoldsForEveryLine) {
  obs::MetricsRegistry reg;
  reg.GetCounter("grepair_a_total", "a counter")->Add(3);
  reg.GetGauge("grepair_b", "a gauge", {{"shard", "0"}})->Set(-7);
  // Label values with every escape-worthy character.
  reg.GetGauge("grepair_b", "a gauge", {{"shard", "q\"b\\s\nnl"}})->Set(1);
  reg.GetHistogram("grepair_c_ms", "a histogram", {1.0, 10.0})->Observe(2.0);

  std::string text = reg.ExpositionText();
  for (const std::string& line : Lines(text)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      // "# HELP <name> <text>" or "# TYPE <name> <counter|gauge|histogram>"
      std::istringstream in(line);
      std::string hash, kw, name;
      in >> hash >> kw >> name;
      EXPECT_TRUE(kw == "HELP" || kw == "TYPE") << line;
      EXPECT_TRUE(ValidMetricName(name)) << line;
      if (kw == "TYPE") {
        std::string type;
        in >> type;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
      }
      continue;
    }
    // Sample line: name[{labels}] value — name before '{' or ' ' must be
    // legal, and the value must parse as a double.
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(ValidMetricName(line.substr(0, name_end))) << line;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }

  // Histogram families carry the full bucket ladder.
  EXPECT_NE(text.find("grepair_c_ms_bucket{le=\"1\"} 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("grepair_c_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("grepair_c_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("grepair_c_ms_sum 2"), std::string::npos);
  EXPECT_NE(text.find("grepair_c_ms_count 1"), std::string::npos);
  // Label escaping: quote, backslash and newline must be escaped.
  EXPECT_NE(text.find("q\\\"b\\\\s\\nnl"), std::string::npos) << text;
  // Counters advertise their type and value.
  EXPECT_NE(text.find("# TYPE grepair_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("grepair_a_total 3"), std::string::npos);
}

TEST(ExpositionTest, BuildInfoMetricRegisters) {
  obs::MetricsRegistry reg;
  obs::RegisterBuildInfoMetric(&reg);
  std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("grepair_build_info{sha=\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("} 1"), std::string::npos);
}

// ---------------------------------------------------------------- traces

TEST(TraceTest, RingOverflowDropsOldest) {
  obs::ClearTrace();
  obs::SetTraceRingCapacity(4);
  // A fresh thread gets a fresh ring at the just-set capacity (the calling
  // thread's ring may predate it).
  std::thread([] {
    for (int i = 0; i < 6; ++i)
      obs::RecordSpan("overflow", static_cast<uint64_t>(i) * 10, 5, i, "i");
  }).join();
  obs::SetTraceRingCapacity(65536);
  EXPECT_EQ(obs::TraceEventCount(), 4u);
  std::string json = obs::ChromeTraceJson();
  // Oldest two (args 0, 1) overwritten; newest four retained.
  EXPECT_EQ(json.find("{\"i\":0}"), std::string::npos) << json;
  EXPECT_EQ(json.find("{\"i\":1}"), std::string::npos) << json;
  for (int i = 2; i < 6; ++i)
    EXPECT_NE(json.find("{\"i\":" + std::to_string(i) + "}"),
              std::string::npos)
        << json;
  obs::ClearTrace();
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  obs::ClearTrace();
  obs::SetTracingEnabled(true);
  {
    OBS_SPAN("outer");
    OBS_SPAN_ARG("inner", "shard", 3);
  }
  obs::SetTracingEnabled(false);
#ifdef GREPAIR_OBS_DISABLED
  EXPECT_EQ(obs::TraceEventCount(), 0u);  // macros compiled out
#else
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  std::string json = obs::ChromeTraceJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
  // Every event carries the Chrome trace-event required keys.
  size_t events = 0;
  for (size_t pos = json.find("{\"name\""); pos != std::string::npos;
       pos = json.find("{\"name\"", pos + 1))
    ++events;
  EXPECT_EQ(events, 2u);
  for (const char* key :
       {"\"cat\":", "\"ph\":\"X\"", "\"pid\":", "\"tid\":", "\"ts\":",
        "\"dur\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"shard\":3}"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for a machine
  // format a real viewer (Perfetto) will parse.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
#endif
  obs::ClearTrace();
}

// ----------------------------------------------- zero-observable-effect

// Serves the same edit stream against the same bundle and returns the
// final graph serialization plus the stats line that matters.
struct ServedOutcome {
  std::string graph;
  size_t batches, fixes, violations, expansions;
};

ServedOutcome ServeWorkload() {
  KgOptions gopt;
  gopt.num_persons = 200;
  gopt.num_cities = 30;
  gopt.num_countries = 8;
  gopt.num_orgs = 15;
  gopt.seed = 11;
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = 17;
  auto bundle_or = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(bundle_or.ok()) << bundle_or.status().ToString();
  DatasetBundle bundle = std::move(bundle_or).value();

  ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.num_shards = 2;
  RepairService service(std::move(bundle.graph), bundle.rules, sopt);
  BatchResult r1 = service.Commit().value();  // repair the injected errors
  std::vector<NodeId> nodes = service.graph().Nodes();
  for (size_t i = 0; i + 1 < std::min<size_t>(nodes.size(), 40); i += 2) {
    EditEntry op;
    op.kind = EditKind::kAddEdge;
    op.src = nodes[i];
    op.dst = nodes[i + 1];
    op.label = service.graph().EdgeLabel(service.graph().Edges().front());
    service.ApplyEdit(op);
  }
  BatchResult r2 = service.Commit().value();  // repair the fresh asymmetries
  const ServiceStats& s = service.stats();
  return {SerializeGraph(service.graph()), s.batches, s.violations_repaired,
          s.violations_detected, r1.expansions + r2.expansions};
}

TEST(ObsOffTest, MetricsToggleNeverChangesServedResults) {
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);  // tracing on: spans must be pure observers
  ServedOutcome on = ServeWorkload();
  obs::SetTracingEnabled(false);
  obs::SetMetricsEnabled(false);
  ServedOutcome off = ServeWorkload();
  obs::SetMetricsEnabled(true);  // restore the default for other tests
  obs::ClearTrace();

  // Bit-identical graph, identical counters: observability is read-only.
  EXPECT_EQ(on.graph, off.graph);
  EXPECT_EQ(on.batches, off.batches);
  EXPECT_EQ(on.fixes, off.fixes);
  EXPECT_EQ(on.violations, off.violations);
  EXPECT_EQ(on.expansions, off.expansions);
  EXPECT_EQ(on.batches, 2u);
  EXPECT_GT(on.fixes, 0u);
}

}  // namespace
}  // namespace grepair
