// Subgraph-isomorphism search for rule patterns: VF2-style backtracking with
// label/degree candidate pruning, attribute-index joins for disconnected
// components, early predicate evaluation, and NAC checking. Matching is
// injective on node variables and on edge variables.
//
// Two execution paths share one emission contract: the interpreter re-derives
// pivot/ordering decisions per expansion, while a compiled MatchPlan
// (plan.h) replays them from precompiled steps with sorted-range candidate
// intersection. Streams are bit-identical; MatchOptions::use_plan ablates
// back to the interpreter.
#ifndef GREPAIR_MATCH_MATCHER_H_
#define GREPAIR_MATCH_MATCHER_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph_view.h"
#include "match/pattern.h"

namespace grepair {

class MatchPlan;
struct PlanStep;

/// One embedding of a pattern: nodes[i] is the image of node variable i,
/// edges[j] the image of pattern edge j.
struct Match {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  bool operator==(const Match& other) const = default;
  /// True if any element of the match equals the given node/edge.
  bool ContainsNode(NodeId n) const;
  bool ContainsEdge(EdgeId e) const;
};

/// Search controls. Anchors pre-bind variables — the backbone of both
/// "repair this violation here" checks and incremental re-matching.
struct MatchOptions {
  size_t max_matches = std::numeric_limits<size_t>::max();
  /// Pre-bind node variable -> concrete node.
  std::vector<std::pair<VarId, NodeId>> node_anchors;
  /// Pre-bind pattern edge index -> concrete edge (also binds endpoints).
  std::vector<std::pair<size_t, EdgeId>> edge_anchors;
  /// Backtracking budget; exceeded searches stop early (stats.exhausted).
  size_t max_expansions = 50'000'000;
  /// Ablation switches (benchmarked in F7/M9): when disabled, candidates
  /// fall back to the label index and correctness is preserved — only the
  /// candidate sets get larger.
  bool use_adjacency_pivot = true;  ///< derive candidates from bound neighbors
  bool use_attr_join = true;        ///< derive candidates from the attr index
  /// Execute via the compiled plan when the Matcher was handed one
  /// (bit-identical stream either way; false = interpreter ablation).
  bool use_plan = true;
};

struct MatchStats {
  size_t expansions = 0;
  size_t matches = 0;
  bool exhausted = false;  ///< true if the expansion budget was hit
};

/// Return false from the callback to stop enumeration.
using MatchCallback = std::function<bool(const Match&)>;

/// Pattern-matching engine over one frozen graph state (any GraphView:
/// the live Graph between mutations, or an immutable GraphSnapshot).
/// Stateless between calls; cheap to construct.
///
/// `plan`, when given, must be compiled for this exact Pattern object over a
/// view with the same label cardinalities (normally the same view); searches
/// whose anchor shape has a compiled body then run the planned path.
class Matcher {
 public:
  explicit Matcher(const GraphView& graph, const Pattern& pattern,
                   const MatchPlan* plan = nullptr);

  /// Enumerates matches; stops at opts.max_matches or when cb returns false.
  MatchStats FindAll(const MatchOptions& opts, const MatchCallback& cb) const;

  /// Collects up to `limit` matches.
  std::vector<Match> Collect(size_t limit = std::numeric_limits<size_t>::max())
      const;
  /// Collects with full options.
  std::vector<Match> CollectWith(const MatchOptions& opts) const;

  /// True iff at least one match exists.
  bool Exists() const;

  /// Counts matches (up to `limit`).
  size_t Count(size_t limit = std::numeric_limits<size_t>::max()) const;

  /// Re-verifies a previously found match against the current graph state:
  /// all elements alive, labels/adjacency intact, predicates and NACs hold.
  bool Verify(const Match& m) const;

  /// The node variable an unanchored FindAll binds first, or kNoVar for a
  /// node-less pattern. Deterministic for a given (graph, pattern) snapshot.
  /// This is the sharding contract used by parallel::ParallelDetector: the
  /// full enumeration order equals the concatenation, over SeedCandidates()
  /// in order, of the anchored searches {SeedVar() -> candidate}.
  VarId SeedVar() const;

  /// The candidates FindAll tries for SeedVar(), in enumeration (ascending
  /// id) order. Every match binds SeedVar() to exactly one of these.
  std::vector<NodeId> SeedCandidates(VarId var) const;

 private:
  struct SearchState;
  void Extend(SearchState* st) const;
  void ExtendPlanned(SearchState* st, size_t depth) const;
  void EnumerateEdges(SearchState* st, size_t edge_idx) const;
  bool CheckNewBinding(SearchState* st, VarId var, NodeId node) const;
  bool CheckPlannedBinding(SearchState* st, const PlanStep& step, NodeId node,
                           uint32_t covered_pivots, int covered_pred) const;
  void CandidatesFor(const SearchState& st, VarId var, std::vector<NodeId>* out,
                     bool* sorted) const;
  size_t PlannedCandidates(SearchState* st, const PlanStep& step, size_t depth,
                           const NodeId** out, uint32_t* covered_pivots,
                           int* covered_pred) const;
  VarId PickNextVar(const SearchState& st) const;

  const GraphView& g_;
  const Pattern& p_;
  const MatchPlan* plan_;
  const GraphSnapshot* snap_;  ///< non-null: zero-copy partition spans
};

}  // namespace grepair

#endif  // GREPAIR_MATCH_MATCHER_H_
