// Property tests: the optimized matcher agrees with a brute-force reference
// enumerator on random graphs and random patterns (TEST_P sweeps), including
// predicates and NACs. This is the load-bearing correctness test for
// detection (invariant 3 of DESIGN.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "match/matcher.h"
#include "match/predicate.h"
#include "util/rng.h"

namespace grepair {
namespace {

// Reference: enumerate ALL injective node bindings, then all injective edge
// bindings, checking everything directly. Exponential but exact.
class BruteForce {
 public:
  BruteForce(const Graph& g, const Pattern& p) : g_(g), p_(p) {}

  std::vector<Match> FindAll() {
    matches_.clear();
    binding_.assign(p_.NumNodes(), kInvalidNode);
    RecurseNodes(0);
    return matches_;
  }

 private:
  void RecurseNodes(VarId var) {
    if (var == p_.NumNodes()) {
      // Check predicates & NACs.
      for (const auto& pred : p_.predicates())
        if (EvalPredicate(g_, pred, binding_) != PredVerdict::kTrue) return;
      for (const auto& nac : p_.nacs())
        if (!EvalNac(g_, nac, binding_)) return;
      edge_binding_.assign(p_.NumEdges(), kInvalidEdge);
      RecurseEdges(0);
      return;
    }
    for (NodeId n : g_.Nodes()) {
      if (std::find(binding_.begin(), binding_.end(), n) != binding_.end())
        continue;
      const auto& pn = p_.nodes()[var];
      if (pn.label != 0 && g_.NodeLabel(n) != pn.label) continue;
      binding_[var] = n;
      RecurseNodes(var + 1);
      binding_[var] = kInvalidNode;
    }
  }

  void RecurseEdges(size_t idx) {
    if (idx == p_.NumEdges()) {
      Match m;
      m.nodes = binding_;
      m.edges = edge_binding_;
      matches_.push_back(m);
      return;
    }
    const auto& pe = p_.edges()[idx];
    for (EdgeId e : g_.Edges()) {
      if (std::find(edge_binding_.begin(), edge_binding_.end(), e) !=
          edge_binding_.end())
        continue;
      EdgeView v = g_.Edge(e);
      if (v.src != binding_[pe.src] || v.dst != binding_[pe.dst]) continue;
      if (pe.label != 0 && v.label != pe.label) continue;
      edge_binding_[idx] = e;
      RecurseEdges(idx + 1);
      edge_binding_[idx] = kInvalidEdge;
    }
  }

  const Graph& g_;
  const Pattern& p_;
  std::vector<NodeId> binding_;
  std::vector<EdgeId> edge_binding_;
  std::vector<Match> matches_;
};

// Canonical form for set comparison.
std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> Canon(
    const std::vector<Match>& ms) {
  std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> out;
  for (const auto& m : ms) out.insert({m.nodes, m.edges});
  return out;
}

Graph RandomGraph(VocabularyPtr vocab, uint64_t seed, size_t n_nodes,
                  size_t n_edges, size_t n_labels) {
  Graph g(vocab);
  Rng rng(seed);
  std::vector<SymbolId> nl, el;
  for (size_t i = 0; i < n_labels; ++i) {
    nl.push_back(vocab->Label("NL" + std::to_string(i)));
    el.push_back(vocab->Label("EL" + std::to_string(i)));
  }
  SymbolId attr = vocab->Attr("a");
  std::vector<SymbolId> values = {vocab->Value("v1"), vocab->Value("v2"),
                                  vocab->Value("v3")};
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n_nodes; ++i) {
    NodeId n = g.AddNode(nl[rng.PickIndex(nl)]);
    if (rng.NextBernoulli(0.6))
      g.SetNodeAttr(n, attr, values[rng.PickIndex(values)]);
    nodes.push_back(n);
  }
  for (size_t i = 0; i < n_edges; ++i) {
    NodeId a = nodes[rng.PickIndex(nodes)];
    NodeId b = nodes[rng.PickIndex(nodes)];
    g.AddEdge(a, b, el[rng.PickIndex(el)]);
  }
  return g;
}

Pattern RandomPattern(Vocabulary* vocab, uint64_t seed, size_t n_labels) {
  Rng rng(seed);
  Pattern p;
  std::vector<SymbolId> nl, el;
  for (size_t i = 0; i < n_labels; ++i) {
    SymbolId l1, l2;
    vocab->LookupLabel("NL" + std::to_string(i), &l1);
    vocab->LookupLabel("EL" + std::to_string(i), &l2);
    nl.push_back(l1);
    el.push_back(l2);
  }
  size_t n_vars = 1 + rng.NextBounded(3);  // 1..3 vars
  for (size_t i = 0; i < n_vars; ++i) {
    SymbolId label = rng.NextBernoulli(0.7) ? nl[rng.PickIndex(nl)] : 0;
    p.AddNode(label);
  }
  size_t n_edges = rng.NextBounded(n_vars + 1);  // 0..n_vars pattern edges
  for (size_t i = 0; i < n_edges; ++i) {
    VarId a = static_cast<VarId>(rng.NextBounded(n_vars));
    VarId b = static_cast<VarId>(rng.NextBounded(n_vars));
    SymbolId label = rng.NextBernoulli(0.7) ? el[rng.PickIndex(el)] : 0;
    p.AddEdge(a, b, label);
  }
  // Sometimes an attribute predicate between two vars.
  if (n_vars >= 2 && rng.NextBernoulli(0.5)) {
    SymbolId attr;
    attr = vocab->Attr("a");
    AttrPredicate pred;
    pred.lhs = AttrOperand::VarAttr(0, attr);
    pred.op = rng.NextBernoulli(0.5) ? CmpOp::kEq : CmpOp::kNe;
    pred.rhs = AttrOperand::VarAttr(1, attr);
    p.AddPredicate(pred);
  }
  // Sometimes a NAC.
  if (rng.NextBernoulli(0.5)) {
    Nac nac;
    switch (rng.NextBounded(4)) {
      case 0:
        nac.kind = NacKind::kNoEdge;
        nac.src_var = static_cast<VarId>(rng.NextBounded(n_vars));
        nac.dst_var = static_cast<VarId>(rng.NextBounded(n_vars));
        break;
      case 1:
        nac.kind = NacKind::kNoOutEdge;
        nac.src_var = static_cast<VarId>(rng.NextBounded(n_vars));
        break;
      case 2:
        nac.kind = NacKind::kNoInEdge;
        nac.dst_var = static_cast<VarId>(rng.NextBounded(n_vars));
        break;
      default:
        nac.kind = NacKind::kNoIncident;
        nac.src_var = static_cast<VarId>(rng.NextBounded(n_vars));
        break;
    }
    nac.label = rng.NextBernoulli(0.5) ? el[rng.PickIndex(el)] : 0;
    if (nac.kind == NacKind::kNoIncident) nac.label = 0;
    p.AddNac(nac);
  }
  return p;
}

class MatcherVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherVsBruteForce, IdenticalMatchSets) {
  uint64_t seed = GetParam();
  auto vocab = MakeVocabulary();
  Graph g = RandomGraph(vocab, seed, /*nodes=*/10, /*edges=*/18,
                        /*labels=*/2);
  Pattern p = RandomPattern(vocab.get(), seed * 31 + 7, 2);
  ASSERT_TRUE(p.Validate().ok());

  auto fast = Canon(Matcher(g, p).Collect());
  auto slow = Canon(BruteForce(g, p).FindAll());
  EXPECT_EQ(fast, slow) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MatcherVsBruteForce,
                         ::testing::Range<uint64_t>(0, 60));

class AnchoredMatcherProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnchoredMatcherProperty, AnchoredEqualsFilteredGlobal) {
  uint64_t seed = GetParam();
  auto vocab = MakeVocabulary();
  Graph g = RandomGraph(vocab, seed + 1000, 10, 18, 2);
  Pattern p = RandomPattern(vocab.get(), seed * 17 + 3, 2);
  ASSERT_TRUE(p.Validate().ok());

  auto all = Matcher(g, p).Collect();
  if (g.NumNodes() == 0 || p.NumNodes() == 0) return;
  Rng rng(seed);
  auto nodes = g.Nodes();
  NodeId anchor_node = nodes[rng.PickIndex(nodes)];
  VarId anchor_var = static_cast<VarId>(rng.NextBounded(p.NumNodes()));

  MatchOptions opts;
  opts.node_anchors.push_back({anchor_var, anchor_node});
  auto anchored = Canon(Matcher(g, p).CollectWith(opts));

  std::vector<Match> expect;
  for (const auto& m : all)
    if (m.nodes[anchor_var] == anchor_node) expect.push_back(m);
  EXPECT_EQ(anchored, Canon(expect)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, AnchoredMatcherProperty,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace grepair
