#include "graph/snapshot.h"

#include <algorithm>
#include <map>

namespace grepair {

GraphSnapshot::GraphSnapshot(const GraphView& g)
    : vocab_(g.vocab()), num_nodes_(g.NumNodes()), num_edges_(g.NumEdges()) {
  const size_t nb = g.NodeIdBound();
  const size_t eb = g.EdgeIdBound();

  // --- Node columns + label/attr partitions ----------------------------
  node_alive_.resize(nb, 0);
  node_label_.resize(nb, 0);
  node_attrs_.resize(nb);
  // Ordered buckets so the flattened partitions are deterministic; node ids
  // are appended in ascending order, so every group comes out ascending.
  std::map<SymbolId, std::vector<NodeId>> label_buckets;
  std::map<uint64_t, std::vector<NodeId>> attr_buckets;
  for (NodeId n = 0; n < nb; ++n) {
    node_label_[n] = g.NodeLabel(n);
    node_attrs_[n] = g.NodeAttrs(n);  // tombstones keep attrs addressable
    if (!g.NodeAlive(n)) continue;
    node_alive_[n] = 1;
    label_buckets[node_label_[n]].push_back(n);
    for (const auto& [a, v] : node_attrs_[n].entries())
      attr_buckets[AttrKey(a, v)].push_back(n);
  }
  label_nodes_.reserve(2 * num_nodes_);
  // Group 0: all alive nodes, ascending (mirrors Graph's label_index_[0]).
  {
    Range all;
    all.offset = 0;
    all.len = static_cast<uint32_t>(num_nodes_);
    label_nodes_.resize(num_nodes_);
    NodeId* out = label_nodes_.data();
    for (NodeId n = 0; n < nb; ++n)
      if (node_alive_[n]) *out++ = n;
    label_dir_[0] = all;
  }
  for (const auto& [label, nodes] : label_buckets) {
    if (label == 0) continue;  // unlabeled nodes are only in group 0
    Range r;
    r.offset = static_cast<uint32_t>(label_nodes_.size());
    r.len = static_cast<uint32_t>(nodes.size());
    label_nodes_.insert(label_nodes_.end(), nodes.begin(), nodes.end());
    label_dir_[label] = r;
  }
  size_t attr_total = 0;
  for (const auto& [key, nodes] : attr_buckets) attr_total += nodes.size();
  attr_nodes_.reserve(attr_total);
  for (const auto& [key, nodes] : attr_buckets) {
    Range r;
    r.offset = static_cast<uint32_t>(attr_nodes_.size());
    r.len = static_cast<uint32_t>(nodes.size());
    attr_nodes_.insert(attr_nodes_.end(), nodes.begin(), nodes.end());
    attr_dir_[key] = r;
  }

  // --- Edge columns ----------------------------------------------------
  edge_alive_.resize(eb, 0);
  edge_src_.resize(eb, kInvalidNode);
  edge_dst_.resize(eb, kInvalidNode);
  edge_label_.resize(eb, 0);
  edge_attrs_.resize(eb);
  alive_edges_.reserve(num_edges_);
  for (EdgeId e = 0; e < eb; ++e) {
    EdgeView v = g.Edge(e);
    edge_src_[e] = v.src;
    edge_dst_[e] = v.dst;
    edge_label_[e] = v.label;
    edge_attrs_[e] = g.EdgeAttrs(e);
    if (!g.EdgeAlive(e)) continue;
    edge_alive_[e] = 1;
    alive_edges_.push_back(e);
    ++edge_label_count_[v.label];
  }

  // --- CSR adjacency, source order preserved verbatim ------------------
  out_offset_.assign(nb + 1, 0);
  in_offset_.assign(nb + 1, 0);
  for (NodeId n = 0; n < nb; ++n) {
    // Dead nodes have empty adjacency (RemoveNode cascades first).
    out_offset_[n + 1] =
        out_offset_[n] +
        static_cast<uint32_t>(node_alive_[n] ? g.OutEdges(n).size() : 0);
    in_offset_[n + 1] =
        in_offset_[n] +
        static_cast<uint32_t>(node_alive_[n] ? g.InEdges(n).size() : 0);
  }
  out_edges_.resize(out_offset_[nb]);
  in_edges_.resize(in_offset_[nb]);
  for (NodeId n = 0; n < nb; ++n) {
    if (!node_alive_[n]) continue;
    IdSpan out = g.OutEdges(n);
    std::copy(out.begin(), out.end(), out_edges_.begin() + out_offset_[n]);
    IdSpan in = g.InEdges(n);
    std::copy(in.begin(), in.end(), in_edges_.begin() + in_offset_[n]);
  }

  // --- (src, dst, label, id)-sorted alive-edge index for HasEdge -------
  edge_search_ = alive_edges_;
  std::sort(edge_search_.begin(), edge_search_.end(),
            [this](EdgeId a, EdgeId b) {
              if (edge_src_[a] != edge_src_[b])
                return edge_src_[a] < edge_src_[b];
              if (edge_dst_[a] != edge_dst_[b])
                return edge_dst_[a] < edge_dst_[b];
              if (edge_label_[a] != edge_label_[b])
                return edge_label_[a] < edge_label_[b];
              return a < b;
            });
}

EdgeId GraphSnapshot::FindEdge(NodeId src, NodeId dst, SymbolId label) const {
  // Same scan (and therefore same "first edge") as Graph::FindEdge: walk
  // the smaller adjacency side in stored order.
  if (!NodeAlive(src) || !NodeAlive(dst)) return kInvalidEdge;
  if (OutDegree(src) <= InDegree(dst)) {
    for (EdgeId e : OutEdges(src))
      if (edge_dst_[e] == dst && (label == 0 || edge_label_[e] == label))
        return e;
  } else {
    for (EdgeId e : InEdges(dst))
      if (edge_src_[e] == src && (label == 0 || edge_label_[e] == label))
        return e;
  }
  return kInvalidEdge;
}

bool GraphSnapshot::HasEdge(NodeId src, NodeId dst, SymbolId label) const {
  if (!NodeAlive(src) || !NodeAlive(dst)) return false;
  // Lower bound of (src, dst, label, 0) in the sorted alive-edge index; a
  // hit is an edge with that exact (src, dst) — and exact label when one
  // was asked for (label==0 accepts the smallest label present).
  auto it = std::lower_bound(
      edge_search_.begin(), edge_search_.end(),
      std::make_tuple(src, dst, label), [this](EdgeId e, const auto& key) {
        if (edge_src_[e] != std::get<0>(key))
          return edge_src_[e] < std::get<0>(key);
        if (edge_dst_[e] != std::get<1>(key))
          return edge_dst_[e] < std::get<1>(key);
        return edge_label_[e] < std::get<2>(key);
      });
  if (it == edge_search_.end()) return false;
  EdgeId e = *it;
  if (edge_src_[e] != src || edge_dst_[e] != dst) return false;
  return label == 0 || edge_label_[e] == label;
}

std::vector<NodeId> GraphSnapshot::Nodes() const {
  IdSpan all = NodesWithLabelSorted(0);
  return std::vector<NodeId>(all.begin(), all.end());
}

std::vector<EdgeId> GraphSnapshot::Edges() const { return alive_edges_; }

IdSpan GraphSnapshot::NodesWithLabelSorted(SymbolId label) const {
  auto it = label_dir_.find(label);
  if (it == label_dir_.end()) return {};
  return {label_nodes_.data() + it->second.offset, it->second.len};
}

IdSpan GraphSnapshot::NodesWithAttrSorted(SymbolId attr,
                                          SymbolId value) const {
  auto it = attr_dir_.find(AttrKey(attr, value));
  if (it == attr_dir_.end()) return {};
  return {attr_nodes_.data() + it->second.offset, it->second.len};
}

bool GraphSnapshot::CollectNodesWithLabel(SymbolId label,
                                          std::vector<NodeId>* out) const {
  IdSpan range = NodesWithLabelSorted(label);
  out->assign(range.begin(), range.end());
  return true;  // partitions are ascending
}

bool GraphSnapshot::CollectNodesWithAttr(SymbolId attr, SymbolId value,
                                         std::vector<NodeId>* out) const {
  IdSpan range = NodesWithAttrSorted(attr, value);
  out->assign(range.begin(), range.end());
  return true;  // partitions are ascending
}

size_t GraphSnapshot::CountNodesWithLabel(SymbolId label) const {
  auto it = label_dir_.find(label);
  return it == label_dir_.end() ? 0 : it->second.len;
}

size_t GraphSnapshot::CountEdgesWithLabel(SymbolId label) const {
  auto it = edge_label_count_.find(label);
  return it == edge_label_count_.end() ? 0 : it->second;
}

size_t GraphSnapshot::MemoryBytes() const {
  size_t bytes = node_alive_.capacity() + edge_alive_.capacity() +
                 sizeof(SymbolId) * (node_label_.capacity() +
                                     edge_label_.capacity()) +
                 sizeof(NodeId) * (edge_src_.capacity() +
                                   edge_dst_.capacity()) +
                 sizeof(uint32_t) * (out_offset_.capacity() +
                                     in_offset_.capacity()) +
                 sizeof(EdgeId) * (out_edges_.capacity() +
                                   in_edges_.capacity() +
                                   edge_search_.capacity() +
                                   alive_edges_.capacity()) +
                 sizeof(NodeId) * (label_nodes_.capacity() +
                                   attr_nodes_.capacity());
  for (const AttrMap& m : node_attrs_)
    bytes += sizeof(AttrMap) + m.entries().capacity() * sizeof(
                                   std::pair<SymbolId, SymbolId>);
  for (const AttrMap& m : edge_attrs_)
    bytes += sizeof(AttrMap) + m.entries().capacity() * sizeof(
                                   std::pair<SymbolId, SymbolId>);
  return bytes;
}

}  // namespace grepair
