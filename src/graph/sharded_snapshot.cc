#include "graph/sharded_snapshot.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/ordered_merge.h"

namespace grepair {

namespace {

size_t ClampShards(size_t requested) {
  return std::min(std::max<size_t>(requested, 1),
                  ShardedSnapshot::kMaxShards);
}

// K-way merge of per-shard ascending id lists into one ascending list. The
// lists are disjoint (ownership partitions the id space), so the min-pick
// walk reproduces the exact monolithic ascending order.
std::vector<uint32_t> MergeAscending(std::vector<IdSpan> spans) {
  size_t total = 0;
  for (const IdSpan& s : spans) total += s.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  MergeByAscendingKey(
      spans.size(), [&](size_t s) { return spans[s].size(); },
      [&](size_t s, size_t i) { return spans[s][i]; },
      [&](size_t s, size_t i) { out.push_back(spans[s][i]); });
  return out;
}

}  // namespace

void ShardedSnapshot::RunShards(size_t n, const ParallelRunner& runner,
                                const std::function<void(size_t)>& fn) {
  if (runner && n > 1) {
    runner(n, fn);
    return;
  }
  for (size_t s = 0; s < n; ++s) fn(s);
}

ShardedSnapshot::ShardedSnapshot(const GraphView& g, size_t num_shards,
                                 const ParallelRunner& runner) {
  const size_t S = ClampShards(num_shards);
  node_bound_ = g.NodeIdBound();
  edge_bound_ = g.EdgeIdBound();
  // Owner routing for every edge id ever allocated — tombstones keep their
  // endpoints addressable, so the owner of a dead edge is well defined.
  edge_owner_.resize(edge_bound_);
  for (EdgeId e = 0; e < edge_bound_; ++e)
    edge_owner_[e] = static_cast<uint8_t>(StorageShardOfNode(g.Edge(e).src, S));

  shards_.resize(S);
  RunShards(S, runner, [&](size_t s) {
    shards_[s] = std::make_unique<GraphSnapshot>(
        g, SnapshotShard{static_cast<uint32_t>(s), static_cast<uint32_t>(S)});
  });
  RefreshCounts();
}

ShardedSnapshot::AdvanceStats ShardedSnapshot::Advance(
    const GraphView& g, const EditEntry* records, size_t n,
    double rebuild_fraction, const ParallelRunner& runner) {
  const size_t S = shards_.size();
  // Route: count, per shard, the records that touch it (the same predicate
  // GraphSnapshot::AppliesTo uses), keeping bounds and the edge-owner table
  // current as adds stream past.
  std::vector<size_t> pending(S, 0);
  for (size_t i = 0; i < n; ++i) {
    const EditEntry& rec = records[i];
    switch (rec.kind) {
      case EditKind::kAddNode:
        node_bound_ = std::max(node_bound_, static_cast<size_t>(rec.node) + 1);
        ++pending[StorageShardOfNode(rec.node, S)];
        break;
      case EditKind::kRemoveNode:
      case EditKind::kSetNodeLabel:
      case EditKind::kSetNodeAttr:
        ++pending[StorageShardOfNode(rec.node, S)];
        break;
      case EditKind::kAddEdge: {
        edge_bound_ = std::max(edge_bound_, static_cast<size_t>(rec.edge) + 1);
        if (edge_owner_.size() < edge_bound_)
          edge_owner_.resize(edge_bound_, 0);
        const size_t src_s = StorageShardOfNode(rec.src, S);
        const size_t dst_s = StorageShardOfNode(rec.dst, S);
        edge_owner_[rec.edge] = static_cast<uint8_t>(src_s);
        ++pending[src_s];
        if (dst_s != src_s) ++pending[dst_s];
        break;
      }
      case EditKind::kRemoveEdge: {
        const size_t src_s = StorageShardOfNode(rec.src, S);
        const size_t dst_s = StorageShardOfNode(rec.dst, S);
        ++pending[src_s];
        if (dst_s != src_s) ++pending[dst_s];
        break;
      }
      case EditKind::kSetEdgeLabel:
      case EditKind::kSetEdgeAttr:
        ++pending[edge_owner_[rec.edge]];
        break;
    }
  }

  // Decide per shard: clean shards are untouched, lightly dirty shards
  // patch, and a shard whose pending records plus accumulated patches
  // cross its own rebuild fraction rebuilds ALONE — the dirty-shard-only
  // rebuild that keeps a hot region from forcing an O(V+E) whole-store
  // rebuild.
  AdvanceStats out;
  std::vector<uint8_t> rebuild(S, 0);
  for (size_t s = 0; s < S; ++s) {
    if (pending[s] == 0) continue;
    const double budget =
        rebuild_fraction *
        static_cast<double>(std::max<size_t>(shards_[s]->NumEdges(), 64));
    if (static_cast<double>(pending[s] + shards_[s]->PatchedEdits()) >
        budget) {
      rebuild[s] = 1;
      ++out.shards_rebuilt;
    } else {
      ++out.shards_patched;
    }
  }

  // Apply, one task per dirty shard; every task touches exactly one
  // shard's state (shards share nothing mutable) and only reads `g` and
  // the record slice, so the fan-out is race-free.
  RunShards(S, runner, [&](size_t s) {
    if (pending[s] == 0) return;
    if (rebuild[s]) {
      OBS_SPAN_ARG("shard.advance.rebuild", "shard", s);
      shards_[s] = std::make_unique<GraphSnapshot>(
          g,
          SnapshotShard{static_cast<uint32_t>(s), static_cast<uint32_t>(S)});
    } else {
      OBS_SPAN_ARG("shard.advance.patch", "shard", s);
      shards_[s]->Patch(records, n);
    }
  });
  RefreshCounts();
  return out;
}

void ShardedSnapshot::RefreshCounts() {
  num_nodes_ = 0;
  num_edges_ = 0;
  for (const auto& s : shards_) {
    num_nodes_ += s->NumNodes();
    num_edges_ += s->NumEdges();
  }
}

size_t ShardedSnapshot::PatchedEdits() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->PatchedEdits();
  return total;
}

size_t ShardedSnapshot::MemoryBytes() const {
  size_t bytes = edge_owner_.capacity() +
                 shards_.capacity() * sizeof(shards_[0]);
  for (const auto& s : shards_) bytes += sizeof(GraphSnapshot) +
                                         s->MemoryBytes();
  return bytes;
}

// ------------------------------------------------------------------ reads

EdgeId ShardedSnapshot::FindEdge(NodeId src, NodeId dst,
                                 SymbolId label) const {
  // Same scan (and therefore same "first edge") as Graph::FindEdge: walk
  // the smaller adjacency side in stored order. Degrees are global (each
  // endpoint's own shard), and edge columns route through the owner.
  if (!NodeAlive(src) || !NodeAlive(dst)) return kInvalidEdge;
  if (OutDegree(src) <= InDegree(dst)) {
    // Out-edges of src are owned by src's shard: read columns there.
    const GraphSnapshot& s = NodeShard(src);
    for (EdgeId e : s.OutEdges(src)) {
      EdgeView v = s.Edge(e);
      if (v.dst == dst && (label == 0 || v.label == label)) return e;
    }
  } else {
    // In-edges of dst are owned by their srcs' shards: route per edge.
    for (EdgeId e : NodeShard(dst).InEdges(dst)) {
      EdgeView v = Edge(e);
      if (v.src == src && (label == 0 || v.label == label)) return e;
    }
  }
  return kInvalidEdge;
}

bool ShardedSnapshot::HasEdge(NodeId src, NodeId dst, SymbolId label) const {
  // Liveness is global (dst may live in another shard); the index entry
  // lives with the src's shard.
  if (!NodeAlive(src) || !NodeAlive(dst)) return false;
  return NodeShard(src).EdgeIndexContains(src, dst, label);
}

std::vector<NodeId> ShardedSnapshot::Nodes() const {
  std::vector<IdSpan> spans;
  spans.reserve(shards_.size());
  for (const auto& s : shards_) spans.push_back(s->NodesWithLabelSorted(0));
  return MergeAscending(std::move(spans));
}

std::vector<EdgeId> ShardedSnapshot::Edges() const {
  std::vector<std::vector<EdgeId>> lists;
  lists.reserve(shards_.size());
  std::vector<IdSpan> spans;
  spans.reserve(shards_.size());
  for (const auto& s : shards_) {
    lists.push_back(s->Edges());
    spans.push_back({lists.back().data(), lists.back().size()});
  }
  return MergeAscending(std::move(spans));
}

bool ShardedSnapshot::CollectNodesWithLabel(SymbolId label,
                                            std::vector<NodeId>* out) const {
  std::vector<IdSpan> spans;
  spans.reserve(shards_.size());
  for (const auto& s : shards_)
    spans.push_back(s->NodesWithLabelSorted(label));
  *out = MergeAscending(std::move(spans));
  return true;  // merged partitions are ascending
}

bool ShardedSnapshot::CollectNodesWithAttr(SymbolId attr, SymbolId value,
                                           std::vector<NodeId>* out) const {
  std::vector<IdSpan> spans;
  spans.reserve(shards_.size());
  for (const auto& s : shards_)
    spans.push_back(s->NodesWithAttrSorted(attr, value));
  *out = MergeAscending(std::move(spans));
  return true;  // merged partitions are ascending
}

size_t ShardedSnapshot::CountNodesWithLabel(SymbolId label) const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->CountNodesWithLabel(label);
  return total;
}

size_t ShardedSnapshot::CountEdgesWithLabel(SymbolId label) const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->CountEdgesWithLabel(label);
  return total;
}

}  // namespace grepair
