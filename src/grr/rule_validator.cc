#include "grr/rule_validator.h"

#include "util/strings.h"

namespace grepair {
namespace {

Status Bad(const Rule& r, const std::string& what) {
  return Status::InvalidArgument("rule '" + r.name() + "': " + what);
}

// Checks that an incomplete (ADD) rule's action falsifies its own WHERE
// clause, i.e. the rule cannot re-fire on the same match after repairing.
Status CheckSelfDisabling(const Rule& r) {
  const RepairAction& a = r.action();
  const Pattern& p = r.pattern();
  if (a.kind == ActionKind::kAddEdge) {
    // Need a NAC that forbids exactly the edge the action adds.
    for (const auto& nac : p.nacs()) {
      if (nac.kind == NacKind::kNoEdge && nac.src_var == a.var &&
          nac.dst_var == a.var2 && (nac.label == a.label || nac.label == 0))
        return Status::Ok();
      // A blanket out/in-edge prohibition also disables the rule.
      if (nac.kind == NacKind::kNoOutEdge && nac.src_var == a.var &&
          (nac.label == a.label || nac.label == 0))
        return Status::Ok();
      if (nac.kind == NacKind::kNoInEdge && nac.dst_var == a.var2 &&
          (nac.label == a.label || nac.label == 0))
        return Status::Ok();
    }
    return Bad(r,
               "ADD_EDGE rule is not self-disabling: WHERE must contain "
               "NOT EDGE for the edge the action adds");
  }
  if (a.kind == ActionKind::kAddNode) {
    // Need a NAC forbidding an edge with the action's label at the anchor,
    // in the direction the action creates.
    for (const auto& nac : p.nacs()) {
      if (a.new_node_is_src) {
        // action creates (new)-[l]->(anchor): anchor gains an in-edge
        if (nac.kind == NacKind::kNoInEdge && nac.dst_var == a.var &&
            (nac.label == a.label || nac.label == 0))
          return Status::Ok();
      } else {
        if (nac.kind == NacKind::kNoOutEdge && nac.src_var == a.var &&
            (nac.label == a.label || nac.label == 0))
          return Status::Ok();
      }
    }
    return Bad(r,
               "ADD_NODE rule is not self-disabling: WHERE must contain "
               "NOT EDGE (*)-[l]->(anchor) (or the mirrored form)");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateRule(const Rule& r, const Vocabulary& vocab) {
  (void)vocab;
  GREPAIR_RETURN_IF_ERROR(r.pattern().Validate());
  const RepairAction& a = r.action();
  const Pattern& p = r.pattern();
  size_t nv = p.NumNodes(), ne = p.NumEdges();

  auto check_var = [&](VarId v, const char* what) -> Status {
    if (v == kNoVar || v >= nv)
      return Bad(r, StrFormat("%s var out of range", what));
    return Status::Ok();
  };

  switch (a.kind) {
    case ActionKind::kAddEdge:
      GREPAIR_RETURN_IF_ERROR(check_var(a.var, "ADD_EDGE src"));
      GREPAIR_RETURN_IF_ERROR(check_var(a.var2, "ADD_EDGE dst"));
      if (a.label == 0) return Bad(r, "ADD_EDGE needs a label");
      break;
    case ActionKind::kAddNode:
      GREPAIR_RETURN_IF_ERROR(check_var(a.var, "ADD_NODE anchor"));
      if (a.node_label == 0) return Bad(r, "ADD_NODE needs a node label");
      if (a.label == 0) return Bad(r, "ADD_NODE needs an edge label");
      break;
    case ActionKind::kDelEdge:
      if (a.edge_idx >= ne) return Bad(r, "DEL_EDGE edge out of range");
      break;
    case ActionKind::kDelNode:
      GREPAIR_RETURN_IF_ERROR(check_var(a.var, "DEL_NODE"));
      break;
    case ActionKind::kUpdNode:
      GREPAIR_RETURN_IF_ERROR(check_var(a.var, "UPD_NODE"));
      if (a.label == 0 && a.attr == 0)
        return Bad(r, "UPD_NODE needs LABEL or SET");
      if (a.label != 0 && a.label == p.nodes()[a.var].label)
        return Bad(r, "UPD_NODE relabels to the pattern's own label "
                      "(would re-fire forever)");
      break;
    case ActionKind::kUpdEdge:
      if (a.edge_idx >= ne) return Bad(r, "UPD_EDGE edge out of range");
      if (a.label == 0) return Bad(r, "UPD_EDGE needs a label");
      if (a.label == p.edges()[a.edge_idx].label)
        return Bad(r, "UPD_EDGE relabels to the pattern's own label");
      break;
    case ActionKind::kMerge:
      GREPAIR_RETURN_IF_ERROR(check_var(a.var, "MERGE first"));
      GREPAIR_RETURN_IF_ERROR(check_var(a.var2, "MERGE second"));
      if (a.var == a.var2) return Bad(r, "MERGE of a var with itself");
      break;
  }

  // Class/action agreement.
  switch (r.error_class()) {
    case ErrorClass::kIncomplete:
      if (a.kind != ActionKind::kAddEdge && a.kind != ActionKind::kAddNode)
        return Bad(r, "incomplete rules must ADD (edge or node)");
      GREPAIR_RETURN_IF_ERROR(CheckSelfDisabling(r));
      break;
    case ErrorClass::kConflict:
      if (a.kind != ActionKind::kDelEdge && a.kind != ActionKind::kDelNode &&
          a.kind != ActionKind::kUpdNode && a.kind != ActionKind::kUpdEdge)
        return Bad(r, "conflict rules must DELETE or UPDATE");
      break;
    case ErrorClass::kRedundant:
      if (a.kind != ActionKind::kMerge && a.kind != ActionKind::kDelNode)
        return Bad(r, "redundant rules must MERGE or DEL_NODE");
      break;
  }

  // UPD_NODE SET attr=value must be guarded: the pattern must contain a
  // predicate on that attribute, otherwise the rule re-fires forever.
  if (a.kind == ActionKind::kUpdNode && a.attr != 0) {
    bool guarded = false;
    for (const auto& pred : p.predicates()) {
      if ((!pred.lhs.is_edge && pred.lhs.var == a.var &&
           pred.lhs.attr == a.attr) ||
          (!pred.rhs.is_edge && pred.rhs.var == a.var &&
           pred.rhs.attr == a.attr)) {
        guarded = true;
        break;
      }
    }
    if (!guarded)
      return Bad(r, "UPD_NODE SET needs a WHERE predicate over the same "
                    "attribute (self-disabling guard)");
  }

  return Status::Ok();
}

Status ValidateRuleSet(const RuleSet& rules, const Vocabulary& vocab) {
  for (const auto& r : rules.rules())
    GREPAIR_RETURN_IF_ERROR(ValidateRule(r, vocab));
  return Status::Ok();
}

}  // namespace grepair
