// P1 — Detection throughput vs thread count: full violation detection
// (DetectAll) on the F5 scalability knowledge graphs (5% errors) at 1, 2, 4
// and 8 worker threads. Detection is the read path the parallel subsystem
// accelerates; output is bit-identical across thread counts (asserted in
// tests/test_parallel.cc), so this bench reports pure wall-clock scaling.
// Each row is also emitted as a self-describing JSON line (see
// PrintBenchHeader for the run-level header).
#include "bench_common.h"

#include "graph/snapshot.h"
#include "util/timer.h"

using namespace grepair;
using namespace grepair::bench;

namespace {

// Median-of-3 detection wall-clock, fresh store each run. The graph never
// changes across the thread sweep, so all runs share one caller-owned
// snapshot (the DetectAll reuse seam) instead of re-snapshotting per call —
// the sweep then measures matching, not snapshot construction.
double DetectMs(const Graph& g, const RuleSet& rules, size_t threads,
                const GraphSnapshot& snap, size_t* violations) {
  double samples[3];
  for (double& s : samples) {
    ViolationStore store;
    Timer t;
    *violations = DetectAll(g, rules, &store, nullptr, threads, &snap);
    s = t.ElapsedMs();
  }
  std::sort(std::begin(samples), std::end(samples));
  return samples[1];
}

}  // namespace

int main() {
  PrintBenchHeader("P1: detection throughput vs threads (KG, 5% errors)",
                   std::string("\"snapshot_read_path\":") +
                       (kSnapshotDetectReads ? "true" : "false"));
  TableWriter t("P1: detection wall-clock vs threads (KG, 5% errors)",
                {"persons", "|V|", "|E|", "violations", "t1_ms", "t2_ms",
                 "t4_ms", "t8_ms", "speedup_4t"});

  const size_t kPersons[] = {1000, 2000, 4000, 8000};
  const size_t kThreads[] = {1, 2, 4, 8};
  for (size_t persons : kPersons) {
    KgOptions gopt;
    gopt.num_persons = persons;
    gopt.num_cities = persons / 10;
    gopt.num_countries = std::max<size_t>(10, persons / 200);
    gopt.num_orgs = persons / 15;
    InjectOptions iopt;
    iopt.rate = 0.05;
    DatasetBundle bundle = MustKgBundle(gopt, iopt);

    GraphSnapshot snap(bundle.graph);  // one build for the whole sweep
    size_t violations = 0;
    double ms[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < 4; ++i) {
      ms[i] = DetectMs(bundle.graph, bundle.rules, kThreads[i], snap,
                       &violations);
      std::printf("{\"persons\":%zu,\"nodes\":%zu,\"edges\":%zu,"
                  "\"threads\":%zu,\"violations\":%zu,\"detect_ms\":%.2f,"
                  "\"snapshot_path\":%s,\"snapshot_reused\":true}\n",
                  persons, bundle.graph.NumNodes(), bundle.graph.NumEdges(),
                  kThreads[i], violations, ms[i],
                  kSnapshotDetectReads ? "true" : "false");
    }

    t.AddRow({TableWriter::Int(int64_t(persons)),
              TableWriter::Int(int64_t(bundle.graph.NumNodes())),
              TableWriter::Int(int64_t(bundle.graph.NumEdges())),
              TableWriter::Int(int64_t(violations)),
              TableWriter::Num(ms[0], 1), TableWriter::Num(ms[1], 1),
              TableWriter::Num(ms[2], 1), TableWriter::Num(ms[3], 1),
              TableWriter::Num(ms[0] / std::max(0.01, ms[2]), 2)});
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
