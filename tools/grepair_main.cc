// The grepair command-line entry point. All logic lives in src/cli (tested
// as a library); this file only adapts argv and prints. The GREPAIR_THREADS
// environment variable supplies a default for --threads (explicit flags
// win), so deployments can set a thread budget once per host.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "obs/build_info.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // Before flag parsing: --version takes no value, which the generic
  // --key value parser would demand.
  if (!args.empty() && (args[0] == "--version" || args[0] == "version")) {
    std::puts(grepair::obs::BuildInfoLine().c_str());
    return 0;
  }
  const char* env_threads = std::getenv("GREPAIR_THREADS");
  // Only inject after a subcommand: bare `grepair` must still reach the
  // usage path with empty args.
  if (!args.empty() && env_threads != nullptr && *env_threads != '\0') {
    bool has_flag = false;
    for (const std::string& a : args) has_flag |= (a == "--threads");
    if (!has_flag) {
      args.push_back("--threads");
      args.push_back(env_threads);
    }
  }
  std::string out;
  // serve streams its protocol responses to stdout as they happen (the
  // accumulated copy in `out` is suppressed to avoid replaying them at
  // exit); every other command prints its buffered output once. In
  // `serve --listen` mode stdout only carries the listening/bye lines —
  // client traffic goes over the sockets (see tools/serve_client.py).
  bool is_serve = !args.empty() && args[0] == "serve";
  int code = grepair::RunCli(args, &out, &std::cin,
                             is_serve ? &std::cout : nullptr);
  if (!is_serve || code != 0) std::fputs(out.c_str(), stdout);
  return code;
}
