// M9 — Matching micro-benchmarks (google-benchmark): full detection cost by
// graph size and pattern, incremental delta re-matching vs full re-detection
// after a single edit — the per-edit cost the repair loop pays — and the
// graph-vs-snapshot read-path comparison (seeding + single-rule expansion).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/experiment.h"
#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "grr/standard_rules.h"
#include "match/incremental.h"
#include "match/intersect.h"
#include "match/plan.h"
#include "repair/engine.h"

namespace grepair {
namespace {

struct Workload {
  VocabularyPtr vocab;
  KgSchema schema;
  Graph graph;
  RuleSet rules;

  explicit Workload(size_t persons)
      : vocab(MakeVocabulary()),
        schema(KgSchema::Create(vocab.get())),
        graph(vocab) {
    KgOptions opt;
    opt.num_persons = persons;
    opt.num_cities = persons / 10;
    opt.num_countries = std::max<size_t>(5, persons / 200);
    opt.num_orgs = persons / 15;
    graph = GenerateKg(vocab, schema, opt);
    rules = KgRules(vocab).value();
  }
};

void BM_FullDetection(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ViolationStore store;
    benchmark::DoNotOptimize(DetectAll(w.graph, w.rules, &store));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullDetection)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_SingleRuleMatch(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  RuleId dup = w.rules.Find("dup_person").value();
  const Pattern& p = w.rules[dup].pattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matcher(w.graph, p).Count());
  }
}
BENCHMARK(BM_SingleRuleMatch)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// The repair loop's inner step: apply one edit, re-detect incrementally vs
// from scratch.
void BM_DeltaAfterEdit(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  auto persons = w.graph.NodesWithLabel(w.schema.person);
  NodeId a = *persons.begin();
  for (auto _ : state) {
    state.PauseTiming();
    size_t mark = w.graph.JournalSize();
    NodeId b = w.graph.AddNode(w.schema.person);
    auto e = w.graph.AddEdge(a, b, w.schema.knows);
    (void)e;
    std::vector<EditEntry> delta(w.graph.Journal().begin() + mark,
                                 w.graph.Journal().end());
    state.ResumeTiming();
    size_t found = 0;
    for (RuleId r = 0; r < w.rules.size(); ++r) {
      DeltaMatcher dm(w.graph, w.rules[r].pattern());
      dm.FindDelta(delta, [&](const Match&) {
        ++found;
        return true;
      });
    }
    benchmark::DoNotOptimize(found);
    state.PauseTiming();
    (void)w.graph.UndoTo(mark);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DeltaAfterEdit)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_FullAfterEdit(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  auto persons = w.graph.NodesWithLabel(w.schema.person);
  NodeId a = *persons.begin();
  for (auto _ : state) {
    state.PauseTiming();
    size_t mark = w.graph.JournalSize();
    NodeId b = w.graph.AddNode(w.schema.person);
    auto e = w.graph.AddEdge(a, b, w.schema.knows);
    (void)e;
    state.ResumeTiming();
    ViolationStore store;
    benchmark::DoNotOptimize(DetectAll(w.graph, w.rules, &store));
    state.PauseTiming();
    (void)w.graph.UndoTo(mark);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FullAfterEdit)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

// Candidate-pruning ablations: the same detection pass with the adjacency
// pivot / attribute join disabled (fall back to label scans).
void BM_MatchAblation(benchmark::State& state) {
  Workload w(2000);
  bool use_adj = state.range(0) != 0;
  bool use_join = state.range(1) != 0;
  RuleId dup = w.rules.Find("dup_person").value();
  RuleId cap = w.rules.Find("one_capital_per_country").value();
  for (auto _ : state) {
    MatchOptions opts;
    opts.use_adjacency_pivot = use_adj;
    opts.use_attr_join = use_join;
    size_t n = 0;
    for (RuleId r : {dup, cap}) {
      Matcher(w.graph, w.rules[r].pattern()).FindAll(opts, [&](const Match&) {
        ++n;
        return true;
      });
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MatchAblation)
    ->Args({1, 1})   // full system
    ->Args({0, 1})   // no adjacency pivot
    ->Args({1, 0})   // no attribute join
    ->Args({0, 0})   // label scans only
    ->Unit(benchmark::kMillisecond);

// --- Graph vs GraphSnapshot read paths ------------------------------------
// Seeding is the contiguous-range-vs-hash-index comparison the snapshot
// refactor targets: SeedCandidates over the live Graph copies an
// unordered_set and sorts; over a snapshot it memcpys a pre-sorted label
// partition. Both produce identical candidate lists (tests/test_snapshot.cc).

void BM_SeedCandidatesGraph(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  RuleId dup = w.rules.Find("dup_person").value();
  Matcher m(w.graph, w.rules[dup].pattern());
  VarId seed = m.SeedVar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SeedCandidates(seed));
  }
}
BENCHMARK(BM_SeedCandidatesGraph)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_SeedCandidatesSnapshot(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  GraphSnapshot snap(w.graph);
  RuleId dup = w.rules.Find("dup_person").value();
  Matcher m(snap, w.rules[dup].pattern());
  VarId seed = m.SeedVar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SeedCandidates(seed));
  }
}
BENCHMARK(BM_SeedCandidatesSnapshot)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

// Full single-rule expansion over both backends (identical search trees;
// only the storage layout differs).
void BM_SingleRuleMatchSnapshot(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  GraphSnapshot snap(w.graph);
  RuleId dup = w.rules.Find("dup_person").value();
  const Pattern& p = w.rules[dup].pattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matcher(snap, p).Count());
  }
}
BENCHMARK(BM_SingleRuleMatchSnapshot)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// What a per-pass snapshot costs to build — the price DetectAll pays once
// before fanning out.
void BM_SnapshotBuild(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GraphSnapshot snap(w.graph);
    benchmark::DoNotOptimize(snap.NumEdges());
  }
}
BENCHMARK(BM_SnapshotBuild)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// The incremental alternative the serving path uses: advance a cached
// snapshot by a 16-edit delta-log slice. Compare against BM_SnapshotBuild
// at the same scale — the gap is the O(delta)-vs-O(V+E) asymmetry of
// RepairService::Commit. Each iteration patches the edit batch in (timed),
// then the undo's inverse records (untimed) to return the snapshot to the
// synced baseline state.
void BM_SnapshotPatch(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  w.graph.EnableDeltaLog();
  auto persons = w.graph.NodesWithLabel(w.schema.person);
  NodeId a = *persons.begin();
  GraphSnapshot snap(w.graph);
  uint64_t watermark = w.graph.DeltaLogEnd();
  constexpr int kEditsPerBatch = 16;
  for (auto _ : state) {
    state.PauseTiming();
    size_t mark = w.graph.JournalSize();
    for (int i = 0; i < kEditsPerBatch / 2; ++i) {
      NodeId b = w.graph.AddNode(w.schema.person);
      (void)w.graph.AddEdge(a, b, w.schema.knows);
    }
    auto [records, count] = w.graph.DeltaLogSince(watermark);
    state.ResumeTiming();
    snap.Patch(records, count);
    state.PauseTiming();
    watermark = w.graph.DeltaLogEnd();
    (void)w.graph.UndoTo(mark);
    auto [undo_records, undo_count] = w.graph.DeltaLogSince(watermark);
    snap.Patch(undo_records, undo_count);
    watermark = w.graph.DeltaLogEnd();
    w.graph.TrimDeltaLog(watermark);
    state.ResumeTiming();
  }
  state.counters["edits_per_patch"] = kEditsPerBatch;
}
BENCHMARK(BM_SnapshotPatch)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

// Shard-partitioned store: what the S per-shard column sets cost to build
// (compare BM_SnapshotBuild — the work is split S ways, so the sequential
// sum is comparable; a pool builds the shards concurrently).
void BM_ShardedSnapshotBuild(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  const size_t shards = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    ShardedSnapshot ss(w.graph, shards);
    benchmark::DoNotOptimize(ss.NumEdges());
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedSnapshotBuild)
    ->Args({4000, 2})->Args({4000, 4})->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);

// The sharded store's localized-edit hot path: a 16-edit batch confined to
// ONE shard's nodes, advanced with a zero rebuild fraction so the dirty
// shard is rebuilt ALONE (~1/S of BM_SnapshotBuild at the same scale) —
// the rebuild economics that keep a hot region from forcing whole-store
// work.
void BM_ShardedDirtyShardRebuild(benchmark::State& state) {
  Workload w(4000);
  const size_t shards = static_cast<size_t>(state.range(0));
  w.graph.EnableDeltaLog();
  ShardedSnapshot ss(w.graph, shards);
  uint64_t watermark = w.graph.DeltaLogEnd();
  std::vector<NodeId> local;
  for (NodeId n : w.graph.Nodes())
    if (StorageShardOfNode(n, shards) == 0) local.push_back(n);
  SymbolId attr = w.vocab->Attr("bench_note");
  SymbolId v0 = w.vocab->Value("v0"), v1 = w.vocab->Value("v1");
  bool flip = false;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolId value = flip ? v0 : v1;  // parity flip: always a real change
    flip = !flip;
    for (size_t i = 0; i < 16 && i < local.size(); ++i)
      (void)w.graph.SetNodeAttr(local[i], attr, value);
    auto [records, count] = w.graph.DeltaLogSince(watermark);
    state.ResumeTiming();
    ShardedSnapshot::AdvanceStats st =
        ss.Advance(w.graph, records, count, /*rebuild_fraction=*/0.0);
    state.PauseTiming();
    if (st.shards_rebuilt != 1) std::abort();  // sanity: one dirty shard
    watermark = w.graph.DeltaLogEnd();
    w.graph.TrimDeltaLog(watermark);
    state.ResumeTiming();
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedDirtyShardRebuild)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Seeding over the sharded store: the k-way merge of per-shard candidate
// partitions vs the monolithic contiguous-range copy
// (BM_SeedCandidatesSnapshot) — the read-side price of sharding.
void BM_SeedCandidatesSharded(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  ShardedSnapshot ss(w.graph, static_cast<size_t>(state.range(1)));
  RuleId dup = w.rules.Find("dup_person").value();
  Matcher m(ss, w.rules[dup].pattern());
  VarId seed = m.SeedVar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SeedCandidates(seed));
  }
}
BENCHMARK(BM_SeedCandidatesSharded)
    ->Args({4000, 4})->Args({4000, 8})
    ->Unit(benchmark::kMicrosecond);

// Full detection with the caller-provided snapshot reused across calls —
// what eval loops and thread sweeps over an unchanged graph now do instead
// of re-snapshotting per pass.
void BM_FullDetectionReusedSnapshot(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  GraphSnapshot snap(w.graph);
  for (auto _ : state) {
    ViolationStore store;
    benchmark::DoNotOptimize(
        DetectAll(w.graph, w.rules, &store, nullptr, 1, &snap));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullDetectionReusedSnapshot)->Arg(500)->Arg(1000)->Arg(2000)
    ->Arg(4000)->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_GraphMutation(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId l = vocab->Label("N"), e = vocab->Label("e");
  NodeId a = g.AddNode(l), b = g.AddNode(l);
  for (auto _ : state) {
    EdgeId id = g.AddEdge(a, b, e).value();
    (void)g.RemoveEdge(id);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_GraphMutation);

void BM_UndoJournal(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId l = vocab->Label("N"), e = vocab->Label("e");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 100; ++i) nodes.push_back(g.AddNode(l));
  for (auto _ : state) {
    size_t mark = g.JournalSize();
    for (int i = 0; i + 1 < 100; ++i) g.AddEdge(nodes[i], nodes[i + 1], e);
    (void)g.UndoTo(mark);
  }
}
BENCHMARK(BM_UndoJournal)->Unit(benchmark::kMicrosecond);

// --- Compiled match plans --------------------------------------------------

// One-time compilation cost of a full rule set's plans — what a detection
// pass pays before matching (and what PlanCache amortizes across commits).
void BM_PlanCompile(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  GraphSnapshot snap(w.graph);
  std::vector<const Pattern*> patterns;
  for (RuleId r = 0; r < w.rules.size(); ++r)
    patterns.push_back(&w.rules[r].pattern());
  for (auto _ : state) {
    std::vector<MatchPlan> plans = CompilePlans(patterns, snap);
    benchmark::DoNotOptimize(plans.data());
  }
}
BENCHMARK(BM_PlanCompile)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

// The intersection kernels on the skew the galloping path targets: a small
// candidate set against a large adjacency partition (ratio >= kGallopRatio
// gallops, the balanced shape merges).
void BM_IntersectGalloping(benchmark::State& state) {
  const size_t large_n = 100000;
  const size_t small_n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> large, small;
  large.reserve(large_n);
  for (uint32_t i = 0; i < large_n; ++i) large.push_back(2 * i);
  small.reserve(small_n);
  for (uint32_t i = 0; i < small_n; ++i)
    small.push_back(static_cast<uint32_t>(i * (2 * large_n / small_n)));
  std::vector<uint32_t> out;
  for (auto _ : state) {
    IntersectSorted(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectGalloping)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

// The headline ablation: full rule-set detection over a frozen snapshot,
// interpreted (Arg 0) vs through compiled plans (Arg 1). Plans are
// compiled OUTSIDE the timed region — the serving path caches them across
// commits. Streams are bit-identical (tests/test_match_plan.cc); only the
// candidate pipeline differs.
void BM_PlannedVsInterpreted(benchmark::State& state) {
  Workload w(4000);
  GraphSnapshot snap(w.graph);
  const bool planned = state.range(0) != 0;
  std::vector<const Pattern*> patterns;
  for (RuleId r = 0; r < w.rules.size(); ++r)
    patterns.push_back(&w.rules[r].pattern());
  std::vector<MatchPlan> plans = CompilePlans(patterns, snap);
  for (auto _ : state) {
    size_t n = 0;
    for (RuleId r = 0; r < w.rules.size(); ++r) {
      MatchOptions opts;
      opts.use_plan = planned;
      Matcher m(snap, w.rules[r].pattern(), planned ? &plans[r] : nullptr);
      m.FindAll(opts, [&](const Match&) {
        ++n;
        return true;
      });
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PlannedVsInterpreted)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace grepair

// Custom main so the run opens with the same self-describing JSON header
// the other benches emit (google-benchmark's own output follows).
int main(int argc, char** argv) {
  grepair::bench::PrintBenchHeader(
      "M9: matching micro-benchmarks (graph vs snapshot)",
      std::string("\"snapshot_read_path\":") +
          (grepair::kSnapshotDetectReads ? "true" : "false"));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
