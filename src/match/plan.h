// Compiled match plans: the pattern-interpretation work Matcher used to
// redo per expansion — pivot selection, predicate scanning, variable
// ordering — done ONCE per (pattern, graph state) and replayed by a typed
// step list. A MatchPlan carries one PlanBody per anchor shape the system
// searches with (the unanchored pass, every single-var anchor, every
// edge-endpoint anchor pair); each body fixes the variable order and, per
// step, the candidate source (adjacency pivots to intersect, attribute
// joins to probe, or a label scan) plus the predicate checks that become
// decidable at that step.
//
// Determinism contract (the invariant every parallel layer builds on): a
// planned search emits the EXACT match stream of the interpreted search.
// Two facts make that hold by construction:
//   1. the variable order is computed by the same ordering function the
//      interpreter uses (PickNextVarOrdered below — Matcher::PickNextVar
//      delegates to it), and the order depends only on the pattern, the
//      bound-variable SET and graph label cardinalities, so it is static
//      per (pattern, view, anchor shape);
//   2. candidate lists on both paths are ascending and duplicate-free, and
//      a candidate is accepted purely by per-binding checks (label,
//      injectivity, adjacency, decidable predicates) — so SHRINKING a
//      candidate set (intersection, tighter partitions) can never change
//      the accepted sequence, only the work spent rejecting.
// Expansion counts also match exactly (one expansion per accepted binding
// plus the root), so budget truncation and the parallel detectors'
// sequential-rerun gate fire identically. MatchOptions::use_plan is the
// ablation switch back to the interpreter.
//
// Plans are compiled against a FROZEN view (a snapshot or a graph that is
// not mutating). The cascade repair path mutates the graph between
// searches and therefore stays on the interpreter (DESIGN.md "Match
// planning").
#ifndef GREPAIR_MATCH_PLAN_H_
#define GREPAIR_MATCH_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "match/pattern.h"
#include "match/predicate.h"

namespace grepair {

/// The one variable-ordering policy, shared verbatim by the interpreter
/// (Matcher::PickNextVar) and the plan compiler so their orders cannot
/// drift: prefer vars adjacent to the bound set, then vars reachable
/// through an attr-join with a bound var or constant, then the rarest
/// label; first var wins ties. `is_bound(v)` reports membership in the
/// bound set — the ordering reads nothing else from the search state.
template <typename BoundFn>
VarId PickNextVarOrdered(const GraphView& g, const Pattern& p,
                         const BoundFn& is_bound) {
  VarId best = kNoVar;
  bool best_adjacent = false;
  bool best_attr_join = false;
  size_t best_freq = SIZE_MAX;
  for (VarId v = 0; v < p.NumNodes(); ++v) {
    if (is_bound(v)) continue;
    bool adjacent = false;
    for (const auto& pe : p.edges()) {
      if ((pe.src == v && pe.dst != v && is_bound(pe.dst)) ||
          (pe.dst == v && pe.src != v && is_bound(pe.src))) {
        adjacent = true;
        break;
      }
    }
    bool attr_join = false;
    if (!adjacent) {
      for (const auto& pred : p.predicates()) {
        if (pred.op != CmpOp::kEq) continue;
        if (PredicateUsesEdges(pred)) continue;
        if (pred.lhs.var == v &&
            (pred.rhs.var == kNoVar || is_bound(pred.rhs.var))) {
          attr_join = true;
          break;
        }
        if (pred.rhs.var == v &&
            (pred.lhs.var == kNoVar || is_bound(pred.lhs.var))) {
          attr_join = true;
          break;
        }
      }
    }
    size_t freq = g.CountNodesWithLabel(p.nodes()[v].label);
    if (p.nodes()[v].label == 0) freq = g.NumNodes();
    // Rank: adjacency > attr-join > rarity.
    bool better;
    if (adjacent != best_adjacent) {
      better = adjacent;
    } else if (!adjacent && attr_join != best_attr_join) {
      better = attr_join;
    } else {
      better = freq < best_freq;
    }
    if (best == kNoVar || better) {
      best = v;
      best_adjacent = adjacent;
      best_attr_join = attr_join;
      best_freq = freq;
    }
  }
  return best;
}

/// One bound-adjacent pattern edge of a step's variable: candidates come
/// from the bound endpoint's adjacency list (OutEdges when it is the src,
/// InEdges when it is the dst).
struct PlanPivot {
  uint32_t pattern_edge = 0;  ///< index into Pattern::edges()
  VarId bound_var = kNoVar;   ///< the endpoint bound before this step
  bool forward = false;       ///< bound is src: gather OutEdges, take dst
  SymbolId edge_label = 0;    ///< edge label filter (0 = any)
};

/// One usable EQ attr-join source for a step, in predicate order (the
/// interpreter takes the first whose value resolves non-absent).
struct PlanAttrJoin {
  SymbolId attr = 0;        ///< the step var's attribute
  VarId other_var = kNoVar; ///< kNoVar: constant join
  SymbolId other_attr = 0;  ///< bound var's attribute (other_var != kNoVar)
  SymbolId constant = 0;    ///< interned constant (other_var == kNoVar)
  /// Index (into Pattern::predicates()) of the EQ predicate this join came
  /// from. A candidate drawn from the join's attr index satisfies that
  /// predicate by construction, so the per-binding check skips it.
  uint32_t pred_index = 0;
};

/// One search step: bind `var` from the typed candidate source, then run
/// the per-binding checks. Compiled per (pattern, anchor shape).
struct PlanStep {
  enum class Source : uint8_t { kAdjacency, kAttrJoin, kLabelScan };

  VarId var = kNoVar;
  SymbolId label = 0;  ///< node label filter (0 = any)
  Source source = Source::kLabelScan;
  /// ALL bound-adjacent pattern edges (non-empty iff source == kAdjacency):
  /// the runtime gathers the smallest pivot's neighbor list and intersects
  /// the affordable others; pivots left out of the intersection are checked
  /// per candidate, exactly like the interpreter's adjacency loop.
  std::vector<PlanPivot> pivots;
  /// Self-loop pattern edges (src == dst == var), checked per candidate.
  std::vector<uint32_t> self_loops;
  /// Attr-join candidate sources, first resolvable wins (source ==
  /// kAttrJoin; may be non-empty on adjacency steps too, unused there).
  std::vector<PlanAttrJoin> attr_joins;
  /// Indices into Pattern::predicates() that become fully decidable when
  /// `var` binds (node-only predicates whose other operand, if any, is
  /// bound by an earlier step or the anchor) — hoisted to this step so no
  /// later step rescans them. NAC checks are NOT hoisted: the interpreter
  /// runs them only at the full binding, and moving them would change
  /// expansion counts under budget truncation.
  std::vector<uint32_t> preds;
};

/// The step list for one anchor shape. `anchor_mask` bit v set = node var v
/// is pre-bound before the search starts.
struct PlanBody {
  uint32_t anchor_mask = 0;
  std::vector<PlanStep> steps;  ///< one per unbound var, in search order
};

/// A compiled plan for one pattern over one frozen view. Immutable after
/// Compile; safe to share read-only across pool workers.
class MatchPlan {
 public:
  MatchPlan() = default;

  /// Compiles bodies for every anchor shape the system searches with: the
  /// empty mask (full detection seeding), each single-var mask (node
  /// anchors, per-seed sharding), and each pattern edge's endpoint mask
  /// (edge anchors). Patterns with more than 32 node vars get an unusable
  /// plan (BodyFor always null) and fall back to the interpreter.
  static MatchPlan Compile(const Pattern& pattern, const GraphView& g);

  /// The compiled body for an anchor shape, or nullptr when no body was
  /// compiled for that mask (the caller falls back to the interpreter).
  const PlanBody* BodyFor(uint32_t anchor_mask) const;

  /// The pattern this plan was compiled for (identity comparison — a plan
  /// must never run against a different Pattern object).
  const Pattern* pattern() const { return pattern_; }

  bool usable() const { return usable_; }

  /// True when recompiling against `g` would produce the same variable
  /// orders — the cache's correctness check: orders are all that determine
  /// the emission stream, so matching orders mean the cached plan is
  /// bit-identical to a fresh compile.
  bool OrdersMatch(const GraphView& g) const;

  /// Sum of label cardinalities the ordering read at compile time — the
  /// cheap drift signal PlanCache thresholds before re-deriving orders.
  uint64_t CardinalitySignature() const { return signature_; }
  static uint64_t CardinalitySignatureFor(const Pattern& p,
                                          const GraphView& g);

  /// Human-readable dump (the `explain_plan` CLI subcommand).
  std::string Explain(const Vocabulary& vocab) const;

 private:
  const Pattern* pattern_ = nullptr;
  bool usable_ = false;
  uint64_t signature_ = 0;
  std::vector<PlanBody> bodies_;  ///< sorted by anchor_mask
};

/// Per-thread reusable search workspace: bindings, edge dedup, and
/// per-depth candidate buffers, so the planned hot loop allocates nothing
/// after warm-up. Leased via ScratchLease — a thread-local freelist keeps
/// one scratch per concurrent search on the thread (re-entrant callbacks
/// that start nested searches lease their own).
struct MatchScratch {
  std::vector<NodeId> binding;       // var -> node (kInvalidNode = unbound)
  std::vector<EdgeId> edge_binding;  // pattern edge -> concrete edge
  std::vector<NodeId> used_nodes;    // injectivity scratch (interpreter)
  std::vector<EdgeId> used_edges;    // injective edge enumeration scratch
  struct DepthBufs {
    std::vector<uint32_t> cand;    // the step's candidate list
    std::vector<uint32_t> gather;  // pivot adjacency gather
    std::vector<uint32_t> tmp;     // intersection ping-pong
  };
  std::vector<DepthBufs> depth;

  /// Resets bindings for a pattern and pre-sizes the depth buffers so no
  /// mid-search resize invalidates a live reference.
  void Prepare(size_t num_vars, size_t num_edges) {
    binding.assign(num_vars, kInvalidNode);
    edge_binding.assign(num_edges, kInvalidEdge);
    used_nodes.clear();
    used_edges.clear();
    if (depth.size() < num_vars + 1) depth.resize(num_vars + 1);
  }
};

/// RAII lease of a thread-local MatchScratch (freelist-pooled: acquire
/// pops, destruction pushes back). Move-only.
class ScratchLease {
 public:
  ScratchLease();
  ~ScratchLease();
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  MatchScratch* get() const { return s_.get(); }
  MatchScratch* operator->() const { return s_.get(); }

 private:
  std::unique_ptr<MatchScratch> s_;
};

/// Compiles one plan per rule pattern for a detection pass over a frozen
/// view. Index-aligned with the pattern list.
std::vector<MatchPlan> CompilePlans(
    const std::vector<const Pattern*>& patterns, const GraphView& g);

/// Per-rule plan cache for the serving commit path, keyed on (rule index,
/// snapshot generation). Revalidation policy: a generation bump with label
/// cardinalities within `recompile_shift_fraction` of the compiled ones
/// re-derives only the variable orders and keeps the step metadata when
/// they match; a larger shift — or any order drift — recompiles. Either
/// way the plan handed out is bit-identical to a fresh compile against the
/// current view. Single-writer (the commit thread); not thread-safe.
class PlanCache {
 public:
  explicit PlanCache(double recompile_shift_fraction = 0.25)
      : shift_fraction_(recompile_shift_fraction) {}

  /// The plan for rule `rule_index` against `g` at `generation`. Never
  /// null; the result stays valid until the next Get for the same index or
  /// Clear().
  const MatchPlan* Get(size_t rule_index, const Pattern& pattern,
                       const GraphView& g, uint64_t generation);

  /// Drops every entry (the backing store was replaced, e.g. restore).
  void Clear();

  struct CacheStats {
    uint64_t hits = 0;           ///< same generation, plan reused as-is
    uint64_t revalidations = 0;  ///< new generation, orders verified, kept
    uint64_t recompiles = 0;     ///< compiled (first use or drift)
  };
  const CacheStats& cache_stats() const { return stats_; }

 private:
  struct Entry {
    MatchPlan plan;
    uint64_t generation = 0;
    bool valid = false;
  };
  double shift_fraction_;
  // unique_ptr slots: growing the vector for a new rule index must not
  // move the MatchPlan objects other slots' callers already hold pointers
  // to (Get for rule 0 stays valid while Get(1) grows the table).
  std::vector<std::unique_ptr<Entry>> entries_;
  CacheStats stats_;
};

/// Thread-safe plan cache for the published read path: one immutable plan
/// vector (index-aligned with the rule list) per PUBLISHED generation,
/// shared across concurrent readers. Unlike PlanCache there is no
/// revalidation — a published generation's view is frozen, so its plans
/// are compiled exactly once and reused verbatim; old generations age out
/// (small LRU) as publication advances past them. Compilation runs outside
/// the lock; when two readers race on a fresh generation the first insert
/// wins and the loser's compile is discarded (both are bit-identical by
/// the determinism contract, so either is correct).
class SharedPlanCache {
 public:
  explicit SharedPlanCache(size_t max_generations = 4)
      : max_generations_(max_generations) {}

  /// Plans for `generation`'s frozen view `g`, compiling on first use.
  /// The returned vector is immutable and outlives cache eviction for as
  /// long as the caller holds the shared_ptr.
  std::shared_ptr<const std::vector<MatchPlan>> Get(
      uint64_t generation, const std::vector<const Pattern*>& patterns,
      const GraphView& g);

  /// Drops every entry (restore replaced the store lineage).
  void Clear();

 private:
  size_t max_generations_;
  mutable std::mutex mu_;
  struct Entry {
    uint64_t generation = 0;
    std::shared_ptr<const std::vector<MatchPlan>> plans;
  };
  std::vector<Entry> entries_;  ///< insertion order, oldest first
};

}  // namespace grepair

#endif  // GREPAIR_MATCH_PLAN_H_
