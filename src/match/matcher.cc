#include "match/matcher.h"

#include <algorithm>
#include <unordered_set>

#include "match/predicate.h"
#include "obs/metrics.h"

namespace grepair {

namespace {

// Process-wide matcher instruments. The hot loops count into plain
// SearchState locals; one flush of sharded-cell adds per FindAll keeps the
// per-expansion cost at zero (DESIGN.md "Observability").
struct MatchMetrics {
  obs::Counter* seeds;
  obs::Counter* candidates;
  obs::Counter* expansions;
  obs::Counter* matches;
};

MatchMetrics& Metrics() {
  static MatchMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return MatchMetrics{
        reg.GetCounter("grepair_match_seeds_total",
                       "Root-level seed candidates tried across searches."),
        reg.GetCounter("grepair_match_candidates_total",
                       "Candidate nodes probed at every search depth."),
        reg.GetCounter("grepair_match_expansions_total",
                       "Backtracking search-tree expansions."),
        reg.GetCounter("grepair_match_matches_total",
                       "Embeddings found and delivered to callbacks.")};
  }();
  return m;
}

}  // namespace

bool Match::ContainsNode(NodeId n) const {
  return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
}

bool Match::ContainsEdge(EdgeId e) const {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

Matcher::Matcher(const GraphView& graph, const Pattern& pattern)
    : g_(graph), p_(pattern) {}

struct Matcher::SearchState {
  const MatchOptions* opts;
  const MatchCallback* cb;
  MatchStats stats;
  bool stop = false;

  std::vector<NodeId> binding;        // var -> node (kInvalidNode = unbound)
  std::vector<bool> used_nodes_big;   // unused; kept for potential bitmap
  std::unordered_set<NodeId> used;    // injectivity over nodes
  size_t bound_count = 0;

  std::vector<EdgeId> edge_binding;   // pattern edge -> concrete edge
  std::unordered_set<EdgeId> used_edges;

  // Local observability tallies, flushed to the registry once per FindAll.
  size_t root_depth = 0;       // bound_count after anchors = the seed level
  size_t obs_seeds = 0;        // candidates tried at the seed level
  size_t obs_candidates = 0;   // candidates generated at every level
};

// Checks label, injectivity, adjacency to all bound neighbors, and every
// predicate that becomes fully bound with this assignment.
bool Matcher::CheckNewBinding(SearchState* st, VarId var, NodeId node) const {
  if (!g_.NodeAlive(node)) return false;
  const PatternNode& pn = p_.nodes()[var];
  if (pn.label != 0 && g_.NodeLabel(node) != pn.label) return false;
  if (st->used.count(node)) return false;

  // Adjacency: every pattern edge between var and an already-bound var must
  // have at least one concrete counterpart.
  for (const auto& pe : p_.edges()) {
    if (pe.src == var && st->binding[pe.dst] != kInvalidNode) {
      if (!g_.HasEdge(node, st->binding[pe.dst], pe.label)) return false;
    } else if (pe.dst == var && st->binding[pe.src] != kInvalidNode) {
      if (!g_.HasEdge(st->binding[pe.src], node, pe.label)) return false;
    } else if (pe.src == var && pe.dst == var) {
      if (!g_.HasEdge(node, node, pe.label)) return false;
    }
  }

  // Predicates that just became decidable. (Edge-attribute predicates stay
  // kUnknown here — they are settled during edge enumeration.)
  st->binding[var] = node;
  bool ok = true;
  for (const auto& pred : p_.predicates()) {
    bool involves = (!pred.lhs.is_edge && pred.lhs.var == var) ||
                    (!pred.rhs.is_edge && pred.rhs.var == var);
    if (!involves) continue;
    if (EvalPredicate(g_, pred, st->binding) == PredVerdict::kFalse) {
      ok = false;
      break;
    }
  }
  st->binding[var] = kInvalidNode;
  return ok;
}

// Candidate nodes for `var`, from the most selective available source:
// 1) adjacency to a bound var, 2) attr-index join via an EQ predicate with
// a bound var or constant, 3) label index.
std::vector<NodeId> Matcher::CandidatesFor(const SearchState& st,
                                           VarId var, bool* sorted) const {
  std::vector<NodeId> out;
  *sorted = false;
  // 1) adjacency pivot: choose the bound-adjacent pattern edge whose bound
  //    endpoint has the smallest relevant degree.
  int best_edge = -1;
  bool best_forward = false;  // true: bound is src, candidates from OutEdges
  size_t best_deg = SIZE_MAX;
  for (size_t i = 0; st.opts->use_adjacency_pivot && i < p_.edges().size();
       ++i) {
    const auto& pe = p_.edges()[i];
    if (pe.dst == var && pe.src != var &&
        st.binding[pe.src] != kInvalidNode) {
      size_t deg = g_.OutDegree(st.binding[pe.src]);
      if (deg < best_deg) {
        best_deg = deg;
        best_edge = static_cast<int>(i);
        best_forward = true;
      }
    }
    if (pe.src == var && pe.dst != var &&
        st.binding[pe.dst] != kInvalidNode) {
      size_t deg = g_.InDegree(st.binding[pe.dst]);
      if (deg < best_deg) {
        best_deg = deg;
        best_edge = static_cast<int>(i);
        best_forward = false;
      }
    }
  }
  if (best_edge >= 0) {
    const auto& pe = p_.edges()[best_edge];
    std::unordered_set<NodeId> seen;
    if (best_forward) {
      NodeId b = st.binding[pe.src];
      for (EdgeId e : g_.OutEdges(b)) {
        if (pe.label != 0 && g_.EdgeLabel(e) != pe.label) continue;
        NodeId cand = g_.Edge(e).dst;
        if (seen.insert(cand).second) out.push_back(cand);
      }
    } else {
      NodeId b = st.binding[pe.dst];
      for (EdgeId e : g_.InEdges(b)) {
        if (pe.label != 0 && g_.EdgeLabel(e) != pe.label) continue;
        NodeId cand = g_.Edge(e).src;
        if (seen.insert(cand).second) out.push_back(cand);
      }
    }
    return out;
  }

  // 2) attribute join: EQ predicate var.attr = bound.attr / constant.
  for (const auto& pred : p_.predicates()) {
    if (!st.opts->use_attr_join) break;
    if (pred.op != CmpOp::kEq) continue;
    if (PredicateUsesEdges(pred)) continue;
    const AttrOperand* self = nullptr;
    const AttrOperand* other = nullptr;
    if (pred.lhs.var == var) {
      self = &pred.lhs;
      other = &pred.rhs;
    } else if (pred.rhs.var == var) {
      self = &pred.rhs;
      other = &pred.lhs;
    } else {
      continue;
    }
    SymbolId value = 0;
    if (other->var == kNoVar) {
      value = other->constant;
    } else if (st.binding[other->var] != kInvalidNode) {
      value = g_.NodeAttr(st.binding[other->var], other->attr);
    } else {
      continue;
    }
    if (value == 0) continue;  // absent attr: EQ can't hold anyway
    *sorted = g_.CollectNodesWithAttr(self->attr, value, &out);
    return out;
  }

  // 3) label index.
  *sorted = g_.CollectNodesWithLabel(p_.nodes()[var].label, &out);
  return out;
}

// Next unbound var: prefer ones adjacent to the bound set; tie-break by the
// graph-level frequency of the var's label (rarest first).
VarId Matcher::PickNextVar(const SearchState& st) const {
  VarId best = kNoVar;
  bool best_adjacent = false;
  bool best_attr_join = false;
  size_t best_freq = SIZE_MAX;
  for (VarId v = 0; v < p_.NumNodes(); ++v) {
    if (st.binding[v] != kInvalidNode) continue;
    bool adjacent = false;
    for (const auto& pe : p_.edges()) {
      if ((pe.src == v && pe.dst != v && st.binding[pe.dst] != kInvalidNode) ||
          (pe.dst == v && pe.src != v && st.binding[pe.src] != kInvalidNode)) {
        adjacent = true;
        break;
      }
    }
    bool attr_join = false;
    if (!adjacent) {
      for (const auto& pred : p_.predicates()) {
        if (pred.op != CmpOp::kEq) continue;
        if (PredicateUsesEdges(pred)) continue;
        if (pred.lhs.var == v &&
            (pred.rhs.var == kNoVar ||
             st.binding[pred.rhs.var] != kInvalidNode)) {
          attr_join = true;
          break;
        }
        if (pred.rhs.var == v &&
            (pred.lhs.var == kNoVar ||
             st.binding[pred.lhs.var] != kInvalidNode)) {
          attr_join = true;
          break;
        }
      }
    }
    size_t freq = g_.CountNodesWithLabel(p_.nodes()[v].label);
    if (p_.nodes()[v].label == 0) freq = g_.NumNodes();
    // Rank: adjacency > attr-join > rarity.
    bool better;
    if (adjacent != best_adjacent) {
      better = adjacent;
    } else if (!adjacent && attr_join != best_attr_join) {
      better = attr_join;
    } else {
      better = freq < best_freq;
    }
    if (best == kNoVar || better) {
      best = v;
      best_adjacent = adjacent;
      best_attr_join = attr_join;
      best_freq = freq;
    }
  }
  return best;
}

// All node vars bound: enumerate injective concrete-edge assignments for the
// pattern edges, then run NACs and emit.
void Matcher::EnumerateEdges(SearchState* st, size_t edge_idx) const {
  if (st->stop) return;
  if (edge_idx == p_.NumEdges()) {
    // NACs (node-var based) — checked once per node binding; doing it here
    // (inside edge enumeration) would re-check identically, so callers
    // arrange to call with edge_idx==0 only after NACs pass.
    // Edge-attribute predicates become decidable only now.
    for (const auto& pred : p_.predicates()) {
      if (!PredicateUsesEdges(pred)) continue;
      if (EvalPredicate(g_, pred, st->binding, &st->edge_binding) !=
          PredVerdict::kTrue)
        return;
    }
    ++st->stats.matches;
    Match m;
    m.nodes = st->binding;
    m.edges = st->edge_binding;
    if (!(*st->cb)(m) || st->stats.matches >= st->opts->max_matches)
      st->stop = true;
    return;
  }
  const auto& pe = p_.edges()[edge_idx];
  // Honor anchors.
  for (const auto& [idx, eid] : st->opts->edge_anchors) {
    if (idx == edge_idx) {
      EdgeView v = g_.Edge(eid);
      if (g_.EdgeAlive(eid) && v.src == st->binding[pe.src] &&
          v.dst == st->binding[pe.dst] &&
          (pe.label == 0 || v.label == pe.label) &&
          !st->used_edges.count(eid)) {
        st->edge_binding[edge_idx] = eid;
        st->used_edges.insert(eid);
        EnumerateEdges(st, edge_idx + 1);
        st->used_edges.erase(eid);
        st->edge_binding[edge_idx] = kInvalidEdge;
      }
      return;
    }
  }
  NodeId s = st->binding[pe.src], d = st->binding[pe.dst];
  for (EdgeId e : g_.OutEdges(s)) {
    EdgeView v = g_.Edge(e);
    if (v.dst != d) continue;
    if (pe.label != 0 && v.label != pe.label) continue;
    if (st->used_edges.count(e)) continue;
    st->edge_binding[edge_idx] = e;
    st->used_edges.insert(e);
    EnumerateEdges(st, edge_idx + 1);
    st->used_edges.erase(e);
    st->edge_binding[edge_idx] = kInvalidEdge;
    if (st->stop) return;
  }
}

void Matcher::Extend(SearchState* st) const {
  if (st->stop) return;
  if (++st->stats.expansions > st->opts->max_expansions) {
    st->stats.exhausted = true;
    st->stop = true;
    return;
  }
  if (st->bound_count == p_.NumNodes()) {
    // NACs first (cheap, node-level), then concrete edge enumeration.
    for (const auto& nac : p_.nacs())
      if (!EvalNac(g_, nac, st->binding)) return;
    EnumerateEdges(st, 0);
    return;
  }
  VarId var = PickNextVar(*st);
  bool sorted = false;
  std::vector<NodeId> cands = CandidatesFor(*st, var, &sorted);
  // Deterministic (ascending) order helps tests and reproducibility; a
  // snapshot's label/attr partitions arrive pre-sorted.
  if (!sorted) std::sort(cands.begin(), cands.end());
  st->obs_candidates += cands.size();
  if (st->bound_count == st->root_depth) st->obs_seeds += cands.size();
  for (NodeId cand : cands) {
    if (!CheckNewBinding(st, var, cand)) continue;
    st->binding[var] = cand;
    st->used.insert(cand);
    ++st->bound_count;
    Extend(st);
    --st->bound_count;
    st->used.erase(cand);
    st->binding[var] = kInvalidNode;
    if (st->stop) return;
  }
}

MatchStats Matcher::FindAll(const MatchOptions& opts,
                            const MatchCallback& cb) const {
  SearchState st;
  st.opts = &opts;
  st.cb = &cb;
  st.binding.assign(p_.NumNodes(), kInvalidNode);
  st.edge_binding.assign(p_.NumEdges(), kInvalidEdge);

  // Apply edge anchors (bind endpoints too).
  for (const auto& [idx, eid] : opts.edge_anchors) {
    if (idx >= p_.NumEdges() || !g_.EdgeAlive(eid)) return st.stats;
    const auto& pe = p_.edges()[idx];
    EdgeView v = g_.Edge(eid);
    if (pe.label != 0 && v.label != pe.label) return st.stats;
    // Bind src endpoint.
    if (st.binding[pe.src] == kInvalidNode) {
      if (!CheckNewBinding(&st, pe.src, v.src)) return st.stats;
      st.binding[pe.src] = v.src;
      st.used.insert(v.src);
      ++st.bound_count;
    } else if (st.binding[pe.src] != v.src) {
      return st.stats;
    }
    // Bind dst endpoint (self-loop pattern edges share the var).
    if (st.binding[pe.dst] == kInvalidNode) {
      if (!CheckNewBinding(&st, pe.dst, v.dst)) return st.stats;
      st.binding[pe.dst] = v.dst;
      st.used.insert(v.dst);
      ++st.bound_count;
    } else if (st.binding[pe.dst] != v.dst) {
      return st.stats;
    }
  }
  // Apply node anchors.
  for (const auto& [var, node] : opts.node_anchors) {
    if (var >= p_.NumNodes()) return st.stats;
    if (st.binding[var] != kInvalidNode) {
      if (st.binding[var] != node) return st.stats;
      continue;
    }
    if (!CheckNewBinding(&st, var, node)) return st.stats;
    st.binding[var] = node;
    st.used.insert(node);
    ++st.bound_count;
  }

  st.root_depth = st.bound_count;
  Extend(&st);

  if (obs::MetricsEnabled()) {
    MatchMetrics& m = Metrics();
    m.seeds->Add(st.obs_seeds);
    m.candidates->Add(st.obs_candidates);
    m.expansions->Add(st.stats.expansions);
    m.matches->Add(st.stats.matches);
  }
  return st.stats;
}

std::vector<Match> Matcher::Collect(size_t limit) const {
  MatchOptions opts;
  opts.max_matches = limit;
  return CollectWith(opts);
}

std::vector<Match> Matcher::CollectWith(const MatchOptions& opts) const {
  std::vector<Match> out;
  FindAll(opts, [&](const Match& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

bool Matcher::Exists() const {
  MatchOptions opts;
  opts.max_matches = 1;
  bool found = false;
  FindAll(opts, [&](const Match&) {
    found = true;
    return false;
  });
  return found;
}

size_t Matcher::Count(size_t limit) const {
  MatchOptions opts;
  opts.max_matches = limit;
  size_t n = 0;
  FindAll(opts, [&](const Match&) {
    ++n;
    return true;
  });
  return n;
}

VarId Matcher::SeedVar() const {
  if (p_.NumNodes() == 0) return kNoVar;
  MatchOptions opts;
  SearchState st;
  st.opts = &opts;
  st.binding.assign(p_.NumNodes(), kInvalidNode);
  return PickNextVar(st);
}

std::vector<NodeId> Matcher::SeedCandidates(VarId var) const {
  MatchOptions opts;
  SearchState st;
  st.opts = &opts;
  st.binding.assign(p_.NumNodes(), kInvalidNode);
  bool sorted = false;
  std::vector<NodeId> cands = CandidatesFor(st, var, &sorted);
  // Same deterministic order Extend() uses. Over a GraphSnapshot this is a
  // contiguous-range copy with no sort at all.
  if (!sorted) std::sort(cands.begin(), cands.end());
  return cands;
}

bool Matcher::Verify(const Match& m) const {
  if (m.nodes.size() != p_.NumNodes() || m.edges.size() != p_.NumEdges())
    return false;
  // Injectivity + aliveness + labels.
  std::unordered_set<NodeId> seen;
  for (VarId v = 0; v < p_.NumNodes(); ++v) {
    NodeId n = m.nodes[v];
    if (!g_.NodeAlive(n)) return false;
    const auto& pn = p_.nodes()[v];
    if (pn.label != 0 && g_.NodeLabel(n) != pn.label) return false;
    if (!seen.insert(n).second) return false;
  }
  std::unordered_set<EdgeId> eseen;
  for (size_t i = 0; i < p_.NumEdges(); ++i) {
    EdgeId e = m.edges[i];
    if (!g_.EdgeAlive(e)) return false;
    const auto& pe = p_.edges()[i];
    EdgeView v = g_.Edge(e);
    if (v.src != m.nodes[pe.src] || v.dst != m.nodes[pe.dst]) return false;
    if (pe.label != 0 && v.label != pe.label) return false;
    if (!eseen.insert(e).second) return false;
  }
  for (const auto& pred : p_.predicates())
    if (EvalPredicate(g_, pred, m.nodes, &m.edges) != PredVerdict::kTrue)
      return false;
  for (const auto& nac : p_.nacs())
    if (!EvalNac(g_, nac, m.nodes)) return false;
  return true;
}

}  // namespace grepair
