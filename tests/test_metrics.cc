// Metrics tests: fact matching per kind, precision/recall arithmetic,
// consequential-fix exclusion.
#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace grepair {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    person_ = vocab_->Label("Person");
    city_ = vocab_->Label("City");
    knows_ = vocab_->Label("knows");
  }

  AppliedFix Fix(ActionKind kind, NodeId a, NodeId b = kInvalidNode,
                 SymbolId label = 0) {
    AppliedFix f;
    f.rule = 0;
    f.kind = kind;
    f.node_a = a;
    f.node_b = b;
    f.label = label;
    return f;
  }

  InjectedError Err(ExpectedFact fact) {
    return {ErrorClass::kConflict, "r", fact};
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId person_, city_, knows_;
};

TEST_F(MetricsTest, PerfectRepairScoresOne) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kEdgeAdded;
  fact.a = 1;
  fact.b = 2;
  fact.label = knows_;
  truth.errors.push_back(Err(fact));

  std::vector<AppliedFix> applied = {
      Fix(ActionKind::kAddEdge, 1, 2, knows_)};
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST_F(MetricsTest, WrongEdgeDirectionIsNotAMatch) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kEdgeAdded;
  fact.a = 1;
  fact.b = 2;
  fact.label = knows_;
  truth.errors.push_back(Err(fact));
  std::vector<AppliedFix> applied = {
      Fix(ActionKind::kAddEdge, 2, 1, knows_)};  // reversed
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST_F(MetricsTest, RelabelRealizesEdgeAddedFact) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kEdgeAdded;
  fact.a = 3;
  fact.b = 4;
  fact.label = knows_;
  truth.errors.push_back(Err(fact));
  std::vector<AppliedFix> applied = {
      Fix(ActionKind::kUpdEdge, 3, 4, knows_)};
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST_F(MetricsTest, MergeMatchesUnordered) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kNodesMerged;
  fact.a = 9;  // injector may record (orig, dup) in either order
  fact.b = 2;
  truth.errors.push_back(Err(fact));
  std::vector<AppliedFix> applied = {Fix(ActionKind::kMerge, 2, 9)};
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST_F(MetricsTest, AttrSetFactMatching) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kAttrSet;
  fact.a = 5;
  fact.attr = vocab_->Attr("flag");
  fact.value = vocab_->Value("yes");
  truth.errors.push_back(Err(fact));
  AppliedFix f = Fix(ActionKind::kUpdNode, 5);
  f.attr = fact.attr;
  f.value = fact.value;
  QualityMetrics m = EvaluateRepair(g_, {f}, truth, 100);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST_F(MetricsTest, NodeAddedFactChecksNewNodeLabel) {
  NodeId anchor = g_.AddNode(vocab_->Label("Country"));
  NodeId nu = g_.AddNode(city_);
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kNodeAddedWithEdge;
  fact.a = anchor;
  fact.label = city_;  // new node must be a City
  fact.edge_label = vocab_->Label("capital_of");
  truth.errors.push_back(Err(fact));

  AppliedFix f = Fix(ActionKind::kAddNode, anchor);
  f.label = fact.edge_label;
  f.new_node = nu;
  QualityMetrics m = EvaluateRepair(g_, {f}, truth, /*bound=*/2);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);

  // Wrong label on the created node: no match.
  g_.SetNodeLabel(nu, person_);
  QualityMetrics m2 = EvaluateRepair(g_, {f}, truth, 2);
  EXPECT_DOUBLE_EQ(m2.recall, 0.0);
}

TEST_F(MetricsTest, FalsePositiveLowersPrecisionOnly) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kEdgeRemoved;
  fact.a = 1;
  fact.b = 2;
  fact.label = knows_;
  truth.errors.push_back(Err(fact));
  std::vector<AppliedFix> applied = {
      Fix(ActionKind::kDelEdge, 1, 2, knows_),
      Fix(ActionKind::kDelEdge, 7, 8, knows_),  // spurious
  };
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST_F(MetricsTest, ConsequentialFixesExcludedFromPrecision) {
  InjectReport truth;
  ExpectedFact fact;
  fact.kind = FactKind::kEdgeRemoved;
  fact.a = 1;
  fact.b = 2;
  fact.label = knows_;
  truth.errors.push_back(Err(fact));
  std::vector<AppliedFix> applied = {
      Fix(ActionKind::kDelEdge, 1, 2, knows_),
      // Touches node 50 >= bound 10: cascade on a repair-created node.
      Fix(ActionKind::kAddEdge, 50, 1, knows_),
  };
  QualityMetrics m = EvaluateRepair(g_, applied, truth, /*bound=*/10);
  EXPECT_EQ(m.consequential_fixes, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST_F(MetricsTest, NoErrorsNoFixesIsPerfect) {
  InjectReport truth;
  QualityMetrics m = EvaluateRepair(g_, {}, truth, 100);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST_F(MetricsTest, MissedFactLowersRecall) {
  InjectReport truth;
  ExpectedFact f1;
  f1.kind = FactKind::kNodeDeleted;
  f1.a = 4;
  ExpectedFact f2;
  f2.kind = FactKind::kNodeDeleted;
  f2.a = 5;
  truth.errors.push_back(Err(f1));
  truth.errors.push_back(Err(f2));
  std::vector<AppliedFix> applied = {Fix(ActionKind::kDelNode, 4)};
  QualityMetrics m = EvaluateRepair(g_, applied, truth, 100);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

}  // namespace
}  // namespace grepair
