// Epoch-published snapshot tests (src/serve/publisher.h): the read side of
// the serving subsystem. Pins the four load-bearing properties:
//
//   1. Bit-identity: the `detect` read verb over the published generation
//      reproduces offline `grepair detect` against the same committed
//      batch byte for byte, swept over shards {1,2,4,8} x threads
//      {1,2,4,8} (and through the real CLI file round trip).
//   2. Prefix property: under a concurrent write storm every reader
//      observes EXACTLY the state of some committed batch boundary —
//      detect counts and backlog pages match a sequential replay at that
//      batch, and the observed batches are monotone per reader. This is
//      the test the TSan CI job runs for interleaving coverage.
//   3. Lifetime: a pinned generation survives arbitrarily many later
//      publications untouched (RCU abandonment), and is released only
//      when the last lease drops.
//   4. Isolation: read verbs complete while the service/commit mutex is
//      HELD by another thread (they never acquire it), and restore
//      republishes atomically — a pinned reader never observes a
//      half-restored store.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "grr/rule_parser.h"
#include "repair/engine.h"
#include "serve/repair_service.h"
#include "serve/session.h"
#include "util/rng.h"
#include "util/strings.h"

namespace grepair {
namespace {

// A kg bundle, corrupted (has violations) or fully repaired first.
DatasetBundle KgBundle(bool repaired, uint64_t seed = 3) {
  KgOptions gopt;
  gopt.num_persons = 250;
  gopt.num_cities = 30;
  gopt.num_countries = 8;
  gopt.num_orgs = 15;
  gopt.seed = seed;
  InjectOptions iopt;
  iopt.rate = 0.05;
  iopt.seed = seed + 5;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  DatasetBundle bundle = std::move(b).value();
  if (repaired) {
    auto res = RepairEngine().Run(&bundle.graph, bundle.rules);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.value().remaining_violations, 0u);
  }
  return bundle;
}

// Random domain-agnostic edits against g; returns the journal slice (the
// op list a RepairService replays). Same scheme as tests/test_serve.cc.
std::vector<EditEntry> MutateRandom(Graph* g, Rng* rng, size_t n) {
  size_t mark = g->JournalSize();
  std::vector<NodeId> nodes = g->Nodes();
  std::vector<SymbolId> nlabels, elabels;
  for (NodeId node : nodes) nlabels.push_back(g->NodeLabel(node));
  for (EdgeId e : g->Edges()) elabels.push_back(g->EdgeLabel(e));
  for (size_t k = 0; k < n; ++k) {
    switch (rng->NextBounded(4)) {
      case 0: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        NodeId b = nodes[rng->PickIndex(nodes)];
        if (g->NodeAlive(a) && g->NodeAlive(b) && a != b)
          g->AddEdge(a, b, elabels[rng->PickIndex(elabels)]);
        break;
      }
      case 1: {
        NodeId a = nodes[rng->PickIndex(nodes)];
        if (g->NodeAlive(a))
          g->SetNodeLabel(a, nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      case 2: {
        g->AddNode(nlabels[rng->PickIndex(nlabels)]);
        break;
      }
      default: {
        std::vector<EdgeId> cur = g->Edges();
        if (!cur.empty())
          g->SetEdgeLabel(cur[rng->PickIndex(cur)],
                          elabels[rng->PickIndex(elabels)]);
        break;
      }
    }
  }
  return std::vector<EditEntry>(g->Journal().begin() + mark,
                                g->Journal().end());
}

// Exactly what `grepair detect` prints for this graph + rules (the text
// the published detect verb promises to reproduce).
std::string OfflineDetectReport(const GraphView& g, const RuleSet& rules) {
  ViolationStore store;
  DetectAll(g, rules, &store);
  std::map<std::string, size_t> per_rule;
  for (const Violation& v : store.Snapshot()) per_rule[rules[v.rule].name()]++;
  std::string out = StrFormat("%zu violations\n", store.Size());
  for (const auto& [name, c] : per_rule)
    out += StrFormat("  %-32s %zu\n", name.c_str(), c);
  return out;
}

bool SameDetect(const PublishedDetect& a, const PublishedDetect& b) {
  return a.violations == b.violations && a.per_rule == b.per_rule;
}

bool SameViolations(const PublishedViolations& a,
                    const PublishedViolations& b) {
  if (a.total != b.total || a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    const auto& x = a.rows[i];
    const auto& y = b.rows[i];
    if (x.rule != y.rule || x.cost != y.cost || x.nodes != y.nodes ||
        x.edges != y.edges)
      return false;
  }
  return true;
}

// ------------------------------------------- bit-identity, shards x threads

// The detect verb over the published generation must reproduce the offline
// report byte for byte at EVERY committed batch boundary, for every
// shards x threads combination — the determinism half of the tentpole.
class PublishBitIdentity
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PublishBitIdentity, DetectMatchesOfflineAtEveryBoundary) {
  const size_t shards = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  DatasetBundle bundle = KgBundle(/*repaired=*/false);

  ServeOptions sopt;
  sopt.num_threads = threads;
  sopt.num_shards = shards;
  sopt.shard_min_anchors = 1;  // force fan-out even for small deltas
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
  serve::Session session(&service, serve::SessionMode::kImmediate);

  Rng rng(1000 * shards + threads);
  for (size_t batch = 0; batch < 3; ++batch) {
    // Published state at a boundary == the live graph at that boundary.
    std::string expected = OfflineDetectReport(service.graph(), service.rules());
    std::string got = session.HandleLine("detect");
    EXPECT_EQ(got + "\n", expected)
        << "shards " << shards << " threads " << threads << " batch " << batch;

    // A rule-filtered detect returns exactly that rule's line count.
    auto all = service.DetectPublished("");
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    if (!all.value().per_rule.empty()) {
      const auto& [name, count] = all.value().per_rule.front();
      auto one = service.DetectPublished(name);
      ASSERT_TRUE(one.ok()) << one.status().ToString();
      EXPECT_EQ(one.value().violations, count);
      EXPECT_EQ(one.value().per_rule.size(), 1u);
    }
    EXPECT_FALSE(service.DetectPublished("no_such_rule").ok());

    Graph scratch = service.graph().Clone();
    std::vector<EditEntry> ops = MutateRandom(&scratch, &rng, 6);
    auto res = service.ApplyBatch(ops);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(ShardsThreads, PublishBitIdentity,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                                            ::testing::Values(1u, 2u, 4u,
                                                              8u)),
                         [](const auto& info) {
                           return "s" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_t" +
                                  std::to_string(std::get<1>(info.param));
                         });

// Through the real CLI file round trip: `grepair detect` on the same
// graph/rules files the service was loaded from prints the same report the
// detect verb answers at batch 0 (the construction publication).
TEST(PublishCliTest, DetectVerbMatchesOfflineCli) {
  std::string graph = ::testing::TempDir() + "/grepair_pub_g.tsv";
  std::string rules = ::testing::TempDir() + "/grepair_pub_r.grr";
  std::string out;
  ASSERT_EQ(RunCli({"gen", "kg", "--out", graph, "--rules-out", rules,
                    "--scale", "150", "--rate", "0.05"},
                   &out),
            0)
      << out;

  std::string offline;
  ASSERT_EQ(RunCli({"detect", graph, rules}, &offline), 0) << offline;

  auto vocab = MakeVocabulary();
  auto g = LoadGraph(graph, vocab);
  ASSERT_TRUE(g.ok());
  std::ifstream rf(rules);
  std::stringstream rtext;
  rtext << rf.rdbuf();
  auto rs = ParseRules(rtext.str(), vocab);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  RepairService service(std::move(g).value(), std::move(rs).value(),
                        ServeOptions());
  serve::Session session(&service, serve::SessionMode::kImmediate);
  EXPECT_EQ(session.HandleLine("detect") + "\n", offline);

  std::remove(graph.c_str());
  std::remove(rules.c_str());
}

// --------------------------------------------- prefix under a write storm

// Concurrent readers against a committing service: every read must land
// exactly on some committed batch boundary, matching what a sequential
// single-threaded replay of the same batches published there, and each
// reader's observed batch sequence is monotone. max_fixes_per_batch keeps
// a live backlog so detect counts and violation pages vary per batch.
TEST(PublishStormTest, ReadersObserveExactlyCommittedPrefixes) {
  constexpr size_t kBatches = 8;
  constexpr size_t kReaders = 4;
  DatasetBundle bundle = KgBundle(/*repaired=*/true);

  ServeOptions base;
  base.max_fixes_per_batch = 3;
  base.shard_min_anchors = 1;

  // The sequential reference: one thread, one shard, same budget.
  ServeOptions seq_opt = base;
  seq_opt.num_threads = 1;
  RepairService seq(bundle.graph.Clone(), bundle.rules, seq_opt);

  // Generate each batch against the reference's own committed state so the
  // ops are valid for any service replaying the same prefix, and record
  // what the reference published at every boundary.
  std::map<uint64_t, PublishedDetect> expect_d;
  std::map<uint64_t, PublishedViolations> expect_v;
  auto record = [&](uint64_t batch) {
    auto d = seq.DetectPublished("");
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    ASSERT_EQ(d.value().batch, batch);
    expect_d[batch] = std::move(d).value();
    auto v = seq.ReadViolations(0, 1'000'000);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    expect_v[batch] = std::move(v).value();
  };
  record(0);
  Rng rng(77);
  std::vector<std::vector<EditEntry>> batches;
  for (size_t b = 0; b < kBatches; ++b) {
    Graph scratch = seq.graph().Clone();
    batches.push_back(MutateRandom(&scratch, &rng, 10));
    auto res = seq.ApplyBatch(batches.back());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    record(b + 1);
  }

  // The storm service: fanned-out commits, concurrent readers.
  ServeOptions storm_opt = base;
  storm_opt.num_threads = 4;
  storm_opt.num_shards = 4;
  RepairService storm(bundle.graph.Clone(), bundle.rules, storm_opt);

  std::atomic<bool> done{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_batch = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto d = storm.DetectPublished("");
        ASSERT_TRUE(d.ok()) << d.status().ToString();
        EXPECT_GE(d.value().batch, last_batch) << "batch went backwards";
        last_batch = d.value().batch;
        auto it = expect_d.find(d.value().batch);
        ASSERT_NE(it, expect_d.end())
            << "read pinned unknown batch " << d.value().batch;
        EXPECT_TRUE(SameDetect(d.value(), it->second))
            << "detect diverged at batch " << d.value().batch;

        auto v = storm.ReadViolations(0, 1'000'000);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        auto vit = expect_v.find(v.value().batch);
        ASSERT_NE(vit, expect_v.end());
        EXPECT_TRUE(SameViolations(v.value(), vit->second))
            << "backlog page diverged at batch " << v.value().batch;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (const auto& ops : batches) {
    auto res = storm.ApplyBatch(ops);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  // Both services replayed identical batches: identical final state.
  EXPECT_TRUE(storm.graph().ContentEquals(seq.graph()));
  auto final_d = storm.DetectPublished("");
  ASSERT_TRUE(final_d.ok());
  EXPECT_EQ(final_d.value().batch, kBatches);
  EXPECT_GT(storm.stats().published_reads, 0u);
  EXPECT_EQ(storm.stats().publishes, kBatches + 1);  // construction + commits
}

// ------------------------------------------------------ generation lifetime

// A pinned lease freezes its generation across arbitrarily many later
// publications: the writer abandons the retired-but-pinned slot instead of
// recycling it, and the shared_ptr keeps the store alive until the last
// lease drops.
TEST(PublishLifetimeTest, PinnedGenerationSurvivesLaterPublications) {
  DatasetBundle bundle = KgBundle(/*repaired=*/false);
  ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.num_shards = 2;
  sopt.shard_min_anchors = 1;
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);

  serve::ReadLease lease = service.PinPublished();
  ASSERT_TRUE(lease.valid());
  const uint64_t pinned_gen = lease->generation;
  const uint64_t pinned_batch = lease->batch;
  const size_t pinned_nodes = lease.view().NumNodes();
  const size_t pinned_edges = lease.view().NumEdges();

  Rng rng(11);
  for (size_t b = 0; b < 4; ++b) {
    Graph scratch = service.graph().Clone();
    auto res = service.ApplyBatch(MutateRandom(&scratch, &rng, 8));
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  // Four publications later the lease still reads its frozen store.
  EXPECT_GT(service.PublishedGeneration(), pinned_gen);
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease->generation, pinned_gen);
  EXPECT_EQ(lease->batch, pinned_batch);
  EXPECT_EQ(lease.view().NumNodes(), pinned_nodes);
  EXPECT_EQ(lease.view().NumEdges(), pinned_edges);

  lease.Release();
  EXPECT_FALSE(lease.valid());
  // The service keeps serving fresh generations after the drop.
  auto d = service.DetectPublished("");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().batch, 4u);
}

// ------------------------------------------------- mutex isolation, restore

// The acceptance criterion of the read path: detect / violations complete
// while another thread HOLDS the service mutex. If either verb ever tried
// to acquire it this test would deadlock (and time out).
TEST(PublishIsolationTest, ReadVerbsCompleteWhileCommitMutexHeld) {
  DatasetBundle bundle = KgBundle(/*repaired=*/false);
  RepairService service(bundle.graph.Clone(), bundle.rules, ServeOptions());
  std::mutex service_mu;
  serve::Session reader(&service, serve::SessionMode::kStaged, &service_mu);

  std::string detect_resp, violations_resp;
  {
    std::lock_guard<std::mutex> commit_path_held(service_mu);
    std::thread t([&] {
      detect_resp = reader.HandleLine("detect");
      violations_resp = reader.HandleLine("violations 0 5");
    });
    t.join();  // hangs iff a read verb takes the mutex
  }
  EXPECT_NE(detect_resp.find(" violations"), std::string::npos)
      << detect_resp;
  EXPECT_EQ(violations_resp.rfind("violations total=", 0), 0u)
      << violations_resp;
}

// Restore republishes a fresh generation atomically: a reader pinned
// before the restore keeps its pre-restore store untouched, and the next
// pin observes exactly the restored state.
TEST(PublishIsolationTest, RestoreRepublishesAtomically) {
  std::string path = ::testing::TempDir() + "/grepair_pub_restore.snap";
  DatasetBundle bundle = KgBundle(/*repaired=*/false);
  RepairService service(bundle.graph.Clone(), bundle.rules, ServeOptions());

  auto d0 = service.DetectPublished("");
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(service.SaveState(path).ok());

  Rng rng(23);
  Graph scratch = service.graph().Clone();
  ASSERT_TRUE(service.ApplyBatch(MutateRandom(&scratch, &rng, 12)).ok());

  serve::ReadLease lease = service.PinPublished();
  ASSERT_TRUE(lease.valid());
  const uint64_t pre_restore_gen = lease->generation;
  const size_t pre_restore_nodes = lease.view().NumNodes();

  ASSERT_TRUE(service.RestoreState(path).ok());

  // The pinned reader never observes the swap.
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease->generation, pre_restore_gen);
  EXPECT_EQ(lease.view().NumNodes(), pre_restore_nodes);

  // The restored state was republished as a NEW generation whose detect
  // report equals the report at save time.
  EXPECT_GT(service.PublishedGeneration(), pre_restore_gen);
  auto d1 = service.DetectPublished("");
  ASSERT_TRUE(d1.ok());
  EXPECT_TRUE(SameDetect(d0.value(), d1.value()));

  std::remove(path.c_str());
}

// --------------------------------------------------- options and protocol

TEST(PublishOptionsTest, DisabledPublishingRejectsReads) {
  DatasetBundle bundle = KgBundle(/*repaired=*/false);
  ServeOptions sopt;
  sopt.publish_snapshots = false;
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);

  EXPECT_FALSE(service.PinPublished().valid());
  auto d = service.DetectPublished("");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.stats().published_generation, 0u);
  EXPECT_GT(service.stats().stale_reads, 0u);

  serve::Session session(&service, serve::SessionMode::kImmediate);
  EXPECT_EQ(session.HandleLine("detect").rfind("err rejected", 0), 0u);
  EXPECT_EQ(session.HandleLine("violations").rfind("err rejected", 0), 0u);
}

TEST(PublishOptionsTest, ValidateBoundsMaxReadThreads) {
  ServeOptions sopt;
  sopt.max_read_threads = 4096;
  EXPECT_TRUE(sopt.Validate().ok());
  sopt.max_read_threads = 4097;
  EXPECT_FALSE(sopt.Validate().ok());
}

TEST(PublishProtocolTest, ViolationsPagingWindows) {
  DatasetBundle bundle = KgBundle(/*repaired=*/true);
  ServeOptions sopt;
  sopt.max_fixes_per_batch = 1;  // budget cut: backlog persists
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);

  Rng rng(31);
  Graph scratch = service.graph().Clone();
  ASSERT_TRUE(service.ApplyBatch(MutateRandom(&scratch, &rng, 14)).ok());

  auto all = service.ReadViolations(0, 1'000'000);
  ASSERT_TRUE(all.ok());
  const size_t total = all.value().total;
  ASSERT_GT(total, 0u) << "budget cut should leave a backlog";

  // Page concatenation covers the whole backlog in order.
  std::vector<PublishedViolations::Row> paged;
  for (size_t off = 0; off < total; off += 2) {
    auto page = service.ReadViolations(off, 2);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value().offset, off);
    EXPECT_EQ(page.value().total, total);
    for (const auto& row : page.value().rows) paged.push_back(row);
  }
  ASSERT_EQ(paged.size(), all.value().rows.size());
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].rule, all.value().rows[i].rule);
    EXPECT_EQ(paged[i].cost, all.value().rows[i].cost);
  }

  // Past-the-end offsets clamp to an empty page, not an error.
  auto past = service.ReadViolations(total + 100, 10);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past.value().rows.size(), 0u);
  EXPECT_EQ(past.value().offset, total);

  serve::Session session(&service, serve::SessionMode::kImmediate);
  EXPECT_EQ(session.HandleLine("violations 0 2").rfind("violations total=", 0),
            0u);
  EXPECT_EQ(session.HandleLine("violations notanum")
                .rfind("err bad_request", 0),
            0u);
  EXPECT_EQ(session.HandleLine("violations 0 0").rfind("err bad_request", 0),
            0u);
  EXPECT_EQ(session.HandleLine("detect a b").rfind("err arity", 0), 0u);
}

}  // namespace
}  // namespace grepair
