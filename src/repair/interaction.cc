#include "repair/interaction.h"

#include <algorithm>
#include <unordered_set>

namespace grepair {
namespace {

void AddNodeAndIncidence(const GraphView& g, NodeId n, FixScope* scope) {
  scope->write_nodes.push_back(n);
  for (EdgeId e : g.OutEdges(n)) {
    scope->write_edges.push_back(e);
    scope->read_nodes.push_back(g.Edge(e).dst);
  }
  for (EdgeId e : g.InEdges(n)) {
    scope->write_edges.push_back(e);
    scope->read_nodes.push_back(g.Edge(e).src);
  }
}

template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

template <typename T>
bool Intersects(const std::vector<T>& a, const std::vector<T>& b) {
  // Both sorted.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

FixScope ComputeScope(const GraphView& g, const Rule& rule,
                      const Match& match) {
  FixScope scope;
  scope.read_nodes = match.nodes;
  scope.read_edges = match.edges;
  const RepairAction& a = rule.action();
  switch (a.kind) {
    case ActionKind::kAddEdge:
      scope.write_nodes.push_back(match.nodes[a.var]);
      scope.write_nodes.push_back(match.nodes[a.var2]);
      break;
    case ActionKind::kAddNode:
      scope.write_nodes.push_back(match.nodes[a.var]);
      break;
    case ActionKind::kDelEdge:
      scope.write_edges.push_back(match.edges[a.edge_idx]);
      break;
    case ActionKind::kDelNode:
      AddNodeAndIncidence(g, match.nodes[a.var], &scope);
      break;
    case ActionKind::kUpdNode:
      scope.write_nodes.push_back(match.nodes[a.var]);
      break;
    case ActionKind::kUpdEdge:
      scope.write_edges.push_back(match.edges[a.edge_idx]);
      break;
    case ActionKind::kMerge:
      AddNodeAndIncidence(g, match.nodes[a.var], &scope);
      AddNodeAndIncidence(g, match.nodes[a.var2], &scope);
      break;
  }
  SortUnique(&scope.read_nodes);
  SortUnique(&scope.read_edges);
  SortUnique(&scope.write_nodes);
  SortUnique(&scope.write_edges);
  return scope;
}

bool ScopesConflict(const FixScope& a, const FixScope& b) {
  // a.writes vs b.reads+writes
  if (Intersects(a.write_nodes, b.write_nodes)) return true;
  if (Intersects(a.write_nodes, b.read_nodes)) return true;
  if (Intersects(a.write_edges, b.write_edges)) return true;
  if (Intersects(a.write_edges, b.read_edges)) return true;
  // b.writes vs a.reads
  if (Intersects(b.write_nodes, a.read_nodes)) return true;
  if (Intersects(b.write_edges, a.read_edges)) return true;
  return false;
}

std::vector<size_t> SelectIndependent(const std::vector<FixScope>& scopes) {
  std::vector<size_t> selected;
  for (size_t i = 0; i < scopes.size(); ++i) {
    bool ok = true;
    for (size_t j : selected) {
      if (ScopesConflict(scopes[i], scopes[j])) {
        ok = false;
        break;
      }
    }
    if (ok) selected.push_back(i);
  }
  return selected;
}

}  // namespace grepair
