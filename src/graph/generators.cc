#include "graph/generators.h"

#include <cassert>

#include "util/rng.h"
#include "util/strings.h"

namespace grepair {
namespace {

// Adds e and stamps the default high confidence.
EdgeId AddConfEdge(Graph* g, NodeId src, NodeId dst, SymbolId label,
                   SymbolId conf_attr, SymbolId conf_value) {
  auto r = g->AddEdge(src, dst, label);
  assert(r.ok());
  Status st = g->SetEdgeAttr(r.value(), conf_attr, conf_value);
  assert(st.ok());
  (void)st;
  return r.value();
}

}  // namespace

KgSchema KgSchema::Create(Vocabulary* vocab) {
  KgSchema s;
  s.person = vocab->Label("Person");
  s.city = vocab->Label("City");
  s.country = vocab->Label("Country");
  s.org = vocab->Label("Org");
  s.born_in = vocab->Label("born_in");
  s.lives_in = vocab->Label("lives_in");
  s.located_in = vocab->Label("located_in");
  s.capital_of = vocab->Label("capital_of");
  s.works_for = vocab->Label("works_for");
  s.hq_in = vocab->Label("hq_in");
  s.knows = vocab->Label("knows");
  s.spouse = vocab->Label("spouse");
  s.name = vocab->Attr("name");
  s.birth_year = vocab->Attr("birth_year");
  s.conf = vocab->Attr("conf");
  s.is_capital = vocab->Attr("is_capital");
  s.yes = vocab->Value("yes");
  s.conf_high = vocab->Value("90");
  s.conf_low = vocab->Value("30");
  return s;
}

Graph GenerateKg(VocabularyPtr vocab, const KgSchema& s, const KgOptions& opt) {
  Graph g(vocab);
  Rng rng(opt.seed);

  // Countries.
  std::vector<NodeId> countries;
  countries.reserve(opt.num_countries);
  for (size_t i = 0; i < opt.num_countries; ++i) {
    NodeId c = g.AddNode(s.country);
    g.SetNodeAttr(c, s.name, vocab->Value(StrFormat("country%zu", i)));
    countries.push_back(c);
  }

  // Cities: the first `num_countries` cities are capitals (one per country).
  std::vector<NodeId> cities;
  cities.reserve(opt.num_cities);
  size_t n_cities = std::max(opt.num_cities, opt.num_countries);
  for (size_t i = 0; i < n_cities; ++i) {
    NodeId c = g.AddNode(s.city);
    g.SetNodeAttr(c, s.name, vocab->Value(StrFormat("city%zu", i)));
    NodeId country = countries[i < opt.num_countries
                                   ? i
                                   : rng.NextBounded(opt.num_countries)];
    AddConfEdge(&g, c, country, s.located_in, s.conf, s.conf_high);
    if (i < opt.num_countries) {
      AddConfEdge(&g, c, country, s.capital_of, s.conf, s.conf_high);
      g.SetNodeAttr(c, s.is_capital, s.yes);
    }
    cities.push_back(c);
  }

  // Organizations.
  std::vector<NodeId> orgs;
  orgs.reserve(opt.num_orgs);
  for (size_t i = 0; i < opt.num_orgs; ++i) {
    NodeId o = g.AddNode(s.org);
    g.SetNodeAttr(o, s.name, vocab->Value(StrFormat("org%zu", i)));
    NodeId city = cities[rng.NextZipf(cities.size(), opt.zipf_skew)];
    AddConfEdge(&g, o, city, s.hq_in, s.conf, s.conf_high);
    orgs.push_back(o);
  }

  // Persons.
  std::vector<NodeId> persons;
  persons.reserve(opt.num_persons);
  for (size_t i = 0; i < opt.num_persons; ++i) {
    NodeId p = g.AddNode(s.person);
    g.SetNodeAttr(p, s.name, vocab->Value(StrFormat("person%zu", i)));
    g.SetNodeAttr(p, s.birth_year,
                  vocab->Value(StrFormat("%d", int(1940 + rng.NextBounded(70)))));
    NodeId born = cities[rng.NextZipf(cities.size(), opt.zipf_skew)];
    AddConfEdge(&g, p, born, s.born_in, s.conf, s.conf_high);
    if (rng.NextBernoulli(0.8)) {
      NodeId lives = cities[rng.NextZipf(cities.size(), opt.zipf_skew)];
      AddConfEdge(&g, p, lives, s.lives_in, s.conf, s.conf_high);
    }
    if (!orgs.empty() && rng.NextBernoulli(0.6)) {
      NodeId o = orgs[rng.NextZipf(orgs.size(), opt.zipf_skew)];
      AddConfEdge(&g, p, o, s.works_for, s.conf, s.conf_high);
    }
    persons.push_back(p);
  }

  // Symmetric knows edges.
  size_t pairs = static_cast<size_t>(opt.avg_knows * opt.num_persons / 2.0);
  for (size_t i = 0; i < pairs && persons.size() >= 2; ++i) {
    NodeId a = persons[rng.PickIndex(persons)];
    NodeId b = persons[rng.PickIndex(persons)];
    if (a == b || g.HasEdge(a, b, s.knows)) continue;
    AddConfEdge(&g, a, b, s.knows, s.conf, s.conf_high);
    AddConfEdge(&g, b, a, s.knows, s.conf, s.conf_high);
  }

  // Symmetric spouse pairs (each person at most one spouse).
  std::vector<NodeId> unpaired = persons;
  rng.Shuffle(&unpaired);
  size_t spouse_pairs =
      static_cast<size_t>(opt.spouse_frac * opt.num_persons / 2.0);
  for (size_t i = 0; i + 1 < unpaired.size() && i / 2 < spouse_pairs; i += 2) {
    AddConfEdge(&g, unpaired[i], unpaired[i + 1], s.spouse, s.conf,
                s.conf_high);
    AddConfEdge(&g, unpaired[i + 1], unpaired[i], s.spouse, s.conf,
                s.conf_high);
  }

  g.ResetJournal();
  return g;
}

SocialSchema SocialSchema::Create(Vocabulary* vocab) {
  SocialSchema s;
  s.person = vocab->Label("Person");
  s.knows = vocab->Label("knows");
  s.name = vocab->Attr("name");
  s.conf = vocab->Attr("conf");
  s.conf_high = vocab->Value("90");
  s.conf_low = vocab->Value("30");
  return s;
}

Graph GenerateSocial(VocabularyPtr vocab, const SocialSchema& s,
                     const SocialOptions& opt) {
  Graph g(vocab);
  Rng rng(opt.seed);

  std::vector<NodeId> persons;
  persons.reserve(opt.num_persons);
  // Endpoint pool for preferential attachment: nodes appear once per
  // incident knows pair, so popular nodes attract more edges.
  std::vector<NodeId> pool;

  for (size_t i = 0; i < opt.num_persons; ++i) {
    NodeId p = g.AddNode(s.person);
    g.SetNodeAttr(p, s.name, vocab->Value(StrFormat("user%zu", i)));
    size_t attach = std::min(opt.attach_edges, persons.size());
    for (size_t k = 0; k < attach; ++k) {
      NodeId q = pool.empty() ? persons[rng.PickIndex(persons)]
                              : pool[rng.PickIndex(pool)];
      if (q == p || g.HasEdge(p, q, s.knows)) continue;
      AddConfEdge(&g, p, q, s.knows, s.conf, s.conf_high);
      AddConfEdge(&g, q, p, s.knows, s.conf, s.conf_high);
      pool.push_back(p);
      pool.push_back(q);
    }
    persons.push_back(p);
  }

  g.ResetJournal();
  return g;
}

CitationSchema CitationSchema::Create(Vocabulary* vocab) {
  CitationSchema s;
  s.paper = vocab->Label("Paper");
  s.author = vocab->Label("Author");
  s.venue = vocab->Label("Venue");
  s.cites = vocab->Label("cites");
  s.authored_by = vocab->Label("authored_by");
  s.published_in = vocab->Label("published_in");
  s.title = vocab->Attr("title");
  s.year = vocab->Attr("year");
  s.conf = vocab->Attr("conf");
  s.conf_high = vocab->Value("90");
  s.conf_low = vocab->Value("30");
  return s;
}

Graph GenerateCitation(VocabularyPtr vocab, const CitationSchema& s,
                       const CitationOptions& opt) {
  Graph g(vocab);
  Rng rng(opt.seed);

  std::vector<NodeId> venues;
  for (size_t i = 0; i < opt.num_venues; ++i) {
    NodeId v = g.AddNode(s.venue);
    g.SetNodeAttr(v, s.title, vocab->Value(StrFormat("venue%zu", i)));
    venues.push_back(v);
  }
  std::vector<NodeId> authors;
  for (size_t i = 0; i < opt.num_authors; ++i) {
    NodeId a = g.AddNode(s.author);
    g.SetNodeAttr(a, s.title, vocab->Value(StrFormat("author%zu", i)));
    authors.push_back(a);
  }

  // Papers are created in year order so citations to earlier indexes are
  // automatically citations to <= years.
  std::vector<NodeId> papers;
  std::vector<int> years;
  for (size_t i = 0; i < opt.num_papers; ++i) {
    NodeId p = g.AddNode(s.paper);
    int year = 1980 + static_cast<int>((45 * i) / std::max<size_t>(1, opt.num_papers));
    g.SetNodeAttr(p, s.title, vocab->Value(StrFormat("paper%zu", i)));
    g.SetNodeAttr(p, s.year, vocab->Value(StrFormat("%d", year)));
    // Venue.
    if (!venues.empty()) {
      NodeId v = venues[rng.NextZipf(venues.size(), 0.9)];
      AddConfEdge(&g, p, v, s.published_in, s.conf, s.conf_high);
    }
    // Authors (>= 1).
    size_t n_auth = 1 + rng.NextBounded(
                            static_cast<uint64_t>(2 * opt.avg_authors - 1));
    for (size_t k = 0; k < n_auth && !authors.empty(); ++k) {
      NodeId a = authors[rng.NextZipf(authors.size(), 0.7)];
      if (!g.HasEdge(p, a, s.authored_by))
        AddConfEdge(&g, p, a, s.authored_by, s.conf, s.conf_high);
    }
    // Citations to strictly earlier papers (newer year cites older year).
    if (!papers.empty()) {
      size_t n_cites = rng.NextBounded(
          static_cast<uint64_t>(2 * opt.avg_cites + 1));
      for (size_t k = 0; k < n_cites; ++k) {
        size_t j = rng.NextZipf(papers.size(), 0.5);
        // Only cite papers from strictly earlier years to keep the clean
        // graph free of year conflicts.
        if (years[j] >= year) continue;
        if (!g.HasEdge(p, papers[j], s.cites))
          AddConfEdge(&g, p, papers[j], s.cites, s.conf, s.conf_high);
      }
    }
    papers.push_back(p);
    years.push_back(year);
  }

  g.ResetJournal();
  return g;
}

}  // namespace grepair
