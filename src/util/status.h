// Status / Result<T>: exception-free error handling used across all public
// GRepair APIs, in the style of Arrow/RocksDB.
#ifndef GREPAIR_UTIL_STATUS_H_
#define GREPAIR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace grepair {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< referenced entity does not exist
  kAlreadyExists,     ///< uniqueness violated (duplicate id, duplicate rule)
  kFailedPrecondition,///< operation illegal in current state
  kOutOfRange,        ///< index/limit exceeded
  kParseError,        ///< DSL / file syntax error
  kInconsistent,      ///< rule set fails consistency analysis
  kResourceExhausted, ///< configured budget (iterations, expansions) exceeded
  kInternal,          ///< invariant broken inside the library (a bug)
  kIo,                ///< a filesystem/device operation failed
  kDataLoss,          ///< stored data failed checksum/structure validation
};

/// Human-readable name of a status code (stable, for logs and tests).
std::string_view StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail. Cheap to move; Ok() carries no
/// allocation. Follows the RocksDB convention: functions return Status and
/// write outputs through pointers, or return Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIo, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or a failure Status. Accessing the value of a failed Result is a
/// programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) { // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a failure status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

/// Propagates a failure Status out of the enclosing function.
#define GREPAIR_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::grepair::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates failure.
#define GREPAIR_ASSIGN_OR_RETURN(lhs, expr)    \
  auto GREPAIR_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!GREPAIR_CONCAT_(_res_, __LINE__).ok())                \
    return GREPAIR_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(GREPAIR_CONCAT_(_res_, __LINE__)).value()

#define GREPAIR_CONCAT_(a, b) GREPAIR_CONCAT_IMPL_(a, b)
#define GREPAIR_CONCAT_IMPL_(a, b) a##b

}  // namespace grepair

#endif  // GREPAIR_UTIL_STATUS_H_
