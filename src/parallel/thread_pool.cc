#include "parallel/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace grepair {

namespace {

// Process-wide pool instruments (DESIGN.md "Observability"): queue depth
// at this instant, lifetime task count, and wait (enqueue -> dequeue) /
// run histograms. One set for all pools — a process runs one serving pool
// in practice, and the sharded counter cells absorb concurrent writers.
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks;
  obs::Histogram* wait_ms;
  obs::Histogram* run_ms;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return PoolMetrics{
        reg.GetGauge("grepair_pool_queue_depth",
                     "Tasks enqueued and not yet started."),
        reg.GetCounter("grepair_pool_tasks_total",
                       "Tasks ever submitted to a worker pool."),
        reg.GetHistogram("grepair_pool_task_wait_ms",
                         "Queue wait from submit to a worker picking up.",
                         obs::DefaultLatencyBucketsMs()),
        reg.GetHistogram("grepair_pool_task_run_ms",
                         "Task execution time on the worker.",
                         obs::DefaultLatencyBucketsMs())};
  }();
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  // Touch the pool instruments now so a `metrics` scrape sees the family
  // (at zero) as soon as a pool exists, not only after its first task.
  (void)Metrics();
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  // Instrumentation rides the existing lock; the only added cost when
  // metrics are on is one clock read per task (tasks are chunk-sized, see
  // ParallelFor). Disabled: two relaxed atomic adds remain.
  const bool obs_on = obs::MetricsEnabled();
  Task t{std::move(task), obs_on ? obs::NowUs() : 0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(t));
    // Inside the lock so the consuming worker's decrement cannot land
    // before this increment (the gauge never dips negative).
    Metrics().tasks->Add(1);
    Metrics().queue_depth->Add(1);
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain-on-destruction: only exit once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Metrics().queue_depth->Add(-1);
    if (task.enqueue_us != 0 && obs::MetricsEnabled()) {
      const uint64_t start_us = obs::NowUs();
      Metrics().wait_ms->Observe(
          static_cast<double>(start_us - task.enqueue_us) / 1000.0);
      {
        OBS_SPAN("pool.task");
        task.fn();  // packaged_task captures any exception into its future
      }
      Metrics().run_ms->Observe(
          static_cast<double>(obs::NowUs() - start_us) / 1000.0);
    } else {
      task.fn();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, NumThreads());
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    auto [begin, end] = BlockRange(n, c, chunks);
    futures.push_back(Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace grepair
