// RuleBuilder tests: the programmatic construction path mirrors the DSL.
#include <gtest/gtest.h>

#include "grr/rule_builder.h"
#include "grr/rule_parser.h"

namespace grepair {
namespace {

TEST(RuleBuilderTest, BuildsEquivalentOfParsedRule) {
  auto vocab = MakeVocabulary();
  auto parsed = ParseRule(R"(
    RULE sym CLASS incomplete
    MATCH (x:Person)-[knows]->(y:Person)
    WHERE NOT EDGE (y)-[knows]->(x)
    ACTION ADD_EDGE (y)-[knows]->(x)
  )",
                          vocab);
  ASSERT_TRUE(parsed.ok());

  RuleBuilder b(vocab.get(), "sym2", ErrorClass::kIncomplete);
  VarId x = b.Node("x", "Person"), y = b.Node("y", "Person");
  b.Edge(x, y, "knows");
  b.NoEdge(y, x, "knows");
  b.ActionAddEdge(y, x, "knows");
  Rule built = std::move(b).Build();

  const Rule& ref = parsed.value();
  EXPECT_EQ(built.pattern().NumNodes(), ref.pattern().NumNodes());
  EXPECT_EQ(built.pattern().NumEdges(), ref.pattern().NumEdges());
  EXPECT_EQ(built.pattern().nodes()[0].label, ref.pattern().nodes()[0].label);
  EXPECT_EQ(built.pattern().edges()[0].label, ref.pattern().edges()[0].label);
  EXPECT_EQ(built.action().kind, ref.action().kind);
  EXPECT_EQ(built.action().var, ref.action().var);
  EXPECT_EQ(built.action().var2, ref.action().var2);
  EXPECT_EQ(built.action().label, ref.action().label);
}

TEST(RuleBuilderTest, AllPredicateForms) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "preds", ErrorClass::kRedundant);
  VarId x = b.Node("x", "A"), y = b.Node("y", "A");
  b.AttrCmp(x, "name", CmpOp::kEq, y, "name");
  b.AttrCmpConst(x, "kind", CmpOp::kNe, "junk");
  b.AttrAbsent(x, "deleted");
  b.AttrPresent(y, "name");
  b.Isolated(x);
  b.NoOutEdge(y, "l");
  b.NoInEdge(y, "l");
  b.ActionMerge(x, y);
  Rule r = std::move(b).Build();
  EXPECT_EQ(r.pattern().predicates().size(), 4u);
  EXPECT_EQ(r.pattern().nacs().size(), 3u);
}

TEST(RuleBuilderTest, PrioritySticks) {
  auto vocab = MakeVocabulary();
  RuleBuilder b(vocab.get(), "p", ErrorClass::kConflict);
  VarId x = b.Node("x", "A"), y = b.Node("y", "B");
  size_t e = b.Edge(x, y, "l");
  b.ActionDelEdge(e);
  b.Priority(3.0);
  EXPECT_DOUBLE_EQ(std::move(b).Build().priority(), 3.0);
}

TEST(RuleSetTest, AddRejectsDuplicates) {
  auto vocab = MakeVocabulary();
  auto make = [&](const std::string& name) {
    RuleBuilder b(vocab.get(), name, ErrorClass::kConflict);
    VarId x = b.Node("x", "A"), y = b.Node("y", "B");
    size_t e = b.Edge(x, y, "l");
    b.ActionDelEdge(e);
    return std::move(b).Build();
  };
  RuleSet set;
  EXPECT_TRUE(set.Add(make("a")).ok());
  EXPECT_TRUE(set.Add(make("b")).ok());
  EXPECT_FALSE(set.Add(make("a")).ok());
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace grepair
