#include "eval/experiment.h"

#include "baseline/detect_only.h"
#include "baseline/random_repair.h"
#include "baseline/triple_cfd.h"
#include "grr/standard_rules.h"

namespace grepair {

Result<DatasetBundle> MakeKgBundle(const KgOptions& gopt,
                                   const InjectOptions& iopt) {
  DatasetBundle b;
  b.name = "kg";
  KgSchema schema = KgSchema::Create(b.vocab.get());
  b.graph = GenerateKg(b.vocab, schema, gopt);
  b.clean_nodes = b.graph.NumNodes();
  b.clean_edges = b.graph.NumEdges();
  auto truth = InjectKgErrors(&b.graph, schema, iopt);
  if (!truth.ok()) return truth.status();
  b.truth = std::move(truth).value();
  auto rules = KgRules(b.vocab);
  if (!rules.ok()) return rules.status();
  b.rules = std::move(rules).value();
  return b;
}

Result<DatasetBundle> MakeSocialBundle(const SocialOptions& gopt,
                                       const InjectOptions& iopt) {
  DatasetBundle b;
  b.name = "social";
  SocialSchema schema = SocialSchema::Create(b.vocab.get());
  b.graph = GenerateSocial(b.vocab, schema, gopt);
  b.clean_nodes = b.graph.NumNodes();
  b.clean_edges = b.graph.NumEdges();
  auto truth = InjectSocialErrors(&b.graph, schema, iopt);
  if (!truth.ok()) return truth.status();
  b.truth = std::move(truth).value();
  auto rules = SocialRules(b.vocab);
  if (!rules.ok()) return rules.status();
  b.rules = std::move(rules).value();
  return b;
}

Result<DatasetBundle> MakeCitationBundle(const CitationOptions& gopt,
                                         const InjectOptions& iopt) {
  DatasetBundle b;
  b.name = "citation";
  CitationSchema schema = CitationSchema::Create(b.vocab.get());
  b.graph = GenerateCitation(b.vocab, schema, gopt);
  b.clean_nodes = b.graph.NumNodes();
  b.clean_edges = b.graph.NumEdges();
  auto truth = InjectCitationErrors(&b.graph, schema, iopt);
  if (!truth.ok()) return truth.status();
  b.truth = std::move(truth).value();
  auto rules = CitationRules(b.vocab);
  if (!rules.ok()) return rules.status();
  b.rules = std::move(rules).value();
  return b;
}

const std::vector<std::string>& StandardMethods() {
  static const std::vector<std::string> kMethods = {
      "detect_only", "cfd", "naive", "greedy", "batch"};
  return kMethods;
}

Result<MethodOutcome> RunMethod(const DatasetBundle& bundle,
                                const std::string& method,
                                const RepairOptions& base_options) {
  MethodOutcome out;
  out.method = method;
  Graph work = bundle.graph.Clone();
  NodeId bound = static_cast<NodeId>(bundle.graph.NodeIdBound());

  if (method == "detect_only") {
    out.repair = DetectOnlyBaseline(work, bundle.rules);
  } else if (method == "cfd") {
    TripleCfdOptions copt;
    if (bundle.name == "kg") {
      copt = KgCfdConfig();
    } else if (bundle.name == "social") {
      copt = SocialCfdConfig();
    } else if (bundle.name == "citation") {
      copt = CitationCfdConfig();
    }
    auto r = TripleCfdRepair(&work, copt);
    if (!r.ok()) return r.status();
    out.repair = std::move(r).value();
    // Remaining violations measured against the GRR rules for comparability.
    out.repair.remaining_violations = CountViolations(work, bundle.rules);
  } else {
    RepairOptions opt = base_options;
    if (method == "naive") {
      opt.strategy = RepairStrategy::kNaive;
    } else if (method == "greedy") {
      opt.strategy = RepairStrategy::kGreedy;
    } else if (method == "batch") {
      opt.strategy = RepairStrategy::kBatch;
    } else if (method == "exact") {
      opt.strategy = RepairStrategy::kExact;
    } else {
      return Status::InvalidArgument("unknown method: " + method);
    }
    RepairEngine engine(opt);
    auto r = engine.Run(&work, bundle.rules);
    if (!r.ok()) return r.status();
    out.repair = std::move(r).value();
  }

  out.quality = EvaluateRepair(work, out.repair.applied, bundle.truth, bound);
  return out;
}

}  // namespace grepair
