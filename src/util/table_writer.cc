#include "util/table_writer.h"

#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace grepair {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TableWriter::Int(int64_t v) {
  return StrFormat("%lld", static_cast<long long>(v));
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t c = 0; c < columns_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += sep + render_row(columns_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out = Join(columns_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

void TableWriter::Print() const { std::fputs(ToAscii().c_str(), stdout); }

}  // namespace grepair
