#include "grr/rule_parser.h"

#include <cctype>
#include <map>

#include "grr/rule_validator.h"
#include "util/strings.h"

namespace grepair {
namespace {

// ----------------------------------------------------------------- Lexer

enum class Tok : uint8_t {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kDot,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kDash,
  kArrow,  // ->
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0, line = 1;
    auto push = [&](Tok k, std::string t) {
      out->push_back({k, std::move(t), line});
    };
    while (i < src_.size()) {
      char c = src_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {
        while (i < src_.size() && src_[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                src_[i] == '_'))
          ++i;
        push(Tok::kIdent, src_.substr(start, i - start));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        while (i < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[i])) ||
                src_[i] == '.'))
          ++i;
        push(Tok::kNumber, src_.substr(start, i - start));
        continue;
      }
      if (c == '"') {
        size_t start = ++i;
        while (i < src_.size() && src_[i] != '"') ++i;
        if (i >= src_.size())
          return Status::ParseError(
              StrFormat("line %zu: unterminated string", line));
        push(Tok::kString, src_.substr(start, i - start));
        ++i;
        continue;
      }
      switch (c) {
        case '(': push(Tok::kLParen, "("); ++i; break;
        case ')': push(Tok::kRParen, ")"); ++i; break;
        case '[': push(Tok::kLBracket, "["); ++i; break;
        case ']': push(Tok::kRBracket, "]"); ++i; break;
        case ',': push(Tok::kComma, ","); ++i; break;
        case ':': push(Tok::kColon, ":"); ++i; break;
        case '.': push(Tok::kDot, "."); ++i; break;
        case '*': push(Tok::kStar, "*"); ++i; break;
        case '=': push(Tok::kEq, "="); ++i; break;
        case '!':
          if (i + 1 < src_.size() && src_[i + 1] == '=') {
            push(Tok::kNe, "!=");
            i += 2;
          } else {
            return Status::ParseError(
                StrFormat("line %zu: stray '!'", line));
          }
          break;
        case '<':
          if (i + 1 < src_.size() && src_[i + 1] == '=') {
            push(Tok::kLe, "<=");
            i += 2;
          } else {
            push(Tok::kLt, "<");
            ++i;
          }
          break;
        case '>':
          if (i + 1 < src_.size() && src_[i + 1] == '=') {
            push(Tok::kGe, ">=");
            i += 2;
          } else {
            push(Tok::kGt, ">");
            ++i;
          }
          break;
        case '-':
          if (i + 1 < src_.size() && src_[i + 1] == '>') {
            push(Tok::kArrow, "->");
            i += 2;
          } else {
            push(Tok::kDash, "-");
            ++i;
          }
          break;
        default:
          return Status::ParseError(
              StrFormat("line %zu: unexpected character '%c'", line, c));
      }
    }
    push(Tok::kEnd, "");
    return Status::Ok();
  }

 private:
  const std::string& src_;
};

// ---------------------------------------------------------------- Parser

class Parser {
 public:
  Parser(std::vector<Token> tokens, VocabularyPtr vocab)
      : toks_(std::move(tokens)), vocab_(std::move(vocab)) {}

  Result<RuleSet> ParseFile() {
    RuleSet set;
    while (!At(Tok::kEnd)) {
      auto r = ParseOneRule();
      if (!r.ok()) return r.status();
      GREPAIR_RETURN_IF_ERROR(set.Add(std::move(r).value()));
    }
    return set;
  }

  Result<Rule> ParseSingle() {
    auto r = ParseOneRule();
    if (!r.ok()) return r.status();
    if (!At(Tok::kEnd)) return Err("trailing content after rule");
    return r;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(Tok k) const { return Cur().kind == k; }
  bool AtKeyword(std::string_view kw) const {
    return Cur().kind == Tok::kIdent && Cur().text == kw;
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  Status Err(const std::string& what) const {
    return Status::ParseError(StrFormat("line %zu: %s (near '%s')",
                                        Cur().line, what.c_str(),
                                        Cur().text.c_str()));
  }
  Status Expect(Tok k, const char* what) {
    if (!At(k)) return Err(std::string("expected ") + what);
    Advance();
    return Status::Ok();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return Err("expected keyword " + std::string(kw));
    Advance();
    return Status::Ok();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (!At(Tok::kIdent)) return Err(std::string("expected ") + what);
    std::string s = Cur().text;
    Advance();
    return s;
  }

  // State while parsing one rule.
  Pattern pattern_;
  std::map<std::string, VarId> vars_;
  std::map<std::string, size_t> edge_vars_;
  size_t anon_edge_count_ = 0;

  Result<VarId> LookupVar(const std::string& name) {
    auto it = vars_.find(name);
    if (it == vars_.end())
      return Status::ParseError(
          StrFormat("line %zu: unknown variable '%s'", Cur().line,
                    name.c_str()));
    return it->second;
  }

  // Parses "(name[:Label])" declaring the var when new. `allow_star`:
  // returns kNoVar for "(*)".
  Result<VarId> ParseNodeRef(bool allow_star, bool allow_decl = true) {
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    if (allow_star && At(Tok::kStar)) {
      Advance();
      GREPAIR_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return kNoVar;
    }
    GREPAIR_ASSIGN_OR_RETURN(std::string name, ExpectIdent("variable name"));
    SymbolId label = 0;
    bool has_label = false;
    if (At(Tok::kColon)) {
      Advance();
      if (At(Tok::kStar)) {
        Advance();
      } else {
        GREPAIR_ASSIGN_OR_RETURN(std::string l, ExpectIdent("label"));
        label = vocab_->Label(l);
        has_label = true;
      }
    }
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    auto it = vars_.find(name);
    if (it != vars_.end()) {
      if (has_label && pattern_.nodes()[it->second].label != label)
        return Status::ParseError(
            StrFormat("line %zu: conflicting label for var '%s'", Cur().line,
                      name.c_str()));
      return it->second;
    }
    if (!allow_decl)
      return Status::ParseError(StrFormat(
          "line %zu: unknown variable '%s'", Cur().line, name.c_str()));
    VarId v = pattern_.AddNode(label, name);
    vars_[name] = v;
    return v;
  }

  // Parses "-[name:label]->", "-[label]->", "-[*]->", "-[name:*]->".
  // Outputs the edge var name ("" if anonymous) and label (0 wildcard).
  Status ParseEdgeSpec(std::string* name, SymbolId* label) {
    *name = "";
    *label = 0;
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kDash, "'-'"));
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kLBracket, "'['"));
    if (At(Tok::kStar)) {
      Advance();
    } else {
      GREPAIR_ASSIGN_OR_RETURN(std::string first,
                               ExpectIdent("edge label or name"));
      if (At(Tok::kColon)) {
        Advance();
        *name = first;
        if (At(Tok::kStar)) {
          Advance();
        } else {
          GREPAIR_ASSIGN_OR_RETURN(std::string l, ExpectIdent("edge label"));
          *label = vocab_->Label(l);
        }
      } else {
        *label = vocab_->Label(first);
      }
    }
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kArrow, "'->'"));
    return Status::Ok();
  }

  // One MATCH item: "(x:L)" or "(x)-[e:l]->(y)".
  Status ParseMatchItem() {
    auto src = ParseNodeRef(/*allow_star=*/false);
    if (!src.ok()) return src.status();
    if (!At(Tok::kDash)) return Status::Ok();  // bare node decl
    std::string ename;
    SymbolId elabel;
    GREPAIR_RETURN_IF_ERROR(ParseEdgeSpec(&ename, &elabel));
    auto dst = ParseNodeRef(/*allow_star=*/false);
    if (!dst.ok()) return dst.status();
    auto e = pattern_.AddEdge(src.value(), dst.value(), elabel);
    if (!e.ok()) return e.status();
    if (ename.empty()) ename = StrFormat("_e%zu", anon_edge_count_++);
    if (edge_vars_.count(ename))
      return Err("duplicate edge variable '" + ename + "'");
    edge_vars_[ename] = e.value();
    return Status::Ok();
  }

  // Attribute operand: "x.attr" (node var or edge var) | string | number.
  Result<AttrOperand> ParseOperand() {
    if (At(Tok::kString) || At(Tok::kNumber)) {
      AttrOperand o = AttrOperand::Const(vocab_->Value(Cur().text));
      Advance();
      return o;
    }
    GREPAIR_ASSIGN_OR_RETURN(std::string var, ExpectIdent("operand"));
    GREPAIR_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    GREPAIR_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
    auto nit = vars_.find(var);
    if (nit != vars_.end())
      return AttrOperand::VarAttr(nit->second, vocab_->Attr(attr));
    auto eit = edge_vars_.find(var);
    if (eit != edge_vars_.end())
      return AttrOperand::EdgeAttr(eit->second, vocab_->Attr(attr));
    return Status::ParseError(StrFormat("line %zu: unknown variable '%s'",
                                        Cur().line, var.c_str()));
  }

  // One WHERE item.
  Status ParseWhereItem() {
    if (AtKeyword("NOT")) {
      Advance();
      GREPAIR_RETURN_IF_ERROR(ExpectKeyword("EDGE"));
      auto src = ParseNodeRef(/*allow_star=*/true, /*allow_decl=*/false);
      if (!src.ok()) return src.status();
      std::string ename;
      SymbolId elabel;
      GREPAIR_RETURN_IF_ERROR(ParseEdgeSpec(&ename, &elabel));
      auto dst = ParseNodeRef(/*allow_star=*/true, /*allow_decl=*/false);
      if (!dst.ok()) return dst.status();
      Nac n;
      n.label = elabel;
      if (src.value() == kNoVar && dst.value() == kNoVar)
        return Err("NOT EDGE with both endpoints '*'");
      if (src.value() == kNoVar) {
        n.kind = NacKind::kNoInEdge;
        n.dst_var = dst.value();
      } else if (dst.value() == kNoVar) {
        n.kind = NacKind::kNoOutEdge;
        n.src_var = src.value();
      } else {
        n.kind = NacKind::kNoEdge;
        n.src_var = src.value();
        n.dst_var = dst.value();
      }
      pattern_.AddNac(n);
      return Status::Ok();
    }
    if (AtKeyword("ISOLATED")) {
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable"));
      GREPAIR_ASSIGN_OR_RETURN(VarId v, LookupVar(var));
      Nac n;
      n.kind = NacKind::kNoIncident;
      n.src_var = v;
      pattern_.AddNac(n);
      return Status::Ok();
    }
    if (AtKeyword("ABSENT") || AtKeyword("PRESENT")) {
      bool absent = AtKeyword("ABSENT");
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable"));
      GREPAIR_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
      GREPAIR_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
      GREPAIR_ASSIGN_OR_RETURN(VarId v, LookupVar(var));
      AttrPredicate p;
      p.lhs = AttrOperand::VarAttr(v, vocab_->Attr(attr));
      p.op = absent ? CmpOp::kAbsent : CmpOp::kPresent;
      p.rhs = AttrOperand::Const(0);
      pattern_.AddPredicate(p);
      return Status::Ok();
    }
    // Comparison.
    auto lhs = ParseOperand();
    if (!lhs.ok()) return lhs.status();
    CmpOp op;
    switch (Cur().kind) {
      case Tok::kEq: op = CmpOp::kEq; break;
      case Tok::kNe: op = CmpOp::kNe; break;
      case Tok::kLt: op = CmpOp::kLt; break;
      case Tok::kLe: op = CmpOp::kLe; break;
      case Tok::kGt: op = CmpOp::kGt; break;
      case Tok::kGe: op = CmpOp::kGe; break;
      default: return Err("expected comparison operator");
    }
    Advance();
    auto rhs = ParseOperand();
    if (!rhs.ok()) return rhs.status();
    AttrPredicate p;
    p.lhs = lhs.value();
    p.op = op;
    p.rhs = rhs.value();
    pattern_.AddPredicate(p);
    return Status::Ok();
  }

  Result<RepairAction> ParseAction() {
    RepairAction a;
    if (AtKeyword("ADD_EDGE")) {
      Advance();
      auto src = ParseNodeRef(false, /*allow_decl=*/false);
      if (!src.ok()) return src.status();
      std::string ename;
      SymbolId elabel;
      GREPAIR_RETURN_IF_ERROR(ParseEdgeSpec(&ename, &elabel));
      auto dst = ParseNodeRef(false, /*allow_decl=*/false);
      if (!dst.ok()) return dst.status();
      if (elabel == 0) return Err("ADD_EDGE requires a concrete label");
      a.kind = ActionKind::kAddEdge;
      a.var = src.value();
      a.var2 = dst.value();
      a.label = elabel;
      return a;
    }
    if (AtKeyword("ADD_NODE")) {
      Advance();
      // One endpoint is an existing var, the other is a NEW node written
      // as (name:Label) where `name` is not a pattern var.
      // Parse both endpoints textually.
      struct EndPoint {
        std::string name;
        SymbolId label = 0;
        bool has_label = false;
      };
      auto parse_ep = [&]() -> Result<EndPoint> {
        EndPoint ep;
        GREPAIR_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
        GREPAIR_ASSIGN_OR_RETURN(ep.name, ExpectIdent("name"));
        if (At(Tok::kColon)) {
          Advance();
          GREPAIR_ASSIGN_OR_RETURN(std::string l, ExpectIdent("label"));
          ep.label = vocab_->Label(l);
          ep.has_label = true;
        }
        GREPAIR_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return ep;
      };
      auto lhs = parse_ep();
      if (!lhs.ok()) return lhs.status();
      std::string ename;
      SymbolId elabel;
      GREPAIR_RETURN_IF_ERROR(ParseEdgeSpec(&ename, &elabel));
      auto rhs = parse_ep();
      if (!rhs.ok()) return rhs.status();
      if (elabel == 0) return Err("ADD_NODE requires a concrete edge label");
      bool lhs_is_var = vars_.count(lhs.value().name) > 0;
      bool rhs_is_var = vars_.count(rhs.value().name) > 0;
      if (lhs_is_var == rhs_is_var)
        return Err("ADD_NODE needs exactly one existing variable endpoint");
      const EndPoint& nu = lhs_is_var ? rhs.value() : lhs.value();
      const EndPoint& anchor = lhs_is_var ? lhs.value() : rhs.value();
      if (!nu.has_label) return Err("ADD_NODE new node needs a label");
      a.kind = ActionKind::kAddNode;
      a.node_label = nu.label;
      a.label = elabel;
      a.var = vars_.at(anchor.name);
      a.new_node_is_src = !lhs_is_var;  // new node on the left => source
      return a;
    }
    if (AtKeyword("DEL_EDGE")) {
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string e, ExpectIdent("edge variable"));
      auto it = edge_vars_.find(e);
      if (it == edge_vars_.end()) return Err("unknown edge variable " + e);
      a.kind = ActionKind::kDelEdge;
      a.edge_idx = it->second;
      return a;
    }
    if (AtKeyword("DEL_NODE")) {
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string v, ExpectIdent("variable"));
      GREPAIR_ASSIGN_OR_RETURN(a.var, LookupVar(v));
      a.kind = ActionKind::kDelNode;
      return a;
    }
    if (AtKeyword("UPD_NODE")) {
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string v, ExpectIdent("variable"));
      GREPAIR_ASSIGN_OR_RETURN(a.var, LookupVar(v));
      a.kind = ActionKind::kUpdNode;
      if (AtKeyword("LABEL")) {
        Advance();
        GREPAIR_ASSIGN_OR_RETURN(std::string l, ExpectIdent("label"));
        a.label = vocab_->Label(l);
      } else if (AtKeyword("SET")) {
        Advance();
        GREPAIR_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
        GREPAIR_RETURN_IF_ERROR(Expect(Tok::kEq, "'='"));
        if (!At(Tok::kString) && !At(Tok::kNumber))
          return Err("expected value literal");
        a.attr = vocab_->Attr(attr);
        a.value = vocab_->Value(Cur().text);
        Advance();
      } else {
        return Err("UPD_NODE expects LABEL or SET");
      }
      return a;
    }
    if (AtKeyword("UPD_EDGE")) {
      Advance();
      GREPAIR_ASSIGN_OR_RETURN(std::string e, ExpectIdent("edge variable"));
      auto it = edge_vars_.find(e);
      if (it == edge_vars_.end()) return Err("unknown edge variable " + e);
      GREPAIR_RETURN_IF_ERROR(ExpectKeyword("LABEL"));
      GREPAIR_ASSIGN_OR_RETURN(std::string l, ExpectIdent("label"));
      a.kind = ActionKind::kUpdEdge;
      a.edge_idx = it->second;
      a.label = vocab_->Label(l);
      return a;
    }
    if (AtKeyword("MERGE")) {
      Advance();
      GREPAIR_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      GREPAIR_ASSIGN_OR_RETURN(std::string v1, ExpectIdent("variable"));
      GREPAIR_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
      GREPAIR_ASSIGN_OR_RETURN(std::string v2, ExpectIdent("variable"));
      GREPAIR_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      GREPAIR_ASSIGN_OR_RETURN(a.var, LookupVar(v1));
      GREPAIR_ASSIGN_OR_RETURN(a.var2, LookupVar(v2));
      a.kind = ActionKind::kMerge;
      return a;
    }
    return Err("unknown action");
  }

  Result<Rule> ParseOneRule() {
    pattern_ = Pattern();
    vars_.clear();
    edge_vars_.clear();
    anon_edge_count_ = 0;

    GREPAIR_RETURN_IF_ERROR(ExpectKeyword("RULE"));
    GREPAIR_ASSIGN_OR_RETURN(std::string name, ExpectIdent("rule name"));
    GREPAIR_RETURN_IF_ERROR(ExpectKeyword("CLASS"));
    GREPAIR_ASSIGN_OR_RETURN(std::string cls_name, ExpectIdent("class"));
    ErrorClass cls;
    if (cls_name == "incomplete") {
      cls = ErrorClass::kIncomplete;
    } else if (cls_name == "conflict") {
      cls = ErrorClass::kConflict;
    } else if (cls_name == "redundant") {
      cls = ErrorClass::kRedundant;
    } else {
      return Err("unknown class '" + cls_name +
                 "' (want incomplete|conflict|redundant)");
    }

    GREPAIR_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    GREPAIR_RETURN_IF_ERROR(ParseMatchItem());
    while (At(Tok::kComma)) {
      Advance();
      GREPAIR_RETURN_IF_ERROR(ParseMatchItem());
    }

    if (AtKeyword("WHERE")) {
      Advance();
      GREPAIR_RETURN_IF_ERROR(ParseWhereItem());
      while (AtKeyword("AND")) {
        Advance();
        GREPAIR_RETURN_IF_ERROR(ParseWhereItem());
      }
    }

    GREPAIR_RETURN_IF_ERROR(ExpectKeyword("ACTION"));
    auto action = ParseAction();
    if (!action.ok()) return action.status();

    double priority = 1.0;
    if (AtKeyword("PRIORITY")) {
      Advance();
      if (!At(Tok::kNumber)) return Err("expected priority number");
      if (!ParseDouble(Cur().text, &priority))
        return Err("bad priority number");
      Advance();
    }

    Rule rule(std::move(name), cls, std::move(pattern_), action.value());
    rule.set_priority(priority);
    GREPAIR_RETURN_IF_ERROR(ValidateRule(rule, *vocab_));
    return rule;
  }

  std::vector<Token> toks_;
  VocabularyPtr vocab_;
  size_t pos_ = 0;
};

}  // namespace

Result<RuleSet> ParseRules(const std::string& text, VocabularyPtr vocab) {
  std::vector<Token> toks;
  GREPAIR_RETURN_IF_ERROR(Lexer(text).Tokenize(&toks));
  return Parser(std::move(toks), std::move(vocab)).ParseFile();
}

Result<Rule> ParseRule(const std::string& text, VocabularyPtr vocab) {
  std::vector<Token> toks;
  GREPAIR_RETURN_IF_ERROR(Lexer(text).Tokenize(&toks));
  return Parser(std::move(toks), std::move(vocab)).ParseSingle();
}

}  // namespace grepair
