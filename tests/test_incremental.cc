// Incremental (delta-anchored) matching tests, including the load-bearing
// property: after any random edit, delta re-matching finds every match a
// full re-detection finds among the NEW matches (invariant 4 of DESIGN.md).
#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "eval/experiment.h"
#include "match/incremental.h"
#include "util/rng.h"

namespace grepair {
namespace {

std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> Canon(
    const std::vector<Match>& ms) {
  std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> out;
  for (const auto& m : ms) out.insert({m.nodes, m.edges});
  return out;
}

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    a_ = vocab_->Label("A");
    b_ = vocab_->Label("B");
    e_ = vocab_->Label("e");
    f_ = vocab_->Label("f");
  }

  std::vector<Match> Delta(const Pattern& p, size_t mark) {
    std::vector<EditEntry> delta(g_.Journal().begin() + mark,
                                 g_.Journal().end());
    std::vector<Match> out;
    DeltaMatcher(g_, p).FindDelta(delta, [&](const Match& m) {
      out.push_back(m);
      return true;
    });
    return out;
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId a_, b_, e_, f_;
};

TEST_F(IncrementalTest, AddedEdgeFoundViaEdgeAnchor) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  size_t mark = g_.JournalSize();
  g_.AddEdge(x, y, e_);
  auto found = Delta(p, mark);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].nodes[u], x);
}

TEST_F(IncrementalTest, RemovalEnablesNacMatch) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  g_.AddEdge(x, y, e_);
  EdgeId back = g_.AddEdge(y, x, f_).value();
  Pattern p;  // (u)-[e]->(v) with NOT (v)-[f]->(u)
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = v;
  nac.dst_var = u;
  nac.label = f_;
  p.AddNac(nac);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);

  size_t mark = g_.JournalSize();
  g_.RemoveEdge(back);  // NAC becomes satisfied -> new match
  auto found = Delta(p, mark);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].nodes[u], x);
}

TEST_F(IncrementalTest, RelabelCreatesMatch) {
  NodeId x = g_.AddNode(b_);  // wrong label initially
  Pattern p;
  p.AddNode(a_);
  size_t mark = g_.JournalSize();
  g_.SetNodeLabel(x, a_);
  auto found = Delta(p, mark);
  ASSERT_EQ(found.size(), 1u);
}

TEST_F(IncrementalTest, AttrChangeEnablesPredicateMatch) {
  SymbolId name = vocab_->Attr("name");
  NodeId x = g_.AddNode(a_), y = g_.AddNode(a_);
  g_.SetNodeAttr(x, name, vocab_->Value("p"));
  g_.SetNodeAttr(y, name, vocab_->Value("q"));
  Pattern p;  // two A nodes with equal name
  VarId u = p.AddNode(a_), v = p.AddNode(a_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::VarAttr(u, name);
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::VarAttr(v, name);
  p.AddPredicate(pred);
  EXPECT_EQ(Matcher(g_, p).Count(), 0u);

  size_t mark = g_.JournalSize();
  g_.SetNodeAttr(y, name, vocab_->Value("p"));
  auto found = Delta(p, mark);
  EXPECT_EQ(found.size(), 2u);  // both orderings
}

TEST_F(IncrementalTest, DedupAcrossAnchors) {
  // A match touching TWO delta elements must be reported once.
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  p.AddEdge(u, v, f_);
  size_t mark = g_.JournalSize();
  g_.AddEdge(x, y, e_);
  g_.AddEdge(x, y, f_);
  auto found = Delta(p, mark);
  EXPECT_EQ(found.size(), 1u);
}

TEST_F(IncrementalTest, AnchorsComputedFromJournal) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_);
  EdgeId e1 = g_.AddEdge(x, y, e_).value();
  size_t mark = g_.JournalSize();
  g_.RemoveEdge(e1);
  NodeId z = g_.AddNode(a_);
  Pattern p;
  p.AddNode(a_);
  std::vector<EditEntry> delta(g_.Journal().begin() + mark, g_.Journal().end());
  auto anchors = DeltaMatcher(g_, p).ComputeAnchors(delta);
  // x and y touched by removal, z by creation; no edges alive in delta.
  EXPECT_EQ(anchors.nodes.size(), 3u);
  EXPECT_TRUE(anchors.edges.empty());
  (void)z;
}

// Property: apply a random edit script; every match of the post-state that
// was NOT a match of the pre-state must be found by FindDelta.
class DeltaCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaCompleteness, FindsAllNewMatches) {
  uint64_t seed = GetParam();
  auto vocab = MakeVocabulary();
  Rng rng(seed);
  SymbolId A = vocab->Label("A"), B = vocab->Label("B");
  SymbolId E = vocab->Label("e"), F = vocab->Label("f");
  SymbolId attr = vocab->Attr("a");
  std::vector<SymbolId> values = {vocab->Value("v1"), vocab->Value("v2")};

  Graph g(vocab);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i)
    nodes.push_back(g.AddNode(rng.NextBernoulli(0.5) ? A : B));
  for (int i = 0; i < 20; ++i) {
    NodeId x = nodes[rng.PickIndex(nodes)], y = nodes[rng.PickIndex(nodes)];
    g.AddEdge(x, y, rng.NextBernoulli(0.5) ? E : F);
  }
  for (NodeId n : nodes)
    if (rng.NextBernoulli(0.5))
      g.SetNodeAttr(n, attr, values[rng.PickIndex(values)]);

  // Pattern: (u:A)-[e]->(v) with NOT (v)-[f]->(u) — exercises both positive
  // and NAC delta paths.
  Pattern p;
  VarId u = p.AddNode(A), v = p.AddNode(0);
  p.AddEdge(u, v, E);
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = v;
  nac.dst_var = u;
  nac.label = F;
  p.AddNac(nac);

  auto before = Canon(Matcher(g, p).Collect());

  // Random edit script (3 edits).
  size_t mark = g.JournalSize();
  for (int k = 0; k < 3; ++k) {
    switch (rng.NextBounded(5)) {
      case 0: {
        NodeId x = nodes[rng.PickIndex(nodes)], y = nodes[rng.PickIndex(nodes)];
        if (g.NodeAlive(x) && g.NodeAlive(y))
          g.AddEdge(x, y, rng.NextBernoulli(0.5) ? E : F);
        break;
      }
      case 1: {
        auto edges = g.Edges();
        if (!edges.empty()) g.RemoveEdge(edges[rng.PickIndex(edges)]);
        break;
      }
      case 2: {
        NodeId x = nodes[rng.PickIndex(nodes)];
        if (g.NodeAlive(x)) g.SetNodeLabel(x, rng.NextBernoulli(0.5) ? A : B);
        break;
      }
      case 3: {
        NodeId x = nodes[rng.PickIndex(nodes)];
        if (g.NodeAlive(x))
          g.SetNodeAttr(x, attr, values[rng.PickIndex(values)]);
        break;
      }
      default: {
        NodeId x = nodes[rng.PickIndex(nodes)];
        if (g.NodeAlive(x) && rng.NextBernoulli(0.3)) g.RemoveNode(x);
        break;
      }
    }
  }

  auto after = Canon(Matcher(g, p).Collect());
  std::vector<EditEntry> delta(g.Journal().begin() + mark, g.Journal().end());
  std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> delta_found;
  DeltaMatcher(g, p).FindDelta(delta, [&](const Match& m) {
    delta_found.insert({m.nodes, m.edges});
    return true;
  });

  // Completeness: every NEW match is delta-found.
  for (const auto& m : after) {
    if (before.count(m)) continue;
    EXPECT_TRUE(delta_found.count(m))
        << "seed=" << seed << ": new match missed by delta matcher";
  }
  // Soundness of reports: everything delta-found is a current match.
  for (const auto& m : delta_found) EXPECT_TRUE(after.count(m));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, DeltaCompleteness,
                         ::testing::Range<uint64_t>(0, 60));

// Property behind the parallel delta path (parallel::ParallelDeltaDetector):
// ANY partition of the anchor lists into contiguous shards, searched via the
// raw MatchEdgeAnchors/MatchNodeAnchors primitives and deduplicated by
// footprint, reproduces exactly the FindDelta match set — on all three
// generator domains.
class AnchorShardingProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(AnchorShardingProperty, AnyPartitionReproducesFindDelta) {
  const std::string domain = GetParam();
  Result<DatasetBundle> b = Status::Ok();
  InjectOptions iopt;
  iopt.rate = 0.06;
  if (domain == "kg") {
    KgOptions gopt;
    gopt.num_persons = 250;
    gopt.num_cities = 30;
    gopt.num_countries = 8;
    gopt.num_orgs = 15;
    b = MakeKgBundle(gopt, iopt);
  } else if (domain == "social") {
    SocialOptions gopt;
    gopt.num_persons = 250;
    b = MakeSocialBundle(gopt, iopt);
  } else {
    CitationOptions gopt;
    gopt.num_papers = 200;
    gopt.num_authors = 80;
    b = MakeCitationBundle(gopt, iopt);
  }
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  Graph& g = b.value().graph;
  Rng rng(domain.size());

  // A delta rich enough to induce plenty of anchors: random edge churn.
  size_t mark = g.JournalSize();
  std::vector<NodeId> nodes = g.Nodes();
  std::vector<SymbolId> elabels;
  for (EdgeId e : g.Edges()) elabels.push_back(g.EdgeLabel(e));
  for (int k = 0; k < 25; ++k) {
    NodeId x = nodes[rng.PickIndex(nodes)], y = nodes[rng.PickIndex(nodes)];
    if (rng.NextBernoulli(0.7)) {
      if (g.NodeAlive(x) && g.NodeAlive(y) && x != y)
        g.AddEdge(x, y, elabels[rng.PickIndex(elabels)]);
    } else {
      std::vector<EdgeId> cur = g.Edges();
      if (!cur.empty()) g.RemoveEdge(cur[rng.PickIndex(cur)]);
    }
  }
  std::vector<EditEntry> delta(g.Journal().begin() + mark, g.Journal().end());

  for (RuleId r = 0; r < b.value().rules.size(); ++r) {
    DeltaMatcher dm(g, b.value().rules[r].pattern());
    auto anchors = dm.ComputeAnchors(delta);

    std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> expected;
    dm.FindDelta(delta, [&](const Match& m) {
      expected.insert({m.nodes, m.edges});
      return true;
    });

    // Several random partitions, plus the 1-shard and anchor-per-shard
    // extremes.
    for (size_t trial = 0; trial < 4; ++trial) {
      size_t max_width;
      if (trial == 0) {
        max_width = SIZE_MAX;  // single shard
      } else if (trial == 1) {
        max_width = 1;  // one anchor per shard
      } else {
        max_width = 1 + rng.NextBounded(5);
      }
      std::set<std::pair<std::vector<NodeId>, std::vector<EdgeId>>> got;
      auto collect = [&](const Match& m) {
        got.insert({m.nodes, m.edges});
        return true;
      };
      for (size_t i = 0; i < anchors.edges.size();) {
        size_t w = std::min<size_t>(max_width, anchors.edges.size() - i);
        dm.MatchEdgeAnchors({anchors.edges.begin() + i,
                             anchors.edges.begin() + i + w},
                            collect);
        i += w;
      }
      for (size_t i = 0; i < anchors.nodes.size();) {
        size_t w = std::min<size_t>(max_width, anchors.nodes.size() - i);
        dm.MatchNodeAnchors({anchors.nodes.begin() + i,
                             anchors.nodes.begin() + i + w},
                            collect);
        i += w;
      }
      EXPECT_EQ(got, expected)
          << domain << " rule " << r << " shard width trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, AnchorShardingProperty,
                         ::testing::Values("kg", "social", "citation"));

}  // namespace
}  // namespace grepair
