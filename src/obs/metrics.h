// Process observability: a metrics registry of named counters, gauges and
// fixed-bucket histograms with Prometheus text exposition.
//
// Design (DESIGN.md "Observability"):
//   - WRITES stay off the hot path: counter/histogram increments are relaxed
//     atomic adds into a cache-line-padded cell picked by a thread-local
//     slot, so concurrent instrumented threads do not bounce one line.
//     Aggregation happens on READ (Value()/ExpositionText() sum the cells).
//   - Handles are plain pointers owned by the registry: resolve once at
//     setup (`registry.GetCounter(...)`), then `c->Add(1)` forever. The
//     registry never deletes an instrument, so handles live as long as it.
//   - A registry is instantiable (RepairService owns one per service so
//     ServiceStats stays exact across service instances in one process);
//     MetricsRegistry::Global() carries the process-wide instruments
//     (thread pool, matcher) that have no per-service owner.
//   - Runtime kill switch: obs::SetMetricsEnabled(false) gates the OPTIONAL
//     instrumentation (timestamps in the pool, matcher flushes). Instruments
//     that back serving counters are unconditional — they replaced
//     equally-unconditional struct fields and cost the same relaxed add.
#ifndef GREPAIR_OBS_METRICS_H_
#define GREPAIR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace grepair {
namespace obs {

/// Runtime gate for optional instrumentation (clock reads in the thread
/// pool, matcher counter flushes, span timestamps). Defaults to enabled;
/// benchmarks measuring the bare hot path may turn it off. Reads are
/// relaxed — flipping it mid-run is advisory, not a memory barrier.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Label set of one instrument instance, e.g. {{"path","patch"}}. Order is
/// preserved into the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

/// One cache-line-padded atomic cell. kCells of these per counter spread
/// concurrent writers; readers sum.
struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};

constexpr size_t kCells = 16;

/// This thread's stable cell slot in [0, kCells).
size_t ThreadCellSlot();

}  // namespace internal

/// Monotonically increasing event count. Write: one relaxed add. Read: sum
/// of kCells cells (exact — adds are never lost, only summed late).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[internal::ThreadCellSlot()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<internal::Cell, internal::kCells> cells_;
};

/// Point-in-time signed value (queue depth, resident bytes). Set/Add are
/// single relaxed atomics — gauges are written from one place or are
/// inc/dec pairs, so sharding buys nothing.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-boundary histogram. `bounds` are ascending upper bounds (le
/// semantics: an observation lands in the first bucket with v <= bound);
/// an implicit +Inf bucket always exists past the last bound. Bucket
/// counts and the running sum use the same sharded-cell scheme as Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  /// Observations recorded (the +Inf cumulative count).
  uint64_t Count() const;
  /// Sum of observed values.
  double Sum() const;
  /// Raw (non-cumulative) count of bucket i, i in [0, bounds().size()];
  /// index bounds().size() is the +Inf bucket.
  uint64_t BucketCount(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) SumCell {
    std::atomic<double> v{0.0};
  };

  std::vector<double> bounds_;
  /// Bucket-major: cell for (bucket b, slot s) at b * kCells + s. A raw
  /// array allocation because atomics are neither copyable nor movable,
  /// which rules out std::vector's relocation machinery.
  std::unique_ptr<internal::Cell[]> cells_;
  std::array<SumCell, internal::kCells> sum_cells_;
};

/// Bucket boundaries for millisecond latencies spanning sub-ms patches to
/// multi-second rebuilds.
const std::vector<double>& DefaultLatencyBucketsMs();

/// A named collection of instruments with Prometheus text exposition
/// (text format 0.0.4: HELP/TYPE lines per family, one sample line per
/// child). Get* registers on first use and returns the existing handle on
/// repeats (same name + labels); the returned pointers stay valid for the
/// registry's lifetime. Registration takes a mutex; the handles' hot-path
/// operations do not.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry for instruments without a natural owner.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const Labels& labels = {});

  /// Registered instrument instances (children, not families).
  size_t NumInstruments() const;

  /// Prometheus text exposition of every instrument, families in
  /// registration-name order, children in label order. Deterministic for a
  /// frozen registry.
  std::string ExpositionText() const;

  /// Sanitizes an arbitrary string into a legal metric/label name:
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (':' reserved by convention — not emitted by
  /// the sanitizer; every illegal char becomes '_', an illegal leading
  /// digit gets a '_' prefix).
  static std::string SanitizeName(const std::string& name);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    /// Boxed so registering a sibling never moves an existing child under
    /// a handed-out instrument pointer.
    std::vector<std::unique_ptr<Child>> children;
  };

  Child* FindOrAddChild(const std::string& name, const std::string& help,
                        Kind kind, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace obs
}  // namespace grepair

#endif  // GREPAIR_OBS_METRICS_H_
