// T3 — Rule-set consistency analysis: static verdict (trigger edges,
// contradictions, creation cycles) and Monte-Carlo witness search for the
// shipped sets and the adversarial sets. Expected shape: shipped sets pass
// both; the cyclic set fails with a non-termination witness; the
// contradictory set fails with an oscillation/divergence witness. Static
// analysis is microseconds; simulation milliseconds — both trivially cheap
// next to one repair run, which is the point of shipping them.
#include "consistency/checker.h"
#include "consistency/simulator.h"
#include "grr/standard_rules.h"
#include "util/table_writer.h"

#include <cstdio>

using namespace grepair;

int main() {
  TableWriter t("T3: rule-set consistency analysis",
                {"rule_set", "rules", "trigger_edges", "contradictions",
                 "creation_cycle", "static_verdict", "static_ms",
                 "sim_nonterm", "sim_divergent", "sim_ms"});

  struct Entry {
    const char* name;
    Result<RuleSet> (*maker)(VocabularyPtr);
  };
  const Entry kEntries[] = {
      {"kg", KgRules},
      {"social", SocialRules},
      {"citation", CitationRules},
      {"adversarial_cyclic", AdversarialCyclicRules},
      {"contradictory", ContradictoryRules},
  };

  for (const Entry& entry : kEntries) {
    auto vocab = MakeVocabulary();
    auto rules = entry.maker(vocab);
    if (!rules.ok()) {
      std::fprintf(stderr, "rule set %s failed to parse: %s\n", entry.name,
                   rules.status().ToString().c_str());
      return 1;
    }
    ConsistencyReport rep = CheckConsistency(rules.value(), *vocab);

    SimOptions sopt;
    sopt.trials = 10;
    sopt.nodes_per_trial = 10;
    sopt.edges_per_trial = 16;
    sopt.max_fixes = 200;
    SimulationReport sim = SimulateRuleSet(rules.value(), vocab, sopt);

    t.AddRow({entry.name, TableWriter::Int(int64_t(rules.value().size())),
              TableWriter::Int(int64_t(rep.num_trigger_edges)),
              TableWriter::Int(int64_t(rep.num_contradictions)),
              rep.creation_cycle ? "yes" : "no",
              rep.statically_consistent ? "consistent" : "REJECTED",
              TableWriter::Num(rep.analysis_ms, 3),
              TableWriter::Int(int64_t(sim.nonterminating)),
              TableWriter::Int(int64_t(sim.divergent)),
              TableWriter::Num(sim.elapsed_ms, 1)});
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
