#include "parallel/parallel_detector.h"

#include <algorithm>
#include <exception>
#include <map>
#include <utility>
#include <vector>

#include "util/ordered_merge.h"

namespace grepair {

namespace {

// One unit of detection work: a whole rule, one contiguous seed range of a
// block-sharded rule, or one STORAGE shard's seed subset of an aligned rule
// (the view is sharded and seeds are partitioned by the owning shard, so a
// task's reads stay within that shard's columns). Tasks are created in
// (rule id, shard index) order; each fills only its own slot.
struct DetectTask {
  RuleId rule;
  const MatchPlan* plan = nullptr;  // compiled plan for this rule, if any
  VarId seed_var = kNoVar;  // kNoVar: unsharded full FindAll
  bool aligned = false;     // seeds are one storage shard's subset
  std::vector<NodeId> seeds;  // ascending; used when seed_var != kNoVar
  // Matches found per seed, parallel to `seeds` — what the aligned merge
  // uses to interleave task outputs back into global ascending-seed order.
  std::vector<uint32_t> seed_counts;
  std::vector<Match> out;
  MatchStats stats;
};

void RunTask(const GraphView& g, const RuleSet& rules, DetectTask* task) {
  const Matcher matcher(g, rules[task->rule].pattern(), task->plan);
  auto collect = [task](const Match& m) {
    task->out.push_back(m);
    return true;
  };
  if (task->seed_var == kNoVar) {
    task->stats = matcher.FindAll(MatchOptions{}, collect);
    return;
  }
  task->seed_counts.reserve(task->seeds.size());
  for (NodeId seed : task->seeds) {
    size_t before = task->out.size();
    MatchOptions opts;
    opts.node_anchors.emplace_back(task->seed_var, seed);
    MatchStats st = matcher.FindAll(opts, collect);
    task->stats.expansions += st.expansions;
    task->stats.matches += st.matches;
    task->stats.exhausted |= st.exhausted;
    task->seed_counts.push_back(
        static_cast<uint32_t>(task->out.size() - before));
  }
}

// Emits the matches of an aligned task group (one rule, >=2 storage-shard
// tasks) in global ascending-seed order: the shared k-way merge picks the
// task whose next unemitted seed is smallest and flushes that seed's
// matches. Seeds are disjoint across tasks (the storage partition), so
// this reproduces the sequential per-seed concatenation bit-for-bit.
void EmitAlignedMerged(const std::vector<DetectTask>& tasks, size_t begin,
                       size_t end, const ParallelDetector::Emit& emit) {
  const size_t n = end - begin;
  std::vector<size_t> out_cur(n, 0);
  MergeByAscendingKey(
      n, [&](size_t t) { return tasks[begin + t].seeds.size(); },
      [&](size_t t, size_t i) { return tasks[begin + t].seeds[i]; },
      [&](size_t t, size_t i) {
        const DetectTask& task = tasks[begin + t];
        for (uint32_t k = 0; k < task.seed_counts[i]; ++k)
          emit(task.rule, task.out[out_cur[t]++]);
      });
}

}  // namespace

ParallelDetector::ParallelDetector(ThreadPool* pool,
                                   ParallelDetectOptions options)
    : pool_(pool), options_(options) {}

MatchStats ParallelDetector::Detect(const GraphView& g, const RuleSet& rules,
                                    const Emit& emit,
                                    const MatchPlan* const* plans) const {
  size_t max_shards = options_.max_shards_per_rule
                          ? options_.max_shards_per_rule
                          : 2 * pool_->NumThreads();
  const size_t store_shards = g.NumStorageShards();

  std::vector<DetectTask> tasks;
  for (RuleId r = 0; r < rules.size(); ++r) {
    const MatchPlan* plan = plans ? plans[r] : nullptr;
    Matcher matcher(g, rules[r].pattern());
    VarId seed_var = matcher.SeedVar();
    if (seed_var == kNoVar) {  // node-less pattern: plain full FindAll
      DetectTask t;
      t.rule = r;
      t.plan = plan;
      tasks.push_back(std::move(t));
      continue;
    }
    // The seed list is computed anyway to decide shardability, so reuse it:
    // a below-threshold rule becomes ONE full-range seed task rather than
    // recomputing the identical root candidates inside an unanchored search.
    std::vector<NodeId> seeds = matcher.SeedCandidates(seed_var);
    if (seeds.size() < options_.shard_min_seeds) {
      DetectTask t;
      t.rule = r;
      t.plan = plan;
      t.seed_var = seed_var;
      t.seeds = std::move(seeds);
      tasks.push_back(std::move(t));
      continue;
    }
    if (store_shards > 1) {
      // Storage-aligned sharding: one task per storage shard holding its
      // seed subset, so every anchored search in the task reads the shard
      // that owns its seed. The merge below restores global seed order.
      std::vector<std::vector<NodeId>> by_shard(store_shards);
      for (NodeId s : seeds)
        by_shard[StorageShardOfNode(s, store_shards)].push_back(s);
      for (size_t s = 0; s < store_shards; ++s) {
        if (by_shard[s].empty()) continue;
        DetectTask t;
        t.rule = r;
        t.plan = plan;
        t.seed_var = seed_var;
        t.aligned = true;
        t.seeds = std::move(by_shard[s]);
        tasks.push_back(std::move(t));
      }
      continue;
    }
    // Unsharded store: contiguous block ranges of the ascending seed list.
    size_t shards =
        std::min(std::max<size_t>(1, max_shards), seeds.size());
    for (size_t s = 0; s < shards; ++s) {
      DetectTask t;
      t.rule = r;
      t.plan = plan;
      t.seed_var = seed_var;
      auto [begin, end] = BlockRange(seeds.size(), s, shards);
      t.seeds.assign(seeds.begin() + begin, seeds.begin() + end);
      tasks.push_back(std::move(t));
    }
  }

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (DetectTask& t : tasks) {
    futures.push_back(
        pool_->Submit([&g, &rules, task = &t] { RunTask(g, rules, task); }));
  }
  // Drain EVERY future before letting any exception unwind: workers hold raw
  // pointers into `tasks`, so the frame must stay alive until all finished.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // A sharded rule gives every seed a fresh expansion budget, so it can keep
  // matching past the point the sequential single-budget search would have
  // truncated. Sequential expansions for a rule are exactly 1 + the sum of
  // its per-seed subtree expansions; when that sum reaches the budget the
  // sequential path would have stopped early, so re-run the whole rule
  // sequentially to reproduce its truncated output bit-for-bit. (Pathological
  // by construction: the default budget is 50M expansions per rule.)
  const size_t budget = options_.sequential_budget
                            ? options_.sequential_budget
                            : MatchOptions{}.max_expansions;
  std::map<RuleId, size_t> rule_expansions;
  for (const DetectTask& t : tasks)
    if (t.seed_var != kNoVar) rule_expansions[t.rule] += t.stats.expansions;
  std::map<RuleId, DetectTask> reruns;
  for (const auto& [r, total] : rule_expansions) {
    if (total < budget) continue;
    DetectTask seq;
    seq.rule = r;
    seq.plan = plans ? plans[r] : nullptr;
    RunTask(g, rules, &seq);
    reruns.emplace(r, std::move(seq));
  }

  // Emit per rule group (tasks of one rule are contiguous): a rerun rule
  // emits its sequential output once; an aligned group interleaves its
  // shard tasks back into ascending-seed order; block groups concatenate.
  // All three paths produce the exact sequential emission stream.
  MatchStats total;
  size_t i = 0;
  while (i < tasks.size()) {
    size_t j = i + 1;
    while (j < tasks.size() && tasks[j].rule == tasks[i].rule) ++j;
    auto it = reruns.find(tasks[i].rule);
    if (it != reruns.end()) {
      const DetectTask& seq = it->second;
      total.expansions += seq.stats.expansions;
      total.matches += seq.stats.matches;
      total.exhausted |= seq.stats.exhausted;
      for (const Match& m : seq.out) emit(seq.rule, m);
      i = j;
      continue;
    }
    for (size_t k = i; k < j; ++k) {
      total.expansions += tasks[k].stats.expansions;
      total.matches += tasks[k].stats.matches;
      total.exhausted |= tasks[k].stats.exhausted;
    }
    if (tasks[i].aligned && j - i > 1) {
      EmitAlignedMerged(tasks, i, j, emit);
    } else {
      for (size_t k = i; k < j; ++k)
        for (const Match& m : tasks[k].out) emit(tasks[k].rule, m);
    }
    i = j;
  }
  return total;
}

}  // namespace grepair
